//! Cross-crate integration: the evolution matrix against the real
//! subsystems — every cell's exemplar machinery exists and the classifier
//! agrees with the taxonomy; agent compositions match the coordination
//! layer's channel formulas.

use evoflow::agents::{Agent, AveragingAgent, Ensemble, MapAgent, Pattern};
use evoflow::coord::consensus::topology;
use evoflow::core::{all_cells, classify, Cell, SystemDescriptor, TrajectoryPlanner};
use evoflow::sm::IntelligenceLevel;

#[test]
fn matrix_is_complete_and_distinct() {
    let cells = all_cells();
    assert_eq!(cells.len(), 25);
    let mut reps: Vec<&str> = cells.iter().map(|c| c.representative()).collect();
    reps.sort_unstable();
    reps.dedup();
    assert_eq!(reps.len(), 25);
}

#[test]
fn classifier_round_trips_the_whole_matrix() {
    for cell in all_cells() {
        let d = SystemDescriptor {
            name: cell.representative().into(),
            uses_feedback: cell.intelligence.rank() >= 1,
            learns_from_history: cell.intelligence.rank() >= 2,
            optimizes_cost: cell.intelligence.rank() >= 3,
            self_modifies: cell.intelligence.rank() >= 4,
            machine_count: if matches!(cell.composition, Pattern::Single) {
                1
            } else {
                12
            },
            has_manager: matches!(cell.composition, Pattern::Hierarchical),
            peer_communication: matches!(cell.composition, Pattern::Mesh | Pattern::Swarm { .. }),
            local_neighborhoods_only: matches!(cell.composition, Pattern::Swarm { .. }),
            linear_dataflow: matches!(cell.composition, Pattern::Pipeline),
        };
        let got = classify(&d);
        assert_eq!(got.intelligence, cell.intelligence, "at {cell}");
        assert_eq!(got.composition.rank(), cell.composition.rank(), "at {cell}");
    }
}

#[test]
fn ensemble_channels_match_topology_formulas_at_scale() {
    for n in [8usize, 64, 200] {
        let mk = |pattern| {
            let agents: Vec<Box<dyn Agent>> = (0..n)
                .map(|i| {
                    if matches!(pattern, Pattern::Mesh | Pattern::Swarm { .. }) {
                        Box::new(AveragingAgent::new(format!("a{i}"), 0.0)) as Box<dyn Agent>
                    } else {
                        Box::new(MapAgent::new(format!("m{i}"), 1.0, 0.0)) as Box<dyn Agent>
                    }
                })
                .collect();
            Ensemble::new(agents, pattern, 0)
        };
        assert_eq!(
            mk(Pattern::Pipeline).channel_count(),
            topology::pipeline_channels(n as u64)
        );
        assert_eq!(
            mk(Pattern::Hierarchical).channel_count(),
            topology::hierarchical_channels(n as u64)
        );
        assert_eq!(
            mk(Pattern::Mesh).channel_count(),
            topology::mesh_channels(n as u64)
        );
        assert_eq!(
            mk(Pattern::Swarm { k: 6 }).channel_count(),
            topology::swarm_channels(n as u64, 6) / 2
        );
    }
}

#[test]
fn trajectory_planner_reaches_any_target_cell() {
    let planner = TrajectoryPlanner;
    let start = Cell::new(IntelligenceLevel::Static, Pattern::Single);
    for target in all_cells() {
        if target.intelligence.rank() < start.intelligence.rank()
            || target.composition.rank() < start.composition.rank()
        {
            continue;
        }
        let path = planner.plan(start, target);
        assert_eq!(*path.first().expect("non-empty"), start);
        assert_eq!(
            path.last().expect("non-empty").intelligence,
            target.intelligence
        );
        assert_eq!(
            path.last().expect("non-empty").composition.rank(),
            target.composition.rank()
        );
        assert_eq!(path.len() - 1, start.distance(&target));
        // Intelligence-first invariant: no composition step before the
        // intelligence target is reached.
        let mut seen_comp_step = false;
        for w in path.windows(2) {
            let comp_step = w[1].composition.rank() > w[0].composition.rank();
            let intel_step = w[1].intelligence.rank() > w[0].intelligence.rank();
            if comp_step {
                seen_comp_step = true;
            }
            assert!(
                !(intel_step && seen_comp_step),
                "intelligence step after composition step in {path:?}"
            );
        }
    }
}
