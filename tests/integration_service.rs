//! End-to-end multi-tenant service integration (ISSUE 6): admission →
//! fair-share dispatch → fleet execution → ledger streaming, plus the
//! acceptance criteria verified directly:
//!
//! * **S3**: killing the service mid-stream and resuming from its
//!   checkpoint yields byte-identical per-campaign reports and merged
//!   ledgers at 1, 2, and 4 threads.
//! * **S2 / fairness**: a hostile tenant submitting 10× the others
//!   cannot push any well-behaved tenant below its fair-share floor.
//! * The `testbed` ladder certifies the stack **S3 (restart-survivable)**.

use evoflow::core::{
    plan_service, replay_ledger, resume_service, run_service, run_service_observed,
    run_service_until, CampaignConfig, CampaignEvent, Cell, MaterialsSpace, RejectReason,
    RingTelemetry, ServiceConfig, TenantSpec,
};
use evoflow::sim::SimDuration;
use evoflow::testbed::{certify_service, service_ladder, ServiceGrade};

fn space() -> MaterialsSpace {
    MaterialsSpace::generate(3, 8, 20260808)
}

fn campaign(seed_hint: u64) -> CampaignConfig {
    let mut c = CampaignConfig::for_cell(Cell::autonomous_science(), seed_hint);
    c.horizon = SimDuration::from_days(1);
    c
}

fn session() -> ServiceConfig {
    let mut cfg = ServiceConfig::new(606);
    cfg.threads = 1;
    cfg.push_tenant(TenantSpec::new("astro").with_weight(2));
    cfg.push_tenant(TenantSpec::new("bio"));
    cfg.push_tenant(TenantSpec::new("chem").with_max_queued(3));
    for i in 0..3 {
        cfg.submit("astro", campaign(i));
        cfg.submit("bio", campaign(i));
        cfg.submit("chem", campaign(i));
    }
    cfg
}

/// The headline S3 acceptance criterion: kill mid-stream, resume,
/// byte-identical report and merged ledger — at 1, 2, and 4 threads on
/// both sides of the kill.
#[test]
fn kill_and_resume_is_byte_identical_at_all_thread_counts() {
    let space = space();
    let cfg = session();
    let (report, ledger) = run_service(&space, &cfg).unwrap();
    let report_bytes = serde_json::to_string(&report).unwrap();
    let ledger_bytes = serde_json::to_string(&ledger).unwrap();
    for threads in [1usize, 2, 4] {
        let mut c = cfg.clone();
        c.threads = threads;
        let ckpt = run_service_until(&space, &c, 4).unwrap();
        assert!(!ckpt.is_complete(), "kill@4 must interrupt 9 campaigns");
        let (r, l) = resume_service(&space, &c, &ckpt).unwrap();
        assert_eq!(
            serde_json::to_string(&r).unwrap(),
            report_bytes,
            "threads={threads}: resumed report diverged"
        );
        assert_eq!(
            serde_json::to_string(&l).unwrap(),
            ledger_bytes,
            "threads={threads}: resumed merged ledger diverged"
        );
    }
}

/// The fairness acceptance criterion, end to end: hostile tenant at
/// 10×, every well-behaved tenant keeps at least 90% of its weighted
/// fair share of contended dispatch slots, and all of its campaigns
/// complete.
#[test]
fn hostile_flood_cannot_starve_well_behaved_tenants() {
    let space = space();
    let mut cfg = ServiceConfig::new(17);
    cfg.threads = 2;
    cfg.push_tenant(TenantSpec::new("good-a"));
    cfg.push_tenant(TenantSpec::new("good-b"));
    cfg.push_tenant(TenantSpec::new("hostile"));
    for i in 0..4 {
        cfg.submit("good-a", campaign(i));
        cfg.submit("good-b", campaign(i));
        for _ in 0..10 {
            cfg.submit("hostile", campaign(i));
        }
    }
    let (report, _) = run_service(&space, &cfg).unwrap();
    for t in report.tenants.iter().filter(|t| t.name != "hostile") {
        assert!(
            t.fairness_ratio >= 0.9,
            "{} got only {:.3} of its fair share: {report:?}",
            t.name,
            t.fairness_ratio
        );
        assert_eq!(t.completed, t.admitted, "{} lost campaigns", t.name);
        assert_eq!(t.admitted, t.submitted, "{} was refused admission", t.name);
    }
    // The flood was real: hostile submitted 10x and still completed —
    // fairness shapes ordering, it does not censor work.
    let hostile = report.tenants.iter().find(|t| t.name == "hostile").unwrap();
    assert_eq!(hostile.submitted, 40);
    assert_eq!(hostile.completed, hostile.admitted);
}

/// Quota refusals at the door are typed, exact, and conserved.
#[test]
fn oversubmission_is_refused_with_typed_reasons() {
    let space = space();
    let mut cfg = ServiceConfig::new(23);
    cfg.threads = 1;
    cfg.ingest_per_round = 8;
    cfg.dispatch_per_round = 1;
    cfg.push_tenant(
        TenantSpec::new("greedy")
            .with_max_queued(2)
            .with_max_admitted(5),
    );
    for i in 0..8 {
        cfg.submit("greedy", campaign(i));
    }
    cfg.submit("nobody", campaign(0));
    let (report, ledger) = run_service(&space, &cfg).unwrap();
    let admitted: usize = report.tenants.iter().map(|t| t.admitted).sum();
    assert_eq!(admitted + report.rejected.len(), 9, "a submission vanished");
    assert!(report
        .rejected
        .iter()
        .any(|r| r.reason == RejectReason::QueueFull));
    assert!(report
        .rejected
        .iter()
        .any(|r| r.reason == RejectReason::UnknownTenant && r.tenant == "nobody"));
    assert_eq!(ledger.campaigns.len(), admitted);
    // The admission cap binds across the whole session.
    assert!(admitted <= 5);
}

/// The observed session streams the full schedule: service-level events
/// (admissions, refusals, dispatches) interleaved with every campaign's
/// event stream, in deterministic order — and a bounded ring sees a
/// suffix of exactly that stream.
#[test]
fn service_session_streams_through_ring_telemetry() {
    let space = space();
    let mut cfg = session();
    cfg.submit("nobody", campaign(9)); // one refusal in the stream
    let mut full = evoflow::core::CampaignLedger::new();
    let mut ring = RingTelemetry::new(16);
    let (report, merged) = run_service_observed(&space, &cfg, &mut [&mut full, &mut ring]).unwrap();

    let plan = plan_service(&cfg).unwrap();
    let scheduling_events = plan.admitted.len() * 2 + plan.rejected.len();
    assert_eq!(full.len(), scheduling_events + merged.total_events());
    assert_eq!(ring.seen() as usize, full.len());
    assert_eq!(ring.len(), 16);
    assert_eq!(ring.dropped(), ring.seen() - 16);
    let tail: Vec<&CampaignEvent> = ring.events().collect();
    let suffix: Vec<&CampaignEvent> = full.events[full.len() - 16..].iter().collect();
    assert_eq!(tail, suffix, "ring is not a suffix of the stream");

    // Every per-campaign slice of the merged ledger still replays into
    // the byte-identical campaign report the fleet aggregated.
    for (i, campaign_ledger) in merged.campaigns.iter().enumerate() {
        let outcome = replay_ledger(campaign_ledger).expect("campaign slice replays");
        assert_eq!(
            serde_json::to_string(&outcome.report).unwrap(),
            serde_json::to_string(&report.fleet.reports[i]).unwrap(),
            "campaign {i} replay diverged"
        );
    }

    // Observation is one-way: the observed run's outputs equal the
    // unobserved run's.
    let (plain_report, plain_ledger) = run_service(&space, &cfg).unwrap();
    assert_eq!(plain_report, report);
    assert_eq!(
        serde_json::to_string(&plain_ledger).unwrap(),
        serde_json::to_string(&merged).unwrap()
    );
}

/// The testbed ladder certifies the whole stack at its top rung.
#[test]
fn service_stack_certifies_s3() {
    let cert = certify_service(&space(), &service_ladder());
    assert_eq!(
        cert.grade,
        ServiceGrade::S3RestartSurvivable,
        "service lost a rung: {cert:?}"
    );
}
