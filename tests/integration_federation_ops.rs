//! Integration: operational federation machinery — DSL-defined workflows
//! surviving a coordinator crash via checkpoint/resume, with run records
//! replicated across facility knowledge-graph replicas through partition
//! and heal, and a hybrid quantum stage feeding the same records.

use evoflow::facility::{AccessMode, CircuitSpec, HybridLoop, Qpu};
use evoflow::knowledge::sync::{converged, gossip_to_convergence, Replica};
use evoflow::knowledge::{NodeKind, Relation};
use evoflow::sim::{SimDuration, SimRng};
use evoflow::wms::{execute, parse, resume, Checkpoint, FaultPolicy, TaskStatus};

const CAMPAIGN: &str = "\
workflow oxide-screening
task synthesize   duration=2h  workers=2 fail_prob=1.0 retries=0
task characterize duration=30m after synthesize
task vqe_refine   duration=1h  after characterize
task publish      duration=10m after vqe_refine if no_failures
";

#[test]
fn dsl_workflow_crashes_checkpoints_and_resumes_across_sites() {
    // Parse the campaign file.
    let parsed = parse(CAMPAIGN).unwrap();
    assert_eq!(parsed.name, "oxide-screening");

    // First execution: synthesis robot is broken (fail_prob=1.0, Abort).
    let crashed = execute(&parsed.workflow, 8, FaultPolicy::Abort, 5);
    assert!(crashed.aborted && !crashed.completed);
    let ckpt = Checkpoint::from_report(&crashed);

    // The checkpoint travels to a standby coordinator at another site.
    let json = serde_json::to_string(&ckpt).unwrap();
    let restored: Checkpoint = serde_json::from_str(&json).unwrap();

    // Robot repaired: same DAG, fixed spec.
    let repaired = parse(&CAMPAIGN.replace("fail_prob=1.0 retries=0", "fail_prob=0.0")).unwrap();
    let report = resume(&repaired.workflow, &restored, 8, FaultPolicy::Retry, 6).unwrap();
    assert!(report.completed);
    assert!(report
        .statuses
        .iter()
        .all(|s| matches!(s, TaskStatus::Succeeded | TaskStatus::Skipped)));
    // Elapsed time accumulates both coordinators' runs.
    assert!(report.makespan.as_secs_f64() >= crashed.makespan.as_secs_f64());
}

#[test]
fn run_records_replicate_through_partition_and_heal() {
    let mut sites = vec![
        Replica::new("synthesis-lab"),
        Replica::new("beamline"),
        Replica::new("ai-hub"),
    ];

    // During the partition, each site records its own stage of the run.
    sites[0].upsert_node("exp/oxide-1", NodeKind::Experiment);
    sites[0].set_prop("exp/oxide-1", "stage", "synthesized");
    sites[1].upsert_node("res/xrd-1", NodeKind::Result);
    sites[1].set_prop("res/xrd-1", "purity", "0.93");
    sites[2].upsert_node("hyp/gap-1", NodeKind::Hypothesis);

    // Heal: gossip to convergence; then every site can link the record
    // chain locally.
    let rounds = gossip_to_convergence(&mut sites, 10).expect("converges");
    assert!(rounds <= 3);
    sites[1].link("exp/oxide-1", Relation::Produced, "res/xrd-1");
    sites[1].link("res/xrd-1", Relation::Supports, "hyp/gap-1");
    let rounds = gossip_to_convergence(&mut sites, 10).expect("converges");
    assert!(rounds <= 3);
    for pair in sites.windows(2) {
        assert!(converged(&pair[0], &pair[1]));
    }
    // The full lineage is now queryable from the hub replica.
    assert!(sites[2].graph().path_exists("exp/oxide-1", "hyp/gap-1"));
    assert_eq!(sites[2].graph().support_score("hyp/gap-1"), 1);
}

#[test]
fn quantum_refinement_result_lands_in_the_shared_graph() {
    // The vqe_refine stage of the campaign: an interactive hybrid loop.
    let hybrid = HybridLoop {
        qpu: Qpu::nisq("hub-qpu"),
        circuit: CircuitSpec {
            qubits: 12,
            depth: 6,
            shots: 3000,
        },
        mode: AccessMode::Interactive,
    };
    let energy = |theta: f64| (0.5 * (theta - 0.9).powi(2) - 0.4).clamp(-1.0, 1.0);
    let mut rng = SimRng::from_seed_u64(3);
    let report = hybrid.minimize(energy, (0.0, 2.0), 120_000, &mut rng);
    assert!((report.best_theta - 0.9).abs() < 0.3);
    assert!(report.wall_time < SimDuration::from_hours(1));

    // Record it like any other result; replicate to a second site.
    let mut hub = Replica::new("ai-hub");
    let mut lab = Replica::new("synthesis-lab");
    hub.upsert_node("res/vqe-1", NodeKind::Result);
    hub.set_prop("res/vqe-1", "theta", format!("{:.4}", report.best_theta));
    hub.set_prop("res/vqe-1", "shots", report.shots_used.to_string());
    evoflow::knowledge::sync::sync_pair(&mut hub, &mut lab);
    assert!(converged(&hub, &lab));
    assert!(lab
        .graph()
        .node("res/vqe-1")
        .unwrap()
        .get("theta")
        .is_some());
}
