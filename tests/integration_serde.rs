//! Serialization round-trips: the paper's reproducibility/provenance story
//! requires that workflow definitions, campaign configs, and knowledge
//! artifacts survive persistence byte-for-byte.

use evoflow::core::{CampaignConfig, Cell, MaterialsSpace};
use evoflow::knowledge::{KnowledgeGraph, NodeKind, Relation};
use evoflow::sim::SimDuration;
use evoflow::sm::dag::shapes;
use evoflow::sm::Fsm;
use evoflow::wms::TaskSpec;

fn round_trip<T>(value: &T) -> T
where
    T: serde::Serialize + serde::de::DeserializeOwned,
{
    let json = serde_json::to_string(value).expect("serialize");
    serde_json::from_str(&json).expect("deserialize")
}

#[test]
fn fsm_round_trips_and_behaves_identically() {
    let m = shapes::fork_join(4).to_fsm(10_000).expect("small DAG");
    let m2: Fsm = round_trip(&m);
    assert_eq!(m, m2);
    assert_eq!(m.reachable(), m2.reachable());
    assert_eq!(m.is_live(), m2.is_live());
}

#[test]
fn dag_round_trips() {
    let d = shapes::layered(3, 3);
    let d2: evoflow::sm::Dag = round_trip(&d);
    assert_eq!(d.len(), d2.len());
    assert_eq!(d.topo_order().unwrap(), d2.topo_order().unwrap());
    assert_eq!(
        d.critical_path_len().unwrap(),
        d2.critical_path_len().unwrap()
    );
}

#[test]
fn task_specs_round_trip() {
    let spec = TaskSpec::reliable("anneal", SimDuration::from_hours(2))
        .with_fail_prob(0.1)
        .with_jitter(0.3)
        .with_workers(4);
    let spec2: TaskSpec = round_trip(&spec);
    assert_eq!(spec.duration, spec2.duration);
    assert_eq!(spec.fail_prob, spec2.fail_prob);
    assert_eq!(spec.workers, spec2.workers);
}

#[test]
fn campaign_config_round_trips_and_reruns_identically() {
    let space = MaterialsSpace::generate(3, 6, 55);
    let mut cfg = CampaignConfig::for_cell(Cell::autonomous_science(), 9);
    cfg.horizon = SimDuration::from_days(1);
    cfg.coordination = Some(evoflow::core::CoordinationMode::Autonomous);
    let cfg2: CampaignConfig = round_trip(&cfg);

    let a = evoflow::core::run_campaign(&space, &cfg);
    let b = evoflow::core::run_campaign(&space, &cfg2);
    assert_eq!(a.experiments, b.experiments);
    assert_eq!(a.best_score.to_bits(), b.best_score.to_bits());
}

#[test]
fn materials_space_round_trips_exactly() {
    let s = MaterialsSpace::generate(4, 12, 777);
    let s2: MaterialsSpace = round_trip(&s);
    for probe in [[0.1, 0.2, 0.3, 0.4], [0.9, 0.8, 0.7, 0.6]] {
        assert_eq!(s.latent(&probe).to_bits(), s2.latent(&probe).to_bits());
    }
    assert_eq!(s.peak_count(), s2.peak_count());
}

#[test]
fn knowledge_graph_round_trips_with_properties() {
    let mut g = KnowledgeGraph::new();
    g.upsert_node("hyp/1", NodeKind::Hypothesis);
    g.upsert_node("res/1", NodeKind::Result);
    g.set_prop("res/1", "score", "0.93");
    g.link("res/1", Relation::Supports, "hyp/1");
    let g2: KnowledgeGraph = round_trip(&g);
    assert_eq!(g2.node_count(), 2);
    assert_eq!(g2.node("res/1").unwrap().get("score"), Some("0.93"));
    assert_eq!(g2.support_score("hyp/1"), 1);
}

#[test]
fn campaign_report_is_machine_readable() {
    let space = MaterialsSpace::generate(3, 6, 3);
    let mut cfg = CampaignConfig::for_cell(Cell::traditional_wms(), 3);
    cfg.horizon = SimDuration::from_days(1);
    cfg.coordination = Some(evoflow::core::CoordinationMode::Autonomous);
    let report = evoflow::core::run_campaign(&space, &cfg);
    let json = serde_json::to_value(&report).expect("reports serialize");
    assert!(json.get("experiments").is_some());
    assert!(json.get("discoveries_per_week").is_some());
}
