//! Serialization round-trips: the paper's reproducibility/provenance story
//! requires that workflow definitions, campaign configs, and knowledge
//! artifacts survive persistence byte-for-byte.

use evoflow::core::{CampaignConfig, Cell, MaterialsSpace};
use evoflow::knowledge::{KnowledgeGraph, NodeKind, Relation};
use evoflow::sim::SimDuration;
use evoflow::sm::dag::shapes;
use evoflow::sm::Fsm;
use evoflow::wms::TaskSpec;

fn round_trip<T>(value: &T) -> T
where
    T: serde::Serialize + serde::de::DeserializeOwned,
{
    let json = serde_json::to_string(value).expect("serialize");
    serde_json::from_str(&json).expect("deserialize")
}

#[test]
fn fsm_round_trips_and_behaves_identically() {
    let m = shapes::fork_join(4).to_fsm(10_000).expect("small DAG");
    let m2: Fsm = round_trip(&m);
    assert_eq!(m, m2);
    assert_eq!(m.reachable(), m2.reachable());
    assert_eq!(m.is_live(), m2.is_live());
}

#[test]
fn dag_round_trips() {
    let d = shapes::layered(3, 3);
    let d2: evoflow::sm::Dag = round_trip(&d);
    assert_eq!(d.len(), d2.len());
    assert_eq!(d.topo_order().unwrap(), d2.topo_order().unwrap());
    assert_eq!(
        d.critical_path_len().unwrap(),
        d2.critical_path_len().unwrap()
    );
}

#[test]
fn task_specs_round_trip() {
    let spec = TaskSpec::reliable("anneal", SimDuration::from_hours(2))
        .with_fail_prob(0.1)
        .with_jitter(0.3)
        .with_workers(4);
    let spec2: TaskSpec = round_trip(&spec);
    assert_eq!(spec.duration, spec2.duration);
    assert_eq!(spec.fail_prob, spec2.fail_prob);
    assert_eq!(spec.workers, spec2.workers);
}

#[test]
fn campaign_config_round_trips_and_reruns_identically() {
    let space = MaterialsSpace::generate(3, 6, 55);
    let mut cfg = CampaignConfig::for_cell(Cell::autonomous_science(), 9);
    cfg.horizon = SimDuration::from_days(1);
    cfg.coordination = Some(evoflow::core::CoordinationMode::Autonomous);
    let cfg2: CampaignConfig = round_trip(&cfg);

    let a = evoflow::core::run_campaign(&space, &cfg);
    let b = evoflow::core::run_campaign(&space, &cfg2);
    assert_eq!(a.experiments, b.experiments);
    assert_eq!(a.best_score.to_bits(), b.best_score.to_bits());
}

/// A pre-planner-layer `CampaignConfig` (no `planner` field) must keep
/// decoding — `planner` defaults to `None`, i.e. the cell's Table 1
/// default policy — and a planner override must survive a round trip.
#[test]
fn campaign_config_without_planner_field_still_decodes() {
    let legacy = r#"{
        "cell": {"intelligence": "Learning", "composition": "Mesh"},
        "seed": 9,
        "horizon": 86400000000000,
        "batch_per_lane": 4,
        "lanes": null,
        "coordination": null,
        "max_experiments": 1000,
        "record_knowledge": true
    }"#;
    let cfg: CampaignConfig = serde_json::from_str(legacy).expect("legacy config decodes");
    assert!(cfg.planner.is_none());
    assert_eq!(
        cfg.effective_planner(),
        evoflow::core::PlannerKind::Evidence
    );

    let overridden = cfg.with_planner(evoflow::core::PlannerKind::meta());
    let back: CampaignConfig = round_trip(&overridden);
    assert_eq!(back.planner, overridden.planner);
}

#[test]
fn materials_space_round_trips_exactly() {
    let s = MaterialsSpace::generate(4, 12, 777);
    let s2: MaterialsSpace = round_trip(&s);
    for probe in [[0.1, 0.2, 0.3, 0.4], [0.9, 0.8, 0.7, 0.6]] {
        assert_eq!(s.latent(&probe).to_bits(), s2.latent(&probe).to_bits());
    }
    assert_eq!(s.peak_count(), s2.peak_count());
}

#[test]
fn knowledge_graph_round_trips_with_properties() {
    let mut g = KnowledgeGraph::new();
    g.upsert_node("hyp/1", NodeKind::Hypothesis);
    g.upsert_node("res/1", NodeKind::Result);
    g.set_prop("res/1", "score", "0.93");
    g.link("res/1", Relation::Supports, "hyp/1");
    let g2: KnowledgeGraph = round_trip(&g);
    assert_eq!(g2.node_count(), 2);
    assert_eq!(g2.node("res/1").unwrap().get("score"), Some("0.93"));
    assert_eq!(g2.support_score("hyp/1"), 1);
}

#[test]
fn campaign_report_is_machine_readable() {
    let space = MaterialsSpace::generate(3, 6, 3);
    let mut cfg = CampaignConfig::for_cell(Cell::traditional_wms(), 3);
    cfg.horizon = SimDuration::from_days(1);
    cfg.coordination = Some(evoflow::core::CoordinationMode::Autonomous);
    let report = evoflow::core::run_campaign(&space, &cfg);
    let json = serde_json::to_value(&report).expect("reports serialize");
    assert!(json.get("experiments").is_some());
    assert!(json.get("discoveries_per_week").is_some());
}

// ---- resilience artifacts (ISSUE 2) ----------------------------------------
//
// Checkpoints and chaos schedules are *restart files*: they outlive the
// process that wrote them, so their on-disk format must round-trip and
// must not drift silently. The snapshot tests pin the exact bytes; if a
// change here is intentional, it is a format migration and needs a
// compatibility story (cf. `Checkpoint::retries_used`, which decodes as
// empty when absent from pre-migration checkpoints).

use evoflow::core::{resume_campaign_fleet, FleetCheckpoint, FleetConfig};
use evoflow::sim::{ChaosSchedule, ChaosSpec, RngRegistry};
use evoflow::wms::{execute, execute_under_chaos, resume, Checkpoint, FaultPolicy, Workflow};

#[test]
fn wms_checkpoint_round_trips_and_resumes_identically() {
    let wf = Workflow::pipeline(4, SimDuration::from_hours(1));
    let mut broken = wf.clone();
    broken.specs[2] = broken.specs[2].clone().with_fail_prob(1.0);
    let crashed = execute(&broken, 2, FaultPolicy::Abort, 3);
    let ckpt = Checkpoint::from_report(&crashed);
    let ckpt2: Checkpoint = round_trip(&ckpt);
    assert_eq!(ckpt, ckpt2);
    let a = resume(&wf, &ckpt, 2, FaultPolicy::Retry, 9).unwrap();
    let b = resume(&wf, &ckpt2, 2, FaultPolicy::Retry, 9).unwrap();
    assert_eq!(
        serde_json::to_string(&a).unwrap(),
        serde_json::to_string(&b).unwrap()
    );
}

#[test]
fn fleet_checkpoint_round_trips_and_resumes_identically() {
    let space = MaterialsSpace::generate(3, 6, 55);
    let mut cfg = FleetConfig::new(5);
    cfg.horizon = SimDuration::from_days(1);
    cfg.threads = 1;
    cfg.push_cell(Cell::traditional_wms(), 3);
    let ckpt = evoflow::core::run_campaign_fleet_until(&space, &cfg, 1);
    let ckpt2: FleetCheckpoint = round_trip(&ckpt);
    assert_eq!(ckpt, ckpt2);
    let a = resume_campaign_fleet(&space, &cfg, &ckpt).unwrap();
    let b = resume_campaign_fleet(&space, &cfg, &ckpt2).unwrap();
    assert_eq!(a, b);
}

#[test]
fn chaos_schedule_round_trips_and_replays_identically() {
    let sched = ChaosSchedule::derive(&RngRegistry::new(7), &ChaosSpec::hostile(), 8);
    let sched2: ChaosSchedule = round_trip(&sched);
    assert_eq!(sched, sched2);
    let wf = Workflow::pipeline(8, SimDuration::from_hours(1));
    let a = execute_under_chaos(&wf, 2, FaultPolicy::Retry, 4, &sched);
    let b = execute_under_chaos(&wf, 2, FaultPolicy::Retry, 4, &sched2);
    assert_eq!(
        serde_json::to_string(&a).unwrap(),
        serde_json::to_string(&b).unwrap()
    );
}

// ---- federated artifacts (ISSUE 4) -----------------------------------------

use evoflow::core::{
    resume_campaign_fleet_federated, run_campaign_fleet_federated,
    run_campaign_fleet_federated_until, FederatedCheckpoint, FederatedConfig, FederatedReport,
    PlacementPolicyKind,
};

fn small_federated_config() -> FederatedConfig {
    let mut fleet = FleetConfig::new(5);
    fleet.horizon = SimDuration::from_days(1);
    fleet.threads = 1;
    fleet.push_cell(Cell::traditional_wms(), 2);
    FederatedConfig::standard(fleet, PlacementPolicyKind::LeastWait).with_outage_seed(9)
}

#[test]
fn federated_report_round_trips_exactly() {
    let space = MaterialsSpace::generate(3, 6, 55);
    let report = run_campaign_fleet_federated(&space, &small_federated_config()).unwrap();
    let back: FederatedReport = round_trip(&report);
    assert_eq!(back, report);
    assert_eq!(
        serde_json::to_string(&back).unwrap(),
        serde_json::to_string(&report).unwrap()
    );
}

#[test]
fn federated_checkpoint_round_trips_and_resumes_identically() {
    let space = MaterialsSpace::generate(3, 6, 55);
    let cfg = small_federated_config();
    let ckpt = run_campaign_fleet_federated_until(&space, &cfg, 1).unwrap();
    let ckpt2: FederatedCheckpoint = round_trip(&ckpt);
    assert_eq!(ckpt, ckpt2);
    let a = resume_campaign_fleet_federated(&space, &cfg, &ckpt).unwrap();
    let b = resume_campaign_fleet_federated(&space, &cfg, &ckpt2).unwrap();
    assert_eq!(a, b);
}

/// Format-stability snapshots for the federated restart files: a
/// [`FederatedCheckpoint`]'s exact bytes, and the exact bytes of a
/// zero-campaign [`FederatedReport`] (which pins the field layout of the
/// report, the per-facility usage rows, and the embedded fleet report
/// without pinning campaign content).
#[test]
fn federated_file_formats_are_stable() {
    let space = MaterialsSpace::generate(2, 4, 1);
    let mut fleet = FleetConfig::new(5);
    fleet.push_cell(Cell::traditional_wms(), 2);
    let cfg = FederatedConfig::standard(fleet, PlacementPolicyKind::LeastWait).with_outage_seed(9);
    let ckpt = run_campaign_fleet_federated_until(&space, &cfg, 0).unwrap();
    assert_eq!(
        serde_json::to_string(&ckpt).unwrap(),
        r#"{"placement_signature":1749152393238840823,"fleet":{"master_seed":5,"shard_seeds":[2654648237662476944,7415722410050746708],"completed":[null,null]}}"#
    );

    let empty = FederatedConfig::standard(FleetConfig::new(5), PlacementPolicyKind::RoundRobin);
    let report = run_campaign_fleet_federated(&space, &empty).unwrap();
    assert_eq!(
        serde_json::to_string(&report).unwrap(),
        concat!(
            r#"{"master_seed":5,"policy":"round-robin","facilities":["#,
            r#"{"name":"autonomous-lab","nodes":8,"jobs":0,"node_hours":0.0,"utilization":0.0,"mean_wait_hours":0.0,"bytes_in":0,"down":false,"rerouted_away":0},"#,
            r#"{"name":"lightsource","nodes":32,"jobs":0,"node_hours":0.0,"utilization":0.0,"mean_wait_hours":0.0,"bytes_in":0,"down":false,"rerouted_away":0},"#,
            r#"{"name":"hpc-center","nodes":512,"jobs":0,"node_hours":0.0,"utilization":0.0,"mean_wait_hours":0.0,"bytes_in":0,"down":false,"rerouted_away":0},"#,
            r#"{"name":"cloud-east","nodes":256,"jobs":0,"node_hours":0.0,"utilization":0.0,"mean_wait_hours":0.0,"bytes_in":0,"down":false,"rerouted_away":0},"#,
            r#"{"name":"ai-hub","nodes":128,"jobs":0,"node_hours":0.0,"utilization":0.0,"mean_wait_hours":0.0,"bytes_in":0,"down":false,"rerouted_away":0}],"#,
            r#""placements":[],"outage":null,"transfers":0,"bytes_moved":0,"mean_wait_hours":0.0,"makespan_hours":0.0,"#,
            r#""fleet":{"master_seed":5,"reports":[],"per_cell":[],"total_experiments":0,"total_hits":0,"total_distinct_discoveries":0,"best_score":0.0,"tokens":0},"#,
            r#""events":[]}"#
        )
    );
}

/// A pre-ledger `FederatedReport` (no `events` field) must keep
/// decoding — `events` defaults to the empty stream.
#[test]
fn federated_report_without_events_field_still_decodes() {
    let space = MaterialsSpace::generate(2, 4, 1);
    let empty = FederatedConfig::standard(FleetConfig::new(5), PlacementPolicyKind::RoundRobin);
    let report = run_campaign_fleet_federated(&space, &empty).unwrap();
    let mut json = serde_json::to_value(&report).expect("serialize");
    match &mut json {
        serde_json::Value::Object(fields) => {
            let before = fields.len();
            fields.retain(|(k, _)| k != "events");
            assert_eq!(fields.len(), before - 1, "events field present");
        }
        other => panic!("report serialized as {other:?}"),
    }
    let legacy: FederatedReport =
        serde_json::from_str(&serde_json::to_string(&json).expect("re-serialize"))
            .expect("legacy report decodes");
    assert!(legacy.events.is_empty());
    assert_eq!(legacy.fleet, report.fleet);
}

// ---- ledger artifacts (ISSUE 5) ---------------------------------------------

use evoflow::core::{
    replay_ledger, resume_campaign_fleet_recorded, run_campaign_fleet_recorded_until,
    run_campaign_recorded, CampaignEvent, CampaignLedger, FleetLedgerCheckpoint,
};

#[test]
fn campaign_ledger_round_trips_and_replays_identically() {
    let space = MaterialsSpace::generate(3, 6, 55);
    let mut cfg = CampaignConfig::for_cell(Cell::autonomous_science(), 9);
    cfg.horizon = SimDuration::from_days(1);
    let (live, ledger) = run_campaign_recorded(&space, &cfg);
    let ledger2: CampaignLedger = round_trip(&ledger);
    assert_eq!(ledger, ledger2);
    let a = replay_ledger(&ledger).unwrap();
    let b = replay_ledger(&ledger2).unwrap();
    assert_eq!(a.report, live);
    assert_eq!(
        serde_json::to_string(&a.report).unwrap(),
        serde_json::to_string(&b.report).unwrap()
    );
}

#[test]
fn fleet_ledger_checkpoint_round_trips_and_resumes_identically() {
    let space = MaterialsSpace::generate(3, 6, 55);
    let mut cfg = FleetConfig::new(5);
    cfg.horizon = SimDuration::from_days(1);
    cfg.threads = 1;
    cfg.push_cell(Cell::traditional_wms(), 3);
    let ckpt = run_campaign_fleet_recorded_until(&space, &cfg, 1);
    let ckpt2: FleetLedgerCheckpoint = round_trip(&ckpt);
    assert_eq!(ckpt, ckpt2);
    let (a_report, a_ledger) = resume_campaign_fleet_recorded(&space, &cfg, &ckpt).unwrap();
    let (b_report, b_ledger) = resume_campaign_fleet_recorded(&space, &cfg, &ckpt2).unwrap();
    assert_eq!(a_report, b_report);
    assert_eq!(
        serde_json::to_string(&a_ledger).unwrap(),
        serde_json::to_string(&b_ledger).unwrap()
    );
}

/// The tiny hand-built stream that pins both ledger wire formats (JSON
/// and `EVWL` binary) byte-for-byte.
fn tiny_pinned_ledger() -> CampaignLedger {
    use evoflow::sim::{SimDuration as D, SimTime as T};
    CampaignLedger {
        events: vec![
            CampaignEvent::CampaignStarted {
                cell_label: "Static × Single".into(),
                seed: 7,
                planner: "grid".into(),
                lanes: 1,
                horizon: D::from_hours(1),
                threshold: 0.6,
                max_experiments: 10,
                records_knowledge: false,
            },
            CampaignEvent::IterationStarted {
                lane: 0,
                at: T::ZERO,
                decision_ready: T::from_secs(3),
            },
            CampaignEvent::CandidateProposed {
                lane: 0,
                params: vec![0.5],
                rationale: "grid".into(),
                confidence: 1.0,
                hallucinated: false,
            },
            CampaignEvent::ExecutionScheduled {
                lane: 0,
                batch: 1,
                duration: D::from_secs(60),
                done_at: T::from_secs(63),
            },
            CampaignEvent::ResultObserved {
                lane: 0,
                experiment: 1,
                score: 0.25,
                hit: false,
                peak: None,
                tokens_in: 0,
                tokens_out: 0,
            },
            CampaignEvent::IterationEnded {
                lane: 0,
                proposed: 1,
                hits: 0,
                tokens_total: 0,
            },
            CampaignEvent::CampaignFinished {
                experiments: 1,
                total_hits: 0,
                distinct_discoveries: 0,
                best_score: 0.25,
                time_to_first_hours: None,
                decision_wait_hours: 0.0008333333333333334,
                execution_hours: 0.016666666666666666,
                rejected_proposals: 0,
                omega_rewrites: 0,
                kg_nodes: 0,
                prov_activities: 0,
                tokens: 0,
            },
        ],
    }
}

/// Format-stability snapshot for the ledger wire format: a tiny
/// hand-built stream, pinned byte-for-byte. The ledger is an audit
/// artifact that outlives the process that wrote it — silent drift here
/// would orphan every archived stream.
#[test]
fn ledger_file_format_is_stable() {
    let ledger = tiny_pinned_ledger();
    assert_eq!(
        serde_json::to_string(&ledger).unwrap(),
        concat!(
            r#"{"events":[{"CampaignStarted":{"cell_label":"Static × Single","seed":7,"planner":"grid","lanes":1,"horizon":3600000000000,"threshold":0.6,"max_experiments":10,"records_knowledge":false}},"#,
            r#"{"IterationStarted":{"lane":0,"at":0,"decision_ready":3000000000}},"#,
            r#"{"CandidateProposed":{"lane":0,"params":[0.5],"rationale":"grid","confidence":1.0,"hallucinated":false}},"#,
            r#"{"ExecutionScheduled":{"lane":0,"batch":1,"duration":60000000000,"done_at":63000000000}},"#,
            r#"{"ResultObserved":{"lane":0,"experiment":1,"score":0.25,"hit":false,"peak":null,"tokens_in":0,"tokens_out":0}},"#,
            r#"{"IterationEnded":{"lane":0,"proposed":1,"hits":0,"tokens_total":0}},"#,
            r#"{"CampaignFinished":{"experiments":1,"total_hits":0,"distinct_discoveries":0,"best_score":0.25,"#,
            r#""time_to_first_hours":null,"decision_wait_hours":0.0008333333333333334,"execution_hours":0.016666666666666666,"#,
            r#""rejected_proposals":0,"omega_rewrites":0,"kg_nodes":0,"prov_activities":0,"tokens":0}}]}"#
        )
    );
    // And it replays: one experiment, no hits, best 0.25.
    let outcome = replay_ledger(&ledger).unwrap();
    assert_eq!(outcome.report.experiments, 1);
    assert_eq!(outcome.report.best_score, 0.25);
}

// ---- binary ledger wire format (ISSUE 7) ------------------------------------
//
// The compact `EVWL` encoding is a second on-disk dialect of the same
// audit artifact: its bytes are pinned just like the JSON bytes above,
// and the legacy JSON path must keep replaying byte-identically forever
// — archived streams never need rewriting.

use evoflow::core::{replay_ledger_bytes, LedgerEncoding};

/// The exact `EVWL` bytes of [`tiny_pinned_ledger`]. A failure here
/// means the binary wire format changed; that is a format migration and
/// needs a version bump plus a decode path for the old bytes.
const TINY_LEDGER_EVWL_HEX: &str = concat!(
    "4556574c010001071db6a6c60007000000a3012b00001053746174696320c397",
    "2053696e676c65070004677269640180c0e285e368333333333333e33f0a006c",
    "3c0801000080bcc1960b2fee16020001000000000000e03f0002000000000000",
    "f03f0045f50f03000180b09dc2df0180ecded8ea019ca80f0400010000000000",
    "00d03f00000000d93c0507000100000c832208010000000000000000d03f004f",
    "1be8b4814e4b3f111111111111913f0000000000168690c242b6",
);

fn from_hex(hex: &str) -> Vec<u8> {
    hex.as_bytes()
        .chunks(2)
        .map(|pair| u8::from_str_radix(std::str::from_utf8(pair).unwrap(), 16).unwrap())
        .collect()
}

#[test]
fn binary_ledger_wire_format_is_stable() {
    let ledger = tiny_pinned_ledger();
    let bin = ledger.to_bytes(LedgerEncoding::Binary);
    let hex: String = bin.iter().map(|b| format!("{b:02x}")).collect();
    assert_eq!(hex, TINY_LEDGER_EVWL_HEX);

    // The pinned bytes decode back to the identical stream and replay.
    let pinned = from_hex(TINY_LEDGER_EVWL_HEX);
    assert_eq!(LedgerEncoding::detect(&pinned), LedgerEncoding::Binary);
    let decoded = CampaignLedger::from_bytes(&pinned).expect("pinned bytes decode");
    assert_eq!(decoded, ledger);
    let outcome = replay_ledger_bytes(&pinned).expect("pinned bytes replay");
    assert_eq!(outcome.report.experiments, 1);
    assert_eq!(outcome.report.best_score, 0.25);
}

/// Like [`tiny_pinned_ledger`], but the stream also carries the
/// cooperative-ensemble transcript events (ISSUE 9): an ACL exchange, a
/// tournament match, and a meta-review. Pure audit trail — the replay
/// totals are unchanged.
fn tiny_pinned_ensemble_ledger() -> CampaignLedger {
    let mut ledger = tiny_pinned_ledger();
    let finished = ledger.events.pop().expect("CampaignFinished");
    ledger.events.push(CampaignEvent::EnsembleMessage {
        lane: 0,
        round: 1,
        performative: "propose".into(),
        sender: "generator".into(),
        receiver: "ranker".into(),
        conversation: 3,
        frame_bytes: 187,
    });
    ledger.events.push(CampaignEvent::TournamentMatch {
        lane: 0,
        round: 1,
        left: 0,
        right: 1,
        winner: 1,
        margin: 0.125,
    });
    ledger.events.push(CampaignEvent::MetaReview {
        lane: 0,
        round: 1,
        generator_weight: 0.625,
        evolver_weight: 0.375,
        critiques: 24,
    });
    ledger.events.push(finished);
    ledger
}

/// The exact `EVWL` bytes of [`tiny_pinned_ensemble_ledger`] — pins the
/// ensemble event tags (17/18/19) the way [`TINY_LEDGER_EVWL_HEX`] pins
/// the original vocabulary.
const TINY_ENSEMBLE_LEDGER_EVWL_HEX: &str = concat!(
    "4556574c0100010aa0ca17b8000a000000f0012b00001053746174696320c397",
    "2053696e676c65070004677269640180c0e285e368333333333333e33f0a006c",
    "3c0801000080bcc1960b2fee16020001000000000000e03f0002000000000000",
    "f03f0045f50f03000180b09dc2df0180ecded8ea019ca80f0400010000000000",
    "00d03f00000000d93c0507000100000c8322110001000770726f706f73650009",
    "67656e657261746f72000672616e6b657203bb0167600e120001000101000000",
    "000000c03f375b14130001000000000000e43f000000000000d83f1852ac2208",
    "010000000000000000d03f004f1be8b4814e4b3f111111111111913f00000000",
    "00a9186c833b5a",
);

/// Streams written *before* the ensemble events existed must keep
/// decoding unchanged, and the ensemble-bearing stream is pinned in both
/// dialects.
#[test]
fn ensemble_ledger_formats_are_stable_and_legacy_streams_still_decode() {
    // Legacy first: the pre-ensemble pinned bytes decode and replay
    // exactly as they did when written.
    let pinned = from_hex(TINY_LEDGER_EVWL_HEX);
    let legacy = CampaignLedger::from_bytes(&pinned).expect("legacy EVWL decodes");
    assert_eq!(legacy, tiny_pinned_ledger());

    let ledger = tiny_pinned_ensemble_ledger();
    let json = serde_json::to_string(&ledger).unwrap();
    assert!(json.contains(
        r#"{"EnsembleMessage":{"lane":0,"round":1,"performative":"propose","sender":"generator","receiver":"ranker","conversation":3,"frame_bytes":187}}"#
    ));
    assert!(json.contains(
        r#"{"TournamentMatch":{"lane":0,"round":1,"left":0,"right":1,"winner":1,"margin":0.125}}"#
    ));
    assert!(json.contains(
        r#"{"MetaReview":{"lane":0,"round":1,"generator_weight":0.625,"evolver_weight":0.375,"critiques":24}}"#
    ));

    let bin = ledger.to_bytes(LedgerEncoding::Binary);
    let hex: String = bin.iter().map(|b| format!("{b:02x}")).collect();
    assert_eq!(hex, TINY_ENSEMBLE_LEDGER_EVWL_HEX);

    // The pinned bytes decode back to the identical stream and replay
    // with the same totals — the transcript is audit-only.
    let decoded = CampaignLedger::from_bytes(&from_hex(TINY_ENSEMBLE_LEDGER_EVWL_HEX))
        .expect("pinned ensemble bytes decode");
    assert_eq!(decoded, ledger);
    let outcome = replay_ledger_bytes(&bin).expect("ensemble bytes replay");
    assert_eq!(outcome.report.experiments, 1);
    assert_eq!(outcome.report.best_score, 0.25);
}

/// A legacy JSON ledger — bytes written before the binary encoding
/// existed — decodes through the same `from_bytes` entry point and
/// replays to a byte-identical report. Archives never rot.
#[test]
fn legacy_json_ledger_replays_byte_identically() {
    let space = MaterialsSpace::generate(3, 6, 55);
    let mut cfg = CampaignConfig::for_cell(Cell::autonomous_science(), 9);
    cfg.horizon = SimDuration::from_days(1);
    let (live, ledger) = run_campaign_recorded(&space, &cfg);

    // What an old process archived: plain serde JSON.
    let legacy_bytes = serde_json::to_vec(&ledger).expect("serialize");
    assert_eq!(LedgerEncoding::detect(&legacy_bytes), LedgerEncoding::Json);
    assert_eq!(
        ledger.to_bytes(LedgerEncoding::Json),
        legacy_bytes,
        "Json encoding must stay byte-for-byte the legacy serde output"
    );

    let decoded = CampaignLedger::from_bytes(&legacy_bytes).expect("legacy bytes decode");
    assert_eq!(decoded, ledger);
    let outcome = replay_ledger_bytes(&legacy_bytes).expect("legacy bytes replay");
    assert_eq!(
        serde_json::to_string(&outcome.report).unwrap(),
        serde_json::to_string(&live).unwrap(),
        "legacy JSON replay must rebuild the live report byte-for-byte"
    );
}

/// Format-stability snapshots: the serialized bytes of each restart-file
/// type, pinned. A failure here means the on-disk format changed.
#[test]
fn restart_file_formats_are_stable() {
    let wf = Workflow::pipeline(3, SimDuration::from_hours(1));
    let ckpt = Checkpoint::from_report(&execute(&wf, 1, FaultPolicy::Retry, 1));
    assert_eq!(
        serde_json::to_string(&ckpt).unwrap(),
        r#"{"statuses":["Succeeded","Succeeded","Succeeded"],"elapsed":10800000000000,"attempts":3,"retries_used":[0,0,0]}"#
    );

    let sched = ChaosSchedule::derive(&RngRegistry::new(7), &ChaosSpec::hostile(), 2);
    assert_eq!(
        serde_json::to_string(&sched).unwrap(),
        r#"{"tasks":2,"injections":[{"task":0,"attempt":0,"kind":{"TransientIo":{"retry_after":10000000000}}},{"task":0,"attempt":1,"kind":{"Delay":{"extra":600000000000}}},{"task":1,"attempt":0,"kind":{"Delay":{"extra":600000000000}}}],"death":{"after_commits":2}}"#
    );

    let mut cfg = FleetConfig::new(5);
    cfg.push_cell(Cell::traditional_wms(), 2);
    assert_eq!(
        serde_json::to_string(&FleetCheckpoint::empty(&cfg)).unwrap(),
        r#"{"master_seed":5,"shard_seeds":[2654648237662476944,7415722410050746708],"completed":[null,null]}"#
    );
}

// ---- service artifacts (ISSUE 6) --------------------------------------------
//
// The multi-tenant service's submissions and checkpoints are durable
// artifacts too: submissions arrive over the wire, and a checkpoint must
// decode in a process that did not write it.

use evoflow::core::{
    resume_service, run_service, run_service_until, ServiceCheckpoint, ServiceConfig, Submission,
    TenantSpec,
};

fn small_service_config() -> ServiceConfig {
    let mut cfg = ServiceConfig::new(5);
    cfg.threads = 1;
    cfg.push_tenant(TenantSpec::new("alice").with_weight(2).with_max_queued(4));
    cfg.push_tenant(TenantSpec::new("bob"));
    let mut campaign = CampaignConfig::for_cell(Cell::traditional_wms(), 0);
    campaign.horizon = SimDuration::from_days(1);
    for _ in 0..2 {
        cfg.submit("alice", campaign.clone());
        cfg.submit("bob", campaign.clone());
    }
    cfg
}

#[test]
fn service_config_round_trips_and_reruns_identically() {
    let space = MaterialsSpace::generate(3, 6, 55);
    let cfg = small_service_config();
    let cfg2: ServiceConfig = round_trip(&cfg);
    assert_eq!(cfg, cfg2);
    let (a_report, a_ledger) = run_service(&space, &cfg).unwrap();
    let (b_report, b_ledger) = run_service(&space, &cfg2).unwrap();
    assert_eq!(a_report, b_report);
    assert_eq!(
        serde_json::to_string(&a_ledger).unwrap(),
        serde_json::to_string(&b_ledger).unwrap()
    );
}

#[test]
fn service_checkpoint_round_trips_and_resumes_identically() {
    let space = MaterialsSpace::generate(3, 6, 55);
    let cfg = small_service_config();
    let ckpt = run_service_until(&space, &cfg, 1).unwrap();
    let ckpt2: ServiceCheckpoint = round_trip(&ckpt);
    assert_eq!(ckpt, ckpt2);
    let (a_report, a_ledger) = resume_service(&space, &cfg, &ckpt).unwrap();
    let (b_report, b_ledger) = resume_service(&space, &cfg, &ckpt2).unwrap();
    assert_eq!(a_report, b_report);
    assert_eq!(
        serde_json::to_string(&a_ledger).unwrap(),
        serde_json::to_string(&b_ledger).unwrap()
    );
}

/// Format-stability snapshots for the service wire types: a
/// [`Submission`] (what a tenant actually sends), a [`TenantSpec`], and
/// a zero-commit [`ServiceCheckpoint`] (which pins the seed handshake,
/// the per-admission report/ledger slots, and the kill audit trail
/// without pinning campaign content).
#[test]
fn service_file_formats_are_stable() {
    let mut campaign = CampaignConfig::for_cell(Cell::traditional_wms(), 0);
    campaign.horizon = SimDuration::from_days(1);
    let submission = Submission {
        tenant: "alice".into(),
        campaign,
    };
    assert_eq!(
        serde_json::to_string(&submission).unwrap(),
        concat!(
            r#"{"tenant":"alice","campaign":{"cell":{"intelligence":"Static","composition":"Pipeline"},"#,
            r#""seed":0,"horizon":86400000000000,"batch_per_lane":4,"lanes":null,"coordination":null,"#,
            r#""max_experiments":1000000,"record_knowledge":true,"planner":null}}"#
        )
    );

    assert_eq!(
        serde_json::to_string(&TenantSpec::new("alice").with_weight(2).with_max_queued(4)).unwrap(),
        r#"{"name":"alice","weight":2,"max_queued":4,"max_admitted":0}"#
    );

    let space = MaterialsSpace::generate(2, 4, 1);
    let mut cfg = ServiceConfig::new(5);
    cfg.threads = 1;
    cfg.push_tenant(TenantSpec::new("alice"));
    let mut c = CampaignConfig::for_cell(Cell::traditional_wms(), 0);
    c.horizon = SimDuration::from_days(1);
    cfg.submit("alice", c);
    let ckpt = run_service_until(&space, &cfg, 0).unwrap();
    assert_eq!(
        serde_json::to_string(&ckpt).unwrap(),
        concat!(
            r#"{"master_seed":5,"seeds":[9602481341964324287],"completed":[null],"ledgers":[null],"#,
            r#""events":[{"CoordinatorKilled":{"after_commits":0}},{"CheckpointTaken":{"committed":0,"total":1}}]}"#
        )
    );
}

/// A pre-service-layer record (tenant with only a name, config without
/// pacing fields) must keep decoding: absent knobs default to 0, which
/// the scheduler normalises to "weight 1, no quotas, default pacing" —
/// so a legacy config plans exactly like one that spells the defaults
/// out.
#[test]
fn service_config_without_service_fields_still_decodes() {
    let legacy = r#"{
        "master_seed": 5,
        "threads": 1,
        "tenants": [{"name": "alice"}],
        "submissions": []
    }"#;
    let cfg: ServiceConfig = serde_json::from_str(legacy).expect("legacy config decodes");
    assert_eq!(cfg.ingest_per_round, 0);
    assert_eq!(cfg.dispatch_per_round, 0);
    assert_eq!(
        cfg.effective_ingest_per_round(),
        evoflow::core::DEFAULT_INGEST_PER_ROUND
    );
    assert_eq!(
        cfg.effective_dispatch_per_round(),
        evoflow::core::DEFAULT_DISPATCH_PER_ROUND
    );
    let tenant = &cfg.tenants[0];
    assert_eq!(tenant.weight, 0);
    assert_eq!(tenant.effective_weight(), 1);
    assert_eq!(tenant.effective_max_queued(), usize::MAX);
    assert_eq!(tenant.effective_max_admitted(), usize::MAX);

    // A legacy config with real submissions plans identically to the
    // spelled-out defaults.
    let mut legacy_cfg = cfg.clone();
    let mut explicit = cfg.clone();
    explicit.ingest_per_round = evoflow::core::DEFAULT_INGEST_PER_ROUND;
    explicit.dispatch_per_round = evoflow::core::DEFAULT_DISPATCH_PER_ROUND;
    explicit.tenants[0].weight = 1;
    let mut campaign = CampaignConfig::for_cell(Cell::traditional_wms(), 0);
    campaign.horizon = SimDuration::from_days(1);
    for _ in 0..3 {
        legacy_cfg.submit("alice", campaign.clone());
        explicit.submit("alice", campaign.clone());
    }
    assert_eq!(
        evoflow::core::plan_service(&legacy_cfg).unwrap(),
        evoflow::core::plan_service(&explicit).unwrap()
    );
}
