//! Workspace-level property tests: invariants that span crates.

use evoflow::coord::StateStore;
use evoflow::core::{run_campaign, CampaignConfig, Cell, CoordinationMode, MaterialsSpace};
use evoflow::sim::SimDuration;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any seeded landscape + any matrix corner yields a well-formed
    /// campaign report: non-negative counters, discoveries ≤ hits ≤
    /// experiments, and peaks found never exceed latent peaks.
    #[test]
    fn campaign_reports_are_well_formed(
        seed in 0u64..500,
        peaks in 3usize..12,
        frontier in any::<bool>(),
    ) {
        let space = MaterialsSpace::generate(3, peaks, seed);
        let cell = if frontier {
            Cell::autonomous_science()
        } else {
            Cell::traditional_wms()
        };
        let mut cfg = CampaignConfig::for_cell(cell, seed);
        cfg.horizon = SimDuration::from_days(2);
        cfg.coordination = Some(CoordinationMode::Autonomous);
        let r = run_campaign(&space, &cfg);
        prop_assert!(r.total_hits <= r.experiments);
        prop_assert!(r.distinct_discoveries <= peaks);
        prop_assert!((r.distinct_discoveries as u64) <= r.total_hits.max(1));
        prop_assert!(r.decision_wait_hours >= 0.0);
        prop_assert!(r.execution_hours > 0.0 || r.experiments == 0);
        if let Some(t) = r.time_to_first_hours {
            prop_assert!(t >= 0.0 && t <= r.sim_days * 24.0 + 48.0);
        }
    }

    /// State stores converge regardless of merge order (associativity up
    /// to LWW tie-breaking by site name).
    #[test]
    fn state_sync_order_independent(
        writes in prop::collection::vec(("[a-c]{1}", "[a-z]{1,4}"), 1..12)
    ) {
        let sites = ["alpha", "beta", "gamma"];
        let mut stores: Vec<StateStore> =
            sites.iter().map(|s| StateStore::new(*s)).collect();
        for (i, (key, value)) in writes.iter().enumerate() {
            stores[i % 3].set(key.clone(), value.clone());
        }
        // Merge in two different orders.
        let mut forward = stores[0].clone();
        forward.merge(&stores[1]);
        forward.merge(&stores[2]);
        let mut backward = stores[2].clone();
        backward.merge(&stores[1]);
        backward.merge(&stores[0]);
        for (key, _) in &writes {
            prop_assert_eq!(forward.get(key), backward.get(key));
        }
    }

    /// The materials landscape is a pure function of its seed.
    #[test]
    fn landscape_is_pure(seed in any::<u64>(), x in 0.0f64..1.0, y in 0.0f64..1.0) {
        let a = MaterialsSpace::generate(2, 5, seed);
        let b = MaterialsSpace::generate(2, 5, seed);
        prop_assert_eq!(a.latent(&[x, y]).to_bits(), b.latent(&[x, y]).to_bits());
    }
}
