//! Cross-crate integration: the full discovery stack from landscape to
//! knowledge artifacts, exercising sm + cogsim + agents + knowledge +
//! facility + core together.

use evoflow::agents::Pattern;
use evoflow::core::{run_campaign, CampaignConfig, Cell, CoordinationMode, MaterialsSpace};
use evoflow::facility::HumanModel;
use evoflow::sim::SimDuration;
use evoflow::sm::IntelligenceLevel;

fn space() -> MaterialsSpace {
    MaterialsSpace::generate(3, 8, 1234)
}

#[test]
fn full_autonomous_campaign_produces_all_artifacts() {
    let mut cfg = CampaignConfig::for_cell(Cell::autonomous_science(), 5);
    cfg.horizon = SimDuration::from_days(5);
    cfg.coordination = Some(CoordinationMode::Autonomous);
    let r = run_campaign(&space(), &cfg);

    assert!(
        r.experiments > 100,
        "too few experiments: {}",
        r.experiments
    );
    assert!(r.kg_nodes > 0, "knowledge graph empty");
    assert!(r.prov_activities > 0, "no provenance captured");
    assert!(r.tokens > 0, "no inference accounted");
    assert!(r.best_score > 0.0);
}

#[test]
fn acceleration_ordering_holds_across_the_matrix_diagonal() {
    // Discovery capability must not decrease along the paper's diagonal.
    let cells = [
        (
            Cell::new(IntelligenceLevel::Static, Pattern::Pipeline),
            CoordinationMode::HumanGated(HumanModel::typical_pi()),
        ),
        (
            Cell::new(IntelligenceLevel::Optimizing, Pattern::Hierarchical),
            CoordinationMode::HumanGated(HumanModel::attentive_operator()),
        ),
        (Cell::autonomous_science(), CoordinationMode::Autonomous),
    ];
    let space = space();
    let rates: Vec<f64> = cells
        .iter()
        .map(|(cell, coord)| {
            let mut cfg = CampaignConfig::for_cell(*cell, 9);
            cfg.horizon = SimDuration::from_days(10);
            cfg.coordination = Some(*coord);
            run_campaign(&space, &cfg).samples_per_day
        })
        .collect();
    assert!(
        rates[0] < rates[1] && rates[1] < rates[2],
        "throughput not increasing along the diagonal: {rates:?}"
    );
    assert!(
        rates[2] / rates[0] > 10.0,
        "frontier-vs-baseline ratio below 10x: {rates:?}"
    );
}

#[test]
fn campaigns_replay_bit_identically() {
    let mut cfg = CampaignConfig::for_cell(Cell::autonomous_science(), 31);
    cfg.horizon = SimDuration::from_days(3);
    cfg.coordination = Some(CoordinationMode::Autonomous);
    let s = space();
    let a = run_campaign(&s, &cfg);
    let b = run_campaign(&s, &cfg);
    assert_eq!(a.experiments, b.experiments);
    assert_eq!(a.total_hits, b.total_hits);
    assert_eq!(a.best_score.to_bits(), b.best_score.to_bits());
    assert_eq!(a.kg_nodes, b.kg_nodes);
    assert_eq!(a.tokens, b.tokens);
}

#[test]
fn seed_changes_the_trace_but_not_the_shape() {
    let s = space();
    let run = |seed| {
        let mut cfg = CampaignConfig::for_cell(Cell::autonomous_science(), seed);
        cfg.horizon = SimDuration::from_days(5);
        cfg.coordination = Some(CoordinationMode::Autonomous);
        run_campaign(&s, &cfg)
    };
    let a = run(1);
    let b = run(2);
    assert_ne!(a.experiments, b.experiments);
    // Shape: both find materials and process hundreds of samples/day.
    assert!(a.distinct_discoveries > 0 && b.distinct_discoveries > 0);
    assert!(a.samples_per_day > 50.0 && b.samples_per_day > 50.0);
}

#[test]
fn sample_budget_is_a_hard_physical_constraint() {
    let mut cfg = CampaignConfig::for_cell(Cell::autonomous_science(), 3);
    cfg.horizon = SimDuration::from_days(30);
    cfg.coordination = Some(CoordinationMode::Autonomous);
    cfg.max_experiments = 250;
    let r = run_campaign(&space(), &cfg);
    assert!(r.experiments <= 250);
}
