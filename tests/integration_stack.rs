//! Cross-crate integration: runtime + federation + coordination + data
//! layers wired together, and WMS baselines interoperating with the
//! state-machine core.

use evoflow::coord::{Causality, Message, StateStore};
use evoflow::core::LabRuntime;
use evoflow::knowledge::{agent_published, assess};
use evoflow::sim::SimDuration;
use evoflow::sm::dag::shapes;
use evoflow::sm::verify_fsm;
use evoflow::wms::{execute, FaultPolicy, TaskSpec, Workflow};

#[test]
fn lab_runtime_layers_interoperate() {
    let mut rt = LabRuntime::standard(77);
    assert_eq!(rt.smoke_cycle(), 6);

    // Coordination layer serves the other layers.
    let sub = rt.coordination.bus.subscribe("results");
    rt.coordination
        .bus
        .publish(Message::text("results", "beamline", "peak at 2θ=31.8°"));
    assert_eq!(sub.drain().len(), 1);

    // Data layer accepts FAIR-gated publication.
    let meta = agent_published("doi:10.0/evoflow-run", "campaign results", "prov/1");
    assert!(assess(&meta).is_fair());
}

#[test]
fn federation_discovers_negotiates_and_moves_data() {
    let mut rt = LabRuntime::standard(3);
    let providers = rt.federation.discover("simulation/dft");
    assert!(!providers.is_empty());

    let hs = rt
        .federation
        .handshake("autonomous-lab", "simulation/dft")
        .expect("hpc reachable");
    assert!(hs.authenticated);
    assert_eq!(hs.to, "hpc-center");

    let plan = rt
        .federation
        .transfer("autonomous-lab", "hpc-center", 25.0)
        .expect("fabric connected");
    assert!(plan.duration.as_secs_f64() > 0.0);
    assert!(!plan.route.is_empty());
}

#[test]
fn wms_workflows_verify_as_state_machines() {
    // Every workflow the WMS runs has a formally verifiable machine —
    // the §3.1 unification, end to end.
    let dag = shapes::layered(3, 3);
    let specs: Vec<TaskSpec> = (0..dag.len())
        .map(|i| TaskSpec::reliable(format!("t{i}"), SimDuration::from_mins(20)))
        .collect();
    let wf = Workflow::new(dag.clone(), specs);
    let run = execute(&wf, 4, FaultPolicy::Retry, 1);
    assert!(run.completed);

    let machine = dag.to_fsm(1_000_000).expect("frontier fits");
    let v = verify_fsm(&machine, 1_000_000);
    assert!(v.complete && v.goal_reachable && v.all_states_can_finish);
}

#[test]
fn replicated_state_converges_across_sites() {
    let mut hpc = StateStore::new("hpc");
    let mut edge = StateStore::new("edge");
    let mut hub = StateStore::new("hub");

    hpc.set("campaign/phase", "simulation");
    edge.set("sample/42", "annealed");
    hub.set("model/surrogate", "v3");

    // Gossip-style pairwise merges in arbitrary order.
    edge.merge(&hpc);
    hub.merge(&edge);
    hpc.merge(&hub);
    edge.merge(&hpc);

    for store in [&hpc, &edge] {
        assert_eq!(store.get("campaign/phase"), Some("simulation"));
        assert_eq!(store.get("sample/42"), Some("annealed"));
        assert_eq!(store.get("model/surrogate"), Some("v3"));
    }
    assert_ne!(hpc.causality(&edge), Causality::Concurrent);
}

#[test]
fn intervention_loop_round_trips() {
    let mut rt = LabRuntime::standard(5);
    rt.human
        .request_intervention("Ω proposed rewriting the goal set");
    assert_eq!(rt.inventory().iter().filter(|c| !c.healthy).count(), 0);
    let resolved = rt.human.resolve_intervention().expect("queued");
    assert!(resolved.contains("Ω"));
}
