//! Integration: scientific intent → capability matching → SLA negotiation
//! → validated semantic transport. The §5.2 pipeline end to end, across
//! `evoflow-intent` and `evoflow-protocol`.

use bytes::{Bytes, BytesMut};
use evoflow::intent::{
    compile, Comparator, GoalSpec, GoalTree, Hypothesis, NodeKind, ObjectiveSense, Verdict,
};
use evoflow::protocol::negotiation::issue;
use evoflow::protocol::{
    decode_frame, encode_frame, match_offers, negotiate, AclMessage, CapabilityOffer, Conversation,
    ConversationState, Frame, FrameKind, Negotiator, Performative, Preferences, Requirement,
    Strategy, ValueRange,
};
use std::collections::BTreeMap;

fn goal() -> GoalSpec {
    GoalSpec::builder("g-oxides", "wide-gap oxide search")
        .objective("band_gap_eV", ObjectiveSense::Maximize)
        .target(3.2)
        .constraint("toxicity", Comparator::Le, 0.05, true)
        .budget(300, 50_000, 504.0)
        .success("band_gap_eV", Comparator::Ge, 3.0)
        .build()
}

#[test]
fn goal_gates_guard_a_simulated_campaign() {
    let compiled = compile(&goal()).unwrap();
    let mut metrics = BTreeMap::new();
    metrics.insert("band_gap_eV".to_string(), 2.1);
    metrics.insert("toxicity".to_string(), 0.01);
    // Mid-campaign: within budget, no violation.
    assert!(compiled
        .violated_gates(&metrics, 120, 9_000, 100.0)
        .is_empty());
    assert!(!compiled.target_reached(&metrics));
    // A toxic candidate trips the hard gate even within budget.
    metrics.insert("toxicity".to_string(), 0.5);
    assert_eq!(
        compiled.violated_gates(&metrics, 120, 9_000, 100.0),
        vec!["g-oxides/bound/toxicity".to_string()]
    );
    // Exceeding the sample budget trips its gate.
    metrics.insert("toxicity".to_string(), 0.01);
    assert_eq!(
        compiled.violated_gates(&metrics, 301, 9_000, 100.0),
        vec!["g-oxides/samples".to_string()]
    );
}

#[test]
fn matched_facility_negotiates_and_transcript_stays_in_protocol() {
    // Matchmaking.
    let req = Requirement::new("synthesis")
        .with_range("temperature", ValueRange::new(900.0, 1300.0, "K"))
        .with_tag("oxide-capable");
    let offers = vec![
        CapabilityOffer::new("synthesis", "lab-a", 2.0)
            .with_range("temperature", ValueRange::new(300.0, 1500.0, "K"))
            .with_tag("oxide-capable"),
        CapabilityOffer::new("synthesis", "lab-b", 1.0)
            .with_range("temperature", ValueRange::new(300.0, 800.0, "K")) // too cold
            .with_tag("oxide-capable"),
    ];
    let ranked = match_offers(&req, &offers);
    assert_eq!(ranked.len(), 1);
    let facility = &ranked[0].0.facility;
    assert_eq!(facility, "lab-a");

    // Negotiation.
    let issues = vec![issue("fee", 1.0, 10.0), issue("samples_per_day", 5.0, 50.0)];
    let fac = Negotiator::new(
        facility.clone(),
        Preferences::new(vec![1.0, -0.4], 0.25),
        Strategy::Boulware { beta: 0.5 },
    );
    let planner = Negotiator::new(
        "planner",
        Preferences::new(vec![-1.0, 0.9], 0.25),
        Strategy::Conceder { beta: 2.0 },
    );
    let outcome = negotiate(&planner, &fac, &issues, 40);
    let contract = outcome.agreement.expect("agreement reachable");

    // Replay the negotiation as speech acts and validate the protocol:
    // alternating Propose/CounterPropose closed by AcceptProposal.
    let mut convo = Conversation::new(9);
    for (i, (who, _)) in outcome.transcript.iter().enumerate() {
        let perf = if i == 0 {
            Performative::Propose
        } else {
            Performative::CounterPropose
        };
        let other = if who == "planner" {
            facility.clone()
        } else {
            "planner".into()
        };
        convo
            .accept(AclMessage::new(perf, who, other, 9, "sla/1", "terms"))
            .unwrap_or_else(|e| panic!("offer {i} out of protocol: {e}"));
    }
    let last_speaker = &outcome.transcript.last().unwrap().0;
    let acceptor = if last_speaker == "planner" {
        facility.clone()
    } else {
        "planner".into()
    };
    convo
        .accept(AclMessage::new(
            Performative::AcceptProposal,
            acceptor,
            last_speaker,
            9,
            "sla/1",
            "done",
        ))
        .unwrap();
    assert_eq!(convo.state(), ConversationState::Closed);

    // Contract survives wire transport inside a checksummed frame.
    let frame = Frame {
        version: 2,
        kind: FrameKind::Acl,
        flags: 0,
        conversation: 9,
        payload: Bytes::from(serde_json::to_vec(&contract).unwrap()),
    };
    let mut buf = BytesMut::from(&encode_frame(&frame).unwrap()[..]);
    let decoded = decode_frame(&mut buf).unwrap();
    let back: evoflow::protocol::Contract = serde_json::from_slice(&decoded.payload).unwrap();
    assert_eq!(back, contract);
}

#[test]
fn hypothesis_lifecycle_from_goal_decomposition() {
    // Decompose the campaign, then drive one hypothesis to a verdict with
    // the kind of evidence the campaign loop produces.
    let mut tree = GoalTree::new("find wide-gap oxide", NodeKind::And);
    let hypothesize = tree.add_child(
        tree.root(),
        "form hypothesis",
        NodeKind::Leaf { effort: 1.0 },
    );
    let test = tree.add_child(
        tree.root(),
        "test hypothesis",
        NodeKind::Leaf { effort: 5.0 },
    );
    assert_eq!(tree.frontier(tree.root()), vec![hypothesize, test]);

    let mut h = Hypothesis::new(
        "h-ni-gap",
        "Ni doping above 10% raises band gap beyond 3 eV",
        evoflow::intent::hypothesis::Prediction {
            metric: "band_gap_eV".into(),
            comparator: Comparator::Ge,
            value: 3.0,
        },
    )
    .with_variable("ni_fraction", true);
    assert!(h.is_falsifiable());
    tree.set_progress(hypothesize, 1.0);

    // Three refuting assays: the hypothesis dies, the goal does not.
    for observed in [2.1, 2.3, 1.9] {
        h.observe(observed, 1.0).unwrap();
    }
    assert_eq!(h.verdict(), Verdict::Refuted);
    tree.set_progress(test, 1.0);
    assert!(tree.complete(tree.root()));
}
