//! End-to-end federated scheduling: a campaign fleet placed across the
//! standard five-facility federation, disturbed by a seeded facility
//! outage, killed mid-run, and resumed — with every arm required to
//! reproduce identical bytes (the acceptance gate of ISSUE 4).

use evoflow::core::{
    resume_campaign_fleet_federated, run_campaign_fleet, run_campaign_fleet_federated,
    run_campaign_fleet_federated_until, Cell, FederatedConfig, FederatedError, FleetConfig,
    PlacementPolicyKind, SiteSpec,
};
use evoflow::facility::FacilityKind;
use evoflow::sim::SimDuration;
use evoflow::testbed::{certify_federation, FederationGrade};

fn space() -> evoflow::core::MaterialsSpace {
    evoflow::core::MaterialsSpace::generate(3, 8, 20260704)
}

fn fleet(threads: usize) -> FleetConfig {
    let mut f = FleetConfig::new(31);
    f.horizon = SimDuration::from_days(1);
    f.threads = threads;
    f.push_cell(Cell::traditional_wms(), 2);
    f.push_cell(Cell::autonomous_science(), 2);
    f.push_cell(
        Cell::new(
            evoflow::sm::IntelligenceLevel::Learning,
            evoflow::agents::Pattern::Mesh,
        ),
        2,
    );
    f
}

#[test]
fn standard_federation_hosts_every_policy() {
    let space = space();
    let plain = run_campaign_fleet(&space, &fleet(1));
    for policy in PlacementPolicyKind::all() {
        let cfg = FederatedConfig::standard(fleet(1), policy);
        let report = run_campaign_fleet_federated(&space, &cfg).unwrap();
        assert_eq!(report.policy, policy.label());
        assert_eq!(report.placements.len(), 6);
        assert_eq!(report.facilities.len(), 5);
        assert!(report.makespan_hours > 0.0);
        assert!(report.facilities.iter().all(|f| f.utilization >= 0.0));
        // Placement charges time and movement; the science is untouched.
        assert_eq!(report.fleet, plain);
    }
}

#[test]
fn federated_report_identical_at_1_2_4_threads() {
    let space = space();
    for policy in PlacementPolicyKind::all() {
        let one =
            run_campaign_fleet_federated(&space, &FederatedConfig::standard(fleet(1), policy))
                .unwrap();
        let two =
            run_campaign_fleet_federated(&space, &FederatedConfig::standard(fleet(2), policy))
                .unwrap();
        let four =
            run_campaign_fleet_federated(&space, &FederatedConfig::standard(fleet(4), policy))
                .unwrap();
        let bytes = serde_json::to_string(&one).unwrap();
        assert_eq!(bytes, serde_json::to_string(&two).unwrap(), "{policy:?}");
        assert_eq!(bytes, serde_json::to_string(&four).unwrap(), "{policy:?}");
    }
}

#[test]
fn outage_kill_resume_reproduces_identical_bytes_across_thread_counts() {
    let space = space();
    let reference = {
        let cfg =
            FederatedConfig::standard(fleet(1), PlacementPolicyKind::LeastWait).with_outage_seed(9);
        serde_json::to_string(&run_campaign_fleet_federated(&space, &cfg).unwrap()).unwrap()
    };
    // Kill at 2 commits under one thread count, resume under another:
    // every combination must reproduce the reference bytes.
    for (kill_threads, resume_threads) in [(1usize, 4usize), (2, 1), (4, 2)] {
        let kill_cfg =
            FederatedConfig::standard(fleet(kill_threads), PlacementPolicyKind::LeastWait)
                .with_outage_seed(9);
        let ckpt = run_campaign_fleet_federated_until(&space, &kill_cfg, 2).unwrap();
        let resume_cfg =
            FederatedConfig::standard(fleet(resume_threads), PlacementPolicyKind::LeastWait)
                .with_outage_seed(9);
        let resumed = resume_campaign_fleet_federated(&space, &resume_cfg, &ckpt).unwrap();
        assert_eq!(
            serde_json::to_string(&resumed).unwrap(),
            reference,
            "kill at {kill_threads} threads, resume at {resume_threads}"
        );
    }
}

#[test]
fn every_policy_certifies_f3_on_the_testbed() {
    let space = space();
    for policy in PlacementPolicyKind::all() {
        let cert = certify_federation(&space, &FederatedConfig::standard(fleet(1), policy), 2);
        assert_eq!(cert.grade, FederationGrade::F3CrashSurvivor, "{policy:?}");
    }
}

#[test]
fn zero_capacity_federation_refuses_placement() {
    let sites = vec![
        SiteSpec::new("dead-a", FacilityKind::Hpc).with_nodes(0),
        SiteSpec::new("dead-b", FacilityKind::Cloud).with_nodes(0),
    ];
    let cfg = FederatedConfig::new(fleet(1), PlacementPolicyKind::LeastWait, sites);
    match run_campaign_fleet_federated(&space(), &cfg) {
        Err(FederatedError::NoCapacity { campaign: 0, .. }) => {}
        other => panic!("expected NoCapacity, got {other:?}"),
    }
    // And the kill/checkpoint entry point refuses identically, so a
    // checkpoint can never exist for an unplaceable federation.
    assert!(matches!(
        run_campaign_fleet_federated_until(&space(), &cfg, 1),
        Err(FederatedError::NoCapacity { .. })
    ));
}

#[test]
fn drifted_federation_cannot_consume_a_checkpoint() {
    let space = space();
    let cfg = FederatedConfig::standard(fleet(1), PlacementPolicyKind::DataLocality);
    let ckpt = run_campaign_fleet_federated_until(&space, &cfg, 1).unwrap();
    let mut drifted = cfg.clone();
    drifted.inter_arrival = SimDuration::from_hours(1);
    assert!(resume_campaign_fleet_federated(&space, &drifted, &ckpt).is_err());
    // The unmodified config resumes fine.
    assert!(resume_campaign_fleet_federated(&space, &cfg, &ckpt).is_ok());
}
