//! Integration: certification as federation admission control.
//!
//! The AISLE roadmap's operational use of a shared testbed: before a
//! controller is allowed to run *unattended* on federation hardware, its
//! certificate must clear the facility's admission bar. Certificates are
//! exchanged as JSON (what a facility gateway consumes) and markdown
//! (what its review board reads).

use evoflow::sm::{controller_for_level, IntelligenceLevel};
use evoflow::testbed::{certify, to_markdown, AutonomyCertificate, AutonomyGrade};

/// A facility policy: autonomous (human-on-the-loop) operation demands at
/// least L3; human-in-the-loop operation accepts L1.
fn admissible_unattended(cert: &AutonomyCertificate) -> bool {
    cert.at_least(AutonomyGrade::L3Optimizing)
}

#[test]
fn adaptive_controller_admitted_supervised_only() {
    let factory = |seed: u64| controller_for_level(IntelligenceLevel::Adaptive, seed);
    let cert = certify("beamline-pid/1.0", &factory, 77);
    assert!(cert.at_least(AutonomyGrade::L1Adaptive));
    assert!(
        !admissible_unattended(&cert),
        "an adaptive controller must not run unattended"
    );
}

#[test]
fn intelligent_controller_admitted_unattended() {
    let factory = |seed: u64| controller_for_level(IntelligenceLevel::Intelligent, seed);
    let cert = certify("lab-omega/0.9", &factory, 77);
    assert!(admissible_unattended(&cert));
}

#[test]
fn certificate_survives_json_exchange_between_facilities() {
    let factory = |seed: u64| controller_for_level(IntelligenceLevel::Optimizing, seed);
    let cert = certify("tuner/4.2", &factory, 77);
    // Facility A issues; facility B parses and re-evaluates the policy on
    // the *evidence*, not just the headline grade.
    let json = serde_json::to_string(&cert).unwrap();
    let received: AutonomyCertificate = serde_json::from_str(&json).unwrap();
    assert_eq!(received.achieved, cert.achieved);
    assert!(admissible_unattended(&received));
    assert!(received.rungs.iter().take(4).all(|r| r.passed));
    // The human-readable form carries the same verdict.
    let md = to_markdown(&received);
    assert!(md.contains("L3 (optimizing)"));
    assert!(md.contains("tuner/4.2"));
}
