//! Fleet executor integration: determinism across thread counts (down to
//! the serialized bytes), heterogeneous-cell load handling, and agreement
//! between fleet aggregates and the underlying campaign engine.

use evoflow::core::{
    run_campaign, run_campaign_fleet, run_campaign_fleet_timed, Cell, FleetConfig, MaterialsSpace,
};
use evoflow::sim::SimDuration;

fn heterogeneous_fleet(master_seed: u64, threads: usize) -> FleetConfig {
    let mut cfg = FleetConfig::new(master_seed);
    cfg.horizon = SimDuration::from_days(2);
    cfg.threads = threads;
    // Mix the cheapest and the most expensive corners of the matrix so
    // the work-stealing queue actually has imbalance to absorb.
    cfg.push_cell(Cell::traditional_wms(), 3);
    cfg.push_cell(Cell::autonomous_science(), 3);
    cfg.push_cell(
        Cell::new(
            evoflow::sm::IntelligenceLevel::Learning,
            evoflow::agents::Pattern::Mesh,
        ),
        2,
    );
    cfg
}

#[test]
fn fleet_report_is_byte_identical_across_thread_counts() {
    let space = MaterialsSpace::generate(3, 8, 4242);
    let serial = run_campaign_fleet(&space, &heterogeneous_fleet(7, 1));
    let parallel = run_campaign_fleet(&space, &heterogeneous_fleet(7, 4));
    // Identical down to the serialized bytes — the acceptance bar for
    // reproducible fleet science.
    let a = serde_json::to_string(&serial).expect("reports serialize");
    let b = serde_json::to_string(&parallel).expect("reports serialize");
    assert_eq!(a, b);
}

#[test]
fn fleet_seeds_make_campaigns_distinct() {
    let space = MaterialsSpace::generate(3, 8, 4242);
    let report = run_campaign_fleet(&space, &heterogeneous_fleet(7, 2));
    // Replications at the same cell get different derived seeds, so the
    // three autonomous campaigns should not be copies of each other.
    let autos: Vec<_> = report
        .reports
        .iter()
        .filter(|r| r.cell_label.contains("Intelligent"))
        .collect();
    assert_eq!(autos.len(), 3);
    assert!(
        autos
            .windows(2)
            .any(|w| w[0].experiments != w[1].experiments || w[0].best_score != w[1].best_score),
        "replications with distinct seeds should diverge"
    );
}

#[test]
fn different_master_seeds_differ() {
    let space = MaterialsSpace::generate(3, 8, 4242);
    let a = run_campaign_fleet(&space, &heterogeneous_fleet(7, 2));
    let b = run_campaign_fleet(&space, &heterogeneous_fleet(8, 2));
    assert_ne!(
        serde_json::to_string(&a).unwrap(),
        serde_json::to_string(&b).unwrap()
    );
}

#[test]
fn fleet_matches_single_campaign_engine() {
    // A fleet of one is exactly one run_campaign with the derived seed.
    let space = MaterialsSpace::generate(3, 8, 4242);
    let mut cfg = FleetConfig::new(11);
    cfg.horizon = SimDuration::from_days(1);
    cfg.push_cell(Cell::autonomous_science(), 1);
    let fleet = run_campaign_fleet(&space, &cfg);

    let shard = cfg.sharded_campaigns().remove(0);
    let solo = run_campaign(&space, &shard);
    assert_eq!(fleet.reports.len(), 1);
    assert_eq!(
        serde_json::to_string(&fleet.reports[0]).unwrap(),
        serde_json::to_string(&solo).unwrap()
    );
    assert_eq!(fleet.total_experiments, solo.experiments);
}

#[test]
fn timed_variant_reports_threads_and_elapsed() {
    let space = MaterialsSpace::generate(3, 8, 4242);
    let (report, timing) = run_campaign_fleet_timed(&space, &heterogeneous_fleet(7, 2));
    assert_eq!(timing.threads, 2);
    assert!(timing.wall_clock.as_nanos() > 0);
    assert!(report.total_experiments > 0);
}
