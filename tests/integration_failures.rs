//! Failure-injection integration tests: the system must stay safe and
//! predictable when the world misbehaves — hallucinating models, broken
//! instruments, revoked credentials, and stalled humans (§4.1's
//! reliability challenges).

use evoflow::agents::{Candidate, DesignAgent, HypothesisAgent};
use evoflow::cogsim::{CognitiveModel, ModelProfile};
use evoflow::coord::{AuthError, Authority};
use evoflow::core::{Action, GovernanceEngine, Policy, Verdict};
use evoflow::facility::presets;
use evoflow::sim::SimRng;
use evoflow::wms::{execute, FaultPolicy, TaskSpec, Workflow};
use evoflow_sm::dag::shapes;

#[test]
fn hallucination_storm_is_fully_contained_by_validation() {
    // A model that hallucinates on every generation.
    let mut profile = ModelProfile::fast_llm();
    profile.hallucination_rate = 1.0;
    let mut hypo = HypothesisAgent::new(CognitiveModel::new(profile, 13), 3);
    let mut design = DesignAgent::new(3);

    let candidates = hypo.propose(&[], 50);
    let accepted: Vec<&Candidate> = candidates
        .iter()
        .filter(|c| design.design(c).is_ok())
        .collect();
    // Every proposal is flagged; only in-bounds ones may pass the gate,
    // and none that passed can be out of physical bounds.
    assert!(candidates.iter().all(|c| c.hallucinated));
    for c in &accepted {
        assert!(c.params.iter().all(|v| (0.0..=1.0).contains(v)));
    }
    assert!(
        design.rejected() > 0,
        "a hallucination storm must trip the validation gate"
    );
}

#[test]
fn instrument_failures_extend_but_do_not_corrupt_operations() {
    let mut broken = presets::synthesis_robot("bot");
    broken.failure.op_failure_prob = 1.0;
    let healthy = presets::synthesis_robot("bot2");
    let mut rng_a = SimRng::from_seed_u64(1);
    let mut rng_b = SimRng::from_seed_u64(1);
    let (dur_broken, failed) = broken.draw_op(&mut rng_a);
    let (dur_ok, _) = healthy.draw_op(&mut rng_b);
    assert!(failed);
    assert!(dur_broken > dur_ok, "failure must cost repair time");
}

#[test]
fn workflow_survives_any_single_flaky_task_with_retries() {
    for victim in 0..5 {
        let dag = shapes::chain(5);
        let mut specs: Vec<TaskSpec> = (0..5)
            .map(|i| TaskSpec::reliable(format!("t{i}"), evoflow::sim::SimDuration::from_mins(30)))
            .collect();
        specs[victim] = specs[victim].clone().with_fail_prob(0.5);
        let wf = Workflow::new(dag, specs);
        let completions = (0..10)
            .filter(|&s| execute(&wf, 2, FaultPolicy::Retry, s).completed)
            .count();
        assert!(
            completions >= 7,
            "victim {victim}: only {completions}/10 runs completed"
        );
    }
}

#[test]
fn revoked_credentials_cascade_through_delegation_chains() {
    let mut auth = Authority::new("site", 0x5ec);
    let root = auth.issue("orchestrator", ["submit:hpc".to_string()], 1_000);
    let worker = auth
        .delegate(&root, "worker-agent", ["submit:hpc".to_string()], 1_000, 0)
        .expect("attenuated delegation");
    assert!(auth.verify(&worker, Some("submit:hpc"), 10).is_ok());

    // Compromise detected: revoke the root credential.
    auth.revoke(root.id);
    assert_eq!(
        auth.verify(&root, None, 10).unwrap_err(),
        AuthError::Revoked
    );
    assert_eq!(
        auth.verify(&worker, None, 10).unwrap_err(),
        AuthError::Revoked,
        "delegated tokens must die with their parent"
    );
}

#[test]
fn governance_stops_a_runaway_agent() {
    let mut gov = GovernanceEngine::standard(20);
    let mut allowed = 0;
    let mut denied = 0;
    // A runaway agent fires 100 synthesis requests in one burst.
    for t in 0..100u64 {
        let v = gov.evaluate(Action {
            agent: "runaway".into(),
            kind: "synthesis".into(),
            samples: 1,
            cost_hours: 1.0,
            irreversible: false,
            at: t, // all within one rate window
        });
        match v {
            Verdict::Allow => allowed += 1,
            Verdict::Deny(_) => denied += 1,
            Verdict::Escalate(_) => {}
        }
    }
    // Sample budget (20) and rate limit (60/window) both bind; the budget
    // binds first.
    assert_eq!(allowed, 20, "sample budget must cap the runaway agent");
    assert_eq!(denied, 80);
    // Every decision is on the audit trail with attribution.
    assert_eq!(gov.audit_len(), 100);
    assert_eq!(gov.accountability()["runaway"], (20, 80, 0));
}

#[test]
fn forbidden_goal_rewrites_are_denied_even_when_escalatable() {
    let mut gov = GovernanceEngine::standard(100).with_policy(Policy::CostCap { max_hours: 10.0 });
    let v = gov.evaluate(Action {
        agent: "omega".into(),
        kind: "rewrite-goals".into(),
        samples: 0,
        cost_hours: 0.1,
        irreversible: true, // would escalate…
        at: 0,
    });
    // …but Forbid denies outright: deny outranks escalate.
    assert!(matches!(v, Verdict::Deny(_)));
    assert!(gov.pending_approvals().is_empty());
}
