//! End-to-end coverage of the event-sourced ledger: one deterministic
//! event stream through campaign → fleet → federated, with pluggable
//! observers and a replay audit that reconstructs reports from events
//! alone.

use evoflow::core::{
    replay_fleet_ledger, replay_ledger, run_campaign, run_campaign_fleet_federated,
    run_campaign_fleet_federated_recorded, run_campaign_fleet_recorded, run_campaign_observed,
    run_campaign_recorded, CampaignConfig, CampaignEvent, Cell, FederatedConfig, FleetConfig,
    MaterialsSpace, MetricsSink, PlacementPolicyKind, RingTelemetry,
};
use evoflow::sim::SimDuration;

fn space() -> MaterialsSpace {
    MaterialsSpace::generate(3, 8, 20260726)
}

fn campaign_config(seed: u64) -> CampaignConfig {
    let mut cfg = CampaignConfig::for_cell(Cell::autonomous_science(), seed);
    cfg.horizon = SimDuration::from_days(1);
    cfg
}

#[test]
fn ledger_replay_reconstructs_live_campaign_byte_for_byte() {
    let space = space();
    let cfg = campaign_config(7);
    let (live, ledger) = run_campaign_recorded(&space, &cfg);
    assert!(live.kg_nodes > 0 && live.prov_activities > 0);

    // The audit path: serialize, ship, decode, replay.
    let wire = serde_json::to_string(&ledger).expect("ledger serializes");
    let decoded = serde_json::from_str(&wire).expect("ledger decodes");
    let replayed = replay_ledger(&decoded).expect("well-formed ledger");

    assert_eq!(replayed.report, live);
    assert_eq!(
        serde_json::to_string(&replayed.report).expect("serialize"),
        serde_json::to_string(&live).expect("serialize"),
        "replayed report must match the live one byte-for-byte"
    );
    assert_eq!(replayed.knowledge.node_count(), live.kg_nodes);
    assert_eq!(replayed.provenance.activity_count(), live.prov_activities);
}

#[test]
fn recorded_ledgers_are_byte_identical_on_rerun() {
    let space = space();
    let cfg = campaign_config(11);
    let (_, a) = run_campaign_recorded(&space, &cfg);
    let (_, b) = run_campaign_recorded(&space, &cfg);
    assert_eq!(
        serde_json::to_string(&a).expect("serialize"),
        serde_json::to_string(&b).expect("serialize")
    );
}

#[test]
fn observers_see_the_stream_without_perturbing_it() {
    let space = space();
    let cfg = campaign_config(3);
    let plain = run_campaign(&space, &cfg);

    let mut metrics = MetricsSink::new();
    let mut ring = RingTelemetry::new(16);
    let observed = run_campaign_observed(&space, &cfg, &mut [&mut metrics, &mut ring]);
    assert_eq!(observed, plain, "observation must not change the report");

    let reg = metrics.into_registry();
    assert_eq!(reg.counter("ledger.campaign-started"), 1);
    assert_eq!(reg.counter("ledger.campaign-finished"), 1);
    assert_eq!(reg.counter("ledger.result-observed"), plain.experiments);
    assert_eq!(reg.counter("ledger.hits"), plain.total_hits);
    assert_eq!(
        reg.stat("ledger.score").map(|s| s.count()),
        Some(plain.experiments)
    );

    assert_eq!(ring.len(), 16, "ring stays bounded");
    assert!(ring.seen() > 16, "ring saw the whole stream");
    assert!(matches!(
        ring.latest(),
        Some(CampaignEvent::CampaignFinished { .. })
    ));
}

#[test]
fn static_campaign_stream_records_no_knowledge() {
    let space = space();
    let mut cfg = CampaignConfig::for_cell(Cell::traditional_wms(), 5);
    cfg.horizon = SimDuration::from_days(1);
    let (live, ledger) = run_campaign_recorded(&space, &cfg);
    assert_eq!(live.kg_nodes, 0);
    let replayed = replay_ledger(&ledger).expect("replays");
    assert_eq!(replayed.report, live);
    assert_eq!(replayed.knowledge.node_count(), 0);
    assert_eq!(replayed.provenance.activity_count(), 0);
}

fn fleet_config(threads: usize) -> FleetConfig {
    let mut cfg = FleetConfig::new(99);
    cfg.horizon = SimDuration::from_days(1);
    cfg.threads = threads;
    cfg.push_cell(Cell::traditional_wms(), 2);
    cfg.push_cell(Cell::autonomous_science(), 2);
    cfg
}

#[test]
fn fleet_ledger_merges_in_shard_order_at_any_thread_count() {
    let space = space();
    let (report_1, ledger_1) = run_campaign_fleet_recorded(&space, &fleet_config(1));
    let (report_4, ledger_4) = run_campaign_fleet_recorded(&space, &fleet_config(4));
    assert_eq!(report_1, report_4);
    assert_eq!(
        serde_json::to_string(&ledger_1).expect("serialize"),
        serde_json::to_string(&ledger_4).expect("serialize")
    );
    assert_eq!(ledger_1.campaigns.len(), 4);
    // Each campaign stream is bracketed start → finished.
    for campaign in &ledger_1.campaigns {
        assert!(matches!(
            campaign.events.first(),
            Some(CampaignEvent::CampaignStarted { .. })
        ));
        assert!(matches!(
            campaign.events.last(),
            Some(CampaignEvent::CampaignFinished { .. })
        ));
    }
    let replayed = replay_fleet_ledger(&ledger_1).expect("fleet ledger replays");
    assert_eq!(replayed, report_1);
}

#[test]
fn federated_report_embeds_placement_and_outage_events() {
    let space = space();
    let mut fleet = FleetConfig::new(77);
    fleet.horizon = SimDuration::from_days(1);
    fleet.threads = 2;
    fleet.push_cell(Cell::traditional_wms(), 3);
    fleet.push_cell(Cell::autonomous_science(), 3);
    let cfg = FederatedConfig::standard(fleet, PlacementPolicyKind::LeastWait).with_outage_seed(5);

    let report = run_campaign_fleet_federated(&space, &cfg).unwrap();
    let placed = report
        .events
        .iter()
        .filter(|e| matches!(e, CampaignEvent::CampaignPlaced { .. }))
        .count();
    // Initial placements plus any evacuation re-placements.
    assert!(placed >= report.placements.len());
    assert_eq!(
        report
            .events
            .iter()
            .filter(|e| matches!(e, CampaignEvent::OutageStruck { .. }))
            .count(),
        1,
        "the seeded outage must appear exactly once in the stream"
    );
    let transfers = report
        .events
        .iter()
        .filter(|e| matches!(e, CampaignEvent::DataTransferred { .. }))
        .count() as u64;
    assert_eq!(transfers, report.transfers, "every fabric move is an event");
    // Evacuation placements are flagged and match the re-route count.
    let evacuations = report
        .events
        .iter()
        .filter(|e| matches!(e, CampaignEvent::CampaignPlaced { evacuation, .. } if *evacuation))
        .count();
    assert_eq!(
        evacuations,
        report.placements.iter().filter(|p| p.rerouted).count()
    );

    // The recorded variant returns the campaign ledgers too, and the
    // embedded fleet report replays from them.
    let (recorded, ledger) = run_campaign_fleet_federated_recorded(&space, &cfg).unwrap();
    assert_eq!(recorded, report);
    let replayed = replay_fleet_ledger(&ledger).expect("fleet ledger replays");
    assert_eq!(replayed, report.fleet);
}

#[test]
fn federated_events_are_deterministic() {
    let space = space();
    let mut fleet = FleetConfig::new(13);
    fleet.horizon = SimDuration::from_days(1);
    fleet.push_cell(Cell::traditional_wms(), 4);
    let cfg =
        FederatedConfig::standard(fleet, PlacementPolicyKind::DataLocality).with_outage_seed(9);
    let a = run_campaign_fleet_federated(&space, &cfg).unwrap();
    let b = run_campaign_fleet_federated(&space, &cfg).unwrap();
    assert_eq!(
        serde_json::to_string(&a.events).expect("serialize"),
        serde_json::to_string(&b.events).expect("serialize")
    );
}
