//! The resilience acceptance battery (ISSUE 2): a fleet killed mid-run
//! and resumed from its [`FleetCheckpoint`] must produce a
//! [`FleetReport`] **byte-identical** to the uninterrupted run — at 1, 2,
//! and 4 threads, under several distinct seeded chaos schedules — plus
//! the task-level chaos → checkpoint → resume path through the whole
//! public stack.
//!
//! When `CHAOS_DETERMINISM_DIR` is set, every resumed fleet report is
//! also written there as JSON; the `chaos-determinism` CI job runs this
//! test twice with the same seeds and diffs the two directories
//! byte-for-byte.

use evoflow::core::{
    fleet_death_point, resume_campaign_fleet, run_campaign_fleet, run_campaign_fleet_until, Cell,
    FleetCheckpoint, FleetConfig, MaterialsSpace,
};
use evoflow::sim::{ChaosSchedule, ChaosSpec, RngRegistry, SimDuration};
use evoflow::testbed::{certify_resilience, ResilienceGrade};
use evoflow::wms::{execute_under_chaos, resume, Checkpoint, FaultPolicy, TaskSpec, Workflow};

fn heterogeneous_fleet(master_seed: u64, threads: usize) -> FleetConfig {
    let mut cfg = FleetConfig::new(master_seed);
    cfg.horizon = SimDuration::from_days(1);
    cfg.threads = threads;
    cfg.push_cell(Cell::traditional_wms(), 3);
    cfg.push_cell(Cell::autonomous_science(), 2);
    cfg.push_cell(
        Cell::new(
            evoflow::sm::IntelligenceLevel::Learning,
            evoflow::agents::Pattern::Mesh,
        ),
        2,
    );
    cfg
}

/// Write a determinism artifact when the CI diff harness asks for one.
fn emit_artifact(name: &str, json: &str) {
    if let Ok(dir) = std::env::var("CHAOS_DETERMINISM_DIR") {
        let dir = std::path::PathBuf::from(dir);
        std::fs::create_dir_all(&dir).expect("create artifact dir");
        std::fs::write(dir.join(name), json).expect("write artifact");
    }
}

/// The acceptance criterion, verbatim: kill mid-run, resume from the
/// checkpoint, byte-identical `FleetReport` at 1, 2, and 4 threads,
/// under at least 3 distinct seeded chaos schedules.
#[test]
fn killed_fleet_resumes_byte_identically_at_all_thread_counts() {
    let space = MaterialsSpace::generate(3, 8, 4242);
    let baseline =
        serde_json::to_string(&run_campaign_fleet(&space, &heterogeneous_fleet(7, 1))).unwrap();

    for chaos_seed in [101u64, 202, 303] {
        let cfg_probe = heterogeneous_fleet(7, 1);
        // The crash point comes from a seeded chaos schedule, so each
        // seed exercises a different amount of lost work.
        let kill_after = fleet_death_point(chaos_seed, cfg_probe.campaigns.len());
        assert!(kill_after >= 1);

        for threads in [1usize, 2, 4] {
            let cfg = heterogeneous_fleet(7, threads);
            let ckpt = run_campaign_fleet_until(&space, &cfg, kill_after);
            assert!(
                ckpt.completed_count() <= kill_after,
                "crash must lose in-flight work"
            );

            // The checkpoint survives serialization (it would live on
            // disk across the real coordinator restart)...
            let json = serde_json::to_string(&ckpt).unwrap();
            let restored: FleetCheckpoint = serde_json::from_str(&json).unwrap();
            assert_eq!(restored, ckpt);

            // ...and the resumed fleet is indistinguishable, to the byte,
            // from one that never crashed.
            let resumed = resume_campaign_fleet(&space, &cfg, &restored).unwrap();
            let resumed_json = serde_json::to_string(&resumed).unwrap();
            assert_eq!(
                resumed_json, baseline,
                "chaos_seed={chaos_seed} threads={threads}"
            );
            emit_artifact(
                &format!("fleet-seed{chaos_seed}-t{threads}.json"),
                &resumed_json,
            );
        }
    }
}

/// Task-level chaos through the facade: a workflow disturbed by a seeded
/// hostile schedule, killed by the scheduled coordinator death, reaches
/// the undisturbed outcome after checkpoint + resume.
#[test]
fn workflow_chaos_checkpoint_resume_through_facade() {
    let dag = evoflow::sm::dag::shapes::layered(4, 3);
    let specs = (0..dag.len())
        .map(|i| TaskSpec::reliable(format!("t{i}"), SimDuration::from_hours(1)))
        .collect();
    let wf = Workflow::new(dag, specs);

    for chaos_seed in [11u64, 22, 33] {
        let schedule = ChaosSchedule::derive(
            &RngRegistry::new(chaos_seed),
            &ChaosSpec::hostile(),
            wf.len(),
        );
        let reference =
            execute_under_chaos(&wf, 3, FaultPolicy::Retry, 9, &schedule.without_death());
        assert!(reference.report.completed);

        let killed = execute_under_chaos(&wf, 3, FaultPolicy::Retry, 9, &schedule);
        let final_report = if killed.died {
            let ckpt = Checkpoint::from_report(&killed.report);
            resume(&wf, &ckpt, 3, FaultPolicy::Retry, 13).unwrap()
        } else {
            killed.report
        };
        assert!(
            final_report.same_outcome(&reference.report),
            "chaos_seed={chaos_seed}"
        );
        emit_artifact(
            &format!("wms-seed{chaos_seed}.json"),
            &serde_json::to_string(&final_report.statuses).unwrap(),
        );
    }
}

/// The certification rung, end to end through the facade: the adaptive
/// stack earns R3, the static baseline stalls at R1.
#[test]
fn resilience_certification_separates_the_policies() {
    let dag = evoflow::sm::dag::shapes::layered(3, 3);
    let specs = (0..dag.len())
        .map(|i| TaskSpec::reliable(format!("t{i}"), SimDuration::from_hours(1)))
        .collect();
    let wf = Workflow::new(dag, specs);
    let adaptive = certify_resilience("adaptive", &wf, 2, FaultPolicy::Retry, 2026);
    let static_ = certify_resilience("static", &wf, 2, FaultPolicy::Abort, 2026);
    assert_eq!(adaptive.achieved, Some(ResilienceGrade::R3CrashSurvivor));
    assert_eq!(static_.achieved, Some(ResilienceGrade::R1Transient));
    emit_artifact(
        "certificates.json",
        &serde_json::to_string(&(&adaptive, &static_)).unwrap(),
    );
}
