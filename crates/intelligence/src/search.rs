//! Baseline search strategies: random search, grid search, simulated
//! annealing, and successive halving.
//!
//! These are the comparison points the paper's existing-system mapping
//! names — "parameter sweeps" ([Static × Swarm]) and "hyper optimization"
//! ([Optimizing × Hierarchical]) — and the baselines every optimizer bench
//! is measured against.

use crate::objective::Objective;
use crate::surrogate::OptResult;
use evoflow_sim::SimRng;
use serde::{Deserialize, Serialize};

/// Uniform random search with `budget` evaluations.
pub fn random_search<O: Objective>(f: &mut O, budget: u64, rng: &mut SimRng) -> OptResult {
    let dim = f.dim();
    let mut best_x = vec![0.5; dim];
    let mut best_y = f64::INFINITY;
    let mut trace = Vec::with_capacity(budget as usize);
    for _ in 0..budget {
        let x: Vec<f64> = (0..dim).map(|_| rng.uniform()).collect();
        let y = f.eval(&x);
        if y < best_y {
            best_y = y;
            best_x = x;
        }
        trace.push(best_y);
    }
    OptResult {
        best_x,
        best_y,
        evals: budget,
        trace,
    }
}

/// Full-factorial grid search with `points_per_dim` levels per dimension —
/// the classic parameter sweep. Cost is `points_per_dim^dim`.
pub fn grid_search<O: Objective>(f: &mut O, points_per_dim: usize) -> OptResult {
    let dim = f.dim();
    assert!(points_per_dim >= 2);
    let total = (points_per_dim as u64).pow(dim as u32);
    let mut best_x = vec![0.5; dim];
    let mut best_y = f64::INFINITY;
    let mut trace = Vec::with_capacity(total as usize);
    let mut idx = vec![0usize; dim];
    loop {
        let x: Vec<f64> = idx
            .iter()
            .map(|&i| i as f64 / (points_per_dim - 1) as f64)
            .collect();
        let y = f.eval(&x);
        if y < best_y {
            best_y = y;
            best_x = x;
        }
        trace.push(best_y);
        // Odometer increment.
        let mut d = 0;
        loop {
            idx[d] += 1;
            if idx[d] < points_per_dim {
                break;
            }
            idx[d] = 0;
            d += 1;
            if d == dim {
                return OptResult {
                    best_x,
                    best_y,
                    evals: total,
                    trace,
                };
            }
        }
    }
}

/// Simulated-annealing hyperparameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct AnnealConfig {
    /// Initial temperature.
    pub t0: f64,
    /// Geometric cooling factor per step.
    pub cooling: f64,
    /// Proposal step standard deviation.
    pub step_sd: f64,
}

impl Default for AnnealConfig {
    fn default() -> Self {
        AnnealConfig {
            t0: 1.0,
            cooling: 0.995,
            step_sd: 0.08,
        }
    }
}

/// Simulated annealing with Metropolis acceptance over the unit cube.
pub fn simulated_annealing<O: Objective>(
    f: &mut O,
    budget: u64,
    cfg: AnnealConfig,
    rng: &mut SimRng,
) -> OptResult {
    let dim = f.dim();
    let mut cur: Vec<f64> = (0..dim).map(|_| rng.uniform()).collect();
    let mut cur_y = f.eval(&cur);
    let mut best_x = cur.clone();
    let mut best_y = cur_y;
    let mut t = cfg.t0;
    let mut trace = vec![best_y];

    for _ in 1..budget {
        let cand: Vec<f64> = cur
            .iter()
            .map(|v| (v + rng.normal_with(0.0, cfg.step_sd)).clamp(0.0, 1.0))
            .collect();
        let y = f.eval(&cand);
        let accept = y < cur_y || rng.chance(((cur_y - y) / t.max(1e-12)).exp());
        if accept {
            cur = cand;
            cur_y = y;
            if y < best_y {
                best_y = y;
                best_x = cur.clone();
            }
        }
        t *= cfg.cooling;
        trace.push(best_y);
    }
    OptResult {
        best_x,
        best_y,
        evals: budget,
        trace,
    }
}

/// Successive halving over a fixed candidate set: evaluate all candidates
/// with a small budget, keep the best half, double the budget, repeat —
/// the hyperparameter-optimization pattern of [Optimizing × Hierarchical].
///
/// `eval` receives `(candidate, fidelity)` where fidelity grows by rounds;
/// lower scores are better. Returns (winner index, total evaluations).
pub fn successive_halving<F>(n_candidates: usize, base_fidelity: u64, mut eval: F) -> (usize, u64)
where
    F: FnMut(usize, u64) -> f64,
{
    assert!(n_candidates >= 1);
    let mut alive: Vec<usize> = (0..n_candidates).collect();
    let mut fidelity = base_fidelity.max(1);
    let mut total = 0u64;
    while alive.len() > 1 {
        let mut scored: Vec<(usize, f64)> = alive
            .iter()
            .map(|&c| {
                total += fidelity;
                (c, eval(c, fidelity))
            })
            .collect();
        scored.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite scores"));
        let keep = scored.len().div_ceil(2);
        alive = scored.into_iter().take(keep).map(|(c, _)| c).collect();
        fidelity *= 2;
    }
    (alive[0], total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::{Budgeted, Rastrigin, Sphere};

    #[test]
    fn random_search_improves_with_budget() {
        let mut rng = SimRng::from_seed_u64(1);
        let mut f = Sphere::new(2);
        let small = random_search(&mut f, 10, &mut rng).best_y;
        let mut f = Sphere::new(2);
        let large = random_search(&mut f, 1_000, &mut rng).best_y;
        assert!(large <= small);
        assert!(large < 0.02, "large-budget best {large}");
    }

    #[test]
    fn grid_search_hits_center_with_odd_grid() {
        let mut f = Sphere::new(2);
        let r = grid_search(&mut f, 5); // includes 0.5 exactly
        assert!(r.best_y.abs() < 1e-12);
        assert_eq!(r.evals, 25);
    }

    #[test]
    fn grid_search_cost_is_exponential_in_dim() {
        let mut f = Sphere::new(3);
        let r = grid_search(&mut f, 4);
        assert_eq!(r.evals, 64);
    }

    #[test]
    fn annealing_beats_random_on_rastrigin() {
        let mut rng_a = SimRng::from_seed_u64(2);
        let mut f1 = Rastrigin::new(3);
        let sa = simulated_annealing(&mut f1, 1_500, AnnealConfig::default(), &mut rng_a);
        let mut rng_b = SimRng::from_seed_u64(2);
        let mut f2 = Rastrigin::new(3);
        let rs = random_search(&mut f2, 1_500, &mut rng_b);
        assert!(
            sa.best_y < rs.best_y,
            "sa {:.3} vs random {:.3}",
            sa.best_y,
            rs.best_y
        );
    }

    #[test]
    fn annealing_respects_budget() {
        let mut rng = SimRng::from_seed_u64(3);
        let inner = Sphere::new(2);
        let mut f = Budgeted::new(inner, 100);
        let r = simulated_annealing(&mut f, 100, AnnealConfig::default(), &mut rng);
        assert_eq!(r.evals, 100);
        assert!(f.exhausted());
    }

    #[test]
    fn successive_halving_picks_best_candidate() {
        // Candidate quality improves with index; fidelity reduces noise.
        let (winner, total) = successive_halving(8, 2, |c, fidelity| {
            let noise = 1.0 / fidelity as f64;
            (8 - c) as f64 + noise * ((c * 7 + 3) % 5) as f64
        });
        assert_eq!(winner, 7);
        // 8*2 + 4*4 + 2*8 = 48 evaluations-units.
        assert_eq!(total, 48);
    }

    #[test]
    fn successive_halving_single_candidate() {
        let (winner, total) = successive_halving(1, 4, |_, _| 0.0);
        assert_eq!(winner, 0);
        assert_eq!(total, 0);
    }
}
