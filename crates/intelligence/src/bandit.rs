//! Multi-armed bandits: the minimal exploration/exploitation machinery
//! behind Table 1's Learning and Optimizing levels.
//!
//! Used by facility agents for instrument selection, by the campaign engine
//! for strategy choice, and by the Table 3 matrix cells that need a
//! learning single machine.

use evoflow_sim::SimRng;
use serde::{Deserialize, Serialize};

/// A bandit policy over `arms()` arms.
pub trait BanditPolicy {
    /// Number of arms.
    fn arms(&self) -> usize;
    /// Choose an arm.
    fn select(&mut self, rng: &mut SimRng) -> usize;
    /// Report the observed reward for an arm (higher is better).
    fn update(&mut self, arm: usize, reward: f64);
    /// Empirical mean reward of an arm (0 when unplayed).
    fn mean(&self, arm: usize) -> f64;
    /// Total pulls so far.
    fn pulls(&self) -> u64;
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct ArmStats {
    pulls: u64,
    sum: f64,
}

/// ε-greedy: explore uniformly with probability ε, else exploit the best
/// empirical mean.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EpsilonGreedy {
    stats: Vec<ArmStats>,
    /// Exploration probability.
    pub epsilon: f64,
    total: u64,
}

impl EpsilonGreedy {
    /// Create with `n_arms` arms and exploration rate `epsilon`.
    pub fn new(n_arms: usize, epsilon: f64) -> Self {
        EpsilonGreedy {
            stats: vec![ArmStats { pulls: 0, sum: 0.0 }; n_arms],
            epsilon: epsilon.clamp(0.0, 1.0),
            total: 0,
        }
    }
}

impl BanditPolicy for EpsilonGreedy {
    fn arms(&self) -> usize {
        self.stats.len()
    }
    fn select(&mut self, rng: &mut SimRng) -> usize {
        if rng.chance(self.epsilon) {
            rng.below(self.stats.len())
        } else {
            (0..self.stats.len())
                .max_by(|&a, &b| {
                    self.mean(a)
                        .partial_cmp(&self.mean(b))
                        .expect("finite means")
                })
                .expect("at least one arm")
        }
    }
    fn update(&mut self, arm: usize, reward: f64) {
        self.stats[arm].pulls += 1;
        self.stats[arm].sum += reward;
        self.total += 1;
    }
    fn mean(&self, arm: usize) -> f64 {
        let s = &self.stats[arm];
        if s.pulls == 0 {
            0.0
        } else {
            s.sum / s.pulls as f64
        }
    }
    fn pulls(&self) -> u64 {
        self.total
    }
}

/// UCB1 (Auer et al.): optimism in the face of uncertainty.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Ucb1 {
    stats: Vec<ArmStats>,
    total: u64,
    /// Exploration coefficient (√2 classically).
    pub c: f64,
}

impl Ucb1 {
    /// Create with `n_arms` arms and the classic √2 coefficient.
    pub fn new(n_arms: usize) -> Self {
        Ucb1 {
            stats: vec![ArmStats { pulls: 0, sum: 0.0 }; n_arms],
            total: 0,
            c: std::f64::consts::SQRT_2,
        }
    }
}

impl BanditPolicy for Ucb1 {
    fn arms(&self) -> usize {
        self.stats.len()
    }
    fn select(&mut self, _rng: &mut SimRng) -> usize {
        // Play each arm once first.
        if let Some(unplayed) = self.stats.iter().position(|s| s.pulls == 0) {
            return unplayed;
        }
        let t = self.total as f64;
        (0..self.stats.len())
            .max_by(|&a, &b| {
                let ucb =
                    |i: usize| self.mean(i) + self.c * (t.ln() / self.stats[i].pulls as f64).sqrt();
                ucb(a).partial_cmp(&ucb(b)).expect("finite ucb")
            })
            .expect("at least one arm")
    }
    fn update(&mut self, arm: usize, reward: f64) {
        self.stats[arm].pulls += 1;
        self.stats[arm].sum += reward;
        self.total += 1;
    }
    fn mean(&self, arm: usize) -> f64 {
        let s = &self.stats[arm];
        if s.pulls == 0 {
            0.0
        } else {
            s.sum / s.pulls as f64
        }
    }
    fn pulls(&self) -> u64 {
        self.total
    }
}

/// Thompson sampling with Beta posteriors over Bernoulli rewards.
/// Non-Bernoulli rewards are clamped to \[0,1\] and treated as success
/// probabilities.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ThompsonBeta {
    alpha: Vec<f64>,
    beta: Vec<f64>,
    total: u64,
}

impl ThompsonBeta {
    /// Create with uniform Beta(1,1) priors.
    pub fn new(n_arms: usize) -> Self {
        ThompsonBeta {
            alpha: vec![1.0; n_arms],
            beta: vec![1.0; n_arms],
            total: 0,
        }
    }

    /// Sample Beta(a,b) via two Gamma draws (Marsaglia–Tsang would be
    /// heavy; the ratio-of-sums of exponentials suffices for integer-ish
    /// shapes here, so we use the Jöhnk-style uniform trick for small
    /// parameters and a normal approximation otherwise).
    fn sample_beta(a: f64, b: f64, rng: &mut SimRng) -> f64 {
        // Normal approximation is accurate enough once counts grow.
        if a + b > 30.0 {
            let mean = a / (a + b);
            let var = a * b / ((a + b).powi(2) * (a + b + 1.0));
            return (mean + rng.normal_with(0.0, var.sqrt())).clamp(0.0, 1.0);
        }
        // Small counts: rejection-free Jöhnk only works for a,b ≤ 1, so use
        // sum-of-exponentials Gamma sampling (integer shape + fractional
        // remainder approximated by one more exponential scaled).
        let gamma = |shape: f64, rng: &mut SimRng| -> f64 {
            let k = shape.floor() as u64;
            let mut g = 0.0;
            for _ in 0..k {
                g += rng.exponential(1.0);
            }
            let frac = shape - k as f64;
            if frac > 1e-9 {
                g += rng.exponential(1.0) * frac;
            }
            g.max(f64::MIN_POSITIVE)
        };
        let x = gamma(a, rng);
        let y = gamma(b, rng);
        x / (x + y)
    }
}

impl BanditPolicy for ThompsonBeta {
    fn arms(&self) -> usize {
        self.alpha.len()
    }
    fn select(&mut self, rng: &mut SimRng) -> usize {
        (0..self.alpha.len())
            .map(|i| (i, Self::sample_beta(self.alpha[i], self.beta[i], rng)))
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite samples"))
            .map(|(i, _)| i)
            .expect("at least one arm")
    }
    fn update(&mut self, arm: usize, reward: f64) {
        let r = reward.clamp(0.0, 1.0);
        self.alpha[arm] += r;
        self.beta[arm] += 1.0 - r;
        self.total += 1;
    }
    fn mean(&self, arm: usize) -> f64 {
        self.alpha[arm] / (self.alpha[arm] + self.beta[arm])
    }
    fn pulls(&self) -> u64 {
        self.total
    }
}

/// Run a policy against Bernoulli arms with the given success rates;
/// returns (total_reward, best_arm_plays).
pub fn run_bernoulli<P: BanditPolicy>(
    policy: &mut P,
    rates: &[f64],
    steps: u64,
    rng: &mut SimRng,
) -> (f64, u64) {
    assert_eq!(policy.arms(), rates.len());
    let best = rates
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite rates"))
        .map(|(i, _)| i)
        .expect("non-empty");
    let mut total = 0.0;
    let mut best_plays = 0u64;
    for _ in 0..steps {
        let arm = policy.select(rng);
        if arm == best {
            best_plays += 1;
        }
        let r = if rng.chance(rates[arm]) { 1.0 } else { 0.0 };
        total += r;
        policy.update(arm, r);
    }
    (total, best_plays)
}

#[cfg(test)]
mod tests {
    use super::*;

    const RATES: [f64; 4] = [0.2, 0.35, 0.8, 0.5];

    fn check_policy<P: BanditPolicy>(mut p: P, seed: u64, min_best_frac: f64) {
        let mut rng = SimRng::from_seed_u64(seed);
        let steps = 4_000;
        let (_, best_plays) = run_bernoulli(&mut p, &RATES, steps, &mut rng);
        let frac = best_plays as f64 / steps as f64;
        assert!(
            frac > min_best_frac,
            "best-arm fraction {frac:.2} below {min_best_frac}"
        );
        assert_eq!(p.pulls(), steps);
    }

    #[test]
    fn epsilon_greedy_finds_best_arm() {
        check_policy(EpsilonGreedy::new(4, 0.1), 1, 0.7);
    }

    #[test]
    fn ucb1_finds_best_arm() {
        check_policy(Ucb1::new(4), 2, 0.75);
    }

    #[test]
    fn thompson_finds_best_arm() {
        check_policy(ThompsonBeta::new(4), 3, 0.75);
    }

    #[test]
    fn ucb1_plays_every_arm_once_first() {
        let mut p = Ucb1::new(3);
        let mut rng = SimRng::from_seed_u64(4);
        let mut seen = [false; 3];
        for _ in 0..3 {
            let a = p.select(&mut rng);
            seen[a] = true;
            p.update(a, 0.0);
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn means_track_updates() {
        let mut p = EpsilonGreedy::new(2, 0.0);
        p.update(0, 1.0);
        p.update(0, 0.0);
        p.update(1, 1.0);
        assert_eq!(p.mean(0), 0.5);
        assert_eq!(p.mean(1), 1.0);
        // Greedy (ε=0) now always exploits arm 1.
        let mut rng = SimRng::from_seed_u64(5);
        for _ in 0..10 {
            assert_eq!(p.select(&mut rng), 1);
        }
    }

    #[test]
    fn thompson_posterior_mean_moves_with_evidence() {
        let mut p = ThompsonBeta::new(2);
        assert!((p.mean(0) - 0.5).abs() < 1e-9); // Beta(1,1)
        for _ in 0..20 {
            p.update(0, 1.0);
        }
        assert!(p.mean(0) > 0.9);
    }
}
