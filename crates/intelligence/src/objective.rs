//! Objective functions: the cost function `J` of Table 1's Optimizing level.
//!
//! "Optimizing systems need an evaluation infrastructure for the cost
//! function J" — this module is that infrastructure: a minimization trait
//! over the unit hypercube, standard benchmark landscapes (Sphere,
//! Rastrigin, Rosenbrock), plus noise and evaluation-budget wrappers that
//! model expensive, noisy experiments.

use evoflow_sim::SimRng;

/// A minimization objective over `[0,1]^dim`.
pub trait Objective {
    /// Dimensionality of the design space.
    fn dim(&self) -> usize;

    /// Evaluate the objective at `x` (lower is better). `x.len() == dim()`.
    fn eval(&mut self, x: &[f64]) -> f64;

    /// The known global minimum value, when available (for tests/benches).
    fn optimum(&self) -> Option<f64> {
        None
    }
}

/// Sphere function re-centered to c=0.5: `Σ (xi - 0.5)²`. Unimodal.
#[derive(Debug, Clone)]
pub struct Sphere {
    dim: usize,
}

impl Sphere {
    /// Sphere in `dim` dimensions.
    pub fn new(dim: usize) -> Self {
        Sphere { dim }
    }
}

impl Objective for Sphere {
    fn dim(&self) -> usize {
        self.dim
    }
    fn eval(&mut self, x: &[f64]) -> f64 {
        x.iter().map(|v| (v - 0.5).powi(2)).sum()
    }
    fn optimum(&self) -> Option<f64> {
        Some(0.0)
    }
}

/// Rastrigin re-scaled to the unit cube (x mapped to [-5.12, 5.12]):
/// highly multimodal — the standard "hard landscape" for swarm methods.
#[derive(Debug, Clone)]
pub struct Rastrigin {
    dim: usize,
}

impl Rastrigin {
    /// Rastrigin in `dim` dimensions.
    pub fn new(dim: usize) -> Self {
        Rastrigin { dim }
    }
}

impl Objective for Rastrigin {
    fn dim(&self) -> usize {
        self.dim
    }
    fn eval(&mut self, x: &[f64]) -> f64 {
        let a = 10.0;
        x.iter()
            .map(|v| {
                let z = (v - 0.5) * 10.24;
                z * z - a * (2.0 * std::f64::consts::PI * z).cos() + a
            })
            .sum()
    }
    fn optimum(&self) -> Option<f64> {
        Some(0.0)
    }
}

/// Rosenbrock re-scaled to the unit cube (x mapped to [-2, 2]):
/// a narrow curved valley; hard for greedy methods.
#[derive(Debug, Clone)]
pub struct Rosenbrock {
    dim: usize,
}

impl Rosenbrock {
    /// Rosenbrock in `dim` dimensions (dim ≥ 2).
    pub fn new(dim: usize) -> Self {
        assert!(dim >= 2);
        Rosenbrock { dim }
    }
}

impl Objective for Rosenbrock {
    fn dim(&self) -> usize {
        self.dim
    }
    fn eval(&mut self, x: &[f64]) -> f64 {
        let z: Vec<f64> = x.iter().map(|v| (v - 0.5) * 4.0).collect();
        z.windows(2)
            .map(|w| 100.0 * (w[1] - w[0] * w[0]).powi(2) + (1.0 - w[0]).powi(2))
            .sum()
    }
    fn optimum(&self) -> Option<f64> {
        Some(0.0)
    }
}

/// Adds Gaussian observation noise — models measurement error at an
/// instrument.
pub struct Noisy<O> {
    inner: O,
    sd: f64,
    rng: SimRng,
}

impl<O: Objective> Noisy<O> {
    /// Wrap `inner` with observation noise of standard deviation `sd`.
    pub fn new(inner: O, sd: f64, seed: u64) -> Self {
        Noisy {
            inner,
            sd,
            rng: SimRng::from_seed_u64(seed),
        }
    }
}

impl<O: Objective> Objective for Noisy<O> {
    fn dim(&self) -> usize {
        self.inner.dim()
    }
    fn eval(&mut self, x: &[f64]) -> f64 {
        self.inner.eval(x) + self.rng.normal_with(0.0, self.sd)
    }
}

/// Counts evaluations and enforces a budget — models sample scarcity and
/// instrument time (§4.1 "precious samples or expensive equipment").
pub struct Budgeted<O> {
    inner: O,
    used: u64,
    budget: u64,
    best_seen: f64,
}

impl<O: Objective> Budgeted<O> {
    /// Wrap `inner` with an evaluation budget.
    pub fn new(inner: O, budget: u64) -> Self {
        Budgeted {
            inner,
            used: 0,
            budget,
            best_seen: f64::INFINITY,
        }
    }

    /// Evaluations consumed.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Whether the budget is exhausted.
    pub fn exhausted(&self) -> bool {
        self.used >= self.budget
    }

    /// Best (lowest) value seen so far.
    pub fn best_seen(&self) -> f64 {
        self.best_seen
    }
}

impl<O: Objective> Objective for Budgeted<O> {
    fn dim(&self) -> usize {
        self.inner.dim()
    }
    /// Panics when called beyond the budget — optimizers must check
    /// [`Budgeted::exhausted`].
    fn eval(&mut self, x: &[f64]) -> f64 {
        assert!(
            self.used < self.budget,
            "evaluation budget {} exhausted",
            self.budget
        );
        self.used += 1;
        let v = self.inner.eval(x);
        if v < self.best_seen {
            self.best_seen = v;
        }
        v
    }
    fn optimum(&self) -> Option<f64> {
        self.inner.optimum()
    }
}

/// Clamp a point into the unit cube (validation for hallucinated proposals).
pub fn clamp_unit(x: &mut [f64]) {
    for v in x {
        *v = v.clamp(0.0, 1.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sphere_minimum_at_center() {
        let mut s = Sphere::new(3);
        assert_eq!(s.eval(&[0.5, 0.5, 0.5]), 0.0);
        assert!(s.eval(&[0.0, 0.0, 0.0]) > 0.0);
        assert_eq!(s.optimum(), Some(0.0));
    }

    #[test]
    fn rastrigin_is_multimodal() {
        let mut r = Rastrigin::new(2);
        let center = r.eval(&[0.5, 0.5]);
        assert!(center.abs() < 1e-9);
        // A nearby local minimum exists around one cosine period away.
        let near_local = r.eval(&[0.5 + 1.0 / 10.24, 0.5]);
        let barrier = r.eval(&[0.5 + 0.5 / 10.24, 0.5]);
        assert!(near_local < barrier, "local {near_local} barrier {barrier}");
    }

    #[test]
    fn rosenbrock_valley() {
        let mut r = Rosenbrock::new(2);
        // Global optimum at z = (1,1) => x = (0.75, 0.75).
        assert!(r.eval(&[0.75, 0.75]).abs() < 1e-9);
        assert!(r.eval(&[0.1, 0.9]) > 1.0);
    }

    #[test]
    fn noisy_wrapper_perturbs_but_tracks() {
        let mut n = Noisy::new(Sphere::new(2), 0.1, 7);
        let vals: Vec<f64> = (0..100).map(|_| n.eval(&[0.5, 0.5])).collect();
        let mean = vals.iter().sum::<f64>() / 100.0;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!(vals.iter().any(|v| *v != 0.0));
    }

    #[test]
    fn budget_enforced() {
        let mut b = Budgeted::new(Sphere::new(1), 2);
        b.eval(&[0.1]);
        b.eval(&[0.9]);
        assert!(b.exhausted());
        assert_eq!(b.used(), 2);
        assert!(b.best_seen() > 0.0);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| b.eval(&[0.5])));
        assert!(r.is_err());
    }

    #[test]
    fn clamp_unit_bounds() {
        let mut x = [1.7, -0.3, 0.4];
        clamp_unit(&mut x);
        assert_eq!(x, [1.0, 0.0, 0.4]);
    }
}
