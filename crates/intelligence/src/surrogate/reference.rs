//! The pre-overhaul naive surrogate, retained verbatim as the
//! bit-identity oracle.
//!
//! [`NaiveRbfSurrogate`] is the `Vec<Vec<f64>>` implementation the flat
//! [`RbfSurrogate`](super::RbfSurrogate) replaced: per-candidate `best()`
//! rescans, per-call allocations, one candidate at a time. It exists so
//! the `surrogate_equivalence` property battery and the `bench_propose`
//! gate can assert — bit for bit — that the optimized path computes the
//! same numbers. Nothing on the hot path should use this type.

/// Naive Gaussian-kernel RBF regressor over row-per-observation storage.
#[derive(Debug, Clone, Default)]
pub struct NaiveRbfSurrogate {
    points: Vec<Vec<f64>>,
    values: Vec<f64>,
    /// Kernel bandwidth.
    pub bandwidth: f64,
}

impl NaiveRbfSurrogate {
    /// Create an empty surrogate with the given kernel bandwidth.
    pub fn new(bandwidth: f64) -> Self {
        NaiveRbfSurrogate {
            points: Vec::new(),
            values: Vec::new(),
            bandwidth: bandwidth.max(1e-6),
        }
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the surrogate has no observations.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Add an observation. Mirrors the optimized surrogate's input
    /// hygiene (finite-only, fixed dim) so both sides see the same data.
    pub fn observe(&mut self, x: &[f64], y: f64) {
        if !(y.is_finite() && x.iter().all(|v| v.is_finite())) {
            return;
        }
        if let Some(first) = self.points.first() {
            if first.len() != x.len() {
                return;
            }
        }
        self.points.push(x.to_vec());
        self.values.push(y);
    }

    /// Best (lowest) observed value, by full scan — first minimum wins
    /// ties, exactly like `Iterator::min_by`.
    pub fn best(&self) -> Option<(&[f64], f64)> {
        let (i, y) = self
            .values
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite values"))?;
        Some((&self.points[i], *y))
    }

    fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| (x - y).powi(2)).sum()
    }

    /// Predict `(mean, uncertainty)` at `x` — the original per-candidate
    /// loop, float op for float op.
    pub fn predict(&self, x: &[f64]) -> (f64, f64) {
        if self.points.is_empty() {
            return (0.0, 1.0);
        }
        let h2 = self.bandwidth * self.bandwidth;
        let mut wsum = 0.0;
        let mut vsum = 0.0;
        let mut min_d2 = f64::INFINITY;
        for (p, v) in self.points.iter().zip(&self.values) {
            let d2 = Self::sq_dist(p, x);
            min_d2 = min_d2.min(d2);
            let w = (-d2 / (2.0 * h2)).exp().max(1e-300);
            wsum += w;
            vsum += w * v;
        }
        let mean = vsum / wsum;
        let uncertainty = 1.0 - (-min_d2 / (2.0 * h2)).exp();
        (mean, uncertainty)
    }

    /// The original acquisition: incumbent via full `best()` rescan, then
    /// a single-candidate predict.
    pub fn acquisition(&self, x: &[f64], kappa: f64) -> f64 {
        let incumbent = self.best().map(|(_, y)| y).unwrap_or(0.0);
        let (mean, unc) = self.predict(x);
        (incumbent - mean) + kappa * unc
    }
}
