//! RBF surrogate model + Bayesian optimization (expected improvement).
//!
//! This is the "ML-guided parameter selection" → "automated tuning" pair of
//! §3.2's existing-system mapping: a cheap model of an expensive objective,
//! plus an acquisition loop that balances exploration and exploitation —
//! `δ* = argmin_δ J(δ)` made concrete.
//!
//! The surrogate is the innermost kernel of the campaign propose path
//! (every surrogate-backed planner scores tens of candidates against
//! hundreds of observations per proposal), so its layout is tuned for
//! that loop:
//!
//! * **Contiguous flat storage.** Observations live in one stride-`dim`
//!   `Vec<f64>` instead of a `Vec<Vec<f64>>` — one allocation that grows
//!   amortized, no pointer chase per observation when scanning.
//! * **Cached incumbent.** [`observe`](RbfSurrogate::observe) maintains
//!   the best index as observations arrive, so
//!   [`best`](RbfSurrogate::best) and every [`acquisition`] call are
//!   O(1) instead of rescanning all values per candidate.
//! * **Batched scoring.** [`score_batch_with`](RbfSurrogate::score_batch_with)
//!   scores a whole candidate pool in one pass over the observations
//!   with reused scratch buffers, preserving the exact float-op order of
//!   the naive per-candidate path — predictions are bit-identical, which
//!   the [`mod@reference`] module and `bench_propose` gate.

use crate::objective::Objective;
use evoflow_sim::SimRng;
use serde::{Deserialize, Serialize};

pub mod reference;

/// Reusable per-candidate accumulators for
/// [`RbfSurrogate::score_batch_with`] /
/// [`RbfSurrogate::predict_batch_with`]. One instance can be shared by
/// every surrogate in a planner pool — the buffers are resized to the
/// candidate count on each call and carry no state between calls.
#[derive(Debug, Clone, Default)]
pub struct AccScratch {
    wsum: Vec<f64>,
    vsum: Vec<f64>,
    min_d2: Vec<f64>,
}

impl AccScratch {
    /// Reset the accumulators for `n` candidates.
    fn reset(&mut self, n: usize) {
        self.wsum.clear();
        self.wsum.resize(n, 0.0);
        self.vsum.clear();
        self.vsum.resize(n, 0.0);
        self.min_d2.clear();
        self.min_d2.resize(n, f64::INFINITY);
    }
}

/// Full scoring scratch for a propose loop: candidate buffer, score
/// buffer, and the accumulator set, all reused across iterations. A
/// planner pool (e.g. `MetaPlanner`'s surrogate-backed children) can
/// share one behind an `Rc<RefCell<_>>` — proposals are sequential
/// within a campaign, and every call resizes the buffers it uses.
#[derive(Debug, Clone, Default)]
pub struct ScoreScratch {
    /// Flat stride-`dim` candidate coordinates.
    pub candidates: Vec<f64>,
    /// One acquisition score (or prediction slot) per candidate.
    pub scores: Vec<f64>,
    /// Per-candidate accumulators for the batched kernels.
    pub acc: AccScratch,
}

/// A Gaussian-kernel RBF regressor with Nadaraya–Watson weighting.
///
/// Chosen over full kriging because it needs no linear solves (no external
/// linear-algebra dependency) while still giving smooth interpolation and a
/// distance-based uncertainty proxy — all BO here needs.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RbfSurrogate {
    /// Flat observation coordinates, stride [`dim`](Self::dim).
    points: Vec<f64>,
    values: Vec<f64>,
    /// Coordinates per observation (fixed by the first `observe`).
    dim: usize,
    /// Cached incumbent: index of the first minimal value, maintained by
    /// `observe` so `best` never rescans.
    best_idx: Option<usize>,
    /// Kernel bandwidth.
    pub bandwidth: f64,
}

impl RbfSurrogate {
    /// Create an empty surrogate with the given kernel bandwidth.
    pub fn new(bandwidth: f64) -> Self {
        RbfSurrogate {
            points: Vec::new(),
            values: Vec::new(),
            dim: 0,
            best_idx: None,
            bandwidth: bandwidth.max(1e-6),
        }
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the surrogate has no observations.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The `i`-th observed point.
    fn point(&self, i: usize) -> &[f64] {
        &self.points[i * self.dim..(i + 1) * self.dim]
    }

    /// Add an observation.
    ///
    /// Non-finite coordinates or values are rejected (with a debug
    /// assertion): a NaN observation would poison the cached incumbent
    /// and make every downstream comparison lie. Points whose
    /// dimensionality differs from the first observation's are rejected
    /// the same way — flat storage is stride-`dim` by construction.
    pub fn observe(&mut self, x: &[f64], y: f64) {
        let finite = y.is_finite() && x.iter().all(|v| v.is_finite());
        debug_assert!(finite, "non-finite observation ({x:?}, {y})");
        if !finite {
            return;
        }
        if self.values.is_empty() {
            self.dim = x.len();
        } else if x.len() != self.dim {
            // Flat storage is stride-`dim`; points of any other length
            // cannot be stored. Dropped silently (not asserted): test
            // fixtures legitimately mix literature-bootstrap dims with
            // a smaller probe dim, and the old nested storage merely
            // zip-truncated such points into noise anyway.
            return;
        }
        self.points.extend_from_slice(x);
        self.values.push(y);
        let idx = self.values.len() - 1;
        // First minimal value wins ties, matching a front-to-back scan.
        if self.best_idx.map(|b| y < self.values[b]).unwrap_or(true) {
            self.best_idx = Some(idx);
        }
    }

    /// Best (lowest) observed value, if any. O(1) — the incumbent is
    /// maintained by [`observe`](Self::observe) — and total: only finite
    /// values are ever stored, so no comparison can fail.
    pub fn best(&self) -> Option<(&[f64], f64)> {
        let idx = self.best_idx?;
        Some((self.point(idx), self.values[idx]))
    }

    /// The incumbent value with the empty-surrogate default the
    /// acquisition uses.
    fn incumbent(&self) -> f64 {
        self.best_idx.map(|b| self.values[b]).unwrap_or(0.0)
    }

    fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| (x - y).powi(2)).sum()
    }

    /// Predict `(mean, uncertainty)` at `x`. Uncertainty is a distance-to-
    /// data proxy in \[0,1\]: 0 on top of data, →1 far from all data.
    pub fn predict(&self, x: &[f64]) -> (f64, f64) {
        if self.values.is_empty() {
            return (0.0, 1.0);
        }
        let h2 = self.bandwidth * self.bandwidth;
        let mut wsum = 0.0;
        let mut vsum = 0.0;
        let mut min_d2 = f64::INFINITY;
        for (i, v) in self.values.iter().enumerate() {
            let d2 = Self::sq_dist(self.point(i), x);
            min_d2 = min_d2.min(d2);
            let w = (-d2 / (2.0 * h2)).exp().max(1e-300);
            wsum += w;
            vsum += w * v;
        }
        let mean = vsum / wsum;
        let uncertainty = 1.0 - (-min_d2 / (2.0 * h2)).exp();
        (mean, uncertainty)
    }

    /// [`predict`](Self::predict) for a flat stride-`dim` candidate
    /// buffer in one pass over the observations, appending one
    /// `(mean, uncertainty)` pair per candidate to `out`.
    ///
    /// The accumulation visits observations in storage order for every
    /// candidate — exactly the order the naive per-candidate loop uses —
    /// so results are bit-identical to calling `predict` per candidate.
    pub fn predict_batch_with(
        &self,
        dim: usize,
        candidates: &[f64],
        scratch: &mut AccScratch,
        out: &mut Vec<(f64, f64)>,
    ) {
        let n = self.accumulate(dim, candidates, scratch);
        let h2 = self.bandwidth * self.bandwidth;
        for j in 0..n {
            if self.values.is_empty() {
                out.push((0.0, 1.0));
            } else {
                let mean = scratch.vsum[j] / scratch.wsum[j];
                let uncertainty = 1.0 - (-scratch.min_d2[j] / (2.0 * h2)).exp();
                out.push((mean, uncertainty));
            }
        }
    }

    /// Score a flat stride-`dim` candidate buffer under the
    /// exploration-weighted [`acquisition`], one score per candidate
    /// appended to `out`, in a single cache-friendly pass over the
    /// observations with reused scratch buffers.
    ///
    /// Bit-identical to calling [`acquisition`] per candidate (gated by
    /// `bench_propose` and the `surrogate_equivalence` battery): the
    /// per-candidate accumulators see observations in the same order and
    /// the finishing ops are identical, and the incumbent is the cached
    /// O(1) one.
    pub fn score_batch_with(
        &self,
        dim: usize,
        candidates: &[f64],
        kappa: f64,
        scratch: &mut AccScratch,
        out: &mut Vec<f64>,
    ) {
        let n = self.accumulate(dim, candidates, scratch);
        let h2 = self.bandwidth * self.bandwidth;
        let incumbent = self.incumbent();
        for j in 0..n {
            let (mean, unc) = if self.values.is_empty() {
                (0.0, 1.0)
            } else {
                let mean = scratch.vsum[j] / scratch.wsum[j];
                let unc = 1.0 - (-scratch.min_d2[j] / (2.0 * h2)).exp();
                (mean, unc)
            };
            out.push((incumbent - mean) + kappa * unc);
        }
    }

    /// [`score_batch_with`](Self::score_batch_with) with a throwaway
    /// scratch, for callers outside the hot loop.
    pub fn score_batch(&self, dim: usize, candidates: &[f64], kappa: f64, out: &mut Vec<f64>) {
        let mut scratch = AccScratch::default();
        self.score_batch_with(dim, candidates, kappa, &mut scratch, out);
    }

    /// The shared inner pass: stream the observations once, feeding every
    /// candidate's `(wsum, vsum, min_d2)` accumulators. Candidate `j`'s
    /// accumulators receive contributions in observation order whichever
    /// loop is outermost, which is what keeps the batch bit-identical to
    /// the naive path. Returns the candidate count.
    fn accumulate(&self, dim: usize, candidates: &[f64], scratch: &mut AccScratch) -> usize {
        let stride = dim.max(1);
        let n = candidates.len() / stride;
        scratch.reset(n);
        if self.values.is_empty() {
            return n;
        }
        let h2 = self.bandwidth * self.bandwidth;
        for (i, v) in self.values.iter().enumerate() {
            let p = self.point(i);
            for j in 0..n {
                let x = &candidates[j * stride..j * stride + dim];
                let d2 = Self::sq_dist(p, x);
                scratch.min_d2[j] = scratch.min_d2[j].min(d2);
                let w = (-d2 / (2.0 * h2)).exp().max(1e-300);
                scratch.wsum[j] += w;
                scratch.vsum[j] += w * v;
            }
        }
        n
    }
}

/// Expected-improvement-style acquisition: improvement of the predicted
/// mean over the incumbent, plus an exploration bonus proportional to
/// uncertainty. Higher is better. The incumbent is the surrogate's cached
/// one — O(1), not a rescan of every value per candidate.
pub fn acquisition(surrogate: &RbfSurrogate, x: &[f64], kappa: f64) -> f64 {
    let incumbent = surrogate.incumbent();
    let (mean, unc) = surrogate.predict(x);
    (incumbent - mean) + kappa * unc
}

/// Configuration for the Bayesian-optimization loop.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct BoConfig {
    /// Random initial samples before the model drives.
    pub init_samples: usize,
    /// Candidate points scored per iteration.
    pub candidates_per_iter: usize,
    /// Exploration weight κ in the acquisition.
    pub kappa: f64,
    /// RBF kernel bandwidth.
    pub bandwidth: f64,
}

impl Default for BoConfig {
    fn default() -> Self {
        BoConfig {
            init_samples: 8,
            candidates_per_iter: 64,
            kappa: 0.5,
            bandwidth: 0.15,
        }
    }
}

/// Result of an optimization run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OptResult {
    /// Best point found.
    pub best_x: Vec<f64>,
    /// Best value found.
    pub best_y: f64,
    /// Objective evaluations used.
    pub evals: u64,
    /// Best-so-far trace, one entry per evaluation.
    pub trace: Vec<f64>,
}

/// Run Bayesian optimization for `budget` evaluations of `f`.
///
/// The candidate pool is drawn first (scoring consumes no randomness, so
/// the draw sequence matches the old interleaved loop) and scored in one
/// [`RbfSurrogate::score_batch_with`] pass with scratch reused across
/// iterations; the argmax keeps the first maximal score, matching the
/// naive strict-greater scan.
pub fn bayes_opt<O: Objective>(
    f: &mut O,
    budget: u64,
    cfg: BoConfig,
    rng: &mut SimRng,
) -> OptResult {
    let dim = f.dim();
    let mut surrogate = RbfSurrogate::new(cfg.bandwidth);
    let mut trace = Vec::with_capacity(budget as usize);
    let mut best_x = vec![0.5; dim];
    let mut best_y = f64::INFINITY;
    let mut cands: Vec<f64> = Vec::new();
    let mut scores: Vec<f64> = Vec::new();
    let mut scratch = AccScratch::default();

    for i in 0..budget {
        let x: Vec<f64> = if (i as usize) < cfg.init_samples || surrogate.is_empty() {
            (0..dim).map(|_| rng.uniform()).collect()
        } else {
            // Draw the candidate pool (half global, half near incumbent),
            // then score it in one batched pass.
            let incumbent = surrogate
                .best()
                .map(|(p, _)| p)
                .expect("non-empty")
                .to_vec();
            cands.clear();
            for c in 0..cfg.candidates_per_iter.max(1) {
                if c % 2 == 0 {
                    for _ in 0..dim {
                        cands.push(rng.uniform());
                    }
                } else {
                    for v in &incumbent {
                        cands.push((v + rng.normal_with(0.0, 0.1)).clamp(0.0, 1.0));
                    }
                }
            }
            scores.clear();
            surrogate.score_batch_with(dim, &cands, cfg.kappa, &mut scratch, &mut scores);
            let mut bi = 0;
            for (j, s) in scores.iter().enumerate().skip(1) {
                if *s > scores[bi] {
                    bi = j;
                }
            }
            cands[bi * dim..(bi + 1) * dim].to_vec()
        };

        let y = f.eval(&x);
        surrogate.observe(&x, y);
        if y < best_y {
            best_y = y;
            best_x = x;
        }
        trace.push(best_y);
    }

    OptResult {
        best_x,
        best_y,
        evals: budget,
        trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::{Rastrigin, Sphere};

    #[test]
    fn surrogate_interpolates() {
        let mut s = RbfSurrogate::new(0.2);
        s.observe(&[0.0, 0.0], 1.0);
        s.observe(&[1.0, 1.0], 3.0);
        let (at_a, unc_a) = s.predict(&[0.0, 0.0]);
        assert!((at_a - 1.0).abs() < 0.05, "at_a {at_a}");
        assert!(unc_a < 0.01);
        let (_, unc_far) = s.predict(&[0.5, 0.9]);
        assert!(unc_far > unc_a);
        let (mid, _) = s.predict(&[0.5, 0.5]);
        assert!(mid > 1.0 && mid < 3.0);
    }

    #[test]
    fn empty_surrogate_is_maximally_uncertain() {
        let s = RbfSurrogate::new(0.2);
        assert_eq!(s.predict(&[0.3]), (0.0, 1.0));
        assert!(s.best().is_none());
    }

    #[test]
    fn cached_incumbent_tracks_first_minimum() {
        let mut s = RbfSurrogate::new(0.2);
        s.observe(&[0.1], 2.0);
        s.observe(&[0.2], 1.0);
        s.observe(&[0.3], 1.0); // tie: first minimum keeps the incumbency
        s.observe(&[0.4], 5.0);
        let (p, v) = s.best().expect("non-empty");
        assert_eq!((p, v), (&[0.2][..], 1.0));
    }

    #[test]
    fn best_is_total_when_nan_was_observed() {
        // The old implementation panicked in `best()` via
        // `.expect("finite values")`; now the poison is rejected at the
        // door and every query stays total.
        let mut s = RbfSurrogate::new(0.2);
        s.observe(&[0.5], 1.0);
        let poisoned = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut s2 = s.clone();
            s2.observe(&[0.6], f64::NAN);
            s2.observe(&[f64::INFINITY], 0.1);
            s2.observe(&[0.7], f64::NEG_INFINITY);
            s2
        }));
        // Debug builds assert; release builds reject silently. Either
        // way a surrogate that saw NaN input keeps answering.
        if let Ok(s2) = poisoned {
            assert_eq!(s2.len(), 1);
            let (p, v) = s2.best().expect("finite observation retained");
            assert_eq!((p, v), (&[0.5][..], 1.0));
            assert!(s2.predict(&[0.5]).0.is_finite());
        }
        assert_eq!(s.best().map(|(_, v)| v), Some(1.0));
    }

    #[test]
    fn score_batch_matches_per_candidate_acquisition() {
        let mut s = RbfSurrogate::new(0.15);
        let mut rng = SimRng::from_seed_u64(5);
        for _ in 0..40 {
            let x = [rng.uniform(), rng.uniform(), rng.uniform()];
            s.observe(&x, rng.uniform() * 4.0 - 2.0);
        }
        let dim = 3;
        let cands: Vec<f64> = (0..32 * dim).map(|_| rng.uniform()).collect();
        let mut batch = Vec::new();
        s.score_batch(dim, &cands, 0.6, &mut batch);
        assert_eq!(batch.len(), 32);
        for (j, b) in batch.iter().enumerate() {
            let naive = acquisition(&s, &cands[j * dim..(j + 1) * dim], 0.6);
            assert_eq!(naive.to_bits(), b.to_bits(), "candidate {j}");
        }
        // Empty surrogate: acquisition degenerates to kappa.
        let empty = RbfSurrogate::new(0.15);
        let mut out = Vec::new();
        empty.score_batch(dim, &cands[..dim], 0.6, &mut out);
        assert_eq!(out, vec![0.6]);
    }

    #[test]
    fn acquisition_prefers_unexplored_when_kappa_high() {
        let mut s = RbfSurrogate::new(0.1);
        s.observe(&[0.5, 0.5], 1.0);
        let near = acquisition(&s, &[0.5, 0.5], 2.0);
        let far = acquisition(&s, &[0.05, 0.95], 2.0);
        assert!(far > near, "far {far} near {near}");
    }

    #[test]
    fn bo_beats_random_on_sphere() {
        let mut rng = SimRng::from_seed_u64(10);
        let mut f = Sphere::new(3);
        let bo = bayes_opt(&mut f, 60, BoConfig::default(), &mut rng);

        // Pure random baseline with the same budget and a fresh stream.
        let mut rng2 = SimRng::from_seed_u64(11);
        let mut f2 = Sphere::new(3);
        let mut best_rand = f64::INFINITY;
        for _ in 0..60 {
            let x: Vec<f64> = (0..3).map(|_| rng2.uniform()).collect();
            best_rand = best_rand.min(f2.eval(&x));
        }
        assert!(
            bo.best_y < best_rand,
            "bo {:.4} vs random {:.4}",
            bo.best_y,
            best_rand
        );
        assert_eq!(bo.evals, 60);
        assert_eq!(bo.trace.len(), 60);
    }

    #[test]
    fn bo_trace_is_monotone_nonincreasing() {
        let mut rng = SimRng::from_seed_u64(12);
        let mut f = Rastrigin::new(2);
        let r = bayes_opt(&mut f, 40, BoConfig::default(), &mut rng);
        for w in r.trace.windows(2) {
            assert!(w[1] <= w[0]);
        }
    }
}
