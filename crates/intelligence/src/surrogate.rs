//! RBF surrogate model + Bayesian optimization (expected improvement).
//!
//! This is the "ML-guided parameter selection" → "automated tuning" pair of
//! §3.2's existing-system mapping: a cheap model of an expensive objective,
//! plus an acquisition loop that balances exploration and exploitation —
//! `δ* = argmin_δ J(δ)` made concrete.

use crate::objective::Objective;
use evoflow_sim::SimRng;
use serde::{Deserialize, Serialize};

/// A Gaussian-kernel RBF regressor with Nadaraya–Watson weighting.
///
/// Chosen over full kriging because it needs no linear solves (no external
/// linear-algebra dependency) while still giving smooth interpolation and a
/// distance-based uncertainty proxy — all BO here needs.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RbfSurrogate {
    points: Vec<Vec<f64>>,
    values: Vec<f64>,
    /// Kernel bandwidth.
    pub bandwidth: f64,
}

impl RbfSurrogate {
    /// Create an empty surrogate with the given kernel bandwidth.
    pub fn new(bandwidth: f64) -> Self {
        RbfSurrogate {
            points: Vec::new(),
            values: Vec::new(),
            bandwidth: bandwidth.max(1e-6),
        }
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the surrogate has no observations.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Add an observation.
    pub fn observe(&mut self, x: &[f64], y: f64) {
        self.points.push(x.to_vec());
        self.values.push(y);
    }

    /// Best (lowest) observed value, if any.
    pub fn best(&self) -> Option<(&[f64], f64)> {
        let idx = self
            .values
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite values"))?
            .0;
        Some((&self.points[idx], self.values[idx]))
    }

    fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| (x - y).powi(2)).sum()
    }

    /// Predict `(mean, uncertainty)` at `x`. Uncertainty is a distance-to-
    /// data proxy in \[0,1\]: 0 on top of data, →1 far from all data.
    pub fn predict(&self, x: &[f64]) -> (f64, f64) {
        if self.points.is_empty() {
            return (0.0, 1.0);
        }
        let h2 = self.bandwidth * self.bandwidth;
        let mut wsum = 0.0;
        let mut vsum = 0.0;
        let mut min_d2 = f64::INFINITY;
        for (p, v) in self.points.iter().zip(&self.values) {
            let d2 = Self::sq_dist(p, x);
            min_d2 = min_d2.min(d2);
            let w = (-d2 / (2.0 * h2)).exp().max(1e-300);
            wsum += w;
            vsum += w * v;
        }
        let mean = vsum / wsum;
        let uncertainty = 1.0 - (-min_d2 / (2.0 * h2)).exp();
        (mean, uncertainty)
    }
}

/// Expected-improvement-style acquisition: improvement of the predicted
/// mean over the incumbent, plus an exploration bonus proportional to
/// uncertainty. Higher is better.
pub fn acquisition(surrogate: &RbfSurrogate, x: &[f64], kappa: f64) -> f64 {
    let incumbent = surrogate.best().map(|(_, y)| y).unwrap_or(0.0);
    let (mean, unc) = surrogate.predict(x);
    (incumbent - mean) + kappa * unc
}

/// Configuration for the Bayesian-optimization loop.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct BoConfig {
    /// Random initial samples before the model drives.
    pub init_samples: usize,
    /// Candidate points scored per iteration.
    pub candidates_per_iter: usize,
    /// Exploration weight κ in the acquisition.
    pub kappa: f64,
    /// RBF kernel bandwidth.
    pub bandwidth: f64,
}

impl Default for BoConfig {
    fn default() -> Self {
        BoConfig {
            init_samples: 8,
            candidates_per_iter: 64,
            kappa: 0.5,
            bandwidth: 0.15,
        }
    }
}

/// Result of an optimization run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OptResult {
    /// Best point found.
    pub best_x: Vec<f64>,
    /// Best value found.
    pub best_y: f64,
    /// Objective evaluations used.
    pub evals: u64,
    /// Best-so-far trace, one entry per evaluation.
    pub trace: Vec<f64>,
}

/// Run Bayesian optimization for `budget` evaluations of `f`.
pub fn bayes_opt<O: Objective>(
    f: &mut O,
    budget: u64,
    cfg: BoConfig,
    rng: &mut SimRng,
) -> OptResult {
    let dim = f.dim();
    let mut surrogate = RbfSurrogate::new(cfg.bandwidth);
    let mut trace = Vec::with_capacity(budget as usize);
    let mut best_x = vec![0.5; dim];
    let mut best_y = f64::INFINITY;

    for i in 0..budget {
        let x: Vec<f64> = if (i as usize) < cfg.init_samples || surrogate.is_empty() {
            (0..dim).map(|_| rng.uniform()).collect()
        } else {
            // Score random candidates (half global, half near incumbent).
            let incumbent = surrogate
                .best()
                .map(|(p, _)| p.to_vec())
                .expect("non-empty");
            let mut best_cand: Option<(Vec<f64>, f64)> = None;
            for c in 0..cfg.candidates_per_iter {
                let cand: Vec<f64> = if c % 2 == 0 {
                    (0..dim).map(|_| rng.uniform()).collect()
                } else {
                    incumbent
                        .iter()
                        .map(|v| (v + rng.normal_with(0.0, 0.1)).clamp(0.0, 1.0))
                        .collect()
                };
                let a = acquisition(&surrogate, &cand, cfg.kappa);
                if best_cand.as_ref().map(|(_, s)| a > *s).unwrap_or(true) {
                    best_cand = Some((cand, a));
                }
            }
            best_cand.expect("candidates_per_iter > 0").0
        };

        let y = f.eval(&x);
        surrogate.observe(&x, y);
        if y < best_y {
            best_y = y;
            best_x = x;
        }
        trace.push(best_y);
    }

    OptResult {
        best_x,
        best_y,
        evals: budget,
        trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::{Rastrigin, Sphere};

    #[test]
    fn surrogate_interpolates() {
        let mut s = RbfSurrogate::new(0.2);
        s.observe(&[0.0, 0.0], 1.0);
        s.observe(&[1.0, 1.0], 3.0);
        let (at_a, unc_a) = s.predict(&[0.0, 0.0]);
        assert!((at_a - 1.0).abs() < 0.05, "at_a {at_a}");
        assert!(unc_a < 0.01);
        let (_, unc_far) = s.predict(&[0.5, 0.9]);
        assert!(unc_far > unc_a);
        let (mid, _) = s.predict(&[0.5, 0.5]);
        assert!(mid > 1.0 && mid < 3.0);
    }

    #[test]
    fn empty_surrogate_is_maximally_uncertain() {
        let s = RbfSurrogate::new(0.2);
        assert_eq!(s.predict(&[0.3]), (0.0, 1.0));
        assert!(s.best().is_none());
    }

    #[test]
    fn acquisition_prefers_unexplored_when_kappa_high() {
        let mut s = RbfSurrogate::new(0.1);
        s.observe(&[0.5, 0.5], 1.0);
        let near = acquisition(&s, &[0.5, 0.5], 2.0);
        let far = acquisition(&s, &[0.05, 0.95], 2.0);
        assert!(far > near, "far {far} near {near}");
    }

    #[test]
    fn bo_beats_random_on_sphere() {
        let mut rng = SimRng::from_seed_u64(10);
        let mut f = Sphere::new(3);
        let bo = bayes_opt(&mut f, 60, BoConfig::default(), &mut rng);

        // Pure random baseline with the same budget and a fresh stream.
        let mut rng2 = SimRng::from_seed_u64(11);
        let mut f2 = Sphere::new(3);
        let mut best_rand = f64::INFINITY;
        for _ in 0..60 {
            let x: Vec<f64> = (0..3).map(|_| rng2.uniform()).collect();
            best_rand = best_rand.min(f2.eval(&x));
        }
        assert!(
            bo.best_y < best_rand,
            "bo {:.4} vs random {:.4}",
            bo.best_y,
            best_rand
        );
        assert_eq!(bo.evals, 60);
        assert_eq!(bo.trace.len(), 60);
    }

    #[test]
    fn bo_trace_is_monotone_nonincreasing() {
        let mut rng = SimRng::from_seed_u64(12);
        let mut f = Rastrigin::new(2);
        let r = bayes_opt(&mut f, 40, BoConfig::default(), &mut rng);
        for w in r.trace.windows(2) {
            assert!(w[1] <= w[0]);
        }
    }
}
