//! # evoflow-learn — learning `L` and optimization `argmin J` machinery
//!
//! Table 1's middle rungs made concrete: everything a workflow needs to
//! climb from Adaptive to Learning to Optimizing:
//!
//! * [`objective`] — the cost-function `J` infrastructure: benchmark
//!   landscapes, noise wrappers, and evaluation budgets (sample scarcity).
//! * [`bandit`] — ε-greedy / UCB1 / Thompson exploration-exploitation.
//! * [`qlearn`] — tabular Q-learning (`δ_{t+1} = L(δ_t, H)`).
//! * [`surrogate`] — RBF surrogate + Bayesian optimization (automated
//!   tuning platforms, §3.2).
//! * [`pso`](mod@pso) — particle swarm optimization (Kennedy–Eberhart), the
//!   [Learning × Swarm] exemplar with global vs ring (O(k)) topologies.
//! * [`aco`] — Ant System (Dorigo et al.), the [Optimizing × Swarm]
//!   stigmergy exemplar.
//! * [`search`] — random/grid search, simulated annealing, successive
//!   halving baselines.

pub mod aco;
pub mod bandit;
pub mod objective;
pub mod pso;
pub mod qlearn;
pub mod search;
pub mod surrogate;

pub use aco::{ant_system, nearest_neighbor, AcoConfig, AcoResult, Tsp};
pub use bandit::{run_bernoulli, BanditPolicy, EpsilonGreedy, ThompsonBeta, Ucb1};
pub use objective::{clamp_unit, Budgeted, Noisy, Objective, Rastrigin, Rosenbrock, Sphere};
pub use pso::{pso, PsoConfig, SwarmStats, Topology};
pub use qlearn::{train_corridor, Corridor, QConfig, QLearner};
pub use search::{
    grid_search, random_search, simulated_annealing, successive_halving, AnnealConfig,
};
pub use surrogate::reference::NaiveRbfSurrogate;
pub use surrogate::{
    acquisition, bayes_opt, AccScratch, BoConfig, OptResult, RbfSurrogate, ScoreScratch,
};
