//! Generic tabular Q-learning: the learning function `L` of Table 1
//! applied to discrete state/action spaces.
//!
//! Reusable by any subsystem with a discrete decision loop (facility
//! scheduling policies, agent routing). The crate-level ML exemplars in the
//! Table 3 matrix use it for the [Learning × Single] cell.

use evoflow_sim::SimRng;
use serde::{Deserialize, Serialize};

/// Hyperparameters for Q-learning.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct QConfig {
    /// Learning rate α ∈ (0,1].
    pub alpha: f64,
    /// Discount factor γ ∈ [0,1).
    pub gamma: f64,
    /// Initial exploration rate ε.
    pub epsilon: f64,
    /// Multiplicative ε decay per update.
    pub epsilon_decay: f64,
    /// Exploration floor.
    pub epsilon_min: f64,
}

impl Default for QConfig {
    fn default() -> Self {
        QConfig {
            alpha: 0.3,
            gamma: 0.95,
            epsilon: 0.3,
            epsilon_decay: 0.999,
            epsilon_min: 0.01,
        }
    }
}

/// A tabular Q-learner over `n_states × n_actions`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QLearner {
    q: Vec<f64>,
    n_states: usize,
    n_actions: usize,
    cfg: QConfig,
    epsilon: f64,
    updates: u64,
}

impl QLearner {
    /// Create a zero-initialized learner.
    pub fn new(n_states: usize, n_actions: usize, cfg: QConfig) -> Self {
        assert!(n_states > 0 && n_actions > 0);
        QLearner {
            q: vec![0.0; n_states * n_actions],
            n_states,
            n_actions,
            cfg,
            epsilon: cfg.epsilon,
            updates: 0,
        }
    }

    /// Current Q(s, a).
    pub fn q(&self, state: usize, action: usize) -> f64 {
        self.q[state * self.n_actions + action]
    }

    /// Greedy action for a state (ties break to the lowest index).
    pub fn greedy(&self, state: usize) -> usize {
        let row = &self.q[state * self.n_actions..(state + 1) * self.n_actions];
        let mut best = 0;
        for (i, v) in row.iter().enumerate() {
            if *v > row[best] {
                best = i;
            }
        }
        best
    }

    /// ε-greedy action selection.
    pub fn act(&self, state: usize, rng: &mut SimRng) -> usize {
        if rng.chance(self.epsilon) {
            rng.below(self.n_actions)
        } else {
            self.greedy(state)
        }
    }

    /// One-step Q-update for transition `(s, a, r, s')`; `terminal` zeroes
    /// the bootstrap.
    pub fn update(&mut self, s: usize, a: usize, r: f64, s2: usize, terminal: bool) {
        let max_next = if terminal {
            0.0
        } else {
            let row = &self.q[s2 * self.n_actions..(s2 + 1) * self.n_actions];
            row.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
        };
        let idx = s * self.n_actions + a;
        self.q[idx] += self.cfg.alpha * (r + self.cfg.gamma * max_next - self.q[idx]);
        self.updates += 1;
    }

    /// Decay exploration one notch — call once per *episode*, not per
    /// update: per-update decay collapses exploration before values have
    /// propagated backward from the goal.
    pub fn decay_epsilon(&mut self) {
        self.epsilon = (self.epsilon * self.cfg.epsilon_decay).max(self.cfg.epsilon_min);
    }

    /// Updates applied so far.
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// Current exploration rate.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }
}

/// A tiny corridor MDP used for tests and the matrix exemplars: states
/// `0..n`, actions {left, right}; reward 1 at the right end (terminal),
/// 0 elsewhere.
pub struct Corridor {
    /// Number of states.
    pub n: usize,
    /// Current state.
    pub state: usize,
}

impl Corridor {
    /// Corridor of `n` states starting at 0.
    pub fn new(n: usize) -> Self {
        assert!(n >= 2);
        Corridor { n, state: 0 }
    }

    /// Apply action (0 = left, 1 = right); returns `(next, reward, done)`.
    pub fn step(&mut self, action: usize) -> (usize, f64, bool) {
        match action {
            0 => self.state = self.state.saturating_sub(1),
            _ => self.state = (self.state + 1).min(self.n - 1),
        }
        let done = self.state == self.n - 1;
        (self.state, if done { 1.0 } else { 0.0 }, done)
    }

    /// Reset to the start.
    pub fn reset(&mut self) {
        self.state = 0;
    }
}

/// Train a learner on the corridor for `episodes`; returns the mean steps
/// per episode over the last 10 episodes (optimal = n−1).
pub fn train_corridor(
    learner: &mut QLearner,
    env: &mut Corridor,
    episodes: u32,
    rng: &mut SimRng,
) -> f64 {
    let mut recent = Vec::new();
    for _ in 0..episodes {
        env.reset();
        let mut steps = 0u32;
        loop {
            let s = env.state;
            let a = learner.act(s, rng);
            let (s2, r, done) = env.step(a);
            learner.update(s, a, r, s2, done);
            steps += 1;
            if done || steps > 500 {
                break;
            }
        }
        learner.decay_epsilon();
        recent.push(steps as f64);
        if recent.len() > 10 {
            recent.remove(0);
        }
    }
    recent.iter().sum::<f64>() / recent.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_corridor_policy() {
        // Start fully exploratory: with zero-initialized Q and deterministic
        // tie-breaking, low initial ε walks left forever and never finds the
        // reward (the classic exploration failure).
        let cfg = QConfig {
            epsilon: 1.0,
            epsilon_decay: 0.985,
            epsilon_min: 0.05,
            ..QConfig::default()
        };
        let mut q = QLearner::new(8, 2, cfg);
        let mut env = Corridor::new(8);
        let mut rng = SimRng::from_seed_u64(1);
        let mean_steps = train_corridor(&mut q, &mut env, 300, &mut rng);
        assert!(mean_steps < 10.0, "mean steps {mean_steps}"); // optimal 7
                                                               // Greedy policy goes right everywhere along the corridor.
        for s in 0..7 {
            assert_eq!(q.greedy(s), 1, "state {s} prefers left");
        }
    }

    #[test]
    fn epsilon_decays_to_floor() {
        let mut q = QLearner::new(
            2,
            2,
            QConfig {
                epsilon: 0.5,
                epsilon_decay: 0.5,
                epsilon_min: 0.05,
                ..QConfig::default()
            },
        );
        for _ in 0..20 {
            q.update(0, 0, 0.0, 1, false);
            q.decay_epsilon();
        }
        assert!((q.epsilon() - 0.05).abs() < 1e-12);
        assert_eq!(q.updates(), 20);
    }

    #[test]
    fn terminal_updates_do_not_bootstrap() {
        let mut q = QLearner::new(
            2,
            1,
            QConfig {
                alpha: 1.0,
                gamma: 0.9,
                ..QConfig::default()
            },
        );
        // Give state 1 a large value; a terminal transition into it must
        // ignore that value.
        q.update(1, 0, 10.0, 0, true);
        q.update(0, 0, 1.0, 1, true);
        assert_eq!(q.q(0, 0), 1.0);
    }

    #[test]
    fn greedy_ties_break_deterministically() {
        let q = QLearner::new(1, 3, QConfig::default());
        assert_eq!(q.greedy(0), 0);
    }
}
