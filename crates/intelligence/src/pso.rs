//! Particle swarm optimization (Kennedy & Eberhart 1995) — the paper's
//! canonical [Learning × Swarm] exemplar in Table 3 and the Φ-emergence
//! reference: "particle swarm optimization implementing Φ emergence" (§3.3).
//!
//! Two neighborhood topologies are provided because the swarm-scaling
//! claim depends on them: `Global` (every particle sees the global best —
//! effectively all-to-all) and `Ring(k)` (each particle sees only k
//! neighbors — the O(k) local communication of Table 2).

use crate::objective::Objective;
use crate::surrogate::OptResult;
use evoflow_sim::SimRng;
use serde::{Deserialize, Serialize};

/// Neighborhood structure: who each particle learns from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Topology {
    /// All particles share one global best (star topology).
    Global,
    /// Ring lattice: particle i sees i±1..=k/2 (local rules only — Φ).
    Ring {
        /// Neighborhood size (total neighbors, split both ways).
        k: usize,
    },
}

/// PSO hyperparameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PsoConfig {
    /// Number of particles.
    pub particles: usize,
    /// Inertia weight w.
    pub inertia: f64,
    /// Cognitive coefficient c1 (pull toward own best).
    pub cognitive: f64,
    /// Social coefficient c2 (pull toward neighborhood best).
    pub social: f64,
    /// Neighborhood topology.
    pub topology: Topology,
    /// Maximum velocity per dimension.
    pub v_max: f64,
}

impl Default for PsoConfig {
    fn default() -> Self {
        PsoConfig {
            particles: 30,
            inertia: 0.72,
            cognitive: 1.49,
            social: 1.49,
            topology: Topology::Global,
            v_max: 0.2,
        }
    }
}

/// Per-round swarm statistics, for emergence analysis.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SwarmStats {
    /// Mean pairwise-to-centroid distance (diversity) per iteration.
    pub diversity: Vec<f64>,
    /// Messages exchanged per iteration (neighbor-best reads).
    pub messages_per_iter: u64,
}

/// Run PSO for `iterations` rounds; total evaluations =
/// `particles * (iterations + 1)`.
pub fn pso<O: Objective>(
    f: &mut O,
    iterations: u32,
    cfg: PsoConfig,
    rng: &mut SimRng,
) -> (OptResult, SwarmStats) {
    let dim = f.dim();
    let n = cfg.particles.max(2);

    let mut pos: Vec<Vec<f64>> = (0..n)
        .map(|_| (0..dim).map(|_| rng.uniform()).collect())
        .collect();
    let mut vel: Vec<Vec<f64>> = (0..n)
        .map(|_| {
            (0..dim)
                .map(|_| rng.uniform_range(-cfg.v_max, cfg.v_max))
                .collect()
        })
        .collect();
    let mut pbest = pos.clone();
    let mut pbest_val: Vec<f64> = pos.iter().map(|p| f.eval(p)).collect();
    let mut evals = n as u64;
    let mut trace = Vec::new();
    let mut diversity = Vec::new();

    let best_idx = |vals: &[f64]| {
        vals.iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .map(|(i, _)| i)
            .expect("non-empty")
    };

    // Messages: each particle reads its neighbors' bests once per iteration.
    let msgs_per_iter = match cfg.topology {
        Topology::Global => n as u64, // read the shared best (star)
        Topology::Ring { k } => (n * k.min(n - 1)) as u64,
    };

    for _ in 0..iterations {
        let g = best_idx(&pbest_val);
        for i in 0..n {
            // Neighborhood best.
            let nb = match cfg.topology {
                Topology::Global => g,
                Topology::Ring { k } => {
                    let half = (k / 2).max(1);
                    let mut best = i;
                    for d in 1..=half {
                        for j in [(i + d) % n, (i + n - d % n) % n] {
                            if pbest_val[j] < pbest_val[best] {
                                best = j;
                            }
                        }
                    }
                    best
                }
            };
            let nb_pos = pbest[nb].clone();
            for d in 0..dim {
                let r1 = rng.uniform();
                let r2 = rng.uniform();
                vel[i][d] = (cfg.inertia * vel[i][d]
                    + cfg.cognitive * r1 * (pbest[i][d] - pos[i][d])
                    + cfg.social * r2 * (nb_pos[d] - pos[i][d]))
                    .clamp(-cfg.v_max, cfg.v_max);
                pos[i][d] = (pos[i][d] + vel[i][d]).clamp(0.0, 1.0);
            }
            let v = f.eval(&pos[i]);
            evals += 1;
            if v < pbest_val[i] {
                pbest_val[i] = v;
                pbest[i] = pos[i].clone();
            }
        }
        let g = best_idx(&pbest_val);
        trace.push(pbest_val[g]);

        // Diversity: mean distance to centroid.
        let centroid: Vec<f64> = (0..dim)
            .map(|d| pos.iter().map(|p| p[d]).sum::<f64>() / n as f64)
            .collect();
        let div = pos
            .iter()
            .map(|p| {
                p.iter()
                    .zip(&centroid)
                    .map(|(a, b)| (a - b).powi(2))
                    .sum::<f64>()
                    .sqrt()
            })
            .sum::<f64>()
            / n as f64;
        diversity.push(div);
    }

    let g = best_idx(&pbest_val);
    (
        OptResult {
            best_x: pbest[g].clone(),
            best_y: pbest_val[g],
            evals,
            trace,
        },
        SwarmStats {
            diversity,
            messages_per_iter: msgs_per_iter,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::{Rastrigin, Sphere};

    #[test]
    fn pso_solves_sphere() {
        let mut rng = SimRng::from_seed_u64(1);
        let mut f = Sphere::new(4);
        let (r, _) = pso(&mut f, 60, PsoConfig::default(), &mut rng);
        assert!(r.best_y < 1e-3, "best {}", r.best_y);
    }

    #[test]
    fn pso_makes_progress_on_rastrigin() {
        let mut rng = SimRng::from_seed_u64(2);
        let mut f = Rastrigin::new(3);
        let (r, _) = pso(&mut f, 120, PsoConfig::default(), &mut rng);
        // Random sampling in 3-D Rastrigin typically sits above 30.
        assert!(r.best_y < 12.0, "best {}", r.best_y);
        for w in r.trace.windows(2) {
            assert!(w[1] <= w[0]);
        }
    }

    #[test]
    fn ring_topology_keeps_diversity_longer() {
        let run = |topology| {
            let mut rng = SimRng::from_seed_u64(3);
            let mut f = Rastrigin::new(3);
            let cfg = PsoConfig {
                topology,
                ..PsoConfig::default()
            };
            let (_, stats) = pso(&mut f, 40, cfg, &mut rng);
            stats.diversity[10]
        };
        let global = run(Topology::Global);
        let ring = run(Topology::Ring { k: 2 });
        assert!(
            ring > global,
            "ring diversity {ring} should exceed global {global}"
        );
    }

    #[test]
    fn message_cost_matches_topology() {
        let mut rng = SimRng::from_seed_u64(4);
        let mut f = Sphere::new(2);
        let cfg = PsoConfig {
            particles: 50,
            topology: Topology::Ring { k: 4 },
            ..PsoConfig::default()
        };
        let (_, stats) = pso(&mut f, 5, cfg, &mut rng);
        assert_eq!(stats.messages_per_iter, 200); // n*k
        let cfg = PsoConfig {
            particles: 50,
            topology: Topology::Global,
            ..PsoConfig::default()
        };
        let (_, stats) = pso(&mut f, 5, cfg, &mut rng);
        assert_eq!(stats.messages_per_iter, 50); // star reads
    }

    #[test]
    fn eval_accounting() {
        let mut rng = SimRng::from_seed_u64(5);
        let mut f = Sphere::new(2);
        let cfg = PsoConfig {
            particles: 10,
            ..PsoConfig::default()
        };
        let (r, _) = pso(&mut f, 7, cfg, &mut rng);
        assert_eq!(r.evals, 10 * 8); // init + 7 iters
        assert_eq!(r.trace.len(), 7);
    }
}
