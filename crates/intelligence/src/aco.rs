//! Ant System (Dorigo, Maniezzo & Colorni 1996) — Table 3's
//! [Optimizing × Swarm] exemplar: stigmergic optimization where simple
//! local rules (pheromone deposition/evaporation) yield collective
//! optimization without central coordination — the Φ operator again,
//! this time over a discrete tour space.

use evoflow_sim::SimRng;
use serde::{Deserialize, Serialize};

/// A symmetric TSP instance on points in the unit square.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Tsp {
    /// City coordinates.
    pub cities: Vec<(f64, f64)>,
    dist: Vec<f64>,
}

impl Tsp {
    /// Random instance with `n` cities.
    pub fn random(n: usize, rng: &mut SimRng) -> Self {
        let cities: Vec<(f64, f64)> = (0..n).map(|_| (rng.uniform(), rng.uniform())).collect();
        Self::from_cities(cities)
    }

    /// Instance from explicit coordinates.
    pub fn from_cities(cities: Vec<(f64, f64)>) -> Self {
        let n = cities.len();
        let mut dist = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                let dx = cities[i].0 - cities[j].0;
                let dy = cities[i].1 - cities[j].1;
                dist[i * n + j] = (dx * dx + dy * dy).sqrt();
            }
        }
        Tsp { cities, dist }
    }

    /// Number of cities.
    pub fn len(&self) -> usize {
        self.cities.len()
    }

    /// Whether the instance is empty.
    pub fn is_empty(&self) -> bool {
        self.cities.is_empty()
    }

    /// Distance between cities `i` and `j`.
    pub fn dist(&self, i: usize, j: usize) -> f64 {
        self.dist[i * self.cities.len() + j]
    }

    /// Total length of a closed tour.
    pub fn tour_len(&self, tour: &[usize]) -> f64 {
        let n = tour.len();
        (0..n).map(|i| self.dist(tour[i], tour[(i + 1) % n])).sum()
    }
}

/// Ant System hyperparameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct AcoConfig {
    /// Number of ants per iteration.
    pub ants: usize,
    /// Pheromone influence α.
    pub alpha: f64,
    /// Heuristic (1/d) influence β.
    pub beta: f64,
    /// Evaporation rate ρ ∈ (0,1).
    pub rho: f64,
    /// Pheromone deposit scale Q.
    pub q: f64,
}

impl Default for AcoConfig {
    fn default() -> Self {
        AcoConfig {
            ants: 20,
            alpha: 1.0,
            beta: 3.0,
            rho: 0.5,
            q: 1.0,
        }
    }
}

/// Result of an ACO run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AcoResult {
    /// Best tour found.
    pub best_tour: Vec<usize>,
    /// Its length.
    pub best_len: f64,
    /// Best-so-far length per iteration.
    pub trace: Vec<f64>,
}

/// Run Ant System on `tsp` for `iterations`.
pub fn ant_system(tsp: &Tsp, iterations: u32, cfg: AcoConfig, rng: &mut SimRng) -> AcoResult {
    let n = tsp.len();
    assert!(n >= 3, "TSP needs at least 3 cities");
    let mut pheromone = vec![1.0f64; n * n];
    let mut best_tour: Vec<usize> = (0..n).collect();
    let mut best_len = tsp.tour_len(&best_tour);
    let mut trace = Vec::with_capacity(iterations as usize);

    for _ in 0..iterations {
        let mut tours: Vec<(Vec<usize>, f64)> = Vec::with_capacity(cfg.ants);
        for _ in 0..cfg.ants {
            // Construct a tour probabilistically.
            let start = rng.below(n);
            let mut tour = vec![start];
            let mut visited = vec![false; n];
            visited[start] = true;
            while tour.len() < n {
                let cur = *tour.last().expect("non-empty tour");
                let weights: Vec<f64> = (0..n)
                    .map(|j| {
                        if visited[j] {
                            0.0
                        } else {
                            let tau = pheromone[cur * n + j].powf(cfg.alpha);
                            let eta = (1.0 / tsp.dist(cur, j).max(1e-9)).powf(cfg.beta);
                            tau * eta
                        }
                    })
                    .collect();
                let next = rng
                    .weighted_index(&weights)
                    .unwrap_or_else(|| visited.iter().position(|v| !v).expect("unvisited"));
                visited[next] = true;
                tour.push(next);
            }
            let len = tsp.tour_len(&tour);
            if len < best_len {
                best_len = len;
                best_tour = tour.clone();
            }
            tours.push((tour, len));
        }

        // Evaporate, then deposit proportional to tour quality.
        for p in pheromone.iter_mut() {
            *p *= 1.0 - cfg.rho;
            *p = p.max(1e-12);
        }
        for (tour, len) in &tours {
            let deposit = cfg.q / len;
            for w in 0..n {
                let (a, b) = (tour[w], tour[(w + 1) % n]);
                pheromone[a * n + b] += deposit;
                pheromone[b * n + a] += deposit;
            }
        }
        trace.push(best_len);
    }

    AcoResult {
        best_tour,
        best_len,
        trace,
    }
}

/// Nearest-neighbor heuristic baseline.
pub fn nearest_neighbor(tsp: &Tsp, start: usize) -> (Vec<usize>, f64) {
    let n = tsp.len();
    let mut tour = vec![start];
    let mut visited = vec![false; n];
    visited[start] = true;
    while tour.len() < n {
        let cur = *tour.last().expect("non-empty");
        let next = (0..n)
            .filter(|j| !visited[*j])
            .min_by(|&a, &b| {
                tsp.dist(cur, a)
                    .partial_cmp(&tsp.dist(cur, b))
                    .expect("finite")
            })
            .expect("unvisited remains");
        visited[next] = true;
        tour.push(next);
    }
    let len = tsp.tour_len(&tour);
    (tour, len)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tour_length_of_square() {
        let tsp = Tsp::from_cities(vec![(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (0.0, 1.0)]);
        assert!((tsp.tour_len(&[0, 1, 2, 3]) - 4.0).abs() < 1e-9);
        // Crossing diagonal tour is longer.
        assert!(tsp.tour_len(&[0, 2, 1, 3]) > 4.0);
    }

    #[test]
    fn ants_find_square_optimum() {
        let tsp = Tsp::from_cities(vec![(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (0.0, 1.0)]);
        let mut rng = SimRng::from_seed_u64(1);
        let r = ant_system(&tsp, 30, AcoConfig::default(), &mut rng);
        assert!((r.best_len - 4.0).abs() < 1e-9, "best {}", r.best_len);
    }

    #[test]
    fn ants_beat_or_match_nearest_neighbor() {
        let mut rng = SimRng::from_seed_u64(2);
        let tsp = Tsp::random(25, &mut rng);
        let (_, nn_len) = nearest_neighbor(&tsp, 0);
        let r = ant_system(&tsp, 80, AcoConfig::default(), &mut rng);
        assert!(
            r.best_len <= nn_len * 1.02,
            "aco {} vs nn {}",
            r.best_len,
            nn_len
        );
    }

    #[test]
    fn trace_is_monotone() {
        let mut rng = SimRng::from_seed_u64(3);
        let tsp = Tsp::random(15, &mut rng);
        let r = ant_system(&tsp, 40, AcoConfig::default(), &mut rng);
        for w in r.trace.windows(2) {
            assert!(w[1] <= w[0]);
        }
        // Tour is a permutation.
        let mut seen = r.best_tour.clone();
        seen.sort_unstable();
        assert_eq!(seen, (0..15).collect::<Vec<_>>());
    }

    #[test]
    fn determinism_per_seed() {
        let tsp = Tsp::from_cities(vec![
            (0.1, 0.2),
            (0.8, 0.1),
            (0.5, 0.9),
            (0.2, 0.7),
            (0.9, 0.6),
        ]);
        let run = |seed| {
            let mut rng = SimRng::from_seed_u64(seed);
            ant_system(&tsp, 20, AcoConfig::default(), &mut rng).best_len
        };
        assert_eq!(run(7), run(7));
    }
}
