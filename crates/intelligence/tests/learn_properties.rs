//! Property tests for the optimization machinery: budget discipline,
//! trace monotonicity, and bandit sanity across random configurations.

use evoflow_learn::objective::Objective;
use evoflow_learn::{
    ant_system, bayes_opt, pso, random_search, simulated_annealing, AcoConfig, AnnealConfig,
    BanditPolicy, BoConfig, Budgeted, EpsilonGreedy, PsoConfig, Rastrigin, Sphere, ThompsonBeta,
    Tsp, Ucb1,
};
use evoflow_sim::SimRng;
use proptest::prelude::*;

proptest! {
    /// Every optimizer respects an exact evaluation budget and returns a
    /// monotone non-increasing best-so-far trace within bounds.
    #[test]
    fn optimizers_respect_budgets(seed in any::<u64>(), dim in 2usize..5) {
        let budget = 120u64;
        let mut rng = SimRng::from_seed_u64(seed);

        let mut f = Budgeted::new(Sphere::new(dim), budget);
        let r = random_search(&mut f, budget, &mut rng);
        prop_assert_eq!(f.used(), budget);
        prop_assert!(r.trace.windows(2).all(|w| w[1] <= w[0]));
        prop_assert!(r.best_x.iter().all(|v| (0.0..=1.0).contains(v)));

        let mut f = Budgeted::new(Sphere::new(dim), budget);
        let r = simulated_annealing(&mut f, budget, AnnealConfig::default(), &mut rng);
        prop_assert_eq!(f.used(), budget);
        prop_assert!(r.trace.windows(2).all(|w| w[1] <= w[0]));

        let mut f = Budgeted::new(Sphere::new(dim), budget);
        let r = bayes_opt(&mut f, budget, BoConfig::default(), &mut rng);
        prop_assert_eq!(f.used(), budget);
        prop_assert!(r.trace.windows(2).all(|w| w[1] <= w[0]));
    }

    /// PSO evaluation accounting: particles × (iterations + 1).
    #[test]
    fn pso_accounting(particles in 3usize..20, iters in 1u32..20, seed in any::<u64>()) {
        let mut rng = SimRng::from_seed_u64(seed);
        let mut f = Rastrigin::new(2);
        let cfg = PsoConfig { particles, ..PsoConfig::default() };
        let (r, stats) = pso(&mut f, iters, cfg, &mut rng);
        prop_assert_eq!(r.evals, (particles as u64) * (iters as u64 + 1));
        prop_assert_eq!(r.trace.len(), iters as usize);
        prop_assert_eq!(stats.diversity.len(), iters as usize);
        prop_assert!(r.best_x.iter().all(|v| (0.0..=1.0).contains(v)));
    }

    /// ACO always returns a valid permutation tour whose length never
    /// exceeds the first iteration's best.
    #[test]
    fn aco_tours_are_permutations(n in 4usize..15, seed in any::<u64>()) {
        let mut rng = SimRng::from_seed_u64(seed);
        let tsp = Tsp::random(n, &mut rng);
        let r = ant_system(&tsp, 15, AcoConfig::default(), &mut rng);
        let mut sorted = r.best_tour.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..n).collect::<Vec<_>>());
        prop_assert!(r.best_len <= r.trace[0] + 1e-12);
        prop_assert!((tsp.tour_len(&r.best_tour) - r.best_len).abs() < 1e-9);
    }

    /// All bandit policies keep pull counts consistent and means bounded
    /// by observed rewards.
    #[test]
    fn bandit_accounting(steps in 10u64..500, seed in any::<u64>()) {
        let rates = [0.2, 0.6, 0.9];
        let mut rng = SimRng::from_seed_u64(seed);
        fn check<P: BanditPolicy>(
            mut p: P,
            rates: &[f64],
            steps: u64,
            rng: &mut SimRng,
        ) -> Result<(), TestCaseError> {
            let (reward, best_plays) = evoflow_learn::run_bernoulli(&mut p, rates, steps, rng);
            prop_assert_eq!(p.pulls(), steps);
            prop_assert!(reward <= steps as f64);
            prop_assert!(best_plays <= steps);
            for arm in 0..rates.len() {
                let m = p.mean(arm);
                prop_assert!((0.0..=1.0).contains(&m), "mean {} out of range", m);
            }
            Ok(())
        }
        check(EpsilonGreedy::new(3, 0.1), &rates, steps, &mut rng)?;
        check(Ucb1::new(3), &rates, steps, &mut rng)?;
        check(ThompsonBeta::new(3), &rates, steps, &mut rng)?;
    }

    /// The noisy objective wrapper is unbiased: the mean of many draws
    /// approaches the latent value.
    #[test]
    fn noise_is_unbiased(seed in any::<u64>()) {
        let mut f = evoflow_learn::Noisy::new(Sphere::new(2), 0.2, seed);
        let x = [0.25, 0.75];
        let latent = Sphere::new(2).eval(&x);
        let n = 3_000;
        let mean: f64 = (0..n).map(|_| f.eval(&x)).sum::<f64>() / n as f64;
        prop_assert!((mean - latent).abs() < 0.03);
    }
}
