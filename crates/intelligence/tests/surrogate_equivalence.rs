//! Bit-identity battery for the optimized surrogate hot path.
//!
//! The flat-storage [`RbfSurrogate`] (stride-`dim` points, cached
//! incumbent, batched accumulator kernels) must be *bit-identical* —
//! `f64::to_bits` equality, not epsilon-close — to the retained
//! [`NaiveRbfSurrogate`] reference (nested `Vec<Vec<f64>>` storage,
//! full-rescan incumbent, per-candidate loops) on every observable:
//! `predict`, `best`, and the acquisition score, over arbitrary
//! observation sets including extreme-magnitude floats, signed zeros,
//! dimension-drifting points (both sides drop them), and degenerate
//! empty / single-point surrogates.

use evoflow_learn::{acquisition, AccScratch, NaiveRbfSurrogate, RbfSurrogate};
use proptest::prelude::*;

/// Finite floats spanning the interesting range: the unit-ish cube the
/// campaigns live in (listed thrice to dominate the union), large
/// magnitudes that overflow `exp` into the `1e-300` weight floor, and
/// subnormal-adjacent tinies.
fn finite_extreme() -> BoxedStrategy<f64> {
    prop_oneof![
        -1.5f64..1.5,
        -1.5f64..1.5,
        -1.5f64..1.5,
        -1e6f64..1e6,
        Just(1e300),
        Just(-1e300),
        Just(1e-300),
        Just(-1e-300),
        Just(0.0),
        Just(-0.0),
        Just(f64::MAX),
        Just(f64::MIN),
    ]
    .boxed()
}

fn pair_bits(p: (f64, f64)) -> (u64, u64) {
    (p.0.to_bits(), p.1.to_bits())
}

fn best_bits(b: Option<(&[f64], f64)>) -> Option<(Vec<u64>, u64)> {
    b.map(|(x, y)| (x.iter().map(|v| v.to_bits()).collect(), y.to_bits()))
}

/// Assert every observable of the pair agrees bit-for-bit on a query
/// pool: `best`, per-candidate `predict`, batched predict, batched
/// scores, the throwaway-scratch batch, and the free `acquisition`.
fn assert_identical(
    fast: &RbfSurrogate,
    naive: &NaiveRbfSurrogate,
    dim: usize,
    queries: &[Vec<f64>],
    kappa: f64,
    scratch: &mut AccScratch,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(fast.len(), naive.len());
    prop_assert_eq!(best_bits(fast.best()), best_bits(naive.best()));

    let mut flat = Vec::with_capacity(queries.len() * dim);
    for q in queries {
        flat.extend_from_slice(q);
    }
    let mut preds = Vec::new();
    fast.predict_batch_with(dim, &flat, scratch, &mut preds);
    let mut scores = Vec::new();
    fast.score_batch_with(dim, &flat, kappa, scratch, &mut scores);
    let mut scores_throwaway = Vec::new();
    fast.score_batch(dim, &flat, kappa, &mut scores_throwaway);

    for (j, q) in queries.iter().enumerate() {
        prop_assert_eq!(pair_bits(fast.predict(q)), pair_bits(naive.predict(q)));
        prop_assert_eq!(pair_bits(preds[j]), pair_bits(naive.predict(q)));
        let ns = naive.acquisition(q, kappa).to_bits();
        prop_assert_eq!(scores[j].to_bits(), ns);
        prop_assert_eq!(scores_throwaway[j].to_bits(), ns);
        prop_assert_eq!(acquisition(fast, q, kappa).to_bits(), ns);
    }
    Ok(())
}

proptest! {
    /// Arbitrary observation streams keep the optimized surrogate
    /// bit-identical to the naive reference at every step — including
    /// the empty prefix, after the first point, and through extreme
    /// values and dropped dimension-drifting points.
    #[test]
    fn flat_surrogate_is_bit_identical_to_naive(
        dim in 1usize..4,
        // Coordinates are drawn at width 5 and truncated to `dim` in
        // the body (the vendored proptest has no `prop_flat_map`);
        // `drift == 0` widens a point to `dim + 1` so both sides must
        // silently drop it.
        obs in prop::collection::vec(
            (prop::collection::vec(finite_extreme(), 5), finite_extreme(), 0usize..10),
            0..24,
        ),
        queries in prop::collection::vec(prop::collection::vec(finite_extreme(), 4), 1..8),
        bandwidth in 0.01f64..1.5,
        kappa in 0.0f64..2.0,
    ) {
        let queries: Vec<Vec<f64>> = queries.iter().map(|q| q[..dim].to_vec()).collect();
        let mut fast = RbfSurrogate::new(bandwidth);
        let mut naive = NaiveRbfSurrogate::new(bandwidth);
        let mut scratch = AccScratch::default();

        // Degenerate: the empty pair must already agree everywhere.
        assert_identical(&fast, &naive, dim, &queries, kappa, &mut scratch)?;

        for (coords, y, drift) in &obs {
            let width = if *drift == 0 { dim + 1 } else { dim };
            let x = &coords[..width];
            fast.observe(x, *y);
            naive.observe(x, *y);
            // The cached incumbent must track the reference's full
            // rescan after every single observation (single-point
            // surrogates included), not just at the end.
            prop_assert_eq!(best_bits(fast.best()), best_bits(naive.best()));
        }
        assert_identical(&fast, &naive, dim, &queries, kappa, &mut scratch)?;
    }

    /// Ties on the minimum: the cached incumbent keeps the *first*
    /// minimal observation, exactly like the reference's
    /// front-to-back `min_by` rescan.
    #[test]
    fn cached_incumbent_breaks_ties_like_the_rescan(
        values in prop::collection::vec(0usize..6, 1..32),
        bandwidth in 0.05f64..1.0,
    ) {
        let mut fast = RbfSurrogate::new(bandwidth);
        let mut naive = NaiveRbfSurrogate::new(bandwidth);
        for (i, v) in values.iter().enumerate() {
            // Coarse integer-valued scores force repeated exact ties.
            let y = *v as f64 - 3.0;
            let x = [i as f64 / 32.0];
            fast.observe(&x, y);
            naive.observe(&x, y);
            prop_assert_eq!(best_bits(fast.best()), best_bits(naive.best()));
        }
    }
}

/// Exact expectations on the degenerate surrogates, beyond agreement:
/// empty predicts `(0.0, 1.0)` with score `kappa`, a single point
/// interpolates itself.
#[test]
fn degenerate_surrogates_exact_values() {
    let fast = RbfSurrogate::new(0.2);
    assert_eq!(fast.best(), None);
    assert_eq!(fast.predict(&[0.5, 0.5]), (0.0, 1.0));
    let mut scores = Vec::new();
    fast.score_batch(2, &[0.5, 0.5], 0.7, &mut scores);
    assert_eq!(scores, vec![0.7]);

    let mut fast = RbfSurrogate::new(0.2);
    let mut naive = NaiveRbfSurrogate::new(0.2);
    fast.observe(&[0.25, 0.75], -1.5);
    naive.observe(&[0.25, 0.75], -1.5);
    let (mean, unc) = fast.predict(&[0.25, 0.75]);
    assert_eq!(mean, -1.5);
    assert_eq!(unc, 0.0);
    assert_eq!(fast.best(), Some((&[0.25, 0.75][..], -1.5)));
    assert_eq!(
        fast.predict(&[0.9, 0.1]).0.to_bits(),
        naive.predict(&[0.9, 0.1]).0.to_bits()
    );
}
