//! The scientific knowledge graph (Resource & Data Management layer, Fig 2).
//!
//! "Knowledge graphs represent relationships between hypotheses,
//! experiments, and results, synchronized across sites with eventual
//! consistency" (§5.2). Nodes are typed scientific entities, edges typed
//! relations; replicas merge with last-writer-wins per property, which the
//! tests show is commutative, associative, and idempotent (a state-based
//! CRDT).

use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Scientific entity types in the graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum NodeKind {
    /// A research hypothesis.
    Hypothesis,
    /// An experiment (designed or executed).
    Experiment,
    /// A material / compound / candidate.
    Material,
    /// A measured or computed result.
    Result,
    /// A theory or model of the domain.
    Theory,
    /// A dataset artifact.
    Dataset,
    /// An AI/ML model.
    Model,
}

/// Typed relations between entities.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Relation {
    /// Evidence supports a hypothesis/theory.
    Supports,
    /// Evidence refutes a hypothesis/theory.
    Refutes,
    /// Derived from (result from experiment, material from material).
    DerivedFrom,
    /// Hypothesis tested by experiment.
    TestedBy,
    /// Experiment produced result/dataset.
    Produced,
    /// Generic association.
    RelatedTo,
}

/// A node: key, kind, versioned properties.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// Globally unique key (e.g. `"hypothesis/42"`).
    pub key: String,
    /// Entity type.
    pub kind: NodeKind,
    /// Property map; each value carries the logical timestamp of its last
    /// write for LWW merging.
    pub props: BTreeMap<String, (u64, String)>,
}

impl Node {
    /// Read a property value.
    pub fn get(&self, prop: &str) -> Option<&str> {
        self.props.get(prop).map(|(_, v)| v.as_str())
    }
}

/// An edge between two node keys.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Edge {
    /// Source node key.
    pub from: String,
    /// Relation type.
    pub rel: Relation,
    /// Target node key.
    pub to: String,
}

/// A replicable scientific knowledge graph.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct KnowledgeGraph {
    nodes: BTreeMap<String, Node>,
    edges: BTreeSet<Edge>,
    clock: u64,
}

impl KnowledgeGraph {
    /// Create an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Insert or update a node of `kind` under `key`.
    pub fn upsert_node(&mut self, key: impl Into<String>, kind: NodeKind) -> &mut Node {
        let key = key.into();
        self.nodes.entry(key.clone()).or_insert_with(|| Node {
            key,
            kind,
            props: BTreeMap::new(),
        })
    }

    /// Set a property on a node (advances the logical clock).
    pub fn set_prop(&mut self, key: &str, prop: impl Into<String>, value: impl Into<String>) {
        self.clock += 1;
        let ts = self.clock;
        if let Some(n) = self.nodes.get_mut(key) {
            n.props.insert(prop.into(), (ts, value.into()));
        }
    }

    /// Get a node.
    pub fn node(&self, key: &str) -> Option<&Node> {
        self.nodes.get(key)
    }

    /// Add a typed edge; both endpoints must exist.
    pub fn link(&mut self, from: &str, rel: Relation, to: &str) -> bool {
        if self.nodes.contains_key(from) && self.nodes.contains_key(to) {
            self.edges.insert(Edge {
                from: from.to_string(),
                rel,
                to: to.to_string(),
            });
            true
        } else {
            false
        }
    }

    /// Outgoing neighbors of `key`, optionally filtered by relation.
    pub fn neighbors(&self, key: &str, rel: Option<Relation>) -> Vec<&Node> {
        self.edges
            .iter()
            .filter(|e| e.from == key && rel.map(|r| e.rel == r).unwrap_or(true))
            .filter_map(|e| self.nodes.get(&e.to))
            .collect()
    }

    /// Incoming neighbors of `key`, optionally filtered by relation.
    pub fn incoming(&self, key: &str, rel: Option<Relation>) -> Vec<&Node> {
        self.edges
            .iter()
            .filter(|e| e.to == key && rel.map(|r| e.rel == r).unwrap_or(true))
            .filter_map(|e| self.nodes.get(&e.from))
            .collect()
    }

    /// All nodes of a kind, in key order.
    pub fn nodes_of_kind(&self, kind: NodeKind) -> Vec<&Node> {
        self.nodes.values().filter(|n| n.kind == kind).collect()
    }

    /// Breadth-first path existence between two keys (directed).
    pub fn path_exists(&self, from: &str, to: &str) -> bool {
        if from == to {
            return self.nodes.contains_key(from);
        }
        let mut seen = BTreeSet::new();
        let mut q = VecDeque::new();
        seen.insert(from.to_string());
        q.push_back(from.to_string());
        while let Some(cur) = q.pop_front() {
            for e in self.edges.iter().filter(|e| e.from == cur) {
                if e.to == to {
                    return true;
                }
                if seen.insert(e.to.clone()) {
                    q.push_back(e.to.clone());
                }
            }
        }
        false
    }

    /// Net support for a hypothesis: supporting minus refuting in-edges.
    pub fn support_score(&self, key: &str) -> i64 {
        let s = self.incoming(key, Some(Relation::Supports)).len() as i64;
        let r = self.incoming(key, Some(Relation::Refutes)).len() as i64;
        s - r
    }

    /// Merge another replica into this one (eventual consistency):
    /// node union; per-property last-writer-wins by `(timestamp, value)`;
    /// edge union. Commutative, associative, idempotent.
    pub fn merge(&mut self, other: &KnowledgeGraph) {
        for (key, onode) in &other.nodes {
            match self.nodes.get_mut(key) {
                None => {
                    self.nodes.insert(key.clone(), onode.clone());
                }
                Some(mine) => {
                    for (prop, (ots, oval)) in &onode.props {
                        match mine.props.get(prop) {
                            Some((mts, mval)) if (*mts, mval) >= (*ots, oval) => {}
                            _ => {
                                mine.props.insert(prop.clone(), (*ots, oval.clone()));
                            }
                        }
                    }
                }
            }
        }
        self.edges.extend(other.edges.iter().cloned());
        self.clock = self.clock.max(other.clock);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> KnowledgeGraph {
        let mut g = KnowledgeGraph::new();
        g.upsert_node("hyp/1", NodeKind::Hypothesis);
        g.upsert_node("exp/1", NodeKind::Experiment);
        g.upsert_node("res/1", NodeKind::Result);
        g.upsert_node("mat/1", NodeKind::Material);
        g.link("hyp/1", Relation::TestedBy, "exp/1");
        g.link("exp/1", Relation::Produced, "res/1");
        g.link("res/1", Relation::Supports, "hyp/1");
        g.link("mat/1", Relation::DerivedFrom, "res/1");
        g
    }

    #[test]
    fn nodes_edges_and_neighbors() {
        let g = sample();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4);
        let n = g.neighbors("hyp/1", None);
        assert_eq!(n.len(), 1);
        assert_eq!(n[0].key, "exp/1");
        assert_eq!(g.incoming("hyp/1", Some(Relation::Supports)).len(), 1);
        assert_eq!(g.nodes_of_kind(NodeKind::Material).len(), 1);
    }

    #[test]
    fn link_requires_both_endpoints() {
        let mut g = sample();
        assert!(!g.link("hyp/1", Relation::RelatedTo, "ghost"));
        assert_eq!(g.edge_count(), 4);
    }

    #[test]
    fn path_and_support() {
        let g = sample();
        assert!(g.path_exists("hyp/1", "res/1")); // via exp
        assert!(g.path_exists("hyp/1", "hyp/1"));
        assert!(!g.path_exists("res/1", "mat/1")); // direction matters
        assert_eq!(g.support_score("hyp/1"), 1);
    }

    #[test]
    fn support_score_counts_refutations() {
        let mut g = sample();
        g.upsert_node("res/2", NodeKind::Result);
        g.upsert_node("res/3", NodeKind::Result);
        g.link("res/2", Relation::Refutes, "hyp/1");
        g.link("res/3", Relation::Refutes, "hyp/1");
        assert_eq!(g.support_score("hyp/1"), -1);
    }

    #[test]
    fn properties_lww() {
        let mut g = KnowledgeGraph::new();
        g.upsert_node("mat/9", NodeKind::Material);
        g.set_prop("mat/9", "bandgap", "1.2");
        g.set_prop("mat/9", "bandgap", "1.4");
        assert_eq!(g.node("mat/9").unwrap().get("bandgap"), Some("1.4"));
    }

    #[test]
    fn merge_is_idempotent_and_commutative() {
        let mut a = sample();
        a.set_prop("mat/1", "phase", "cubic");
        let mut b = KnowledgeGraph::new();
        b.upsert_node("mat/1", NodeKind::Material);
        b.upsert_node("hyp/2", NodeKind::Hypothesis);
        b.set_prop("mat/1", "phase", "tetragonal");
        b.set_prop("hyp/2", "text", "doping raises stability");

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab.node_count(), ba.node_count());
        assert_eq!(ab.edge_count(), ba.edge_count());
        assert_eq!(
            ab.node("mat/1").unwrap().get("phase"),
            ba.node("mat/1").unwrap().get("phase")
        );

        // Idempotent: merging again changes nothing.
        let before = ab.clone();
        ab.merge(&b);
        assert_eq!(ab.node_count(), before.node_count());
        assert_eq!(ab.edge_count(), before.edge_count());
    }

    #[test]
    fn merge_unions_disjoint_replicas() {
        let mut site_a = KnowledgeGraph::new();
        site_a.upsert_node("exp/a", NodeKind::Experiment);
        let mut site_b = KnowledgeGraph::new();
        site_b.upsert_node("exp/b", NodeKind::Experiment);
        site_a.merge(&site_b);
        assert_eq!(site_a.node_count(), 2);
    }
}
