//! FAIR-principles compliance checking (§4.2).
//!
//! "Maintaining alignment with FAIR data principles becomes more difficult
//! when autonomous agents operate independently" — so the data layer gets a
//! mechanical checker: every artifact an agent publishes is scored against
//! Findable / Accessible / Interoperable / Reusable criteria, and campaigns
//! can gate publication on a minimum score.

use serde::{Deserialize, Serialize};

/// Metadata describing a published artifact.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ArtifactMeta {
    /// Globally unique persistent identifier (F1).
    pub identifier: Option<String>,
    /// Rich description (F2).
    pub description: Option<String>,
    /// Searchable keywords (F4).
    pub keywords: Vec<String>,
    /// Retrieval URI over a standard protocol (A1).
    pub uri: Option<String>,
    /// Whether access conditions are stated (A1.2: possibly restricted, but
    /// stated).
    pub access_policy: Option<String>,
    /// Machine-readable format name, e.g. "netcdf", "json" (I1).
    pub format: Option<String>,
    /// Controlled-vocabulary terms used (I2).
    pub vocabulary: Vec<String>,
    /// License (R1.1).
    pub license: Option<String>,
    /// Provenance chain reference (R1.2).
    pub provenance_ref: Option<String>,
}

/// Result of a FAIR assessment: which principles pass.
#[derive(Debug, Clone, Serialize)]
pub struct FairReport {
    /// F: identifier + description + keywords present.
    pub findable: bool,
    /// A: uri + access policy present.
    pub accessible: bool,
    /// I: machine-readable format + vocabulary present.
    pub interoperable: bool,
    /// R: license + provenance reference present.
    pub reusable: bool,
    /// Specific failures, for remediation.
    pub missing: Vec<&'static str>,
}

impl FairReport {
    /// Score in [0, 4]: number of principle groups satisfied.
    pub fn score(&self) -> u8 {
        [
            self.findable,
            self.accessible,
            self.interoperable,
            self.reusable,
        ]
        .iter()
        .filter(|b| **b)
        .count() as u8
    }

    /// Fully FAIR.
    pub fn is_fair(&self) -> bool {
        self.score() == 4
    }
}

/// Assess an artifact's metadata against the FAIR principles.
pub fn assess(meta: &ArtifactMeta) -> FairReport {
    let mut missing = Vec::new();

    let has = |opt: &Option<String>| opt.as_deref().map(|s| !s.is_empty()).unwrap_or(false);

    if !has(&meta.identifier) {
        missing.push("F1: persistent identifier");
    }
    if !has(&meta.description) {
        missing.push("F2: rich description");
    }
    if meta.keywords.is_empty() {
        missing.push("F4: searchable keywords");
    }
    let findable = has(&meta.identifier) && has(&meta.description) && !meta.keywords.is_empty();

    if !has(&meta.uri) {
        missing.push("A1: retrieval URI");
    }
    if !has(&meta.access_policy) {
        missing.push("A1.2: stated access policy");
    }
    let accessible = has(&meta.uri) && has(&meta.access_policy);

    if !has(&meta.format) {
        missing.push("I1: machine-readable format");
    }
    if meta.vocabulary.is_empty() {
        missing.push("I2: controlled vocabulary");
    }
    let interoperable = has(&meta.format) && !meta.vocabulary.is_empty();

    if !has(&meta.license) {
        missing.push("R1.1: license");
    }
    if !has(&meta.provenance_ref) {
        missing.push("R1.2: provenance");
    }
    let reusable = has(&meta.license) && has(&meta.provenance_ref);

    FairReport {
        findable,
        accessible,
        interoperable,
        reusable,
        missing,
    }
}

/// Build fully-FAIR metadata for an autonomously-produced artifact —
/// the template agents use when publishing results.
pub fn agent_published(
    id: impl Into<String>,
    description: impl Into<String>,
    provenance_ref: impl Into<String>,
) -> ArtifactMeta {
    ArtifactMeta {
        identifier: Some(id.into()),
        description: Some(description.into()),
        keywords: vec!["autonomous".into(), "evoflow".into()],
        uri: Some("fabric://results/".into()),
        access_policy: Some("open".into()),
        format: Some("json".into()),
        vocabulary: vec!["evoflow-schema-v1".into()],
        license: Some("CC-BY-4.0".into()),
        provenance_ref: Some(provenance_ref.into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_metadata_fails_everything() {
        let r = assess(&ArtifactMeta::default());
        assert_eq!(r.score(), 0);
        assert!(!r.is_fair());
        assert_eq!(r.missing.len(), 9);
    }

    #[test]
    fn agent_template_is_fully_fair() {
        let meta = agent_published("doi:10.1/x", "bandgap sweep results", "prov/77");
        let r = assess(&meta);
        assert!(r.is_fair(), "missing: {:?}", r.missing);
        assert!(r.missing.is_empty());
    }

    #[test]
    fn partial_metadata_scores_partially() {
        let meta = ArtifactMeta {
            identifier: Some("id".into()),
            description: Some("desc".into()),
            keywords: vec!["k".into()],
            license: Some("MIT".into()),
            provenance_ref: Some("prov/1".into()),
            ..ArtifactMeta::default()
        };
        let r = assess(&meta);
        assert!(r.findable);
        assert!(!r.accessible);
        assert!(!r.interoperable);
        assert!(r.reusable);
        assert_eq!(r.score(), 2);
    }

    #[test]
    fn empty_strings_do_not_count() {
        let meta = ArtifactMeta {
            identifier: Some("".into()),
            ..ArtifactMeta::default()
        };
        let r = assess(&meta);
        assert!(!r.findable);
        assert!(r.missing.contains(&"F1: persistent identifier"));
    }
}
