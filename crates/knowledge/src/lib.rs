//! # evoflow-knowledge — the Resource & Data Management layer's brains
//!
//! The paper's Figure 2 places four knowledge-bearing components in the
//! Resource & Data Management layer; this crate implements them:
//!
//! * [`graph`] — the scientific knowledge graph linking hypotheses,
//!   experiments, materials, and results; replicas merge with eventual
//!   consistency (§5.2).
//! * [`sync`] — the federation protocol over the graph: per-site op logs,
//!   version-vector anti-entropy deltas, partition healing, and
//!   convergence audits (§5.2's "synchronized across sites with eventual
//!   consistency" made executable).
//! * [`provenance`] — W3C-PROV-style lineage extended with AI
//!   reasoning-chain capture, accountability audits, and human-vs-AI
//!   attribution (§4.2).
//! * [`registry`] — the versioned model/protocol registry with a
//!   staging→production→archived lifecycle (§5.2).
//! * [`fair`] — mechanical FAIR-principles assessment gating what
//!   autonomous agents may publish (§4.2).

pub mod fair;
pub mod graph;
pub mod provenance;
pub mod registry;
pub mod sync;

pub use fair::{agent_published, assess, ArtifactMeta, FairReport};
pub use graph::{Edge, KnowledgeGraph, Node, NodeKind, Relation};
pub use provenance::{
    Activity, ActivityKind, AuditReport, Entity, Lineage, ProvAgent, ProvId, ProvenanceStore,
    ReasoningTrace,
};
pub use registry::{ArtifactKind, ArtifactVersion, ModelRegistry, RegistryError, Stage};
pub use sync::{
    converged, gossip_to_convergence, sync_pair, GraphOp, Replica, StampedOp, VersionVector,
};
