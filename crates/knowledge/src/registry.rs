//! The model registry (Resource & Data Management layer, Fig 2).
//!
//! "Model registries version both AI/ML models and various AI input
//! artifacts such as experimental protocols" (§5.2). Artifacts carry
//! monotonically increasing versions per name and move through a
//! staging lifecycle; `latest`/`production` lookups are what facility
//! agents use to pick which model/protocol to run.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// What kind of artifact a registry entry stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ArtifactKind {
    /// A trained AI/ML model.
    Model,
    /// An experimental protocol (robot program, beamline recipe).
    Protocol,
    /// A prompt/policy bundle for an agent.
    AgentPolicy,
}

/// Lifecycle stage of a version.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Stage {
    /// Registered but unvalidated.
    Staging,
    /// Validated and serving.
    Production,
    /// Retired.
    Archived,
}

/// One immutable artifact version.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ArtifactVersion {
    /// Artifact name.
    pub name: String,
    /// Version number (1-based, monotone per name).
    pub version: u32,
    /// Artifact kind.
    pub kind: ArtifactKind,
    /// Lifecycle stage.
    pub stage: Stage,
    /// Content digest (stands in for the stored blob).
    pub digest: u64,
    /// Free-form metadata.
    pub metadata: BTreeMap<String, String>,
}

/// Errors from registry operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// No artifact with this name.
    UnknownArtifact(String),
    /// No such version for this artifact.
    UnknownVersion(String, u32),
    /// Illegal stage transition.
    IllegalTransition(Stage, Stage),
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::UnknownArtifact(n) => write!(f, "unknown artifact {n:?}"),
            RegistryError::UnknownVersion(n, v) => write!(f, "unknown version {n:?} v{v}"),
            RegistryError::IllegalTransition(a, b) => {
                write!(f, "illegal stage transition {a:?} -> {b:?}")
            }
        }
    }
}

impl std::error::Error for RegistryError {}

/// A versioned artifact registry.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ModelRegistry {
    versions: BTreeMap<String, Vec<ArtifactVersion>>,
}

impl ModelRegistry {
    /// Create an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a new version of `name`; returns the version number.
    pub fn register(&mut self, name: impl Into<String>, kind: ArtifactKind, digest: u64) -> u32 {
        let name = name.into();
        let versions = self.versions.entry(name.clone()).or_default();
        let version = versions.len() as u32 + 1;
        versions.push(ArtifactVersion {
            name,
            version,
            kind,
            stage: Stage::Staging,
            digest,
            metadata: BTreeMap::new(),
        });
        version
    }

    /// Attach metadata to a version.
    pub fn annotate(
        &mut self,
        name: &str,
        version: u32,
        key: impl Into<String>,
        value: impl Into<String>,
    ) -> Result<(), RegistryError> {
        let v = self.get_mut(name, version)?;
        v.metadata.insert(key.into(), value.into());
        Ok(())
    }

    /// Move a version through the lifecycle. Legal transitions:
    /// Staging→Production, Staging→Archived, Production→Archived.
    /// Promoting to Production archives any previously-serving version.
    pub fn transition(&mut self, name: &str, version: u32, to: Stage) -> Result<(), RegistryError> {
        let from = self.get(name, version)?.stage;
        let legal = matches!(
            (from, to),
            (Stage::Staging, Stage::Production)
                | (Stage::Staging, Stage::Archived)
                | (Stage::Production, Stage::Archived)
        );
        if !legal {
            return Err(RegistryError::IllegalTransition(from, to));
        }
        if to == Stage::Production {
            if let Some(vs) = self.versions.get_mut(name) {
                for v in vs.iter_mut() {
                    if v.stage == Stage::Production {
                        v.stage = Stage::Archived;
                    }
                }
            }
        }
        self.get_mut(name, version)?.stage = to;
        Ok(())
    }

    /// Latest version of an artifact regardless of stage.
    pub fn latest(&self, name: &str) -> Option<&ArtifactVersion> {
        self.versions.get(name).and_then(|vs| vs.last())
    }

    /// The version currently in Production, if any.
    pub fn production(&self, name: &str) -> Option<&ArtifactVersion> {
        self.versions
            .get(name)
            .and_then(|vs| vs.iter().rev().find(|v| v.stage == Stage::Production))
    }

    /// A specific version.
    pub fn get(&self, name: &str, version: u32) -> Result<&ArtifactVersion, RegistryError> {
        self.versions
            .get(name)
            .ok_or_else(|| RegistryError::UnknownArtifact(name.to_string()))?
            .get(version.checked_sub(1).unwrap_or(u32::MAX) as usize)
            .ok_or_else(|| RegistryError::UnknownVersion(name.to_string(), version))
    }

    fn get_mut(&mut self, name: &str, version: u32) -> Result<&mut ArtifactVersion, RegistryError> {
        self.versions
            .get_mut(name)
            .ok_or_else(|| RegistryError::UnknownArtifact(name.to_string()))?
            .get_mut(version.checked_sub(1).unwrap_or(u32::MAX) as usize)
            .ok_or_else(|| RegistryError::UnknownVersion(name.to_string(), version))
    }

    /// All artifact names.
    pub fn names(&self) -> Vec<&str> {
        self.versions.keys().map(String::as_str).collect()
    }

    /// Total number of registered versions across all artifacts.
    pub fn total_versions(&self) -> usize {
        self.versions.values().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn versions_are_monotone_per_name() {
        let mut r = ModelRegistry::new();
        assert_eq!(r.register("surrogate", ArtifactKind::Model, 0xa), 1);
        assert_eq!(r.register("surrogate", ArtifactKind::Model, 0xb), 2);
        assert_eq!(
            r.register("anneal-protocol", ArtifactKind::Protocol, 0xc),
            1
        );
        assert_eq!(r.latest("surrogate").unwrap().version, 2);
        assert_eq!(r.total_versions(), 3);
    }

    #[test]
    fn promotion_archives_previous_production() {
        let mut r = ModelRegistry::new();
        r.register("m", ArtifactKind::Model, 1);
        r.register("m", ArtifactKind::Model, 2);
        r.transition("m", 1, Stage::Production).unwrap();
        assert_eq!(r.production("m").unwrap().version, 1);
        r.transition("m", 2, Stage::Production).unwrap();
        assert_eq!(r.production("m").unwrap().version, 2);
        assert_eq!(r.get("m", 1).unwrap().stage, Stage::Archived);
    }

    #[test]
    fn illegal_transitions_rejected() {
        let mut r = ModelRegistry::new();
        r.register("m", ArtifactKind::Model, 1);
        r.transition("m", 1, Stage::Archived).unwrap();
        let err = r.transition("m", 1, Stage::Production).unwrap_err();
        assert_eq!(
            err,
            RegistryError::IllegalTransition(Stage::Archived, Stage::Production)
        );
    }

    #[test]
    fn unknown_lookups_error() {
        let r = ModelRegistry::new();
        assert!(r.latest("ghost").is_none());
        assert_eq!(
            r.get("ghost", 1).unwrap_err(),
            RegistryError::UnknownArtifact("ghost".into())
        );
        let mut r = ModelRegistry::new();
        r.register("m", ArtifactKind::Model, 1);
        assert_eq!(
            r.get("m", 5).unwrap_err(),
            RegistryError::UnknownVersion("m".into(), 5)
        );
    }

    #[test]
    fn metadata_annotation() {
        let mut r = ModelRegistry::new();
        r.register("m", ArtifactKind::AgentPolicy, 7);
        r.annotate("m", 1, "trained-on", "campaign-9").unwrap();
        assert_eq!(
            r.get("m", 1).unwrap().metadata.get("trained-on").unwrap(),
            "campaign-9"
        );
    }
}
