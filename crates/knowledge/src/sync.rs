//! Federated knowledge-graph replication with anti-entropy delta sync.
//!
//! §5.2: "Knowledge graphs represent relationships between hypotheses,
//! experiments, and results, **synchronized across sites with eventual
//! consistency**." [`crate::graph::KnowledgeGraph::merge`] gives
//! full-state LWW merge; a federation cannot afford to ship whole graphs
//! over 100 Gbps WAN links every round, so this module adds the *delta*
//! protocol: each site keeps an operation log and a version vector, and
//! peers exchange only the ops the other has not seen. Ops are applied in
//! a deterministic order with LWW property resolution, so any exchange
//! schedule that eventually connects all sites converges to the same graph
//! — partitions included.

use crate::graph::{KnowledgeGraph, NodeKind, Relation};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One replicated mutation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum GraphOp {
    /// Create (or re-assert) a node.
    UpsertNode {
        /// Node key.
        key: String,
        /// Entity kind.
        kind: NodeKind,
    },
    /// Set a node property (LWW by `(lamport, site)`).
    SetProp {
        /// Node key.
        key: String,
        /// Property name.
        prop: String,
        /// Property value.
        value: String,
    },
    /// Add a typed edge.
    Link {
        /// Source key.
        from: String,
        /// Relation.
        rel: Relation,
        /// Target key.
        to: String,
    },
}

/// An op stamped with its origin: `(site, seq)` identifies it globally,
/// `lamport` orders it causally across sites.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StampedOp {
    /// Originating site.
    pub site: String,
    /// Per-site sequence number (1-based, gap-free).
    pub seq: u64,
    /// Lamport timestamp at the origin.
    pub lamport: u64,
    /// The mutation.
    pub op: GraphOp,
}

/// Version vector: per-site count of ops known.
pub type VersionVector = BTreeMap<String, u64>;

mod stamp_entries {
    use serde::{Deserialize, Deserializer, Serialize, Serializer};
    use std::collections::BTreeMap;

    type Key = (String, String);
    type Stamp = (u64, String);
    type Map = BTreeMap<Key, Stamp>;

    pub fn serialize<S: Serializer>(map: &Map, ser: S) -> Result<S::Ok, S::Error> {
        let entries: Vec<(&Key, &Stamp)> = map.iter().collect();
        entries.serialize(ser)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(de: D) -> Result<Map, D::Error> {
        let entries: Vec<((String, String), (u64, String))> = Vec::deserialize(de)?;
        Ok(entries.into_iter().collect())
    }
}

/// One site's replica of the federated knowledge graph.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Replica {
    site: String,
    graph: KnowledgeGraph,
    /// Every op this replica knows, keyed for gap-free delta extraction.
    log: Vec<StampedOp>,
    vv: VersionVector,
    lamport: u64,
    /// LWW metadata: property → (lamport, site) of the winning write.
    /// Serialized as an entry list because JSON map keys must be strings.
    #[serde(with = "stamp_entries")]
    prop_stamps: BTreeMap<(String, String), (u64, String)>,
    /// Links whose endpoints have not both arrived yet (cross-site
    /// causality: an edge can travel faster than its endpoints).
    pending_links: Vec<StampedOp>,
}

impl Replica {
    /// Empty replica for `site`.
    pub fn new(site: impl Into<String>) -> Self {
        Replica {
            site: site.into(),
            graph: KnowledgeGraph::new(),
            log: Vec::new(),
            vv: VersionVector::new(),
            lamport: 0,
            prop_stamps: BTreeMap::new(),
            pending_links: Vec::new(),
        }
    }

    /// Site name.
    pub fn site(&self) -> &str {
        &self.site
    }

    /// Read access to the local graph view.
    pub fn graph(&self) -> &KnowledgeGraph {
        &self.graph
    }

    /// This replica's version vector (its sync digest).
    pub fn version_vector(&self) -> &VersionVector {
        &self.vv
    }

    /// Number of link ops still waiting for endpoints.
    pub fn pending_link_count(&self) -> usize {
        self.pending_links.len()
    }

    fn next_stamp(&mut self) -> (u64, u64) {
        self.lamport += 1;
        let seq = self.vv.get(&self.site).copied().unwrap_or(0) + 1;
        (seq, self.lamport)
    }

    fn record_local(&mut self, op: GraphOp) -> &StampedOp {
        let (seq, lamport) = self.next_stamp();
        let stamped = StampedOp {
            site: self.site.clone(),
            seq,
            lamport,
            op,
        };
        self.apply(&stamped);
        self.vv.insert(self.site.clone(), seq);
        self.log.push(stamped);
        self.log.last().expect("just pushed")
    }

    /// Create a node locally.
    pub fn upsert_node(&mut self, key: impl Into<String>, kind: NodeKind) {
        self.record_local(GraphOp::UpsertNode {
            key: key.into(),
            kind,
        });
    }

    /// Set a property locally.
    pub fn set_prop(
        &mut self,
        key: impl Into<String>,
        prop: impl Into<String>,
        value: impl Into<String>,
    ) {
        self.record_local(GraphOp::SetProp {
            key: key.into(),
            prop: prop.into(),
            value: value.into(),
        });
    }

    /// Add an edge locally.
    pub fn link(&mut self, from: impl Into<String>, rel: Relation, to: impl Into<String>) {
        self.record_local(GraphOp::Link {
            from: from.into(),
            rel,
            to: to.into(),
        });
    }

    /// Apply one op to the local graph (not the log). LWW for properties;
    /// links without endpoints park in the pending buffer.
    fn apply(&mut self, stamped: &StampedOp) {
        match &stamped.op {
            GraphOp::UpsertNode { key, kind } => {
                self.graph.upsert_node(key.clone(), *kind);
                self.drain_pending();
            }
            GraphOp::SetProp { key, prop, value } => {
                let stamp_key = (key.clone(), prop.clone());
                let incoming = (stamped.lamport, stamped.site.clone());
                let wins = match self.prop_stamps.get(&stamp_key) {
                    Some(current) => incoming > *current,
                    None => true,
                };
                if wins {
                    // Write through the node directly: the replica layer
                    // owns ordering, not the graph's local clock.
                    if self.graph.node(key).is_some() {
                        let node = self.graph.upsert_node(key.clone(), NodeKind::Result);
                        node.props
                            .insert(prop.clone(), (stamped.lamport, value.clone()));
                        self.prop_stamps.insert(stamp_key, incoming);
                    }
                }
            }
            GraphOp::Link { from, rel, to } => {
                if !self.graph.link(from, *rel, to) {
                    self.pending_links.push(stamped.clone());
                }
            }
        }
    }

    /// Retry parked links after new nodes arrive.
    fn drain_pending(&mut self) {
        let mut still_pending = Vec::new();
        for stamped in std::mem::take(&mut self.pending_links) {
            if let GraphOp::Link { from, rel, to } = &stamped.op {
                if !self.graph.link(from, *rel, to) {
                    still_pending.push(stamped);
                }
            }
        }
        self.pending_links = still_pending;
    }

    /// The ops `peer_vv` has not seen, in `(site, seq)` order — the
    /// anti-entropy delta.
    pub fn delta_since(&self, peer_vv: &VersionVector) -> Vec<StampedOp> {
        let mut delta: Vec<StampedOp> = self
            .log
            .iter()
            .filter(|op| op.seq > peer_vv.get(&op.site).copied().unwrap_or(0))
            .cloned()
            .collect();
        delta.sort_by(|a, b| a.site.cmp(&b.site).then(a.seq.cmp(&b.seq)));
        delta
    }

    /// Ingest a delta from a peer. Already-known ops are skipped
    /// (idempotence); the Lamport clock advances past everything seen.
    /// Returns how many ops were new.
    pub fn apply_delta(&mut self, delta: &[StampedOp]) -> usize {
        // Apply in deterministic global order so every replica resolves
        // races identically.
        let mut fresh: Vec<&StampedOp> = delta
            .iter()
            .filter(|op| op.seq > self.vv.get(&op.site).copied().unwrap_or(0))
            .collect();
        fresh.sort_by(|a, b| (a.lamport, &a.site, a.seq).cmp(&(b.lamport, &b.site, b.seq)));
        let count = fresh.len();
        for op in fresh {
            self.apply(op);
            self.lamport = self.lamport.max(op.lamport);
            let e = self.vv.entry(op.site.clone()).or_insert(0);
            debug_assert_eq!(op.seq, *e + 1, "per-site op logs must be gap-free");
            *e = op.seq;
            self.log.push(op.clone());
        }
        count
    }

    /// Stable checksum of the graph state (for convergence audits).
    pub fn checksum(&self) -> u64 {
        // BTreeMap/BTreeSet serialization is canonical, so the JSON text
        // is a deterministic function of graph content.
        let json = serde_json::to_string(&self.graph).expect("graph serializes");
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in json.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

/// One bidirectional anti-entropy exchange. Returns `(a_to_b, b_to_a)` op
/// counts — the bandwidth the protocol actually used.
pub fn sync_pair(a: &mut Replica, b: &mut Replica) -> (usize, usize) {
    let to_b = a.delta_since(b.version_vector());
    let to_a = b.delta_since(a.version_vector());
    let nb = b.apply_delta(&to_b);
    let na = a.apply_delta(&to_a);
    (nb, na)
}

/// Whether two replicas hold identical graph state.
pub fn converged(a: &Replica, b: &Replica) -> bool {
    a.version_vector() == b.version_vector() && a.checksum() == b.checksum()
}

/// Gossip all replicas to convergence over a ring topology; returns the
/// number of rounds used. Each round syncs every adjacent pair once —
/// O(k·n) messages per round, the swarm-scaling shape of Table 2.
pub fn gossip_to_convergence(replicas: &mut [Replica], max_rounds: usize) -> Option<usize> {
    if replicas.len() <= 1 {
        return Some(0);
    }
    for round in 1..=max_rounds {
        let n = replicas.len();
        for i in 0..n {
            let j = (i + 1) % n;
            // Split-borrow the pair out of the slice.
            let (left, right) = if i < j {
                let (lo, hi) = replicas.split_at_mut(j);
                (&mut lo[i], &mut hi[0])
            } else {
                let (lo, hi) = replicas.split_at_mut(i);
                (&mut hi[0], &mut lo[j])
            };
            sync_pair(left, right);
        }
        let all_equal = replicas.windows(2).all(|w| converged(&w[0], &w[1]));
        if all_equal {
            return Some(round);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_sites() -> (Replica, Replica) {
        (Replica::new("hpc"), Replica::new("beamline"))
    }

    #[test]
    fn delta_sync_transfers_only_missing_ops() {
        let (mut a, mut b) = two_sites();
        a.upsert_node("hyp/1", NodeKind::Hypothesis);
        a.set_prop("hyp/1", "status", "proposed");
        let (to_b, to_a) = sync_pair(&mut a, &mut b);
        assert_eq!((to_b, to_a), (2, 0));
        assert!(converged(&a, &b));
        // A second sync ships nothing.
        let (to_b, to_a) = sync_pair(&mut a, &mut b);
        assert_eq!((to_b, to_a), (0, 0));
    }

    #[test]
    fn concurrent_writes_resolve_identically_on_both_sides() {
        let (mut a, mut b) = two_sites();
        a.upsert_node("mat/1", NodeKind::Material);
        sync_pair(&mut a, &mut b);
        // Concurrent conflicting property writes during a partition.
        a.set_prop("mat/1", "phase", "cubic");
        b.set_prop("mat/1", "phase", "tetragonal");
        sync_pair(&mut a, &mut b);
        assert!(converged(&a, &b));
        let pa = a.graph().node("mat/1").unwrap().get("phase").unwrap();
        let pb = b.graph().node("mat/1").unwrap().get("phase").unwrap();
        assert_eq!(pa, pb, "LWW must pick one winner everywhere");
    }

    #[test]
    fn edge_arriving_before_endpoint_parks_then_applies() {
        let (mut a, b) = two_sites();
        // a creates both nodes and the edge.
        a.upsert_node("exp/1", NodeKind::Experiment);
        a.upsert_node("res/1", NodeKind::Result);
        a.link("exp/1", Relation::Produced, "res/1");
        // Hand b only the link op first (simulated out-of-order channel).
        let delta = a.delta_since(b.version_vector());
        let link_only: Vec<_> = delta
            .iter()
            .filter(|op| matches!(op.op, GraphOp::Link { .. }))
            .cloned()
            .collect();
        // apply_delta refuses gapped seq in debug; emulate a lossy channel
        // by applying through the public apply path on a fresh replica
        // with full delta but checking the pending buffer mid-way through
        // apply order instead: lamport-sorted order already delivers nodes
        // first here, so force the scenario through a third site.
        let mut c = Replica::new("cloud");
        // c learns the edge op via... the only gap-free path is full
        // delta; the pending buffer is still exercised: craft a replica
        // whose local order is edge-before-node.
        c.link("exp/1", Relation::Produced, "res/1");
        assert_eq!(c.pending_link_count(), 1);
        c.upsert_node("exp/1", NodeKind::Experiment);
        assert_eq!(c.pending_link_count(), 1, "one endpoint still missing");
        c.upsert_node("res/1", NodeKind::Result);
        assert_eq!(c.pending_link_count(), 0);
        assert_eq!(c.graph().edge_count(), 1);
        let _ = link_only;
    }

    #[test]
    fn three_site_partition_heals_to_convergence() {
        let mut sites = vec![
            Replica::new("hpc"),
            Replica::new("beamline"),
            Replica::new("ai-hub"),
        ];
        // Partition: {hpc, beamline} talk; ai-hub is isolated and writes.
        sites[0].upsert_node("hyp/1", NodeKind::Hypothesis);
        sites[1].upsert_node("exp/1", NodeKind::Experiment);
        {
            let (lo, hi) = sites.split_at_mut(1);
            sync_pair(&mut lo[0], &mut hi[0]);
        }
        sites[2].upsert_node("mat/9", NodeKind::Material);
        sites[2].set_prop("mat/9", "source", "isolated-writes");
        // Heal.
        let rounds = gossip_to_convergence(&mut sites, 10).expect("must converge");
        assert!(rounds <= 3, "ring of 3 should converge fast, took {rounds}");
        for w in sites.windows(2) {
            assert!(converged(&w[0], &w[1]));
        }
        assert_eq!(sites[0].graph().node_count(), 3);
        assert_eq!(
            sites[1].graph().node("mat/9").unwrap().get("source"),
            Some("isolated-writes")
        );
    }

    #[test]
    fn apply_delta_is_idempotent() {
        let (mut a, mut b) = two_sites();
        a.upsert_node("n/1", NodeKind::Dataset);
        let delta = a.delta_since(b.version_vector());
        assert_eq!(b.apply_delta(&delta), 1);
        assert_eq!(b.apply_delta(&delta), 0, "replay must be a no-op");
        assert!(converged(&a, &b));
    }

    #[test]
    fn checksum_distinguishes_different_graphs() {
        let (mut a, mut b) = two_sites();
        a.upsert_node("n/1", NodeKind::Dataset);
        b.upsert_node("n/2", NodeKind::Dataset);
        assert_ne!(a.checksum(), b.checksum());
    }

    #[test]
    fn single_replica_converges_trivially() {
        let mut sites = vec![Replica::new("solo")];
        assert_eq!(gossip_to_convergence(&mut sites, 5), Some(0));
    }

    #[test]
    fn replica_serde_roundtrip_preserves_state() {
        let (mut a, _) = two_sites();
        a.upsert_node("hyp/1", NodeKind::Hypothesis);
        a.set_prop("hyp/1", "status", "testing");
        let json = serde_json::to_string(&a).unwrap();
        let back: Replica = serde_json::from_str(&json).unwrap();
        assert_eq!(back.checksum(), a.checksum());
        assert_eq!(back.version_vector(), a.version_vector());
    }
}
