//! W3C-PROV-style provenance with AI reasoning-chain capture.
//!
//! §4.2: "Provenance models need to evolve to support traceability of agent
//! actions within the workflow context, enabling accountability,
//! transparency, explainability, and auditability." This module records the
//! classic PROV triple — entities, activities, agents — plus the extension
//! the paper calls for: activities of kind [`ActivityKind::Reasoning`]
//! capture which model, prompt digest, and token counts produced a decision,
//! so AI reasoning chains are first-class lineage.

use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Identifier of a provenance record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ProvId(pub u64);

/// What kind of activity a record describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ActivityKind {
    /// A computational task (simulation, analysis job).
    Computation,
    /// A physical experiment step (synthesis, characterization).
    PhysicalExperiment,
    /// A data movement.
    Transfer,
    /// An AI reasoning step (hypothesis generation, planning, judgment).
    Reasoning,
    /// A human decision or intervention.
    HumanDecision,
}

/// An agent in the PROV sense: who/what bears responsibility.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProvAgent {
    /// Unique agent name (e.g. `"hypothesis-agent@ai-hub"`).
    pub name: String,
    /// Whether the agent is an AI (vs human or plain software).
    pub is_ai: bool,
}

/// An entity: any data artifact, sample, or model version.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Entity {
    /// Record id.
    pub id: ProvId,
    /// Entity URI/name.
    pub name: String,
    /// Activity that generated it, if recorded.
    pub generated_by: Option<ProvId>,
}

/// An activity: something that happened over a time interval.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Activity {
    /// Record id.
    pub id: ProvId,
    /// Activity name.
    pub name: String,
    /// Kind of activity.
    pub kind: ActivityKind,
    /// Responsible agent (index into the agent table).
    pub agent: String,
    /// Entities this activity used.
    pub used: Vec<ProvId>,
    /// For [`ActivityKind::Reasoning`]: model name, prompt digest, tokens.
    pub reasoning: Option<ReasoningTrace>,
}

/// The AI-specific lineage extension (§4.2, PROV-AGENT-style).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReasoningTrace {
    /// Model that produced the decision.
    pub model: String,
    /// Stable digest of the prompt (not the raw prompt: jurisdictions
    /// differ on what may be stored, §4.2 interoperability).
    pub prompt_digest: u64,
    /// Input tokens consumed.
    pub input_tokens: u64,
    /// Output tokens produced.
    pub output_tokens: u64,
    /// Whether the output was flagged as a potential hallucination.
    pub flagged: bool,
}

/// An append-only provenance store for one site.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ProvenanceStore {
    agents: BTreeMap<String, ProvAgent>,
    entities: BTreeMap<ProvId, Entity>,
    activities: BTreeMap<ProvId, Activity>,
    next_id: u64,
}

impl ProvenanceStore {
    /// Create an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    fn fresh(&mut self) -> ProvId {
        let id = ProvId(self.next_id);
        self.next_id += 1;
        id
    }

    /// Register an agent (idempotent by name).
    pub fn register_agent(&mut self, name: impl Into<String>, is_ai: bool) {
        let name = name.into();
        self.agents
            .entry(name.clone())
            .or_insert(ProvAgent { name, is_ai });
    }

    /// Record an activity by `agent` that used `used` entities.
    pub fn record_activity(
        &mut self,
        name: impl Into<String>,
        kind: ActivityKind,
        agent: &str,
        used: Vec<ProvId>,
    ) -> ProvId {
        debug_assert!(
            self.agents.contains_key(agent),
            "agent {agent:?} not registered"
        );
        let id = self.fresh();
        self.activities.insert(
            id,
            Activity {
                id,
                name: name.into(),
                kind,
                agent: agent.to_string(),
                used,
                reasoning: None,
            },
        );
        id
    }

    /// Record an AI reasoning activity with its trace.
    pub fn record_reasoning(
        &mut self,
        name: impl Into<String>,
        agent: &str,
        used: Vec<ProvId>,
        trace: ReasoningTrace,
    ) -> ProvId {
        let id = self.record_activity(name, ActivityKind::Reasoning, agent, used);
        if let Some(a) = self.activities.get_mut(&id) {
            a.reasoning = Some(trace);
        }
        id
    }

    /// Record an entity generated by `activity`.
    pub fn record_entity(
        &mut self,
        name: impl Into<String>,
        generated_by: Option<ProvId>,
    ) -> ProvId {
        let id = self.fresh();
        self.entities.insert(
            id,
            Entity {
                id,
                name: name.into(),
                generated_by,
            },
        );
        id
    }

    /// Look up an entity.
    pub fn entity(&self, id: ProvId) -> Option<&Entity> {
        self.entities.get(&id)
    }

    /// Look up an activity.
    pub fn activity(&self, id: ProvId) -> Option<&Activity> {
        self.activities.get(&id)
    }

    /// Number of recorded activities.
    pub fn activity_count(&self) -> usize {
        self.activities.len()
    }

    /// Number of recorded entities.
    pub fn entity_count(&self) -> usize {
        self.entities.len()
    }

    /// Full lineage of an entity: every upstream entity and activity
    /// reachable through `generated_by`/`used` links (breadth-first).
    pub fn lineage(&self, entity: ProvId) -> Lineage {
        let mut entities = BTreeSet::new();
        let mut activities = BTreeSet::new();
        let mut reasoning_steps = 0usize;
        let mut human_steps = 0usize;
        let mut q = VecDeque::new();
        q.push_back(entity);
        entities.insert(entity);
        while let Some(e) = q.pop_front() {
            let Some(ent) = self.entities.get(&e) else {
                continue;
            };
            let Some(act_id) = ent.generated_by else {
                continue;
            };
            if activities.insert(act_id) {
                if let Some(act) = self.activities.get(&act_id) {
                    match act.kind {
                        ActivityKind::Reasoning => reasoning_steps += 1,
                        ActivityKind::HumanDecision => human_steps += 1,
                        _ => {}
                    }
                    for &u in &act.used {
                        if entities.insert(u) {
                            q.push_back(u);
                        }
                    }
                }
            }
        }
        Lineage {
            entities,
            activities,
            reasoning_steps,
            human_steps,
        }
    }

    /// Audit report: per-agent activity counts, flagged reasoning steps.
    pub fn audit(&self) -> AuditReport {
        let mut per_agent: BTreeMap<String, usize> = BTreeMap::new();
        let mut flagged = Vec::new();
        let mut ai_activities = 0usize;
        for a in self.activities.values() {
            *per_agent.entry(a.agent.clone()).or_insert(0) += 1;
            if self.agents.get(&a.agent).map(|g| g.is_ai).unwrap_or(false) {
                ai_activities += 1;
            }
            if let Some(r) = &a.reasoning {
                if r.flagged {
                    flagged.push(a.id);
                }
            }
        }
        AuditReport {
            per_agent,
            flagged_reasoning: flagged,
            ai_activities,
            total_activities: self.activities.len(),
        }
    }
}

/// Result of a lineage query.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Lineage {
    /// All upstream entities (including the root).
    pub entities: BTreeSet<ProvId>,
    /// All upstream activities.
    pub activities: BTreeSet<ProvId>,
    /// How many were AI reasoning steps.
    pub reasoning_steps: usize,
    /// How many were human decisions.
    pub human_steps: usize,
}

/// Accountability summary (§4.2 auditability).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AuditReport {
    /// Activities per responsible agent.
    pub per_agent: BTreeMap<String, usize>,
    /// Reasoning activities flagged as potential hallucinations.
    pub flagged_reasoning: Vec<ProvId>,
    /// Activities attributed to AI agents.
    pub ai_activities: usize,
    /// All activities.
    pub total_activities: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build the campaign-shaped chain:
    /// reasoning -> hypothesis -> experiment -> result.
    fn chain() -> (ProvenanceStore, ProvId) {
        let mut p = ProvenanceStore::new();
        p.register_agent("hypothesis-agent", true);
        p.register_agent("beamline-operator", false);

        let think = p.record_reasoning(
            "generate hypothesis",
            "hypothesis-agent",
            vec![],
            ReasoningTrace {
                model: "sim-lrm-deep".into(),
                prompt_digest: 0xfeed,
                input_tokens: 800,
                output_tokens: 150,
                flagged: false,
            },
        );
        let hyp = p.record_entity("hypothesis/42", Some(think));
        let exp = p.record_activity(
            "characterize sample",
            ActivityKind::PhysicalExperiment,
            "beamline-operator",
            vec![hyp],
        );
        let result = p.record_entity("result/42", Some(exp));
        (p, result)
    }

    #[test]
    fn lineage_walks_full_chain() {
        let (p, result) = chain();
        let lin = p.lineage(result);
        assert_eq!(lin.entities.len(), 2); // result + hypothesis
        assert_eq!(lin.activities.len(), 2); // experiment + reasoning
        assert_eq!(lin.reasoning_steps, 1);
        assert_eq!(lin.human_steps, 0);
    }

    #[test]
    fn reasoning_trace_is_preserved() {
        let (p, result) = chain();
        let lin = p.lineage(result);
        let reasoning = lin
            .activities
            .iter()
            .filter_map(|id| p.activity(*id))
            .find(|a| a.kind == ActivityKind::Reasoning)
            .unwrap();
        let trace = reasoning.reasoning.as_ref().unwrap();
        assert_eq!(trace.model, "sim-lrm-deep");
        assert_eq!(trace.input_tokens, 800);
    }

    #[test]
    fn audit_attributes_by_agent() {
        let (mut p, _) = chain();
        let flagged = p.record_reasoning(
            "hallucinated plan",
            "hypothesis-agent",
            vec![],
            ReasoningTrace {
                model: "sim-llm-fast".into(),
                prompt_digest: 1,
                input_tokens: 10,
                output_tokens: 10,
                flagged: true,
            },
        );
        let report = p.audit();
        assert_eq!(report.total_activities, 3);
        assert_eq!(report.ai_activities, 2);
        assert_eq!(report.per_agent["hypothesis-agent"], 2);
        assert_eq!(report.per_agent["beamline-operator"], 1);
        assert_eq!(report.flagged_reasoning, vec![flagged]);
    }

    #[test]
    fn lineage_of_root_entity_is_trivial() {
        let mut p = ProvenanceStore::new();
        let e = p.record_entity("raw-data", None);
        let lin = p.lineage(e);
        assert_eq!(lin.entities.len(), 1);
        assert!(lin.activities.is_empty());
    }

    #[test]
    fn ids_are_unique_and_monotone() {
        let mut p = ProvenanceStore::new();
        p.register_agent("a", false);
        let e1 = p.record_entity("x", None);
        let a1 = p.record_activity("act", ActivityKind::Computation, "a", vec![e1]);
        let e2 = p.record_entity("y", Some(a1));
        assert!(e1 < a1 && a1 < e2);
        assert_eq!(p.entity_count(), 2);
        assert_eq!(p.activity_count(), 1);
    }
}
