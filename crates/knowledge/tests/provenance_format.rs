//! Direct coverage for [`ProvenanceStore`]: on-disk format stability and
//! lineage traversal over non-trivial graph shapes. Until now the store
//! was only exercised indirectly through the campaign loop; the ledger's
//! replay audit (ISSUE 5) makes the store itself a first-class restart
//! artifact, so its format and queries get pinned here.

use evoflow_knowledge::{ActivityKind, ProvId, ProvenanceStore, ReasoningTrace};

fn round_trip(store: &ProvenanceStore) -> ProvenanceStore {
    let json = serde_json::to_string(store).expect("serialize");
    serde_json::from_str(&json).expect("deserialize")
}

/// reasoning → hypothesis → experiment → result, the campaign shape.
fn campaign_chain() -> (ProvenanceStore, ProvId) {
    let mut p = ProvenanceStore::new();
    p.register_agent("hypothesis-agent", true);
    p.register_agent("facility", false);
    let think = p.record_reasoning(
        "propose hypothesis/1",
        "hypothesis-agent",
        vec![],
        ReasoningTrace {
            model: "cogsim".into(),
            prompt_digest: 0xBEEF,
            input_tokens: 120,
            output_tokens: 24,
            flagged: false,
        },
    );
    let hyp = p.record_entity("hypothesis/1", Some(think));
    let exp = p.record_activity(
        "execute experiment/1",
        ActivityKind::PhysicalExperiment,
        "facility",
        vec![hyp],
    );
    let res = p.record_entity("result/1", Some(exp));
    (p, res)
}

#[test]
fn store_round_trips_structurally_and_byte_for_byte() {
    let (store, result) = campaign_chain();
    let back = round_trip(&store);
    assert_eq!(back, store);
    assert_eq!(
        serde_json::to_string(&back).unwrap(),
        serde_json::to_string(&store).unwrap()
    );
    // Queries behave identically on the decoded copy.
    assert_eq!(back.lineage(result), store.lineage(result));
    assert_eq!(back.audit().per_agent, store.audit().per_agent);
}

/// The exact serialized bytes of the campaign-shaped store, pinned. The
/// store is a restart/audit artifact (the ledger replay rebuilds and
/// compares it), so silent format drift would orphan archived audits; an
/// intentional change here is a format migration and needs a
/// compatibility story.
#[test]
fn store_format_is_stable() {
    let (store, _) = campaign_chain();
    assert_eq!(
        serde_json::to_string(&store).unwrap(),
        concat!(
            r#"{"agents":{"facility":{"name":"facility","is_ai":false},"hypothesis-agent":{"name":"hypothesis-agent","is_ai":true}},"#,
            r#""entities":[[1,{"id":1,"name":"hypothesis/1","generated_by":0}],[3,{"id":3,"name":"result/1","generated_by":2}]],"#,
            r#""activities":[[0,{"id":0,"name":"propose hypothesis/1","kind":"Reasoning","agent":"hypothesis-agent","used":[],"#,
            r#""reasoning":{"model":"cogsim","prompt_digest":48879,"input_tokens":120,"output_tokens":24,"flagged":false}}],"#,
            r#"[2,{"id":2,"name":"execute experiment/1","kind":"PhysicalExperiment","agent":"facility","used":[1],"reasoning":null}]],"#,
            r#""next_id":4}"#
        )
    );
}

/// Lineage over a diamond: one root entity feeds two parallel analysis
/// activities whose outputs merge into a final synthesis — every
/// upstream node must be found exactly once despite the two paths
/// converging on the same root.
#[test]
fn lineage_walks_a_diamond_exactly_once() {
    let mut p = ProvenanceStore::new();
    p.register_agent("analyst-a", true);
    p.register_agent("analyst-b", true);
    p.register_agent("synthesizer", false);

    let raw = p.record_entity("dataset/raw", None);
    let left = p.record_reasoning(
        "analyze spectra",
        "analyst-a",
        vec![raw],
        ReasoningTrace {
            model: "cogsim".into(),
            prompt_digest: 1,
            input_tokens: 10,
            output_tokens: 5,
            flagged: false,
        },
    );
    let left_out = p.record_entity("analysis/spectra", Some(left));
    let right = p.record_reasoning(
        "analyze diffraction",
        "analyst-b",
        vec![raw],
        ReasoningTrace {
            model: "cogsim".into(),
            prompt_digest: 2,
            input_tokens: 12,
            output_tokens: 6,
            flagged: false,
        },
    );
    let right_out = p.record_entity("analysis/diffraction", Some(right));
    let merge = p.record_activity(
        "synthesize report",
        ActivityKind::Computation,
        "synthesizer",
        vec![left_out, right_out],
    );
    let report = p.record_entity("report/final", Some(merge));

    let lin = p.lineage(report);
    // report + both analyses + the shared root, each once.
    assert_eq!(lin.entities.len(), 4);
    assert!(lin.entities.contains(&raw));
    // merge + both reasoning activities.
    assert_eq!(lin.activities.len(), 3);
    assert_eq!(lin.reasoning_steps, 2);
    assert_eq!(lin.human_steps, 0);

    // A mid-diamond query sees only its own arm.
    let arm = p.lineage(left_out);
    assert_eq!(arm.entities.len(), 2); // analysis/spectra + dataset/raw
    assert_eq!(arm.activities.len(), 1);
    assert_eq!(arm.reasoning_steps, 1);
}
