//! Property tests for the data layer: knowledge-graph CRDT laws,
//! provenance monotonicity, and registry lifecycle invariants.

use evoflow_knowledge::{
    ActivityKind, ArtifactKind, KnowledgeGraph, ModelRegistry, NodeKind, ProvenanceStore, Relation,
    Stage,
};
use evoflow_sim::SimRng;
use proptest::prelude::*;

fn arb_graph(seed: u64, nodes: usize, edges: usize) -> KnowledgeGraph {
    let mut g = KnowledgeGraph::new();
    let mut rng = SimRng::from_seed_u64(seed);
    for i in 0..nodes {
        let kind = match i % 4 {
            0 => NodeKind::Hypothesis,
            1 => NodeKind::Experiment,
            2 => NodeKind::Result,
            _ => NodeKind::Material,
        };
        g.upsert_node(format!("n/{i}"), kind);
        if rng.chance(0.5) {
            g.set_prop(&format!("n/{i}"), "v", format!("{}", rng.below(100)));
        }
    }
    for _ in 0..edges {
        let a = rng.below(nodes);
        let b = rng.below(nodes);
        let rel = match rng.below(3) {
            0 => Relation::Supports,
            1 => Relation::TestedBy,
            _ => Relation::Produced,
        };
        g.link(&format!("n/{a}"), rel, &format!("n/{b}"));
    }
    g
}

proptest! {
    /// Graph merge is commutative (same node/edge counts, same property
    /// winners) and idempotent.
    #[test]
    fn graph_merge_laws(sa in any::<u64>(), sb in any::<u64>(), n in 2usize..20) {
        let a = arb_graph(sa, n, n);
        let b = arb_graph(sb, n, n * 2);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(ab.node_count(), ba.node_count());
        prop_assert_eq!(ab.edge_count(), ba.edge_count());
        for i in 0..n {
            let key = format!("n/{i}");
            let va = ab.node(&key).and_then(|x| x.get("v"));
            let vb = ba.node(&key).and_then(|x| x.get("v"));
            prop_assert_eq!(va, vb, "property divergence at {}", key);
        }
        let before_nodes = ab.node_count();
        let before_edges = ab.edge_count();
        ab.merge(&b);
        prop_assert_eq!(ab.node_count(), before_nodes);
        prop_assert_eq!(ab.edge_count(), before_edges);
    }

    /// Merging never loses nodes or edges.
    #[test]
    fn merge_is_monotone(sa in any::<u64>(), sb in any::<u64>()) {
        let a = arb_graph(sa, 10, 12);
        let b = arb_graph(sb, 14, 8);
        let mut m = a.clone();
        m.merge(&b);
        prop_assert!(m.node_count() >= a.node_count().max(b.node_count()));
        prop_assert!(m.edge_count() >= a.edge_count().max(b.edge_count()));
    }

    /// Provenance lineage is consistent: every chain of length n yields a
    /// lineage with n entities and n activities, ids strictly increase,
    /// and human/AI attribution sums correctly.
    #[test]
    fn provenance_chain_lineage(n in 1usize..40, ai_mask in any::<u64>()) {
        let mut p = ProvenanceStore::new();
        p.register_agent("ai", true);
        p.register_agent("human", false);
        let mut prev = None;
        let mut last = None;
        let mut ai_count = 0usize;
        for i in 0..n {
            let is_ai = ai_mask & (1 << (i % 64)) != 0;
            let (agent, kind) = if is_ai {
                ai_count += 1;
                ("ai", ActivityKind::Reasoning)
            } else {
                ("human", ActivityKind::HumanDecision)
            };
            let act = p.record_activity(
                format!("step{i}"),
                kind,
                agent,
                prev.into_iter().collect(),
            );
            let e = p.record_entity(format!("e{i}"), Some(act));
            prop_assert!(prev.map(|q| q < e).unwrap_or(true));
            prev = Some(e);
            last = Some(e);
        }
        let lineage = p.lineage(last.expect("chain non-empty"));
        prop_assert_eq!(lineage.entities.len(), n);
        prop_assert_eq!(lineage.activities.len(), n);
        prop_assert_eq!(lineage.reasoning_steps, ai_count);
        prop_assert_eq!(lineage.human_steps, n - ai_count);
    }

    /// Registry invariant: at most one Production version per artifact at
    /// any time, and versions are dense 1..=k.
    #[test]
    fn registry_single_production(promotions in prop::collection::vec(0u32..10, 1..20)) {
        let mut r = ModelRegistry::new();
        let mut registered = 0u32;
        for p in &promotions {
            registered += 1;
            r.register("model", ArtifactKind::Model, *p as u64);
            let target = p % registered + 1;
            // Promotion may fail if the target is archived — that's fine.
            let _ = r.transition("model", target, Stage::Production);
            let in_production = (1..=registered)
                .filter(|v| r.get("model", *v).map(|a| a.stage == Stage::Production).unwrap_or(false))
                .count();
            prop_assert!(in_production <= 1, "multiple production versions");
        }
        for v in 1..=registered {
            prop_assert_eq!(r.get("model", v).expect("dense versions").version, v);
        }
    }
}
