//! Consensus primitives for multi-agent decision-making (§5.2, §5.5).
//!
//! "Scalable consensus protocols for multi-agent decision-making and
//! distributed state management are required and should provide audit
//! trails for autonomous actions." Three primitives:
//!
//! * [`run_quorum`] — broadcast quorum voting (mesh-style: proposer talks to
//!   everyone; message cost O(n) per round, channel cost O(n²) for
//!   all-to-all deliberation).
//! * [`gossip_consensus`] — swarm-style push-pull averaging over k random
//!   neighbors; message cost O(k·n) per round, converging in O(log n)
//!   rounds — the scalability mechanism Table 2 attributes to Φ.
//! * [`elect_leader`] — deterministic bully election with message counting.
//!
//! The channel-count formulas of Table 2 live in [`topology`].

use evoflow_sim::SimRng;
use serde::{Deserialize, Serialize};

/// Channel-count formulas for the five composition patterns (Table 2).
pub mod topology {
    /// Pipeline `M1∘M2∘…∘Mn`: n−1 forward channels — O(n).
    pub fn pipeline_channels(n: u64) -> u64 {
        n.saturating_sub(1)
    }

    /// Hierarchical `M_mgr(M1..Mn)` with the given fanout: one channel per
    /// parent-child edge — O(n) total (n−1 edges in any tree).
    pub fn hierarchical_channels(n: u64) -> u64 {
        n.saturating_sub(1)
    }

    /// Mesh `∀i,j: Mi↔Mj`: all-to-all — O(n²), exactly n(n−1)/2 undirected.
    pub fn mesh_channels(n: u64) -> u64 {
        n * n.saturating_sub(1) / 2
    }

    /// Swarm `Φ({m1..mn})` with neighborhood size k: each member keeps k
    /// local channels — O(k·n) total, O(k) per member.
    pub fn swarm_channels(n: u64, k: u64) -> u64 {
        n * k.min(n.saturating_sub(1))
    }
}

/// Configuration for quorum voting.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct QuorumConfig {
    /// Fraction of *all* voters whose YES is required to accept.
    pub threshold: f64,
    /// Maximum solicitation rounds before giving up.
    pub max_rounds: u32,
}

impl Default for QuorumConfig {
    fn default() -> Self {
        QuorumConfig {
            threshold: 0.5,
            max_rounds: 4,
        }
    }
}

/// Result of a quorum vote.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QuorumOutcome {
    /// Whether the proposal reached the threshold.
    pub accepted: bool,
    /// YES votes received.
    pub yes: u32,
    /// NO votes received.
    pub no: u32,
    /// Total messages exchanged (requests + responses).
    pub messages: u64,
    /// Rounds used.
    pub rounds: u32,
}

/// Run a broadcast quorum vote among `n_voters`, each reachable with
/// probability `reliability` per round and voting YES with probability
/// `approval`. Unreached voters are re-solicited in later rounds.
pub fn run_quorum(
    n_voters: u32,
    reliability: f64,
    approval: f64,
    cfg: QuorumConfig,
    rng: &mut SimRng,
) -> QuorumOutcome {
    let needed = (cfg.threshold * n_voters as f64).floor() as u32 + 1;
    let mut yes = 0u32;
    let mut no = 0u32;
    let mut messages = 0u64;
    let mut pending: Vec<u32> = (0..n_voters).collect();
    let mut rounds = 0u32;

    while rounds < cfg.max_rounds && yes < needed && !pending.is_empty() {
        rounds += 1;
        let mut still_pending = Vec::new();
        for voter in pending {
            messages += 1; // solicitation
            if rng.chance(reliability) {
                messages += 1; // response
                if rng.chance(approval) {
                    yes += 1;
                } else {
                    no += 1;
                }
            } else {
                still_pending.push(voter);
            }
        }
        pending = still_pending;
        // Early reject: even if every pending voter said yes we can't win.
        if yes + (pending.len() as u32) < needed {
            break;
        }
    }

    QuorumOutcome {
        accepted: yes >= needed,
        yes,
        no,
        messages,
        rounds,
    }
}

/// Result of gossip averaging.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GossipOutcome {
    /// Rounds until convergence (or the cap).
    pub rounds: u32,
    /// Total messages (each push-pull exchange counts 2).
    pub messages: u64,
    /// Final max-min spread of opinions.
    pub spread: f64,
    /// Whether convergence was reached within the round cap.
    pub converged: bool,
}

/// Swarm consensus by push-pull gossip averaging: each round, every member
/// exchanges opinions with `k` random neighbors and both move to the mean.
/// Converges geometrically; message cost O(k·n) per round.
pub fn gossip_consensus(
    opinions: &mut [f64],
    k: usize,
    epsilon: f64,
    max_rounds: u32,
    rng: &mut SimRng,
) -> GossipOutcome {
    let n = opinions.len();
    let mut messages = 0u64;
    let mut rounds = 0u32;
    if n == 0 {
        return GossipOutcome {
            rounds: 0,
            messages: 0,
            spread: 0.0,
            converged: true,
        };
    }
    let spread = |xs: &[f64]| {
        let mx = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mn = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        mx - mn
    };
    while rounds < max_rounds && spread(opinions) > epsilon {
        rounds += 1;
        for i in 0..n {
            for _ in 0..k.min(n.saturating_sub(1)) {
                let mut j = rng.below(n);
                if j == i {
                    j = (j + 1) % n;
                }
                let mean = (opinions[i] + opinions[j]) / 2.0;
                opinions[i] = mean;
                opinions[j] = mean;
                messages += 2; // push + pull
            }
        }
    }
    let s = spread(opinions);
    GossipOutcome {
        rounds,
        messages,
        spread: s,
        converged: s <= epsilon,
    }
}

/// Deterministic bully leader election over live node ids.
/// Returns the winner (highest id) and the number of messages a bully-style
/// election exchanges: each node challenges all higher ids, answers flow
/// back, and the coordinator announces to everyone.
pub fn elect_leader(live_ids: &[u64]) -> Option<(u64, u64)> {
    if live_ids.is_empty() {
        return None;
    }
    let winner = *live_ids.iter().max().expect("non-empty");
    let n = live_ids.len() as u64;
    let mut messages = 0u64;
    for &id in live_ids {
        let higher = live_ids.iter().filter(|&&x| x > id).count() as u64;
        messages += higher * 2; // ELECTION + ANSWER
    }
    messages += n - 1; // COORDINATOR announcement
    Some((winner, messages))
}

#[cfg(test)]
mod tests {
    use super::topology::*;
    use super::*;

    #[test]
    fn channel_formulas_match_table2() {
        assert_eq!(pipeline_channels(10), 9);
        assert_eq!(hierarchical_channels(10), 9);
        assert_eq!(mesh_channels(10), 45);
        assert_eq!(swarm_channels(100, 5), 500);
        // Swarm k is capped by n-1.
        assert_eq!(swarm_channels(4, 100), 12);
        // Asymptotics: mesh quadratic, swarm linear in n.
        assert!(mesh_channels(1000) > swarm_channels(1000, 8) * 50);
    }

    #[test]
    fn reliable_unanimous_quorum_accepts_in_one_round() {
        let mut rng = SimRng::from_seed_u64(1);
        let out = run_quorum(10, 1.0, 1.0, QuorumConfig::default(), &mut rng);
        assert!(out.accepted);
        assert_eq!(out.rounds, 1);
        assert_eq!(out.yes, 10); // whole round is solicited at once
        assert_eq!(out.messages, 20); // 10 asks + 10 replies
    }

    #[test]
    fn hostile_electorate_rejects() {
        let mut rng = SimRng::from_seed_u64(2);
        let out = run_quorum(20, 1.0, 0.0, QuorumConfig::default(), &mut rng);
        assert!(!out.accepted);
        assert_eq!(out.no, 20);
    }

    #[test]
    fn unreliable_voters_need_more_rounds() {
        let mut rng = SimRng::from_seed_u64(3);
        let flaky = run_quorum(
            40,
            0.5,
            1.0,
            QuorumConfig {
                threshold: 0.6,
                max_rounds: 10,
            },
            &mut rng,
        );
        assert!(flaky.accepted);
        assert!(flaky.rounds > 1, "rounds {}", flaky.rounds);
    }

    #[test]
    fn gossip_converges_geometrically() {
        let mut rng = SimRng::from_seed_u64(4);
        let mut opinions: Vec<f64> = (0..200).map(|i| i as f64).collect();
        let out = gossip_consensus(&mut opinions, 3, 0.5, 100, &mut rng);
        assert!(out.converged, "spread {}", out.spread);
        assert!(out.rounds < 30, "rounds {}", out.rounds);
        // Mean is preserved by pairwise averaging.
        let mean = opinions.iter().sum::<f64>() / opinions.len() as f64;
        assert!((mean - 99.5).abs() < 1.0, "mean {mean}");
    }

    #[test]
    fn gossip_message_cost_is_linear_in_n() {
        let mut rng = SimRng::from_seed_u64(5);
        let mut cost = |n: usize| {
            let mut ops: Vec<f64> = (0..n).map(|i| (i % 7) as f64).collect();
            let out = gossip_consensus(&mut ops, 4, 0.1, 200, &mut rng);
            out.messages as f64 / out.rounds.max(1) as f64
        };
        let c100 = cost(100);
        let c800 = cost(800);
        let ratio = c800 / c100;
        assert!((6.0..10.0).contains(&ratio), "ratio {ratio}"); // ~8 = linear
    }

    #[test]
    fn leader_election_picks_max_and_counts_messages() {
        let (leader, msgs) = elect_leader(&[3, 9, 1, 5]).unwrap();
        assert_eq!(leader, 9);
        // 3 challenges {9,5}, 1 challenges {3,9,5}, 5 challenges {9}: 6 pairs
        // -> 12 challenge/answer messages + 3 coordinator msgs.
        assert_eq!(msgs, 15);
        assert!(elect_leader(&[]).is_none());
    }

    #[test]
    fn empty_gossip_is_trivially_converged() {
        let mut rng = SimRng::from_seed_u64(6);
        let out = gossip_consensus(&mut [], 3, 0.1, 10, &mut rng);
        assert!(out.converged);
        assert_eq!(out.messages, 0);
    }
}
