//! The message bus (Coordination & Communication layer, Fig 2).
//!
//! "Message buses will evolve to support semantic agent negotiation on top
//! of protocols like AMQP 1.0 for federated event-driven workflows" (§5.2).
//! This is a topic-based pub/sub bus with per-topic subscriber channels
//! (crossbeam), byte payloads, and channel accounting — the quantity
//! Table 2's composition-scaling claims are stated in.
//!
//! The bus is `Sync`: agents on threads share it behind an `Arc`. Delivery
//! within a topic preserves publish order per subscriber (crossbeam FIFO).

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender, TryRecvError};
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// A message on the bus.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Topic it was published to.
    pub topic: String,
    /// Logical sender name.
    pub from: String,
    /// Payload bytes (serialized by the sender).
    pub payload: Bytes,
}

impl Message {
    /// Convenience: a UTF-8 text message.
    pub fn text(topic: impl Into<String>, from: impl Into<String>, body: &str) -> Self {
        Message {
            topic: topic.into(),
            from: from.into(),
            payload: Bytes::copy_from_slice(body.as_bytes()),
        }
    }

    /// Payload as UTF-8 text, if valid.
    pub fn as_text(&self) -> Option<&str> {
        std::str::from_utf8(&self.payload).ok()
    }
}

/// A subscriber's end of a topic.
#[derive(Debug)]
pub struct Subscription {
    topic: String,
    rx: Receiver<Message>,
}

impl Subscription {
    /// Topic this subscription listens on.
    pub fn topic(&self) -> &str {
        &self.topic
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<Message> {
        match self.rx.try_recv() {
            Ok(m) => Some(m),
            Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => None,
        }
    }

    /// Drain everything currently queued.
    pub fn drain(&self) -> Vec<Message> {
        std::iter::from_fn(|| self.try_recv()).collect()
    }

    /// Number of queued messages.
    pub fn pending(&self) -> usize {
        self.rx.len()
    }
}

/// A topic-based publish/subscribe message bus.
#[derive(Debug, Default)]
pub struct MessageBus {
    topics: RwLock<BTreeMap<String, Vec<Sender<Message>>>>,
    published: AtomicU64,
    delivered: AtomicU64,
}

impl MessageBus {
    /// Create an empty bus.
    pub fn new() -> Self {
        Self::default()
    }

    /// Open a subscription channel on `topic`.
    pub fn subscribe(&self, topic: impl Into<String>) -> Subscription {
        let topic = topic.into();
        let (tx, rx) = unbounded();
        self.topics
            .write()
            .entry(topic.clone())
            .or_default()
            .push(tx);
        Subscription { topic, rx }
    }

    /// Publish a message; returns how many subscribers received it.
    /// Subscribers whose receiving end was dropped are pruned lazily.
    pub fn publish(&self, msg: Message) -> usize {
        self.published.fetch_add(1, Ordering::Relaxed);
        let mut delivered = 0usize;
        let mut topics = self.topics.write();
        if let Some(subs) = topics.get_mut(&msg.topic) {
            subs.retain(|tx| {
                if tx.send(msg.clone()).is_ok() {
                    delivered += 1;
                    true
                } else {
                    false
                }
            });
        }
        self.delivered
            .fetch_add(delivered as u64, Ordering::Relaxed);
        delivered
    }

    /// Number of open subscriber channels across all topics — the "channel
    /// count" of Table 2.
    pub fn channel_count(&self) -> usize {
        self.topics.read().values().map(Vec::len).sum()
    }

    /// Number of distinct topics ever subscribed.
    pub fn topic_count(&self) -> usize {
        self.topics.read().len()
    }

    /// Total messages published.
    pub fn published(&self) -> u64 {
        self.published.load(Ordering::Relaxed)
    }

    /// Total deliveries (published × fanout).
    pub fn delivered(&self) -> u64 {
        self.delivered.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn pub_sub_delivers_in_order() {
        let bus = MessageBus::new();
        let sub = bus.subscribe("results");
        bus.publish(Message::text("results", "beamline", "r1"));
        bus.publish(Message::text("results", "beamline", "r2"));
        let msgs = sub.drain();
        assert_eq!(msgs.len(), 2);
        assert_eq!(msgs[0].as_text(), Some("r1"));
        assert_eq!(msgs[1].as_text(), Some("r2"));
    }

    #[test]
    fn fanout_counts_subscribers() {
        let bus = MessageBus::new();
        let _a = bus.subscribe("t");
        let _b = bus.subscribe("t");
        let n = bus.publish(Message::text("t", "x", "hello"));
        assert_eq!(n, 2);
        assert_eq!(bus.channel_count(), 2);
        assert_eq!(bus.delivered(), 2);
        assert_eq!(bus.published(), 1);
    }

    #[test]
    fn no_subscribers_no_delivery() {
        let bus = MessageBus::new();
        assert_eq!(bus.publish(Message::text("void", "x", "hi")), 0);
    }

    #[test]
    fn dropped_subscribers_are_pruned() {
        let bus = MessageBus::new();
        let a = bus.subscribe("t");
        drop(a);
        assert_eq!(bus.channel_count(), 1); // not yet pruned
        assert_eq!(bus.publish(Message::text("t", "x", "hi")), 0);
        assert_eq!(bus.channel_count(), 0); // pruned on publish
    }

    #[test]
    fn topics_are_isolated() {
        let bus = MessageBus::new();
        let a = bus.subscribe("alpha");
        let b = bus.subscribe("beta");
        bus.publish(Message::text("alpha", "x", "only-a"));
        assert_eq!(a.pending(), 1);
        assert_eq!(b.pending(), 0);
    }

    #[test]
    fn concurrent_publishers_deliver_everything() {
        let bus = Arc::new(MessageBus::new());
        let sub = bus.subscribe("load");
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let bus = Arc::clone(&bus);
                std::thread::spawn(move || {
                    for i in 0..250 {
                        bus.publish(Message::text("load", format!("t{t}"), &format!("{i}")));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(sub.drain().len(), 1000);
        assert_eq!(bus.published(), 1000);
    }
}
