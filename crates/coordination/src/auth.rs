//! Capability-token authentication for inter-agent communication (§5.2).
//!
//! "Security frameworks like Globus Auth can be extended to authenticate
//! inter-agent communication … assuming non-human access scenarios" (§5.5).
//! Tokens carry scopes and expiry, are signed with a per-authority secret
//! (simulated MAC), and can be *delegated with attenuation only*: a derived
//! token's scopes must be a subset of its parent's — the property that keeps
//! agent-to-agent delegation chains from escalating privilege.

use evoflow_sim::fnv1a;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// A scoped, signed capability token.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Token {
    /// Unique token id.
    pub id: u64,
    /// Issuing authority name.
    pub issuer: String,
    /// Subject (agent/service) the token was issued to.
    pub subject: String,
    /// Granted scopes (e.g. `"submit:hpc"`, `"read:kg"`).
    pub scopes: BTreeSet<String>,
    /// Expiry as a logical timestamp.
    pub expires_at: u64,
    /// Parent token id when delegated.
    pub parent: Option<u64>,
    /// Signature (MAC over the fields with the authority secret).
    pub mac: u64,
}

/// Why verification failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AuthError {
    /// MAC check failed (tampered or foreign token).
    BadSignature,
    /// Token expired at the given check time.
    Expired,
    /// Token was revoked.
    Revoked,
    /// Required scope is absent.
    MissingScope(String),
    /// A delegated token tried to widen its parent's scopes.
    ScopeEscalation,
}

impl std::fmt::Display for AuthError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AuthError::BadSignature => write!(f, "bad token signature"),
            AuthError::Expired => write!(f, "token expired"),
            AuthError::Revoked => write!(f, "token revoked"),
            AuthError::MissingScope(s) => write!(f, "missing scope {s:?}"),
            AuthError::ScopeEscalation => write!(f, "delegation would escalate scopes"),
        }
    }
}

impl std::error::Error for AuthError {}

/// A token-issuing authority for one trust domain.
#[derive(Debug)]
pub struct Authority {
    name: String,
    secret: u64,
    next_id: u64,
    revoked: BTreeSet<u64>,
}

impl Authority {
    /// Create an authority with a secret.
    pub fn new(name: impl Into<String>, secret: u64) -> Self {
        Authority {
            name: name.into(),
            secret,
            next_id: 1,
            revoked: BTreeSet::new(),
        }
    }

    /// Authority name.
    pub fn name(&self) -> &str {
        &self.name
    }

    fn sign(&self, id: u64, subject: &str, scopes: &BTreeSet<String>, expires_at: u64) -> u64 {
        let mut buf = Vec::new();
        buf.extend_from_slice(&id.to_le_bytes());
        buf.extend_from_slice(self.name.as_bytes());
        buf.extend_from_slice(subject.as_bytes());
        for s in scopes {
            buf.extend_from_slice(s.as_bytes());
            buf.push(0);
        }
        buf.extend_from_slice(&expires_at.to_le_bytes());
        buf.extend_from_slice(&self.secret.to_le_bytes());
        fnv1a(&buf)
    }

    /// Issue a token for `subject` with `scopes` until `expires_at`.
    pub fn issue(
        &mut self,
        subject: impl Into<String>,
        scopes: impl IntoIterator<Item = String>,
        expires_at: u64,
    ) -> Token {
        let subject = subject.into();
        let scopes: BTreeSet<String> = scopes.into_iter().collect();
        let id = self.next_id;
        self.next_id += 1;
        let mac = self.sign(id, &subject, &scopes, expires_at);
        Token {
            id,
            issuer: self.name.clone(),
            subject,
            scopes,
            expires_at,
            parent: None,
            mac,
        }
    }

    /// Delegate `parent` to a new subject with attenuated scopes.
    /// Fails with [`AuthError::ScopeEscalation`] if `scopes ⊄ parent.scopes`,
    /// and never extends expiry beyond the parent's.
    pub fn delegate(
        &mut self,
        parent: &Token,
        subject: impl Into<String>,
        scopes: impl IntoIterator<Item = String>,
        expires_at: u64,
        now: u64,
    ) -> Result<Token, AuthError> {
        self.verify(parent, None, now)?;
        let scopes: BTreeSet<String> = scopes.into_iter().collect();
        if !scopes.is_subset(&parent.scopes) {
            return Err(AuthError::ScopeEscalation);
        }
        let subject = subject.into();
        let expires_at = expires_at.min(parent.expires_at);
        let id = self.next_id;
        self.next_id += 1;
        let mac = self.sign(id, &subject, &scopes, expires_at);
        Ok(Token {
            id,
            issuer: self.name.clone(),
            subject,
            scopes,
            expires_at,
            parent: Some(parent.id),
            mac,
        })
    }

    /// Revoke a token id (and implicitly anything delegated from it at
    /// verification time if callers check chains — see `verify_chain`).
    pub fn revoke(&mut self, id: u64) {
        self.revoked.insert(id);
    }

    /// Verify a token: signature, expiry, revocation, and (optionally) a
    /// required scope.
    pub fn verify(
        &self,
        token: &Token,
        required_scope: Option<&str>,
        now: u64,
    ) -> Result<(), AuthError> {
        let mac = self.sign(token.id, &token.subject, &token.scopes, token.expires_at);
        if mac != token.mac || token.issuer != self.name {
            return Err(AuthError::BadSignature);
        }
        if now > token.expires_at {
            return Err(AuthError::Expired);
        }
        if self.revoked.contains(&token.id) {
            return Err(AuthError::Revoked);
        }
        if let Some(p) = token.parent {
            if self.revoked.contains(&p) {
                return Err(AuthError::Revoked);
            }
        }
        if let Some(scope) = required_scope {
            if !token.scopes.contains(scope) {
                return Err(AuthError::MissingScope(scope.to_string()));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scopes(xs: &[&str]) -> Vec<String> {
        xs.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn issue_and_verify() {
        let mut auth = Authority::new("ornl-auth", 0xdead_beef);
        let t = auth.issue("analysis-agent", scopes(&["read:kg", "submit:hpc"]), 100);
        assert!(auth.verify(&t, Some("read:kg"), 50).is_ok());
        assert_eq!(
            auth.verify(&t, Some("admin"), 50).unwrap_err(),
            AuthError::MissingScope("admin".into())
        );
    }

    #[test]
    fn expiry_enforced() {
        let mut auth = Authority::new("a", 1);
        let t = auth.issue("x", scopes(&["s"]), 10);
        assert!(auth.verify(&t, None, 10).is_ok());
        assert_eq!(auth.verify(&t, None, 11).unwrap_err(), AuthError::Expired);
    }

    #[test]
    fn tampering_breaks_signature() {
        let mut auth = Authority::new("a", 1);
        let mut t = auth.issue("x", scopes(&["s"]), 10);
        t.scopes.insert("admin".into());
        assert_eq!(
            auth.verify(&t, None, 0).unwrap_err(),
            AuthError::BadSignature
        );
    }

    #[test]
    fn foreign_authority_rejected() {
        let mut a = Authority::new("a", 1);
        let b = Authority::new("b", 2);
        let t = a.issue("x", scopes(&["s"]), 10);
        assert_eq!(b.verify(&t, None, 0).unwrap_err(), AuthError::BadSignature);
    }

    #[test]
    fn delegation_attenuates_only() {
        let mut auth = Authority::new("a", 7);
        let parent = auth.issue("planner", scopes(&["read:kg", "submit:hpc"]), 100);
        let child = auth
            .delegate(&parent, "worker", scopes(&["read:kg"]), 200, 0)
            .unwrap();
        // Expiry clamped to parent's.
        assert_eq!(child.expires_at, 100);
        assert_eq!(child.parent, Some(parent.id));
        assert!(auth.verify(&child, Some("read:kg"), 50).is_ok());
        // Escalation rejected.
        let err = auth
            .delegate(&parent, "worker", scopes(&["admin"]), 100, 0)
            .unwrap_err();
        assert_eq!(err, AuthError::ScopeEscalation);
    }

    #[test]
    fn revocation_cascades_to_children() {
        let mut auth = Authority::new("a", 7);
        let parent = auth.issue("planner", scopes(&["s"]), 100);
        let child = auth
            .delegate(&parent, "worker", scopes(&["s"]), 100, 0)
            .unwrap();
        auth.revoke(parent.id);
        assert_eq!(
            auth.verify(&parent, None, 0).unwrap_err(),
            AuthError::Revoked
        );
        assert_eq!(
            auth.verify(&child, None, 0).unwrap_err(),
            AuthError::Revoked
        );
    }
}
