//! Distributed state synchronization (§5.2).
//!
//! "WSRF enables stateful interactions that can manage distributed learning
//! states and progress" — modernised here as conflict-free replicated state:
//! vector clocks for causality, a grow-only counter for progress tallies,
//! and a last-writer-wins register map for configuration/learning state.
//! Every type satisfies the CRDT laws (commutative, associative, idempotent
//! merge), which the property tests in `tests/coord_properties.rs` verify.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A vector clock over named sites.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct VectorClock {
    ticks: BTreeMap<String, u64>,
}

/// Causal relationship between two clocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Causality {
    /// Self happened strictly before other.
    Before,
    /// Self happened strictly after other.
    After,
    /// Identical clocks.
    Equal,
    /// Concurrent (conflicting) histories.
    Concurrent,
}

impl VectorClock {
    /// Fresh, empty clock.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advance this site's component.
    pub fn tick(&mut self, site: &str) {
        *self.ticks.entry(site.to_string()).or_insert(0) += 1;
    }

    /// This site's current component.
    pub fn get(&self, site: &str) -> u64 {
        self.ticks.get(site).copied().unwrap_or(0)
    }

    /// Compare causally with another clock.
    pub fn compare(&self, other: &VectorClock) -> Causality {
        let mut le = true;
        let mut ge = true;
        for site in self.ticks.keys().chain(other.ticks.keys()) {
            let a = self.get(site);
            let b = other.get(site);
            if a < b {
                ge = false;
            }
            if a > b {
                le = false;
            }
        }
        match (le, ge) {
            (true, true) => Causality::Equal,
            (true, false) => Causality::Before,
            (false, true) => Causality::After,
            (false, false) => Causality::Concurrent,
        }
    }

    /// Pointwise max (join).
    pub fn merge(&mut self, other: &VectorClock) {
        for (site, &t) in &other.ticks {
            let e = self.ticks.entry(site.clone()).or_insert(0);
            *e = (*e).max(t);
        }
    }
}

/// Grow-only counter: per-site tallies, value = sum.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct GCounter {
    counts: BTreeMap<String, u64>,
}

impl GCounter {
    /// Fresh zero counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `n` at `site`.
    pub fn add(&mut self, site: &str, n: u64) {
        *self.counts.entry(site.to_string()).or_insert(0) += n;
    }

    /// Global value.
    pub fn value(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Pointwise-max merge.
    pub fn merge(&mut self, other: &GCounter) {
        for (site, &c) in &other.counts {
            let e = self.counts.entry(site.clone()).or_insert(0);
            *e = (*e).max(c);
        }
    }
}

/// Last-writer-wins register keyed by `(logical_ts, site)` — total order,
/// so concurrent writes resolve deterministically.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LwwRegister<T> {
    value: T,
    stamp: (u64, String),
}

impl<T: Clone> LwwRegister<T> {
    /// Create with an initial value stamped at `(ts, site)`.
    pub fn new(value: T, ts: u64, site: &str) -> Self {
        LwwRegister {
            value,
            stamp: (ts, site.to_string()),
        }
    }

    /// Current value.
    pub fn get(&self) -> &T {
        &self.value
    }

    /// Write stamped `(ts, site)`; older stamps are ignored.
    pub fn set(&mut self, value: T, ts: u64, site: &str) {
        let stamp = (ts, site.to_string());
        if stamp > self.stamp {
            self.value = value;
            self.stamp = stamp;
        }
    }

    /// Merge with a replica: greater stamp wins.
    pub fn merge(&mut self, other: &LwwRegister<T>) {
        if other.stamp > self.stamp {
            self.value = other.value.clone();
            self.stamp = other.stamp.clone();
        }
    }
}

/// A replicated key-value state store: LWW per key plus a vector clock for
/// causality tracking — the "state synchronization" box of Figure 2.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StateStore {
    site: String,
    entries: BTreeMap<String, LwwRegister<String>>,
    clock: VectorClock,
    ts: u64,
}

impl StateStore {
    /// Create a store owned by `site`.
    pub fn new(site: impl Into<String>) -> Self {
        StateStore {
            site: site.into(),
            ..Default::default()
        }
    }

    /// Write `key = value` locally.
    pub fn set(&mut self, key: impl Into<String>, value: impl Into<String>) {
        self.ts += 1;
        self.clock.tick(&self.site.clone());
        let ts = self.ts;
        let site = self.site.clone();
        let value = value.into();
        self.entries
            .entry(key.into())
            .and_modify(|r| r.set(value.clone(), ts, &site))
            .or_insert_with(|| LwwRegister::new(value, ts, &site));
    }

    /// Read a key.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.entries.get(key).map(|r| r.get().as_str())
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the store has no keys.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Causality of this store relative to a replica.
    pub fn causality(&self, other: &StateStore) -> Causality {
        self.clock.compare(&other.clock)
    }

    /// Merge a replica (eventual consistency).
    pub fn merge(&mut self, other: &StateStore) {
        for (k, reg) in &other.entries {
            self.entries
                .entry(k.clone())
                .and_modify(|mine| mine.merge(reg))
                .or_insert_with(|| reg.clone());
        }
        self.clock.merge(&other.clock);
        self.ts = self.ts.max(other.ts);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vector_clock_causality() {
        let mut a = VectorClock::new();
        let mut b = VectorClock::new();
        assert_eq!(a.compare(&b), Causality::Equal);
        a.tick("hpc");
        assert_eq!(a.compare(&b), Causality::After);
        assert_eq!(b.compare(&a), Causality::Before);
        b.tick("edge");
        assert_eq!(a.compare(&b), Causality::Concurrent);
        a.merge(&b);
        assert_eq!(a.compare(&b), Causality::After);
        assert_eq!(a.get("edge"), 1);
    }

    #[test]
    fn gcounter_merges_to_max() {
        let mut a = GCounter::new();
        let mut b = GCounter::new();
        a.add("hpc", 3);
        b.add("hpc", 3); // replicated same increments
        b.add("edge", 2);
        a.merge(&b);
        assert_eq!(a.value(), 5);
        // Idempotent.
        a.merge(&b);
        assert_eq!(a.value(), 5);
    }

    #[test]
    fn lww_register_orders_by_stamp() {
        let mut r = LwwRegister::new("v0".to_string(), 1, "a");
        r.set("v1".to_string(), 2, "a");
        assert_eq!(r.get(), "v1");
        r.set("stale".to_string(), 1, "z");
        assert_eq!(r.get(), "v1");
        // Tie on ts resolves by site name (deterministic).
        let mut x = LwwRegister::new("from-a".to_string(), 5, "a");
        let y = LwwRegister::new("from-b".to_string(), 5, "b");
        x.merge(&y);
        assert_eq!(x.get(), "from-b");
    }

    #[test]
    fn state_store_converges() {
        let mut hpc = StateStore::new("hpc");
        let mut edge = StateStore::new("edge");
        hpc.set("campaign/phase", "synthesis");
        edge.set("campaign/phase", "analysis");
        edge.set("edge/queue", "3");

        let mut h2 = hpc.clone();
        h2.merge(&edge);
        let mut e2 = edge.clone();
        e2.merge(&hpc);
        assert_eq!(h2.get("campaign/phase"), e2.get("campaign/phase"));
        assert_eq!(h2.len(), 2);
        assert_eq!(e2.len(), 2);
        assert_eq!(h2.get("edge/queue"), Some("3"));
    }

    #[test]
    fn state_store_detects_concurrency() {
        let mut a = StateStore::new("a");
        let mut b = StateStore::new("b");
        a.set("x", "1");
        b.set("y", "2");
        assert_eq!(a.causality(&b), Causality::Concurrent);
        a.merge(&b);
        assert_eq!(a.causality(&b), Causality::After);
    }
}
