//! Service discovery and capability advertisement (§5.1).
//!
//! "Cross-facility coordination is enabled through standard protocols that
//! support communication, capability advertisement, and resource discovery.
//! These protocols facilitate dynamic matchmaking between agents,
//! instruments, and services across administrative boundaries."
//!
//! Services advertise named capabilities with attributes; consumers match
//! on capability plus attribute constraints. Liveness is heartbeat-based
//! against a logical clock, so stale services fall out of matchmaking.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A service's advertisement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceDescriptor {
    /// Unique service name (e.g. `"beamline-2@aps"`).
    pub name: String,
    /// Facility hosting the service.
    pub facility: String,
    /// Capabilities offered (e.g. `"characterization/xrd"`).
    pub capabilities: Vec<String>,
    /// Attribute map (e.g. `"resolution" -> "0.1nm"`, `"queue" -> "short"`).
    pub attributes: BTreeMap<String, String>,
    /// Endpoint for invocation.
    pub endpoint: String,
}

/// A capability query with attribute constraints.
#[derive(Debug, Clone, Default)]
pub struct Query {
    /// Required capability string (exact or prefix with trailing `/`).
    pub capability: String,
    /// Required attribute equalities.
    pub attributes: BTreeMap<String, String>,
    /// Restrict to one facility, if set.
    pub facility: Option<String>,
}

impl Query {
    /// Query for a bare capability.
    pub fn capability(cap: impl Into<String>) -> Self {
        Query {
            capability: cap.into(),
            ..Query::default()
        }
    }

    /// Add an attribute constraint.
    pub fn with_attr(mut self, k: impl Into<String>, v: impl Into<String>) -> Self {
        self.attributes.insert(k.into(), v.into());
        self
    }

    /// Restrict to a facility.
    pub fn at_facility(mut self, f: impl Into<String>) -> Self {
        self.facility = Some(f.into());
        self
    }
}

/// The federated service registry for one coordination domain.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ServiceRegistry {
    services: BTreeMap<String, (ServiceDescriptor, u64)>, // name -> (desc, last_heartbeat)
    ttl_ticks: u64,
}

impl ServiceRegistry {
    /// Registry whose services expire `ttl_ticks` after their last heartbeat.
    pub fn new(ttl_ticks: u64) -> Self {
        ServiceRegistry {
            services: BTreeMap::new(),
            ttl_ticks: ttl_ticks.max(1),
        }
    }

    /// Advertise (or refresh) a service at logical time `now`.
    pub fn advertise(&mut self, desc: ServiceDescriptor, now: u64) {
        self.services.insert(desc.name.clone(), (desc, now));
    }

    /// Heartbeat a service; returns false if the service is unknown.
    pub fn heartbeat(&mut self, name: &str, now: u64) -> bool {
        match self.services.get_mut(name) {
            Some((_, t)) => {
                *t = now;
                true
            }
            None => false,
        }
    }

    /// Explicitly withdraw a service.
    pub fn withdraw(&mut self, name: &str) -> bool {
        self.services.remove(name).is_some()
    }

    /// Whether a service is alive at `now`.
    pub fn is_alive(&self, name: &str, now: u64) -> bool {
        self.services
            .get(name)
            .map(|(_, t)| now.saturating_sub(*t) <= self.ttl_ticks)
            .unwrap_or(false)
    }

    /// All live services at `now`, in name order.
    pub fn live(&self, now: u64) -> Vec<&ServiceDescriptor> {
        self.services
            .values()
            .filter(|(_, t)| now.saturating_sub(*t) <= self.ttl_ticks)
            .map(|(d, _)| d)
            .collect()
    }

    /// Matchmake: live services satisfying the query, in name order.
    /// Capability matches exactly, or by prefix when the query capability
    /// ends with `/` (e.g. `"characterization/"` matches any
    /// characterization mode).
    pub fn discover(&self, q: &Query, now: u64) -> Vec<&ServiceDescriptor> {
        self.live(now)
            .into_iter()
            .filter(|d| {
                let cap_ok = if q.capability.ends_with('/') {
                    d.capabilities.iter().any(|c| c.starts_with(&q.capability))
                } else {
                    d.capabilities.iter().any(|c| c == &q.capability)
                };
                let fac_ok = q
                    .facility
                    .as_deref()
                    .map(|f| d.facility == f)
                    .unwrap_or(true);
                let attr_ok = q
                    .attributes
                    .iter()
                    .all(|(k, v)| d.attributes.get(k) == Some(v));
                cap_ok && fac_ok && attr_ok
            })
            .collect()
    }

    /// Remove expired services, returning how many were dropped.
    pub fn prune(&mut self, now: u64) -> usize {
        let before = self.services.len();
        let ttl = self.ttl_ticks;
        self.services
            .retain(|_, (_, t)| now.saturating_sub(*t) <= ttl);
        before - self.services.len()
    }

    /// Total registered (live or stale) services.
    pub fn len(&self) -> usize {
        self.services.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.services.is_empty()
    }

    /// Merge another registry replica (federation): newer heartbeat wins.
    pub fn merge(&mut self, other: &ServiceRegistry) {
        for (name, (desc, t)) in &other.services {
            match self.services.get(name) {
                Some((_, mine)) if mine >= t => {}
                _ => {
                    self.services.insert(name.clone(), (desc.clone(), *t));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn beamline() -> ServiceDescriptor {
        ServiceDescriptor {
            name: "beamline-2".into(),
            facility: "lightsource".into(),
            capabilities: vec![
                "characterization/xrd".into(),
                "characterization/saxs".into(),
            ],
            attributes: BTreeMap::from([("resolution".to_string(), "0.1nm".to_string())]),
            endpoint: "fed://lightsource/beamline-2".into(),
        }
    }

    fn robot() -> ServiceDescriptor {
        ServiceDescriptor {
            name: "synthbot-1".into(),
            facility: "chemlab".into(),
            capabilities: vec!["synthesis/thin-film".into()],
            attributes: BTreeMap::from([("throughput".to_string(), "high".to_string())]),
            endpoint: "fed://chemlab/synthbot-1".into(),
        }
    }

    #[test]
    fn discovery_matches_capability() {
        let mut r = ServiceRegistry::new(10);
        r.advertise(beamline(), 0);
        r.advertise(robot(), 0);
        let hits = r.discover(&Query::capability("characterization/xrd"), 1);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].name, "beamline-2");
        assert!(r
            .discover(&Query::capability("quantum/annealing"), 1)
            .is_empty());
    }

    #[test]
    fn prefix_matching_spans_modes() {
        let mut r = ServiceRegistry::new(10);
        r.advertise(beamline(), 0);
        let hits = r.discover(&Query::capability("characterization/"), 0);
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn attribute_and_facility_constraints() {
        let mut r = ServiceRegistry::new(10);
        r.advertise(beamline(), 0);
        r.advertise(robot(), 0);
        let q = Query::capability("synthesis/thin-film").with_attr("throughput", "high");
        assert_eq!(r.discover(&q, 0).len(), 1);
        let q = Query::capability("synthesis/thin-film").with_attr("throughput", "low");
        assert!(r.discover(&q, 0).is_empty());
        let q = Query::capability("characterization/").at_facility("chemlab");
        assert!(r.discover(&q, 0).is_empty());
    }

    #[test]
    fn ttl_expires_silent_services() {
        let mut r = ServiceRegistry::new(5);
        r.advertise(beamline(), 0);
        assert!(r.is_alive("beamline-2", 5));
        assert!(!r.is_alive("beamline-2", 6));
        assert!(r.heartbeat("beamline-2", 7));
        assert!(r.is_alive("beamline-2", 10));
        assert_eq!(r.prune(100), 1);
        assert!(r.is_empty());
    }

    #[test]
    fn unknown_heartbeat_and_withdraw() {
        let mut r = ServiceRegistry::new(5);
        assert!(!r.heartbeat("ghost", 0));
        assert!(!r.withdraw("ghost"));
        r.advertise(robot(), 0);
        assert!(r.withdraw("synthbot-1"));
        assert!(r.is_empty());
    }

    #[test]
    fn federation_merge_prefers_fresher() {
        let mut a = ServiceRegistry::new(10);
        a.advertise(beamline(), 1);
        let mut b = ServiceRegistry::new(10);
        let mut newer = beamline();
        newer.endpoint = "fed://lightsource-v2/beamline-2".into();
        b.advertise(newer.clone(), 5);
        a.merge(&b);
        assert_eq!(
            a.discover(&Query::capability("characterization/xrd"), 5)[0].endpoint,
            newer.endpoint
        );
    }
}
