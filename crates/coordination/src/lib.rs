//! # evoflow-coord — the Coordination & Communication layer
//!
//! Implements Figure 2's Coordination & Communication layer: the substrate
//! agents and facilities use to find, trust, and talk to each other across
//! administrative boundaries (the paper's federated-architecture principle,
//! §5.1):
//!
//! * [`bus`] — topic pub/sub message bus with channel accounting
//!   (AMQP-style federated eventing, §5.2).
//! * [`discovery`] — capability advertisement + matchmaking with
//!   heartbeat liveness (OGSA-style service discovery, §5.2).
//! * [`sync`] — CRDT state synchronization: vector clocks, G-counters,
//!   LWW registers/stores (WSRF-style stateful interaction, §5.2).
//! * [`auth`] — capability tokens with attenuation-only delegation and
//!   revocation (Globus-Auth-style non-human auth, §5.2/§5.5).
//! * [`consensus`] — quorum voting, swarm gossip consensus, leader
//!   election, and Table 2's channel-count formulas ([`consensus::topology`]).

pub mod auth;
pub mod bus;
pub mod consensus;
pub mod discovery;
pub mod sync;

pub use auth::{AuthError, Authority, Token};
pub use bus::{Message, MessageBus, Subscription};
pub use consensus::{
    elect_leader, gossip_consensus, run_quorum, GossipOutcome, QuorumConfig, QuorumOutcome,
};
pub use discovery::{Query, ServiceDescriptor, ServiceRegistry};
pub use sync::{Causality, GCounter, LwwRegister, StateStore, VectorClock};
