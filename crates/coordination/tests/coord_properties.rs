//! Property tests for the coordination layer: CRDT laws, token-security
//! invariants, and consensus conservation.

use evoflow_coord::{
    gossip_consensus, run_quorum, Authority, Causality, GCounter, QuorumConfig, StateStore,
    VectorClock,
};
use evoflow_sim::SimRng;
use proptest::prelude::*;
use std::collections::BTreeSet;

fn apply_writes(store: &mut StateStore, writes: &[(String, String)]) {
    for (k, v) in writes {
        store.set(k.clone(), v.clone());
    }
}

proptest! {
    /// GCounter merge is commutative, associative, and idempotent, and the
    /// value never decreases under merge.
    #[test]
    fn gcounter_is_a_crdt(
        a_adds in prop::collection::vec(0u64..100, 0..10),
        b_adds in prop::collection::vec(0u64..100, 0..10),
    ) {
        let mut a = GCounter::new();
        for (i, n) in a_adds.iter().enumerate() {
            a.add(if i % 2 == 0 { "s1" } else { "s2" }, *n);
        }
        let mut b = GCounter::new();
        for (i, n) in b_adds.iter().enumerate() {
            b.add(if i % 2 == 0 { "s2" } else { "s3" }, *n);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(ab.value(), ba.value());
        prop_assert!(ab.value() >= a.value().max(b.value()));
        let before = ab.value();
        ab.merge(&b);
        prop_assert_eq!(ab.value(), before);
    }

    /// Vector clocks: merge produces a clock ≥ both inputs; compare is
    /// antisymmetric.
    #[test]
    fn vector_clock_laws(
        ticks_a in prop::collection::vec(0usize..3, 0..12),
        ticks_b in prop::collection::vec(0usize..3, 0..12),
    ) {
        let sites = ["x", "y", "z"];
        let mut a = VectorClock::new();
        for t in &ticks_a {
            a.tick(sites[*t]);
        }
        let mut b = VectorClock::new();
        for t in &ticks_b {
            b.tick(sites[*t]);
        }
        match (a.compare(&b), b.compare(&a)) {
            (Causality::Before, rev) => prop_assert_eq!(rev, Causality::After),
            (Causality::After, rev) => prop_assert_eq!(rev, Causality::Before),
            (Causality::Equal, rev) => prop_assert_eq!(rev, Causality::Equal),
            (Causality::Concurrent, rev) => prop_assert_eq!(rev, Causality::Concurrent),
        }
        let mut m = a.clone();
        m.merge(&b);
        prop_assert!(matches!(m.compare(&a), Causality::After | Causality::Equal));
        prop_assert!(matches!(m.compare(&b), Causality::After | Causality::Equal));
    }

    /// StateStore three-way merges converge to the same content in every
    /// merge order.
    #[test]
    fn statestore_merge_order_irrelevant(
        wa in prop::collection::vec(("[a-d]", "[a-z]{1,3}"), 0..8),
        wb in prop::collection::vec(("[a-d]", "[a-z]{1,3}"), 0..8),
        wc in prop::collection::vec(("[a-d]", "[a-z]{1,3}"), 0..8),
    ) {
        let mut a = StateStore::new("a");
        let mut b = StateStore::new("b");
        let mut c = StateStore::new("c");
        apply_writes(&mut a, &wa);
        apply_writes(&mut b, &wb);
        apply_writes(&mut c, &wc);

        let mut o1 = a.clone();
        o1.merge(&b);
        o1.merge(&c);
        let mut o2 = c.clone();
        o2.merge(&a);
        o2.merge(&b);
        let keys: BTreeSet<String> = wa.iter().chain(&wb).chain(&wc).map(|(k, _)| k.clone()).collect();
        for k in keys {
            prop_assert_eq!(o1.get(&k), o2.get(&k), "divergence at key {}", k);
        }
    }

    /// Delegated tokens can never have scopes outside the parent's, no
    /// matter what is requested, and never outlive the parent.
    #[test]
    fn delegation_never_escalates(
        parent_scopes in prop::collection::btree_set("[a-e]", 1..5),
        child_scopes in prop::collection::btree_set("[a-h]", 0..6),
        expiry in 1u64..1000,
        child_expiry in 1u64..5000,
    ) {
        let mut auth = Authority::new("t", 42);
        let parent = auth.issue("root", parent_scopes.iter().cloned().collect::<Vec<_>>(), expiry);
        match auth.delegate(&parent, "child", child_scopes.iter().cloned().collect::<Vec<_>>(), child_expiry, 0) {
            Ok(child) => {
                prop_assert!(child.scopes.is_subset(&parent.scopes));
                prop_assert!(child.expires_at <= parent.expires_at);
                prop_assert!(auth.verify(&child, None, 0).is_ok());
            }
            Err(e) => {
                // Only legitimate rejection: requested scopes escape parent.
                prop_assert!(!child_scopes.is_subset(&parent_scopes), "spurious rejection {e:?}");
            }
        }
    }

    /// Quorum accounting: yes + no never exceeds the electorate, messages
    /// are bounded by 2·n·rounds, and unanimity accepts whenever
    /// reliability is 1.
    #[test]
    fn quorum_conservation(n in 1u32..200, seed in any::<u64>()) {
        let mut rng = SimRng::from_seed_u64(seed);
        let out = run_quorum(n, 1.0, 1.0, QuorumConfig::default(), &mut rng);
        prop_assert!(out.yes + out.no <= n);
        prop_assert!(out.messages <= 2 * n as u64 * out.rounds as u64);
        prop_assert!(out.accepted);
    }

    /// Gossip preserves the mean opinion (pairwise averaging is
    /// conservative) and never diverges.
    #[test]
    fn gossip_conserves_mass(
        n in 2usize..100,
        k in 1usize..6,
        seed in any::<u64>(),
    ) {
        let mut rng = SimRng::from_seed_u64(seed);
        let mut opinions: Vec<f64> = (0..n).map(|i| (i % 11) as f64).collect();
        let mean_before: f64 = opinions.iter().sum::<f64>() / n as f64;
        let out = gossip_consensus(&mut opinions, k, 0.01, 50, &mut rng);
        let mean_after: f64 = opinions.iter().sum::<f64>() / n as f64;
        prop_assert!((mean_before - mean_after).abs() < 1e-6);
        prop_assert!(out.spread.is_finite());
    }
}
