//! Goal specifications: the machine-checkable form of "what the campaign
//! is for".
//!
//! A [`GoalSpec`] is what a scientist hands the Intelligence Service layer
//! instead of a manually defined DAG (Figure 4's "no manually defined DAGs
//! in place"). Validation happens *before* execution: a contradictory or
//! vacuous specification must be rejected while it is still cheap — §4.1's
//! "irreplaceable samples, expensive equipment" argument applied to the
//! specification stage.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Whether the objective metric is to be driven up or down.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ObjectiveSense {
    /// Larger is better (e.g. figure of merit, yield).
    Maximize,
    /// Smaller is better (e.g. defect density, cost).
    Minimize,
}

/// The quantity a campaign optimizes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObjectiveSpec {
    /// Metric name in the campaign's vocabulary (e.g. `"band_gap_eV"`).
    pub metric: String,
    /// Direction of improvement.
    pub sense: ObjectiveSense,
    /// Optional aspiration level; reaching it can end the campaign early.
    pub target: Option<f64>,
}

/// Comparison operators for constraints and success criteria.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Comparator {
    /// Metric must be ≤ bound.
    Le,
    /// Metric must be ≥ bound.
    Ge,
    /// Metric must be within `tol` of bound.
    Within {
        /// Absolute tolerance.
        tol: f64,
    },
}

impl Comparator {
    /// Evaluate `value` against `bound`.
    pub fn holds(self, value: f64, bound: f64) -> bool {
        match self {
            Comparator::Le => value <= bound,
            Comparator::Ge => value >= bound,
            Comparator::Within { tol } => (value - bound).abs() <= tol,
        }
    }
}

/// A bound the campaign must respect.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConstraintSpec {
    /// Constrained metric.
    pub metric: String,
    /// Comparison.
    pub comparator: Comparator,
    /// Bound value.
    pub bound: f64,
    /// Hard constraints become governance gates (violations halt the
    /// campaign); soft constraints become objective penalties.
    pub hard: bool,
}

/// Resource ceilings — the paper's sample-scarcity and cost concerns
/// (§4.1, §5.2) as explicit budget lines.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BudgetSpec {
    /// Maximum physical samples the campaign may consume.
    pub max_samples: u64,
    /// Maximum abstract decision/compute cost units.
    pub max_cost_units: u64,
    /// Maximum wall-clock hours (simulated).
    pub max_wall_hours: f64,
}

impl BudgetSpec {
    /// Whether every budget line is positive (a zero budget is vacuous).
    pub fn is_spendable(&self) -> bool {
        self.max_samples > 0 && self.max_cost_units > 0 && self.max_wall_hours > 0.0
    }
}

/// A condition that must hold for the campaign to count as succeeded.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SuccessCriterion {
    /// Metric inspected at evaluation time.
    pub metric: String,
    /// Comparison.
    pub comparator: Comparator,
    /// Threshold.
    pub value: f64,
}

/// A complete, validatable statement of scientific intent.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GoalSpec {
    /// Stable identifier (lands in provenance records).
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// What to optimize.
    pub objective: ObjectiveSpec,
    /// Bounds to respect.
    pub constraints: Vec<ConstraintSpec>,
    /// Resource ceilings.
    pub budget: BudgetSpec,
    /// Completion conditions.
    pub success: Vec<SuccessCriterion>,
}

/// Structural problems found by [`GoalSpec::validate`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SpecIssue {
    /// Title or id is empty.
    MissingIdentity,
    /// Objective metric name is empty.
    MissingObjectiveMetric,
    /// Some budget line is zero or negative.
    UnspendableBudget,
    /// Two constraints on the same metric exclude every value
    /// (e.g. `x ≤ 2` and `x ≥ 5`).
    ContradictoryConstraints {
        /// Metric with the empty feasible set.
        metric: String,
    },
    /// The aspiration target itself violates a hard constraint on the
    /// objective metric — the campaign is being asked to reach a
    /// forbidden value.
    TargetViolatesConstraint {
        /// Offending constraint's metric (== objective metric).
        metric: String,
    },
    /// A success criterion references a metric no constraint or objective
    /// mentions — usually a typo; flagged because a criterion nobody
    /// produces can never be met.
    UnboundSuccessMetric {
        /// The unreferenced metric.
        metric: String,
    },
    /// The same (metric, comparator) appears twice with different bounds.
    DuplicateConstraint {
        /// Duplicated metric.
        metric: String,
    },
    /// A `Within` tolerance is negative.
    NegativeTolerance {
        /// Offending metric.
        metric: String,
    },
}

impl GoalSpec {
    /// Start a builder.
    pub fn builder(id: impl Into<String>, title: impl Into<String>) -> GoalBuilder {
        GoalBuilder {
            spec: GoalSpec {
                id: id.into(),
                title: title.into(),
                objective: ObjectiveSpec {
                    metric: String::new(),
                    sense: ObjectiveSense::Maximize,
                    target: None,
                },
                constraints: Vec::new(),
                budget: BudgetSpec {
                    max_samples: 0,
                    max_cost_units: 0,
                    max_wall_hours: 0.0,
                },
                success: Vec::new(),
            },
        }
    }

    /// Check the spec for structural problems. Empty result = valid.
    pub fn validate(&self) -> Vec<SpecIssue> {
        let mut issues = Vec::new();
        if self.id.is_empty() || self.title.is_empty() {
            issues.push(SpecIssue::MissingIdentity);
        }
        if self.objective.metric.is_empty() {
            issues.push(SpecIssue::MissingObjectiveMetric);
        }
        if !self.budget.is_spendable() {
            issues.push(SpecIssue::UnspendableBudget);
        }
        // Feasible interval per metric; [lo, hi] starts unbounded.
        let mut intervals: BTreeMap<&str, (f64, f64)> = BTreeMap::new();
        let mut seen: BTreeMap<(&str, &str), f64> = BTreeMap::new();
        for c in &self.constraints {
            if let Comparator::Within { tol } = c.comparator {
                if tol < 0.0 {
                    issues.push(SpecIssue::NegativeTolerance {
                        metric: c.metric.clone(),
                    });
                }
            }
            let tag = match c.comparator {
                Comparator::Le => "le",
                Comparator::Ge => "ge",
                Comparator::Within { .. } => "within",
            };
            if let Some(&prev) = seen.get(&(c.metric.as_str(), tag)) {
                if prev != c.bound {
                    issues.push(SpecIssue::DuplicateConstraint {
                        metric: c.metric.clone(),
                    });
                }
            }
            seen.insert((c.metric.as_str(), tag), c.bound);
            let entry = intervals
                .entry(c.metric.as_str())
                .or_insert((f64::NEG_INFINITY, f64::INFINITY));
            match c.comparator {
                Comparator::Le => entry.1 = entry.1.min(c.bound),
                Comparator::Ge => entry.0 = entry.0.max(c.bound),
                Comparator::Within { tol } => {
                    entry.0 = entry.0.max(c.bound - tol.max(0.0));
                    entry.1 = entry.1.min(c.bound + tol.max(0.0));
                }
            }
        }
        for (metric, (lo, hi)) in &intervals {
            if lo > hi {
                issues.push(SpecIssue::ContradictoryConstraints {
                    metric: (*metric).to_string(),
                });
            }
        }
        if let Some(target) = self.objective.target {
            if let Some((lo, hi)) = intervals.get(self.objective.metric.as_str()) {
                let hard_on_objective = self
                    .constraints
                    .iter()
                    .any(|c| c.hard && c.metric == self.objective.metric);
                if hard_on_objective && (target < *lo || target > *hi) {
                    issues.push(SpecIssue::TargetViolatesConstraint {
                        metric: self.objective.metric.clone(),
                    });
                }
            }
        }
        let known: Vec<&str> = self
            .constraints
            .iter()
            .map(|c| c.metric.as_str())
            .chain(std::iter::once(self.objective.metric.as_str()))
            .collect();
        for s in &self.success {
            if !known.contains(&s.metric.as_str()) {
                issues.push(SpecIssue::UnboundSuccessMetric {
                    metric: s.metric.clone(),
                });
            }
        }
        issues
    }

    /// `true` when [`GoalSpec::validate`] finds nothing.
    pub fn is_valid(&self) -> bool {
        self.validate().is_empty()
    }

    /// Whether `metrics` satisfies every success criterion.
    pub fn success_met(&self, metrics: &BTreeMap<String, f64>) -> bool {
        !self.success.is_empty()
            && self.success.iter().all(|s| {
                metrics
                    .get(&s.metric)
                    .is_some_and(|&v| s.comparator.holds(v, s.value))
            })
    }
}

/// Fluent construction of a [`GoalSpec`].
#[derive(Debug, Clone)]
pub struct GoalBuilder {
    spec: GoalSpec,
}

impl GoalBuilder {
    /// Set the objective.
    pub fn objective(mut self, metric: impl Into<String>, sense: ObjectiveSense) -> Self {
        self.spec.objective.metric = metric.into();
        self.spec.objective.sense = sense;
        self
    }

    /// Set the aspiration target.
    pub fn target(mut self, target: f64) -> Self {
        self.spec.objective.target = Some(target);
        self
    }

    /// Add a constraint.
    pub fn constraint(
        mut self,
        metric: impl Into<String>,
        comparator: Comparator,
        bound: f64,
        hard: bool,
    ) -> Self {
        self.spec.constraints.push(ConstraintSpec {
            metric: metric.into(),
            comparator,
            bound,
            hard,
        });
        self
    }

    /// Set the budget.
    pub fn budget(mut self, max_samples: u64, max_cost_units: u64, max_wall_hours: f64) -> Self {
        self.spec.budget = BudgetSpec {
            max_samples,
            max_cost_units,
            max_wall_hours,
        };
        self
    }

    /// Add a success criterion.
    pub fn success(
        mut self,
        metric: impl Into<String>,
        comparator: Comparator,
        value: f64,
    ) -> Self {
        self.spec.success.push(SuccessCriterion {
            metric: metric.into(),
            comparator,
            value,
        });
        self
    }

    /// Finish, returning the spec (possibly invalid — call
    /// [`GoalSpec::validate`]).
    pub fn build(self) -> GoalSpec {
        self.spec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn valid_goal() -> GoalSpec {
        GoalSpec::builder("g1", "maximize band gap")
            .objective("band_gap_eV", ObjectiveSense::Maximize)
            .target(3.0)
            .constraint("band_gap_eV", Comparator::Le, 6.0, true)
            .constraint("toxicity", Comparator::Le, 0.1, true)
            .budget(500, 100_000, 336.0)
            .success("band_gap_eV", Comparator::Ge, 2.5)
            .build()
    }

    #[test]
    fn valid_goal_validates_clean() {
        assert_eq!(valid_goal().validate(), Vec::new());
        assert!(valid_goal().is_valid());
    }

    #[test]
    fn empty_identity_and_metric_flagged() {
        let g = GoalSpec::builder("", "").budget(1, 1, 1.0).build();
        let issues = g.validate();
        assert!(issues.contains(&SpecIssue::MissingIdentity));
        assert!(issues.contains(&SpecIssue::MissingObjectiveMetric));
    }

    #[test]
    fn zero_budget_flagged() {
        let mut g = valid_goal();
        g.budget.max_samples = 0;
        assert!(g.validate().contains(&SpecIssue::UnspendableBudget));
    }

    #[test]
    fn contradictory_constraints_flagged() {
        let g = GoalSpec::builder("g", "t")
            .objective("x", ObjectiveSense::Maximize)
            .constraint("x", Comparator::Le, 2.0, true)
            .constraint("x", Comparator::Ge, 5.0, true)
            .budget(1, 1, 1.0)
            .build();
        assert!(g
            .validate()
            .contains(&SpecIssue::ContradictoryConstraints { metric: "x".into() }));
    }

    #[test]
    fn target_outside_hard_constraint_flagged() {
        let g = GoalSpec::builder("g", "t")
            .objective("x", ObjectiveSense::Maximize)
            .target(10.0)
            .constraint("x", Comparator::Le, 6.0, true)
            .budget(1, 1, 1.0)
            .build();
        assert!(g
            .validate()
            .contains(&SpecIssue::TargetViolatesConstraint { metric: "x".into() }));
    }

    #[test]
    fn target_outside_soft_constraint_is_allowed() {
        let g = GoalSpec::builder("g", "t")
            .objective("x", ObjectiveSense::Maximize)
            .target(10.0)
            .constraint("x", Comparator::Le, 6.0, false)
            .budget(1, 1, 1.0)
            .build();
        assert!(!g
            .validate()
            .iter()
            .any(|i| matches!(i, SpecIssue::TargetViolatesConstraint { .. })));
    }

    #[test]
    fn unbound_success_metric_flagged() {
        let g = GoalSpec::builder("g", "t")
            .objective("x", ObjectiveSense::Maximize)
            .budget(1, 1, 1.0)
            .success("typo_metric", Comparator::Ge, 1.0)
            .build();
        assert!(g.validate().contains(&SpecIssue::UnboundSuccessMetric {
            metric: "typo_metric".into()
        }));
    }

    #[test]
    fn duplicate_constraint_with_different_bound_flagged() {
        let g = GoalSpec::builder("g", "t")
            .objective("x", ObjectiveSense::Maximize)
            .constraint("x", Comparator::Le, 2.0, true)
            .constraint("x", Comparator::Le, 3.0, true)
            .budget(1, 1, 1.0)
            .build();
        assert!(g
            .validate()
            .contains(&SpecIssue::DuplicateConstraint { metric: "x".into() }));
    }

    #[test]
    fn negative_tolerance_flagged() {
        let g = GoalSpec::builder("g", "t")
            .objective("x", ObjectiveSense::Maximize)
            .constraint("x", Comparator::Within { tol: -0.5 }, 2.0, true)
            .budget(1, 1, 1.0)
            .build();
        assert!(g
            .validate()
            .contains(&SpecIssue::NegativeTolerance { metric: "x".into() }));
    }

    #[test]
    fn success_met_requires_all_criteria() {
        let g = valid_goal();
        let mut m = BTreeMap::new();
        m.insert("band_gap_eV".to_string(), 2.0);
        assert!(!g.success_met(&m));
        m.insert("band_gap_eV".to_string(), 2.7);
        assert!(g.success_met(&m));
    }

    #[test]
    fn empty_success_list_never_met() {
        let mut g = valid_goal();
        g.success.clear();
        let mut m = BTreeMap::new();
        m.insert("band_gap_eV".to_string(), 99.0);
        assert!(!g.success_met(&m), "vacuous success must not auto-complete");
    }

    #[test]
    fn comparators_evaluate() {
        assert!(Comparator::Le.holds(1.0, 2.0));
        assert!(!Comparator::Le.holds(3.0, 2.0));
        assert!(Comparator::Ge.holds(3.0, 2.0));
        assert!(Comparator::Within { tol: 0.5 }.holds(2.4, 2.0));
        assert!(!Comparator::Within { tol: 0.1 }.holds(2.4, 2.0));
    }

    #[test]
    fn goal_serde_roundtrip() {
        let g = valid_goal();
        let json = serde_json::to_string(&g).unwrap();
        let back: GoalSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(g, back);
    }
}
