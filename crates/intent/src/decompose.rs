//! AND/OR goal trees: dividing a campaign goal into facility-sized work.
//!
//! The Hierarchical composition pattern (Table 2, `M_mgr(M₁…Mₙ)`) "supports
//! divide-and-conquer strategies with centralized control". Its planning
//! artifact is the goal tree: AND nodes need *every* child (synthesize and
//! characterize and simulate), OR nodes need *any* child (three alternative
//! synthesis routes). Progress and remaining-effort roll up from leaves, so
//! a manager agent can always answer "how far along, and what is the cheap
//! path to done?" — without which delegation is blind.

use serde::{Deserialize, Serialize};

/// Index of a node in its [`GoalTree`]'s arena.
pub type NodeId = usize;

/// What a node demands of its children.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum NodeKind {
    /// All children must complete.
    And,
    /// At least one child must complete.
    Or,
    /// Executable unit of work with an effort estimate (abstract units).
    Leaf {
        /// Estimated effort to finish the leaf from scratch.
        effort: f64,
    },
}

/// One node of the tree.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GoalNode {
    /// Display title.
    pub title: String,
    /// AND / OR / Leaf.
    pub kind: NodeKind,
    /// Children (empty for leaves).
    pub children: Vec<NodeId>,
    /// Leaf progress in [0, 1]; interior nodes ignore this field.
    pub progress: f64,
}

/// An arena-allocated AND/OR decomposition rooted at node 0.
///
/// Arena construction (children can only reference already-created nodes,
/// and each node gets exactly one parent) makes cycles unrepresentable —
/// a goal that is its own subgoal is a planning bug the type structure
/// rules out.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GoalTree {
    nodes: Vec<GoalNode>,
}

impl GoalTree {
    /// Tree with a root of the given kind.
    pub fn new(root_title: impl Into<String>, kind: NodeKind) -> Self {
        GoalTree {
            nodes: vec![GoalNode {
                title: root_title.into(),
                kind,
                children: Vec::new(),
                progress: 0.0,
            }],
        }
    }

    /// The root's id (always 0).
    pub fn root(&self) -> NodeId {
        0
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tree has only the root.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }

    /// Borrow a node.
    pub fn node(&self, id: NodeId) -> &GoalNode {
        &self.nodes[id]
    }

    /// Add a child under `parent`; returns the new node's id. Panics if
    /// `parent` is a leaf — leaves are executable, not decomposable.
    pub fn add_child(
        &mut self,
        parent: NodeId,
        title: impl Into<String>,
        kind: NodeKind,
    ) -> NodeId {
        assert!(
            !matches!(self.nodes[parent].kind, NodeKind::Leaf { .. }),
            "cannot decompose a leaf"
        );
        let id = self.nodes.len();
        self.nodes.push(GoalNode {
            title: title.into(),
            kind,
            children: Vec::new(),
            progress: 0.0,
        });
        self.nodes[parent].children.push(id);
        id
    }

    /// Set a leaf's progress (clamped to [0, 1]). Panics on interior nodes.
    pub fn set_progress(&mut self, leaf: NodeId, progress: f64) {
        assert!(
            matches!(self.nodes[leaf].kind, NodeKind::Leaf { .. }),
            "progress is only settable on leaves"
        );
        self.nodes[leaf].progress = progress.clamp(0.0, 1.0);
    }

    /// Whether the subtree at `id` is complete.
    pub fn complete(&self, id: NodeId) -> bool {
        let node = &self.nodes[id];
        match node.kind {
            NodeKind::Leaf { .. } => node.progress >= 1.0,
            NodeKind::And => {
                !node.children.is_empty() && node.children.iter().all(|&c| self.complete(c))
            }
            NodeKind::Or => node.children.iter().any(|&c| self.complete(c)),
        }
    }

    /// Fractional progress of the subtree at `id` in [0, 1].
    ///
    /// AND: effort-weighted mean of children. OR: best child (the branch
    /// closest to done — the others will be abandoned). Leaves report
    /// their own progress. Empty interior nodes report 0: an undecomposed
    /// AND is unstarted work, not finished work.
    pub fn progress(&self, id: NodeId) -> f64 {
        let node = &self.nodes[id];
        match node.kind {
            NodeKind::Leaf { .. } => node.progress,
            NodeKind::And => {
                if node.children.is_empty() {
                    return 0.0;
                }
                let total: f64 = node.children.iter().map(|&c| self.effort(c)).sum();
                if total <= 0.0 {
                    return 0.0;
                }
                node.children
                    .iter()
                    .map(|&c| self.effort(c) * self.progress(c))
                    .sum::<f64>()
                    / total
            }
            NodeKind::Or => node
                .children
                .iter()
                .map(|&c| self.progress(c))
                .fold(0.0, f64::max),
        }
    }

    /// Total effort of the subtree (OR counts its *cheapest* branch —
    /// the plan is to do one of them).
    pub fn effort(&self, id: NodeId) -> f64 {
        let node = &self.nodes[id];
        match node.kind {
            NodeKind::Leaf { effort } => effort,
            NodeKind::And => node.children.iter().map(|&c| self.effort(c)).sum(),
            NodeKind::Or => node
                .children
                .iter()
                .map(|&c| self.effort(c))
                .fold(f64::INFINITY, f64::min)
                .min(f64::INFINITY),
        }
    }

    /// Remaining effort to complete the subtree: AND sums incomplete
    /// children; OR takes the cheapest *remaining* branch (preferring a
    /// branch already in progress when it is cheaper to finish).
    pub fn remaining_effort(&self, id: NodeId) -> f64 {
        let node = &self.nodes[id];
        match node.kind {
            NodeKind::Leaf { effort } => effort * (1.0 - node.progress),
            NodeKind::And => node
                .children
                .iter()
                .map(|&c| self.remaining_effort(c))
                .sum(),
            NodeKind::Or => {
                if node.children.is_empty() {
                    0.0
                } else {
                    node.children
                        .iter()
                        .map(|&c| self.remaining_effort(c))
                        .fold(f64::INFINITY, f64::min)
                }
            }
        }
    }

    /// The frontier: ids of incomplete leaves on viable paths — what a
    /// manager agent should be scheduling right now. For OR nodes only the
    /// cheapest-remaining branch contributes (the plan of record).
    pub fn frontier(&self, id: NodeId) -> Vec<NodeId> {
        let node = &self.nodes[id];
        match node.kind {
            NodeKind::Leaf { .. } => {
                if node.progress >= 1.0 {
                    Vec::new()
                } else {
                    vec![id]
                }
            }
            NodeKind::And => node
                .children
                .iter()
                .flat_map(|&c| self.frontier(c))
                .collect(),
            NodeKind::Or => {
                if self.complete(id) {
                    return Vec::new();
                }
                node.children
                    .iter()
                    .min_by(|&&a, &&b| {
                        self.remaining_effort(a)
                            .partial_cmp(&self.remaining_effort(b))
                            .unwrap_or(std::cmp::Ordering::Equal)
                    })
                    .map(|&best| self.frontier(best))
                    .unwrap_or_default()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Campaign = (synthesize AND characterize) where synthesis has two
    /// alternative routes (OR).
    fn campaign_tree() -> (GoalTree, NodeId, NodeId, NodeId) {
        let mut t = GoalTree::new("discover material", NodeKind::And);
        let synth = t.add_child(t.root(), "synthesize", NodeKind::Or);
        let route_a = t.add_child(synth, "solid-state route", NodeKind::Leaf { effort: 10.0 });
        let route_b = t.add_child(synth, "solution route", NodeKind::Leaf { effort: 4.0 });
        let charact = t.add_child(t.root(), "characterize", NodeKind::Leaf { effort: 6.0 });
        (t, route_a, route_b, charact)
    }

    #[test]
    fn fresh_tree_is_unstarted() {
        let (t, ..) = campaign_tree();
        assert_eq!(t.progress(t.root()), 0.0);
        assert!(!t.complete(t.root()));
    }

    #[test]
    fn or_completes_with_any_branch() {
        let (mut t, _route_a, route_b, charact) = campaign_tree();
        t.set_progress(route_b, 1.0);
        t.set_progress(charact, 1.0);
        assert!(t.complete(t.root()));
    }

    #[test]
    fn and_requires_all_children() {
        let (mut t, route_a, _route_b, _charact) = campaign_tree();
        t.set_progress(route_a, 1.0);
        assert!(!t.complete(t.root()), "characterization still missing");
    }

    #[test]
    fn effort_sums_and_and_minimizes_or() {
        let (t, ..) = campaign_tree();
        // OR = min(10, 4) = 4; AND = 4 + 6 = 10.
        assert_eq!(t.effort(t.root()), 10.0);
    }

    #[test]
    fn remaining_effort_tracks_progress() {
        let (mut t, _route_a, route_b, charact) = campaign_tree();
        t.set_progress(route_b, 0.5); // 2.0 left on the cheap route
        t.set_progress(charact, 0.5); // 3.0 left
        assert!((t.remaining_effort(t.root()) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn frontier_follows_cheapest_or_branch() {
        let (t, _route_a, route_b, charact) = campaign_tree();
        let f = t.frontier(t.root());
        assert_eq!(f, vec![route_b, charact]);
    }

    #[test]
    fn frontier_switches_branch_when_other_is_nearly_done() {
        let (mut t, route_a, _route_b, charact) = campaign_tree();
        // Route A (effort 10) is 90% done: 1.0 remaining < route B's 4.0.
        t.set_progress(route_a, 0.9);
        let f = t.frontier(t.root());
        assert_eq!(f, vec![route_a, charact]);
    }

    #[test]
    fn frontier_empty_when_complete() {
        let (mut t, _route_a, route_b, charact) = campaign_tree();
        t.set_progress(route_b, 1.0);
        t.set_progress(charact, 1.0);
        assert!(t.frontier(t.root()).is_empty());
    }

    #[test]
    fn progress_is_effort_weighted() {
        let (mut t, _route_a, route_b, charact) = campaign_tree();
        t.set_progress(route_b, 1.0); // OR subtree progress 1.0, effort 4
        t.set_progress(charact, 0.0); // effort 6
        let p = t.progress(t.root());
        assert!((p - 0.4).abs() < 1e-12, "4/(4+6) of the work done, got {p}");
    }

    #[test]
    #[should_panic(expected = "cannot decompose a leaf")]
    fn decomposing_a_leaf_panics() {
        let (mut t, route_a, ..) = campaign_tree();
        t.add_child(route_a, "sub", NodeKind::Leaf { effort: 1.0 });
    }

    #[test]
    #[should_panic(expected = "only settable on leaves")]
    fn progress_on_interior_panics() {
        let (mut t, ..) = campaign_tree();
        let root = t.root();
        t.set_progress(root, 0.5);
    }

    #[test]
    fn progress_clamped() {
        let (mut t, route_a, ..) = campaign_tree();
        t.set_progress(route_a, 7.0);
        assert_eq!(t.node(route_a).progress, 1.0);
        t.set_progress(route_a, -3.0);
        assert_eq!(t.node(route_a).progress, 0.0);
    }

    #[test]
    fn empty_and_reports_zero_progress_and_incomplete() {
        let t = GoalTree::new("empty", NodeKind::And);
        assert_eq!(t.progress(t.root()), 0.0);
        assert!(!t.complete(t.root()));
        assert!(t.is_empty());
    }

    #[test]
    fn tree_serde_roundtrip() {
        let (t, ..) = campaign_tree();
        let json = serde_json::to_string(&t).unwrap();
        let back: GoalTree = serde_json::from_str(&json).unwrap();
        assert_eq!(back.len(), t.len());
        assert_eq!(back.effort(back.root()), t.effort(t.root()));
    }
}
