//! Compilation from intent to executable machinery.
//!
//! Table 1's transition to the Optimizing level "needs objective
//! specification" and the Intelligent level "demands reasoning engines" —
//! but both consume the *same artifact*: a scorer `J` over measured
//! metrics. [`compile`] turns a validated [`GoalSpec`] into that scorer
//! plus the governance [`GateSpec`]s that §4.1's physical-risk argument
//! requires (budgets and hard bounds enforced outside the optimizer, so a
//! misbehaving `Ω` cannot optimize its way past a safety limit).

use crate::goal::{Comparator, GoalSpec, ObjectiveSense, SpecIssue};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Weight applied to each unit of soft-constraint violation in the score.
/// Large enough that no realistic objective gain pays for a violation.
pub const PENALTY_WEIGHT: f64 = 100.0;

/// What a governance gate checks. String-keyed so the governance engine
/// can consume gates without a crate dependency on intent.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum GateKind {
    /// Total physical samples consumed must stay ≤ this.
    SampleBudget(u64),
    /// Total abstract cost units must stay ≤ this.
    CostBudget(u64),
    /// Simulated wall-clock hours must stay ≤ this.
    WallClock(f64),
    /// A hard metric bound: halt if violated.
    MetricBound {
        /// Gated metric.
        metric: String,
        /// Comparison that must hold.
        comparator: Comparator,
        /// Bound value.
        bound: f64,
    },
}

/// One enforceable guardrail derived from the goal.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GateSpec {
    /// Gate name (audit-trail key).
    pub name: String,
    /// What it checks.
    pub kind: GateKind,
}

/// An executable, direction-normalized scorer compiled from a goal.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompiledGoal {
    spec: GoalSpec,
    gates: Vec<GateSpec>,
}

impl CompiledGoal {
    /// The source specification.
    pub fn spec(&self) -> &GoalSpec {
        &self.spec
    }

    /// Guardrail gates for the governance engine.
    pub fn gates(&self) -> &[GateSpec] {
        &self.gates
    }

    /// Score a set of measured metrics. Higher is always better
    /// (minimization goals are negated), soft-constraint violations
    /// subtract `PENALTY_WEIGHT × violation`, and a missing objective
    /// metric scores `-∞` — an experiment that failed to measure the
    /// objective produced no usable information.
    pub fn score(&self, metrics: &BTreeMap<String, f64>) -> f64 {
        let Some(&raw) = metrics.get(&self.spec.objective.metric) else {
            return f64::NEG_INFINITY;
        };
        let mut s = match self.spec.objective.sense {
            ObjectiveSense::Maximize => raw,
            ObjectiveSense::Minimize => -raw,
        };
        for c in self.spec.constraints.iter().filter(|c| !c.hard) {
            if let Some(&v) = metrics.get(&c.metric) {
                let violation = match c.comparator {
                    Comparator::Le => (v - c.bound).max(0.0),
                    Comparator::Ge => (c.bound - v).max(0.0),
                    Comparator::Within { tol } => ((v - c.bound).abs() - tol).max(0.0),
                };
                s -= PENALTY_WEIGHT * violation;
            }
        }
        s
    }

    /// Check hard gates against current metrics and consumption. Returns
    /// the names of violated gates (empty = all clear).
    pub fn violated_gates(
        &self,
        metrics: &BTreeMap<String, f64>,
        samples_used: u64,
        cost_used: u64,
        wall_hours: f64,
    ) -> Vec<String> {
        let mut violated = Vec::new();
        for gate in &self.gates {
            let bad = match &gate.kind {
                GateKind::SampleBudget(max) => samples_used > *max,
                GateKind::CostBudget(max) => cost_used > *max,
                GateKind::WallClock(max) => wall_hours > *max,
                GateKind::MetricBound {
                    metric,
                    comparator,
                    bound,
                } => metrics
                    .get(metric)
                    .is_some_and(|&v| !comparator.holds(v, *bound)),
            };
            if bad {
                violated.push(gate.name.clone());
            }
        }
        violated
    }

    /// Whether the goal's aspiration target has been reached.
    pub fn target_reached(&self, metrics: &BTreeMap<String, f64>) -> bool {
        match (
            self.spec.objective.target,
            metrics.get(&self.spec.objective.metric),
        ) {
            (Some(t), Some(&v)) => match self.spec.objective.sense {
                ObjectiveSense::Maximize => v >= t,
                ObjectiveSense::Minimize => v <= t,
            },
            _ => false,
        }
    }
}

/// Compile a goal, refusing invalid specs — the "validate before you
/// spend" gate. The compiled artifact carries one gate per budget line
/// plus one per hard constraint.
pub fn compile(spec: &GoalSpec) -> Result<CompiledGoal, Vec<SpecIssue>> {
    let issues = spec.validate();
    if !issues.is_empty() {
        return Err(issues);
    }
    let mut gates = vec![
        GateSpec {
            name: format!("{}/samples", spec.id),
            kind: GateKind::SampleBudget(spec.budget.max_samples),
        },
        GateSpec {
            name: format!("{}/cost", spec.id),
            kind: GateKind::CostBudget(spec.budget.max_cost_units),
        },
        GateSpec {
            name: format!("{}/wall", spec.id),
            kind: GateKind::WallClock(spec.budget.max_wall_hours),
        },
    ];
    for c in spec.constraints.iter().filter(|c| c.hard) {
        gates.push(GateSpec {
            name: format!("{}/bound/{}", spec.id, c.metric),
            kind: GateKind::MetricBound {
                metric: c.metric.clone(),
                comparator: c.comparator,
                bound: c.bound,
            },
        });
    }
    Ok(CompiledGoal {
        spec: spec.clone(),
        gates,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::goal::GoalSpec;

    fn goal() -> GoalSpec {
        GoalSpec::builder("g1", "maximize band gap, keep toxicity low")
            .objective("band_gap_eV", ObjectiveSense::Maximize)
            .target(3.0)
            .constraint("toxicity", Comparator::Le, 0.1, true)
            .constraint("cost_per_sample", Comparator::Le, 50.0, false)
            .budget(500, 100_000, 336.0)
            .success("band_gap_eV", Comparator::Ge, 2.5)
            .build()
    }

    fn metrics(pairs: &[(&str, f64)]) -> BTreeMap<String, f64> {
        pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    #[test]
    fn invalid_spec_does_not_compile() {
        let bad = GoalSpec::builder("", "").build();
        let err = compile(&bad).unwrap_err();
        assert!(!err.is_empty());
    }

    #[test]
    fn gates_cover_budgets_and_hard_constraints_only() {
        let cg = compile(&goal()).unwrap();
        assert_eq!(cg.gates().len(), 4); // 3 budgets + 1 hard bound
        assert!(cg.gates().iter().any(|g| g.name == "g1/bound/toxicity"));
        assert!(!cg
            .gates()
            .iter()
            .any(|g| g.name.contains("cost_per_sample")));
    }

    #[test]
    fn score_rewards_objective_direction() {
        let cg = compile(&goal()).unwrap();
        let low = cg.score(&metrics(&[("band_gap_eV", 1.0)]));
        let high = cg.score(&metrics(&[("band_gap_eV", 2.0)]));
        assert!(high > low);
    }

    #[test]
    fn minimize_goals_are_negated() {
        let g = GoalSpec::builder("g2", "minimize defects")
            .objective("defect_density", ObjectiveSense::Minimize)
            .budget(10, 10, 10.0)
            .build();
        let cg = compile(&g).unwrap();
        let few = cg.score(&metrics(&[("defect_density", 1.0)]));
        let many = cg.score(&metrics(&[("defect_density", 5.0)]));
        assert!(few > many);
    }

    #[test]
    fn soft_violation_penalized_but_not_fatal() {
        let cg = compile(&goal()).unwrap();
        let clean = cg.score(&metrics(&[("band_gap_eV", 2.0), ("cost_per_sample", 40.0)]));
        let pricey = cg.score(&metrics(&[("band_gap_eV", 2.0), ("cost_per_sample", 60.0)]));
        assert!(pricey < clean);
        assert!(pricey.is_finite());
        assert!((clean - pricey - PENALTY_WEIGHT * 10.0).abs() < 1e-9);
    }

    #[test]
    fn missing_objective_metric_scores_neg_infinity() {
        let cg = compile(&goal()).unwrap();
        assert_eq!(cg.score(&metrics(&[("toxicity", 0.01)])), f64::NEG_INFINITY);
    }

    #[test]
    fn budget_gates_trip_on_overconsumption() {
        let cg = compile(&goal()).unwrap();
        let m = metrics(&[("band_gap_eV", 1.0)]);
        assert!(cg.violated_gates(&m, 100, 100, 1.0).is_empty());
        let v = cg.violated_gates(&m, 501, 100, 1.0);
        assert_eq!(v, vec!["g1/samples".to_string()]);
        let v = cg.violated_gates(&m, 0, 100_001, 999.0);
        assert_eq!(v, vec!["g1/cost".to_string(), "g1/wall".to_string()]);
    }

    #[test]
    fn hard_metric_gate_trips_on_violation() {
        let cg = compile(&goal()).unwrap();
        let v = cg.violated_gates(&metrics(&[("toxicity", 0.5)]), 0, 0, 0.0);
        assert_eq!(v, vec!["g1/bound/toxicity".to_string()]);
    }

    #[test]
    fn unmeasured_hard_metric_does_not_trip() {
        // A gate on a metric nobody measured yet must not halt the
        // campaign — it halts on *violation*, not absence.
        let cg = compile(&goal()).unwrap();
        assert!(cg.violated_gates(&metrics(&[]), 0, 0, 0.0).is_empty());
    }

    #[test]
    fn target_reached_respects_sense() {
        let cg = compile(&goal()).unwrap();
        assert!(!cg.target_reached(&metrics(&[("band_gap_eV", 2.9)])));
        assert!(cg.target_reached(&metrics(&[("band_gap_eV", 3.1)])));
    }

    #[test]
    fn compiled_goal_serde_roundtrip() {
        let cg = compile(&goal()).unwrap();
        let json = serde_json::to_string(&cg).unwrap();
        let back: CompiledGoal = serde_json::from_str(&json).unwrap();
        assert_eq!(cg, back);
    }
}
