//! # evoflow-intent — formal representation of scientific intent
//!
//! The paper's future-work list (§8) names "the development of formal
//! representations for scientific intent" as a prerequisite for workflows
//! that "reason about scientific goals, resources, and uncertainty". An
//! autonomous campaign cannot be steered by a prose paragraph: the goal
//! must be a machine-checkable artifact that (a) validates before any
//! sample is spent, (b) compiles into the cost function `J` the Optimizing
//! level minimizes (Table 1), and (c) yields the guardrail gates the
//! governance engine enforces (§4.1's high-stakes-environment argument).
//!
//! * [`goal`] — [`goal::GoalSpec`]: objective, constraints, budgets,
//!   deadline and success criteria, with structural validation that
//!   rejects contradictory or vacuous specifications.
//! * [`hypothesis`] — falsifiable hypotheses with an evidence ledger:
//!   log-Bayes-factor accounting from prior to verdict, so "AI-generated
//!   hypotheses" (§5.2's hypothesis agents) carry auditable support.
//! * [`decompose`] — AND/OR goal trees: divide a campaign goal into
//!   facility-sized subgoals with progress and remaining-effort rollup
//!   (the hierarchical composition pattern's planning artifact).
//! * [`compile`](mod@compile) — [`compile::compile`](fn@compile::compile): GoalSpec → executable scorer
//!   (the `J` in `argmin J`) + governance gate specs, the bridge from
//!   intent to the optimizing/intelligent machinery.

pub mod compile;
pub mod decompose;
pub mod goal;
pub mod hypothesis;

pub use compile::{compile, CompiledGoal, GateKind, GateSpec};
pub use decompose::{GoalTree, NodeId, NodeKind};
pub use goal::{
    BudgetSpec, Comparator, ConstraintSpec, GoalSpec, ObjectiveSense, ObjectiveSpec, SpecIssue,
    SuccessCriterion,
};
pub use hypothesis::{Evidence, EvidenceLedger, FalsifiabilityIssue, Hypothesis, Verdict};
