//! Falsifiable hypotheses with auditable evidence accounting.
//!
//! §4.2 demands that intelligent workflows make "provenance models …
//! capture feedback mechanisms, learned behaviors, and context-sensitive
//! decisions". A hypothesis agent's output is only scientific if it can be
//! *refuted* — so hypotheses here must pass a falsifiability check before
//! any facility time is spent on them, and every observation updates an
//! explicit log-Bayes-factor ledger from prior to verdict (the Jeffreys
//! scale), giving §4.2's "accountability, transparency, explainability"
//! a concrete data structure.

use crate::goal::Comparator;
use serde::{Deserialize, Serialize};

/// A variable the hypothesis talks about.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Variable {
    /// Name in the campaign vocabulary.
    pub name: String,
    /// Whether an experiment can set it (independent variable). A
    /// hypothesis with no manipulable variable cannot be tested by
    /// intervention — only observed, which weakens causal claims (§4.1's
    /// causality-beyond-correlation requirement).
    pub manipulable: bool,
}

/// The testable prediction a hypothesis commits to.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Prediction {
    /// Measured metric the prediction constrains.
    pub metric: String,
    /// Direction/shape of the predicted effect.
    pub comparator: Comparator,
    /// Predicted bound.
    pub value: f64,
}

/// Why a hypothesis fails the falsifiability gate.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum FalsifiabilityIssue {
    /// Statement text is empty.
    EmptyStatement,
    /// Prediction metric is empty — nothing measurable is claimed.
    NoMeasurableMetric,
    /// Predicted value is NaN/∞ — cannot be compared against data.
    NonFiniteValue,
    /// No manipulable variable — the hypothesis cannot be tested by a
    /// designed experiment.
    NoManipulableVariable,
    /// Tolerance so large the prediction is compatible with everything.
    VacuousTolerance,
}

/// Verdict thresholds on the posterior log-odds (natural log; ±ln 10 ≈
/// "strong" on the Jeffreys scale).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Verdict {
    /// Posterior log-odds > ln 10.
    Supported,
    /// Posterior log-odds < −ln 10.
    Refuted,
    /// In between: keep experimenting.
    Undecided,
}

/// One recorded observation and its evidential weight.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Evidence {
    /// What was observed (lands in provenance).
    pub description: String,
    /// Log Bayes factor: ln P(obs | H) − ln P(obs | ¬H). Positive
    /// supports the hypothesis.
    pub log_bf: f64,
}

/// Cumulative evidence for one hypothesis.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct EvidenceLedger {
    entries: Vec<Evidence>,
}

impl EvidenceLedger {
    /// Empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record an observation. Non-finite weights are rejected: corrupt
    /// evidence must not silently poison the posterior.
    pub fn record(&mut self, description: impl Into<String>, log_bf: f64) -> Result<(), String> {
        if !log_bf.is_finite() {
            return Err("non-finite log Bayes factor".into());
        }
        self.entries.push(Evidence {
            description: description.into(),
            log_bf,
        });
        Ok(())
    }

    /// Total accumulated log Bayes factor.
    pub fn total_log_bf(&self) -> f64 {
        self.entries.iter().map(|e| e.log_bf).sum()
    }

    /// Number of observations recorded.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no evidence has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All entries, in recording order.
    pub fn entries(&self) -> &[Evidence] {
        &self.entries
    }
}

/// A structured, falsifiable scientific hypothesis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Hypothesis {
    /// Stable identifier (provenance key).
    pub id: String,
    /// Prose statement.
    pub statement: String,
    /// Variables involved.
    pub variables: Vec<Variable>,
    /// The committed prediction.
    pub prediction: Prediction,
    /// Prior log-odds ln(P(H)/P(¬H)) before any evidence.
    pub prior_log_odds: f64,
    /// Evidence accumulated so far.
    pub ledger: EvidenceLedger,
}

impl Hypothesis {
    /// New hypothesis with an even prior (log-odds 0).
    pub fn new(
        id: impl Into<String>,
        statement: impl Into<String>,
        prediction: Prediction,
    ) -> Self {
        Hypothesis {
            id: id.into(),
            statement: statement.into(),
            variables: Vec::new(),
            prediction,
            prior_log_odds: 0.0,
            ledger: EvidenceLedger::new(),
        }
    }

    /// Add a variable.
    pub fn with_variable(mut self, name: impl Into<String>, manipulable: bool) -> Self {
        self.variables.push(Variable {
            name: name.into(),
            manipulable,
        });
        self
    }

    /// Set the prior log-odds.
    pub fn with_prior_log_odds(mut self, lo: f64) -> Self {
        self.prior_log_odds = lo;
        self
    }

    /// The falsifiability gate. Empty result = testable.
    pub fn falsifiability(&self) -> Vec<FalsifiabilityIssue> {
        let mut issues = Vec::new();
        if self.statement.trim().is_empty() {
            issues.push(FalsifiabilityIssue::EmptyStatement);
        }
        if self.prediction.metric.is_empty() {
            issues.push(FalsifiabilityIssue::NoMeasurableMetric);
        }
        if !self.prediction.value.is_finite() {
            issues.push(FalsifiabilityIssue::NonFiniteValue);
        }
        if !self.variables.iter().any(|v| v.manipulable) {
            issues.push(FalsifiabilityIssue::NoManipulableVariable);
        }
        if let Comparator::Within { tol } = self.prediction.comparator {
            // A tolerance wider than the predicted magnitude (and not a
            // near-zero prediction) excludes almost nothing.
            if tol.is_infinite() || (tol > 10.0 * self.prediction.value.abs().max(1.0)) {
                issues.push(FalsifiabilityIssue::VacuousTolerance);
            }
        }
        issues
    }

    /// Whether the falsifiability gate passes.
    pub fn is_falsifiable(&self) -> bool {
        self.falsifiability().is_empty()
    }

    /// Posterior log-odds after all recorded evidence.
    pub fn posterior_log_odds(&self) -> f64 {
        self.prior_log_odds + self.ledger.total_log_bf()
    }

    /// Posterior probability P(H | evidence).
    pub fn posterior_probability(&self) -> f64 {
        let lo = self.posterior_log_odds();
        1.0 / (1.0 + (-lo).exp())
    }

    /// Current verdict on the Jeffreys-scale thresholds.
    pub fn verdict(&self) -> Verdict {
        let strong = 10.0f64.ln();
        let lo = self.posterior_log_odds();
        if lo > strong {
            Verdict::Supported
        } else if lo < -strong {
            Verdict::Refuted
        } else {
            Verdict::Undecided
        }
    }

    /// Record one observation of `metric = observed` against the
    /// prediction: evidence weight is positive when the prediction holds,
    /// negative otherwise, scaled by `strength` (the assay's
    /// discriminative power; 1.0 ≈ a decade of odds per observation).
    pub fn observe(&mut self, observed: f64, strength: f64) -> Result<Verdict, String> {
        if !observed.is_finite() || !strength.is_finite() || strength <= 0.0 {
            return Err("observation and strength must be finite and positive".into());
        }
        let holds = self
            .prediction
            .comparator
            .holds(observed, self.prediction.value);
        let weight = if holds { strength } else { -strength } * 10.0f64.ln() / 2.0;
        self.ledger.record(
            format!(
                "{} observed {} (prediction {})",
                self.prediction.metric,
                observed,
                if holds { "held" } else { "violated" }
            ),
            weight,
        )?;
        Ok(self.verdict())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn testable() -> Hypothesis {
        Hypothesis::new(
            "h1",
            "Ni-rich ratio raises the band gap above 2 eV",
            Prediction {
                metric: "band_gap_eV".into(),
                comparator: Comparator::Ge,
                value: 2.0,
            },
        )
        .with_variable("ni_fraction", true)
        .with_variable("band_gap_eV", false)
    }

    #[test]
    fn well_formed_hypothesis_is_falsifiable() {
        assert!(testable().is_falsifiable());
    }

    #[test]
    fn missing_manipulable_variable_is_flagged() {
        let h = Hypothesis::new(
            "h",
            "s",
            Prediction {
                metric: "m".into(),
                comparator: Comparator::Ge,
                value: 1.0,
            },
        );
        assert!(h
            .falsifiability()
            .contains(&FalsifiabilityIssue::NoManipulableVariable));
    }

    #[test]
    fn non_finite_prediction_flagged() {
        let mut h = testable();
        h.prediction.value = f64::NAN;
        assert!(h
            .falsifiability()
            .contains(&FalsifiabilityIssue::NonFiniteValue));
    }

    #[test]
    fn vacuous_tolerance_flagged() {
        let mut h = testable();
        h.prediction.comparator = Comparator::Within { tol: 1e9 };
        assert!(h
            .falsifiability()
            .contains(&FalsifiabilityIssue::VacuousTolerance));
    }

    #[test]
    fn supporting_observations_converge_to_supported() {
        let mut h = testable();
        assert_eq!(h.verdict(), Verdict::Undecided);
        for _ in 0..3 {
            h.observe(2.5, 1.0).unwrap();
        }
        assert_eq!(h.verdict(), Verdict::Supported);
        assert!(h.posterior_probability() > 0.9);
    }

    #[test]
    fn contradicting_observations_converge_to_refuted() {
        let mut h = testable();
        for _ in 0..3 {
            h.observe(1.0, 1.0).unwrap();
        }
        assert_eq!(h.verdict(), Verdict::Refuted);
        assert!(h.posterior_probability() < 0.1);
    }

    #[test]
    fn mixed_evidence_stays_undecided() {
        let mut h = testable();
        h.observe(2.5, 1.0).unwrap();
        h.observe(1.0, 1.0).unwrap();
        assert_eq!(h.verdict(), Verdict::Undecided);
        assert_eq!(h.ledger.len(), 2);
    }

    #[test]
    fn prior_shifts_the_verdict_threshold() {
        let mut skeptical = testable().with_prior_log_odds(-10.0f64.ln() * 2.0);
        // Two supporting decades of evidence only cancel the skeptical prior.
        for _ in 0..4 {
            skeptical.observe(2.5, 1.0).unwrap();
        }
        assert_eq!(skeptical.verdict(), Verdict::Undecided);
    }

    #[test]
    fn non_finite_evidence_rejected() {
        let mut h = testable();
        assert!(h.observe(f64::NAN, 1.0).is_err());
        assert!(h.observe(2.0, f64::INFINITY).is_err());
        assert!(h.ledger.is_empty());
        assert!(h.ledger.record("bad", f64::NAN).is_err());
    }

    #[test]
    fn ledger_entries_preserve_order_and_descriptions() {
        let mut h = testable();
        h.observe(2.5, 1.0).unwrap();
        h.observe(0.5, 1.0).unwrap();
        let entries = h.ledger.entries();
        assert!(entries[0].description.contains("held"));
        assert!(entries[1].description.contains("violated"));
    }

    #[test]
    fn hypothesis_serde_roundtrip() {
        let mut h = testable();
        h.observe(2.5, 1.0).unwrap();
        let json = serde_json::to_string(&h).unwrap();
        let back: Hypothesis = serde_json::from_str(&json).unwrap();
        assert_eq!(h, back);
    }
}
