//! Property-based tests for intent invariants.

use evoflow_intent::{
    compile, Comparator, GoalSpec, GoalTree, Hypothesis, NodeKind, ObjectiveSense,
};
use proptest::prelude::*;
use std::collections::BTreeMap;

fn arb_sense() -> impl Strategy<Value = ObjectiveSense> {
    prop_oneof![
        Just(ObjectiveSense::Maximize),
        Just(ObjectiveSense::Minimize)
    ]
}

proptest! {
    /// A compiled goal's score is monotone in the objective metric, in the
    /// specified direction, for any constraint-free goal.
    #[test]
    fn score_monotone_in_objective(sense in arb_sense(), a in -100.0f64..100.0, b in -100.0f64..100.0) {
        prop_assume!(a != b);
        let g = GoalSpec::builder("g", "t")
            .objective("m", sense)
            .budget(10, 10, 10.0)
            .build();
        let cg = compile(&g).unwrap();
        let mk = |v: f64| {
            let mut m = BTreeMap::new();
            m.insert("m".to_string(), v);
            m
        };
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        match sense {
            ObjectiveSense::Maximize => prop_assert!(cg.score(&mk(hi)) > cg.score(&mk(lo))),
            ObjectiveSense::Minimize => prop_assert!(cg.score(&mk(hi)) < cg.score(&mk(lo))),
        }
    }

    /// Contradictory Le/Ge pairs are always detected, and compile refuses.
    #[test]
    fn contradictions_always_detected(le in -50.0f64..50.0, gap in 0.001f64..100.0) {
        let g = GoalSpec::builder("g", "t")
            .objective("x", ObjectiveSense::Maximize)
            .constraint("x", Comparator::Le, le, true)
            .constraint("x", Comparator::Ge, le + gap, true)
            .budget(1, 1, 1.0)
            .build();
        prop_assert!(!g.is_valid());
        prop_assert!(compile(&g).is_err());
    }

    /// Hypothesis posterior log-odds equals prior + sum of recorded
    /// weights, for any observation sequence; probability stays in (0, 1).
    #[test]
    fn posterior_is_prior_plus_evidence(
        prior in -5.0f64..5.0,
        obs in proptest::collection::vec((-10.0f64..10.0, 0.1f64..2.0), 0..20),
    ) {
        let mut h = Hypothesis::new(
            "h", "s",
            evoflow_intent::hypothesis::Prediction {
                metric: "m".into(),
                comparator: Comparator::Ge,
                value: 0.0,
            },
        )
        .with_variable("v", true)
        .with_prior_log_odds(prior);
        for (v, s) in &obs {
            h.observe(*v, *s).unwrap();
        }
        let expected = prior + h.ledger.total_log_bf();
        prop_assert!((h.posterior_log_odds() - expected).abs() < 1e-9);
        let p = h.posterior_probability();
        prop_assert!(p > 0.0 && p < 1.0);
    }

    /// Goal-tree progress is always within [0, 1], remaining effort is
    /// non-negative, and completion implies progress 1.0 for AND-of-leaves
    /// trees of any width.
    #[test]
    fn tree_progress_bounded(
        efforts in proptest::collection::vec(0.1f64..100.0, 1..20),
        progresses in proptest::collection::vec(0.0f64..=1.0, 1..20),
    ) {
        let mut t = GoalTree::new("root", NodeKind::And);
        let n = efforts.len().min(progresses.len());
        let mut leaves = Vec::new();
        for e in efforts.iter().take(n) {
            leaves.push(t.add_child(t.root(), "leaf", NodeKind::Leaf { effort: *e }));
        }
        for (leaf, p) in leaves.iter().zip(progresses.iter().take(n)) {
            t.set_progress(*leaf, *p);
        }
        let prog = t.progress(t.root());
        prop_assert!((0.0..=1.0 + 1e-12).contains(&prog));
        prop_assert!(t.remaining_effort(t.root()) >= -1e-12);
        if progresses.iter().take(n).all(|&p| p >= 1.0) {
            prop_assert!(t.complete(t.root()));
            prop_assert!((prog - 1.0).abs() < 1e-9);
        } else {
            prop_assert!(!t.complete(t.root()));
        }
    }

    /// OR remaining effort never exceeds any single branch's remaining
    /// effort.
    #[test]
    fn or_remaining_is_min(efforts in proptest::collection::vec(0.1f64..100.0, 1..10)) {
        let mut t = GoalTree::new("root", NodeKind::Or);
        for e in &efforts {
            t.add_child(t.root(), "branch", NodeKind::Leaf { effort: *e });
        }
        let min = efforts.iter().cloned().fold(f64::INFINITY, f64::min);
        prop_assert!((t.remaining_effort(t.root()) - min).abs() < 1e-9);
    }
}
