//! Property battery for the cooperative ensemble planner's audit
//! contract:
//!
//! 1. **Replay byte-identity across seeds** — an ensemble campaign's
//!    recorded ledger (which carries the full cooperative transcript:
//!    ACL messages, tournament matches, meta-reviews) replays to the
//!    live report byte-for-byte, through both the JSON and the EVWL
//!    binary encodings.
//! 2. **Fleet invariance** — ensemble-planned fleets are byte-identical
//!    at 1, 2, and 4 threads.
//! 3. **Kill + resume seams** — a coordinator crash at any commit
//!    boundary resumes to the uninterrupted fleet ledger exactly.
//! 4. **Protocol-message serde** — the ACL messages the ensemble
//!    exchanges round-trip through serde and the EVFW wire frame, and
//!    the transcript in a recorded ledger only ever uses stable
//!    performative labels.

use evoflow_agents::Pattern;
use evoflow_core::{
    replay_fleet_ledger, replay_ledger, replay_ledger_bytes, resume_campaign_fleet_recorded,
    run_campaign, run_campaign_fleet_recorded, run_campaign_fleet_recorded_until,
    run_campaign_recorded, CampaignConfig, CampaignEvent, CampaignLedger, Cell, FleetConfig,
    LedgerEncoding, MaterialsSpace, PlannerKind,
};
use evoflow_protocol::{decode_frame, encode_frame, AclMessage, Frame, FrameKind, Performative};
use evoflow_sim::SimDuration;
use evoflow_sm::IntelligenceLevel;
use proptest::prelude::*;

fn space() -> MaterialsSpace {
    MaterialsSpace::generate(3, 8, 20260610)
}

fn ensemble_config(pattern: Pattern, seed: u64) -> CampaignConfig {
    let mut cfg = CampaignConfig::for_cell(Cell::new(IntelligenceLevel::Learning, pattern), seed)
        .with_planner(PlannerKind::ensemble());
    cfg.horizon = SimDuration::from_days(1);
    cfg.coordination = Some(evoflow_core::CoordinationMode::Autonomous);
    cfg.max_experiments = 1_500;
    cfg
}

fn ensemble_fleet(master_seed: u64, campaigns: usize) -> FleetConfig {
    let mut cfg = FleetConfig::new(master_seed);
    cfg.horizon = SimDuration::from_days(1);
    cfg.max_experiments = 1_000;
    for i in 0..campaigns {
        let mut c = ensemble_config(
            if i % 2 == 0 {
                Pattern::Single
            } else {
                Pattern::Mesh
            },
            0,
        );
        c.horizon = cfg.horizon;
        c.max_experiments = cfg.max_experiments;
        cfg.push_campaign(c);
    }
    cfg
}

fn transcript_counts(ledger: &CampaignLedger) -> (usize, usize, usize) {
    let mut msgs = 0;
    let mut matches = 0;
    let mut reviews = 0;
    for e in &ledger.events {
        match e {
            CampaignEvent::EnsembleMessage { .. } => msgs += 1,
            CampaignEvent::TournamentMatch { .. } => matches += 1,
            CampaignEvent::MetaReview { .. } => reviews += 1,
            _ => {}
        }
    }
    (msgs, matches, reviews)
}

/// The recorded cooperative transcript is non-trivial, replays to the
/// live report byte-for-byte, and survives the EVWL binary round trip —
/// for a spread of seeds and composition patterns.
#[test]
fn ensemble_transcript_replays_byte_identically_across_seeds() {
    let space = space();
    for (seed, pattern) in [
        (3u64, Pattern::Single),
        (17, Pattern::Mesh),
        (4242, Pattern::Pipeline),
    ] {
        let cfg = ensemble_config(pattern, seed);
        let (live, ledger) = run_campaign_recorded(&space, &cfg);
        let (msgs, matches, _) = transcript_counts(&ledger);
        assert!(msgs >= 8, "seed {seed}: transcript missing ACL messages");
        assert!(matches > 0, "seed {seed}: no tournament matches recorded");

        // Recording must not perturb the loop.
        assert_eq!(
            serde_json::to_string(&run_campaign(&space, &cfg)).expect("serialize"),
            serde_json::to_string(&live).expect("serialize"),
            "seed {seed}: recording changed the report"
        );

        // JSON replay.
        let replayed = replay_ledger(&ledger).expect("ledger replays");
        assert_eq!(
            serde_json::to_string(&replayed.report).expect("serialize"),
            serde_json::to_string(&live).expect("serialize"),
            "seed {seed}: replay diverged"
        );

        // EVWL binary round trip + replay straight from bytes.
        let bytes = ledger.to_bytes(LedgerEncoding::Binary);
        let decoded = CampaignLedger::from_bytes(&bytes).expect("EVWL decodes");
        assert_eq!(decoded, ledger, "seed {seed}: EVWL round-trip drift");
        let from_bytes = replay_ledger_bytes(&bytes).expect("EVWL replays");
        assert_eq!(
            serde_json::to_string(&from_bytes.report).expect("serialize"),
            serde_json::to_string(&live).expect("serialize"),
            "seed {seed}: EVWL replay diverged"
        );
    }
}

/// Ensemble fleets are a pure function of (space, config): byte-identical
/// merged ledgers at 1, 2, and 4 worker threads.
#[test]
fn ensemble_fleet_is_thread_count_invariant_at_1_2_4() {
    let space = space();
    let mut cfg = ensemble_fleet(31, 3);
    cfg.threads = 1;
    let (report_1, ledger_1) = run_campaign_fleet_recorded(&space, &cfg);
    let baseline = serde_json::to_string(&ledger_1).expect("serialize");
    for threads in [2usize, 4] {
        cfg.threads = threads;
        let (report_n, ledger_n) = run_campaign_fleet_recorded(&space, &cfg);
        assert_eq!(
            baseline,
            serde_json::to_string(&ledger_n).expect("serialize"),
            "ledger drift at {threads} threads"
        );
        assert_eq!(
            serde_json::to_string(&report_1).expect("serialize"),
            serde_json::to_string(&report_n).expect("serialize"),
            "report drift at {threads} threads"
        );
    }
    assert!(
        ledger_1
            .campaigns
            .iter()
            .all(|c| transcript_counts(c).0 > 0),
        "every fleet campaign carries a cooperative transcript"
    );
    let replayed = replay_fleet_ledger(&ledger_1).expect("fleet ledger replays");
    assert_eq!(
        serde_json::to_string(&replayed).expect("serialize"),
        serde_json::to_string(&report_1).expect("serialize")
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// A coordinator kill after any number of commits, resumed at an
    /// arbitrary thread count, reproduces the uninterrupted ensemble
    /// fleet — report and merged cooperative transcript — exactly.
    #[test]
    fn ensemble_fleet_survives_kill_and_resume(
        kill_after in 0usize..4,
        threads in 1usize..5,
        master_seed in 1u64..1_000,
    ) {
        let space = space();
        let mut cfg = ensemble_fleet(master_seed, 2);
        cfg.threads = threads;
        let (report, ledger) = run_campaign_fleet_recorded(&space, &cfg);
        let ckpt = run_campaign_fleet_recorded_until(&space, &cfg, kill_after);
        let (resumed_report, resumed_ledger) =
            resume_campaign_fleet_recorded(&space, &cfg, &ckpt).expect("same fleet");
        prop_assert_eq!(
            serde_json::to_string(&report).expect("serialize"),
            serde_json::to_string(&resumed_report).expect("serialize")
        );
        prop_assert_eq!(
            serde_json::to_string(&ledger).expect("serialize"),
            serde_json::to_string(&resumed_ledger).expect("serialize")
        );
    }
}

/// Every performative the ensemble speaks round-trips through serde and
/// the EVFW wire frame, and a recorded transcript only ever uses the
/// stable kebab-case labels.
#[test]
fn ensemble_protocol_messages_round_trip_and_labels_stay_stable() {
    let speakable = [
        Performative::Request,
        Performative::Agree,
        Performative::QueryRef,
        Performative::InformRef,
        Performative::Propose,
        Performative::AcceptProposal,
        Performative::Inform,
    ];
    for p in speakable {
        let msg = AclMessage::new(
            p,
            "coordinator",
            "generator",
            7,
            "evoflow/ensemble/1",
            "round-trip probe",
        );
        let json = serde_json::to_vec(&msg).expect("serializes");
        let back: AclMessage = serde_json::from_slice(&json).expect("deserializes");
        assert_eq!(back, msg, "{} serde drift", p.label());

        let frame = Frame {
            version: 1,
            kind: FrameKind::Acl,
            flags: 0,
            conversation: msg.conversation,
            payload: json.into(),
        };
        let bytes = encode_frame(&frame).expect("frames");
        let mut buf = bytes::BytesMut::from(&bytes[..]);
        let decoded = decode_frame(&mut buf).expect("decodes");
        assert_eq!(decoded, frame, "{} wire drift", p.label());
    }

    let labels: Vec<&str> = speakable.iter().map(|p| p.label()).collect();
    let space = space();
    let cfg = ensemble_config(Pattern::Single, 11);
    let (_, ledger) = run_campaign_recorded(&space, &cfg);
    for e in &ledger.events {
        if let CampaignEvent::EnsembleMessage { performative, .. } = e {
            assert!(
                labels.contains(&performative.as_ref()),
                "unknown performative label {performative:?} in transcript"
            );
        }
    }
}
