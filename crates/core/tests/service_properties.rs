//! Property tests for the multi-tenant service layer's contracts, over
//! arbitrary tenant mixes (ISSUE 6):
//!
//! 1. **Plan purity** — for arbitrary tenants, weights, quotas, pacing,
//!    and arrival traces, [`plan_service`] is deterministic, conserves
//!    submissions (admitted + rejected = submitted), dispatches every
//!    admission exactly once, and never exceeds any queue quota at any
//!    round.
//! 2. **Seed derivation** — admitted campaigns get distinct seeds,
//!    derived from the master seed by admission index.
//! 3. **Thread invariance** — the executed [`ServiceReport`] and merged
//!    ledger are identical at 1, 2, and 3 worker threads.
//! 4. **Crash transparency** — a service killed after any number of
//!    commits and resumed from its [`ServiceCheckpoint`] reproduces the
//!    uninterrupted report and merged ledger exactly.
//! 5. **Round-trip** — configs, plans, reports, and checkpoints survive
//!    serde.

use evoflow_core::{
    plan_service, resume_service, run_service, run_service_until, CampaignConfig, Cell,
    MaterialsSpace, ServiceCheckpoint, ServiceConfig, ServicePlan, ServiceReport, TenantSpec,
    SERVICE_SHARD_LABEL,
};
use evoflow_sim::{RngRegistry, SimDuration};
use proptest::prelude::*;

fn space() -> MaterialsSpace {
    MaterialsSpace::generate(3, 6, 9191)
}

/// Arbitrary service configs: 1..=4 tenants with arbitrary weights and
/// quotas (0 = "not declared" everywhere), a trace of up to 14
/// submissions over matrix corner cells — some naming a tenant that
/// does not exist — and arbitrary scheduler pacing.
fn arb_config() -> impl Strategy<Value = ServiceConfig> {
    (
        any::<u64>(),
        prop::collection::vec((0u32..4, 0usize..4, 0usize..6), 1..5),
        prop::collection::vec((0usize..5, 0usize..2), 0..15),
        0usize..6,
        0usize..4,
    )
        .prop_map(
            |(master_seed, tenant_knobs, submission_picks, ingest, dispatch)| {
                let mut cfg = ServiceConfig::new(master_seed);
                cfg.threads = 1;
                cfg.ingest_per_round = ingest;
                cfg.dispatch_per_round = dispatch;
                for (i, (weight, max_queued, max_admitted)) in tenant_knobs.iter().enumerate() {
                    cfg.push_tenant(
                        TenantSpec::new(format!("tenant-{i}"))
                            .with_weight(*weight)
                            .with_max_queued(*max_queued)
                            .with_max_admitted(*max_admitted),
                    );
                }
                let cells = [Cell::traditional_wms(), Cell::autonomous_science()];
                for (tenant_pick, cell_pick) in submission_picks {
                    // tenant_pick may exceed the tenant count: those
                    // submissions must be rejected as unknown, never lost.
                    let mut c = CampaignConfig::for_cell(cells[cell_pick], 0);
                    c.horizon = SimDuration::from_days(1);
                    c.max_experiments = 400;
                    cfg.submit(format!("tenant-{tenant_pick}"), c);
                }
                cfg
            },
        )
}

/// Plan-level invariants that must hold for every config.
fn plan_sanity(cfg: &ServiceConfig) -> ServicePlan {
    let plan = plan_service(cfg).expect("unique tenant names");
    // Conservation: nothing vanishes at the door.
    assert_eq!(
        plan.admitted.len() + plan.rejected.len(),
        cfg.submissions.len()
    );
    // Every admission is dispatched exactly once.
    let mut order = plan.dispatch_order.clone();
    order.sort_unstable();
    assert_eq!(order, (0..plan.admitted.len()).collect::<Vec<_>>());
    // Distinct derived seeds, matching the registry handshake.
    let reg = RngRegistry::new(cfg.master_seed);
    let mut seeds: Vec<u64> = plan.admitted.iter().map(|a| a.seed).collect();
    for (i, a) in plan.admitted.iter().enumerate() {
        assert_eq!(a.admission_index, i);
        assert_eq!(a.seed, reg.shard_seed(SERVICE_SHARD_LABEL, i as u64));
        assert!(a.dispatched_round >= a.admitted_round);
    }
    seeds.sort_unstable();
    seeds.dedup();
    assert_eq!(seeds.len(), plan.admitted.len());
    // Quotas hold at every round, per tenant.
    for tenant in &cfg.tenants {
        let quota = tenant.effective_max_queued();
        let cap = tenant.effective_max_admitted();
        assert!(
            plan.admitted
                .iter()
                .filter(|a| a.tenant == tenant.name)
                .count()
                <= cap,
            "admissions exceeded cap for {}",
            tenant.name
        );
        for round in 0..plan.rounds {
            let depth = plan
                .admitted
                .iter()
                .filter(|a| {
                    a.tenant == tenant.name
                        && a.admitted_round <= round
                        && a.dispatched_round > round
                })
                .count();
            assert!(
                depth <= quota,
                "queue depth {depth} > quota {quota} for {} at round {round}",
                tenant.name
            );
        }
    }
    // Slot accounting: every dispatch slot was received by exactly one
    // tenant, and only ever contended by tenants with backlog.
    let received: usize = plan.tenants.iter().map(|t| t.received_slots).sum();
    assert_eq!(received, plan.dispatch_order.len());
    for t in &plan.tenants {
        assert!(t.received_slots <= t.contended_slots || t.contended_slots == 0);
        assert!(t.admitted + t.rejected <= t.submitted + t.rejected);
    }
    plan
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Planning is pure: rerun identical, conservation, one dispatch per
    /// admission, quota bounds at every round, derived seeds.
    #[test]
    fn plan_is_pure_and_conserving(cfg in arb_config()) {
        let plan = plan_sanity(&cfg);
        prop_assert_eq!(&plan, &plan_service(&cfg).unwrap());
        // The plan round-trips through serde.
        let wire = serde_json::to_string(&plan).unwrap();
        let back: ServicePlan = serde_json::from_str(&wire).unwrap();
        prop_assert_eq!(&plan, &back);
    }

    /// Thread count never changes the report or the merged ledger.
    #[test]
    fn service_outputs_are_thread_count_invariant(cfg in arb_config()) {
        let space = space();
        let (baseline_report, baseline_ledger) = run_service(&space, &cfg).unwrap();
        for threads in [2usize, 3] {
            let mut c = cfg.clone();
            c.threads = threads;
            let (r, l) = run_service(&space, &c).unwrap();
            prop_assert_eq!(&r, &baseline_report);
            prop_assert_eq!(&l, &baseline_ledger);
        }
        // The report round-trips through serde.
        let wire = serde_json::to_string(&baseline_report).unwrap();
        let back: ServiceReport = serde_json::from_str(&wire).unwrap();
        prop_assert_eq!(&baseline_report, &back);
    }

    /// Killing the service after any number of commits and resuming from
    /// the (serde-round-tripped) checkpoint reproduces the uninterrupted
    /// outputs exactly.
    #[test]
    fn any_kill_point_resumes_to_identical_outputs(
        cfg in arb_config(),
        kill_after in 0usize..15,
    ) {
        let space = space();
        let (report, ledger) = run_service(&space, &cfg).unwrap();
        let ckpt = run_service_until(&space, &cfg, kill_after).unwrap();
        prop_assert!(ckpt.completed_count() <= kill_after.max(ckpt.completed.len()));
        let wire = serde_json::to_string(&ckpt).unwrap();
        let back: ServiceCheckpoint = serde_json::from_str(&wire).unwrap();
        prop_assert_eq!(&ckpt, &back);
        let (r, l) = resume_service(&space, &cfg, &back).unwrap();
        prop_assert_eq!(&r, &report);
        prop_assert_eq!(&l, &ledger);
    }

    /// Configs round-trip through serde, including tenants and traces.
    #[test]
    fn service_config_round_trips(cfg in arb_config()) {
        let wire = serde_json::to_string(&cfg).unwrap();
        let back: ServiceConfig = serde_json::from_str(&wire).unwrap();
        prop_assert_eq!(&cfg, &back);
    }
}
