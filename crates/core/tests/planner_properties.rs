//! Property tests for the Planner layer's determinism contract:
//!
//! 1. **Replay determinism** — every planner kind × composition pattern
//!    yields a byte-identical serialized [`CampaignReport`] when rerun
//!    with the same seed.
//! 2. **Default-planner equivalence** — an explicit
//!    `PlannerKind::for_level(cell)` override runs the same decision
//!    trace as the `None` default (only the label differs).
//! 3. **Fleet resume invariance** — fleets of planner-configured
//!    campaigns killed after any number of commits resume to the
//!    uninterrupted report, byte-for-byte, at several thread counts on
//!    both sides of the crash.

use evoflow_agents::Pattern;
use evoflow_core::{
    resume_campaign_fleet, run_campaign, run_campaign_fleet, run_campaign_fleet_until,
    CampaignConfig, Cell, FleetConfig, MaterialsSpace, PlannerKind,
};
use evoflow_sim::SimDuration;
use evoflow_sm::IntelligenceLevel;
use proptest::prelude::*;

fn space() -> MaterialsSpace {
    MaterialsSpace::generate(3, 8, 20260610)
}

fn all_planners() -> Vec<PlannerKind> {
    let mut kinds = PlannerKind::all_concrete();
    kinds.push(PlannerKind::meta());
    kinds.push(PlannerKind::ensemble());
    kinds
}

fn patterns() -> [Pattern; 5] {
    [
        Pattern::Single,
        Pattern::Pipeline,
        Pattern::Hierarchical,
        Pattern::Mesh,
        Pattern::Swarm { k: 4 },
    ]
}

fn planned_config(planner: PlannerKind, pattern: Pattern, seed: u64, days: u64) -> CampaignConfig {
    // Intelligence level is arbitrary once a planner is pinned; use the
    // frontier's autonomous coordination so campaigns iterate densely.
    let mut cfg = CampaignConfig::for_cell(Cell::new(IntelligenceLevel::Learning, pattern), seed)
        .with_planner(planner);
    cfg.horizon = SimDuration::from_days(days);
    cfg.coordination = Some(evoflow_core::CoordinationMode::Autonomous);
    cfg.max_experiments = 3_000;
    cfg
}

/// Exhaustive (not sampled): every planner × every composition pattern
/// replays byte-identically. Cheap enough to enumerate outright.
#[test]
fn every_planner_times_pattern_replays_byte_identically() {
    let space = space();
    for planner in all_planners() {
        for pattern in patterns() {
            let cfg = planned_config(planner.clone(), pattern, 11, 1);
            let a = serde_json::to_string(&run_campaign(&space, &cfg)).expect("serialize");
            let b = serde_json::to_string(&run_campaign(&space, &cfg)).expect("serialize");
            assert_eq!(a, b, "{} × {pattern:?} diverged on replay", planner.label());
        }
    }
}

/// The planner label lands in the cell label, so fleet aggregation never
/// folds differently-planned campaigns into one summary row.
#[test]
fn overridden_planner_is_visible_in_the_cell_label() {
    let space = space();
    let cfg = planned_config(PlannerKind::bandit(), Pattern::Single, 5, 1);
    let r = run_campaign(&space, &cfg);
    assert!(
        r.cell_label.contains("bandit-ucb1"),
        "label {:?} should name the planner",
        r.cell_label
    );
    let default = {
        let mut c =
            CampaignConfig::for_cell(Cell::new(IntelligenceLevel::Learning, Pattern::Single), 5);
        c.horizon = SimDuration::from_days(1);
        run_campaign(&space, &c)
    };
    assert!(!default.cell_label.contains('·'));
}

/// An explicit `for_level` override replays the very trace the `None`
/// default produces — the refactor's no-behavior-change guarantee,
/// checked for all five levels.
#[test]
fn explicit_default_planner_matches_implicit_default() {
    let space = space();
    for level in IntelligenceLevel::ALL {
        let mut base = CampaignConfig::for_cell(Cell::new(level, Pattern::Pipeline), 23);
        base.horizon = SimDuration::from_days(1);
        let implicit = run_campaign(&space, &base);
        let explicit = run_campaign(
            &space,
            &base.clone().with_planner(PlannerKind::for_level(level)),
        );
        // Labels differ (override is surfaced); the decision trace must not.
        assert_eq!(implicit.experiments, explicit.experiments, "{level:?}");
        assert_eq!(implicit.total_hits, explicit.total_hits, "{level:?}");
        assert_eq!(
            implicit.best_score.to_bits(),
            explicit.best_score.to_bits(),
            "{level:?}"
        );
        assert_eq!(implicit.tokens, explicit.tokens, "{level:?}");
    }
}

fn arb_planned_fleet() -> impl Strategy<Value = FleetConfig> {
    (
        any::<u64>(),
        prop::collection::vec(0usize..9, 1..5),
        1u64..3,
    )
        .prop_map(|(master_seed, picks, days)| {
            let kinds = all_planners();
            let mut cfg = FleetConfig::new(master_seed);
            cfg.horizon = SimDuration::from_days(days);
            cfg.max_experiments = 1_500;
            for pick in picks {
                let mut c = CampaignConfig::for_cell(
                    Cell::new(IntelligenceLevel::Learning, Pattern::Mesh),
                    0,
                );
                c.horizon = cfg.horizon;
                c.max_experiments = cfg.max_experiments;
                c.planner = Some(kinds[pick % kinds.len()].clone());
                cfg.push_campaign(c);
            }
            cfg
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Planner-configured fleets are thread-count invariant.
    #[test]
    fn planned_fleet_is_thread_count_invariant(mut cfg in arb_planned_fleet()) {
        let space = space();
        cfg.threads = 1;
        let serial = run_campaign_fleet(&space, &cfg);
        cfg.threads = 3;
        let parallel = run_campaign_fleet(&space, &cfg);
        prop_assert_eq!(
            serde_json::to_string(&serial).expect("serialize"),
            serde_json::to_string(&parallel).expect("serialize")
        );
    }

    /// Kill-and-resume stays byte-identical when every campaign carries a
    /// planner override.
    #[test]
    fn planned_fleet_resume_is_byte_identical(
        mut cfg in arb_planned_fleet(),
        kill_after in 0usize..4,
        threads in 1usize..4,
    ) {
        let space = space();
        cfg.threads = threads;
        let uninterrupted = run_campaign_fleet(&space, &cfg);
        let ckpt = run_campaign_fleet_until(&space, &cfg, kill_after);
        let resumed = resume_campaign_fleet(&space, &cfg, &ckpt).expect("same fleet");
        prop_assert_eq!(
            serde_json::to_string(&uninterrupted).expect("serialize"),
            serde_json::to_string(&resumed).expect("serialize")
        );
    }
}
