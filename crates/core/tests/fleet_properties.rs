//! Property tests for the fleet executor's three core contracts:
//!
//! 1. **Aggregation correctness** — `run_campaign_fleet` equals
//!    [`FleetReport::from_reports`] over independent *serial*
//!    `run_campaign` runs executed with the same derived shard seeds.
//! 2. **Thread-count invariance** — the report is identical at 1, 2, and
//!    3 workers for arbitrary fleet shapes.
//! 3. **Crash transparency** — a fleet killed after any number of
//!    commits and resumed from its [`FleetCheckpoint`] reproduces the
//!    uninterrupted report exactly, at 1, 2, and 4 threads on both sides
//!    of the crash.

use evoflow_core::fleet::FLEET_SHARD_LABEL;
use evoflow_core::{
    resume_campaign_fleet, run_campaign, run_campaign_fleet, run_campaign_fleet_until, Cell,
    FleetConfig, FleetReport, MaterialsSpace,
};
use evoflow_sim::{RngRegistry, SimDuration};
use proptest::prelude::*;

/// A strategy over small heterogeneous fleets (1..=5 campaigns drawn from
/// the corner cells of the evolution matrix).
fn arb_fleet() -> impl Strategy<Value = FleetConfig> {
    (
        any::<u64>(),
        prop::collection::vec(0usize..4, 1..5),
        1u64..3,
    )
        .prop_map(|(master_seed, cell_picks, days)| {
            let cells = [
                Cell::traditional_wms(),
                Cell::autonomous_science(),
                Cell::new(
                    evoflow_sm::IntelligenceLevel::Adaptive,
                    evoflow_agents::Pattern::Pipeline,
                ),
                Cell::new(
                    evoflow_sm::IntelligenceLevel::Learning,
                    evoflow_agents::Pattern::Mesh,
                ),
            ];
            let mut cfg = FleetConfig::new(master_seed);
            cfg.horizon = SimDuration::from_days(days);
            cfg.max_experiments = 2_000;
            for pick in cell_picks {
                cfg.push_cell(cells[pick], 1);
            }
            cfg
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The parallel fleet aggregation equals the fold of independent
    /// serial runs over the same derived seeds.
    #[test]
    fn fleet_equals_merged_serial_runs(mut cfg in arb_fleet()) {
        let space = MaterialsSpace::generate(3, 6, 77);

        // Serial reference: run each shard independently with the seed the
        // fleet derives, then fold with the public aggregation function.
        let reg = RngRegistry::new(cfg.master_seed);
        let serial_reports: Vec<_> = cfg
            .campaigns
            .iter()
            .enumerate()
            .map(|(i, c)| {
                let mut c = c.clone();
                c.seed = reg.shard_seed(FLEET_SHARD_LABEL, i as u64);
                run_campaign(&space, &c)
            })
            .collect();
        let reference = FleetReport::from_reports(cfg.master_seed, serial_reports);

        cfg.threads = 2;
        let fleet = run_campaign_fleet(&space, &cfg);
        prop_assert_eq!(&fleet, &reference);
    }

    /// Thread count never changes the report.
    #[test]
    fn fleet_report_is_thread_invariant(mut cfg in arb_fleet()) {
        let space = MaterialsSpace::generate(3, 6, 77);
        cfg.threads = 1;
        let one = run_campaign_fleet(&space, &cfg);
        cfg.threads = 3;
        let three = run_campaign_fleet(&space, &cfg);
        prop_assert_eq!(one, three);
    }

    /// Crash transparency: for any fleet shape, any kill point, and any
    /// thread count on either side of the crash, kill + checkpoint +
    /// resume reproduces the uninterrupted report exactly.
    #[test]
    fn killed_and_resumed_fleet_is_indistinguishable(
        mut cfg in arb_fleet(),
        kill_pick in any::<u32>(),
    ) {
        let space = MaterialsSpace::generate(3, 6, 77);
        cfg.threads = 1;
        let uninterrupted = run_campaign_fleet(&space, &cfg);
        // Kill after 0..=M commits (both extremes are legal crash states).
        let kill_after = kill_pick as usize % (cfg.campaigns.len() + 1);
        for (kill_threads, resume_threads) in [(1, 2), (2, 4), (4, 1)] {
            cfg.threads = kill_threads;
            let ckpt = run_campaign_fleet_until(&space, &cfg, kill_after);
            prop_assert!(ckpt.completed_count() <= kill_after);
            cfg.threads = resume_threads;
            let resumed = resume_campaign_fleet(&space, &cfg, &ckpt).expect("seeds match");
            prop_assert_eq!(&resumed, &uninterrupted);
        }
    }
}
