//! Property tests for the federated scheduling layer's contracts:
//!
//! 1. **Placement determinism** — for arbitrary fleet shapes, sites,
//!    policies, and outage seeds, the [`FederatedReport`] is identical
//!    at 1, 2, and 3 worker threads.
//! 2. **Crash transparency** — a federated fleet killed after any number
//!    of commits and resumed from its [`FederatedCheckpoint`] reproduces
//!    the uninterrupted report exactly.
//! 3. **Placement sanity** — every campaign lands on exactly one live,
//!    capacity-feasible facility; re-routed campaigns never land on the
//!    drained site; per-facility job counts sum to the fleet size.
//! 4. **Round-trip** — reports and checkpoints survive serde.

use evoflow_core::{
    resume_campaign_fleet_federated, run_campaign_fleet_federated,
    run_campaign_fleet_federated_until, Cell, FederatedConfig, FederatedReport, FleetConfig,
    PlacementPolicyKind, SiteSpec,
};
use evoflow_facility::FacilityKind;
use evoflow_sim::SimDuration;
use proptest::prelude::*;

fn space() -> evoflow_core::MaterialsSpace {
    evoflow_core::MaterialsSpace::generate(3, 6, 4242)
}

/// Arbitrary federated configs: 1..=5 campaigns over matrix corner
/// cells, 2..=4 sites of mixed capacity (kept large enough that every
/// demand fits somewhere), any policy, maybe an outage.
fn arb_config() -> impl Strategy<Value = FederatedConfig> {
    (
        any::<u64>(),
        prop::collection::vec(0usize..4, 1..5),
        0usize..3,
        prop::collection::vec(40u64..200, 2..4),
        any::<u64>(),
        0u64..120,
    )
        .prop_map(
            |(master_seed, cell_picks, policy_pick, site_nodes, outage_draw, arrival_mins)| {
                // The vendored proptest has no `prop::option`; odd draws
                // run outage-free, even draws seed an outage.
                let outage_seed = (outage_draw % 2 == 0).then_some(outage_draw / 2);
                let cells = [
                    Cell::traditional_wms(),
                    Cell::autonomous_science(),
                    Cell::new(
                        evoflow_sm::IntelligenceLevel::Adaptive,
                        evoflow_agents::Pattern::Pipeline,
                    ),
                    Cell::new(
                        evoflow_sm::IntelligenceLevel::Learning,
                        evoflow_agents::Pattern::Mesh,
                    ),
                ];
                let mut fleet = FleetConfig::new(master_seed);
                fleet.horizon = SimDuration::from_days(1);
                fleet.max_experiments = 2_000;
                for pick in cell_picks {
                    fleet.push_cell(cells[pick], 1);
                }
                let kinds = [FacilityKind::Hpc, FacilityKind::Cloud, FacilityKind::AiHub];
                let sites: Vec<SiteSpec> = site_nodes
                    .iter()
                    .enumerate()
                    .map(|(i, &nodes)| {
                        SiteSpec::new(format!("site-{i}"), kinds[i % kinds.len()]).with_nodes(nodes)
                    })
                    .collect();
                let policy = PlacementPolicyKind::all()[policy_pick];
                let mut cfg = FederatedConfig::new(fleet, policy, sites);
                cfg.inter_arrival = SimDuration::from_mins(arrival_mins);
                cfg.outage_seed = outage_seed;
                cfg
            },
        )
}

fn placement_sanity(cfg: &FederatedConfig, report: &FederatedReport) {
    assert_eq!(report.placements.len(), cfg.fleet.campaigns.len());
    let jobs: usize = report.facilities.iter().map(|f| f.jobs).sum();
    assert_eq!(jobs, cfg.fleet.campaigns.len());
    for p in &report.placements {
        let site = report
            .facilities
            .iter()
            .find(|f| f.name == p.facility)
            .expect("placed on a known facility");
        assert!(site.nodes >= p.nodes, "placed over capacity");
        assert!(p.start_hours >= p.arrival_hours);
        assert!(p.wait_hours >= 0.0);
        // Wait is arrival-to-start, including time stranded at a drained
        // site before a re-route.
        assert!((p.start_hours - p.arrival_hours - p.wait_hours).abs() < 1e-9);
        if p.rerouted {
            let downed = report.outage.expect("re-route implies outage");
            assert_ne!(
                p.facility, report.facilities[downed.site as usize].name,
                "re-routed campaign landed on the drained site"
            );
        }
    }
    let rerouted_away: usize = report.facilities.iter().map(|f| f.rerouted_away).sum();
    assert_eq!(
        rerouted_away,
        report.placements.iter().filter(|p| p.rerouted).count()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// Thread count never changes a federated report, for any policy,
    /// any federation shape, any outage seed.
    #[test]
    fn federated_report_is_thread_count_invariant(cfg in arb_config()) {
        let space = space();
        let mut serial = cfg.clone();
        serial.fleet.threads = 1;
        let baseline = run_campaign_fleet_federated(&space, &serial).unwrap();
        placement_sanity(&serial, &baseline);
        for threads in [2usize, 3] {
            let mut c = cfg.clone();
            c.fleet.threads = threads;
            let r = run_campaign_fleet_federated(&space, &c).unwrap();
            prop_assert_eq!(&r, &baseline);
        }
    }

    /// Killing the coordinator after any number of commits and resuming
    /// reproduces the uninterrupted report exactly.
    #[test]
    fn federated_resume_is_exact(cfg in arb_config(), kill_after in 0usize..6) {
        let space = space();
        let uninterrupted = run_campaign_fleet_federated(&space, &cfg).unwrap();
        let ckpt = run_campaign_fleet_federated_until(&space, &cfg, kill_after).unwrap();
        let resumed = resume_campaign_fleet_federated(&space, &cfg, &ckpt).unwrap();
        prop_assert_eq!(resumed, uninterrupted);
    }

    /// Reports and checkpoints survive serde round-trips, and a
    /// round-tripped checkpoint resumes to the identical report.
    #[test]
    fn federated_artifacts_round_trip(cfg in arb_config()) {
        let space = space();
        let report = run_campaign_fleet_federated(&space, &cfg).unwrap();
        let back: FederatedReport =
            serde_json::from_str(&serde_json::to_string(&report).unwrap()).unwrap();
        prop_assert_eq!(&back, &report);

        let ckpt = run_campaign_fleet_federated_until(&space, &cfg, 1).unwrap();
        let ckpt2: evoflow_core::FederatedCheckpoint =
            serde_json::from_str(&serde_json::to_string(&ckpt).unwrap()).unwrap();
        prop_assert_eq!(&ckpt2, &ckpt);
        let a = resume_campaign_fleet_federated(&space, &cfg, &ckpt).unwrap();
        let b = resume_campaign_fleet_federated(&space, &cfg, &ckpt2).unwrap();
        prop_assert_eq!(a, b);
    }
}
