//! Property tests for the batched hot-path emission contract (ISSUE 8):
//!
//! 1. **Observer indistinguishability** — for *every* planner kind, an
//!    observer that only implements `on_event` (the default `on_batch`
//!    loops for it) sees the exact same event stream, in the exact same
//!    order, as an observer that consumes whole batches — and both match
//!    the recorded `CampaignLedger`.
//! 2. **Batch shape** — flushes happen at iteration boundaries: every
//!    delivered batch is non-empty and the batch count matches the
//!    `EventBatch` counters the profiler reports.
//! 3. **Byte identity under batching** — the batched path replays to a
//!    byte-identical report and produces byte-identical `EVWL` wire
//!    bytes, including through the buffer-reuse fast path; fleet merges
//!    stay byte-identical at 1/2/4 threads and across a kill + resume
//!    seam.
//! 4. **Static metric keys** — `CampaignEvent::metric_key` is exactly
//!    the `"ledger.{kind}"` string the metrics sink used to allocate
//!    per event.

use evoflow_agents::Pattern;
use evoflow_core::{
    replay_ledger, resume_campaign_fleet_recorded, run_campaign_fleet_recorded,
    run_campaign_fleet_recorded_until, run_campaign_observed, run_campaign_recorded,
    CampaignConfig, CampaignEvent, CampaignLedger, Cell, EventBatch, FleetConfig, LedgerEncoding,
    LedgerObserver, MaterialsSpace, PlannerKind,
};
use evoflow_sim::SimDuration;
use evoflow_sm::IntelligenceLevel;

fn space() -> MaterialsSpace {
    MaterialsSpace::generate(3, 8, 20260808)
}

fn all_planners() -> Vec<PlannerKind> {
    let mut kinds = PlannerKind::all_concrete();
    kinds.push(PlannerKind::meta());
    kinds
}

fn planned_config(planner: PlannerKind, seed: u64) -> CampaignConfig {
    let mut cfg =
        CampaignConfig::for_cell(Cell::new(IntelligenceLevel::Learning, Pattern::Mesh), seed)
            .with_planner(planner);
    cfg.horizon = SimDuration::from_days(1);
    cfg.coordination = Some(evoflow_core::CoordinationMode::Autonomous);
    cfg.max_experiments = 2_000;
    cfg
}

/// Sees events one at a time through the default `on_batch`, exactly as
/// every observer did before batching existed.
#[derive(Default)]
struct PerEventLog {
    events: Vec<CampaignEvent>,
}

impl LedgerObserver for PerEventLog {
    fn on_event(&mut self, event: &CampaignEvent) {
        self.events.push(event.clone());
    }
}

/// Consumes whole batches, remembering where the seams fell.
#[derive(Default)]
struct BatchLog {
    events: Vec<CampaignEvent>,
    batch_sizes: Vec<usize>,
}

impl LedgerObserver for BatchLog {
    fn on_event(&mut self, event: &CampaignEvent) {
        self.events.push(event.clone());
        self.batch_sizes.push(1);
    }

    fn on_batch(&mut self, events: &[CampaignEvent]) {
        self.events.extend_from_slice(events);
        self.batch_sizes.push(events.len());
    }
}

/// For every planner kind, a per-event observer, a batch observer, and
/// the recorded ledger all see the identical stream — batching is pure
/// delivery mechanics, never reordering or loss.
#[test]
fn batched_delivery_is_indistinguishable_from_per_event_for_every_planner() {
    let space = space();
    for planner in all_planners() {
        let cfg = planned_config(planner.clone(), 29);
        let mut per_event = PerEventLog::default();
        let mut batched = BatchLog::default();
        let report = run_campaign_observed(&space, &cfg, &mut [&mut per_event, &mut batched]);
        let (recorded, ledger) = run_campaign_recorded(&space, &cfg);

        assert_eq!(
            per_event.events,
            batched.events,
            "{}: batch observer saw a different stream",
            planner.label()
        );
        assert_eq!(
            batched.events,
            ledger.events,
            "{}: observer stream diverged from the recorded ledger",
            planner.label()
        );
        assert_eq!(
            serde_json::to_string(&report).expect("serialize"),
            serde_json::to_string(&recorded).expect("serialize"),
            "{}: report changed across observer shapes",
            planner.label()
        );
        assert!(
            batched.batch_sizes.iter().all(|&n| n > 0),
            "{}: empty batch delivered",
            planner.label()
        );
        assert!(
            batched.batch_sizes.len() > 1,
            "{}: expected one flush per iteration, got a single batch",
            planner.label()
        );
        assert!(
            batched.batch_sizes.iter().any(|&n| n > 1),
            "{}: batching never amortized a delivery",
            planner.label()
        );
    }
}

/// The batched path's ledger replays to the live report byte-for-byte
/// and its `EVWL` bytes are identical whether encoded fresh or through
/// a reused buffer — for every planner kind.
#[test]
fn batched_path_keeps_replay_and_wire_bytes_identical() {
    let space = space();
    let mut reuse = Vec::new();
    for planner in all_planners() {
        let cfg = planned_config(planner.clone(), 31);
        let (live, ledger) = run_campaign_recorded(&space, &cfg);

        let replayed = replay_ledger(&ledger).expect("batched ledger replays");
        assert_eq!(
            serde_json::to_string(&replayed.report).expect("serialize"),
            serde_json::to_string(&live).expect("serialize"),
            "{}: replayed report diverged",
            planner.label()
        );

        let fresh = ledger.to_bytes(LedgerEncoding::Binary);
        let stats = ledger.encode_binary_into(&mut reuse);
        assert_eq!(
            fresh,
            reuse,
            "{}: reused-buffer encode diverged from fresh encode",
            planner.label()
        );
        assert_eq!(
            stats.events as usize,
            ledger.len(),
            "{}: encode stats missed events",
            planner.label()
        );
        assert!(
            stats.intern_hits > stats.intern_misses,
            "{}: intern table should mostly hit on a repetitive stream",
            planner.label()
        );
    }
}

/// Batched emission inside the fleet executor (chunked claiming
/// included) leaves the merged ledger byte-identical at 1, 2, and 4
/// threads and across a coordinator kill + resume.
#[test]
fn fleet_batching_is_thread_and_crash_invariant() {
    let space = space();
    let mut cfg = FleetConfig::new(808);
    cfg.horizon = SimDuration::from_days(1);
    cfg.threads = 1;
    cfg.push_cell(Cell::traditional_wms(), 2);
    cfg.push_cell(Cell::autonomous_science(), 2);
    cfg.push_cell(Cell::new(IntelligenceLevel::Learning, Pattern::Mesh), 2);

    let (report, ledger) = run_campaign_fleet_recorded(&space, &cfg);
    let report_json = serde_json::to_string(&report).expect("serialize");
    let wire = ledger.to_bytes(LedgerEncoding::Binary);

    for threads in [2usize, 4] {
        let mut c = cfg.clone();
        c.threads = threads;
        let (r, l) = run_campaign_fleet_recorded(&space, &c);
        assert_eq!(
            serde_json::to_string(&r).expect("serialize"),
            report_json,
            "{threads}-thread report diverged"
        );
        assert_eq!(
            l.to_bytes(LedgerEncoding::Binary),
            wire,
            "{threads}-thread merged wire bytes diverged"
        );
    }

    for kill_after in [1usize, 3, 5] {
        let ckpt = run_campaign_fleet_recorded_until(&space, &cfg, kill_after);
        let (r, l) =
            resume_campaign_fleet_recorded(&space, &cfg, &ckpt).expect("checkpoint resumes");
        assert_eq!(
            serde_json::to_string(&r).expect("serialize"),
            report_json,
            "kill@{kill_after}: resumed report diverged"
        );
        assert_eq!(
            l.to_bytes(LedgerEncoding::Binary),
            wire,
            "kill@{kill_after}: resumed wire bytes diverged"
        );
    }
}

/// `EventBatch` counters account for every push: N events over K
/// flushes, empty flushes free.
#[test]
fn event_batch_counters_account_for_every_push() {
    let space = space();
    let cfg = planned_config(PlannerKind::Grid, 37);
    let (_, ledger) = run_campaign_recorded(&space, &cfg);

    let mut batch = EventBatch::new();
    let mut sink = CampaignLedger::new();
    assert_eq!(batch.flush(&mut [&mut sink]), 0, "empty flush delivers 0");
    assert_eq!(batch.flushes(), 0, "empty flush is not counted");

    let mut delivered = 0usize;
    for (i, event) in ledger.events.iter().enumerate() {
        batch.push(event.clone());
        if i % 7 == 6 {
            delivered += batch.flush(&mut [&mut sink]);
        }
    }
    delivered += batch.flush(&mut [&mut sink]);
    assert_eq!(delivered, ledger.len());
    assert_eq!(batch.emitted(), ledger.len() as u64);
    assert_eq!(batch.flushes(), ledger.len().div_ceil(7) as u64);
    assert_eq!(sink.events, ledger.events, "flushed sink re-ordered events");
}

/// The static `metric_key` table matches the `"ledger.{kind}"` strings
/// the metrics sink used to build with a per-event allocation.
#[test]
fn metric_keys_are_the_static_form_of_the_old_allocating_keys() {
    let space = space();
    let mut cfg = CampaignConfig::for_cell(Cell::autonomous_science(), 41);
    cfg.horizon = SimDuration::from_days(1);
    let (_, ledger) = run_campaign_recorded(&space, &cfg);
    assert!(!ledger.is_empty());
    for event in &ledger.events {
        assert_eq!(event.metric_key(), format!("ledger.{}", event.kind()));
    }
}
