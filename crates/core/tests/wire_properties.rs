//! Property tests for the `EVWL` binary ledger wire format (ISSUE 7).
//!
//! Two families of properties:
//!
//! * **Round trip** — for *arbitrary* event streams (every variant, every
//!   field drawn from a strategy that covers empty/unicode/word-salad
//!   strings and sign/magnitude-extreme floats), encode → decode is the
//!   identity under both encodings, and [`LedgerEncoding::detect`] sniffs
//!   the encoding correctly.
//! * **Tamper refusal** — on a *real* recorded campaign's binary ledger,
//!   any single flipped bit and any truncation is refused by the decoder;
//!   corruption never replays as silently different history.

use evoflow_core::{
    run_campaign_recorded, CampaignConfig, CampaignEvent, CampaignLedger, Cell, LedgerEncoding,
    MaterialsSpace, RejectReason,
};
use evoflow_sim::{SimDuration, SimTime};
use proptest::prelude::*;
use std::sync::OnceLock;

/// Floats that are JSON-safe (finite) but cover zero, both signs, huge
/// and tiny magnitudes — bit-exactness is asserted via `PartialEq`.
fn arb_f64() -> impl Strategy<Value = f64> {
    prop_oneof![
        Just(0.0),
        Just(-0.0),
        Just(f64::MAX),
        Just(f64::MIN_POSITIVE),
        any::<i64>().prop_map(|v| v as f64 * 1e-6),
    ]
}

/// Strings exercising every text path: empty, spaced soup (double
/// spaces, leading/trailing spaces — the literal fallback), unicode,
/// and long single-space word joins (the tokenized path).
fn arb_text() -> impl Strategy<Value = String> {
    prop_oneof![
        Just(String::new()),
        "[a-z ]{0,40}",
        " [a-z]{4,30} ",
        "[αβγ語x-z]{0,12}",
        collection::vec("[a-z]{1,8}", 2..24).prop_map(|words| words.join(" ")),
    ]
}

fn arb_opt_usize() -> impl Strategy<Value = Option<usize>> {
    (any::<bool>(), any::<usize>()).prop_map(|(some, v)| some.then_some(v))
}

fn arb_opt_f64() -> impl Strategy<Value = Option<f64>> {
    (any::<bool>(), arb_f64()).prop_map(|(some, v)| some.then_some(v))
}

fn arb_reason() -> impl Strategy<Value = RejectReason> {
    prop_oneof![
        Just(RejectReason::UnknownTenant),
        Just(RejectReason::QueueFull),
        Just(RejectReason::AdmissionCapExhausted),
    ]
}

fn arb_event() -> impl Strategy<Value = CampaignEvent> {
    prop_oneof![
        (
            (arb_text(), any::<u64>(), arb_text(), 0usize..64),
            (any::<u64>(), arb_f64(), any::<u64>(), any::<bool>()),
        )
            .prop_map(
                |(
                    (cell_label, seed, planner, lanes),
                    (horizon, threshold, max_experiments, records_knowledge),
                )| {
                    CampaignEvent::CampaignStarted {
                        cell_label: cell_label.into(),
                        seed,
                        planner: planner.into(),
                        lanes,
                        horizon: SimDuration::from_nanos(horizon),
                        threshold,
                        max_experiments,
                        records_knowledge,
                    }
                }
            ),
        (any::<usize>(), any::<u64>(), any::<u64>()).prop_map(|(lane, at, ready)| {
            CampaignEvent::IterationStarted {
                lane,
                at: SimTime::from_nanos(at),
                decision_ready: SimTime::from_nanos(ready),
            }
        }),
        (
            any::<usize>(),
            collection::vec(arb_f64(), 0..8),
            arb_text(),
            arb_f64(),
            any::<bool>(),
        )
            .prop_map(|(lane, params, rationale, confidence, hallucinated)| {
                CampaignEvent::CandidateProposed {
                    lane,
                    params,
                    rationale: rationale.into(),
                    confidence,
                    hallucinated,
                }
            }),
        (any::<usize>(), any::<usize>(), any::<u64>(), any::<u64>()).prop_map(
            |(lane, batch, duration, done_at)| CampaignEvent::ExecutionScheduled {
                lane,
                batch,
                duration: SimDuration::from_nanos(duration),
                done_at: SimTime::from_nanos(done_at),
            }
        ),
        (
            (any::<usize>(), any::<u64>(), arb_f64(), any::<bool>()),
            (arb_opt_usize(), any::<u64>(), any::<u64>()),
        )
            .prop_map(
                |((lane, experiment, score, hit), (peak, tokens_in, tokens_out))| {
                    CampaignEvent::ResultObserved {
                        lane,
                        experiment,
                        score,
                        hit,
                        peak,
                        tokens_in,
                        tokens_out,
                    }
                }
            ),
        (any::<usize>(), any::<u64>()).prop_map(|(lane, rejected_total)| {
            CampaignEvent::GateDecision {
                lane,
                rejected_total,
            }
        }),
        (any::<usize>(), any::<u32>()).prop_map(|(lane, rewrites_total)| {
            CampaignEvent::OmegaRewrite {
                lane,
                rewrites_total,
            }
        }),
        (any::<usize>(), any::<usize>(), any::<u64>(), any::<u64>()).prop_map(
            |(lane, proposed, hits, tokens_total)| CampaignEvent::IterationEnded {
                lane,
                proposed,
                hits,
                tokens_total,
            }
        ),
        (
            (
                any::<u64>(),
                any::<u64>(),
                any::<usize>(),
                arb_f64(),
                arb_opt_f64(),
                arb_f64(),
            ),
            (
                arb_f64(),
                any::<u64>(),
                any::<u32>(),
                any::<usize>(),
                any::<usize>(),
                any::<u64>(),
            ),
        )
            .prop_map(
                |(
                    (experiments, total_hits, distinct, best_score, ttf, wait),
                    (exec, rejected, omega, kg, prov, tokens),
                )| {
                    CampaignEvent::CampaignFinished {
                        experiments,
                        total_hits,
                        distinct_discoveries: distinct,
                        best_score,
                        time_to_first_hours: ttf,
                        decision_wait_hours: wait,
                        execution_hours: exec,
                        rejected_proposals: rejected,
                        omega_rewrites: omega,
                        kg_nodes: kg,
                        prov_activities: prov,
                        tokens,
                    }
                }
            ),
        (any::<usize>(), any::<usize>())
            .prop_map(|(committed, total)| { CampaignEvent::CheckpointTaken { committed, total } }),
        any::<usize>().prop_map(|after_commits| CampaignEvent::CoordinatorKilled { after_commits }),
        (
            any::<usize>(),
            arb_text(),
            any::<u64>(),
            any::<u64>(),
            any::<bool>(),
        )
            .prop_map(|(campaign, facility, nodes, arrival, evacuation)| {
                CampaignEvent::CampaignPlaced {
                    campaign,
                    facility: facility.into(),
                    nodes,
                    arrival: SimTime::from_nanos(arrival),
                    evacuation,
                }
            }),
        (
            any::<usize>(),
            arb_text(),
            arb_text(),
            arb_f64(),
            any::<u64>(),
            any::<bool>(),
        )
            .prop_map(|(campaign, from, to, gigabytes, duration, evacuation)| {
                CampaignEvent::DataTransferred {
                    campaign,
                    from: from.into(),
                    to: to.into(),
                    gigabytes,
                    duration: SimDuration::from_nanos(duration),
                    evacuation,
                }
            }),
        (arb_text(), any::<u64>(), any::<usize>()).prop_map(|(site, at, rerouted)| {
            CampaignEvent::OutageStruck {
                site: site.into(),
                at: SimTime::from_nanos(at),
                rerouted,
            }
        }),
        (arb_text(), any::<usize>(), any::<usize>()).prop_map(
            |(tenant, admission_index, round)| CampaignEvent::SubmissionAdmitted {
                tenant: tenant.into(),
                admission_index,
                round,
            }
        ),
        (arb_text(), any::<usize>(), any::<usize>(), arb_reason()).prop_map(
            |(tenant, submission_index, round, reason)| CampaignEvent::SubmissionRejected {
                tenant: tenant.into(),
                submission_index,
                round,
                reason,
            }
        ),
        (arb_text(), any::<usize>(), any::<usize>(), any::<usize>()).prop_map(
            |(tenant, admission_index, round, slot)| CampaignEvent::CampaignDispatched {
                tenant: tenant.into(),
                admission_index,
                round,
                slot,
            }
        ),
    ]
}

/// One real recorded campaign's binary ledger (recorded once; the tamper
/// properties vary the corruption, not the run).
fn recorded_binary() -> &'static Vec<u8> {
    static BIN: OnceLock<Vec<u8>> = OnceLock::new();
    BIN.get_or_init(|| {
        let space = MaterialsSpace::generate(3, 8, 777);
        let mut cfg = CampaignConfig::for_cell(Cell::autonomous_science(), 5);
        cfg.horizon = SimDuration::from_days(1);
        let (_, ledger) = run_campaign_recorded(&space, &cfg);
        assert!(ledger.len() > 8, "stream too short to exercise segments");
        ledger.to_bytes(LedgerEncoding::Binary)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Binary encode → decode is the identity on arbitrary event
    /// streams, and the encoding sniffs as binary.
    #[test]
    fn binary_round_trips_arbitrary_streams(
        events in collection::vec(arb_event(), 0..300)
    ) {
        let mut ledger = CampaignLedger::new();
        ledger.events = events;
        let bytes = ledger.to_bytes(LedgerEncoding::Binary);
        prop_assert_eq!(LedgerEncoding::detect(&bytes), LedgerEncoding::Binary);
        let decoded = CampaignLedger::from_bytes(&bytes).expect("own bytes decode");
        prop_assert_eq!(decoded.events, ledger.events);
    }

    /// The legacy JSON path round-trips the same arbitrary streams and
    /// sniffs as JSON — the encodings never shadow each other.
    #[test]
    fn json_round_trips_arbitrary_streams(
        events in collection::vec(arb_event(), 0..60)
    ) {
        let mut ledger = CampaignLedger::new();
        ledger.events = events;
        let bytes = ledger.to_bytes(LedgerEncoding::Json);
        prop_assert_eq!(LedgerEncoding::detect(&bytes), LedgerEncoding::Json);
        let decoded = CampaignLedger::from_bytes(&bytes).expect("own bytes decode");
        prop_assert_eq!(decoded.events, ledger.events);
    }

    /// Any single flipped bit anywhere in a real recorded binary ledger
    /// is refused by the decoder.
    #[test]
    fn any_flipped_bit_is_refused(offset in any::<sample::Index>(), bit in 0u8..8) {
        let bin = recorded_binary();
        let offset = offset.index(bin.len());
        let mut tampered = bin.clone();
        tampered[offset] ^= 1 << bit;
        prop_assert!(
            CampaignLedger::from_bytes(&tampered).is_err(),
            "bit {} flipped at byte {} decoded cleanly", bit, offset
        );
    }

    /// Any strict truncation of a real recorded binary ledger is
    /// refused — a cut-off ledger is never a valid shorter one.
    #[test]
    fn any_truncation_is_refused(cut in any::<sample::Index>()) {
        let bin = recorded_binary();
        let cut = cut.index(bin.len());
        prop_assert!(
            CampaignLedger::from_bytes(&bin[..cut]).is_err(),
            "truncation to {} bytes decoded cleanly", cut
        );
    }
}
