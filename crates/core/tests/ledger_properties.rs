//! Property tests for the event-sourced ledger's audit contract:
//!
//! 1. **Replay fidelity** — for *every* planner kind × composition
//!    pattern, `replay_ledger` rebuilds a byte-identical
//!    `CampaignReport` (and identical provenance/knowledge stores) from
//!    the serialized event stream alone.
//! 2. **Observation transparency** — recording never changes a report:
//!    `run_campaign_recorded` and `run_campaign` agree byte-for-byte.
//! 3. **Fleet invariance** — the merged `FleetLedger` is byte-identical
//!    at any thread count, and a coordinator kill + resume reproduces
//!    both the report and the merged ledger exactly, so the crash leaves
//!    no seam in the audit trail.

use evoflow_agents::Pattern;
use evoflow_core::{
    replay_fleet_ledger, replay_ledger, resume_campaign_fleet_recorded, run_campaign,
    run_campaign_fleet, run_campaign_fleet_recorded, run_campaign_fleet_recorded_until,
    run_campaign_recorded, CampaignConfig, CampaignLedger, Cell, FleetConfig, MaterialsSpace,
    PlannerKind, ReplayError,
};
use evoflow_sim::SimDuration;
use evoflow_sm::IntelligenceLevel;
use proptest::prelude::*;

fn space() -> MaterialsSpace {
    MaterialsSpace::generate(3, 8, 20260610)
}

fn all_planners() -> Vec<PlannerKind> {
    let mut kinds = PlannerKind::all_concrete();
    kinds.push(PlannerKind::meta());
    kinds
}

fn planned_config(planner: PlannerKind, pattern: Pattern, seed: u64) -> CampaignConfig {
    let mut cfg = CampaignConfig::for_cell(Cell::new(IntelligenceLevel::Learning, pattern), seed)
        .with_planner(planner);
    cfg.horizon = SimDuration::from_days(1);
    cfg.coordination = Some(evoflow_core::CoordinationMode::Autonomous);
    cfg.max_experiments = 2_000;
    cfg
}

/// Exhaustive over the planner vocabulary: the serialized ledger
/// round-trips, and its replay reconstructs the live report
/// byte-for-byte — including the agentic planner, whose knowledge-graph
/// and provenance counts must also survive the round trip.
#[test]
fn every_planner_replays_to_the_live_report() {
    let space = space();
    for planner in all_planners() {
        let cfg = planned_config(planner.clone(), Pattern::Mesh, 17);
        let (live, ledger) = run_campaign_recorded(&space, &cfg);

        let json = serde_json::to_string(&ledger).expect("ledger serializes");
        let decoded: CampaignLedger = serde_json::from_str(&json).expect("ledger decodes");
        assert_eq!(decoded, ledger, "{} ledger round-trip", planner.label());

        let replayed = replay_ledger(&decoded).expect("fresh ledger replays");
        assert_eq!(
            serde_json::to_string(&replayed.report).expect("serialize"),
            serde_json::to_string(&live).expect("serialize"),
            "{} replay diverged from live report",
            planner.label()
        );
        assert_eq!(replayed.provenance.activity_count(), live.prov_activities);
        assert_eq!(replayed.knowledge.node_count(), live.kg_nodes);
    }
}

/// The intelligent cell's stores are rebuilt *identically*, not just to
/// equal counts: graph and provenance compare structurally equal.
#[test]
fn replay_rebuilds_identical_knowledge_stores() {
    let space = space();
    let mut cfg = CampaignConfig::for_cell(Cell::autonomous_science(), 7);
    cfg.horizon = SimDuration::from_days(1);
    let (live, ledger) = run_campaign_recorded(&space, &cfg);
    assert!(live.kg_nodes > 0, "intelligent cell must record knowledge");

    let a = replay_ledger(&ledger).expect("replays");
    let b = replay_ledger(&ledger).expect("replays again");
    assert_eq!(a.knowledge, b.knowledge);
    assert_eq!(a.provenance, b.provenance);
    assert_eq!(
        serde_json::to_string(&a.knowledge).expect("serialize"),
        serde_json::to_string(&b.knowledge).expect("serialize")
    );
}

/// Recording is a pure observer: the recorded run's report equals the
/// unobserved run's byte-for-byte, for every intelligence level.
#[test]
fn recording_never_perturbs_the_campaign() {
    let space = space();
    for level in IntelligenceLevel::ALL {
        let mut cfg = CampaignConfig::for_cell(Cell::new(level, Pattern::Pipeline), 23);
        cfg.horizon = SimDuration::from_days(1);
        let plain = run_campaign(&space, &cfg);
        let (recorded, ledger) = run_campaign_recorded(&space, &cfg);
        assert_eq!(
            serde_json::to_string(&plain).expect("serialize"),
            serde_json::to_string(&recorded).expect("serialize"),
            "{level:?} report changed under observation"
        );
        assert!(!ledger.is_empty());
    }
}

/// A ledger with an edited event no longer replays: flipping one
/// observed result breaks the integrity cross-check.
#[test]
fn tampered_ledgers_fail_the_audit() {
    let space = space();
    let mut cfg = CampaignConfig::for_cell(Cell::autonomous_science(), 3);
    cfg.horizon = SimDuration::from_hours(12);
    let (_, mut ledger) = run_campaign_recorded(&space, &cfg);
    let flipped = ledger
        .events
        .iter_mut()
        .find_map(|e| match e {
            evoflow_core::CampaignEvent::ResultObserved { hit, peak, .. } if !*hit => {
                *hit = true;
                *peak = Some(999);
                Some(())
            }
            _ => None,
        })
        .is_some();
    assert!(flipped, "campaign should have at least one miss to tamper");
    assert!(matches!(
        replay_ledger(&ledger),
        Err(ReplayError::IntegrityMismatch { .. })
    ));
}

fn arb_recorded_fleet() -> impl Strategy<Value = FleetConfig> {
    (
        any::<u64>(),
        prop::collection::vec(0usize..9, 1..5),
        1u64..3,
    )
        .prop_map(|(master_seed, picks, days)| {
            let kinds = all_planners();
            let mut cfg = FleetConfig::new(master_seed);
            cfg.horizon = SimDuration::from_days(days);
            cfg.max_experiments = 1_500;
            for pick in picks {
                let mut c = CampaignConfig::for_cell(
                    Cell::new(IntelligenceLevel::Learning, Pattern::Mesh),
                    0,
                );
                c.horizon = cfg.horizon;
                c.max_experiments = cfg.max_experiments;
                c.planner = Some(kinds[pick % kinds.len()].clone());
                cfg.push_campaign(c);
            }
            cfg
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The merged fleet ledger (and its replayed report) is byte-identical
    /// at any thread count, and replaying it rebuilds the fleet report the
    /// plain executor produces.
    #[test]
    fn fleet_ledger_is_thread_count_invariant(mut cfg in arb_recorded_fleet()) {
        let space = space();
        cfg.threads = 1;
        let (serial_report, serial_ledger) = run_campaign_fleet_recorded(&space, &cfg);
        cfg.threads = 3;
        let (_, parallel_ledger) = run_campaign_fleet_recorded(&space, &cfg);
        prop_assert_eq!(
            serde_json::to_string(&serial_ledger).expect("serialize"),
            serde_json::to_string(&parallel_ledger).expect("serialize")
        );
        let replayed = replay_fleet_ledger(&serial_ledger).expect("fleet ledger replays");
        prop_assert_eq!(
            serde_json::to_string(&replayed).expect("serialize"),
            serde_json::to_string(&serial_report).expect("serialize")
        );
        prop_assert_eq!(
            serde_json::to_string(&run_campaign_fleet(&space, &cfg)).expect("serialize"),
            serde_json::to_string(&serial_report).expect("serialize")
        );
    }

    /// Kill + resume reproduces both the fleet report and the merged
    /// ledger byte-for-byte at any thread count on either side of the
    /// crash — the crash is invisible to a downstream replay audit.
    #[test]
    fn fleet_ledger_survives_kill_and_resume(
        mut cfg in arb_recorded_fleet(),
        kill_after in 0usize..4,
        threads in 1usize..4,
    ) {
        let space = space();
        cfg.threads = threads;
        let (report, ledger) = run_campaign_fleet_recorded(&space, &cfg);
        let ckpt = run_campaign_fleet_recorded_until(&space, &cfg, kill_after);
        let (resumed_report, resumed_ledger) =
            resume_campaign_fleet_recorded(&space, &cfg, &ckpt).expect("same fleet");
        prop_assert_eq!(
            serde_json::to_string(&report).expect("serialize"),
            serde_json::to_string(&resumed_report).expect("serialize")
        );
        prop_assert_eq!(
            serde_json::to_string(&ledger).expect("serialize"),
            serde_json::to_string(&resumed_ledger).expect("serialize")
        );
        let replayed = replay_fleet_ledger(&resumed_ledger).expect("resumed ledger replays");
        prop_assert_eq!(
            serde_json::to_string(&replayed).expect("serialize"),
            serde_json::to_string(&report).expect("serialize")
        );
    }
}
