//! Property tests for [`RingTelemetry`], the bounded live-telemetry
//! tail (ISSUE 6 satellite — it previously had no dedicated test file).
//!
//! The contract under test, for any capacity and any event stream:
//!
//! * the tail never exceeds its capacity;
//! * the tail is always exactly the *suffix* of the full event stream;
//! * the drop count is exact: `dropped() == seen() - len()`, and equals
//!   `max(0, stream_len - capacity)` once the stream is longer than the
//!   ring.

use evoflow_core::{
    run_campaign_observed, CampaignConfig, CampaignEvent, CampaignLedger, Cell, LedgerObserver,
    MaterialsSpace, RingTelemetry,
};
use evoflow_sim::SimDuration;
use proptest::prelude::*;

/// One recorded campaign stream to replay into rings of arbitrary
/// capacity (recorded once; the properties vary the ring, not the run).
fn recorded_stream() -> Vec<CampaignEvent> {
    let space = MaterialsSpace::generate(3, 8, 777);
    let mut cfg = CampaignConfig::for_cell(Cell::autonomous_science(), 5);
    cfg.horizon = SimDuration::from_days(1);
    let mut ledger = CampaignLedger::new();
    run_campaign_observed(&space, &cfg, &mut [&mut ledger]);
    assert!(ledger.len() > 8, "stream too short to exercise eviction");
    ledger.events
}

fn feed(ring: &mut RingTelemetry, stream: &[CampaignEvent]) {
    for e in stream {
        ring.on_event(e);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The tail is bounded by capacity at every step, not just at the
    /// end — and `seen` counts every event regardless.
    #[test]
    fn tail_is_bounded_at_every_step(capacity in 0usize..48, take in 0usize..200) {
        let stream = recorded_stream();
        let take = take.min(stream.len());
        let mut ring = RingTelemetry::new(capacity);
        for (i, e) in stream[..take].iter().enumerate() {
            ring.on_event(e);
            prop_assert!(ring.len() <= capacity);
            prop_assert_eq!(ring.seen(), i as u64 + 1);
        }
        prop_assert_eq!(ring.len(), take.min(capacity));
        prop_assert_eq!(ring.is_empty(), take.min(capacity) == 0);
    }

    /// The retained events are exactly the suffix of the full stream.
    #[test]
    fn tail_is_a_suffix_of_the_stream(capacity in 0usize..48) {
        let stream = recorded_stream();
        let mut ring = RingTelemetry::new(capacity);
        feed(&mut ring, &stream);
        let retained: Vec<&CampaignEvent> = ring.events().collect();
        let suffix_start = stream.len() - stream.len().min(capacity);
        let expected: Vec<&CampaignEvent> = stream[suffix_start..].iter().collect();
        prop_assert_eq!(retained, expected);
        prop_assert_eq!(ring.latest(), stream.last());
    }

    /// The drop count is exact at every step.
    #[test]
    fn drop_count_is_exact(capacity in 0usize..48) {
        let stream = recorded_stream();
        let mut ring = RingTelemetry::new(capacity);
        for (i, e) in stream.iter().enumerate() {
            ring.on_event(e);
            let seen = i as u64 + 1;
            prop_assert_eq!(ring.dropped(), seen - ring.len() as u64);
            prop_assert_eq!(ring.dropped(), seen.saturating_sub(capacity as u64));
        }
        prop_assert_eq!(ring.seen(), stream.len() as u64);
        prop_assert_eq!(
            ring.dropped(),
            (stream.len() as u64).saturating_sub(capacity as u64)
        );
    }
}

/// A live ring attached beside a full ledger sees the same stream: the
/// ring's tail is the ledger's suffix, with an exact drop count — the
/// dashboard never lies about how much history it is missing.
#[test]
fn live_ring_matches_full_ledger_suffix() {
    let space = MaterialsSpace::generate(3, 8, 777);
    let mut cfg = CampaignConfig::for_cell(Cell::autonomous_science(), 5);
    cfg.horizon = SimDuration::from_days(1);
    for capacity in [0usize, 1, 7, 64, 100_000] {
        let mut ledger = CampaignLedger::new();
        let mut ring = RingTelemetry::new(capacity);
        run_campaign_observed(&space, &cfg, &mut [&mut ledger, &mut ring]);
        assert_eq!(ring.seen() as usize, ledger.len());
        assert_eq!(ring.len(), ledger.len().min(capacity));
        assert_eq!(
            ring.dropped() as usize,
            ledger.len().saturating_sub(capacity)
        );
        let suffix_start = ledger.len() - ring.len();
        let tail: Vec<&CampaignEvent> = ring.events().collect();
        let suffix: Vec<&CampaignEvent> = ledger.events[suffix_start..].iter().collect();
        assert_eq!(tail, suffix, "capacity {capacity}");
    }
}

/// A zero-capacity ring retains nothing but still counts and drops
/// everything.
#[test]
fn zero_capacity_ring_counts_but_keeps_nothing() {
    let stream = recorded_stream();
    let mut ring = RingTelemetry::new(0);
    feed(&mut ring, &stream);
    assert!(ring.is_empty());
    assert_eq!(ring.latest(), None);
    assert_eq!(ring.seen(), stream.len() as u64);
    assert_eq!(ring.dropped(), stream.len() as u64);
}
