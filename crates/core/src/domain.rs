//! The synthetic materials-discovery domain.
//!
//! Stands in for the paper's materials campaigns (A-lab, §2.3; the Fig 4
//! scenario): a latent figure-of-merit landscape over a `[0,1]^d` design
//! space built from seeded Gaussian peaks on a smooth background. "Novel
//! materials" are design points whose measured score crosses a threshold
//! near one of the peaks. The substitution argument (DESIGN.md §2): the
//! discovery loop only needs a black-box objective with realistic structure
//! — sparse sharp optima, broad mediocre regions, measurement noise, and
//! costly evaluations.

use evoflow_agents::Evidence;
use evoflow_sim::{RngRegistry, SimRng};
use serde::{Deserialize, Serialize};

/// A Gaussian peak in the landscape.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Peak {
    center: Vec<f64>,
    height: f64,
    width: f64,
}

/// The latent materials landscape.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MaterialsSpace {
    dim: usize,
    peaks: Vec<Peak>,
    /// Discovery threshold: measured score ≥ this counts as a novel
    /// material.
    pub threshold: f64,
    /// Measurement noise standard deviation.
    pub noise_sd: f64,
}

impl MaterialsSpace {
    /// Generate a landscape with `n_peaks` seeded peaks in `dim` dimensions.
    ///
    /// Peaks have heights in [0.7, 1.0] and widths in [0.05, 0.15]; the
    /// background is a gentle slope capped well below the threshold, so
    /// discoveries require actually finding peaks.
    pub fn generate(dim: usize, n_peaks: usize, seed: u64) -> Self {
        let reg = RngRegistry::new(seed);
        let mut rng = reg.stream("materials-space");
        let peaks = (0..n_peaks)
            .map(|_| Peak {
                center: (0..dim).map(|_| rng.uniform_range(0.1, 0.9)).collect(),
                height: rng.uniform_range(0.7, 1.0),
                width: rng.uniform_range(0.05, 0.15),
            })
            .collect();
        MaterialsSpace {
            dim,
            peaks,
            threshold: 0.6,
            noise_sd: 0.03,
        }
    }

    /// Design-space dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of latent peaks (ground truth, for evaluation only).
    pub fn peak_count(&self) -> usize {
        self.peaks.len()
    }

    /// The latent (noise-free) figure of merit at `x`.
    pub fn latent(&self, x: &[f64]) -> f64 {
        debug_assert_eq!(x.len(), self.dim);
        // Gentle background slope keeps naive hill-climbers honest.
        let background = 0.1 * x.iter().sum::<f64>() / self.dim as f64;
        let peaks: f64 = self
            .peaks
            .iter()
            .map(|p| {
                let d2: f64 = x.iter().zip(&p.center).map(|(a, b)| (a - b).powi(2)).sum();
                p.height * (-d2 / (2.0 * p.width * p.width)).exp()
            })
            .fold(0.0, f64::max);
        background + peaks
    }

    /// A noisy measurement of the figure of merit (one characterization).
    pub fn measure(&self, x: &[f64], rng: &mut SimRng) -> f64 {
        self.latent(x) + rng.normal_with(0.0, self.noise_sd)
    }

    /// Whether a measured score counts as a novel-material discovery.
    pub fn is_discovery(&self, score: f64) -> bool {
        score >= self.threshold
    }

    /// Which peak (if any) a point belongs to — used to count *distinct*
    /// discoveries, since re-measuring the same peak is not a new material.
    pub fn peak_of(&self, x: &[f64]) -> Option<usize> {
        self.peaks
            .iter()
            .enumerate()
            .filter(|(_, p)| {
                let d2: f64 = x.iter().zip(&p.center).map(|(a, b)| (a - b).powi(2)).sum();
                d2.sqrt() < 2.0 * p.width
            })
            .min_by(|(_, a), (_, b)| {
                let da: f64 = x.iter().zip(&a.center).map(|(u, v)| (u - v).powi(2)).sum();
                let db: f64 = x.iter().zip(&b.center).map(|(u, v)| (u - v).powi(2)).sum();
                da.partial_cmp(&db).expect("finite distances")
            })
            .map(|(i, _)| i)
    }

    /// Synthesize a "published literature" corpus: noisy, mostly-mediocre
    /// historical measurements with a few hints near peaks (what a
    /// literature agent can mine).
    pub fn literature_corpus(&self, n: usize, seed: u64) -> Vec<Evidence> {
        let reg = RngRegistry::new(seed);
        let mut rng = reg.stream("literature");
        (0..n)
            .map(|i| {
                let params: Vec<f64> = if i % 10 == 0 && !self.peaks.is_empty() {
                    // Occasional near-peak prior art, displaced and noisy.
                    let p = &self.peaks[i / 10 % self.peaks.len()];
                    p.center
                        .iter()
                        .map(|c| (c + rng.normal_with(0.0, 0.1)).clamp(0.0, 1.0))
                        .collect()
                } else {
                    (0..self.dim).map(|_| rng.uniform()).collect()
                };
                let score = self.measure(&params, &mut rng);
                Evidence { params, score }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = MaterialsSpace::generate(3, 5, 42);
        let b = MaterialsSpace::generate(3, 5, 42);
        let x = [0.3, 0.6, 0.9];
        assert_eq!(a.latent(&x), b.latent(&x));
        let c = MaterialsSpace::generate(3, 5, 43);
        assert_ne!(a.latent(&x), c.latent(&x));
    }

    #[test]
    fn peaks_rise_above_background() {
        let s = MaterialsSpace::generate(2, 3, 7);
        // Background alone is at most 0.1; peak centers reach ≥ 0.7.
        let far = [0.001, 0.001];
        assert!(s.latent(&far) < s.threshold);
        // At least one point near a peak center crosses the threshold.
        let best = (0..s.peak_count())
            .map(|i| s.latent(&s.peaks[i].center))
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(best >= 0.7);
    }

    #[test]
    fn measurement_noise_is_bounded() {
        let s = MaterialsSpace::generate(2, 2, 1);
        let mut rng = SimRng::from_seed_u64(9);
        let x = [0.5, 0.5];
        let latent = s.latent(&x);
        let mean: f64 = (0..500).map(|_| s.measure(&x, &mut rng)).sum::<f64>() / 500.0;
        assert!((mean - latent).abs() < 0.01);
    }

    #[test]
    fn peak_attribution() {
        let s = MaterialsSpace::generate(2, 4, 11);
        for i in 0..s.peak_count() {
            let center = s.peaks[i].center.clone();
            assert_eq!(s.peak_of(&center), Some(i));
        }
        assert_eq!(s.peak_of(&[0.0, 0.0]), s.peak_of(&[0.0, 0.0])); // stable
    }

    #[test]
    fn literature_contains_hints() {
        let s = MaterialsSpace::generate(3, 5, 2);
        let corpus = s.literature_corpus(100, 3);
        assert_eq!(corpus.len(), 100);
        // The hinted entries (every 10th) should contain some high scores.
        let best = corpus
            .iter()
            .map(|e| e.score)
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(best > 0.3, "best literature score {best}");
        assert!(corpus
            .iter()
            .all(|e| e.params.iter().all(|v| (0.0..=1.0).contains(v))));
    }
}
