//! The multi-tenant campaign service: a long-lived scheduler in front of
//! the fleet.
//!
//! Everything below this module is batch: build a config, call a
//! `run_campaign_fleet*` entry point, collect a report. The paper's
//! north star is *infrastructure* for agentic science (§5.3, §6) — many
//! users submitting concurrent campaigns against shared facilities, with
//! admission control, sustained load, and restart survival. This module
//! is that front door:
//!
//! * **Tenancy + admission.** A [`ServiceConfig`] names its
//!   [`TenantSpec`]s (fair-share weight, queue quota, admission cap) and
//!   an arrival trace of [`Submission`]s. Each submission is either
//!   *admitted* (assigned an admission index, which derives its campaign
//!   seed) or *rejected at the door* with a typed [`RejectReason`] —
//!   quota enforcement is part of the schedule, not an afterthought.
//! * **Fair-share dispatch.** Queued campaigns are dispatched by stride
//!   scheduling: each dispatch slot goes to the backlogged tenant with
//!   the smallest `dispatched / weight` ratio (integer cross-multiplied,
//!   ties broken by tenant declaration order). A hostile tenant flooding
//!   the queue cannot crowd a well-behaved tenant below its weighted
//!   share of dispatch slots.
//! * **Deterministic planning.** [`plan_service`] computes the entire
//!   admission + dispatch schedule as a *pure function of the config* —
//!   no wall clock, no completion feedback — so the schedule (and every
//!   derived seed) is byte-stable across reruns, thread counts, and
//!   restarts. Execution then multiplexes the dispatch order onto the
//!   fleet's work-stealing executor.
//! * **Live progress.** [`run_service_observed`] streams the whole
//!   session — admissions, rejections, dispatches, and every campaign's
//!   event stream — through [`LedgerObserver`] sinks such as
//!   [`RingTelemetry`](crate::RingTelemetry), in deterministic schedule
//!   order.
//! * **Restart survival.** [`run_service_until`] kills the service after
//!   N campaign commits and emits a [`ServiceCheckpoint`] (seed
//!   handshake + committed reports and ledgers, exactly the
//!   [`FleetLedgerCheckpoint`](crate::FleetLedgerCheckpoint) recipe);
//!   [`resume_service`] re-derives only the lost work and reproduces the
//!   uninterrupted [`ServiceReport`] *and* merged
//!   [`FleetLedger`] **byte-for-byte**, at any thread count on either
//!   side of the kill.
//!
//! The correctness story is certified by the `testbed::service` S0–S3
//! ladder (S0 admits-and-completes, S1 quota enforcement under
//! oversubmission, S2 fair-share under a hostile flood, S3
//! restart-resume byte-identity) and gated in CI by `bench_service`.
//!
//! ```
//! use evoflow_core::{plan_service, run_service, CampaignConfig, Cell};
//! use evoflow_core::{MaterialsSpace, ServiceConfig, TenantSpec};
//! use evoflow_sim::SimDuration;
//!
//! let space = MaterialsSpace::generate(3, 8, 42);
//! let mut cfg = ServiceConfig::new(7);
//! cfg.push_tenant(TenantSpec::new("alice").with_weight(2));
//! cfg.push_tenant(TenantSpec::new("bob"));
//! let mut campaign = CampaignConfig::for_cell(Cell::traditional_wms(), 0);
//! campaign.horizon = SimDuration::from_days(1);
//! for _ in 0..3 {
//!     cfg.submit("alice", campaign.clone());
//!     cfg.submit("bob", campaign.clone());
//! }
//!
//! let plan = plan_service(&cfg).expect("valid service config");
//! assert_eq!(plan.admitted.len(), 6);
//!
//! let (report, ledger) = run_service(&space, &cfg).expect("service runs");
//! assert_eq!(report.fleet.reports.len(), 6);
//! assert_eq!(ledger.campaigns.len(), 6);
//! ```

use crate::campaign::{run_campaign_recorded, CampaignConfig, CampaignReport};
use crate::domain::MaterialsSpace;
use crate::fleet::{execute_fleet_tasks_with, FleetReport};
use crate::ledger::{CampaignEvent, CampaignLedger, FleetLedger, LedgerObserver};
use evoflow_sim::RngRegistry;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Stream label under which admitted campaigns' seeds are derived from
/// the service master seed
/// (`RngRegistry::shard_seed(SERVICE_SHARD_LABEL, admission_index)`).
pub const SERVICE_SHARD_LABEL: &str = "service-campaign";

/// Default arrivals ingested per scheduling round (the value a zero or
/// absent `ingest_per_round` normalises to).
pub const DEFAULT_INGEST_PER_ROUND: usize = 4;

/// Default campaigns dispatched per scheduling round (the value a zero
/// or absent `dispatch_per_round` normalises to).
pub const DEFAULT_DISPATCH_PER_ROUND: usize = 2;

/// One tenant of the service: identity, fair-share weight, and quotas.
///
/// Every knob is `#[serde(default)]` with **0 meaning "not declared"**:
/// a legacy record naming only the tenant decodes to weight 1 and no
/// quotas. (The vendored serde stub supports only bare defaults, so the
/// zero-normalisation happens in [`plan_service`], not in decode.)
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TenantSpec {
    /// Tenant identity (must be unique within a [`ServiceConfig`]).
    pub name: String,
    /// Fair-share weight: a tenant with weight 2 is entitled to twice
    /// the dispatch slots of a weight-1 tenant while both are
    /// backlogged. 0 is treated as 1.
    #[serde(default)]
    pub weight: u32,
    /// Per-tenant queue quota: the most campaigns the tenant may have
    /// admitted-but-not-yet-dispatched. Submissions beyond it are
    /// rejected with [`RejectReason::QueueFull`]. 0 = unlimited.
    #[serde(default)]
    pub max_queued: usize,
    /// Hard cap on total admissions for the session. Submissions beyond
    /// it are rejected with [`RejectReason::AdmissionCapExhausted`].
    /// 0 = unlimited.
    #[serde(default)]
    pub max_admitted: usize,
}

impl TenantSpec {
    /// A tenant with weight 1 and no quotas.
    pub fn new(name: impl Into<String>) -> Self {
        TenantSpec {
            name: name.into(),
            weight: 1,
            max_queued: 0,
            max_admitted: 0,
        }
    }

    /// Set the fair-share weight (0 is treated as 1 while planning).
    pub fn with_weight(mut self, weight: u32) -> Self {
        self.weight = weight;
        self
    }

    /// Set the queue quota (0 = unlimited).
    pub fn with_max_queued(mut self, max_queued: usize) -> Self {
        self.max_queued = max_queued;
        self
    }

    /// Set the total-admissions cap (0 = unlimited).
    pub fn with_max_admitted(mut self, max_admitted: usize) -> Self {
        self.max_admitted = max_admitted;
        self
    }

    /// The weight the scheduler actually uses (0 normalised to 1).
    pub fn effective_weight(&self) -> u32 {
        self.weight.max(1)
    }

    /// The queue quota the scheduler actually enforces (0 ⇒ unlimited).
    pub fn effective_max_queued(&self) -> usize {
        if self.max_queued == 0 {
            usize::MAX
        } else {
            self.max_queued
        }
    }

    /// The admissions cap the scheduler actually enforces
    /// (0 ⇒ unlimited).
    pub fn effective_max_admitted(&self) -> usize {
        if self.max_admitted == 0 {
            usize::MAX
        } else {
            self.max_admitted
        }
    }
}

/// One campaign submission in the service's arrival trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Submission {
    /// Submitting tenant (must name a [`TenantSpec`], or the submission
    /// is rejected with [`RejectReason::UnknownTenant`]).
    pub tenant: String,
    /// The campaign to run. Its `seed` field is overwritten with the
    /// admission-derived seed; everything else is honoured verbatim.
    pub campaign: CampaignConfig,
}

/// Configuration of one service session: tenants, arrival trace, and
/// scheduler pacing.
///
/// The pacing knobs are `#[serde(default)]` with 0 meaning "default
/// pacing", so a record that never mentioned them decodes to
/// [`DEFAULT_INGEST_PER_ROUND`] arrivals ingested and
/// [`DEFAULT_DISPATCH_PER_ROUND`] campaigns dispatched per round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceConfig {
    /// Master seed; every admitted campaign's seed is derived from it by
    /// admission index.
    pub master_seed: u64,
    /// Worker threads for campaign execution. **0 means
    /// "one per host core"** (`available_parallelism()`), which is the
    /// one host-dependent knob in an otherwise pure-function config:
    /// results never change with it, but anything that *records* the
    /// thread count (bench summaries, testbed certificates) must pin an
    /// explicit value to stay byte-identical across machines.
    pub threads: usize,
    /// The tenants allowed through the door, in declaration order
    /// (declaration order breaks fair-share ties).
    pub tenants: Vec<TenantSpec>,
    /// The arrival trace: submissions in arrival order.
    pub submissions: Vec<Submission>,
    /// Arrivals pulled from the trace per scheduling round
    /// (0 ⇒ [`DEFAULT_INGEST_PER_ROUND`]).
    #[serde(default)]
    pub ingest_per_round: usize,
    /// Campaigns dispatched to the fleet executor per scheduling round
    /// (0 ⇒ [`DEFAULT_DISPATCH_PER_ROUND`]).
    #[serde(default)]
    pub dispatch_per_round: usize,
}

impl ServiceConfig {
    /// An empty service with the given master seed and default pacing.
    pub fn new(master_seed: u64) -> Self {
        ServiceConfig {
            master_seed,
            threads: 0,
            tenants: Vec::new(),
            submissions: Vec::new(),
            ingest_per_round: DEFAULT_INGEST_PER_ROUND,
            dispatch_per_round: DEFAULT_DISPATCH_PER_ROUND,
        }
    }

    /// Register a tenant. Returns `&mut self` for chaining.
    pub fn push_tenant(&mut self, spec: TenantSpec) -> &mut Self {
        self.tenants.push(spec);
        self
    }

    /// Append a submission to the arrival trace.
    pub fn submit(&mut self, tenant: impl Into<String>, campaign: CampaignConfig) -> &mut Self {
        self.submissions.push(Submission {
            tenant: tenant.into(),
            campaign,
        });
        self
    }

    /// Worker threads that will actually be used.
    ///
    /// When [`threads`](ServiceConfig::threads) is 0 this consults
    /// `available_parallelism()` and therefore **varies across hosts**
    /// — fine for throughput, but never record its result in an
    /// artifact that is expected to be host-independent; pin an
    /// explicit thread count instead.
    pub fn effective_threads(&self) -> usize {
        let n = if self.threads == 0 {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        } else {
            self.threads
        };
        n.max(1).min(self.submissions.len().max(1))
    }

    /// The ingest pacing the scheduler actually uses
    /// (0 ⇒ [`DEFAULT_INGEST_PER_ROUND`]).
    pub fn effective_ingest_per_round(&self) -> usize {
        if self.ingest_per_round == 0 {
            DEFAULT_INGEST_PER_ROUND
        } else {
            self.ingest_per_round
        }
    }

    /// The dispatch pacing the scheduler actually uses
    /// (0 ⇒ [`DEFAULT_DISPATCH_PER_ROUND`]).
    pub fn effective_dispatch_per_round(&self) -> usize {
        if self.dispatch_per_round == 0 {
            DEFAULT_DISPATCH_PER_ROUND
        } else {
            self.dispatch_per_round
        }
    }
}

/// Why a submission was refused at the door.
///
/// Serializes as its stable kebab-case [`label`](RejectReason::label)
/// — not the Rust variant name — so the on-disk vocabulary is frozen
/// independently of source-level renames. Deserialization also accepts
/// the PascalCase variant names that pre-typed archives recorded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The submission names no registered [`TenantSpec`].
    UnknownTenant,
    /// The tenant's admitted-but-undispatched backlog is at its
    /// `max_queued` quota.
    QueueFull,
    /// The tenant has used its `max_admitted` session cap.
    AdmissionCapExhausted,
}

impl RejectReason {
    /// Short stable tag (ledger events, metrics keys).
    pub fn label(&self) -> &'static str {
        match self {
            RejectReason::UnknownTenant => "unknown-tenant",
            RejectReason::QueueFull => "queue-full",
            RejectReason::AdmissionCapExhausted => "admission-cap-exhausted",
        }
    }
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl Serialize for RejectReason {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self.label())
    }
}

impl<'de> Deserialize<'de> for RejectReason {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let s = String::deserialize(deserializer)?;
        match s.as_str() {
            "unknown-tenant" | "UnknownTenant" => Ok(RejectReason::UnknownTenant),
            "queue-full" | "QueueFull" => Ok(RejectReason::QueueFull),
            "admission-cap-exhausted" | "AdmissionCapExhausted" => {
                Ok(RejectReason::AdmissionCapExhausted)
            }
            other => Err(serde::de::Error::custom(format!(
                "unknown reject reason {other:?}"
            ))),
        }
    }
}

/// One admitted campaign in the service plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdmittedCampaign {
    /// Admission order (derives the campaign seed).
    pub admission_index: usize,
    /// Index into the arrival trace.
    pub submission_index: usize,
    /// Owning tenant.
    pub tenant: String,
    /// Derived campaign seed — the restart handshake.
    pub seed: u64,
    /// Scheduling round of admission.
    pub admitted_round: usize,
    /// Scheduling round of dispatch.
    pub dispatched_round: usize,
    /// Global dispatch slot (position in the dispatch total order).
    pub dispatch_slot: usize,
}

impl AdmittedCampaign {
    /// Rounds the campaign waited in the queue between admission and
    /// dispatch — the deterministic time-to-first-iteration proxy
    /// `bench_service` gates on.
    pub fn wait_rounds(&self) -> usize {
        self.dispatched_round - self.admitted_round
    }
}

/// One refused submission in the service plan.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RejectedSubmission {
    /// Index into the arrival trace.
    pub submission_index: usize,
    /// Tenant named by the submission (possibly unregistered).
    pub tenant: String,
    /// Scheduling round of the refusal.
    pub round: usize,
    /// Why it was refused.
    pub reason: RejectReason,
}

/// Per-tenant scheduling statistics, accumulated while planning.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantSchedule {
    /// Tenant identity.
    pub name: String,
    /// Fair-share weight used while planning.
    pub weight: u32,
    /// Submissions naming this tenant in the arrival trace.
    pub submitted: usize,
    /// Submissions admitted.
    pub admitted: usize,
    /// Submissions refused.
    pub rejected: usize,
    /// Dispatch slots that fired while this tenant was backlogged
    /// (slots it contended for, whether or not it won them).
    pub contended_slots: usize,
    /// Dispatch slots this tenant won.
    pub received_slots: usize,
}

/// The complete admission + dispatch schedule of a service session — a
/// pure function of the [`ServiceConfig`], computed before any campaign
/// executes. Because the plan never observes execution (no completion
/// feedback, no wall clock), it is identical across reruns, thread
/// counts, and restarts; that is what makes service checkpoints
/// splice-safe.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServicePlan {
    /// Master seed the admission seeds were derived from.
    pub master_seed: u64,
    /// Admitted campaigns, in admission order.
    pub admitted: Vec<AdmittedCampaign>,
    /// Refused submissions, in refusal order.
    pub rejected: Vec<RejectedSubmission>,
    /// Admission indices in dispatch order — the exact sequence handed
    /// to the fleet executor.
    pub dispatch_order: Vec<usize>,
    /// Scheduling rounds the session spanned.
    pub rounds: usize,
    /// Per-tenant scheduling statistics, in tenant declaration order.
    pub tenants: Vec<TenantSchedule>,
}

impl ServicePlan {
    /// A tenant's fairness ratio: the share of contended dispatch slots
    /// it won, normalised by its weighted fair share. 1.0 means the
    /// tenant received exactly its entitlement while backlogged; the
    /// S2 rung and `bench_service` gate this ≥ a floor for every
    /// well-behaved tenant under a hostile flood. `None` for unknown
    /// tenants; 1.0 for tenants that never contended.
    pub fn fairness_ratio(&self, tenant: &str) -> Option<f64> {
        let total_weight: u64 = self.tenants.iter().map(|t| u64::from(t.weight)).sum();
        let t = self.tenants.iter().find(|t| t.name == tenant)?;
        if t.contended_slots == 0 {
            return Some(1.0);
        }
        let fair_share = f64::from(t.weight) / total_weight.max(1) as f64;
        Some((t.received_slots as f64 / t.contended_slots as f64) / fair_share)
    }
}

/// Why a service config could not be planned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// Two tenants share a name, so admission could not attribute
    /// submissions.
    DuplicateTenant {
        /// The colliding tenant name.
        name: String,
    },
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::DuplicateTenant { name } => {
                write!(f, "tenant {name:?} is declared twice")
            }
        }
    }
}

impl std::error::Error for ServiceError {}

/// Compute a service session's complete admission + dispatch schedule.
///
/// Each scheduling round ingests up to `ingest_per_round` arrivals
/// (applying quota admission control per tenant) and then fills up to
/// `dispatch_per_round` dispatch slots by stride fair-share: the slot
/// goes to the backlogged tenant with the smallest `dispatched / weight`
/// ratio, compared by integer cross-multiplication (no float ties),
/// declaration order breaking exact ties. The loop runs until the
/// arrival trace is drained and every queue is empty.
pub fn plan_service(cfg: &ServiceConfig) -> Result<ServicePlan, ServiceError> {
    for (i, t) in cfg.tenants.iter().enumerate() {
        if cfg.tenants[..i].iter().any(|u| u.name == t.name) {
            return Err(ServiceError::DuplicateTenant {
                name: t.name.clone(),
            });
        }
    }

    struct TenantState {
        queue: VecDeque<usize>,
        dispatched: u64,
        admitted_total: usize,
    }
    let mut states: Vec<TenantState> = cfg
        .tenants
        .iter()
        .map(|_| TenantState {
            queue: VecDeque::new(),
            dispatched: 0,
            admitted_total: 0,
        })
        .collect();
    let mut schedules: Vec<TenantSchedule> = cfg
        .tenants
        .iter()
        .map(|t| TenantSchedule {
            name: t.name.clone(),
            weight: t.effective_weight(),
            submitted: 0,
            admitted: 0,
            rejected: 0,
            contended_slots: 0,
            received_slots: 0,
        })
        .collect();

    let reg = RngRegistry::new(cfg.master_seed);
    let mut admitted: Vec<AdmittedCampaign> = Vec::new();
    let mut rejected: Vec<RejectedSubmission> = Vec::new();
    let mut dispatch_order: Vec<usize> = Vec::new();
    let mut cursor = 0usize;
    let mut round = 0usize;
    let mut slot = 0usize;

    loop {
        let backlog = states.iter().any(|s| !s.queue.is_empty());
        if cursor >= cfg.submissions.len() && !backlog {
            break;
        }

        // Ingest: pull arrivals through admission control.
        for _ in 0..cfg.effective_ingest_per_round() {
            if cursor >= cfg.submissions.len() {
                break;
            }
            let submission_index = cursor;
            let sub = &cfg.submissions[submission_index];
            cursor += 1;
            let Some(t) = cfg.tenants.iter().position(|t| t.name == sub.tenant) else {
                rejected.push(RejectedSubmission {
                    submission_index,
                    tenant: sub.tenant.clone(),
                    round,
                    reason: RejectReason::UnknownTenant,
                });
                continue;
            };
            schedules[t].submitted += 1;
            let reason = if states[t].admitted_total >= cfg.tenants[t].effective_max_admitted() {
                Some(RejectReason::AdmissionCapExhausted)
            } else if states[t].queue.len() >= cfg.tenants[t].effective_max_queued() {
                Some(RejectReason::QueueFull)
            } else {
                None
            };
            if let Some(reason) = reason {
                schedules[t].rejected += 1;
                rejected.push(RejectedSubmission {
                    submission_index,
                    tenant: sub.tenant.clone(),
                    round,
                    reason,
                });
                continue;
            }
            let admission_index = admitted.len();
            admitted.push(AdmittedCampaign {
                admission_index,
                submission_index,
                tenant: sub.tenant.clone(),
                seed: reg.shard_seed(SERVICE_SHARD_LABEL, admission_index as u64),
                admitted_round: round,
                dispatched_round: 0,
                dispatch_slot: 0,
            });
            states[t].queue.push_back(admission_index);
            states[t].admitted_total += 1;
            schedules[t].admitted += 1;
        }

        // Dispatch: stride fair-share over backlogged tenants.
        for _ in 0..cfg.effective_dispatch_per_round() {
            let mut winner: Option<usize> = None;
            for (t, s) in states.iter().enumerate() {
                if s.queue.is_empty() {
                    continue;
                }
                winner = Some(match winner {
                    None => t,
                    Some(best) => {
                        // t beats best iff dispatched_t / weight_t <
                        // dispatched_best / weight_best, cross-multiplied
                        // so there is no float tie ambiguity.
                        let lhs = u128::from(s.dispatched) * u128::from(schedules[best].weight);
                        let rhs =
                            u128::from(states[best].dispatched) * u128::from(schedules[t].weight);
                        if lhs < rhs {
                            t
                        } else {
                            best
                        }
                    }
                });
            }
            let Some(t) = winner else {
                break;
            };
            for (u, s) in states.iter().enumerate() {
                if !s.queue.is_empty() {
                    schedules[u].contended_slots += 1;
                }
            }
            schedules[t].received_slots += 1;
            let admission_index = states[t]
                .queue
                .pop_front()
                .expect("winner has a backlogged queue");
            admitted[admission_index].dispatched_round = round;
            admitted[admission_index].dispatch_slot = slot;
            dispatch_order.push(admission_index);
            states[t].dispatched += 1;
            slot += 1;
        }

        round += 1;
    }

    Ok(ServicePlan {
        master_seed: cfg.master_seed,
        admitted,
        rejected,
        dispatch_order,
        rounds: round,
        tenants: schedules,
    })
}

/// Per-tenant session outcomes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantReport {
    /// Tenant identity.
    pub name: String,
    /// Fair-share weight.
    pub weight: u32,
    /// Submissions naming this tenant.
    pub submitted: usize,
    /// Submissions admitted.
    pub admitted: usize,
    /// Submissions refused.
    pub rejected: usize,
    /// Admitted campaigns that ran to completion (equals `admitted` in
    /// an uninterrupted session).
    pub completed: usize,
    /// Total experiments across the tenant's campaigns.
    pub experiments: u64,
    /// Total distinct discoveries across the tenant's campaigns.
    pub distinct_discoveries: u64,
    /// Best score any of the tenant's campaigns measured.
    pub best_score: f64,
    /// Mean queue wait (rounds between admission and dispatch).
    pub mean_wait_rounds: f64,
    /// Worst queue wait.
    pub max_wait_rounds: usize,
    /// Dispatch slots contended for (see [`TenantSchedule`]).
    pub contended_slots: usize,
    /// Dispatch slots won.
    pub received_slots: usize,
    /// Fairness ratio (share won / weighted fair share; 1.0 = exact
    /// entitlement).
    pub fairness_ratio: f64,
}

/// Outcome of a service session. Pure function of `(space,
/// ServiceConfig minus threads)`: thread count never changes any field.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceReport {
    /// Master seed of the session.
    pub master_seed: u64,
    /// Per-tenant outcomes, in tenant declaration order.
    pub tenants: Vec<TenantReport>,
    /// Refused submissions, in refusal order.
    pub rejected: Vec<RejectedSubmission>,
    /// Scheduling rounds the session spanned.
    pub rounds: usize,
    /// p99 queue wait in rounds across admitted campaigns — the
    /// deterministic time-to-first-iteration proxy.
    pub p99_wait_rounds: usize,
    /// Mean queue wait in rounds across admitted campaigns.
    pub mean_wait_rounds: f64,
    /// The executed campaigns folded with the fleet's deterministic
    /// aggregation: per-campaign reports in **admission order**, plus
    /// per-cell summaries and totals.
    pub fleet: FleetReport,
}

fn percentile_wait(waits: &[usize], p: f64) -> usize {
    if waits.is_empty() {
        return 0;
    }
    let mut sorted = waits.to_vec();
    sorted.sort_unstable();
    let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn assemble_report(
    cfg: &ServiceConfig,
    plan: &ServicePlan,
    reports: Vec<CampaignReport>,
) -> ServiceReport {
    debug_assert_eq!(reports.len(), plan.admitted.len());
    let waits: Vec<usize> = plan
        .admitted
        .iter()
        .map(AdmittedCampaign::wait_rounds)
        .collect();
    let mean_wait_rounds = if waits.is_empty() {
        0.0
    } else {
        waits.iter().sum::<usize>() as f64 / waits.len() as f64
    };
    let tenants = plan
        .tenants
        .iter()
        .map(|sched| {
            let mut completed = 0usize;
            let mut experiments = 0u64;
            let mut distinct = 0u64;
            let mut best = f64::NEG_INFINITY;
            let mut wait_sum = 0usize;
            let mut wait_max = 0usize;
            for (a, r) in plan.admitted.iter().zip(&reports) {
                if a.tenant != sched.name {
                    continue;
                }
                completed += 1;
                experiments += r.experiments;
                distinct += r.distinct_discoveries as u64;
                best = best.max(r.best_score);
                wait_sum += a.wait_rounds();
                wait_max = wait_max.max(a.wait_rounds());
            }
            TenantReport {
                name: sched.name.clone(),
                weight: sched.weight,
                submitted: sched.submitted,
                admitted: sched.admitted,
                rejected: sched.rejected,
                completed,
                experiments,
                distinct_discoveries: distinct,
                best_score: if best.is_finite() { best } else { 0.0 },
                mean_wait_rounds: if completed == 0 {
                    0.0
                } else {
                    wait_sum as f64 / completed as f64
                },
                max_wait_rounds: wait_max,
                contended_slots: sched.contended_slots,
                received_slots: sched.received_slots,
                fairness_ratio: plan
                    .fairness_ratio(&sched.name)
                    .expect("schedule names only registered tenants"),
            }
        })
        .collect();
    ServiceReport {
        master_seed: cfg.master_seed,
        tenants,
        rejected: plan.rejected.clone(),
        rounds: plan.rounds,
        p99_wait_rounds: percentile_wait(&waits, 0.99),
        mean_wait_rounds,
        fleet: FleetReport::from_reports(cfg.master_seed, reports),
    }
}

/// The exact campaign configs the service will execute, keyed by
/// admission index: the submitted config with the admission-derived seed
/// spliced in.
fn admitted_configs(cfg: &ServiceConfig, plan: &ServicePlan) -> Vec<CampaignConfig> {
    plan.admitted
        .iter()
        .map(|a| {
            let mut c = cfg.submissions[a.submission_index].campaign.clone();
            c.seed = a.seed;
            c
        })
        .collect()
}

/// Run a full service session, streaming the whole schedule through the
/// given observer sinks.
///
/// Events are streamed in deterministic schedule order, round by round:
/// each round's admissions and rejections (in arrival order), then its
/// dispatches (in slot order), each dispatch followed by the dispatched
/// campaign's complete event stream. The stream is emitted after
/// execution commits, so observation can never perturb a campaign — the
/// same one-way contract every [`LedgerObserver`] sink already has.
pub fn run_service_observed(
    space: &MaterialsSpace,
    cfg: &ServiceConfig,
    observers: &mut [&mut dyn LedgerObserver],
) -> Result<(ServiceReport, FleetLedger), ServiceError> {
    let plan = plan_service(cfg)?;
    let configs = admitted_configs(cfg, &plan);
    let tasks: Vec<(usize, CampaignConfig)> = plan
        .dispatch_order
        .iter()
        .map(|&ai| (ai, configs[ai].clone()))
        .collect();
    let mut slots: Vec<Option<(CampaignReport, CampaignLedger)>> =
        (0..plan.admitted.len()).map(|_| None).collect();
    for (ai, pair) in execute_fleet_tasks_with(&tasks, cfg.effective_threads(), None, |c| {
        run_campaign_recorded(space, c)
    }) {
        slots[ai] = Some(pair);
    }
    let mut reports = Vec::with_capacity(slots.len());
    let mut ledgers = Vec::with_capacity(slots.len());
    for slot in slots {
        let (report, ledger) = slot.expect("every dispatched task claimed exactly once");
        reports.push(report);
        ledgers.push(ledger);
    }

    if !observers.is_empty() {
        stream_session(&plan, &ledgers, observers);
    }

    let report = assemble_report(cfg, &plan, reports);
    let ledger = FleetLedger {
        master_seed: cfg.master_seed,
        campaigns: ledgers,
    };
    Ok((report, ledger))
}

/// Feed the session's event stream — service-level scheduling events
/// interleaved with per-campaign streams — to every observer, in
/// deterministic schedule order.
fn stream_session(
    plan: &ServicePlan,
    ledgers: &[CampaignLedger],
    observers: &mut [&mut dyn LedgerObserver],
) {
    fn emit(observers: &mut [&mut dyn LedgerObserver], event: &CampaignEvent) {
        for obs in observers.iter_mut() {
            obs.on_event(event);
        }
    }
    // Bucket schedule items by round; admissions/rejections are already
    // in arrival order, dispatches in slot order.
    for round in 0..plan.rounds {
        for a in plan.admitted.iter().filter(|a| a.admitted_round == round) {
            emit(
                observers,
                &CampaignEvent::SubmissionAdmitted {
                    tenant: a.tenant.clone().into(),
                    admission_index: a.admission_index,
                    round,
                },
            );
        }
        for r in plan.rejected.iter().filter(|r| r.round == round) {
            emit(
                observers,
                &CampaignEvent::SubmissionRejected {
                    tenant: r.tenant.clone().into(),
                    submission_index: r.submission_index,
                    round,
                    reason: r.reason,
                },
            );
        }
        for &ai in plan.dispatch_order.iter() {
            let a = &plan.admitted[ai];
            if a.dispatched_round != round {
                continue;
            }
            emit(
                observers,
                &CampaignEvent::CampaignDispatched {
                    tenant: a.tenant.clone().into(),
                    admission_index: ai,
                    round,
                    slot: a.dispatch_slot,
                },
            );
            // The dispatched campaign's stream is already one contiguous
            // slice — deliver it as a single batch per observer instead
            // of a per-event virtual call (identical order, identical
            // stream; see `LedgerObserver::on_batch`).
            for obs in observers.iter_mut() {
                obs.on_batch(&ledgers[ai].events);
            }
        }
    }
}

/// Run a full service session: admit, fair-share schedule, execute, and
/// aggregate. See [`run_service_observed`] to stream progress.
pub fn run_service(
    space: &MaterialsSpace,
    cfg: &ServiceConfig,
) -> Result<(ServiceReport, FleetLedger), ServiceError> {
    run_service_observed(space, cfg, &mut [])
}

/// A durable record of a partially executed service session: the
/// admission-order seed handshake plus every committed campaign's report
/// and ledger — the [`FleetLedgerCheckpoint`](crate::FleetLedgerCheckpoint)
/// recipe applied to the service queue.
///
/// The pending queue itself is *not* stored: the schedule is a pure
/// function of the config ([`plan_service`]), so resume re-derives it
/// and re-runs exactly the admissions whose slots are `None`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceCheckpoint {
    /// Master seed of the interrupted session.
    pub master_seed: u64,
    /// Derived seed per admitted campaign, in admission order — the
    /// resume handshake.
    pub seeds: Vec<u64>,
    /// Committed per-campaign reports, in admission order (`None` =
    /// lost in flight or never dispatched; re-run on resume).
    pub completed: Vec<Option<CampaignReport>>,
    /// Committed per-campaign ledgers, in admission order.
    pub ledgers: Vec<Option<CampaignLedger>>,
    /// Audit trail of the interruption itself (kill + checkpoint
    /// events). Deliberately not part of the merged session ledger: the
    /// uninterrupted session never crashed.
    pub events: Vec<CampaignEvent>,
}

impl ServiceCheckpoint {
    /// Campaigns whose reports committed.
    pub fn completed_count(&self) -> usize {
        self.completed.iter().filter(|c| c.is_some()).count()
    }

    /// Campaigns still to run on resume.
    pub fn remaining_count(&self) -> usize {
        self.completed.len() - self.completed_count()
    }

    /// Whether every admitted campaign committed.
    pub fn is_complete(&self) -> bool {
        self.remaining_count() == 0
    }
}

/// Why a service resume was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceResumeError {
    /// The config itself no longer plans (see [`ServiceError`]).
    Plan(ServiceError),
    /// Checkpoint admission count does not match the re-derived plan.
    ShapeMismatch {
        /// Admissions in the checkpoint.
        checkpoint: usize,
        /// Admissions the config plans.
        service: usize,
    },
    /// A derived seed differs from the checkpoint's — the checkpoint
    /// belongs to a different session (or the config drifted), so
    /// splicing its reports would fabricate results.
    SeedMismatch {
        /// First admission whose seed disagrees.
        index: usize,
    },
    /// A checkpoint slot has a committed report without its ledger (or
    /// vice versa) — the checkpoint was assembled inconsistently.
    LedgerMismatch {
        /// First admission whose report/ledger presence disagrees.
        index: usize,
    },
    /// Serialized checkpoint bytes were refused at the wire level
    /// (checksum, truncation, or structural corruption) before any
    /// resume handshake could run. See
    /// [`resume_service_bytes`](crate::ledger::wire::resume_service_bytes).
    Corrupt(crate::ledger::WireError),
}

impl std::fmt::Display for ServiceResumeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceResumeError::Plan(e) => write!(f, "config no longer plans: {e}"),
            ServiceResumeError::ShapeMismatch {
                checkpoint,
                service,
            } => write!(
                f,
                "checkpoint has {checkpoint} admissions, config plans {service}"
            ),
            ServiceResumeError::SeedMismatch { index } => write!(
                f,
                "admission {index}'s derived seed differs from the checkpoint — \
                 checkpoint does not belong to this service config"
            ),
            ServiceResumeError::LedgerMismatch { index } => write!(
                f,
                "admission {index} has a committed report and ledger that \
                 disagree on presence — the checkpoint is inconsistent"
            ),
            ServiceResumeError::Corrupt(e) => write!(f, "corrupt checkpoint bytes: {e}"),
        }
    }
}

impl std::error::Error for ServiceResumeError {}

/// Run a service session until `max_commits` campaigns have committed,
/// then die — the chaos entry point for service restart tests.
///
/// Work in flight at the kill is lost, exactly like a coordinator
/// `kill -9`: which campaigns committed depends on scheduling and is
/// *not* deterministic across thread counts. That is the point — the
/// resume invariant must hold from any crash state, and
/// [`resume_service`] reconstructs the identical session outputs from
/// every one of them.
pub fn run_service_until(
    space: &MaterialsSpace,
    cfg: &ServiceConfig,
    max_commits: usize,
) -> Result<ServiceCheckpoint, ServiceError> {
    let plan = plan_service(cfg)?;
    let configs = admitted_configs(cfg, &plan);
    let tasks: Vec<(usize, CampaignConfig)> = plan
        .dispatch_order
        .iter()
        .map(|&ai| (ai, configs[ai].clone()))
        .collect();
    let mut completed: Vec<Option<CampaignReport>> =
        (0..plan.admitted.len()).map(|_| None).collect();
    let mut ledgers: Vec<Option<CampaignLedger>> = (0..plan.admitted.len()).map(|_| None).collect();
    for (ai, (report, ledger)) in
        execute_fleet_tasks_with(&tasks, cfg.effective_threads(), Some(max_commits), |c| {
            run_campaign_recorded(space, c)
        })
    {
        completed[ai] = Some(report);
        ledgers[ai] = Some(ledger);
    }
    let committed = completed.iter().filter(|c| c.is_some()).count();
    let events = vec![
        CampaignEvent::CoordinatorKilled {
            after_commits: committed,
        },
        CampaignEvent::CheckpointTaken {
            committed,
            total: completed.len(),
        },
    ];
    Ok(ServiceCheckpoint {
        master_seed: cfg.master_seed,
        seeds: plan.admitted.iter().map(|a| a.seed).collect(),
        completed,
        ledgers,
        events,
    })
}

/// Resume an interrupted service session: re-derive the schedule, verify
/// the checkpoint handshake, re-run only the campaigns that never
/// committed, and splice reports *and ledgers* in admission order.
///
/// Both the [`ServiceReport`] and the merged [`FleetLedger`] are
/// **byte-identical** to the uninterrupted [`run_service`] outputs — at
/// any thread count on either side of the kill. The restart is invisible
/// to any downstream audit that replays the session ledger.
pub fn resume_service(
    space: &MaterialsSpace,
    cfg: &ServiceConfig,
    checkpoint: &ServiceCheckpoint,
) -> Result<(ServiceReport, FleetLedger), ServiceResumeError> {
    let plan = plan_service(cfg).map_err(ServiceResumeError::Plan)?;
    if checkpoint.seeds.len() != plan.admitted.len()
        || checkpoint.completed.len() != plan.admitted.len()
        || checkpoint.ledgers.len() != plan.admitted.len()
    {
        return Err(ServiceResumeError::ShapeMismatch {
            checkpoint: checkpoint
                .seeds
                .len()
                .max(checkpoint.completed.len())
                .max(checkpoint.ledgers.len()),
            service: plan.admitted.len(),
        });
    }
    for (i, a) in plan.admitted.iter().enumerate() {
        if a.seed != checkpoint.seeds[i] {
            return Err(ServiceResumeError::SeedMismatch { index: i });
        }
    }
    if let Some(index) = checkpoint
        .ledgers
        .iter()
        .zip(&checkpoint.completed)
        .position(|(l, r)| l.is_some() != r.is_some())
    {
        return Err(ServiceResumeError::LedgerMismatch { index });
    }

    let configs = admitted_configs(cfg, &plan);
    let missing: Vec<(usize, CampaignConfig)> = plan
        .dispatch_order
        .iter()
        .filter(|&&ai| checkpoint.completed[ai].is_none())
        .map(|&ai| (ai, configs[ai].clone()))
        .collect();
    let mut reports: Vec<Option<CampaignReport>> = checkpoint.completed.clone();
    let mut ledgers: Vec<Option<CampaignLedger>> = checkpoint.ledgers.clone();
    for (ai, (report, ledger)) in
        execute_fleet_tasks_with(&missing, cfg.effective_threads(), None, |c| {
            run_campaign_recorded(space, c)
        })
    {
        reports[ai] = Some(report);
        ledgers[ai] = Some(ledger);
    }
    let ordered: Vec<CampaignReport> = reports
        .into_iter()
        .map(|r| r.expect("checkpointed or just re-run"))
        .collect();
    let campaigns: Vec<CampaignLedger> = ledgers
        .into_iter()
        .map(|l| l.expect("checkpointed or just re-run"))
        .collect();
    let report = assemble_report(cfg, &plan, ordered);
    Ok((
        report,
        FleetLedger {
            master_seed: cfg.master_seed,
            campaigns,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Cell;
    use evoflow_sim::SimDuration;

    fn space() -> MaterialsSpace {
        MaterialsSpace::generate(3, 8, 20260808)
    }

    fn campaign() -> CampaignConfig {
        let mut c = CampaignConfig::for_cell(Cell::traditional_wms(), 0);
        c.horizon = SimDuration::from_days(1);
        c
    }

    fn two_tenant_config() -> ServiceConfig {
        let mut cfg = ServiceConfig::new(11);
        cfg.threads = 1;
        cfg.push_tenant(TenantSpec::new("alice").with_weight(2));
        cfg.push_tenant(TenantSpec::new("bob"));
        for _ in 0..3 {
            cfg.submit("alice", campaign());
            cfg.submit("bob", campaign());
        }
        cfg
    }

    #[test]
    fn plan_is_deterministic_and_conserving() {
        let cfg = two_tenant_config();
        let a = plan_service(&cfg).unwrap();
        let b = plan_service(&cfg).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.admitted.len() + a.rejected.len(), cfg.submissions.len());
        assert_eq!(a.dispatch_order.len(), a.admitted.len());
        let mut sorted = a.dispatch_order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..a.admitted.len()).collect::<Vec<_>>());
    }

    #[test]
    fn admission_seeds_are_distinct_and_derived() {
        let plan = plan_service(&two_tenant_config()).unwrap();
        let seeds: std::collections::BTreeSet<u64> = plan.admitted.iter().map(|a| a.seed).collect();
        assert_eq!(seeds.len(), plan.admitted.len());
        let reg = RngRegistry::new(11);
        assert_eq!(
            plan.admitted[0].seed,
            reg.shard_seed(SERVICE_SHARD_LABEL, 0)
        );
    }

    #[test]
    fn stride_dispatch_respects_weights() {
        // alice (weight 2) should win two slots for every one of bob's
        // while both are backlogged.
        let mut cfg = ServiceConfig::new(5);
        cfg.threads = 1;
        cfg.ingest_per_round = 100;
        cfg.dispatch_per_round = 1;
        cfg.push_tenant(TenantSpec::new("alice").with_weight(2).with_max_queued(100));
        cfg.push_tenant(TenantSpec::new("bob").with_max_queued(100));
        for _ in 0..6 {
            cfg.submit("alice", campaign());
        }
        for _ in 0..3 {
            cfg.submit("bob", campaign());
        }
        let plan = plan_service(&cfg).unwrap();
        // First 9 slots: alice, bob, alice, alice, bob, alice, ...
        let owners: Vec<&str> = plan
            .dispatch_order
            .iter()
            .map(|&ai| plan.admitted[ai].tenant.as_str())
            .collect();
        let alice_in_first_six = owners[..6].iter().filter(|t| **t == "alice").count();
        assert_eq!(alice_in_first_six, 4, "weighted share violated: {owners:?}");
        assert!((plan.fairness_ratio("alice").unwrap() - 1.0).abs() < 0.35);
        assert!((plan.fairness_ratio("bob").unwrap() - 1.0).abs() < 0.55);
        assert_eq!(plan.fairness_ratio("nobody"), None);
    }

    #[test]
    fn quota_rejections_are_typed_and_exact() {
        let mut cfg = ServiceConfig::new(9);
        cfg.threads = 1;
        cfg.ingest_per_round = 10;
        cfg.dispatch_per_round = 1;
        cfg.push_tenant(TenantSpec::new("alice").with_max_queued(2));
        for _ in 0..10 {
            cfg.submit("alice", campaign());
        }
        cfg.submit("mallory", campaign());
        let plan = plan_service(&cfg).unwrap();
        // Round 0 ingests 10: 2 admitted, 8 queue-full. Later rounds
        // ingest the mallory submission (unknown tenant).
        assert!(plan
            .rejected
            .iter()
            .any(|r| r.reason == RejectReason::QueueFull));
        assert!(plan
            .rejected
            .iter()
            .any(|r| r.reason == RejectReason::UnknownTenant && r.tenant == "mallory"));
        assert_eq!(plan.admitted.len() + plan.rejected.len(), 11);
        // Queue depth never exceeds the quota: check by replaying
        // admitted/dispatched rounds.
        for round in 0..plan.rounds {
            let depth = plan
                .admitted
                .iter()
                .filter(|a| a.admitted_round <= round && a.dispatched_round > round)
                .count();
            assert!(depth <= 2, "queue depth {depth} at round {round}");
        }
    }

    #[test]
    fn admission_cap_rejects_beyond_session_budget() {
        let mut cfg = ServiceConfig::new(9);
        cfg.threads = 1;
        cfg.push_tenant(
            TenantSpec::new("alice")
                .with_max_admitted(2)
                .with_max_queued(50),
        );
        for _ in 0..5 {
            cfg.submit("alice", campaign());
        }
        let plan = plan_service(&cfg).unwrap();
        assert_eq!(plan.admitted.len(), 2);
        assert_eq!(
            plan.rejected
                .iter()
                .filter(|r| r.reason == RejectReason::AdmissionCapExhausted)
                .count(),
            3
        );
    }

    #[test]
    fn invalid_configs_are_refused_and_zeros_normalise() {
        let mut cfg = ServiceConfig::new(1);
        cfg.push_tenant(TenantSpec::new("a"));
        cfg.submit("a", campaign());
        cfg.push_tenant(TenantSpec::new("a"));
        assert_eq!(
            plan_service(&cfg),
            Err(ServiceError::DuplicateTenant { name: "a".into() })
        );

        // Zeroed knobs (what a legacy decode produces) plan exactly like
        // the documented defaults, so no config can stall the scheduler.
        let mut zeroed = ServiceConfig::new(1);
        zeroed.threads = 1;
        zeroed.ingest_per_round = 0;
        zeroed.dispatch_per_round = 0;
        zeroed.push_tenant(TenantSpec {
            name: "a".into(),
            weight: 0,
            max_queued: 0,
            max_admitted: 0,
        });
        for _ in 0..5 {
            zeroed.submit("a", campaign());
        }
        let mut explicit = zeroed.clone();
        explicit.ingest_per_round = DEFAULT_INGEST_PER_ROUND;
        explicit.dispatch_per_round = DEFAULT_DISPATCH_PER_ROUND;
        explicit.tenants[0].weight = 1;
        let zero_plan = plan_service(&zeroed).unwrap();
        assert_eq!(zero_plan, plan_service(&explicit).unwrap());
        assert_eq!(zero_plan.admitted.len(), 5);
        assert!(zero_plan.rejected.is_empty(), "no quotas declared");

        // An empty service plans to an empty session.
        let plan = plan_service(&ServiceConfig::new(1)).unwrap();
        assert_eq!(plan.rounds, 0);
        assert!(plan.admitted.is_empty());
    }

    #[test]
    fn service_report_is_thread_count_invariant() {
        let space = space();
        let mut cfg = two_tenant_config();
        let (serial_report, serial_ledger) = run_service(&space, &cfg).unwrap();
        for threads in [2usize, 4] {
            cfg.threads = threads;
            let (r, l) = run_service(&space, &cfg).unwrap();
            assert_eq!(r, serial_report, "threads={threads}");
            assert_eq!(l, serial_ledger, "threads={threads}");
        }
    }

    #[test]
    fn killed_service_resumes_to_identical_outputs() {
        let space = space();
        let cfg = two_tenant_config();
        let (report, ledger) = run_service(&space, &cfg).unwrap();
        for kill_after in 0..=6usize {
            let ckpt = run_service_until(&space, &cfg, kill_after).unwrap();
            assert!(ckpt.completed_count() <= kill_after);
            let (r, l) = resume_service(&space, &cfg, &ckpt).unwrap();
            assert_eq!(r, report, "kill_after={kill_after}");
            assert_eq!(l, ledger, "kill_after={kill_after}");
        }
    }

    #[test]
    fn resume_refuses_drifted_configs() {
        let space = space();
        let cfg = two_tenant_config();
        let ckpt = run_service_until(&space, &cfg, 2).unwrap();

        let mut other = cfg.clone();
        other.master_seed = 999;
        assert_eq!(
            resume_service(&space, &other, &ckpt).unwrap_err(),
            ServiceResumeError::SeedMismatch { index: 0 }
        );

        let mut bigger = cfg.clone();
        bigger.submit("alice", campaign());
        assert!(matches!(
            resume_service(&space, &bigger, &ckpt).unwrap_err(),
            ServiceResumeError::ShapeMismatch { .. }
        ));

        let mut torn = ckpt.clone();
        let committed = torn.completed.iter().position(|c| c.is_some()).unwrap();
        torn.ledgers[committed] = None;
        assert_eq!(
            resume_service(&space, &cfg, &torn).unwrap_err(),
            ServiceResumeError::LedgerMismatch { index: committed }
        );

        let mut broken = cfg.clone();
        broken.push_tenant(TenantSpec::new("alice"));
        assert_eq!(
            resume_service(&space, &broken, &ckpt).unwrap_err(),
            ServiceResumeError::Plan(ServiceError::DuplicateTenant {
                name: "alice".into()
            })
        );
    }

    #[test]
    fn checkpoint_audit_trail_reflects_actual_commits() {
        let space = space();
        let cfg = two_tenant_config();
        let ckpt = run_service_until(&space, &cfg, 100).unwrap();
        assert!(ckpt.is_complete());
        assert!(ckpt
            .events
            .contains(&CampaignEvent::CoordinatorKilled { after_commits: 6 }));
        assert!(ckpt.events.contains(&CampaignEvent::CheckpointTaken {
            committed: 6,
            total: 6
        }));
    }

    #[test]
    fn observed_session_streams_schedule_and_campaign_events() {
        let space = space();
        let mut cfg = two_tenant_config();
        cfg.submit("mallory", campaign()); // one rejection in the stream
        let mut tape = crate::ledger::CampaignLedger::new();
        let (report, ledger) = run_service_observed(&space, &cfg, &mut [&mut tape]).unwrap();
        let admitted = report.tenants.iter().map(|t| t.admitted).sum::<usize>();
        let dispatched = tape
            .events
            .iter()
            .filter(|e| matches!(e, CampaignEvent::CampaignDispatched { .. }))
            .count();
        let admissions = tape
            .events
            .iter()
            .filter(|e| matches!(e, CampaignEvent::SubmissionAdmitted { .. }))
            .count();
        let rejections = tape
            .events
            .iter()
            .filter(|e| matches!(e, CampaignEvent::SubmissionRejected { .. }))
            .count();
        assert_eq!(admissions, admitted);
        assert_eq!(dispatched, admitted);
        assert_eq!(rejections, 1);
        // Total stream = scheduling events + every campaign's events.
        assert_eq!(
            tape.events.len(),
            admissions + rejections + dispatched + ledger.total_events()
        );
        // Streaming never perturbs the session.
        let (unobserved, _) = run_service(&space, &cfg).unwrap();
        assert_eq!(unobserved, report);
    }

    #[test]
    fn percentile_wait_is_exact_on_edges() {
        assert_eq!(percentile_wait(&[], 0.99), 0);
        assert_eq!(percentile_wait(&[4], 0.99), 4);
        let waits: Vec<usize> = (1..=100).collect();
        assert_eq!(percentile_wait(&waits, 0.99), 99);
        assert_eq!(percentile_wait(&waits, 0.5), 50);
    }
}
