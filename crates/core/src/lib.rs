//! # evoflow-core — the evolution framework itself
//!
//! The paper's primary contribution, executable:
//!
//! * [`matrix`] — the 5×5 evolution matrix (Table 3): cell taxonomy with
//!   the paper's representative systems, a descriptive [`matrix::classify`]
//!   placing real systems in cells, and the prescriptive
//!   [`matrix::TrajectoryPlanner`] (intelligence-first, then composition,
//!   §3.4) with per-transition infrastructure requirements.
//! * [`runtime`] — the six-layer architecture of Figure 2 assembled as a
//!   [`runtime::LabRuntime`] with component inventory and inter-layer
//!   smoke paths.
//! * [`federation`] — Figure 3's deployment: autonomous facilities,
//!   capability discovery, authenticated cross-facility handshakes, fabric
//!   transfers.
//! * [`domain`] — the synthetic materials landscape (seeded peaks +
//!   measurement noise) standing in for A-lab-style campaigns.
//! * [`campaign`] — the Figure 4 discovery loop, runnable at *any* matrix
//!   cell under human-gated or autonomous coordination — the engine behind
//!   the 10–100× acceleration measurement.
//! * [`planner`] — the pluggable decide step: every Table 1 intelligence
//!   level as a swappable [`planner::Planner`], plus `evoflow-learn`-backed
//!   bandit/swarm/meta policies any cell can opt into.
//! * [`fleet`] — the fleet executor: M campaigns sharded across N worker
//!   threads with derived per-shard seeds, work-stealing over
//!   heterogeneous cells, and deterministic aggregation — byte-identical
//!   results at any thread count, including across a coordinator crash
//!   ([`fleet::FleetCheckpoint`] / [`fleet::resume_campaign_fleet`]).
//! * [`federated`] — facility-aware fleet scheduling: a pluggable
//!   [`federated::PlacementPolicy`] (round-robin, queue-aware least-wait,
//!   data-locality) places each campaign onto a federation facility,
//!   charging simulated batch-queue wait and fabric data movement, with a
//!   seeded facility-outage drain + deterministic re-routing, aggregated
//!   into a thread-count-invariant [`federated::FederatedReport`].
//! * [`ledger`] — the event-sourced audit substrate: one deterministic
//!   [`ledger::CampaignEvent`] stream through campaign → fleet →
//!   federated, pluggable [`ledger::LedgerObserver`] sinks (knowledge
//!   ingestion, metrics bridge, bounded live telemetry), and
//!   [`ledger::replay_ledger`], which reconstructs a byte-identical
//!   [`campaign::CampaignReport`] (plus the provenance and knowledge
//!   stores) purely from the serialized events. [`ledger::wire`] adds
//!   the compact checksummed binary encoding (≥5× smaller than JSON,
//!   segment-granular tamper refusal, streaming bounded-memory replay
//!   via [`ledger::wire::replay_ledger_bytes`]) behind
//!   [`ledger::LedgerEncoding`], with legacy JSON decoding pinned
//!   forever.
//! * [`service`] — the multi-tenant front door: a long-lived scheduler
//!   that admits campaign submissions under per-tenant quotas
//!   ([`service::TenantSpec`]), dispatches by stride fair-share, and
//!   multiplexes admitted campaigns onto the fleet executor — with the
//!   whole schedule planned as a pure function of the config
//!   ([`service::plan_service`]), so sessions are byte-identical across
//!   thread counts and kill/resume
//!   ([`service::ServiceCheckpoint`] / [`service::resume_service`]).
//! * [`profile`] — hot-path phase profiling: near-zero-overhead scoped
//!   counters (propose / execute / observe / emit / steal) threaded
//!   through the campaign loop and fleet executor, aggregated into a
//!   [`profile::PhaseBreakdown`] whose counts are deterministic.
//! * [`governance`] — §4's policy enforcement, guardrails, and
//!   accountability: sample budgets, human approval for irreversible
//!   actions, rate limits, audit trails.
//! * [`ide`] — the Science-IDE text renderer (§5.2's new human-interface
//!   category): campaign status, evolution-plane position, trajectory,
//!   and intervention panels.

pub mod campaign;
pub mod domain;
pub mod federated;
pub mod federation;
pub mod fleet;
pub mod governance;
pub mod ide;
pub mod ledger;
pub mod matrix;
pub mod planner;
pub mod profile;
pub mod runtime;
pub mod service;

pub use campaign::{
    run_campaign, run_campaign_observed, run_campaign_profiled, run_campaign_recorded,
    CampaignConfig, CampaignReport, CoordinationMode,
};
pub use domain::MaterialsSpace;
pub use federated::{
    campaign_demand, resume_campaign_fleet_federated, run_campaign_fleet_federated,
    run_campaign_fleet_federated_recorded, run_campaign_fleet_federated_until, CampaignDemand,
    FacilityUsage, FederatedCheckpoint, FederatedConfig, FederatedError, FederatedReport,
    FederatedResumeError, PlacementPolicy, PlacementPolicyKind, PlacementRecord, PlacementRequest,
    SiteSpec,
};
pub use federation::{Federation, FederationError, Handshake};
pub use fleet::{
    fleet_death_point, resume_campaign_fleet, resume_campaign_fleet_recorded, run_campaign_fleet,
    run_campaign_fleet_profiled, run_campaign_fleet_recorded, run_campaign_fleet_recorded_until,
    run_campaign_fleet_timed, run_campaign_fleet_until, CellSummary, DistSummary, FleetCheckpoint,
    FleetConfig, FleetLedgerCheckpoint, FleetReport, FleetResumeError, FleetTiming,
};
pub use governance::{Action, AuditRecord, GovernanceEngine, Policy, Verdict};
pub use ide::{panel, render_campaign, render_interventions, render_plane, render_trajectory};
pub use ledger::wire::{
    replay_fleet_ledger_bytes, replay_ledger_bytes, resume_campaign_fleet_recorded_bytes,
    resume_service_bytes, WireEncodeStats,
};
pub use ledger::{
    replay_fleet_ledger, replay_ledger, CampaignEvent, CampaignLedger, EventBatch, FleetLedger,
    KnowledgeSink, LedgerEncoding, LedgerObserver, MetricsSink, ReplayError, ReplayOutcome,
    RingTelemetry, WireError,
};
pub use matrix::{
    all_cells, classify, transition_requirement, Cell, SystemDescriptor, TrajectoryPlanner,
};
pub use planner::{
    BanditKind, EnsemblePlanner, Observation, PlanCtx, Planner, PlannerBuild, PlannerKind,
    PlannerTelemetry, DEFAULT_SPECIALISTS,
};
pub use profile::{Phase, PhaseBreakdown, PhaseProfiler, PhaseStat};
pub use runtime::{ComponentStatus, LabRuntime};
pub use service::{
    plan_service, resume_service, run_service, run_service_observed, run_service_until,
    AdmittedCampaign, RejectReason, RejectedSubmission, ServiceCheckpoint, ServiceConfig,
    ServiceError, ServicePlan, ServiceReport, ServiceResumeError, Submission, TenantReport,
    TenantSchedule, TenantSpec, DEFAULT_DISPATCH_PER_ROUND, DEFAULT_INGEST_PER_ROUND,
    SERVICE_SHARD_LABEL,
};
