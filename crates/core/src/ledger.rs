//! The event-sourced campaign ledger: one deterministic event stream
//! through campaign → fleet → federated execution.
//!
//! The paper's autonomous-science vision stands on end-to-end provenance
//! of agentic decisions (§4.2): every hypothesis, proposal, observation,
//! and placement must be reconstructable after the fact. Before this
//! module, each layer kept private bookkeeping — the campaign loop
//! in-lined its librarian calls, the fleet buffered reports, the
//! federation folded placements straight into its report. The ledger
//! replaces those silos with **one append-only event stream**:
//!
//! * [`CampaignEvent`] — the serializable, seed-deterministic event
//!   vocabulary, covering the discovery loop (iteration started,
//!   candidate proposed with its rationale, result observed, gate and Ω
//!   decisions), the fleet lifecycle (checkpoint taken, coordinator
//!   killed), and the federation (placement, transfer, outage).
//! * [`LedgerObserver`] — the pluggable sink trait. Every event is
//!   pushed to every observer as it happens; sinks never feed anything
//!   back into the run, so observation cannot perturb determinism.
//! * Shipped sinks: [`CampaignLedger`] (the durable stream itself),
//!   [`KnowledgeSink`] (rebuilds the knowledge graph + PROV store from
//!   events — the librarian's old in-line duty), [`MetricsSink`]
//!   (bridges events into an [`evoflow_sim`] [`MetricsRegistry`]), and
//!   [`RingTelemetry`] (a bounded live-tail buffer for dashboards).
//! * [`replay_ledger`] — the payoff: reconstructs a
//!   [`CampaignReport`] *and* the provenance/knowledge stores purely
//!   from the event stream, byte-identical to the live run's. The
//!   ledger is therefore sufficient evidence for everything the report
//!   claims — the audit + debugging substrate §4.2 calls for.
//!
//! **Determinism contract.** Events are emitted at fixed points in the
//! campaign loop and carry exact simulated times ([`SimTime`] /
//! [`SimDuration`] are integer nanoseconds) and exact measured values.
//! Two runs with the same config produce byte-identical serialized
//! ledgers; a fleet's merged ledger ([`FleetLedger`]) is byte-identical
//! at any thread count and across a coordinator kill + resume.
//!
//! ```
//! use evoflow_core::{replay_ledger, run_campaign_recorded, CampaignConfig, Cell, MaterialsSpace};
//! use evoflow_sim::SimDuration;
//!
//! let space = MaterialsSpace::generate(3, 8, 42);
//! let mut cfg = CampaignConfig::for_cell(Cell::autonomous_science(), 7);
//! cfg.horizon = SimDuration::from_days(1);
//!
//! let (live, ledger) = run_campaign_recorded(&space, &cfg);
//! let replayed = replay_ledger(&ledger).expect("well-formed ledger");
//! assert_eq!(replayed.report, live);
//! assert_eq!(replayed.provenance.activity_count(), live.prov_activities);
//! ```

use crate::campaign::CampaignReport;
use crate::fleet::FleetReport;
use crate::service::RejectReason;
use evoflow_agents::Candidate;
use evoflow_cogsim::TokenUsage;
use evoflow_knowledge::{KnowledgeGraph, ProvenanceStore};
use evoflow_sim::{MetricsRegistry, SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::borrow::Cow;
use std::collections::{BTreeSet, VecDeque};

pub mod wire;

pub use wire::{LedgerEncoding, WireError};

/// One entry in the campaign ledger.
///
/// Variants cover all three execution layers; a *campaign* ledger (the
/// stream [`run_campaign_recorded`](crate::run_campaign_recorded) emits)
/// contains only the discovery-loop variants, bracketed by
/// [`CampaignStarted`](CampaignEvent::CampaignStarted) and
/// [`CampaignFinished`](CampaignEvent::CampaignFinished). Fleet and
/// federation variants appear in checkpoint audit trails and in
/// [`FederatedReport::events`](crate::FederatedReport::events).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CampaignEvent {
    /// The campaign began: everything replay needs that is config-derived.
    CampaignStarted {
        /// Cell label (including any planner override descriptor).
        cell_label: Cow<'static, str>,
        /// Campaign master seed.
        seed: u64,
        /// Planner descriptor actually running the decide step.
        planner: Cow<'static, str>,
        /// Parallel lanes.
        lanes: usize,
        /// Simulated campaign length.
        horizon: SimDuration,
        /// Discovery threshold of the landscape.
        threshold: f64,
        /// Sample budget.
        max_experiments: u64,
        /// Whether knowledge-graph + provenance ingestion is on for this
        /// run (the config flag AND the planner's duty).
        records_knowledge: bool,
    },
    /// A lane entered its decision phase.
    IterationStarted {
        /// Lane index.
        lane: usize,
        /// Lane clock when the decision was requested.
        at: SimTime,
        /// When the decision (human or inference) completed.
        decision_ready: SimTime,
    },
    /// The planner proposed one candidate, with its full rationale.
    CandidateProposed {
        /// Lane index.
        lane: usize,
        /// Design-space coordinates.
        params: Vec<f64>,
        /// Generated rationale text. A `Cow` end to end: fixed-policy
        /// planners hand the loop `&'static str` rationales, and the
        /// event clones the `Cow` — no per-candidate allocation anywhere
        /// between the planner and the sinks.
        rationale: Cow<'static, str>,
        /// Model confidence in \[0,1\].
        confidence: f64,
        /// Ground-truth hallucination flag (simulator-only).
        hallucinated: bool,
    },
    /// The batch was scheduled onto the lane's instruments.
    ExecutionScheduled {
        /// Lane index.
        lane: usize,
        /// Candidates in the batch.
        batch: usize,
        /// Execution time charged to the lane.
        duration: SimDuration,
        /// When the batch completes.
        done_at: SimTime,
    },
    /// One experiment executed and was measured.
    ResultObserved {
        /// Lane index.
        lane: usize,
        /// 1-based experiment ordinal campaign-wide.
        experiment: u64,
        /// Measured figure of merit.
        score: f64,
        /// Whether the measurement crossed the discovery threshold.
        hit: bool,
        /// Latent peak attributed to the measurement, if it was a hit.
        peak: Option<usize>,
        /// Cumulative planner input tokens at observation time.
        tokens_in: u64,
        /// Cumulative planner output tokens at observation time.
        tokens_out: u64,
    },
    /// The validation gate's running rejection count changed.
    GateDecision {
        /// Lane whose iteration surfaced the change.
        lane: usize,
        /// Cumulative proposals rejected by the gate.
        rejected_total: u64,
    },
    /// The meta-optimizer Ω issued a strategy rewrite.
    OmegaRewrite {
        /// Lane whose iteration surfaced the rewrite.
        lane: usize,
        /// Cumulative rewrites issued.
        rewrites_total: u32,
    },
    /// A lane's iteration completed.
    IterationEnded {
        /// Lane index.
        lane: usize,
        /// Candidates the planner proposed this iteration (the tail may
        /// not have executed if the sample budget ran out mid-batch —
        /// count `ResultObserved` events for executions).
        proposed: usize,
        /// Hits among the candidates actually run.
        hits: u64,
        /// Cumulative simulated inference tokens after this iteration.
        tokens_total: u64,
    },
    /// The campaign ended. Carries every total the final report derives
    /// from the stream, so replay can cross-check its entire
    /// reconstruction — any event edit that shifts any report field is
    /// detected as an [`ReplayError::IntegrityMismatch`].
    CampaignFinished {
        /// Experiments executed.
        experiments: u64,
        /// Above-threshold measurements.
        total_hits: u64,
        /// Distinct latent peaks discovered.
        distinct_discoveries: usize,
        /// Best measured score (0 when no experiment ran).
        best_score: f64,
        /// Hours until the first discovery, if any.
        time_to_first_hours: Option<f64>,
        /// Total hours lanes spent waiting on decisions.
        decision_wait_hours: f64,
        /// Total hours lanes spent executing experiments.
        execution_hours: f64,
        /// Proposals rejected by the validation gate.
        rejected_proposals: u64,
        /// Ω strategy rewrites issued.
        omega_rewrites: u32,
        /// Knowledge-graph nodes recorded.
        kg_nodes: usize,
        /// Provenance activities recorded.
        prov_activities: usize,
        /// Total simulated inference tokens consumed.
        tokens: u64,
    },

    // ---- fleet layer --------------------------------------------------------
    /// A fleet checkpoint was written.
    CheckpointTaken {
        /// Campaigns whose reports committed.
        committed: usize,
        /// Campaigns in the fleet.
        total: usize,
    },
    /// The fleet coordinator was killed (seeded chaos injection).
    CoordinatorKilled {
        /// Commits after which the coordinator died.
        after_commits: usize,
    },

    // ---- federated layer ----------------------------------------------------
    /// A campaign was placed onto a facility.
    CampaignPlaced {
        /// Campaign (shard) index.
        campaign: usize,
        /// Facility chosen by the placement policy.
        facility: Cow<'static, str>,
        /// Nodes requested.
        nodes: u64,
        /// Submission time at the facility.
        arrival: SimTime,
        /// Whether this placement re-routed work off a drained facility.
        evacuation: bool,
    },
    /// Input data moved across the federation's fabric.
    DataTransferred {
        /// Campaign whose data moved.
        campaign: usize,
        /// Source site.
        from: Cow<'static, str>,
        /// Destination site.
        to: Cow<'static, str>,
        /// Gigabytes moved.
        gigabytes: f64,
        /// Fabric transfer time.
        duration: SimDuration,
        /// Whether this was an outage evacuation.
        evacuation: bool,
    },
    /// A facility outage drained a site.
    OutageStruck {
        /// Name of the drained facility.
        site: Cow<'static, str>,
        /// When the drain fired.
        at: SimTime,
        /// Queued campaigns re-routed to survivors.
        rerouted: usize,
    },

    // ---- service layer ------------------------------------------------------
    /// The multi-tenant service admitted a submission into its queue.
    SubmissionAdmitted {
        /// Tenant that submitted the campaign.
        tenant: Cow<'static, str>,
        /// Admission index (derives the campaign's seed).
        admission_index: usize,
        /// Scheduling round in which admission happened.
        round: usize,
    },
    /// The multi-tenant service refused a submission at the door.
    SubmissionRejected {
        /// Tenant that submitted the campaign.
        tenant: Cow<'static, str>,
        /// Index of the submission in the arrival trace.
        submission_index: usize,
        /// Scheduling round in which the refusal happened.
        round: usize,
        /// Typed refusal reason. Serialized as its stable kebab-case
        /// [`RejectReason::label`] (never the Rust variant name), so a
        /// rename in source cannot silently re-key archived audits —
        /// and an audit can never be broken by a message-text edit.
        reason: RejectReason,
    },
    /// A queued campaign was handed to the fleet executor.
    CampaignDispatched {
        /// Tenant that owns the campaign.
        tenant: Cow<'static, str>,
        /// Admission index of the dispatched campaign.
        admission_index: usize,
        /// Scheduling round of the dispatch.
        round: usize,
        /// Global dispatch slot (total order over all dispatches).
        slot: usize,
    },

    // ---- ensemble layer -----------------------------------------------------
    // Campaign-scoped (the discovery loop surfaces them between
    // `IterationStarted` and `IterationEnded`), appended after the
    // service variants because wire tags are declaration order and
    // frozen.
    /// One validated ACL exchange between two ensemble specialists.
    EnsembleMessage {
        /// Lane whose iteration carried the exchange.
        lane: usize,
        /// Ensemble round ordinal (monotone across the campaign).
        round: u64,
        /// Stable kebab-case performative label
        /// (`evoflow_protocol::Performative::label`).
        performative: Cow<'static, str>,
        /// Sending specialist role.
        sender: Cow<'static, str>,
        /// Receiving specialist role.
        receiver: Cow<'static, str>,
        /// ACL conversation correlation id.
        conversation: u64,
        /// Size of the checksummed wire frame the message round-tripped
        /// through, in bytes.
        frame_bytes: u64,
    },
    /// One seeded pairwise tournament match between two hypotheses.
    TournamentMatch {
        /// Lane whose iteration ran the match.
        lane: usize,
        /// Ensemble round ordinal.
        round: u64,
        /// Pool index of the first contender.
        left: usize,
        /// Pool index of the second contender.
        right: usize,
        /// Pool index of the winner (always `left` or `right`).
        winner: usize,
        /// Winner's utility minus loser's utility.
        margin: f64,
    },
    /// A meta-review pass reweighted the specialist pool.
    MetaReview {
        /// Lane whose iteration triggered the review.
        lane: usize,
        /// Ensemble round ordinal.
        round: u64,
        /// Share of each batch sourced from the generator after review.
        generator_weight: f64,
        /// Share of each batch sourced from the evolver after review.
        evolver_weight: f64,
        /// Reflection critiques folded into the evidence store so far.
        critiques: u64,
    },
}

impl CampaignEvent {
    /// Short stable tag for this event's variant (metrics keys, errors).
    pub fn kind(&self) -> &'static str {
        match self {
            CampaignEvent::CampaignStarted { .. } => "campaign-started",
            CampaignEvent::IterationStarted { .. } => "iteration-started",
            CampaignEvent::CandidateProposed { .. } => "candidate-proposed",
            CampaignEvent::ExecutionScheduled { .. } => "execution-scheduled",
            CampaignEvent::ResultObserved { .. } => "result-observed",
            CampaignEvent::GateDecision { .. } => "gate-decision",
            CampaignEvent::OmegaRewrite { .. } => "omega-rewrite",
            CampaignEvent::IterationEnded { .. } => "iteration-ended",
            CampaignEvent::CampaignFinished { .. } => "campaign-finished",
            CampaignEvent::CheckpointTaken { .. } => "checkpoint-taken",
            CampaignEvent::CoordinatorKilled { .. } => "coordinator-killed",
            CampaignEvent::CampaignPlaced { .. } => "campaign-placed",
            CampaignEvent::DataTransferred { .. } => "data-transferred",
            CampaignEvent::OutageStruck { .. } => "outage-struck",
            CampaignEvent::SubmissionAdmitted { .. } => "submission-admitted",
            CampaignEvent::SubmissionRejected { .. } => "submission-rejected",
            CampaignEvent::CampaignDispatched { .. } => "campaign-dispatched",
            CampaignEvent::EnsembleMessage { .. } => "ensemble-message",
            CampaignEvent::TournamentMatch { .. } => "tournament-match",
            CampaignEvent::MetaReview { .. } => "meta-review",
        }
    }

    /// Precomputed `ledger.`-prefixed metrics key for this variant.
    ///
    /// [`MetricsSink`] bumps one counter per event; building the key with
    /// `format!("ledger.{}", kind)` allocated a fresh `String` on every
    /// event in the recording hot loop. These are the same keys, interned
    /// at compile time.
    pub fn metric_key(&self) -> &'static str {
        match self {
            CampaignEvent::CampaignStarted { .. } => "ledger.campaign-started",
            CampaignEvent::IterationStarted { .. } => "ledger.iteration-started",
            CampaignEvent::CandidateProposed { .. } => "ledger.candidate-proposed",
            CampaignEvent::ExecutionScheduled { .. } => "ledger.execution-scheduled",
            CampaignEvent::ResultObserved { .. } => "ledger.result-observed",
            CampaignEvent::GateDecision { .. } => "ledger.gate-decision",
            CampaignEvent::OmegaRewrite { .. } => "ledger.omega-rewrite",
            CampaignEvent::IterationEnded { .. } => "ledger.iteration-ended",
            CampaignEvent::CampaignFinished { .. } => "ledger.campaign-finished",
            CampaignEvent::CheckpointTaken { .. } => "ledger.checkpoint-taken",
            CampaignEvent::CoordinatorKilled { .. } => "ledger.coordinator-killed",
            CampaignEvent::CampaignPlaced { .. } => "ledger.campaign-placed",
            CampaignEvent::DataTransferred { .. } => "ledger.data-transferred",
            CampaignEvent::OutageStruck { .. } => "ledger.outage-struck",
            CampaignEvent::SubmissionAdmitted { .. } => "ledger.submission-admitted",
            CampaignEvent::SubmissionRejected { .. } => "ledger.submission-rejected",
            CampaignEvent::CampaignDispatched { .. } => "ledger.campaign-dispatched",
            CampaignEvent::EnsembleMessage { .. } => "ledger.ensemble-message",
            CampaignEvent::TournamentMatch { .. } => "ledger.tournament-match",
            CampaignEvent::MetaReview { .. } => "ledger.meta-review",
        }
    }

    /// Whether the variant belongs to the campaign discovery loop (the
    /// only variants allowed inside a [`CampaignLedger`] being replayed).
    pub fn is_campaign_scoped(&self) -> bool {
        !matches!(
            self,
            CampaignEvent::CheckpointTaken { .. }
                | CampaignEvent::CoordinatorKilled { .. }
                | CampaignEvent::CampaignPlaced { .. }
                | CampaignEvent::DataTransferred { .. }
                | CampaignEvent::OutageStruck { .. }
                | CampaignEvent::SubmissionAdmitted { .. }
                | CampaignEvent::SubmissionRejected { .. }
                | CampaignEvent::CampaignDispatched { .. }
        )
    }
}

/// A pluggable event sink. Observers are fed every event in emission
/// order; they must never feed anything back into the run (the stream is
/// strictly one-way, so observation cannot perturb determinism).
pub trait LedgerObserver {
    /// Ingest one event.
    fn on_event(&mut self, event: &CampaignEvent);

    /// Ingest a contiguous run of events in emission order.
    ///
    /// The default forwards each event to [`on_event`](Self::on_event),
    /// so every observer sees the exact same stream whether the producer
    /// emits one event at a time or flushes an [`EventBatch`]. Sinks
    /// with a cheaper bulk path (e.g. [`CampaignLedger`] reserving once
    /// per batch) override this; the override must be observationally
    /// identical to the per-event loop.
    fn on_batch(&mut self, events: &[CampaignEvent]) {
        for event in events {
            self.on_event(event);
        }
    }
}

/// A reusable buffer of pending events between flushes — the allocation
/// discipline of the recording hot loop.
///
/// `run_campaign_observed` pushes events here instead of fanning each one
/// out to every observer immediately, then flushes at iteration
/// boundaries (and before any point that *reads* a sink, e.g. the
/// knowledge counts baked into `CampaignFinished`). The backing `Vec`
/// keeps its capacity across flushes, so after the first iteration the
/// emission path allocates nothing for batch bookkeeping. Flushing
/// preserves emission order exactly — observers cannot distinguish a
/// batched producer from a per-event one.
#[derive(Debug, Default)]
pub struct EventBatch {
    buf: Vec<CampaignEvent>,
    flushes: u64,
    emitted: u64,
}

impl EventBatch {
    /// An empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queue one event for the next flush.
    pub fn push(&mut self, event: CampaignEvent) {
        self.buf.push(event);
    }

    /// Events currently queued (unflushed).
    pub fn pending(&self) -> usize {
        self.buf.len()
    }

    /// Deliver all queued events to every observer via
    /// [`LedgerObserver::on_batch`], in order, then clear the buffer
    /// (retaining its capacity). Empty flushes are free and uncounted.
    /// Returns the number of events delivered.
    pub fn flush(&mut self, observers: &mut [&mut dyn LedgerObserver]) -> usize {
        self.flush_with(|events| {
            for obs in observers.iter_mut() {
                obs.on_batch(events);
            }
        })
    }

    /// Like [`flush`](Self::flush), but hands the pending slice to an
    /// arbitrary delivery closure — for producers whose fan-out is not a
    /// plain observer slice (e.g. a campaign delivering to its own
    /// knowledge sink before the caller's observers). Returns the number
    /// of events delivered; the closure is not called on an empty batch.
    pub fn flush_with(&mut self, deliver: impl FnOnce(&[CampaignEvent])) -> usize {
        if self.buf.is_empty() {
            return 0;
        }
        deliver(&self.buf);
        let n = self.buf.len();
        self.flushes += 1;
        self.emitted += n as u64;
        self.buf.clear();
        n
    }

    /// Batches flushed so far (empty flushes excluded).
    pub fn flushes(&self) -> u64 {
        self.flushes
    }

    /// Events delivered across all flushes.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }
}

/// The durable event stream of one campaign — itself an observer, so a
/// recording run simply registers the ledger as a sink.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CampaignLedger {
    /// Events in emission order.
    pub events: Vec<CampaignEvent>,
}

impl CampaignLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the ledger holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

impl LedgerObserver for CampaignLedger {
    fn on_event(&mut self, event: &CampaignEvent) {
        self.events.push(event.clone());
    }

    fn on_batch(&mut self, events: &[CampaignEvent]) {
        // One reservation per batch instead of amortized doubling on
        // every push — the bulk fast path the recording loop relies on.
        self.events.extend_from_slice(events);
    }
}

/// The merged event streams of a fleet: one [`CampaignLedger`] per
/// campaign, in shard (task) order. A pure function of `(space,
/// FleetConfig minus threads)`: byte-identical at any thread count and
/// across a coordinator kill + resume (see
/// [`resume_campaign_fleet_recorded`](crate::resume_campaign_fleet_recorded)).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FleetLedger {
    /// Master seed of the fleet the ledgers were recorded under.
    pub master_seed: u64,
    /// Per-campaign ledgers, in shard order.
    pub campaigns: Vec<CampaignLedger>,
}

impl FleetLedger {
    /// Total events across every campaign ledger.
    pub fn total_events(&self) -> usize {
        self.campaigns.iter().map(CampaignLedger::len).sum()
    }
}

/// Rebuilds the knowledge graph and PROV provenance store from the event
/// stream — the librarian's old in-line duty in `run_campaign`, now a
/// sink like any other. Configures itself from
/// [`CampaignEvent::CampaignStarted`] (threshold + whether recording is
/// on), buffers proposals, and records one hypothesis → experiment →
/// result chain per observed result.
#[derive(Debug, Default)]
pub struct KnowledgeSink {
    librarian: evoflow_agents::LibrarianAgent,
    pending: VecDeque<Candidate>,
    threshold: f64,
    enabled: bool,
}

impl KnowledgeSink {
    /// A sink that waits for a `CampaignStarted` event to configure
    /// itself (disabled until then).
    pub fn new() -> Self {
        KnowledgeSink {
            librarian: evoflow_agents::LibrarianAgent::new(),
            pending: VecDeque::new(),
            threshold: 0.0,
            enabled: false,
        }
    }

    /// Knowledge-graph nodes recorded.
    pub fn node_count(&self) -> usize {
        self.librarian.kg.node_count()
    }

    /// Provenance activities recorded.
    pub fn activity_count(&self) -> usize {
        self.librarian.prov.activity_count()
    }

    /// Provenance entities recorded.
    pub fn entity_count(&self) -> usize {
        self.librarian.prov.entity_count()
    }

    /// Consume the sink, yielding the rebuilt stores.
    pub fn into_stores(self) -> (KnowledgeGraph, ProvenanceStore) {
        (self.librarian.kg, self.librarian.prov)
    }
}

impl LedgerObserver for KnowledgeSink {
    fn on_event(&mut self, event: &CampaignEvent) {
        match event {
            CampaignEvent::CampaignStarted {
                threshold,
                records_knowledge,
                ..
            } => {
                self.threshold = *threshold;
                self.enabled = *records_knowledge;
            }
            CampaignEvent::CandidateProposed {
                params,
                rationale,
                confidence,
                hallucinated,
                ..
            } if self.enabled => {
                self.pending.push_back(Candidate {
                    params: params.clone(),
                    rationale: rationale.clone(),
                    confidence: *confidence,
                    hallucinated: *hallucinated,
                });
            }
            CampaignEvent::ResultObserved {
                score,
                tokens_in,
                tokens_out,
                ..
            } if self.enabled => {
                // Proposals observe in FIFO order within an iteration;
                // budget-capped tails never observe and are dropped at
                // IterationEnded.
                if let Some(c) = self.pending.pop_front() {
                    self.librarian.record_iteration(
                        &c,
                        *score,
                        TokenUsage {
                            input_tokens: *tokens_in,
                            output_tokens: *tokens_out,
                        },
                        self.threshold,
                    );
                }
            }
            CampaignEvent::IterationEnded { .. } => self.pending.clear(),
            _ => {}
        }
    }
}

/// Bridges ledger events into the simulation kernel's
/// [`MetricsRegistry`] — counters per event kind plus score / wait /
/// execution-time distributions, all under the `ledger.` prefix.
#[derive(Debug, Default)]
pub struct MetricsSink {
    /// The registry being fed. Read it live or [`MetricsSink::into_registry`].
    pub registry: MetricsRegistry,
}

impl MetricsSink {
    /// A sink over a fresh registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consume the sink, yielding the registry.
    pub fn into_registry(self) -> MetricsRegistry {
        self.registry
    }
}

impl LedgerObserver for MetricsSink {
    fn on_event(&mut self, event: &CampaignEvent) {
        self.registry.incr(event.metric_key(), 1);
        match event {
            CampaignEvent::IterationStarted {
                at, decision_ready, ..
            } => {
                self.registry.observe(
                    "ledger.decision_wait_hours",
                    decision_ready.saturating_since(*at).as_hours(),
                );
            }
            CampaignEvent::ExecutionScheduled { duration, .. } => {
                self.registry
                    .observe("ledger.execution_hours", duration.as_hours());
            }
            CampaignEvent::ResultObserved { score, hit, .. } => {
                self.registry.observe("ledger.score", *score);
                if *hit {
                    self.registry.incr("ledger.hits", 1);
                }
            }
            CampaignEvent::DataTransferred { gigabytes, .. } => {
                self.registry.observe("ledger.transfer_gb", *gigabytes);
            }
            _ => {}
        }
    }
}

/// A bounded live-telemetry tail: keeps the most recent `capacity`
/// events (dashboard feeds, §5.2's Science-IDE panels) while counting
/// everything it ever saw.
#[derive(Debug, Clone)]
pub struct RingTelemetry {
    capacity: usize,
    buf: VecDeque<CampaignEvent>,
    seen: u64,
}

impl RingTelemetry {
    /// A ring holding at most `capacity` events (capacity 0 keeps none).
    pub fn new(capacity: usize) -> Self {
        RingTelemetry {
            capacity,
            buf: VecDeque::with_capacity(capacity.min(4096)),
            seen: 0,
        }
    }

    /// Events currently retained, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &CampaignEvent> {
        self.buf.iter()
    }

    /// Most recent event, if any.
    pub fn latest(&self) -> Option<&CampaignEvent> {
        self.buf.back()
    }

    /// Events currently retained.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events ever observed (retained or evicted).
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Events evicted from the tail (observed but no longer retained).
    /// Always exactly `seen() - len()`.
    pub fn dropped(&self) -> u64 {
        self.seen - self.buf.len() as u64
    }
}

impl LedgerObserver for RingTelemetry {
    fn on_event(&mut self, event: &CampaignEvent) {
        self.seen += 1;
        if self.capacity == 0 {
            return;
        }
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
        }
        self.buf.push_back(event.clone());
    }

    fn on_batch(&mut self, events: &[CampaignEvent]) {
        self.seen += events.len() as u64;
        if self.capacity == 0 {
            return;
        }
        // Only the last `capacity` events of the batch can survive; skip
        // straight to them instead of cloning events doomed to eviction.
        let keep = &events[events.len().saturating_sub(self.capacity)..];
        let evict = (self.buf.len() + keep.len()).saturating_sub(self.capacity);
        for _ in 0..evict {
            self.buf.pop_front();
        }
        self.buf.extend(keep.iter().cloned());
    }
}

/// Why a ledger could not be replayed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplayError {
    /// The ledger holds no events at all.
    Empty,
    /// The first event is not `CampaignStarted`.
    MissingStart,
    /// A fleet- or federation-scoped event (or a second `CampaignStarted`,
    /// or anything after `CampaignFinished`) appeared inside a campaign
    /// stream.
    UnexpectedEvent {
        /// Index of the offending event.
        index: usize,
        /// Its variant tag.
        kind: &'static str,
    },
    /// The stream ended without a `CampaignFinished` event.
    Truncated,
    /// A `CampaignFinished` total disagrees with the replayed stream —
    /// the ledger was tampered with or corrupted.
    IntegrityMismatch {
        /// Which total disagreed.
        field: &'static str,
        /// Value recorded in `CampaignFinished`.
        recorded: String,
        /// Value reconstructed from the stream.
        replayed: String,
    },
    /// The serialized ledger bytes failed wire-level validation (bad
    /// magic, checksum mismatch, truncated segment, trailing garbage)
    /// before any event could be decoded. See [`WireError`].
    Corrupt(WireError),
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayError::Empty => write!(f, "ledger is empty"),
            ReplayError::MissingStart => {
                write!(f, "ledger does not begin with CampaignStarted")
            }
            ReplayError::UnexpectedEvent { index, kind } => {
                write!(f, "unexpected {kind} event at index {index}")
            }
            ReplayError::Truncated => {
                write!(f, "ledger ends without CampaignFinished")
            }
            ReplayError::IntegrityMismatch {
                field,
                recorded,
                replayed,
            } => write!(
                f,
                "integrity mismatch on {field}: ledger records {recorded}, replay derived {replayed}"
            ),
            ReplayError::Corrupt(e) => write!(f, "corrupt ledger bytes: {e}"),
        }
    }
}

impl std::error::Error for ReplayError {}

impl From<WireError> for ReplayError {
    fn from(e: WireError) -> Self {
        ReplayError::Corrupt(e)
    }
}

/// Everything a ledger replay reconstructs.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayOutcome {
    /// The campaign report, rebuilt purely from events — byte-identical
    /// to the live run's.
    pub report: CampaignReport,
    /// The knowledge graph, rebuilt from proposal/result events.
    pub knowledge: KnowledgeGraph,
    /// The PROV provenance store, rebuilt from the same events.
    pub provenance: ProvenanceStore,
}

/// Reconstruct a [`CampaignReport`] (and the provenance + knowledge
/// stores) purely from a campaign's event stream.
///
/// The replay performs exactly the aggregation the live loop performs, in
/// the same order — floating-point accumulations included — so the
/// rebuilt report is **byte-identical** to the live one. The terminal
/// [`CampaignFinished`](CampaignEvent::CampaignFinished) event carries
/// every stream-derived report total, and each one is cross-checked
/// (floats bit-exactly) against the replayed stream; any disagreement is
/// a [`ReplayError::IntegrityMismatch`]. That is what makes the ledger
/// an audit substrate rather than a log: truncation, or an edit to any
/// event that shifts *any* report field (scores, times, tokens, gate
/// counts, store sizes), cannot silently replay. The one class of edit
/// this does not catch is content-only forgery that leaves every total
/// unchanged — e.g. rewording a rationale string — which alters the
/// rebuilt knowledge stores' contents but not their sizes.
pub fn replay_ledger(ledger: &CampaignLedger) -> Result<ReplayOutcome, ReplayError> {
    let mut fold = ReplayFold::new();
    for event in &ledger.events {
        fold.push(event)?;
    }
    fold.finish()
}

/// The incremental state of an in-flight replay: exactly the
/// aggregation [`replay_ledger`] performs, exposed event-at-a-time so
/// the binary [wire](crate::ledger::wire) reader can replay a stream
/// without ever materialising a `Vec<CampaignEvent>` — memory stays
/// bounded by one decoded event plus the knowledge stores, however long
/// the ledger. Float accumulation order is identical to the live loop's,
/// so the finished report stays byte-identical either way.
#[derive(Debug)]
pub(crate) struct ReplayFold {
    sink: KnowledgeSink,
    index: usize,
    cell_label: Cow<'static, str>,
    horizon: SimDuration,
    experiments: u64,
    total_hits: u64,
    peaks: BTreeSet<usize>,
    best_score: f64,
    time_to_first: Option<SimTime>,
    decision_wait_hours: f64,
    execution_hours: f64,
    rejected_proposals: u64,
    omega_rewrites: u32,
    tokens: u64,
    current_done_at: SimTime,
    finished: Option<CampaignEvent>,
}

impl ReplayFold {
    pub(crate) fn new() -> Self {
        ReplayFold {
            sink: KnowledgeSink::new(),
            index: 0,
            cell_label: Cow::Borrowed(""),
            horizon: SimDuration::ZERO,
            experiments: 0,
            total_hits: 0,
            peaks: BTreeSet::new(),
            best_score: f64::NEG_INFINITY,
            time_to_first: None,
            decision_wait_hours: 0.0,
            execution_hours: 0.0,
            rejected_proposals: 0,
            omega_rewrites: 0,
            tokens: 0,
            current_done_at: SimTime::ZERO,
            finished: None,
        }
    }

    /// Fold one event into the replay state.
    pub(crate) fn push(&mut self, event: &CampaignEvent) -> Result<(), ReplayError> {
        let index = self.index;
        self.index += 1;
        if self.finished.is_some() {
            return Err(ReplayError::UnexpectedEvent {
                index,
                kind: event.kind(),
            });
        }
        if index == 0 {
            match event {
                CampaignEvent::CampaignStarted {
                    cell_label,
                    horizon,
                    ..
                } => {
                    self.cell_label = cell_label.clone();
                    self.horizon = *horizon;
                }
                _ => return Err(ReplayError::MissingStart),
            }
        }
        self.sink.on_event(event);
        match event {
            CampaignEvent::CampaignStarted { .. } => {
                if index != 0 {
                    return Err(ReplayError::UnexpectedEvent {
                        index,
                        kind: event.kind(),
                    });
                }
            }
            CampaignEvent::IterationStarted {
                at, decision_ready, ..
            } => {
                self.decision_wait_hours += decision_ready.saturating_since(*at).as_hours();
            }
            CampaignEvent::CandidateProposed { .. } => {}
            CampaignEvent::ExecutionScheduled {
                duration, done_at, ..
            } => {
                self.execution_hours += duration.as_hours();
                self.current_done_at = *done_at;
            }
            CampaignEvent::ResultObserved {
                score, hit, peak, ..
            } => {
                self.experiments += 1;
                self.best_score = self.best_score.max(*score);
                if *hit {
                    self.total_hits += 1;
                    if let Some(p) = peak {
                        self.peaks.insert(*p);
                        if self.time_to_first.is_none() {
                            self.time_to_first = Some(self.current_done_at);
                        }
                    }
                }
            }
            CampaignEvent::GateDecision { rejected_total, .. } => {
                self.rejected_proposals = *rejected_total;
            }
            CampaignEvent::OmegaRewrite { rewrites_total, .. } => {
                self.omega_rewrites = *rewrites_total;
            }
            CampaignEvent::IterationEnded { tokens_total, .. } => {
                self.tokens = *tokens_total;
            }
            // Cooperative-transcript events: pure audit trail. They carry
            // no report-shifting totals, so the fold only has to accept
            // them — the reconstruction they witness is still cross-checked
            // bit-exactly by `CampaignFinished`.
            CampaignEvent::EnsembleMessage { .. }
            | CampaignEvent::TournamentMatch { .. }
            | CampaignEvent::MetaReview { .. } => {}
            CampaignEvent::CampaignFinished { .. } => {
                self.finished = Some(event.clone());
            }
            _ => {
                return Err(ReplayError::UnexpectedEvent {
                    index,
                    kind: event.kind(),
                });
            }
        }
        Ok(())
    }

    /// Cross-check the recorded totals and yield the reconstruction.
    pub(crate) fn finish(self) -> Result<ReplayOutcome, ReplayError> {
        if self.index == 0 {
            return Err(ReplayError::Empty);
        }
        let Some(CampaignEvent::CampaignFinished {
            experiments: fin_experiments,
            total_hits: fin_hits,
            distinct_discoveries: fin_distinct,
            best_score: fin_best,
            time_to_first_hours: fin_ttf,
            decision_wait_hours: fin_wait,
            execution_hours: fin_exec,
            rejected_proposals: fin_rejected,
            omega_rewrites: fin_omega,
            kg_nodes: fin_kg,
            prov_activities: fin_prov,
            tokens: fin_tokens,
        }) = self.finished
        else {
            return Err(ReplayError::Truncated);
        };
        let best_score = if self.best_score.is_finite() {
            self.best_score
        } else {
            0.0
        };
        let time_to_first_hours = self.time_to_first.map(|t| t.as_hours());
        // Cross-check every reconstructed total against the recorded ones —
        // floats bit-exactly. An edit anywhere in the stream that shifts any
        // report field (times, tokens, gate counts, store sizes, scores)
        // surfaces here as a typed refusal.
        let bits = |x: f64| x.to_bits().to_string();
        let opt_bits = |x: Option<f64>| match x {
            Some(v) => format!("Some({})", v.to_bits()),
            None => "None".to_string(),
        };
        let checks: [(&'static str, String, String); 12] = [
            (
                "experiments",
                fin_experiments.to_string(),
                self.experiments.to_string(),
            ),
            (
                "total_hits",
                fin_hits.to_string(),
                self.total_hits.to_string(),
            ),
            (
                "distinct_discoveries",
                fin_distinct.to_string(),
                self.peaks.len().to_string(),
            ),
            ("best_score", bits(fin_best), bits(best_score)),
            (
                "time_to_first_hours",
                opt_bits(fin_ttf),
                opt_bits(time_to_first_hours),
            ),
            (
                "decision_wait_hours",
                bits(fin_wait),
                bits(self.decision_wait_hours),
            ),
            (
                "execution_hours",
                bits(fin_exec),
                bits(self.execution_hours),
            ),
            (
                "rejected_proposals",
                fin_rejected.to_string(),
                self.rejected_proposals.to_string(),
            ),
            (
                "omega_rewrites",
                fin_omega.to_string(),
                self.omega_rewrites.to_string(),
            ),
            (
                "kg_nodes",
                fin_kg.to_string(),
                self.sink.node_count().to_string(),
            ),
            (
                "prov_activities",
                fin_prov.to_string(),
                self.sink.activity_count().to_string(),
            ),
            ("tokens", fin_tokens.to_string(), self.tokens.to_string()),
        ];
        for (field, recorded, replayed) in checks {
            if recorded != replayed {
                return Err(ReplayError::IntegrityMismatch {
                    field,
                    recorded,
                    replayed,
                });
            }
        }

        let sim_days = self.horizon.as_hours() / 24.0;
        let weeks = sim_days / 7.0;
        let report = CampaignReport {
            cell_label: self.cell_label.into_owned(),
            experiments: self.experiments,
            distinct_discoveries: self.peaks.len(),
            total_hits: self.total_hits,
            sim_days,
            discoveries_per_week: self.peaks.len() as f64 / weeks.max(1e-9),
            samples_per_day: self.experiments as f64 / sim_days.max(1e-9),
            time_to_first_hours,
            best_score,
            decision_wait_hours: self.decision_wait_hours,
            execution_hours: self.execution_hours,
            rejected_proposals: self.rejected_proposals,
            omega_rewrites: self.omega_rewrites,
            kg_nodes: self.sink.node_count(),
            prov_activities: self.sink.activity_count(),
            tokens: self.tokens,
        };
        let (knowledge, provenance) = self.sink.into_stores();
        Ok(ReplayOutcome {
            report,
            knowledge,
            provenance,
        })
    }
}

/// Reconstruct a whole [`FleetReport`] from a fleet's merged ledger:
/// replay every campaign stream in shard order and fold the reports with
/// the same deterministic aggregation the live executor uses.
pub fn replay_fleet_ledger(ledger: &FleetLedger) -> Result<FleetReport, ReplayError> {
    let mut reports = Vec::with_capacity(ledger.campaigns.len());
    for campaign in &ledger.campaigns {
        reports.push(replay_ledger(campaign)?.report);
    }
    Ok(FleetReport::from_reports(ledger.master_seed, reports))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn started(records_knowledge: bool) -> CampaignEvent {
        CampaignEvent::CampaignStarted {
            cell_label: "test".into(),
            seed: 1,
            planner: "grid".into(),
            lanes: 1,
            horizon: SimDuration::from_days(1),
            threshold: 0.5,
            max_experiments: 10,
            records_knowledge,
        }
    }

    fn proposed() -> CampaignEvent {
        CampaignEvent::CandidateProposed {
            lane: 0,
            params: vec![0.5, 0.5],
            rationale: "test rationale".into(),
            confidence: 0.7,
            hallucinated: false,
        }
    }

    fn observed(experiment: u64, score: f64) -> CampaignEvent {
        CampaignEvent::ResultObserved {
            lane: 0,
            experiment,
            score,
            hit: score >= 0.5,
            peak: if score >= 0.5 { Some(0) } else { None },
            tokens_in: 10,
            tokens_out: 5,
        }
    }

    #[test]
    fn ring_telemetry_bounds_and_counts() {
        let mut ring = RingTelemetry::new(3);
        for i in 0..10u64 {
            ring.on_event(&observed(i, 0.1));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.seen(), 10);
        match ring.latest() {
            Some(CampaignEvent::ResultObserved { experiment, .. }) => assert_eq!(*experiment, 9),
            other => panic!("unexpected tail {other:?}"),
        }
        let mut empty = RingTelemetry::new(0);
        empty.on_event(&proposed());
        assert!(empty.is_empty());
        assert_eq!(empty.seen(), 1);
    }

    #[test]
    fn metrics_sink_counts_kinds() {
        let mut m = MetricsSink::new();
        m.on_event(&started(false));
        m.on_event(&proposed());
        m.on_event(&observed(1, 0.9));
        m.on_event(&observed(2, 0.1));
        let reg = m.into_registry();
        assert_eq!(reg.counter("ledger.campaign-started"), 1);
        assert_eq!(reg.counter("ledger.candidate-proposed"), 1);
        assert_eq!(reg.counter("ledger.result-observed"), 2);
        assert_eq!(reg.counter("ledger.hits"), 1);
        assert_eq!(reg.stat("ledger.score").unwrap().count(), 2);
    }

    #[test]
    fn knowledge_sink_pairs_proposals_with_results() {
        let mut sink = KnowledgeSink::new();
        sink.on_event(&started(true));
        sink.on_event(&proposed());
        sink.on_event(&observed(1, 0.9));
        // hypothesis + experiment + result nodes; reasoning + experiment
        // activities.
        assert_eq!(sink.node_count(), 3);
        assert_eq!(sink.activity_count(), 2);
        // An unexecuted proposal is dropped at iteration end.
        sink.on_event(&proposed());
        sink.on_event(&CampaignEvent::IterationEnded {
            lane: 0,
            proposed: 1,
            hits: 0,
            tokens_total: 15,
        });
        sink.on_event(&observed(2, 0.2));
        assert_eq!(sink.node_count(), 3, "orphan result records nothing");
    }

    #[test]
    fn knowledge_sink_stays_dark_when_disabled() {
        let mut sink = KnowledgeSink::new();
        sink.on_event(&started(false));
        sink.on_event(&proposed());
        sink.on_event(&observed(1, 0.9));
        assert_eq!(sink.node_count(), 0);
        assert_eq!(sink.activity_count(), 0);
    }

    #[test]
    fn replay_rejects_malformed_streams() {
        assert_eq!(
            replay_ledger(&CampaignLedger::new()),
            Err(ReplayError::Empty)
        );
        let headless = CampaignLedger {
            events: vec![proposed()],
        };
        assert_eq!(replay_ledger(&headless), Err(ReplayError::MissingStart));
        let truncated = CampaignLedger {
            events: vec![started(false), proposed()],
        };
        assert_eq!(replay_ledger(&truncated), Err(ReplayError::Truncated));
        let foreign = CampaignLedger {
            events: vec![
                started(false),
                CampaignEvent::CoordinatorKilled { after_commits: 1 },
            ],
        };
        assert_eq!(
            replay_ledger(&foreign),
            Err(ReplayError::UnexpectedEvent {
                index: 1,
                kind: "coordinator-killed"
            })
        );
    }

    fn finished(experiments: u64, best_score: f64) -> CampaignEvent {
        CampaignEvent::CampaignFinished {
            experiments,
            total_hits: 1,
            distinct_discoveries: 1,
            best_score,
            time_to_first_hours: Some(0.0),
            decision_wait_hours: 0.0,
            execution_hours: 0.0,
            rejected_proposals: 0,
            omega_rewrites: 0,
            kg_nodes: 0,
            prov_activities: 0,
            tokens: 0,
        }
    }

    #[test]
    fn replay_detects_tampered_totals() {
        // stream only shows 1 experiment
        let ledger = CampaignLedger {
            events: vec![started(false), observed(1, 0.9), finished(2, 0.9)],
        };
        assert!(matches!(
            replay_ledger(&ledger),
            Err(ReplayError::IntegrityMismatch {
                field: "experiments",
                ..
            })
        ));
        // An edited score is caught even when the counts all agree.
        let ledger = CampaignLedger {
            events: vec![started(false), observed(1, 0.95), finished(1, 0.9)],
        };
        assert!(matches!(
            replay_ledger(&ledger),
            Err(ReplayError::IntegrityMismatch {
                field: "best_score",
                ..
            })
        ));
    }

    #[test]
    fn event_kind_tags_are_stable() {
        assert_eq!(started(false).kind(), "campaign-started");
        assert_eq!(
            CampaignEvent::OutageStruck {
                site: "hpc".into(),
                at: SimTime::ZERO,
                rerouted: 0
            }
            .kind(),
            "outage-struck"
        );
        assert!(started(false).is_campaign_scoped());
        assert!(!CampaignEvent::CheckpointTaken {
            committed: 0,
            total: 1
        }
        .is_campaign_scoped());
    }
}
