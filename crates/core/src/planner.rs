//! The pluggable Planner layer: Table 1's *decide* step as a first-class,
//! swappable component of the discovery loop.
//!
//! The paper's central axis is the intelligence level of the decide step —
//! static grid → adaptive → learning → optimizing → intelligent. Before
//! this layer existed, that axis was an inlined `match` inside
//! [`run_campaign`](crate::campaign::run_campaign); now every level (and
//! every optimizer in `evoflow-learn`) is a [`Planner`]: a policy that
//! proposes a batch of [`Candidate`]s from the evidence visible to a lane
//! and observes measured outcomes back.
//!
//! | Table 1 level | default planner | machinery |
//! |---|---|---|
//! | Static | [`GridPlanner`] | lazy deterministic grid walk |
//! | Adaptive | [`AdaptivePlanner`] | re-sample near the last hit |
//! | Learning | [`EvidencePlanner`] | Gaussian proposals around best visible evidence |
//! | Optimizing | [`SurrogatePlanner`] | RBF surrogate + acquisition (`evoflow-learn`) |
//! | Intelligent | [`AgenticPlanner`] | hypothesis agent + validation gate + Ω |
//!
//! Beyond the defaults, any cell may override its planner through
//! [`CampaignConfig::planner`](crate::campaign::CampaignConfig::planner):
//! [`BanditPlanner`] (UCB1/Thompson over region arms), [`SwarmPlanner`]
//! (particle swarm), and [`MetaPlanner`] (a bandit over a pool of
//! planners, with [`MetaOptimizerAgent`] widening exploration on stall —
//! Ω selecting δ).
//!
//! Planners draw all randomness from the campaign's seeded decision
//! stream (plus registry-derived streams for embedded cognitive models),
//! so a campaign remains a pure function of `(space, config, seed)` no
//! matter which planner runs — the property every determinism and fleet
//! resume guarantee rests on.

use crate::domain::MaterialsSpace;
use crate::ledger::CampaignEvent;
use evoflow_agents::{
    AnalysisAgent, Candidate, DesignAgent, Evidence, HypothesisAgent, MetaOptimizerAgent, Strategy,
};
use evoflow_cogsim::{CognitiveModel, ModelProfile, TokenUsage};
use evoflow_learn::{BanditPolicy, PsoConfig, ScoreScratch, ThompsonBeta, Ucb1};
use evoflow_sim::{RngRegistry, SimRng};
use evoflow_sm::IntelligenceLevel;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

mod ensemble;

pub use ensemble::{EnsemblePlanner, DEFAULT_SPECIALISTS};

/// Observations kept in a planner's surrogate (recent + every hit).
pub const SURROGATE_CAP: usize = 800;

/// Everything a planner may consult while proposing one batch.
pub struct PlanCtx<'a> {
    /// Design-space dimensionality.
    pub dim: usize,
    /// Index of the lane requesting the batch.
    pub lane: usize,
    /// The campaign's seeded decision stream.
    pub rng: &'a mut SimRng,
    /// Best evidence visible to the lane under the composition's sharing
    /// pattern. Only populated when [`Planner::wants_anchor`] returns
    /// true — computing it costs a scan of the visible evidence windows.
    pub anchor: Option<&'a Evidence>,
    /// Candidates the planner scored against a surrogate model while
    /// serving this call. Planners bump it whenever they run an
    /// acquisition or prediction batch; the campaign folds it into the
    /// `propose.score` sub-phase counter. Purely a function of the
    /// planner's (deterministic) decisions — never of wall-clock.
    pub scored: u64,
}

/// One measured outcome fed back to the planner.
pub struct Observation<'a> {
    /// Lane that executed the experiment.
    pub lane: usize,
    /// Design point measured.
    pub params: &'a [f64],
    /// Measured figure of merit.
    pub score: f64,
    /// Whether the measurement crossed the discovery threshold.
    pub hit: bool,
}

/// Planner-side counters folded into the final
/// [`CampaignReport`](crate::campaign::CampaignReport).
#[derive(Debug, Clone, Copy, Default)]
pub struct PlannerTelemetry {
    /// Proposals rejected by a validation gate.
    pub rejected_proposals: u64,
    /// Ω strategy/selector rewrites issued.
    pub omega_rewrites: u32,
}

/// A decision policy for the discovery loop: propose candidates, observe
/// outcomes. Implementations must be deterministic functions of their
/// construction inputs and the draws they take from [`PlanCtx::rng`].
pub trait Planner {
    /// Short stable name (used in labels and benches).
    fn name(&self) -> &'static str;

    /// Whether [`PlanCtx::anchor`] should be computed for this planner.
    fn wants_anchor(&self) -> bool {
        false
    }

    /// Batch-size override (`None` ⇒ the campaign's `batch_per_lane`).
    /// Lets self-rewriting planners widen their own batches.
    fn batch_size(&self) -> Option<usize> {
        None
    }

    /// Propose up to `batch` candidates into `out`. Proposing fewer is
    /// allowed (validation gates reject); proposals cost only decision
    /// time.
    fn propose(&mut self, ctx: &mut PlanCtx<'_>, batch: usize, out: &mut Vec<Candidate>);

    /// Feed one measured outcome back into the policy.
    fn observe(&mut self, obs: &Observation<'_>);

    /// Called once after each batch executes, with the number of
    /// candidates actually run and the hits among them.
    fn end_iteration(&mut self, _executed: usize, _hits: u64) {}

    /// Whether the librarian should record KG nodes + provenance for
    /// this planner's iterations (the Intelligent level's duty).
    fn records_knowledge(&self) -> bool {
        false
    }

    /// Counters for the campaign report.
    fn telemetry(&self) -> PlannerTelemetry {
        PlannerTelemetry::default()
    }

    /// Lifetime token usage of any embedded cognitive models.
    fn token_usage(&self) -> TokenUsage {
        TokenUsage::default()
    }

    /// Move any cooperative-transcript events the planner produced since
    /// the last drain into `out`, in production order.
    ///
    /// The campaign loop drains after every [`end_iteration`]
    /// (discarding when unobserved, ledgering when observed), so a
    /// planner must *always* build its transcript the same way —
    /// emission may never feed back into its decisions, or replay
    /// byte-identity between observed and unobserved runs breaks.
    ///
    /// [`end_iteration`]: Self::end_iteration
    fn drain_events(&mut self, _out: &mut Vec<CampaignEvent>) {}
}

/// Which bandit drives a [`BanditPlanner`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BanditKind {
    /// UCB1 (optimism in the face of uncertainty).
    Ucb1,
    /// Thompson sampling with Beta posteriors.
    Thompson,
}

/// Serializable planner selection, carried by
/// [`CampaignConfig::planner`](crate::campaign::CampaignConfig::planner).
///
/// `None` in the config means "the default for the cell's intelligence
/// level" ([`PlannerKind::for_level`]); any cell is free to override.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PlannerKind {
    /// Predetermined grid walk, blind to results (Static).
    Grid,
    /// Random sampling that re-samples near the lane's last hit (Adaptive).
    Adaptive,
    /// Gaussian proposals around the best visible evidence (Learning).
    Evidence,
    /// RBF-surrogate acquisition over random candidates (Optimizing).
    Surrogate,
    /// The full agent stack: hypothesis + validation gate + Ω (Intelligent).
    Agentic,
    /// A multi-armed bandit over region arms of the design cube.
    Bandit {
        /// Bandit algorithm.
        policy: BanditKind,
        /// Regions per dimension (arms = `regions_per_dim^dim`).
        regions_per_dim: usize,
    },
    /// Particle-swarm search over the design cube.
    Swarm {
        /// Swarm size.
        particles: usize,
    },
    /// Ω over δ: a UCB1 bandit selects among a pool of planners each
    /// iteration, with the meta-optimizer widening exploration on stall.
    Meta {
        /// Candidate planners (must be non-empty; nested `Meta` is
        /// flattened away at build time).
        pool: Vec<PlannerKind>,
    },
    /// Cooperative specialist ensemble: generator / reflector / ranker /
    /// evolver / meta-reviewer exchanging ACL messages, with hypotheses
    /// ranked by seeded pairwise tournament ([`EnsemblePlanner`]).
    Ensemble {
        /// Hypotheses each of the generator and evolver contribute per
        /// tournament pool (pool size is `2 × specialists`).
        specialists: usize,
    },
}

impl PlannerKind {
    /// The default planner for an intelligence level — the Table 1 row.
    pub fn for_level(level: IntelligenceLevel) -> Self {
        match level {
            IntelligenceLevel::Static => PlannerKind::Grid,
            IntelligenceLevel::Adaptive => PlannerKind::Adaptive,
            IntelligenceLevel::Learning => PlannerKind::Evidence,
            IntelligenceLevel::Optimizing => PlannerKind::Surrogate,
            IntelligenceLevel::Intelligent => PlannerKind::Agentic,
        }
    }

    /// A UCB1 bandit over 3 regions per dimension.
    pub fn bandit() -> Self {
        PlannerKind::Bandit {
            policy: BanditKind::Ucb1,
            regions_per_dim: 3,
        }
    }

    /// A default swarm of 24 particles.
    pub fn swarm() -> Self {
        PlannerKind::Swarm { particles: 24 }
    }

    /// The default meta pool: evidence exploitation, surrogate
    /// acquisition, and a region bandit, arbitrated by UCB1.
    pub fn meta() -> Self {
        PlannerKind::Meta {
            pool: vec![
                PlannerKind::Evidence,
                PlannerKind::Surrogate,
                PlannerKind::bandit(),
            ],
        }
    }

    /// The default cooperative ensemble
    /// ([`DEFAULT_SPECIALISTS`] hypotheses per specialist source).
    pub fn ensemble() -> Self {
        PlannerKind::Ensemble {
            specialists: DEFAULT_SPECIALISTS,
        }
    }

    /// Every concrete (non-meta) planner kind, for exhaustive sweeps.
    /// Composite kinds ([`Meta`](Self::Meta), [`Ensemble`](Self::Ensemble))
    /// are excluded and joined explicitly where a sweep wants them.
    pub fn all_concrete() -> Vec<PlannerKind> {
        vec![
            PlannerKind::Grid,
            PlannerKind::Adaptive,
            PlannerKind::Evidence,
            PlannerKind::Surrogate,
            PlannerKind::Agentic,
            PlannerKind::Bandit {
                policy: BanditKind::Ucb1,
                regions_per_dim: 3,
            },
            PlannerKind::Bandit {
                policy: BanditKind::Thompson,
                regions_per_dim: 3,
            },
            PlannerKind::swarm(),
        ]
    }

    /// Short stable label for this kind (matches [`Planner::name`]).
    pub fn label(&self) -> &'static str {
        match self {
            PlannerKind::Grid => "grid",
            PlannerKind::Adaptive => "adaptive",
            PlannerKind::Evidence => "evidence",
            PlannerKind::Surrogate => "surrogate",
            PlannerKind::Agentic => "agentic",
            PlannerKind::Bandit {
                policy: BanditKind::Ucb1,
                ..
            } => "bandit-ucb1",
            PlannerKind::Bandit {
                policy: BanditKind::Thompson,
                ..
            } => "bandit-thompson",
            PlannerKind::Swarm { .. } => "swarm",
            PlannerKind::Meta { .. } => "meta",
            PlannerKind::Ensemble { .. } => "ensemble",
        }
    }

    /// Fully distinguishing label: the [`label`](Self::label) plus every
    /// parameter that changes the policy. Used in campaign cell labels so
    /// fleet aggregation never folds differently-configured planners
    /// (e.g. `Swarm {particles: 8}` vs `{particles: 64}`) into one
    /// summary row.
    pub fn descriptor(&self) -> String {
        match self {
            PlannerKind::Bandit {
                regions_per_dim, ..
            } => format!("{}(r{regions_per_dim})", self.label()),
            PlannerKind::Swarm { particles } => format!("swarm(n{particles})"),
            PlannerKind::Meta { pool } => {
                let inner: Vec<String> = pool.iter().map(|k| k.descriptor()).collect();
                format!("meta[{}]", inner.join("+"))
            }
            PlannerKind::Ensemble { specialists } => format!("ensemble(s{specialists})"),
            _ => self.label().to_string(),
        }
    }

    /// Build the planner for a campaign.
    pub fn build(&self, b: &PlannerBuild<'_>) -> Box<dyn Planner> {
        self.build_with(b, None)
    }

    /// [`build`](Self::build) with an optional shared scoring scratch.
    /// A [`Meta`](Self::Meta) pool passes one down so every
    /// surrogate-backed child reuses the same candidate/score buffers —
    /// proposals are sequential within a campaign, so sharing is safe.
    fn build_with(
        &self,
        b: &PlannerBuild<'_>,
        scratch: Option<&Rc<RefCell<ScoreScratch>>>,
    ) -> Box<dyn Planner> {
        match self {
            PlannerKind::Grid => Box::new(GridPlanner::new(
                b.dim,
                b.n_lanes,
                b.shares_globally || b.n_lanes == 1,
            )),
            PlannerKind::Adaptive => Box::new(AdaptivePlanner::new(b.n_lanes)),
            PlannerKind::Evidence => Box::new(EvidencePlanner),
            PlannerKind::Surrogate => Box::new(SurrogatePlanner::new(
                b.space.threshold,
                scratch.map(Rc::clone),
            )),
            PlannerKind::Agentic => Box::new(AgenticPlanner::new(b, scratch.map(Rc::clone))),
            PlannerKind::Bandit {
                policy,
                regions_per_dim,
            } => Box::new(BanditPlanner::new(
                *policy,
                (*regions_per_dim).max(2),
                b.dim,
            )),
            PlannerKind::Swarm { particles } => {
                Box::new(SwarmPlanner::new((*particles).max(2), PsoConfig::default()))
            }
            PlannerKind::Meta { pool } => {
                // Flatten nested metas: a bandit over bandits-over-pools
                // adds indirection without adding policies.
                let mut kinds: Vec<PlannerKind> = Vec::new();
                for k in pool {
                    match k {
                        PlannerKind::Meta { pool: inner } => kinds.extend(inner.iter().cloned()),
                        other => kinds.push(other.clone()),
                    }
                }
                if kinds.is_empty() {
                    kinds.push(PlannerKind::Evidence);
                }
                // One scratch for the whole pool: pooled surrogates
                // score one batch at a time, so the buffers never
                // contend and the pool allocates them once.
                let pool_scratch = scratch.map(Rc::clone).unwrap_or_default();
                let children = kinds
                    .iter()
                    .map(|k| k.build_with(b, Some(&pool_scratch)))
                    .collect();
                Box::new(MetaPlanner::new(children))
            }
            PlannerKind::Ensemble { specialists } => {
                Box::new(EnsemblePlanner::new((*specialists).max(1), b))
            }
        }
    }
}

/// Construction inputs shared by every planner.
pub struct PlannerBuild<'a> {
    /// The landscape under exploration (threshold, literature corpus).
    pub space: &'a MaterialsSpace,
    /// The campaign's RNG registry (for embedded cognitive models).
    pub reg: &'a RngRegistry,
    /// Campaign master seed.
    pub seed: u64,
    /// Design-space dimensionality.
    pub dim: usize,
    /// Configured candidates per iteration per lane.
    pub batch_per_lane: usize,
    /// Number of parallel lanes.
    pub n_lanes: usize,
    /// Whether all lanes see a shared evidence pool.
    pub shares_globally: bool,
}

// ---- Static: lazy grid ------------------------------------------------------

/// Predetermined grid schedule, blind to results.
///
/// Grid points are computed lazily from the grid index (little-endian
/// digits, base `per_dim`) instead of materializing the full
/// `per_dim^dim` table of heap `Vec`s up front — identical point order,
/// O(1) memory.
pub struct GridPlanner {
    per_dim: usize,
    dim: usize,
    total: usize,
    shared: bool,
    n_lanes: usize,
    shared_cursor: usize,
    lane_cursors: Vec<usize>,
}

impl GridPlanner {
    /// Grid resolution per dimension used by the Static level.
    pub const PER_DIM: usize = 6;

    fn new(dim: usize, n_lanes: usize, shared: bool) -> Self {
        let total = Self::PER_DIM
            .checked_pow(dim as u32)
            .unwrap_or(usize::MAX)
            .max(1);
        GridPlanner {
            per_dim: Self::PER_DIM,
            dim,
            total,
            shared,
            n_lanes,
            shared_cursor: 0,
            lane_cursors: vec![0; n_lanes],
        }
    }

    /// The `idx`-th grid point (wrapping), without any lookup table.
    fn point(&self, idx: usize) -> Vec<f64> {
        let mut i = idx % self.total;
        (0..self.dim)
            .map(|_| {
                let digit = i % self.per_dim;
                i /= self.per_dim;
                digit as f64 / (self.per_dim - 1) as f64
            })
            .collect()
    }
}

impl Planner for GridPlanner {
    fn name(&self) -> &'static str {
        "grid"
    }

    fn propose(&mut self, ctx: &mut PlanCtx<'_>, batch: usize, out: &mut Vec<Candidate>) {
        for _ in 0..batch {
            let idx = if self.shared {
                let i = self.shared_cursor;
                self.shared_cursor += 1;
                i
            } else {
                let i = self.lane_cursors[ctx.lane] * self.n_lanes + ctx.lane;
                self.lane_cursors[ctx.lane] += 1;
                i
            };
            out.push(Candidate {
                params: self.point(idx),
                rationale: "grid schedule".into(),
                confidence: 0.5,
                hallucinated: false,
            });
        }
    }

    fn observe(&mut self, _obs: &Observation<'_>) {}
}

// ---- Adaptive: re-sample near the last hit ----------------------------------

/// Random sampling with one feedback rule: with probability ½, re-sample
/// near the lane's most recent hit.
pub struct AdaptivePlanner {
    last_hit: Vec<Option<Vec<f64>>>,
}

impl AdaptivePlanner {
    fn new(n_lanes: usize) -> Self {
        AdaptivePlanner {
            last_hit: vec![None; n_lanes],
        }
    }
}

impl Planner for AdaptivePlanner {
    fn name(&self) -> &'static str {
        "adaptive"
    }

    fn propose(&mut self, ctx: &mut PlanCtx<'_>, batch: usize, out: &mut Vec<Candidate>) {
        for _ in 0..batch {
            let params: Vec<f64> = match &self.last_hit[ctx.lane] {
                Some(anchor) if ctx.rng.chance(0.5) => anchor
                    .iter()
                    .map(|v| (v + ctx.rng.normal_with(0.0, 0.08)).clamp(0.0, 1.0))
                    .collect(),
                _ => (0..ctx.dim).map(|_| ctx.rng.uniform()).collect(),
            };
            out.push(Candidate {
                params,
                rationale: "adaptive sampling".into(),
                confidence: 0.5,
                hallucinated: false,
            });
        }
    }

    fn observe(&mut self, obs: &Observation<'_>) {
        if obs.hit {
            self.last_hit[obs.lane] = Some(obs.params.to_vec());
        }
    }
}

// ---- Learning: exploit best visible evidence --------------------------------

/// Gaussian proposals around the best evidence visible to the lane.
pub struct EvidencePlanner;

impl Planner for EvidencePlanner {
    fn name(&self) -> &'static str {
        "evidence"
    }

    fn wants_anchor(&self) -> bool {
        true
    }

    fn propose(&mut self, ctx: &mut PlanCtx<'_>, batch: usize, out: &mut Vec<Candidate>) {
        let anchor = ctx.anchor.map(|e| e.params.as_slice());
        for _ in 0..batch {
            let params: Vec<f64> = match anchor {
                Some(a) if ctx.rng.chance(0.65) => a
                    .iter()
                    .map(|v| (v + ctx.rng.normal_with(0.0, 0.1)).clamp(0.0, 1.0))
                    .collect(),
                _ => (0..ctx.dim).map(|_| ctx.rng.uniform()).collect(),
            };
            out.push(Candidate {
                params,
                rationale: "evidence-anchored".into(),
                confidence: 0.6,
                hallucinated: false,
            });
        }
    }

    fn observe(&mut self, _obs: &Observation<'_>) {}
}

// ---- Optimizing: surrogate acquisition --------------------------------------

/// RBF-surrogate acquisition (`evoflow-learn`'s [`RbfSurrogate`] via the
/// analysis agent): every proposal is the argmax of an
/// exploration-weighted acquisition over random candidates.
///
/// [`RbfSurrogate`]: evoflow_learn::RbfSurrogate
pub struct SurrogatePlanner {
    analysis: AnalysisAgent,
    threshold: f64,
}

impl SurrogatePlanner {
    /// Candidates scored per acquisition scan.
    const POOL: usize = 48;

    fn new(threshold: f64, scratch: Option<Rc<RefCell<ScoreScratch>>>) -> Self {
        let analysis = match scratch {
            Some(s) => AnalysisAgent::with_scratch(0.12, s),
            None => AnalysisAgent::new(0.12),
        };
        SurrogatePlanner {
            analysis,
            threshold,
        }
    }
}

impl Planner for SurrogatePlanner {
    fn name(&self) -> &'static str {
        "surrogate"
    }

    fn propose(&mut self, ctx: &mut PlanCtx<'_>, batch: usize, out: &mut Vec<Candidate>) {
        for _ in 0..batch {
            out.push(Candidate {
                params: self.analysis.recommend(ctx.dim, Self::POOL, ctx.rng),
                rationale: "acquisition argmin J".into(),
                confidence: 0.7,
                hallucinated: false,
            });
            ctx.scored += Self::POOL as u64;
        }
    }

    fn observe(&mut self, obs: &Observation<'_>) {
        // Keep the surrogate bounded: recent observations plus every
        // near-threshold point.
        if self.analysis.observations() < SURROGATE_CAP || obs.score >= 0.8 * self.threshold {
            self.analysis.assimilate(obs.params, obs.score);
        }
    }
}

// ---- Intelligent: the full agent stack --------------------------------------

/// The Intelligent level: hypothesis agent + validation gate + active
/// learning splice, under the meta-optimizer's rewritable strategy.
pub struct AgenticPlanner {
    hypothesis: HypothesisAgent,
    design: DesignAgent,
    analysis: AnalysisAgent,
    meta: MetaOptimizerAgent,
    strategy: Strategy,
    threshold: f64,
}

impl AgenticPlanner {
    fn new(b: &PlannerBuild<'_>, scratch: Option<Rc<RefCell<ScoreScratch>>>) -> Self {
        let hypothesis = HypothesisAgent::new(
            CognitiveModel::new(
                ModelProfile::reasoning_lrm(),
                b.reg.stream_seed("hypothesis"),
            ),
            b.dim,
        );
        let mut analysis = match scratch {
            Some(s) => AnalysisAgent::with_scratch(0.12, s),
            None => AnalysisAgent::new(0.12),
        };
        // Literature bootstrap: mine the published record before the
        // first experiment runs.
        let corpus = b.space.literature_corpus(50, b.seed ^ 0xBEEF);
        let mut lit = evoflow_agents::LiteratureAgent::new(
            CognitiveModel::new(ModelProfile::fast_llm(), b.reg.stream_seed("literature")),
            corpus,
        );
        for hint in lit.survey(5) {
            analysis.assimilate(&hint.params, hint.score);
        }
        AgenticPlanner {
            hypothesis,
            design: DesignAgent::new(b.dim),
            analysis,
            meta: MetaOptimizerAgent::new(6),
            strategy: Strategy {
                batch_size: b.batch_per_lane,
                ..Strategy::default()
            },
            threshold: b.space.threshold,
        }
    }
}

impl Planner for AgenticPlanner {
    fn name(&self) -> &'static str {
        "agentic"
    }

    fn wants_anchor(&self) -> bool {
        true
    }

    fn batch_size(&self) -> Option<usize> {
        Some(self.strategy.batch_size)
    }

    fn propose(&mut self, ctx: &mut PlanCtx<'_>, batch: usize, out: &mut Vec<Candidate>) {
        self.hypothesis.explore_ratio = self.strategy.explore_ratio;
        let anchor = ctx.anchor.map(|e| e.params.as_slice());
        let mut proposals = self.hypothesis.propose_anchored(anchor, batch);
        if self.strategy.use_recommendations && !proposals.is_empty() {
            let rec = self
                .analysis
                .recommend(ctx.dim, SurrogatePlanner::POOL, ctx.rng);
            ctx.scored += SurrogatePlanner::POOL as u64;
            proposals[0] = Candidate {
                params: rec,
                rationale: "analysis-agent recommendation".into(),
                confidence: 0.8,
                hallucinated: false,
            };
        }
        for c in proposals {
            if self.design.design(&c).is_ok() {
                out.push(c);
            }
            // Rejected candidates cost only decision time.
        }
    }

    fn observe(&mut self, obs: &Observation<'_>) {
        if self.analysis.observations() < SURROGATE_CAP || obs.score >= 0.8 * self.threshold {
            self.analysis.assimilate(obs.params, obs.score);
        }
    }

    fn end_iteration(&mut self, executed: usize, hits: u64) {
        let iter_yield = hits as f64 / executed.max(1) as f64;
        if let Some(next) = self.meta.review(iter_yield, self.strategy) {
            self.strategy = next;
        }
    }

    fn records_knowledge(&self) -> bool {
        true
    }

    fn telemetry(&self) -> PlannerTelemetry {
        PlannerTelemetry {
            rejected_proposals: self.design.rejected(),
            omega_rewrites: self.meta.rewrites,
        }
    }

    fn token_usage(&self) -> TokenUsage {
        self.hypothesis.usage()
    }
}

// ---- Bandit over region arms ------------------------------------------------

/// A multi-armed bandit (`evoflow-learn`'s [`Ucb1`] / [`ThompsonBeta`])
/// over a partition of the design cube into `regions_per_dim^dim` region
/// arms: each proposal selects an arm and samples uniformly inside it;
/// each observation rewards the arm containing the measured point with
/// the clamped score.
pub struct BanditPlanner {
    policy: Box<dyn BanditPolicy>,
    label: &'static str,
    per_dim: usize,
    dim: usize,
    /// Coordinate staging buffer, reused across proposals; each
    /// candidate still owns its `params` (one clone), but digit
    /// decomposition and sampling never reallocate.
    coords: Vec<f64>,
}

impl BanditPlanner {
    fn new(kind: BanditKind, per_dim: usize, dim: usize) -> Self {
        let arms = per_dim.checked_pow(dim as u32).unwrap_or(usize::MAX).max(1);
        let (policy, label): (Box<dyn BanditPolicy>, _) = match kind {
            BanditKind::Ucb1 => (Box::new(Ucb1::new(arms)), "bandit-ucb1"),
            BanditKind::Thompson => (Box::new(ThompsonBeta::new(arms)), "bandit-thompson"),
        };
        BanditPlanner {
            policy,
            label,
            per_dim,
            dim,
            coords: Vec::with_capacity(dim),
        }
    }

    /// The region arm containing `params` (little-endian digits).
    fn arm_of(&self, params: &[f64]) -> usize {
        let mut arm = 0usize;
        let mut stride = 1usize;
        for v in params {
            let digit = ((v * self.per_dim as f64) as usize).min(self.per_dim - 1);
            arm += digit * stride;
            stride *= self.per_dim;
        }
        arm
    }
}

impl Planner for BanditPlanner {
    fn name(&self) -> &'static str {
        self.label
    }

    fn propose(&mut self, ctx: &mut PlanCtx<'_>, batch: usize, out: &mut Vec<Candidate>) {
        for _ in 0..batch {
            let mut arm = self.policy.select(ctx.rng);
            self.coords.clear();
            for _ in 0..self.dim {
                let digit = arm % self.per_dim;
                arm /= self.per_dim;
                self.coords
                    .push((digit as f64 + ctx.rng.uniform()) / self.per_dim as f64);
            }
            out.push(Candidate {
                params: self.coords.clone(),
                rationale: "bandit region arm".into(),
                confidence: 0.55,
                hallucinated: false,
            });
        }
    }

    fn observe(&mut self, obs: &Observation<'_>) {
        let arm = self.arm_of(obs.params);
        self.policy.update(arm, obs.score.clamp(0.0, 1.0));
    }
}

// ---- Particle swarm ----------------------------------------------------------

/// Particle-swarm search (Kennedy–Eberhart velocity rule, hyperparameters
/// from `evoflow-learn`'s [`PsoConfig`]): the campaign's lanes evaluate
/// particles round-robin; personal/global bests update from measured
/// scores (maximizing).
pub struct SwarmPlanner {
    cfg: PsoConfig,
    particles: usize,
    pos: Vec<Vec<f64>>,
    vel: Vec<Vec<f64>>,
    pbest: Vec<Option<(Vec<f64>, f64)>>,
    gbest: Option<(Vec<f64>, f64)>,
    cursor: usize,
    /// Particles proposed in the current batch, in execution order.
    pending: VecDeque<usize>,
}

impl SwarmPlanner {
    fn new(particles: usize, cfg: PsoConfig) -> Self {
        SwarmPlanner {
            cfg,
            particles,
            pos: Vec::new(),
            vel: Vec::new(),
            pbest: Vec::new(),
            gbest: None,
            cursor: 0,
            pending: VecDeque::new(),
        }
    }

    fn ensure_init(&mut self, dim: usize, rng: &mut SimRng) {
        if !self.pos.is_empty() {
            return;
        }
        let n = self.particles;
        self.pos = (0..n)
            .map(|_| (0..dim).map(|_| rng.uniform()).collect())
            .collect();
        self.vel = (0..n)
            .map(|_| {
                (0..dim)
                    .map(|_| rng.uniform_range(-self.cfg.v_max, self.cfg.v_max))
                    .collect()
            })
            .collect();
        self.pbest = vec![None; n];
    }
}

impl Planner for SwarmPlanner {
    fn name(&self) -> &'static str {
        "swarm"
    }

    fn propose(&mut self, ctx: &mut PlanCtx<'_>, batch: usize, out: &mut Vec<Candidate>) {
        self.ensure_init(ctx.dim, ctx.rng);
        // Any entries left pending from a budget-truncated batch are
        // stale — their measurements will never arrive.
        self.pending.clear();
        for _ in 0..batch {
            let i = self.cursor % self.particles;
            self.cursor += 1;
            // Move evaluated particles before re-proposing them; fresh
            // particles fly from their seeded initial positions first.
            if let Some((pb, _)) = &self.pbest[i] {
                let social = self.gbest.as_ref().map(|(g, _)| g.as_slice());
                for d in 0..ctx.dim {
                    let r1 = ctx.rng.uniform();
                    let r2 = ctx.rng.uniform();
                    let toward_g = social.map(|g| g[d]).unwrap_or(pb[d]);
                    self.vel[i][d] = (self.cfg.inertia * self.vel[i][d]
                        + self.cfg.cognitive * r1 * (pb[d] - self.pos[i][d])
                        + self.cfg.social * r2 * (toward_g - self.pos[i][d]))
                        .clamp(-self.cfg.v_max, self.cfg.v_max);
                    self.pos[i][d] = (self.pos[i][d] + self.vel[i][d]).clamp(0.0, 1.0);
                }
            }
            out.push(Candidate {
                params: self.pos[i].clone(),
                rationale: "pso particle".into(),
                confidence: 0.55,
                hallucinated: false,
            });
            self.pending.push_back(i);
        }
    }

    fn observe(&mut self, obs: &Observation<'_>) {
        let Some(i) = self.pending.pop_front() else {
            return;
        };
        let better_p = self.pbest[i]
            .as_ref()
            .map(|(_, v)| obs.score > *v)
            .unwrap_or(true);
        if better_p {
            self.pbest[i] = Some((obs.params.to_vec(), obs.score));
        }
        let better_g = self
            .gbest
            .as_ref()
            .map(|(_, v)| obs.score > *v)
            .unwrap_or(true);
        if better_g {
            self.gbest = Some((obs.params.to_vec(), obs.score));
        }
    }
}

// ---- Meta: a bandit over planners --------------------------------------------

/// Ω selecting δ: a UCB1 bandit chooses which pooled planner proposes
/// each batch; every observation feeds *all* pooled planners (shared
/// evidence), and the batch's yield rewards the arm that proposed it.
/// [`MetaOptimizerAgent`] reviews the yield series and widens the
/// bandit's exploration coefficient whenever the pool stalls.
pub struct MetaPlanner {
    pool: Vec<Box<dyn Planner>>,
    bandit: Ucb1,
    omega: MetaOptimizerAgent,
    strategy: Strategy,
    active: usize,
}

impl MetaPlanner {
    fn new(pool: Vec<Box<dyn Planner>>) -> Self {
        let arms = pool.len().max(1);
        MetaPlanner {
            pool,
            bandit: Ucb1::new(arms),
            omega: MetaOptimizerAgent::new(6),
            strategy: Strategy::default(),
            active: 0,
        }
    }
}

impl Planner for MetaPlanner {
    fn name(&self) -> &'static str {
        "meta"
    }

    fn wants_anchor(&self) -> bool {
        self.pool.iter().any(|p| p.wants_anchor())
    }

    fn propose(&mut self, ctx: &mut PlanCtx<'_>, batch: usize, out: &mut Vec<Candidate>) {
        self.active = self.bandit.select(ctx.rng).min(self.pool.len() - 1);
        self.pool[self.active].propose(ctx, batch, out);
    }

    fn observe(&mut self, obs: &Observation<'_>) {
        for p in &mut self.pool {
            p.observe(obs);
        }
    }

    fn end_iteration(&mut self, executed: usize, hits: u64) {
        let reward = hits as f64 / executed.max(1) as f64;
        self.bandit.update(self.active, reward);
        self.pool[self.active].end_iteration(executed, hits);
        // Ω review: a stalled pool means the current arbitration is not
        // working — widen exploration so colder arms get replayed.
        if let Some(next) = self.omega.review(reward, self.strategy) {
            self.strategy = next;
            self.bandit.c += 0.25;
        }
    }

    fn records_knowledge(&self) -> bool {
        self.pool.iter().any(|p| p.records_knowledge())
    }

    fn telemetry(&self) -> PlannerTelemetry {
        let mut t = PlannerTelemetry {
            rejected_proposals: 0,
            omega_rewrites: self.omega.rewrites,
        };
        for p in &self.pool {
            let c = p.telemetry();
            t.rejected_proposals += c.rejected_proposals;
            t.omega_rewrites += c.omega_rewrites;
        }
        t
    }

    fn token_usage(&self) -> TokenUsage {
        let mut usage = TokenUsage::default();
        for p in &self.pool {
            usage.add(p.token_usage());
        }
        usage
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build_ctx<'a>(
        space: &'a MaterialsSpace,
        reg: &'a RngRegistry,
        n_lanes: usize,
    ) -> PlannerBuild<'a> {
        PlannerBuild {
            space,
            reg,
            seed: 7,
            dim: space.dim(),
            batch_per_lane: 4,
            n_lanes,
            shares_globally: true,
        }
    }

    #[test]
    fn lazy_grid_matches_eager_enumeration() {
        // The eager table this replaced: odometer over idx[0] fastest.
        let dim = 3;
        let per_dim = GridPlanner::PER_DIM;
        let mut eager = Vec::new();
        let mut idx = vec![0usize; dim];
        'outer: loop {
            eager.push(
                idx.iter()
                    .map(|&i| i as f64 / (per_dim - 1) as f64)
                    .collect::<Vec<f64>>(),
            );
            let mut d = 0;
            loop {
                idx[d] += 1;
                if idx[d] < per_dim {
                    break;
                }
                idx[d] = 0;
                d += 1;
                if d == dim {
                    break 'outer;
                }
            }
        }
        let g = GridPlanner::new(dim, 1, true);
        assert_eq!(g.total, eager.len());
        for (i, pt) in eager.iter().enumerate() {
            assert_eq!(&g.point(i), pt, "grid point {i}");
        }
        // Wrapping beyond the table.
        assert_eq!(g.point(eager.len() + 3), eager[3]);
    }

    #[test]
    fn default_planner_mapping_pins_every_table1_row() {
        let expected = [
            (IntelligenceLevel::Static, PlannerKind::Grid),
            (IntelligenceLevel::Adaptive, PlannerKind::Adaptive),
            (IntelligenceLevel::Learning, PlannerKind::Evidence),
            (IntelligenceLevel::Optimizing, PlannerKind::Surrogate),
            (IntelligenceLevel::Intelligent, PlannerKind::Agentic),
        ];
        assert_eq!(expected.len(), IntelligenceLevel::ALL.len());
        for (level, kind) in expected {
            assert_eq!(PlannerKind::for_level(level), kind, "{level:?}");
        }
    }

    #[test]
    fn bandit_arm_roundtrip() {
        let b = BanditPlanner::new(BanditKind::Ucb1, 3, 2);
        // Region (1, 2) → arm 1 + 2*3 = 7; points inside map back.
        assert_eq!(b.arm_of(&[0.5, 0.9]), 7);
        assert_eq!(b.arm_of(&[0.0, 0.0]), 0);
        assert_eq!(b.arm_of(&[1.0, 1.0]), 8); // clamped top edge
    }

    #[test]
    fn bandit_proposals_fall_inside_selected_regions() {
        let space = MaterialsSpace::generate(2, 4, 1);
        let reg = RngRegistry::new(1);
        let b = build_ctx(&space, &reg, 1);
        let mut p = PlannerKind::bandit().build(&b);
        let mut rng = reg.stream("decision");
        let mut out = Vec::new();
        let mut ctx = PlanCtx {
            dim: 2,
            lane: 0,
            rng: &mut rng,
            anchor: None,
            scored: 0,
        };
        p.propose(&mut ctx, 16, &mut out);
        assert_eq!(out.len(), 16);
        for c in &out {
            assert!(c.params.iter().all(|v| (0.0..=1.0).contains(v)));
        }
    }

    #[test]
    fn swarm_planner_moves_toward_rewards() {
        let mut p = SwarmPlanner::new(8, PsoConfig::default());
        let mut rng = SimRng::from_seed_u64(3);
        let target = [0.8, 0.2];
        let mut best = f64::NEG_INFINITY;
        for _ in 0..60 {
            let mut out = Vec::new();
            let mut ctx = PlanCtx {
                dim: 2,
                lane: 0,
                rng: &mut rng,
                anchor: None,
                scored: 0,
            };
            p.propose(&mut ctx, 4, &mut out);
            for c in &out {
                let d2: f64 = c
                    .params
                    .iter()
                    .zip(&target)
                    .map(|(a, b)| (a - b).powi(2))
                    .sum();
                let score = (-d2).exp();
                best = best.max(score);
                p.observe(&Observation {
                    lane: 0,
                    params: &c.params,
                    score,
                    hit: score > 0.9,
                });
            }
        }
        assert!(best > 0.95, "swarm best {best}");
    }

    #[test]
    fn meta_planner_flattens_nested_pools_and_routes() {
        let space = MaterialsSpace::generate(2, 4, 2);
        let reg = RngRegistry::new(2);
        let b = build_ctx(&space, &reg, 1);
        let nested = PlannerKind::Meta {
            pool: vec![PlannerKind::meta(), PlannerKind::Grid],
        };
        let mut p = nested.build(&b);
        assert_eq!(p.name(), "meta");
        let mut rng = reg.stream("decision");
        let mut out = Vec::new();
        let mut ctx = PlanCtx {
            dim: 2,
            lane: 0,
            rng: &mut rng,
            anchor: None,
            scored: 0,
        };
        p.propose(&mut ctx, 4, &mut out);
        assert_eq!(out.len(), 4);
        for c in &out {
            p.observe(&Observation {
                lane: 0,
                params: &c.params,
                score: 0.5,
                hit: false,
            });
        }
        p.end_iteration(4, 0);
    }

    #[test]
    fn planner_kind_round_trips_through_serde() {
        for kind in PlannerKind::all_concrete()
            .into_iter()
            .chain([PlannerKind::meta(), PlannerKind::ensemble()])
        {
            let json = serde_json::to_string(&kind).expect("serialize");
            let back: PlannerKind = serde_json::from_str(&json).expect("deserialize");
            assert_eq!(kind, back, "round-trip {json}");
        }
    }

    #[test]
    fn labels_are_stable_and_distinct() {
        let labels: std::collections::BTreeSet<&str> = PlannerKind::all_concrete()
            .iter()
            .map(|k| k.label())
            .collect();
        assert_eq!(labels.len(), 8, "concrete planner labels must be unique");
    }

    #[test]
    fn descriptor_distinguishes_parameterisations() {
        // Same label, different policy ⇒ different descriptor — the
        // property fleet per-cell aggregation keys on.
        let a = PlannerKind::Swarm { particles: 8 };
        let b = PlannerKind::Swarm { particles: 64 };
        assert_eq!(a.label(), b.label());
        assert_ne!(a.descriptor(), b.descriptor());

        let c = PlannerKind::Bandit {
            policy: BanditKind::Ucb1,
            regions_per_dim: 2,
        };
        let d = PlannerKind::Bandit {
            policy: BanditKind::Ucb1,
            regions_per_dim: 5,
        };
        assert_ne!(c.descriptor(), d.descriptor());

        // Meta descriptors recurse into their pools.
        let m1 = PlannerKind::Meta { pool: vec![a] };
        let m2 = PlannerKind::Meta { pool: vec![b] };
        assert_ne!(m1.descriptor(), m2.descriptor());
        assert!(m1.descriptor().starts_with("meta["));

        // Ensemble descriptors carry the pool breadth.
        let e1 = PlannerKind::Ensemble { specialists: 2 };
        let e2 = PlannerKind::Ensemble { specialists: 8 };
        assert_eq!(e1.label(), e2.label());
        assert_ne!(e1.descriptor(), e2.descriptor());
        assert_eq!(PlannerKind::ensemble().descriptor(), "ensemble(s4)");
    }
}
