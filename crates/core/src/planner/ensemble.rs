//! Cooperative agent ensemble: specialist roles negotiating over the
//! typed agent-communication protocol.
//!
//! Where [`AgenticPlanner`](super::AgenticPlanner) is one agent stack
//! with a meta-optimizer, the ensemble is a *population* of specialists
//! that coordinate through real [`evoflow_protocol`] conversations:
//!
//! * **generator** — the hypothesis agent, anchored away from already
//!   confirmed discoveries;
//! * **evolver** — mutates the frontier (high-scoring evidence that has
//!   *not* yet crossed the threshold) hunting new peaks;
//! * **reflector** — critiques every pool candidate against the
//!   surrogate and the discovery archive, demoting re-derivations
//!   ([`ReflectorAgent`]);
//! * **ranker** — runs a seeded pairwise tournament over the joint
//!   candidate pool and keeps only the winners;
//! * **meta-reviewer** — periodically reweights the generator/evolver
//!   split from each source's measured hit yield.
//!
//! Every exchange is a legal ACL conversation ([`Conversation::accept`]
//! enforces the reply grammar and turn-taking), and every message is
//! round-tripped through the EVFW wire frame before it counts — the
//! ensemble exercises the federation transport on every iteration, not
//! just in protocol unit tests. The full cooperative transcript
//! (messages, tournament matches, meta-reviews) is emitted as
//! [`CampaignEvent`]s through [`Planner::drain_events`], so a recorded
//! ledger replays the ensemble's internal negotiation byte-identically.
//!
//! Determinism: the transcript is built unconditionally (whether or not
//! an observer is attached) and all stochastic choices draw from either
//! the embedded cognitive models' streams or the dedicated `"ensemble"`
//! registry stream fixed at build — never from wall clock or emission
//! state.
//!
//! [`Conversation::accept`]: evoflow_protocol::Conversation::accept
//! [`ReflectorAgent`]: evoflow_agents::ReflectorAgent

use std::borrow::Cow;

use evoflow_agents::{
    AnalysisAgent, Candidate, DesignAgent, Evidence, HypothesisAgent, LiteratureAgent,
    MetaOptimizerAgent, ReflectorAgent, Strategy,
};
use evoflow_cogsim::{CognitiveModel, ModelProfile, TokenUsage};
use evoflow_protocol::acl::ConversationTable;
use evoflow_protocol::{decode_frame, encode_frame, AclMessage, Frame, FrameKind, Performative};
use evoflow_sim::SimRng;

use super::{
    Observation, PlanCtx, Planner, PlannerBuild, PlannerTelemetry, SurrogatePlanner, SURROGATE_CAP,
};
use crate::ledger::CampaignEvent;

/// Default specialist breadth: each of generator and evolver contributes
/// `specialists` candidates to every tournament pool.
pub const DEFAULT_SPECIALISTS: usize = 4;

/// Shared vocabulary all ensemble conversations are expressed in.
const ONTOLOGY: &str = "evoflow/ensemble/1";

/// Wire-protocol version the ensemble frames its messages with.
const WIRE_VERSION: u16 = 1;

/// Radius under which a candidate or observation counts as re-deriving
/// an already-confirmed discovery region. Wider than a typical peak, so
/// the tabu pressure pushes the pool off a discovered peak entirely
/// instead of orbiting its shoulder.
const REDERIVATION_RADIUS: f64 = 0.18;

/// Fraction of evolver proposals drawn as uniform restarts — the
/// ensemble's hedge against every frontier anchor sitting on the
/// shoulder of an already-discovered peak.
const EVOLVER_RESTART_RATIO: f64 = 0.35;

/// Iterations between meta-reviewer reweightings of the specialist pool.
const META_REVIEW_PERIOD: u64 = 16;

/// Bound on the critique-derived evidence store.
const EVIDENCE_CAP: usize = 128;

/// Bound on the frontier (promising-but-not-yet-hit anchors).
const FRONTIER_CAP: usize = 16;

/// Bound on the discovery archive used for tabu pressure.
const DISCOVERED_CAP: usize = 64;

/// Fraction of the threshold above which a miss still joins the frontier.
const FRONTIER_FLOOR: f64 = 0.6;

// Stable role names used as ACL sender/receiver identities.
const COORDINATOR: &str = "coordinator";
const GENERATOR: &str = "generator";
const EVOLVER: &str = "evolver";
const REFLECTOR: &str = "reflector";
const RANKER: &str = "ranker";
const META_REVIEWER: &str = "meta-reviewer";

/// Which specialist produced a proposed candidate (for yield attribution).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Source {
    Generator,
    Evolver,
}

/// The cooperative ensemble planner (see the module docs for the role
/// pipeline). Built via [`PlannerKind::Ensemble`](super::PlannerKind).
pub struct EnsemblePlanner {
    specialists: usize,
    threshold: f64,
    generator: HypothesisAgent,
    reflector: ReflectorAgent,
    analysis: AnalysisAgent,
    design: DesignAgent,
    meta: MetaOptimizerAgent,
    strategy: Strategy,
    /// Dedicated seeded stream for tournament pairings and evolver
    /// mutations — isolated from the campaign decision stream so adding
    /// the ensemble never perturbs other planners' draws.
    rng: SimRng,
    round: u64,
    last_lane: usize,
    next_conversation: u64,
    conversations: ConversationTable,
    /// Generator's share of the tournament pool (meta-reviewed).
    gen_weight: f64,
    /// Critique-derived predicted evidence (bounded FIFO).
    evidence: Vec<Evidence>,
    /// Confirmed discovery regions; proposals near these are demoted.
    discovered: Vec<Vec<f64>>,
    /// High-scoring misses outside every discovered region, best first.
    frontier: Vec<Evidence>,
    /// Source of each candidate proposed this iteration, in order.
    pending: Vec<Source>,
    /// Flattened pool coordinates for the reflector's batched surrogate
    /// pass, reused across rounds.
    pool_flat: Vec<f64>,
    /// `(predicted, uncertainty)` per pool candidate, reused across
    /// rounds.
    pool_preds: Vec<(f64, f64)>,
    obs_cursor: usize,
    gen_runs: u64,
    gen_hits: u64,
    evo_runs: u64,
    evo_hits: u64,
    critiques_total: u64,
    transcript: Vec<CampaignEvent>,
}

fn euclid(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).powi(2))
        .sum::<f64>()
        .sqrt()
}

impl EnsemblePlanner {
    /// Build an ensemble with the given specialist breadth (pool size is
    /// `2 × specialists` split between generator and evolver).
    pub fn new(specialists: usize, b: &PlannerBuild<'_>) -> Self {
        let generator = HypothesisAgent::new(
            CognitiveModel::new(
                ModelProfile::reasoning_lrm(),
                b.reg.stream_seed("hypothesis"),
            ),
            b.dim,
        );
        let mut analysis = AnalysisAgent::new(0.12);
        // Same literature bootstrap as the Intelligent level: mine the
        // published record before the first experiment runs.
        let corpus = b.space.literature_corpus(50, b.seed ^ 0xBEEF);
        let mut lit = LiteratureAgent::new(
            CognitiveModel::new(ModelProfile::fast_llm(), b.reg.stream_seed("literature")),
            corpus,
        );
        for hint in lit.survey(5) {
            analysis.assimilate(&hint.params, hint.score);
        }
        EnsemblePlanner {
            specialists: specialists.max(1),
            threshold: b.space.threshold,
            generator,
            reflector: ReflectorAgent::new(REDERIVATION_RADIUS),
            analysis,
            design: DesignAgent::new(b.dim),
            meta: MetaOptimizerAgent::new(6),
            strategy: Strategy {
                // The ensemble is a parallel cast by construction: run
                // one experiment per specialist per iteration, not the
                // single-agent default, so the cooperative pool's
                // breadth reaches the instruments.
                batch_size: b.batch_per_lane.max(2 * specialists.max(1)),
                ..Strategy::default()
            },
            rng: b.reg.stream("ensemble"),
            round: 0,
            last_lane: 0,
            next_conversation: 0,
            conversations: ConversationTable::new(),
            gen_weight: 0.5,
            evidence: Vec::new(),
            discovered: Vec::new(),
            frontier: Vec::new(),
            pending: Vec::new(),
            pool_flat: Vec::new(),
            pool_preds: Vec::new(),
            obs_cursor: 0,
            gen_runs: 0,
            gen_hits: 0,
            evo_runs: 0,
            evo_hits: 0,
            critiques_total: 0,
            transcript: Vec::new(),
        }
    }

    fn is_rederivation(&self, params: &[f64]) -> bool {
        self.discovered
            .iter()
            .any(|r| euclid(r, params) <= REDERIVATION_RADIUS)
    }

    /// Validate `msg` against the conversation grammar, round-trip it
    /// through the EVFW wire frame, and record the exchange in the
    /// cooperative transcript.
    fn send(&mut self, lane: usize, performative: &'static str, msg: AclMessage) {
        let conversation = msg.conversation;
        let sender = role(&msg.sender);
        let receiver = role(&msg.receiver);
        self.conversations
            .accept(msg.clone())
            .expect("ensemble conversation stays in protocol");
        let payload = serde_json::to_vec(&msg).expect("ACL message serializes");
        let frame = Frame {
            version: WIRE_VERSION,
            kind: FrameKind::Acl,
            flags: 0,
            conversation,
            payload: payload.into(),
        };
        let bytes = encode_frame(&frame).expect("ensemble frames stay within wire bounds");
        let frame_bytes = bytes.len() as u64;
        let mut buf = bytes::BytesMut::from(&bytes[..]);
        let back = decode_frame(&mut buf).expect("own frame decodes");
        assert_eq!(back, frame, "EVFW round-trip drift on ensemble message");
        self.transcript.push(CampaignEvent::EnsembleMessage {
            lane,
            round: self.round,
            performative: Cow::Borrowed(performative),
            sender,
            receiver,
            conversation,
            frame_bytes,
        });
    }

    fn fresh_conversation(&mut self) -> u64 {
        let id = self.next_conversation;
        self.next_conversation += 1;
        id
    }

    /// Two-message exchange: `initiator` opens with `open`, `responder`
    /// answers with `answer`. Returns the conversation id.
    #[allow(clippy::too_many_arguments)]
    fn exchange(
        &mut self,
        lane: usize,
        initiator: &'static str,
        responder: &'static str,
        open: Performative,
        open_content: String,
        answer: Performative,
        answer_content: String,
    ) -> u64 {
        let id = self.fresh_conversation();
        let first = AclMessage::new(open, initiator, responder, id, ONTOLOGY, open_content);
        let reply = first.reply(answer, answer_content);
        self.send(lane, open.label(), first);
        self.send(lane, answer.label(), reply);
        id
    }

    /// Best non-rederiving anchor from the frontier, the critique
    /// evidence store, or the lane's shared-evidence anchor.
    fn pick_anchor(&self, ctx: &PlanCtx<'_>) -> Option<Vec<f64>> {
        let best = self
            .frontier
            .iter()
            .chain(self.evidence.iter())
            .filter(|e| !self.is_rederivation(&e.params))
            .max_by(|a, b| a.score.partial_cmp(&b.score).expect("finite scores"));
        if let Some(e) = best {
            return Some(e.params.clone());
        }
        ctx.anchor
            .filter(|a| !self.is_rederivation(&a.params))
            .map(|a| a.params.clone())
    }
}

/// Map a role string back to its `'static` name for zero-alloc events.
fn role(name: &str) -> Cow<'static, str> {
    for r in [
        COORDINATOR,
        GENERATOR,
        EVOLVER,
        REFLECTOR,
        RANKER,
        META_REVIEWER,
    ] {
        if name == r {
            return Cow::Borrowed(r);
        }
    }
    Cow::Owned(name.to_string())
}

impl Planner for EnsemblePlanner {
    fn name(&self) -> &'static str {
        "ensemble"
    }

    fn wants_anchor(&self) -> bool {
        true
    }

    fn batch_size(&self) -> Option<usize> {
        Some(self.strategy.batch_size)
    }

    fn propose(&mut self, ctx: &mut PlanCtx<'_>, batch: usize, out: &mut Vec<Candidate>) {
        self.round += 1;
        self.last_lane = ctx.lane;
        // Conversations are per-round; resetting the table bounds memory
        // without weakening per-message validation.
        self.conversations = ConversationTable::new();
        self.pending.clear();
        self.obs_cursor = 0;
        self.generator.explore_ratio = self.strategy.explore_ratio;

        // Pool split between the two candidate sources, meta-reweighted.
        let pool_target = (2 * self.specialists).max(2 * batch.max(1));
        let n_gen =
            ((pool_target as f64 * self.gen_weight).round() as usize).clamp(1, pool_target - 1);
        let n_evo = pool_target - n_gen;

        // -- generation -----------------------------------------------------
        let anchor = self.pick_anchor(ctx);
        self.exchange(
            ctx.lane,
            COORDINATOR,
            GENERATOR,
            Performative::Request,
            format!(
                "propose {n_gen} hypotheses; explore_ratio={:.3}; anchored={}",
                self.strategy.explore_ratio,
                anchor.is_some()
            ),
            Performative::Agree,
            format!("committing {n_gen} hypotheses"),
        );
        let mut gen_pool = self.generator.propose_anchored(anchor.as_deref(), n_gen);
        if self.strategy.use_recommendations && !gen_pool.is_empty() {
            let rec = self
                .analysis
                .recommend(ctx.dim, SurrogatePlanner::POOL, ctx.rng);
            ctx.scored += SurrogatePlanner::POOL as u64;
            gen_pool[0] = Candidate {
                params: rec,
                rationale: "analysis-agent recommendation".into(),
                confidence: 0.8,
                hallucinated: false,
            };
        }
        let mut pool: Vec<(Candidate, Source)> = gen_pool
            .into_iter()
            .map(|c| (c, Source::Generator))
            .collect();

        // -- evolution ------------------------------------------------------
        self.exchange(
            ctx.lane,
            COORDINATOR,
            EVOLVER,
            Performative::Request,
            format!(
                "mutate {n_evo} frontier points; frontier={}",
                self.frontier.len()
            ),
            Performative::Agree,
            format!("committing {n_evo} mutations"),
        );
        for _ in 0..n_evo {
            let restart = self.frontier.is_empty() || self.rng.chance(EVOLVER_RESTART_RATIO);
            let params: Vec<f64> = if restart {
                (0..ctx.dim).map(|_| self.rng.uniform()).collect()
            } else {
                let base = &self.frontier[self.rng.below(self.frontier.len())];
                base.params
                    .iter()
                    .map(|&v| (v + self.rng.normal_with(0.0, 0.1)).clamp(0.0, 1.0))
                    .collect()
            };
            pool.push((
                Candidate {
                    params,
                    rationale: Cow::Borrowed("evolver mutation of frontier evidence"),
                    confidence: 0.65,
                    hallucinated: false,
                },
                Source::Evolver,
            ));
        }

        // -- reflection -----------------------------------------------------
        // One batched surrogate pass for the whole pool: flatten the
        // coordinates, predict every candidate in a single scan of the
        // observations, then critique against the precomputed pairs.
        // Bit-identical to per-candidate `critique`.
        self.pool_flat.clear();
        for (c, _) in &pool {
            self.pool_flat.extend_from_slice(&c.params);
        }
        self.pool_preds.clear();
        self.analysis
            .predict_batch(ctx.dim, &self.pool_flat, &mut self.pool_preds);
        ctx.scored += pool.len() as u64;
        let critiques: Vec<_> = pool
            .iter()
            .zip(&self.pool_preds)
            .map(|((c, _), &(pred, unc))| {
                self.reflector
                    .critique_scored(c, pred, unc, &self.discovered)
            })
            .collect();
        let rederivations = critiques
            .iter()
            .filter(|cr| cr.novelty <= REDERIVATION_RADIUS)
            .count();
        self.critiques_total += critiques.len() as u64;
        self.exchange(
            ctx.lane,
            COORDINATOR,
            REFLECTOR,
            Performative::QueryRef,
            format!("critique pool of {}", pool.len()),
            Performative::InformRef,
            format!(
                "critiqued {}; rederivations={rederivations}",
                critiques.len()
            ),
        );
        for ((cand, _), cr) in pool.iter_mut().zip(&critiques) {
            cand.confidence = cr.adjusted_confidence;
            if cr.predicted.is_finite() {
                self.evidence.push(Evidence {
                    params: cand.params.clone(),
                    score: cr.predicted,
                });
                if self.evidence.len() > EVIDENCE_CAP {
                    self.evidence.remove(0);
                }
            }
        }

        // -- tournament ranking ---------------------------------------------
        // Utility rewards predicted score, distance from confirmed
        // discoveries (the distinct-discovery edge), surrogate
        // uncertainty, and the reflector's adjusted confidence.
        // Re-derivations take a hard penalty: a rediscovered peak adds
        // nothing to the distinct count, whatever its score.
        let utility: Vec<f64> = critiques
            .iter()
            .map(|cr| {
                let novelty = cr.novelty.min(0.6); // ∞ ⇒ max bonus
                let tabu = if cr.novelty <= REDERIVATION_RADIUS {
                    -0.75
                } else {
                    0.0
                };
                cr.predicted
                    + 0.8 * novelty
                    + 0.25 * cr.uncertainty.min(1.0)
                    + 0.15 * cr.adjusted_confidence
                    + tabu
            })
            .collect();
        let id = self.fresh_conversation();
        let propose_msg = AclMessage::new(
            Performative::Propose,
            GENERATOR,
            RANKER,
            id,
            ONTOLOGY,
            format!("rank pool of {}", pool.len()),
        );
        self.send(ctx.lane, Performative::Propose.label(), propose_msg.clone());

        let keep = batch.max(1).min(pool.len());
        let mut alive: Vec<usize> = (0..pool.len()).collect();
        let matches = pool.len() - keep;
        for _ in 0..matches {
            // Seeded pairwise elimination: two random contenders, the
            // lower-utility one leaves the pool.
            let i = self.rng.below(alive.len());
            let mut j = self.rng.below(alive.len() - 1);
            if j >= i {
                j += 1;
            }
            let (left, right) = (alive[i], alive[j]);
            let (winner, loser_slot) = if utility[left] >= utility[right] {
                (left, j)
            } else {
                (right, i)
            };
            self.transcript.push(CampaignEvent::TournamentMatch {
                lane: ctx.lane,
                round: self.round,
                left,
                right,
                winner,
                margin: (utility[left] - utility[right]).abs(),
            });
            alive.swap_remove(loser_slot);
        }
        self.send(
            ctx.lane,
            Performative::AcceptProposal.label(),
            propose_msg.reply(
                Performative::AcceptProposal,
                format!("winners={} after {matches} matches", alive.len()),
            ),
        );

        // Survivors in original pool order, through the validation gate.
        alive.sort_unstable();
        let mut survivor = vec![false; pool.len()];
        for idx in alive {
            survivor[idx] = true;
        }
        for (idx, (cand, source)) in pool.into_iter().enumerate() {
            if !survivor[idx] {
                continue;
            }
            if self.design.design(&cand).is_ok() {
                out.push(cand);
                self.pending.push(source);
            }
            // Rejected candidates cost only decision time.
        }
    }

    fn observe(&mut self, obs: &Observation<'_>) {
        if self.analysis.observations() < SURROGATE_CAP || obs.score >= 0.8 * self.threshold {
            self.analysis.assimilate(obs.params, obs.score);
        }
        let source = self.pending.get(self.obs_cursor).copied();
        self.obs_cursor += 1;
        match source {
            Some(Source::Generator) => self.gen_runs += 1,
            Some(Source::Evolver) => self.evo_runs += 1,
            None => {}
        }
        if obs.hit {
            match source {
                Some(Source::Generator) => self.gen_hits += 1,
                Some(Source::Evolver) => self.evo_hits += 1,
                None => {}
            }
            if !self.is_rederivation(obs.params) && self.discovered.len() < DISCOVERED_CAP {
                self.discovered.push(obs.params.to_vec());
                // The region is confirmed: stop anchoring on it.
                self.frontier
                    .retain(|e| euclid(&e.params, obs.params) > REDERIVATION_RADIUS);
            }
        } else if obs.score >= FRONTIER_FLOOR * self.threshold && !self.is_rederivation(obs.params)
        {
            let pos = self
                .frontier
                .iter()
                .position(|e| e.score < obs.score)
                .unwrap_or(self.frontier.len());
            if pos < FRONTIER_CAP {
                self.frontier.insert(
                    pos,
                    Evidence {
                        params: obs.params.to_vec(),
                        score: obs.score,
                    },
                );
                self.frontier.truncate(FRONTIER_CAP);
            }
        }
    }

    fn end_iteration(&mut self, executed: usize, hits: u64) {
        let iter_yield = hits as f64 / executed.max(1) as f64;
        if let Some(next) = self.meta.review(iter_yield, self.strategy) {
            self.strategy = next;
        }
        if self.round > 0 && self.round.is_multiple_of(META_REVIEW_PERIOD) {
            // Meta-review: reweight the pool split from measured per-source
            // hit yield (Laplace-smoothed so a cold source keeps a voice).
            let gen_rate = (self.gen_hits as f64 + 0.5) / (self.gen_runs as f64 + 1.0);
            let evo_rate = (self.evo_hits as f64 + 0.5) / (self.evo_runs as f64 + 1.0);
            self.gen_weight = (gen_rate / (gen_rate + evo_rate)).clamp(0.25, 0.75);
            self.gen_runs = 0;
            self.gen_hits = 0;
            self.evo_runs = 0;
            self.evo_hits = 0;
            let id = self.fresh_conversation();
            let lane = self.last_lane;
            let msg = AclMessage::new(
                Performative::Inform,
                META_REVIEWER,
                COORDINATOR,
                id,
                ONTOLOGY,
                format!(
                    "generator_weight={:.3} evolver_weight={:.3} critiques={}",
                    self.gen_weight,
                    1.0 - self.gen_weight,
                    self.critiques_total
                ),
            );
            self.send(lane, Performative::Inform.label(), msg);
            self.transcript.push(CampaignEvent::MetaReview {
                lane,
                round: self.round,
                generator_weight: self.gen_weight,
                evolver_weight: 1.0 - self.gen_weight,
                critiques: self.critiques_total,
            });
        }
    }

    fn records_knowledge(&self) -> bool {
        true
    }

    fn telemetry(&self) -> PlannerTelemetry {
        PlannerTelemetry {
            rejected_proposals: self.design.rejected(),
            omega_rewrites: self.meta.rewrites,
        }
    }

    fn token_usage(&self) -> TokenUsage {
        self.generator.usage()
    }

    fn drain_events(&mut self, out: &mut Vec<CampaignEvent>) {
        out.append(&mut self.transcript);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{run_campaign, CampaignConfig};
    use crate::domain::MaterialsSpace;
    use crate::matrix::Cell;
    use evoflow_agents::Pattern;
    use evoflow_sim::{RngRegistry, SimDuration};
    use evoflow_sm::IntelligenceLevel;

    fn build_inputs(seed: u64) -> (MaterialsSpace, RngRegistry) {
        (MaterialsSpace::generate(3, 8, seed), RngRegistry::new(seed))
    }

    #[test]
    fn ensemble_proposes_through_tournament_and_emits_transcript() {
        let (space, reg) = build_inputs(7);
        let b = PlannerBuild {
            space: &space,
            reg: &reg,
            seed: 7,
            dim: 3,
            batch_per_lane: 4,
            n_lanes: 1,
            shares_globally: false,
        };
        let mut p = EnsemblePlanner::new(DEFAULT_SPECIALISTS, &b);
        let mut rng = reg.stream("decision");
        let mut ctx = PlanCtx {
            dim: 3,
            lane: 0,
            rng: &mut rng,
            anchor: None,
            scored: 0,
        };
        let mut out = Vec::new();
        p.propose(&mut ctx, 4, &mut out);
        assert!(!out.is_empty() && out.len() <= 4);
        for (i, c) in out.iter().enumerate() {
            p.observe(&Observation {
                lane: 0,
                params: &c.params,
                score: 0.3 + 0.1 * i as f64,
                hit: false,
            });
        }
        p.end_iteration(out.len(), 0);
        let mut events = Vec::new();
        p.drain_events(&mut events);
        // 8 ACL messages + (pool - batch) tournament matches.
        let msgs = events
            .iter()
            .filter(|e| matches!(e, CampaignEvent::EnsembleMessage { .. }))
            .count();
        let matches = events
            .iter()
            .filter(|e| matches!(e, CampaignEvent::TournamentMatch { .. }))
            .count();
        assert_eq!(msgs, 8);
        assert_eq!(matches, 2 * DEFAULT_SPECIALISTS - 4);
        // Drain moved, not copied.
        let mut again = Vec::new();
        p.drain_events(&mut again);
        assert!(again.is_empty());
    }

    #[test]
    fn meta_review_fires_on_schedule_and_reweights_within_bounds() {
        let (space, reg) = build_inputs(11);
        let b = PlannerBuild {
            space: &space,
            reg: &reg,
            seed: 11,
            dim: 3,
            batch_per_lane: 2,
            n_lanes: 1,
            shares_globally: false,
        };
        let mut p = EnsemblePlanner::new(2, &b);
        let mut rng = reg.stream("decision");
        let mut reviews = 0;
        for _ in 0..(2 * META_REVIEW_PERIOD) {
            let mut ctx = PlanCtx {
                dim: 3,
                lane: 0,
                rng: &mut rng,
                anchor: None,
                scored: 0,
            };
            let mut out = Vec::new();
            p.propose(&mut ctx, 2, &mut out);
            for c in &out {
                p.observe(&Observation {
                    lane: 0,
                    params: &c.params,
                    score: 0.2,
                    hit: false,
                });
            }
            p.end_iteration(out.len(), 0);
            let mut events = Vec::new();
            p.drain_events(&mut events);
            for e in &events {
                if let CampaignEvent::MetaReview {
                    generator_weight,
                    evolver_weight,
                    ..
                } = e
                {
                    reviews += 1;
                    assert!((0.25..=0.75).contains(generator_weight));
                    assert!((generator_weight + evolver_weight - 1.0).abs() < 1e-12);
                }
            }
        }
        assert_eq!(reviews, 2);
    }

    #[test]
    fn hits_enter_the_discovery_archive_and_prune_the_frontier() {
        let (space, reg) = build_inputs(13);
        let b = PlannerBuild {
            space: &space,
            reg: &reg,
            seed: 13,
            dim: 2,
            batch_per_lane: 2,
            n_lanes: 1,
            shares_globally: false,
        };
        let mut p = EnsemblePlanner::new(2, &b);
        // A promising miss joins the frontier…
        p.pending.clear();
        p.observe(&Observation {
            lane: 0,
            params: &[0.5, 0.5],
            score: FRONTIER_FLOOR * p.threshold + 0.01,
            hit: false,
        });
        assert_eq!(p.frontier.len(), 1);
        // …and a hit in the same region confirms it and evicts the anchor.
        p.observe(&Observation {
            lane: 0,
            params: &[0.5, 0.5],
            score: p.threshold + 0.1,
            hit: true,
        });
        assert_eq!(p.discovered.len(), 1);
        assert!(p.frontier.is_empty());
        // A second hit in the same region is a re-derivation, not a new entry.
        p.observe(&Observation {
            lane: 0,
            params: &[0.51, 0.5],
            score: p.threshold + 0.1,
            hit: true,
        });
        assert_eq!(p.discovered.len(), 1);
    }

    #[test]
    fn ensemble_campaign_is_deterministic_across_runs() {
        let space = MaterialsSpace::generate(3, 8, 99);
        let mut cfg = CampaignConfig::for_cell(
            Cell::new(IntelligenceLevel::Learning, Pattern::Single),
            4242,
        )
        .with_planner(super::super::PlannerKind::ensemble());
        cfg.horizon = SimDuration::from_days(2);
        cfg.max_experiments = 2_000;
        let a = run_campaign(&space, &cfg);
        let b = run_campaign(&space, &cfg);
        assert_eq!(
            serde_json::to_vec(&a).unwrap(),
            serde_json::to_vec(&b).unwrap()
        );
    }
}
