//! The campaign engine: federated autonomous scientific discovery (Fig 4),
//! runnable at any cell of the evolution matrix.
//!
//! A campaign iterates the discovery loop — decide → synthesize →
//! characterize → analyze → record — under three coupled knobs:
//!
//! 1. **Intelligence level** (how candidates are chosen): static grid,
//!    adaptive sampling, learning from evidence, surrogate optimization, or
//!    the full agent stack with meta-optimization Ω. Each level is a
//!    [`Planner`](crate::planner::Planner) behind the
//!    [`planner`](crate::planner) layer, and any cell may override its
//!    default via [`CampaignConfig::planner`].
//! 2. **Composition pattern** (how many lanes run and how they share
//!    evidence): one lane, overlapped pipeline stages, manager-shared
//!    pools, mesh-shared pools, or k-local swarm sharing.
//! 3. **Coordination mode** (who closes the loop): a human with realistic
//!    decision latency and working hours, or agents at inference latency.
//!
//! The 10–100× acceleration claim (§1, §6.2) is measured by running the
//! *same* landscape under [Static × Pipeline] + human coordination versus
//! [Intelligent × Swarm] + autonomous coordination.

use crate::domain::MaterialsSpace;
use crate::ledger::{CampaignEvent, CampaignLedger, EventBatch, KnowledgeSink, LedgerObserver};
use crate::matrix::Cell;
use crate::planner::{Observation, PlanCtx, PlannerBuild, PlannerKind, PlannerTelemetry};
use crate::profile::{Phase, PhaseProfiler};
use evoflow_agents::{Candidate, Evidence, Pattern};
use evoflow_facility::HumanModel;
use evoflow_sim::{RngRegistry, SimDuration, SimTime};
use evoflow_sm::IntelligenceLevel;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, VecDeque};

/// Who closes the decision loop.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CoordinationMode {
    /// A human approves every iteration (latency model applies).
    HumanGated(HumanModel),
    /// Agents decide at inference latency, around the clock.
    Autonomous,
}

/// Campaign configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignConfig {
    /// Evolution-matrix cell to run at.
    pub cell: Cell,
    /// Master seed.
    pub seed: u64,
    /// Simulated campaign length.
    pub horizon: SimDuration,
    /// Candidates per iteration per lane.
    pub batch_per_lane: usize,
    /// Parallel execution lanes (None = derive from composition).
    pub lanes: Option<usize>,
    /// Coordination mode (None = derive: Intelligent ⇒ autonomous,
    /// otherwise human-gated).
    pub coordination: Option<CoordinationMode>,
    /// Hard cap on total experiments (sample budget).
    pub max_experiments: u64,
    /// Whether the librarian records knowledge-graph nodes + provenance
    /// for every experiment (Intelligent level only). Disable to measure
    /// the §4.2 traceability overhead (DESIGN.md §6.5 ablation).
    pub record_knowledge: bool,
    /// Decision policy override. `None` runs the cell's intelligence
    /// level at its Table 1 default ([`PlannerKind::for_level`]); any
    /// cell may instead name an explicit planner (bandit, swarm, meta,
    /// …). Absent from pre-planner configs, which decode as `None`.
    #[serde(default)]
    pub planner: Option<PlannerKind>,
}

impl CampaignConfig {
    /// Sensible defaults for a cell: lanes and coordination derived from
    /// the matrix position.
    pub fn for_cell(cell: Cell, seed: u64) -> Self {
        CampaignConfig {
            cell,
            seed,
            horizon: SimDuration::from_days(30),
            batch_per_lane: 4,
            lanes: None,
            coordination: None,
            max_experiments: 1_000_000,
            record_knowledge: true,
            planner: None,
        }
    }

    /// The same config with an explicit planner override.
    pub fn with_planner(mut self, planner: PlannerKind) -> Self {
        self.planner = Some(planner);
        self
    }

    /// The planner this campaign will run: the explicit override, or the
    /// cell's intelligence-level default.
    pub fn effective_planner(&self) -> PlannerKind {
        self.planner
            .clone()
            .unwrap_or_else(|| PlannerKind::for_level(self.cell.intelligence))
    }

    /// Lanes implied by the composition pattern.
    pub fn effective_lanes(&self) -> usize {
        self.lanes.unwrap_or(match self.cell.composition {
            Pattern::Single | Pattern::Pipeline => 1,
            Pattern::Hierarchical => 3,
            Pattern::Mesh => 4,
            Pattern::Swarm { .. } => 8,
        })
    }

    /// Coordination implied by the intelligence level.
    pub fn effective_coordination(&self) -> CoordinationMode {
        self.coordination.unwrap_or(match self.cell.intelligence {
            IntelligenceLevel::Intelligent => CoordinationMode::Autonomous,
            IntelligenceLevel::Optimizing | IntelligenceLevel::Learning => {
                CoordinationMode::HumanGated(HumanModel::attentive_operator())
            }
            _ => CoordinationMode::HumanGated(HumanModel::typical_pi()),
        })
    }
}

/// Outcome of one campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignReport {
    /// Cell the campaign ran at.
    pub cell_label: String,
    /// Experiments executed (samples consumed).
    pub experiments: u64,
    /// Distinct materials (latent peaks) discovered.
    pub distinct_discoveries: usize,
    /// Total above-threshold measurements (including repeats).
    pub total_hits: u64,
    /// Simulated campaign length actually used, days.
    pub sim_days: f64,
    /// Distinct discoveries per simulated week.
    pub discoveries_per_week: f64,
    /// Samples processed per simulated day (A-lab metric, §2.3).
    pub samples_per_day: f64,
    /// Hours until the first discovery, if any.
    pub time_to_first_hours: Option<f64>,
    /// Best measured score.
    pub best_score: f64,
    /// Total hours lanes spent waiting on decisions.
    pub decision_wait_hours: f64,
    /// Total hours lanes spent executing experiments.
    pub execution_hours: f64,
    /// Proposals rejected by the validation gate.
    pub rejected_proposals: u64,
    /// Ω strategy rewrites issued by the meta-optimizer.
    pub omega_rewrites: u32,
    /// Knowledge-graph nodes recorded (Intelligent level only).
    pub kg_nodes: usize,
    /// Provenance activities recorded (Intelligent level only).
    pub prov_activities: usize,
    /// Total simulated inference tokens consumed.
    pub tokens: u64,
}

/// Per-candidate execution time: synthesis + characterization, with
/// pipeline overlap when the composition is a pipeline (stages stream).
fn execution_time(pattern: Pattern, batch: usize, rng: &mut evoflow_sim::SimRng) -> SimDuration {
    let synth_h = 0.5;
    let char_h = 0.17;
    let jitter = |rng: &mut evoflow_sim::SimRng| 0.85 + 0.3 * rng.uniform();
    match pattern {
        // Pipeline: stages overlap; steady-state cost per candidate is the
        // bottleneck stage.
        Pattern::Pipeline => {
            let first = (synth_h + char_h) * jitter(rng);
            let rest = (batch.saturating_sub(1)) as f64 * synth_h.max(char_h) * jitter(rng);
            SimDuration::from_hours_f64(first + rest)
        }
        // Everything else executes the batch back-to-back on the lane's
        // instruments.
        _ => {
            let total = batch as f64 * (synth_h + char_h) * jitter(rng);
            SimDuration::from_hours_f64(total)
        }
    }
}

struct Lane {
    clock: SimTime,
    evidence: VecDeque<Evidence>,
}

/// Incrementally maintained anchors: the per-lane running best plus the
/// campaign-wide best, updated once per result as it arrives.
///
/// This replaces the per-iteration [`best_visible`] rescan of every
/// visible evidence window (O(lanes × window) per proposal) with an O(1)
/// update per result and an O(lanes)-at-worst fold per proposal. The
/// fold applies the same composition sharing rules and the same
/// keep-current-on-ties comparison as the reference scan, over per-lane
/// running bests instead of windows. Because the campaign-wide best is
/// always part of the fold's seed (the global best is "always visible"
/// by design — see [`EVIDENCE_WINDOW`]), every window entry is ≤ it, so
/// the result is value-identical to the scan; debug builds assert this
/// against [`best_visible`] on every anchored iteration.
struct AnchorTracker {
    lane_best: Vec<Option<Evidence>>,
    global: Option<Evidence>,
}

impl AnchorTracker {
    fn new(n_lanes: usize) -> Self {
        AnchorTracker {
            lane_best: vec![None; n_lanes],
            global: None,
        }
    }

    /// Fold one result in. Strict `>` keeps the earliest best on ties,
    /// matching the reference scan's tie-break.
    fn record(&mut self, lane: usize, ev: &Evidence) {
        if self.lane_best[lane]
            .as_ref()
            .map(|b| ev.score > b.score)
            .unwrap_or(true)
        {
            self.lane_best[lane] = Some(ev.clone());
        }
        if self
            .global
            .as_ref()
            .map(|b| ev.score > b.score)
            .unwrap_or(true)
        {
            self.global = Some(ev.clone());
        }
    }

    /// The campaign-wide best so far. Only the reference-scan
    /// equivalence checks need it outside this impl.
    #[cfg(any(test, debug_assertions))]
    fn global(&self) -> Option<&Evidence> {
        self.global.as_ref()
    }

    /// The best evidence visible to lane `li` under the composition's
    /// sharing pattern — the incremental counterpart of
    /// [`best_visible`], same fold over per-lane bests.
    fn visible(&self, li: usize, composition: Pattern, shares_globally: bool) -> Option<&Evidence> {
        fn better<'a>(best: Option<&'a Evidence>, e: &'a Evidence) -> Option<&'a Evidence> {
            match best {
                Some(cur) if cur.score >= e.score => Some(cur),
                _ => Some(e),
            }
        }
        let mut best = self.global.as_ref();
        if shares_globally {
            for e in self.lane_best.iter().flatten() {
                best = better(best, e);
            }
        } else if let Pattern::Swarm { k } = composition {
            // k-local ring sharing.
            let n = self.lane_best.len();
            let half = (k / 2).max(1);
            if let Some(e) = &self.lane_best[li] {
                best = better(best, e);
            }
            for d in 1..=half {
                if let Some(e) = &self.lane_best[(li + d) % n] {
                    best = better(best, e);
                }
                if let Some(e) = &self.lane_best[(li + n - d % n) % n] {
                    best = better(best, e);
                }
            }
        } else if let Some(e) = &self.lane_best[li] {
            best = better(best, e);
        }
        best
    }
}

/// The best evidence visible to lane `li` under the composition's sharing
/// pattern, borrowed straight out of the lanes — the decision phase only
/// ever needs the argmax, so nothing is copied on the hot path.
///
/// Retained as the reference implementation for [`AnchorTracker`]: debug
/// builds re-run this scan on every anchored iteration and assert the
/// incremental answer matches, and the equivalence tests sweep it across
/// compositions.
#[cfg(any(test, debug_assertions))]
fn best_visible<'a>(
    lanes: &'a [Lane],
    li: usize,
    composition: Pattern,
    shares_globally: bool,
    global_best: Option<&'a Evidence>,
) -> Option<&'a Evidence> {
    fn better<'a>(best: Option<&'a Evidence>, e: &'a Evidence) -> Option<&'a Evidence> {
        match best {
            Some(cur) if cur.score >= e.score => Some(cur),
            _ => Some(e),
        }
    }
    let mut best = global_best;
    if shares_globally {
        for lane in lanes {
            for e in &lane.evidence {
                best = better(best, e);
            }
        }
    } else if let Pattern::Swarm { k } = composition {
        // k-local ring sharing.
        let n = lanes.len();
        let half = (k / 2).max(1);
        for e in &lanes[li].evidence {
            best = better(best, e);
        }
        for d in 1..=half {
            for e in &lanes[(li + d) % n].evidence {
                best = better(best, e);
            }
            for e in &lanes[(li + n - d % n) % n].evidence {
                best = better(best, e);
            }
        }
    } else {
        for e in &lanes[li].evidence {
            best = better(best, e);
        }
    }
    best
}

/// Evidence retained per lane. Bounding the window keeps per-iteration
/// decision cost O(window) instead of O(total experiments) — long
/// campaigns would otherwise slow down quadratically. The global best is
/// tracked separately and always visible.
const EVIDENCE_WINDOW: usize = 96;

/// Flush the pending event batch: the campaign's own knowledge sink
/// first, then every caller-supplied observer, each via
/// [`LedgerObserver::on_batch`] — order within the batch is emission
/// order, so sinks cannot distinguish this from per-event delivery.
/// Timed as the *emit* phase; free when the batch is empty.
fn flush_events(
    batch: &mut EventBatch,
    prof: &mut PhaseProfiler,
    knowledge: &mut KnowledgeSink,
    observers: &mut [&mut dyn LedgerObserver],
) {
    if batch.pending() == 0 {
        return;
    }
    let t = prof.begin();
    let n = batch.flush_with(|events| {
        knowledge.on_batch(events);
        for o in observers.iter_mut() {
            o.on_batch(events);
        }
    });
    prof.end_n(Phase::Emit, t, n as u64);
}

/// Run a discovery campaign on `space` under `cfg`.
pub fn run_campaign(space: &MaterialsSpace, cfg: &CampaignConfig) -> CampaignReport {
    run_campaign_observed(space, cfg, &mut [])
}

/// Run a discovery campaign and return its full event ledger alongside
/// the report — the recording entry point of the event-sourced substrate
/// (see [`crate::ledger`]). The report is identical to
/// [`run_campaign`]'s: recording never consumes randomness or perturbs
/// the loop.
pub fn run_campaign_recorded(
    space: &MaterialsSpace,
    cfg: &CampaignConfig,
) -> (CampaignReport, CampaignLedger) {
    let mut ledger = CampaignLedger::new();
    let report = run_campaign_observed(space, cfg, &mut [&mut ledger]);
    (report, ledger)
}

/// Run a discovery campaign, streaming every [`CampaignEvent`] to the
/// given observers as it happens (live dashboards, metrics bridges,
/// durable ledgers — see [`crate::ledger`] for the shipped sinks).
///
/// Knowledge-graph + provenance ingestion is itself an observer now: the
/// campaign installs a [`KnowledgeSink`] and reads its counts into the
/// report, replacing the old in-line librarian branch. Events are only
/// materialised when someone is listening (the sink is enabled, or
/// `observers` is non-empty), so an unobserved run pays nothing.
pub fn run_campaign_observed(
    space: &MaterialsSpace,
    cfg: &CampaignConfig,
    observers: &mut [&mut dyn LedgerObserver],
) -> CampaignReport {
    run_campaign_profiled(space, cfg, observers, &mut PhaseProfiler::disabled())
}

/// [`run_campaign_observed`] with hot-path phase profiling (see
/// [`crate::profile`]). The profiler is an out-parameter so callers can
/// aggregate across campaigns; passing
/// [`PhaseProfiler::disabled`] reduces every probe to one branch — which
/// is exactly what `run_campaign_observed` does. Profiling never touches
/// RNG or the event stream: the report and ledger are byte-identical
/// with profiling on or off.
pub fn run_campaign_profiled(
    space: &MaterialsSpace,
    cfg: &CampaignConfig,
    observers: &mut [&mut dyn LedgerObserver],
    prof: &mut PhaseProfiler,
) -> CampaignReport {
    let dim = space.dim();
    let reg = RngRegistry::new(cfg.seed);
    let mut meas_rng = reg.stream("measurement");
    let mut exec_rng = reg.stream("execution");
    let mut decide_rng = reg.stream("decision");

    let n_lanes = cfg.effective_lanes();
    let coordination = cfg.effective_coordination();
    let horizon = SimTime::ZERO + cfg.horizon;

    let shares_globally = matches!(
        cfg.cell.composition,
        Pattern::Pipeline | Pattern::Hierarchical | Pattern::Mesh
    );

    // The decide step is a pluggable Planner (constructed once, shared
    // across lanes — the Intelligence Service layer is a shared service,
    // Fig 2). Recording is part of the loop's *record* phase, not the
    // decision policy: the knowledge sink (and any caller observers)
    // consume the event stream the loop emits.
    let planner_kind = cfg.effective_planner();
    let mut planner = planner_kind.build(&PlannerBuild {
        space,
        reg: &reg,
        seed: cfg.seed,
        dim,
        batch_per_lane: cfg.batch_per_lane,
        n_lanes,
        shares_globally,
    });
    // Planner overrides are visible in the label — including their
    // parameters — so fleet aggregation never folds differently-planned
    // campaigns into one cell summary.
    let cell_label = match &cfg.planner {
        Some(kind) => format!("{} · {}", cfg.cell, kind.descriptor()),
        None => cfg.cell.to_string(),
    };
    let records_knowledge = cfg.record_knowledge && planner.records_knowledge();
    let mut knowledge = KnowledgeSink::new();
    // Two emission tiers keep the unobserved hot path lean: `recording`
    // gates the proposal/result events the knowledge sink consumes;
    // `full_stream` additionally gates the iteration/telemetry events
    // only external observers care about, so a knowledge-recording run
    // with no observers never materialises them.
    let recording = records_knowledge || !observers.is_empty();
    let full_stream = !observers.is_empty();
    // All events accumulate here and fan out in one `on_batch` call per
    // observer at iteration boundaries. The buffer keeps its capacity
    // across flushes, so after the first iteration the emission path
    // performs no batch-bookkeeping allocation. The cell label and
    // planner descriptor are interned into the stream exactly once, in
    // `CampaignStarted` — no per-event string cloning.
    let mut batch = EventBatch::new();
    if recording {
        batch.push(CampaignEvent::CampaignStarted {
            cell_label: cell_label.clone().into(),
            seed: cfg.seed,
            planner: planner_kind.descriptor().into(),
            lanes: n_lanes,
            horizon: cfg.horizon,
            threshold: space.threshold,
            max_experiments: cfg.max_experiments,
            records_knowledge,
        });
    }
    let mut last_telemetry = PlannerTelemetry::default();
    // Reused buffer for cooperative-planner transcripts (ensemble).
    let mut ensemble_events: Vec<CampaignEvent> = Vec::new();

    let mut lanes: Vec<Lane> = (0..n_lanes)
        .map(|_| Lane {
            clock: SimTime::ZERO,
            evidence: VecDeque::with_capacity(EVIDENCE_WINDOW + 1),
        })
        .collect();

    let mut experiments = 0u64;
    let mut total_hits = 0u64;
    let mut peaks_found: BTreeSet<usize> = BTreeSet::new();
    let mut best_score = f64::NEG_INFINITY;
    let mut time_to_first: Option<SimTime> = None;
    let mut decision_wait_hours = 0.0;
    let mut execution_hours = 0.0;
    let mut anchors = AnchorTracker::new(n_lanes);

    'campaign: loop {
        // Pick the lane with the earliest clock (they run concurrently).
        let li = (0..n_lanes)
            .min_by_key(|&i| lanes[i].clock)
            .expect("at least one lane");
        if lanes[li].clock >= horizon {
            break 'campaign;
        }
        if experiments >= cfg.max_experiments {
            break 'campaign;
        }
        let now = lanes[li].clock;

        // ---- Decision phase ---------------------------------------------
        let decision_done = match coordination {
            CoordinationMode::HumanGated(h) => {
                let cross = n_lanes > 1 || cfg.cell.composition.rank() >= 2;
                h.decision_ready_at(now, cross, &mut decide_rng)
            }
            CoordinationMode::Autonomous => {
                // Inference latency: one reasoning call per batch.
                now + SimDuration::from_secs_f64(2.0 + 3.0 * decide_rng.uniform())
            }
        };
        decision_wait_hours += decision_done.saturating_since(now).as_hours();
        if full_stream {
            batch.push(CampaignEvent::IterationStarted {
                lane: li,
                at: now,
                decision_ready: decision_done,
            });
        }

        // Every intelligence level routes through the Planner layer: the
        // anchor (best visible evidence) is computed only for planners
        // that consult it, borrowed straight out of the lanes.
        let proposal_budget = planner.batch_size().unwrap_or(cfg.batch_per_lane).max(1);
        let mut chosen: Vec<Candidate> = Vec::with_capacity(proposal_budget);
        {
            let t = prof.begin();
            let anchor = if planner.wants_anchor() {
                let ta = prof.begin();
                let a = anchors.visible(li, cfg.cell.composition, shares_globally);
                prof.end(Phase::ProposeAnchor, ta);
                #[cfg(debug_assertions)]
                {
                    // The incremental tracker must answer exactly what
                    // the reference window scan would.
                    let scan = best_visible(
                        &lanes,
                        li,
                        cfg.cell.composition,
                        shares_globally,
                        anchors.global(),
                    );
                    debug_assert_eq!(
                        a.map(|e| (e.score, e.params.as_slice())),
                        scan.map(|e| (e.score, e.params.as_slice())),
                        "anchor tracker drifted from reference scan"
                    );
                }
                a
            } else {
                None
            };
            let mut pctx = PlanCtx {
                dim,
                lane: li,
                rng: &mut decide_rng,
                anchor,
                scored: 0,
            };
            let tm = prof.begin();
            planner.propose(&mut pctx, proposal_budget, &mut chosen);
            prof.end(Phase::ProposeModel, tm);
            // Counts-only sub-phase: scoring runs inside the model scope.
            prof.bump(Phase::ProposeScore, pctx.scored);
            prof.end(Phase::Propose, t);
        }
        if recording {
            for c in &chosen {
                batch.push(CampaignEvent::CandidateProposed {
                    lane: li,
                    params: c.params.clone(),
                    rationale: c.rationale.clone(),
                    confidence: c.confidence,
                    hallucinated: c.hallucinated,
                });
            }
        }

        // ---- Execution phase --------------------------------------------
        let exec = execution_time(cfg.cell.composition, chosen.len().max(1), &mut exec_rng);
        execution_hours += exec.as_hours();
        let done_at = decision_done + exec;
        if full_stream {
            batch.push(CampaignEvent::ExecutionScheduled {
                lane: li,
                batch: chosen.len(),
                duration: exec,
                done_at,
            });
        }

        let mut iter_hits = 0u64;
        for c in &chosen {
            if experiments >= cfg.max_experiments {
                break;
            }
            experiments += 1;
            let t = prof.begin();
            let score = space.measure(&c.params, &mut meas_rng);
            prof.end(Phase::Execute, t);
            best_score = best_score.max(score);
            let hit = space.is_discovery(score);

            // Feed the outcome back into the decision policy (surrogate
            // assimilation, bandit rewards, swarm bests, …).
            let t = prof.begin();
            planner.observe(&Observation {
                lane: li,
                params: &c.params,
                score,
                hit,
            });
            prof.end(Phase::Observe, t);
            let peak = if hit { space.peak_of(&c.params) } else { None };
            if recording {
                // The knowledge sink pairs this with its buffered
                // proposal — the *record* phase of the loop, now driven
                // by the same stream every other sink sees.
                let usage = planner.token_usage();
                batch.push(CampaignEvent::ResultObserved {
                    lane: li,
                    experiment: experiments,
                    score,
                    hit,
                    peak,
                    tokens_in: usage.input_tokens,
                    tokens_out: usage.output_tokens,
                });
            }

            let ev = Evidence {
                params: c.params.clone(),
                score,
            };
            anchors.record(li, &ev);
            lanes[li].evidence.push_back(ev);
            if lanes[li].evidence.len() > EVIDENCE_WINDOW {
                lanes[li].evidence.pop_front();
            }
            if hit {
                total_hits += 1;
                iter_hits += 1;
                if let Some(p) = peak {
                    peaks_found.insert(p);
                    if time_to_first.is_none() {
                        time_to_first = Some(done_at);
                    }
                }
            }
        }

        // ---- Meta-optimization (Ω) --------------------------------------
        planner.end_iteration(chosen.len(), iter_hits);
        // Drain the planner's cooperative transcript unconditionally —
        // the planner builds it either way (emission must never feed
        // back into decisions) — and ledger it only when observed.
        ensemble_events.clear();
        planner.drain_events(&mut ensemble_events);
        if full_stream {
            for event in ensemble_events.drain(..) {
                batch.push(event);
            }
            // Surface planner-internal decisions (gate rejections, Ω
            // rewrites) as events the moment their counters move.
            let t = planner.telemetry();
            if t.rejected_proposals != last_telemetry.rejected_proposals {
                batch.push(CampaignEvent::GateDecision {
                    lane: li,
                    rejected_total: t.rejected_proposals,
                });
            }
            if t.omega_rewrites != last_telemetry.omega_rewrites {
                batch.push(CampaignEvent::OmegaRewrite {
                    lane: li,
                    rewrites_total: t.omega_rewrites,
                });
            }
            last_telemetry = t;
        }
        if recording {
            // The knowledge sink needs the iteration boundary too: it
            // drops buffered proposals the budget cap kept from running.
            batch.push(CampaignEvent::IterationEnded {
                lane: li,
                proposed: chosen.len(),
                hits: iter_hits,
                tokens_total: planner.token_usage().total(),
            });
        }
        // Iteration boundary: one `on_batch` per sink for everything the
        // iteration produced.
        flush_events(&mut batch, prof, &mut knowledge, observers);

        lanes[li].clock = done_at;
    }

    let sim_days = cfg.horizon.as_hours() / 24.0;
    let weeks = sim_days / 7.0;
    let telemetry = planner.telemetry();
    let best_score = if best_score.is_finite() {
        best_score
    } else {
        0.0
    };
    let time_to_first_hours = time_to_first.map(|t| t.as_hours());
    // The knowledge sink must have consumed every prior event before its
    // counts are baked into `CampaignFinished` — drain any stragglers
    // (free when, as usual, the loop exited on a clean iteration
    // boundary).
    flush_events(&mut batch, prof, &mut knowledge, observers);
    if full_stream {
        // Every stream-derived report total, recorded for the replay
        // audit's integrity cross-check.
        let (kg_nodes, prov_activities) = (knowledge.node_count(), knowledge.activity_count());
        batch.push(CampaignEvent::CampaignFinished {
            experiments,
            total_hits,
            distinct_discoveries: peaks_found.len(),
            best_score,
            time_to_first_hours,
            decision_wait_hours,
            execution_hours,
            rejected_proposals: telemetry.rejected_proposals,
            omega_rewrites: telemetry.omega_rewrites,
            kg_nodes,
            prov_activities,
            tokens: planner.token_usage().total(),
        });
        flush_events(&mut batch, prof, &mut knowledge, observers);
    }
    prof.add_batches(batch.flushes(), batch.emitted());
    CampaignReport {
        cell_label,
        experiments,
        distinct_discoveries: peaks_found.len(),
        total_hits,
        sim_days,
        discoveries_per_week: peaks_found.len() as f64 / weeks.max(1e-9),
        samples_per_day: experiments as f64 / sim_days.max(1e-9),
        time_to_first_hours,
        best_score,
        decision_wait_hours,
        execution_hours,
        rejected_proposals: telemetry.rejected_proposals,
        omega_rewrites: telemetry.omega_rewrites,
        kg_nodes: knowledge.node_count(),
        prov_activities: knowledge.activity_count(),
        tokens: planner.token_usage().total(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> MaterialsSpace {
        MaterialsSpace::generate(3, 8, 20260610)
    }

    fn run_cell(
        level: IntelligenceLevel,
        pattern: Pattern,
        coord: Option<CoordinationMode>,
        days: u64,
    ) -> CampaignReport {
        let mut cfg = CampaignConfig::for_cell(Cell::new(level, pattern), 7);
        cfg.horizon = SimDuration::from_days(days);
        cfg.coordination = coord;
        run_campaign(&space(), &cfg)
    }

    #[test]
    fn autonomous_swarm_processes_far_more_samples() {
        let manual = run_cell(
            IntelligenceLevel::Static,
            Pattern::Pipeline,
            Some(CoordinationMode::HumanGated(HumanModel::typical_pi())),
            14,
        );
        let auto = run_cell(
            IntelligenceLevel::Intelligent,
            Pattern::Swarm { k: 4 },
            Some(CoordinationMode::Autonomous),
            14,
        );
        let ratio = auto.samples_per_day / manual.samples_per_day.max(1e-9);
        assert!(
            ratio > 10.0,
            "samples/day ratio {ratio:.1} (auto {:.1} vs manual {:.1})",
            auto.samples_per_day,
            manual.samples_per_day
        );
    }

    #[test]
    fn autonomous_swarm_discovers_more_materials() {
        let manual = run_cell(
            IntelligenceLevel::Adaptive,
            Pattern::Pipeline,
            Some(CoordinationMode::HumanGated(HumanModel::typical_pi())),
            21,
        );
        let auto = run_cell(
            IntelligenceLevel::Intelligent,
            Pattern::Swarm { k: 4 },
            Some(CoordinationMode::Autonomous),
            21,
        );
        assert!(
            auto.distinct_discoveries > manual.distinct_discoveries,
            "auto {} vs manual {}",
            auto.distinct_discoveries,
            manual.distinct_discoveries
        );
        assert!(
            auto.time_to_first_hours.unwrap_or(f64::INFINITY)
                < manual.time_to_first_hours.unwrap_or(f64::INFINITY)
        );
    }

    #[test]
    fn decision_wait_dominates_human_campaigns() {
        let manual = run_cell(
            IntelligenceLevel::Static,
            Pattern::Pipeline,
            Some(CoordinationMode::HumanGated(HumanModel::typical_pi())),
            14,
        );
        assert!(
            manual.decision_wait_hours > manual.execution_hours,
            "wait {:.1}h vs exec {:.1}h",
            manual.decision_wait_hours,
            manual.execution_hours
        );
        let auto = run_cell(
            IntelligenceLevel::Intelligent,
            Pattern::Swarm { k: 4 },
            Some(CoordinationMode::Autonomous),
            14,
        );
        assert!(auto.decision_wait_hours < auto.execution_hours);
    }

    #[test]
    fn campaigns_are_deterministic() {
        let a = run_cell(IntelligenceLevel::Learning, Pattern::Mesh, None, 7);
        let b = run_cell(IntelligenceLevel::Learning, Pattern::Mesh, None, 7);
        assert_eq!(a.experiments, b.experiments);
        assert_eq!(a.distinct_discoveries, b.distinct_discoveries);
        assert_eq!(a.best_score, b.best_score);
    }

    #[test]
    fn intelligent_campaign_builds_knowledge_and_provenance() {
        let auto = run_cell(
            IntelligenceLevel::Intelligent,
            Pattern::Swarm { k: 4 },
            Some(CoordinationMode::Autonomous),
            3,
        );
        assert!(auto.kg_nodes > 0);
        assert!(auto.prov_activities > 0);
        assert!(auto.tokens > 0);
        // Static campaigns record nothing in the KG.
        let stat = run_cell(IntelligenceLevel::Static, Pattern::Pipeline, None, 3);
        assert_eq!(stat.kg_nodes, 0);
    }

    #[test]
    fn sample_budget_caps_experiments() {
        let mut cfg = CampaignConfig::for_cell(
            Cell::new(IntelligenceLevel::Intelligent, Pattern::Swarm { k: 4 }),
            3,
        );
        cfg.horizon = SimDuration::from_days(30);
        cfg.coordination = Some(CoordinationMode::Autonomous);
        cfg.max_experiments = 100;
        let r = run_campaign(&space(), &cfg);
        assert!(r.experiments <= 100);
    }

    #[test]
    fn anchor_tracker_matches_reference_scan_across_compositions() {
        use evoflow_sim::SimRng;
        let patterns = [
            (Pattern::Single, false, 1usize),
            (Pattern::Pipeline, true, 1),
            (Pattern::Hierarchical, true, 3),
            (Pattern::Mesh, true, 4),
            (Pattern::Swarm { k: 4 }, false, 8),
            (Pattern::Swarm { k: 2 }, false, 3),
        ];
        for (pi, &(composition, shares_globally, n_lanes)) in patterns.iter().enumerate() {
            let mut rng = SimRng::from_seed_u64(0xA11C0 + pi as u64);
            let mut lanes: Vec<Lane> = (0..n_lanes)
                .map(|_| Lane {
                    clock: SimTime::ZERO,
                    evidence: VecDeque::new(),
                })
                .collect();
            let mut tracker = AnchorTracker::new(n_lanes);
            for step in 0..600 {
                let li = rng.below(n_lanes);
                // Coarse scores force plenty of exact ties, exercising
                // the keep-current tie-break both scan and tracker use.
                let score = (rng.uniform() * 8.0).floor() / 8.0;
                let ev = Evidence {
                    params: vec![rng.uniform(), score],
                    score,
                };
                tracker.record(li, &ev);
                lanes[li].evidence.push_back(ev);
                if lanes[li].evidence.len() > EVIDENCE_WINDOW {
                    lanes[li].evidence.pop_front();
                }
                for q in 0..n_lanes {
                    let fast = tracker.visible(q, composition, shares_globally);
                    let scan =
                        best_visible(&lanes, q, composition, shares_globally, tracker.global());
                    assert_eq!(
                        fast.map(|e| (e.score, e.params.clone())),
                        scan.map(|e| (e.score, e.params.clone())),
                        "{composition:?} lane {q} step {step}"
                    );
                }
            }
        }
    }

    #[test]
    fn lanes_derived_from_composition() {
        let c = CampaignConfig::for_cell(Cell::new(IntelligenceLevel::Static, Pattern::Single), 0);
        assert_eq!(c.effective_lanes(), 1);
        let c = CampaignConfig::for_cell(
            Cell::new(IntelligenceLevel::Static, Pattern::Swarm { k: 4 }),
            0,
        );
        assert_eq!(c.effective_lanes(), 8);
    }
}
