//! The fleet executor: many campaigns, one machine, every core busy.
//!
//! The paper's end-state is facility-scale autonomous science — swarms of
//! concurrent discovery campaigns sharing infrastructure (§5.3, §6). This
//! module runs M independent [`run_campaign`] instances across N OS
//! threads with three guarantees:
//!
//! 1. **Bit-reproducibility at any parallelism.** Every campaign's seed is
//!    derived from the fleet master seed via
//!    [`evoflow_sim::RngRegistry::shard_seed`], a pure function of
//!    `(master_seed, index)`. Which thread runs a campaign — or how many
//!    threads exist — cannot change any result, so
//!    [`run_campaign_fleet`] returns an identical [`FleetReport`] at
//!    `threads = 1` and `threads = 64`.
//! 2. **Load balancing over heterogeneous cells.** A `[Static × Single]`
//!    campaign finishes orders of magnitude sooner than
//!    `[Intelligent × Swarm]`. Workers pull from a lock-free claim queue
//!    (each task is an atomic flag): a worker drains its own stripe, then
//!    steals any unclaimed task, so no thread idles while work remains.
//! 3. **Deterministic aggregation.** Workers buffer results locally;
//!    the coordinator folds them in task order using
//!    [`evoflow_sim::SampleStats::merge`], so the per-cell distributions
//!    are independent of completion order.
//!
//! Wall-clock timing deliberately lives *outside* [`FleetReport`] (see
//! [`run_campaign_fleet_timed`]): a report that embedded its own elapsed
//! time could never be byte-identical across thread counts.
//!
//! ```
//! use evoflow_core::{run_campaign_fleet, Cell, FleetConfig, MaterialsSpace};
//! use evoflow_sim::SimDuration;
//!
//! let space = MaterialsSpace::generate(3, 8, 42);
//! let mut cfg = FleetConfig::new(7);
//! cfg.horizon = SimDuration::from_days(1);
//! cfg.push_cell(Cell::autonomous_science(), 2);
//! cfg.push_cell(Cell::traditional_wms(), 2);
//!
//! cfg.threads = 1;
//! let serial = run_campaign_fleet(&space, &cfg);
//! cfg.threads = 4;
//! let parallel = run_campaign_fleet(&space, &cfg);
//!
//! // Same master seed ⇒ identical results, regardless of thread count.
//! assert_eq!(serial.total_experiments, parallel.total_experiments);
//! assert_eq!(serial.reports.len(), 4);
//! assert_eq!(serial.per_cell.len(), 2);
//! ```

use crate::campaign::{
    run_campaign, run_campaign_profiled, run_campaign_recorded, CampaignConfig, CampaignReport,
};
use crate::domain::MaterialsSpace;
use crate::ledger::{CampaignEvent, CampaignLedger, FleetLedger};
use crate::matrix::Cell;
use crate::profile::{PhaseBreakdown, PhaseProfiler};
use evoflow_sim::{ChaosSchedule, ChaosSpec, RngRegistry, SampleStats, SimDuration};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Stream label under which fleet campaign seeds are derived from the
/// master seed (`RngRegistry::shard_seed(FLEET_SHARD_LABEL, index)`).
pub const FLEET_SHARD_LABEL: &str = "fleet-campaign";

/// Configuration for a campaign fleet.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetConfig {
    /// Master seed; every campaign's seed is derived from it by index.
    pub master_seed: u64,
    /// Worker threads. **0 means "one per host core"**
    /// (`available_parallelism()`) — the one host-dependent knob in the
    /// config: results never change with it, but anything that
    /// *records* the thread count must pin an explicit value to stay
    /// byte-identical across machines.
    pub threads: usize,
    /// Per-campaign configs, in shard order. Their `seed` fields are
    /// overwritten with derived shard seeds at run time.
    pub campaigns: Vec<CampaignConfig>,
    /// Horizon applied by [`FleetConfig::push_cell`] to new campaigns.
    pub horizon: SimDuration,
    /// Experiment cap applied by [`FleetConfig::push_cell`].
    pub max_experiments: u64,
}

impl FleetConfig {
    /// An empty fleet with the given master seed (30-day horizon,
    /// effectively unbounded experiment budget).
    pub fn new(master_seed: u64) -> Self {
        FleetConfig {
            master_seed,
            threads: 0,
            campaigns: Vec::new(),
            horizon: SimDuration::from_days(30),
            max_experiments: 1_000_000,
        }
    }

    /// Append `replications` campaigns at `cell`, inheriting the fleet's
    /// horizon and budget. Returns `&mut self` for chaining.
    pub fn push_cell(&mut self, cell: Cell, replications: usize) -> &mut Self {
        for _ in 0..replications {
            // Placeholder seed: overwritten with the derived shard seed.
            let mut c = CampaignConfig::for_cell(cell, 0);
            c.horizon = self.horizon;
            c.max_experiments = self.max_experiments;
            self.campaigns.push(c);
        }
        self
    }

    /// Append one fully customised campaign config.
    pub fn push_campaign(&mut self, cfg: CampaignConfig) -> &mut Self {
        self.campaigns.push(cfg);
        self
    }

    /// Worker threads that will actually be used.
    ///
    /// When [`threads`](FleetConfig::threads) is 0 this consults
    /// `available_parallelism()` and therefore **varies across hosts**;
    /// pin an explicit thread count wherever the value ends up in a
    /// host-independent artifact.
    pub fn effective_threads(&self) -> usize {
        let n = if self.threads == 0 {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        } else {
            self.threads
        };
        n.max(1).min(self.campaigns.len().max(1))
    }

    /// The campaign configs with their derived shard seeds filled in —
    /// the exact inputs the fleet will execute, in shard order.
    pub fn sharded_campaigns(&self) -> Vec<CampaignConfig> {
        let reg = RngRegistry::new(self.master_seed);
        self.campaigns
            .iter()
            .enumerate()
            .map(|(i, c)| {
                let mut c = c.clone();
                c.seed = reg.shard_seed(FLEET_SHARD_LABEL, i as u64);
                c
            })
            .collect()
    }
}

/// Five-number-free summary of a per-campaign metric across one cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DistSummary {
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (n−1).
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
}

impl From<&SampleStats> for DistSummary {
    fn from(s: &SampleStats) -> Self {
        DistSummary {
            mean: s.mean(),
            std_dev: s.std_dev(),
            min: s.min(),
            max: s.max(),
        }
    }
}

/// Aggregated outcomes for every campaign that ran at one matrix cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellSummary {
    /// Cell label (e.g. `"Intelligent × Swarm(k=4)"`).
    pub cell_label: String,
    /// Campaigns that ran at this cell.
    pub campaigns: usize,
    /// Total experiments across those campaigns.
    pub experiments: u64,
    /// Total distinct discoveries (summed; campaigns are independent).
    pub distinct_discoveries: u64,
    /// Distribution of per-campaign discoveries per simulated week.
    pub discoveries_per_week: DistSummary,
    /// Distribution of per-campaign samples per simulated day.
    pub samples_per_day: DistSummary,
    /// Best score any campaign at this cell measured.
    pub best_score: f64,
}

/// Outcome of a fleet run. Pure function of `(space, FleetConfig minus
/// threads)`: thread count never changes any field.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetReport {
    /// Master seed the shard seeds were derived from.
    pub master_seed: u64,
    /// Per-campaign reports, in shard (task) order.
    pub reports: Vec<CampaignReport>,
    /// Per-cell aggregates, in first-appearance order of the cell label.
    pub per_cell: Vec<CellSummary>,
    /// Total experiments across the fleet.
    pub total_experiments: u64,
    /// Total above-threshold measurements across the fleet.
    pub total_hits: u64,
    /// Summed distinct discoveries across the fleet.
    pub total_distinct_discoveries: u64,
    /// Best score measured anywhere in the fleet.
    pub best_score: f64,
    /// Total simulated inference tokens consumed.
    pub tokens: u64,
}

impl FleetReport {
    /// Fold per-campaign reports (in shard order) into a fleet report.
    ///
    /// Public so property tests can verify that the parallel executor's
    /// aggregation equals the merge of independent serial runs.
    pub fn from_reports(master_seed: u64, reports: Vec<CampaignReport>) -> Self {
        // Group by cell label, preserving first-appearance order.
        struct CellAcc {
            label: String,
            campaigns: usize,
            experiments: u64,
            distinct: u64,
            dpw: SampleStats,
            spd: SampleStats,
            best: f64,
        }
        let mut cells: Vec<CellAcc> = Vec::new();
        let mut total_experiments = 0u64;
        let mut total_hits = 0u64;
        let mut total_distinct = 0u64;
        let mut best_score = f64::NEG_INFINITY;
        let mut tokens = 0u64;
        for r in &reports {
            total_experiments += r.experiments;
            total_hits += r.total_hits;
            total_distinct += r.distinct_discoveries as u64;
            best_score = best_score.max(r.best_score);
            tokens += r.tokens;
            let acc = match cells.iter_mut().find(|c| c.label == r.cell_label) {
                Some(acc) => acc,
                None => {
                    cells.push(CellAcc {
                        label: r.cell_label.clone(),
                        campaigns: 0,
                        experiments: 0,
                        distinct: 0,
                        dpw: SampleStats::new(),
                        spd: SampleStats::new(),
                        best: f64::NEG_INFINITY,
                    });
                    cells.last_mut().expect("just pushed")
                }
            };
            acc.campaigns += 1;
            acc.experiments += r.experiments;
            acc.distinct += r.distinct_discoveries as u64;
            acc.dpw.record(r.discoveries_per_week);
            acc.spd.record(r.samples_per_day);
            acc.best = acc.best.max(r.best_score);
        }
        let per_cell = cells
            .into_iter()
            .map(|c| CellSummary {
                cell_label: c.label,
                campaigns: c.campaigns,
                experiments: c.experiments,
                distinct_discoveries: c.distinct,
                discoveries_per_week: DistSummary::from(&c.dpw),
                samples_per_day: DistSummary::from(&c.spd),
                best_score: c.best,
            })
            .collect();
        FleetReport {
            master_seed,
            per_cell,
            total_experiments,
            total_hits,
            total_distinct_discoveries: total_distinct,
            best_score: if best_score.is_finite() {
                best_score
            } else {
                0.0
            },
            tokens,
            reports,
        }
    }
}

/// Wall-clock measurements of a fleet run — kept out of [`FleetReport`]
/// so reports stay byte-identical across thread counts.
#[derive(Debug, Clone, Copy)]
pub struct FleetTiming {
    /// Worker threads actually used.
    pub threads: usize,
    /// Elapsed wall-clock time for the whole fleet.
    pub wall_clock: Duration,
}

/// A lock-free claim queue over task indices, claiming tasks in
/// *chunks*.
///
/// One shared cursor replaces the old per-task claim flags: a single
/// `fetch_add` claims the next `chunk` task indices at once, so the
/// atomic-RMW (and its cache-line ping between workers) is amortized
/// over K tasks instead of paid per task — and a worker that exhausts
/// its chunk transparently "steals" the next one, so no worker idles
/// while tasks remain. The chunk size bounds tail imbalance at
/// `threads × (chunk − 1)` tasks, so it scales down as
/// `tasks / (threads × 4)` and never below 1 (the old one-task-per-claim
/// behaviour is the `chunk == 1` special case).
struct TaskQueue {
    next: AtomicUsize,
    len: usize,
    chunk: usize,
}

impl TaskQueue {
    fn new(tasks: usize, threads: usize) -> Self {
        TaskQueue {
            next: AtomicUsize::new(0),
            len: tasks,
            chunk: (tasks / (threads.max(1) * 4)).max(1),
        }
    }

    /// Claim the next chunk of unclaimed task indices (empty ⇒ `None`).
    /// Exactly `ceil(len / chunk)` claims succeed across all workers,
    /// regardless of interleaving; each index is handed out exactly once.
    fn claim(&self) -> Option<std::ops::Range<usize>> {
        let start = self.next.fetch_add(self.chunk, Ordering::AcqRel);
        if start >= self.len {
            return None;
        }
        Some(start..(start + self.chunk).min(self.len))
    }
}

/// Claim-side counters from one fleet execution — the *steal* phase of
/// [`crate::profile`]. `claims` counts successful chunk claims (a pure
/// function of task count and thread count); `nanos` is wall time inside
/// `claim` and is only measured when profiling is on.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct StealStats {
    pub(crate) claims: u64,
    pub(crate) nanos: u64,
}

/// Execute the fleet tasks `tasks` (pairs of shard index + config) across
/// `threads` workers with the task runner `run`, committing at most
/// `commit_cap` results.
///
/// The cap models a coordinator crash: workers stop claiming once the
/// fleet-wide commit counter reaches the cap, and a campaign that
/// finishes after the counter is exhausted is *discarded* — exactly the
/// in-flight work a real crash loses. `None` commits everything.
///
/// Every returned pair carries the original shard index, so callers can
/// splice results positionally regardless of which worker ran what. The
/// runner is generic so the same claim/steal/commit machinery serves both
/// plain execution ([`run_campaign`]) and ledger-recording execution
/// ([`run_campaign_recorded`]) — and the multi-tenant service layer
/// ([`crate::service`]) multiplexes its admitted campaigns through it too.
pub(crate) fn execute_fleet_tasks_with<R, F>(
    tasks: &[(usize, CampaignConfig)],
    threads: usize,
    commit_cap: Option<usize>,
    run: F,
) -> Vec<(usize, R)>
where
    R: Send,
    F: Fn(&CampaignConfig) -> R + Sync,
{
    execute_fleet_tasks_steal_timed(tasks, threads, commit_cap, run, false).0
}

/// [`execute_fleet_tasks_with`] plus claim-side counters. With
/// `time_steals` false the claim path reads no clock (one local counter
/// increment per chunk); with it true, each `claim` call is wall-timed —
/// the *steal* phase of a profiled fleet run.
pub(crate) fn execute_fleet_tasks_steal_timed<R, F>(
    tasks: &[(usize, CampaignConfig)],
    threads: usize,
    commit_cap: Option<usize>,
    run: F,
    time_steals: bool,
) -> (Vec<(usize, R)>, StealStats)
where
    R: Send,
    F: Fn(&CampaignConfig) -> R + Sync,
{
    let cap = commit_cap.unwrap_or(usize::MAX);
    if tasks.is_empty() || cap == 0 {
        return (Vec::new(), StealStats::default());
    }
    if threads <= 1 {
        // Serial fast path: no thread machinery, no claims.
        let results = tasks.iter().take(cap).map(|(i, c)| (*i, run(c))).collect();
        return (results, StealStats::default());
    }
    let queue = TaskQueue::new(tasks.len(), threads);
    let commits = AtomicUsize::new(0);
    let queue_ref = &queue;
    let commits_ref = &commits;
    let run_ref = &run;
    let collected: Vec<(Vec<(usize, R)>, StealStats)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(move || {
                    let mut local = Vec::new();
                    let mut steals = StealStats::default();
                    'claiming: while commits_ref.load(Ordering::Acquire) < cap {
                        let started = time_steals.then(Instant::now);
                        let claimed = queue_ref.claim();
                        if let Some(t) = started {
                            steals.nanos += t.elapsed().as_nanos() as u64;
                        }
                        let Some(range) = claimed else {
                            break;
                        };
                        steals.claims += 1;
                        for i in range {
                            // Commit-or-discard: the crash point is a
                            // total order on completions, so work
                            // finishing after it is lost, like a real
                            // kill -9 — and the rest of a chunk claimed
                            // past the cap is in-flight work the crash
                            // never ran.
                            if commits_ref.load(Ordering::Acquire) >= cap {
                                break 'claiming;
                            }
                            let result = run_ref(&tasks[i].1);
                            if commits_ref.fetch_add(1, Ordering::AcqRel) < cap {
                                local.push((tasks[i].0, result));
                            }
                        }
                    }
                    (local, steals)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("fleet worker panicked"))
            .collect()
    });
    let mut results = Vec::new();
    let mut steals = StealStats::default();
    for (local, s) in collected {
        results.extend(local);
        steals.claims += s.claims;
        steals.nanos += s.nanos;
    }
    (results, steals)
}

/// The plain-report runner over [`execute_fleet_tasks_with`].
fn execute_fleet_tasks(
    space: &MaterialsSpace,
    tasks: &[(usize, CampaignConfig)],
    threads: usize,
    commit_cap: Option<usize>,
) -> Vec<(usize, CampaignReport)> {
    execute_fleet_tasks_with(tasks, threads, commit_cap, |c| run_campaign(space, c))
}

/// Run a fleet of campaigns and report aggregate outcomes plus timing.
pub fn run_campaign_fleet_timed(
    space: &MaterialsSpace,
    cfg: &FleetConfig,
) -> (FleetReport, FleetTiming) {
    let shards = cfg.sharded_campaigns();
    let threads = cfg.effective_threads();
    let started = Instant::now();

    let tasks: Vec<(usize, CampaignConfig)> = shards.into_iter().enumerate().collect();
    let mut reports: Vec<Option<CampaignReport>> = (0..tasks.len()).map(|_| None).collect();
    for (i, r) in execute_fleet_tasks(space, &tasks, threads, None) {
        reports[i] = Some(r);
    }
    let ordered: Vec<CampaignReport> = reports
        .into_iter()
        .map(|r| r.expect("every task claimed exactly once"))
        .collect();
    let report = FleetReport::from_reports(cfg.master_seed, ordered);
    let timing = FleetTiming {
        threads,
        wall_clock: started.elapsed(),
    };
    (report, timing)
}

/// Run a fleet of campaigns: M campaigns sharded across N worker threads,
/// deterministic regardless of N. See the module docs for the design.
pub fn run_campaign_fleet(space: &MaterialsSpace, cfg: &FleetConfig) -> FleetReport {
    run_campaign_fleet_timed(space, cfg).0
}

/// A durable record of a partially executed fleet: which campaigns
/// committed their reports before the coordinator died, and the derived
/// shard seeds that make re-running the rest exact.
///
/// The unit of fleet checkpointing is the *campaign*: each campaign is a
/// pure function of `(space, config, shard seed)`, so a resume re-derives
/// the missing results bit-for-bit no matter which subset happened to
/// commit, which workers ran what, or how many threads either run used.
/// That is why [`resume_campaign_fleet`] produces a [`FleetReport`]
/// byte-identical to the uninterrupted run's.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetCheckpoint {
    /// Master seed of the interrupted fleet.
    pub master_seed: u64,
    /// Derived shard seed per campaign, in shard order — the resume
    /// handshake: a checkpoint only resumes against a config that derives
    /// the same seeds.
    pub shard_seeds: Vec<u64>,
    /// Committed per-campaign reports, in shard order (`None` = lost or
    /// never run; re-executed on resume).
    pub completed: Vec<Option<CampaignReport>>,
}

impl FleetCheckpoint {
    /// An empty checkpoint for `cfg` (nothing committed yet).
    pub fn empty(cfg: &FleetConfig) -> Self {
        Self::from_shards(cfg.master_seed, &cfg.sharded_campaigns())
    }

    /// An empty checkpoint over already-derived shards (avoids a second
    /// seed-derivation pass when the caller holds them).
    fn from_shards(master_seed: u64, shards: &[CampaignConfig]) -> Self {
        FleetCheckpoint {
            master_seed,
            shard_seeds: shards.iter().map(|c| c.seed).collect(),
            completed: (0..shards.len()).map(|_| None).collect(),
        }
    }

    /// Record a committed campaign report.
    pub fn record(&mut self, index: usize, report: CampaignReport) {
        self.completed[index] = Some(report);
    }

    /// Campaigns whose reports committed.
    pub fn completed_count(&self) -> usize {
        self.completed.iter().filter(|c| c.is_some()).count()
    }

    /// Campaigns still to run (lost in flight or never claimed).
    pub fn remaining_count(&self) -> usize {
        self.completed.len() - self.completed_count()
    }

    /// Whether every campaign committed.
    pub fn is_complete(&self) -> bool {
        self.remaining_count() == 0
    }
}

/// Why a fleet resume was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FleetResumeError {
    /// Checkpoint campaign count does not match the fleet config.
    ShapeMismatch {
        /// Campaigns in the checkpoint.
        checkpoint: usize,
        /// Campaigns in the fleet config.
        fleet: usize,
    },
    /// A derived shard seed differs from the checkpoint's — the
    /// checkpoint belongs to a different fleet (or the config drifted),
    /// so splicing its reports would fabricate results.
    SeedMismatch {
        /// First shard whose seed disagrees.
        index: usize,
    },
    /// A [`FleetLedgerCheckpoint`] shard has a committed report without
    /// its ledger (or a ledger without its report) — the checkpoint was
    /// assembled inconsistently, so splicing it would desynchronise the
    /// report from the audit trail.
    LedgerMismatch {
        /// First shard whose report/ledger presence disagrees.
        index: usize,
    },
    /// Serialized checkpoint bytes were refused at the wire level
    /// (checksum, truncation, or structural corruption) before any
    /// resume handshake could run. See
    /// [`resume_campaign_fleet_recorded_bytes`](crate::ledger::wire::resume_campaign_fleet_recorded_bytes).
    Corrupt(crate::ledger::WireError),
}

impl std::fmt::Display for FleetResumeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetResumeError::ShapeMismatch { checkpoint, fleet } => write!(
                f,
                "checkpoint has {checkpoint} campaigns, fleet config has {fleet}"
            ),
            FleetResumeError::SeedMismatch { index } => write!(
                f,
                "shard {index}'s derived seed differs from the checkpoint — \
                 checkpoint does not belong to this fleet config"
            ),
            FleetResumeError::LedgerMismatch { index } => write!(
                f,
                "shard {index} has a committed report and ledger that disagree \
                 on presence — the ledger checkpoint is inconsistent"
            ),
            FleetResumeError::Corrupt(e) => write!(f, "corrupt checkpoint bytes: {e}"),
        }
    }
}

impl std::error::Error for FleetResumeError {}

/// Derive the seeded crash point for a fleet of `campaigns` campaigns:
/// the number of commits after which the coordinator dies. Pure function
/// of `(chaos_seed, campaigns)`, drawn through the
/// [`evoflow_sim::chaos`] machinery so fleet kills and task-level chaos
/// share one schedule vocabulary.
pub fn fleet_death_point(chaos_seed: u64, campaigns: usize) -> usize {
    ChaosSchedule::derive(
        &RngRegistry::new(chaos_seed),
        &ChaosSpec::fatal(),
        campaigns,
    )
    .death
    .map(|d| d.after_commits as usize)
    .unwrap_or(0)
}

/// Run a fleet until `max_completions` campaigns have committed, then
/// die — the chaos-engineering entry point for fleet crash tests.
///
/// Work in flight at the crash point is lost (a finished campaign whose
/// commit lost the race is discarded), exactly like a coordinator
/// `kill -9`. Which campaigns committed depends on scheduling and is
/// *not* deterministic across thread counts — that is the point: the
/// resume invariant must hold from any crash state, and
/// [`resume_campaign_fleet`] reconstructs the identical [`FleetReport`]
/// from every one of them.
pub fn run_campaign_fleet_until(
    space: &MaterialsSpace,
    cfg: &FleetConfig,
    max_completions: usize,
) -> FleetCheckpoint {
    let shards = cfg.sharded_campaigns();
    let threads = cfg.effective_threads();
    let mut ckpt = FleetCheckpoint::from_shards(cfg.master_seed, &shards);
    let tasks: Vec<(usize, CampaignConfig)> = shards.into_iter().enumerate().collect();
    for (i, r) in execute_fleet_tasks(space, &tasks, threads, Some(max_completions)) {
        ckpt.record(i, r);
    }
    ckpt
}

/// Resume an interrupted fleet from a [`FleetCheckpoint`]: re-run only
/// the campaigns that never committed, splice the reports in shard
/// order, and aggregate.
///
/// Because shard seeds are pure functions of `(master seed, index)` and
/// campaigns never observe each other, the result is **byte-identical**
/// to the report of an uninterrupted [`run_campaign_fleet`] — at any
/// thread count on either side of the crash.
pub fn resume_campaign_fleet(
    space: &MaterialsSpace,
    cfg: &FleetConfig,
    checkpoint: &FleetCheckpoint,
) -> Result<FleetReport, FleetResumeError> {
    let shards = cfg.sharded_campaigns();
    validate_fleet_checkpoint(&shards, checkpoint)?;
    let threads = cfg.effective_threads();
    let missing: Vec<(usize, CampaignConfig)> = shards
        .into_iter()
        .enumerate()
        .filter(|(i, _)| checkpoint.completed[*i].is_none())
        .collect();
    let mut reports: Vec<Option<CampaignReport>> = checkpoint.completed.clone();
    for (i, r) in execute_fleet_tasks(space, &missing, threads, None) {
        reports[i] = Some(r);
    }
    let ordered: Vec<CampaignReport> = reports
        .into_iter()
        .map(|r| r.expect("checkpointed or just re-run"))
        .collect();
    Ok(FleetReport::from_reports(cfg.master_seed, ordered))
}

/// The resume handshake shared by plain and recorded resumes: the
/// checkpoint must match the fleet's shape and derive the same shard
/// seeds, or splicing its reports would fabricate results.
fn validate_fleet_checkpoint(
    shards: &[CampaignConfig],
    checkpoint: &FleetCheckpoint,
) -> Result<(), FleetResumeError> {
    if checkpoint.completed.len() != shards.len() || checkpoint.shard_seeds.len() != shards.len() {
        return Err(FleetResumeError::ShapeMismatch {
            checkpoint: checkpoint.completed.len().max(checkpoint.shard_seeds.len()),
            fleet: shards.len(),
        });
    }
    for (i, shard) in shards.iter().enumerate() {
        if shard.seed != checkpoint.shard_seeds[i] {
            return Err(FleetResumeError::SeedMismatch { index: i });
        }
    }
    Ok(())
}

// ---- ledger-recording execution ---------------------------------------------

/// Run a fleet with full event recording: every campaign emits its ledger
/// alongside its report, and the per-campaign ledgers are merged in
/// deterministic shard order into one [`FleetLedger`].
///
/// The report equals [`run_campaign_fleet`]'s exactly (recording never
/// perturbs a campaign), and both the report *and the merged ledger* are
/// byte-identical at any thread count.
pub fn run_campaign_fleet_recorded(
    space: &MaterialsSpace,
    cfg: &FleetConfig,
) -> (FleetReport, FleetLedger) {
    let shards = cfg.sharded_campaigns();
    let threads = cfg.effective_threads();
    let tasks: Vec<(usize, CampaignConfig)> = shards.into_iter().enumerate().collect();
    let mut slots: Vec<Option<(CampaignReport, CampaignLedger)>> =
        (0..tasks.len()).map(|_| None).collect();
    for (i, pair) in
        execute_fleet_tasks_with(&tasks, threads, None, |c| run_campaign_recorded(space, c))
    {
        slots[i] = Some(pair);
    }
    let mut reports = Vec::with_capacity(slots.len());
    let mut campaigns = Vec::with_capacity(slots.len());
    for slot in slots {
        let (report, ledger) = slot.expect("every task claimed exactly once");
        reports.push(report);
        campaigns.push(ledger);
    }
    (
        FleetReport::from_reports(cfg.master_seed, reports),
        FleetLedger {
            master_seed: cfg.master_seed,
            campaigns,
        },
    )
}

/// Run a *recording* fleet with hot-path phase profiling: every campaign
/// runs under [`run_campaign_profiled`], the executor's chunk-claim path
/// is wall-timed as the *steal* phase, and the per-campaign breakdowns
/// are merged **in shard order** — so every count in the returned
/// [`PhaseBreakdown`] is byte-identical across reruns and thread counts
/// (only `nanos` is wall-clock). The report and ledger are identical to
/// [`run_campaign_fleet_recorded`]'s: profiling observes, never perturbs.
pub fn run_campaign_fleet_profiled(
    space: &MaterialsSpace,
    cfg: &FleetConfig,
) -> (FleetReport, FleetLedger, PhaseBreakdown, FleetTiming) {
    let shards = cfg.sharded_campaigns();
    let threads = cfg.effective_threads();
    let started = Instant::now();
    let tasks: Vec<(usize, CampaignConfig)> = shards.into_iter().enumerate().collect();
    let mut slots: Vec<Option<(CampaignReport, CampaignLedger, PhaseBreakdown)>> =
        (0..tasks.len()).map(|_| None).collect();
    let (results, steals) = execute_fleet_tasks_steal_timed(
        &tasks,
        threads,
        None,
        |c| {
            let mut ledger = CampaignLedger::new();
            let mut prof = PhaseProfiler::enabled();
            let report = run_campaign_profiled(space, c, &mut [&mut ledger], &mut prof);
            (report, ledger, prof.breakdown())
        },
        true,
    );
    for (i, triple) in results {
        slots[i] = Some(triple);
    }
    let mut reports = Vec::with_capacity(slots.len());
    let mut campaigns = Vec::with_capacity(slots.len());
    let mut merged = PhaseProfiler::enabled();
    for slot in slots {
        let (report, ledger, breakdown) = slot.expect("every task claimed exactly once");
        reports.push(report);
        campaigns.push(ledger);
        merged.merge(&breakdown);
    }
    merged.add_steals(steals.claims, steals.nanos);
    let timing = FleetTiming {
        threads,
        wall_clock: started.elapsed(),
    };
    (
        FleetReport::from_reports(cfg.master_seed, reports),
        FleetLedger {
            master_seed: cfg.master_seed,
            campaigns,
        },
        merged.breakdown(),
        timing,
    )
}

/// A durable record of a partially executed *recording* fleet: the plain
/// [`FleetCheckpoint`] plus the committed campaigns' event ledgers and a
/// fleet-level audit trail of the crash itself.
///
/// The audit `events` (checkpoint taken, coordinator killed) are
/// deliberately *not* part of the merged [`FleetLedger`]: the merged
/// ledger must stay byte-identical to the uninterrupted run's, and the
/// uninterrupted run never crashed. The crash's own history lives here,
/// with the checkpoint it produced.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetLedgerCheckpoint {
    /// The underlying fleet checkpoint (reports + seed handshake).
    pub fleet: FleetCheckpoint,
    /// Committed per-campaign ledgers, in shard order (`None` = lost or
    /// never run; re-recorded on resume).
    pub ledgers: Vec<Option<CampaignLedger>>,
    /// Fleet-level audit trail of the interrupted run.
    pub events: Vec<CampaignEvent>,
}

/// The recorded-resume handshake: the plain [`FleetCheckpoint`] checks,
/// plus every shard's report and ledger must agree on presence.
fn validate_ledger_checkpoint(
    shards: &[CampaignConfig],
    checkpoint: &FleetLedgerCheckpoint,
) -> Result<(), FleetResumeError> {
    validate_fleet_checkpoint(shards, &checkpoint.fleet)?;
    if checkpoint.ledgers.len() != shards.len() {
        return Err(FleetResumeError::ShapeMismatch {
            checkpoint: checkpoint.ledgers.len(),
            fleet: shards.len(),
        });
    }
    if let Some(index) = checkpoint
        .ledgers
        .iter()
        .zip(&checkpoint.fleet.completed)
        .position(|(l, r)| l.is_some() != r.is_some())
    {
        return Err(FleetResumeError::LedgerMismatch { index });
    }
    Ok(())
}

/// Run a recording fleet until `max_completions` campaigns have
/// committed, then die — the ledger-carrying analogue of
/// [`run_campaign_fleet_until`]. Each committed campaign's report *and*
/// ledger survive in the checkpoint; in-flight work loses both.
pub fn run_campaign_fleet_recorded_until(
    space: &MaterialsSpace,
    cfg: &FleetConfig,
    max_completions: usize,
) -> FleetLedgerCheckpoint {
    let shards = cfg.sharded_campaigns();
    let threads = cfg.effective_threads();
    let mut fleet = FleetCheckpoint::from_shards(cfg.master_seed, &shards);
    let mut ledgers: Vec<Option<CampaignLedger>> = (0..shards.len()).map(|_| None).collect();
    let tasks: Vec<(usize, CampaignConfig)> = shards.into_iter().enumerate().collect();
    for (i, (report, ledger)) in
        execute_fleet_tasks_with(&tasks, threads, Some(max_completions), |c| {
            run_campaign_recorded(space, c)
        })
    {
        fleet.record(i, report);
        ledgers[i] = Some(ledger);
    }
    // The audit trail records what actually happened: the coordinator
    // died after the commits it truly absorbed (a cap larger than the
    // fleet never fires mid-run).
    let events = vec![
        CampaignEvent::CoordinatorKilled {
            after_commits: fleet.completed_count(),
        },
        CampaignEvent::CheckpointTaken {
            committed: fleet.completed_count(),
            total: fleet.completed.len(),
        },
    ];
    FleetLedgerCheckpoint {
        fleet,
        ledgers,
        events,
    }
}

/// Resume an interrupted recording fleet: re-record only the campaigns
/// that never committed, splice reports *and ledgers* in shard order,
/// and aggregate.
///
/// Both the [`FleetReport`] and the merged [`FleetLedger`] are
/// **byte-identical** to the uninterrupted
/// [`run_campaign_fleet_recorded`] outputs — at any thread count on
/// either side of the crash. The kill+resume boundary is therefore
/// invisible to any downstream audit that replays the ledger.
pub fn resume_campaign_fleet_recorded(
    space: &MaterialsSpace,
    cfg: &FleetConfig,
    checkpoint: &FleetLedgerCheckpoint,
) -> Result<(FleetReport, FleetLedger), FleetResumeError> {
    let shards = cfg.sharded_campaigns();
    validate_ledger_checkpoint(&shards, checkpoint)?;
    let threads = cfg.effective_threads();
    let missing: Vec<(usize, CampaignConfig)> = shards
        .into_iter()
        .enumerate()
        .filter(|(i, _)| checkpoint.fleet.completed[*i].is_none())
        .collect();
    let mut reports: Vec<Option<CampaignReport>> = checkpoint.fleet.completed.clone();
    let mut ledgers: Vec<Option<CampaignLedger>> = checkpoint.ledgers.clone();
    for (i, (report, ledger)) in
        execute_fleet_tasks_with(&missing, threads, None, |c| run_campaign_recorded(space, c))
    {
        reports[i] = Some(report);
        ledgers[i] = Some(ledger);
    }
    let ordered: Vec<CampaignReport> = reports
        .into_iter()
        .map(|r| r.expect("checkpointed or just re-run"))
        .collect();
    let campaigns: Vec<CampaignLedger> = ledgers
        .into_iter()
        .map(|l| l.expect("checkpointed or just re-run"))
        .collect();
    Ok((
        FleetReport::from_reports(cfg.master_seed, ordered),
        FleetLedger {
            master_seed: cfg.master_seed,
            campaigns,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Cell;
    use evoflow_agents::Pattern;
    use evoflow_sm::IntelligenceLevel;

    fn space() -> MaterialsSpace {
        MaterialsSpace::generate(3, 8, 20260610)
    }

    fn small_fleet(threads: usize) -> FleetConfig {
        let mut cfg = FleetConfig::new(99);
        cfg.horizon = SimDuration::from_days(1);
        cfg.threads = threads;
        cfg.push_cell(Cell::new(IntelligenceLevel::Static, Pattern::Single), 2);
        cfg.push_cell(
            Cell::new(IntelligenceLevel::Intelligent, Pattern::Swarm { k: 4 }),
            2,
        );
        cfg
    }

    #[test]
    fn fleet_is_thread_count_invariant() {
        let space = space();
        let serial = run_campaign_fleet(&space, &small_fleet(1));
        let two = run_campaign_fleet(&space, &small_fleet(2));
        let four = run_campaign_fleet(&space, &small_fleet(4));
        assert_eq!(serial, two);
        assert_eq!(serial, four);
    }

    #[test]
    fn shard_seeds_differ_between_campaigns() {
        let cfg = small_fleet(1);
        let seeds: std::collections::BTreeSet<u64> =
            cfg.sharded_campaigns().iter().map(|c| c.seed).collect();
        assert_eq!(seeds.len(), 4, "all four campaigns get distinct seeds");
    }

    #[test]
    fn aggregation_totals_match_reports() {
        let space = space();
        let report = run_campaign_fleet(&space, &small_fleet(2));
        let sum: u64 = report.reports.iter().map(|r| r.experiments).sum();
        assert_eq!(report.total_experiments, sum);
        assert_eq!(report.per_cell.len(), 2);
        assert_eq!(
            report.per_cell.iter().map(|c| c.campaigns).sum::<usize>(),
            4
        );
        let cell_sum: u64 = report.per_cell.iter().map(|c| c.experiments).sum();
        assert_eq!(report.total_experiments, cell_sum);
    }

    #[test]
    fn empty_fleet_is_empty_report() {
        let report = run_campaign_fleet(&space(), &FleetConfig::new(1));
        assert_eq!(report.reports.len(), 0);
        assert_eq!(report.total_experiments, 0);
        assert_eq!(report.best_score, 0.0);
    }

    #[test]
    fn timing_reports_requested_threads() {
        let space = space();
        let (_, timing) = run_campaign_fleet_timed(&space, &small_fleet(3));
        assert_eq!(timing.threads, 3);
        assert!(timing.wall_clock.as_nanos() > 0);
    }

    #[test]
    fn killed_fleet_resumes_to_identical_report() {
        let space = space();
        let cfg = small_fleet(2);
        let uninterrupted = run_campaign_fleet(&space, &cfg);
        for kill_after in 0..=4usize {
            let ckpt = run_campaign_fleet_until(&space, &cfg, kill_after);
            assert!(ckpt.completed_count() <= kill_after);
            let resumed = resume_campaign_fleet(&space, &cfg, &ckpt).unwrap();
            assert_eq!(resumed, uninterrupted, "kill_after={kill_after}");
        }
    }

    #[test]
    fn resume_reruns_only_missing_campaigns() {
        let space = space();
        let mut cfg = small_fleet(1);
        cfg.threads = 1;
        let ckpt = run_campaign_fleet_until(&space, &cfg, 2);
        // Serial kill is deterministic: the first two shards committed.
        assert_eq!(ckpt.completed_count(), 2);
        assert!(ckpt.completed[0].is_some() && ckpt.completed[1].is_some());
        assert_eq!(ckpt.remaining_count(), 2);
        assert!(!ckpt.is_complete());
        let resumed = resume_campaign_fleet(&space, &cfg, &ckpt).unwrap();
        // The checkpointed reports are spliced, not recomputed: the
        // resumed report's first shards are the very ones checkpointed.
        assert_eq!(&resumed.reports[0], ckpt.completed[0].as_ref().unwrap());
        assert_eq!(&resumed.reports[1], ckpt.completed[1].as_ref().unwrap());
    }

    #[test]
    fn checkpoint_refuses_a_different_fleet() {
        let space = space();
        let cfg = small_fleet(1);
        let ckpt = run_campaign_fleet_until(&space, &cfg, 1);

        let mut other_seed = small_fleet(1);
        other_seed.master_seed = 100;
        assert_eq!(
            resume_campaign_fleet(&space, &other_seed, &ckpt),
            Err(FleetResumeError::SeedMismatch { index: 0 })
        );

        let mut bigger = small_fleet(1);
        bigger.push_cell(Cell::traditional_wms(), 1);
        assert!(matches!(
            resume_campaign_fleet(&space, &bigger, &ckpt),
            Err(FleetResumeError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn empty_checkpoint_resume_equals_full_run() {
        let space = space();
        let cfg = small_fleet(2);
        let resumed = resume_campaign_fleet(&space, &cfg, &FleetCheckpoint::empty(&cfg)).unwrap();
        assert_eq!(resumed, run_campaign_fleet(&space, &cfg));
    }

    #[test]
    fn complete_checkpoint_resume_recomputes_nothing() {
        let space = space();
        let cfg = small_fleet(1);
        let ckpt = run_campaign_fleet_until(&space, &cfg, cfg.campaigns.len());
        assert!(ckpt.is_complete());
        let resumed = resume_campaign_fleet(&space, &cfg, &ckpt).unwrap();
        assert_eq!(resumed, run_campaign_fleet(&space, &cfg));
    }

    #[test]
    fn inconsistent_ledger_checkpoint_is_refused() {
        let space = space();
        let cfg = small_fleet(1);
        let mut ckpt = run_campaign_fleet_recorded_until(&space, &cfg, 2);
        assert!(ckpt.fleet.completed[0].is_some());
        ckpt.ledgers[0] = None; // committed report, ledger lost
        assert_eq!(
            resume_campaign_fleet_recorded(&space, &cfg, &ckpt).unwrap_err(),
            FleetResumeError::LedgerMismatch { index: 0 }
        );
    }

    #[test]
    fn recorded_kill_audit_trail_reflects_actual_commits() {
        let space = space();
        let cfg = small_fleet(1);
        // Cap beyond the fleet: everything commits, and the audit trail
        // must say so rather than echoing the configured cap.
        let ckpt = run_campaign_fleet_recorded_until(&space, &cfg, 100);
        assert!(ckpt.fleet.is_complete());
        assert!(ckpt.events.contains(&CampaignEvent::CoordinatorKilled {
            after_commits: cfg.campaigns.len()
        }));
    }

    #[test]
    fn fleet_death_point_is_seeded_and_in_range() {
        for seed in 0..30u64 {
            assert_eq!(fleet_death_point(seed, 8), fleet_death_point(seed, 8));
            assert!((1..=8).contains(&fleet_death_point(seed, 8)));
        }
        assert_eq!(fleet_death_point(1, 0), 0);
        let distinct: std::collections::BTreeSet<usize> =
            (0..30).map(|s| fleet_death_point(s, 8)).collect();
        assert!(distinct.len() > 1, "death points must vary with the seed");
    }

    #[test]
    fn task_queue_claims_each_task_once() {
        // 17 tasks / 2 workers ⇒ chunk = 2: every index handed out
        // exactly once, in exactly ceil(17/2) = 9 chunk claims, no
        // matter how claims interleave.
        let q = TaskQueue::new(17, 2);
        assert_eq!(q.chunk, 2);
        let mut seen = std::collections::BTreeSet::new();
        let mut claims = 0u64;
        while let Some(range) = q.claim() {
            claims += 1;
            for i in range {
                assert!(seen.insert(i), "task {i} claimed twice");
            }
        }
        assert_eq!(seen.len(), 17);
        assert_eq!(claims, 9);
        assert!(q.claim().is_none(), "drained queue must stay drained");
    }

    #[test]
    fn task_queue_chunk_scales_with_load_and_never_hits_zero() {
        assert_eq!(TaskQueue::new(12, 2).chunk, 1);
        assert_eq!(TaskQueue::new(800, 4).chunk, 50);
        assert_eq!(TaskQueue::new(3, 16).chunk, 1);
        assert_eq!(TaskQueue::new(0, 2).chunk, 1);
    }
}
