//! The six-layer architecture of Figure 2, assembled as one runtime.
//!
//! Each layer owns the components the figure names; the runtime can
//! enumerate them (the `fig2_layers` experiment prints the inventory),
//! health-check them, and exercise the canonical inter-layer call paths:
//! human intervention requests flowing down, agent decisions flowing
//! through coordination to facilities, results flowing back up into the
//! data layer.

use crate::federation::Federation;
use evoflow_agents::{AnalysisAgent, DesignAgent, HypothesisAgent, MetaOptimizerAgent};
use evoflow_cogsim::{CognitiveModel, ModelProfile};
use evoflow_coord::{Authority, MessageBus, StateStore};
use evoflow_knowledge::{ArtifactKind, KnowledgeGraph, ModelRegistry, ProvenanceStore};
use evoflow_sim::RngRegistry;
use serde::Serialize;

/// A component inventory row: `(layer, component, healthy)`.
#[derive(Debug, Clone, Serialize)]
pub struct ComponentStatus {
    /// Layer name as in Figure 2.
    pub layer: &'static str,
    /// Component name as in Figure 2.
    pub component: String,
    /// Whether the component responds.
    pub healthy: bool,
}

/// Human Interface layer: portal state + intervention queue
/// (human-in-the-loop / human-on-the-loop, §5.2).
#[derive(Debug, Default)]
pub struct HumanInterface {
    /// Pending intervention requests raised by agents.
    pub interventions: Vec<String>,
    /// Dashboard counters mirrored from lower layers.
    pub dashboard: Vec<(String, f64)>,
}

impl HumanInterface {
    /// An agent asks for human review (decision-boundary escalation).
    pub fn request_intervention(&mut self, reason: impl Into<String>) {
        self.interventions.push(reason.into());
    }

    /// Human resolves the oldest intervention, if any.
    pub fn resolve_intervention(&mut self) -> Option<String> {
        if self.interventions.is_empty() {
            None
        } else {
            Some(self.interventions.remove(0))
        }
    }
}

/// Intelligence Service layer: the agent stack (Fig 2's five agents).
pub struct IntelligenceServices {
    /// Hypothesis generation.
    pub hypothesis: HypothesisAgent,
    /// Experiment design + validation gate.
    pub design: DesignAgent,
    /// Result interpretation / surrogate.
    pub analysis: AnalysisAgent,
    /// Campaign-level Ω.
    pub meta_optimizer: MetaOptimizerAgent,
}

/// Workflow Orchestration layer state.
#[derive(Debug, Default)]
pub struct Orchestration {
    /// Tasks submitted through the scheduler.
    pub scheduled_tasks: u64,
    /// Current workflow phase tracked by the state manager.
    pub phase: String,
}

/// Coordination & Communication layer.
pub struct Coordination {
    /// The message bus.
    pub bus: MessageBus,
    /// Replicated state.
    pub state: StateStore,
    /// The runtime's own auth authority.
    pub auth: Authority,
}

/// Resource & Data Management layer.
pub struct ResourceData {
    /// The knowledge graph.
    pub knowledge_graph: KnowledgeGraph,
    /// Provenance store.
    pub provenance: ProvenanceStore,
    /// Model/protocol registry.
    pub model_registry: ModelRegistry,
}

/// The assembled six-layer runtime over a federation.
pub struct LabRuntime {
    /// Layer 1 (top).
    pub human: HumanInterface,
    /// Layer 2.
    pub intelligence: IntelligenceServices,
    /// Layer 3.
    pub orchestration: Orchestration,
    /// Layer 4.
    pub coordination: Coordination,
    /// Layer 5.
    pub data: ResourceData,
    /// Layer 6: infrastructure abstraction over the federation's
    /// facilities (which themselves sit on the simulated physical layer).
    pub federation: Federation,
}

impl LabRuntime {
    /// Assemble the standard runtime (standard federation, deep LRM for
    /// hypotheses, fresh data layer).
    pub fn standard(seed: u64) -> Self {
        let reg = RngRegistry::new(seed);
        let dim = 3;
        let mut data = ResourceData {
            knowledge_graph: KnowledgeGraph::new(),
            provenance: ProvenanceStore::new(),
            model_registry: ModelRegistry::new(),
        };
        data.provenance.register_agent("lab-runtime", false);
        data.model_registry
            .register("hypothesis-policy", ArtifactKind::AgentPolicy, seed);

        LabRuntime {
            human: HumanInterface::default(),
            intelligence: IntelligenceServices {
                hypothesis: HypothesisAgent::new(
                    CognitiveModel::new(
                        ModelProfile::reasoning_lrm(),
                        reg.stream_seed("hypothesis"),
                    ),
                    dim,
                ),
                design: DesignAgent::new(dim),
                analysis: AnalysisAgent::new(0.12),
                meta_optimizer: MetaOptimizerAgent::new(6),
            },
            orchestration: Orchestration {
                scheduled_tasks: 0,
                phase: "idle".into(),
            },
            coordination: Coordination {
                bus: MessageBus::new(),
                state: StateStore::new("lab-runtime"),
                auth: Authority::new("lab-runtime", seed ^ 0xA117),
            },
            data,
            federation: Federation::standard(),
        }
    }

    /// Enumerate every component per Figure 2, with a liveness probe.
    pub fn inventory(&self) -> Vec<ComponentStatus> {
        let mut out = Vec::new();
        let mut push = |layer: &'static str, component: &str, healthy: bool| {
            out.push(ComponentStatus {
                layer,
                component: component.to_string(),
                healthy,
            });
        };
        push("Human Interface", "Central Science Portal", true);
        push("Human Interface", "Facility Dashboards", true);
        push(
            "Human Interface",
            "Intervention Tools",
            self.human.interventions.len() < 100,
        );
        push("Intelligence Service", "Hypothesis Agent", true);
        push("Intelligence Service", "Design Agent", true);
        push("Intelligence Service", "Analysis Agent", true);
        push(
            "Intelligence Service",
            "Knowledge Agent",
            self.data.knowledge_graph.node_count() < usize::MAX,
        );
        push("Intelligence Service", "Meta-Optimizer", true);
        push("Workflow Orchestration", "Task Scheduler", true);
        push(
            "Workflow Orchestration",
            "State Manager",
            !self.orchestration.phase.is_empty(),
        );
        push("Workflow Orchestration", "Resource Optimizer", true);
        push("Workflow Orchestration", "Facility Agents", true);
        push("Coordination & Communication", "Message Bus", true);
        push(
            "Coordination & Communication",
            "Service Discovery",
            !self.federation.registry().is_empty(),
        );
        push(
            "Coordination & Communication",
            "State Synchronization",
            true,
        );
        push("Coordination & Communication", "Security & Auth", true);
        push("Resource & Data Management", "Data Fabric", true);
        push("Resource & Data Management", "Resource Alloc.", true);
        push("Resource & Data Management", "Provenance Tracker", true);
        push("Resource & Data Management", "Knowledge Graph", true);
        push("Resource & Data Management", "Model Registry", true);
        push("Resource & Data Management", "Event Ledger", true);
        for f in self.federation.facilities() {
            push(
                "Infrastructure Abstraction",
                &format!("{:?} Interface ({})", f.kind, f.name),
                true,
            );
        }
        out
    }

    /// Exercise the canonical inter-layer path once: an agent decision
    /// travels through coordination to a facility, the result lands in the
    /// data layer, and the dashboard reflects it. Returns the number of
    /// layers touched (6 when everything works).
    pub fn smoke_cycle(&mut self) -> usize {
        let mut layers = 0;

        // 6→5: discover a facility capability.
        let providers = self.federation.discover("synthesis/thin-film");
        if providers.is_empty() {
            return layers;
        }
        layers += 1;

        // 4: authenticated handshake + bus announcement.
        let sub = self.coordination.bus.subscribe("orchestration");
        if self
            .federation
            .handshake("ai-hub", "synthesis/thin-film")
            .is_err()
        {
            return layers;
        }
        self.coordination.bus.publish(evoflow_coord::Message::text(
            "orchestration",
            "scheduler",
            "task dispatched",
        ));
        if sub.drain().len() != 1 {
            return layers;
        }
        layers += 1;

        // 3: orchestration records the dispatch.
        self.orchestration.scheduled_tasks += 1;
        self.orchestration.phase = "executing".into();
        layers += 1;

        // 2: intelligence proposes and validates a candidate.
        let cands = self.intelligence.hypothesis.propose(&[], 1);
        let validated = cands
            .iter()
            .filter(|c| self.intelligence.design.design(c).is_ok())
            .count();
        layers += 1;

        // 5 (data): record provenance of the decision.
        self.data
            .provenance
            .register_agent("hypothesis-agent", true);
        let act = self.data.provenance.record_activity(
            "smoke decision",
            evoflow_knowledge::ActivityKind::Reasoning,
            "hypothesis-agent",
            vec![],
        );
        self.data
            .provenance
            .record_entity("smoke-candidate", Some(act));
        layers += 1;

        // 1: dashboard + (possibly) intervention.
        self.human
            .dashboard
            .push(("validated_candidates".into(), validated as f64));
        if validated == 0 {
            self.human
                .request_intervention("all candidates failed validation");
        }
        layers += 1;

        layers
    }

    /// Exercise the event-ledger path end to end: run a small recorded
    /// campaign, replay its ledger, audit the reconstruction against the
    /// live report, and fold the replayed knowledge graph into the
    /// runtime's data layer (a CRDT merge, like any other replica).
    ///
    /// Returns the number of ledger events witnessed, or `None` if the
    /// replay audit failed — which would mean the ledger is not a
    /// faithful record and must not be merged.
    pub fn ledger_smoke(&mut self, seed: u64) -> Option<usize> {
        let space = crate::domain::MaterialsSpace::generate(2, 4, seed);
        let mut cfg = crate::campaign::CampaignConfig::for_cell(
            crate::matrix::Cell::autonomous_science(),
            seed,
        );
        cfg.horizon = evoflow_sim::SimDuration::from_hours(12);
        let (live, ledger) = crate::campaign::run_campaign_recorded(&space, &cfg);
        let replay = crate::ledger::replay_ledger(&ledger).ok()?;
        if replay.report != live {
            return None;
        }
        self.data.knowledge_graph.merge(&replay.knowledge);
        Some(ledger.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inventory_covers_all_six_layers() {
        let rt = LabRuntime::standard(1);
        let inv = rt.inventory();
        let layers: std::collections::BTreeSet<&str> = inv.iter().map(|c| c.layer).collect();
        assert_eq!(layers.len(), 6);
        assert!(inv.len() >= 21 + 5); // 21 named components + 5 facility interfaces
        assert!(inv.iter().all(|c| c.healthy));
    }

    #[test]
    fn smoke_cycle_touches_every_layer() {
        let mut rt = LabRuntime::standard(2);
        assert_eq!(rt.smoke_cycle(), 6);
        assert_eq!(rt.orchestration.scheduled_tasks, 1);
        assert_eq!(rt.orchestration.phase, "executing");
        assert!(rt.data.provenance.activity_count() >= 1);
        assert!(!rt.human.dashboard.is_empty());
    }

    #[test]
    fn interventions_queue_and_resolve() {
        let mut h = HumanInterface::default();
        h.request_intervention("agent at decision boundary");
        h.request_intervention("sample budget low");
        assert_eq!(
            h.resolve_intervention().unwrap(),
            "agent at decision boundary"
        );
        assert_eq!(h.interventions.len(), 1);
        h.resolve_intervention();
        assert!(h.resolve_intervention().is_none());
    }

    #[test]
    fn model_registry_seeded_with_policy() {
        let rt = LabRuntime::standard(3);
        assert!(rt.data.model_registry.latest("hypothesis-policy").is_some());
    }

    #[test]
    fn ledger_smoke_audits_and_merges_knowledge() {
        let mut rt = LabRuntime::standard(4);
        let before = rt.data.knowledge_graph.node_count();
        let events = rt.ledger_smoke(4).expect("replay audit passes");
        assert!(events > 0);
        assert!(
            rt.data.knowledge_graph.node_count() > before,
            "replayed knowledge must land in the data layer"
        );
    }
}
