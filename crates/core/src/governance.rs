//! Governance: policy enforcement, guardrails, and auditability for
//! autonomous agents (§4.2–§4.3).
//!
//! "Future workflow infrastructure must embed mechanisms for policy
//! enforcement, ethical guardrails, and transparent auditability" — this
//! module is that mechanism: agents submit [`Action`]s; the
//! [`GovernanceEngine`] evaluates them against declared [`Policy`]s and
//! returns allow / deny / escalate-to-human, logging every decision for
//! audit. The §4.3 liability question ("when AI systems make costly
//! errors… liability frameworks must clearly assign responsibility") is
//! answered mechanically: every decision records the responsible agent and
//! the policy that fired.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// What an agent wants to do, as governance sees it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Action {
    /// Requesting agent.
    pub agent: String,
    /// Action kind (e.g. `"synthesis"`, `"publish"`, `"rewrite-goals"`).
    pub kind: String,
    /// Samples the action would consume.
    pub samples: u32,
    /// Estimated cost in facility-hours.
    pub cost_hours: f64,
    /// Whether the action is physically irreversible (§4.1).
    pub irreversible: bool,
    /// Logical time of the request.
    pub at: u64,
}

/// A declared governance policy.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Policy {
    /// Total sample budget across all agents (physical scarcity).
    SampleBudget {
        /// Remaining samples.
        remaining: u32,
    },
    /// Irreversible actions require human approval (human-on-the-loop).
    HumanApprovalForIrreversible,
    /// Per-agent action rate limit per logical-time window.
    RateLimit {
        /// Max actions per window per agent.
        max_actions: u32,
        /// Window length in logical ticks.
        window: u64,
    },
    /// Deny any single action above this cost (blast-radius cap).
    CostCap {
        /// Maximum facility-hours per action.
        max_hours: f64,
    },
    /// Total facility-hours across all agents (a campaign's cost budget,
    /// compiled from `evoflow-intent` goal gates).
    TotalCostBudget {
        /// Remaining facility-hours.
        remaining_hours: f64,
    },
    /// Deny specific action kinds outright (e.g. `"rewrite-goals"` for
    /// systems without validated Ω guardrails).
    Forbid {
        /// Forbidden action kind.
        kind: String,
    },
}

/// Governance verdict for one action.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Verdict {
    /// Proceed.
    Allow,
    /// Blocked, with the reason.
    Deny(String),
    /// Requires human sign-off before proceeding.
    Escalate(String),
}

/// One audit-trail record.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AuditRecord {
    /// The action as submitted.
    pub action: Action,
    /// The verdict returned.
    pub verdict: Verdict,
}

/// The policy-enforcement point for a lab or federation.
#[derive(Debug, Default)]
pub struct GovernanceEngine {
    policies: Vec<Policy>,
    audit: Vec<AuditRecord>,
    recent: BTreeMap<String, Vec<u64>>, // agent -> action times (rate limits)
    pending_approvals: Vec<Action>,
}

impl GovernanceEngine {
    /// An engine with no policies (everything allowed — the pre-governance
    /// baseline).
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a policy (builder-style).
    pub fn with_policy(mut self, p: Policy) -> Self {
        self.policies.push(p);
        self
    }

    /// The §4 default stance: finite samples, human approval for
    /// irreversible steps, rate limits, a cost cap, and no self-directed
    /// goal rewriting.
    pub fn standard(sample_budget: u32) -> Self {
        Self::new()
            .with_policy(Policy::SampleBudget {
                remaining: sample_budget,
            })
            .with_policy(Policy::HumanApprovalForIrreversible)
            .with_policy(Policy::RateLimit {
                max_actions: 60,
                window: 3_600,
            })
            .with_policy(Policy::CostCap { max_hours: 48.0 })
            .with_policy(Policy::Forbid {
                kind: "rewrite-goals".into(),
            })
    }

    /// Build an engine from a compiled goal's guardrail gates
    /// (`evoflow-intent`): the sample budget becomes a
    /// [`Policy::SampleBudget`], the cost budget a
    /// [`Policy::TotalCostBudget`], and human approval for irreversible
    /// actions is always added (§4.1 is not negotiable per-goal).
    ///
    /// Metric-bound and wall-clock gates are *result*-shaped, not
    /// action-shaped: they are checked by the campaign loop against
    /// measured metrics via `CompiledGoal::violated_gates`, not here.
    pub fn from_goal_gates(gates: &[evoflow_intent::GateSpec]) -> Self {
        let mut engine = Self::new().with_policy(Policy::HumanApprovalForIrreversible);
        for gate in gates {
            match &gate.kind {
                evoflow_intent::GateKind::SampleBudget(n) => {
                    engine = engine.with_policy(Policy::SampleBudget {
                        remaining: (*n).min(u32::MAX as u64) as u32,
                    });
                }
                evoflow_intent::GateKind::CostBudget(units) => {
                    engine = engine.with_policy(Policy::TotalCostBudget {
                        remaining_hours: *units as f64,
                    });
                }
                evoflow_intent::GateKind::WallClock(_)
                | evoflow_intent::GateKind::MetricBound { .. } => {}
            }
        }
        engine
    }

    /// Number of audit records.
    pub fn audit_len(&self) -> usize {
        self.audit.len()
    }

    /// The audit trail (append-only).
    pub fn audit(&self) -> &[AuditRecord] {
        &self.audit
    }

    /// Actions awaiting human approval.
    pub fn pending_approvals(&self) -> &[Action] {
        &self.pending_approvals
    }

    /// Evaluate an action against every policy. First failing policy wins;
    /// escalations outrank allows but not denies. Allowed actions debit
    /// budgets and rate windows.
    pub fn evaluate(&mut self, action: Action) -> Verdict {
        let mut verdict = Verdict::Allow;
        for p in &self.policies {
            let v = match p {
                Policy::SampleBudget { remaining } => {
                    if action.samples > *remaining {
                        Verdict::Deny(format!(
                            "sample budget exhausted: {} requested, {} remain",
                            action.samples, remaining
                        ))
                    } else {
                        Verdict::Allow
                    }
                }
                Policy::HumanApprovalForIrreversible => {
                    if action.irreversible {
                        Verdict::Escalate("irreversible action requires human approval".into())
                    } else {
                        Verdict::Allow
                    }
                }
                Policy::RateLimit {
                    max_actions,
                    window,
                } => {
                    let times = self.recent.get(&action.agent);
                    let in_window = times
                        .map(|ts| {
                            ts.iter()
                                .filter(|t| action.at.saturating_sub(**t) < *window)
                                .count() as u32
                        })
                        .unwrap_or(0);
                    if in_window >= *max_actions {
                        Verdict::Deny(format!(
                            "rate limit: {in_window} actions in window for {}",
                            action.agent
                        ))
                    } else {
                        Verdict::Allow
                    }
                }
                Policy::CostCap { max_hours } => {
                    if action.cost_hours > *max_hours {
                        Verdict::Deny(format!(
                            "cost {}h exceeds cap {}h",
                            action.cost_hours, max_hours
                        ))
                    } else {
                        Verdict::Allow
                    }
                }
                Policy::TotalCostBudget { remaining_hours } => {
                    if action.cost_hours > *remaining_hours {
                        Verdict::Deny(format!(
                            "cost budget exhausted: {}h requested, {}h remain",
                            action.cost_hours, remaining_hours
                        ))
                    } else {
                        Verdict::Allow
                    }
                }
                Policy::Forbid { kind } => {
                    if &action.kind == kind {
                        Verdict::Deny(format!("action kind {kind:?} is forbidden"))
                    } else {
                        Verdict::Allow
                    }
                }
            };
            match v {
                Verdict::Deny(_) => {
                    verdict = v;
                    break;
                }
                Verdict::Escalate(_) if verdict == Verdict::Allow => verdict = v,
                _ => {}
            }
        }

        // Apply side effects.
        match &verdict {
            Verdict::Allow => {
                for p in &mut self.policies {
                    match p {
                        Policy::SampleBudget { remaining } => *remaining -= action.samples,
                        Policy::TotalCostBudget { remaining_hours } => {
                            *remaining_hours -= action.cost_hours
                        }
                        _ => {}
                    }
                }
                self.recent
                    .entry(action.agent.clone())
                    .or_default()
                    .push(action.at);
            }
            Verdict::Escalate(_) => {
                self.pending_approvals.push(action.clone());
            }
            Verdict::Deny(_) => {}
        }
        self.audit.push(AuditRecord {
            action,
            verdict: verdict.clone(),
        });
        verdict
    }

    /// A human approves the oldest pending escalation; the action is then
    /// re-recorded as allowed (budgets debited).
    pub fn approve_pending(&mut self) -> Option<Action> {
        if self.pending_approvals.is_empty() {
            return None;
        }
        let action = self.pending_approvals.remove(0);
        for p in &mut self.policies {
            match p {
                Policy::SampleBudget { remaining } => {
                    *remaining = remaining.saturating_sub(action.samples)
                }
                Policy::TotalCostBudget { remaining_hours } => {
                    *remaining_hours = (*remaining_hours - action.cost_hours).max(0.0)
                }
                _ => {}
            }
        }
        self.recent
            .entry(action.agent.clone())
            .or_default()
            .push(action.at);
        self.audit.push(AuditRecord {
            action: action.clone(),
            verdict: Verdict::Allow,
        });
        Some(action)
    }

    /// Per-agent accountability summary: (allowed, denied, escalated).
    pub fn accountability(&self) -> BTreeMap<String, (u32, u32, u32)> {
        let mut out: BTreeMap<String, (u32, u32, u32)> = BTreeMap::new();
        for rec in &self.audit {
            let e = out.entry(rec.action.agent.clone()).or_insert((0, 0, 0));
            match rec.verdict {
                Verdict::Allow => e.0 += 1,
                Verdict::Deny(_) => e.1 += 1,
                Verdict::Escalate(_) => e.2 += 1,
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn action(agent: &str, kind: &str) -> Action {
        Action {
            agent: agent.into(),
            kind: kind.into(),
            samples: 1,
            cost_hours: 1.0,
            irreversible: false,
            at: 0,
        }
    }

    #[test]
    fn empty_engine_allows_everything() {
        let mut g = GovernanceEngine::new();
        assert_eq!(g.evaluate(action("a", "synthesis")), Verdict::Allow);
        assert_eq!(g.audit_len(), 1);
    }

    #[test]
    fn sample_budget_depletes_and_denies() {
        let mut g = GovernanceEngine::new().with_policy(Policy::SampleBudget { remaining: 2 });
        assert_eq!(g.evaluate(action("a", "synthesis")), Verdict::Allow);
        assert_eq!(g.evaluate(action("a", "synthesis")), Verdict::Allow);
        let v = g.evaluate(action("a", "synthesis"));
        assert!(matches!(v, Verdict::Deny(_)), "got {v:?}");
    }

    #[test]
    fn irreversible_actions_escalate_and_approve() {
        let mut g = GovernanceEngine::standard(100);
        let mut a = action("synth-agent", "destructive-test");
        a.irreversible = true;
        let v = g.evaluate(a);
        assert!(matches!(v, Verdict::Escalate(_)));
        assert_eq!(g.pending_approvals().len(), 1);
        let approved = g.approve_pending().expect("pending action");
        assert_eq!(approved.kind, "destructive-test");
        assert!(g.pending_approvals().is_empty());
        // Audit holds both the escalation and the approval.
        assert_eq!(g.audit_len(), 2);
    }

    #[test]
    fn rate_limit_blocks_burst() {
        let mut g = GovernanceEngine::new().with_policy(Policy::RateLimit {
            max_actions: 3,
            window: 100,
        });
        for t in 0..3 {
            let mut a = action("fast-agent", "query");
            a.at = t;
            assert_eq!(g.evaluate(a), Verdict::Allow);
        }
        let mut a = action("fast-agent", "query");
        a.at = 3;
        assert!(matches!(g.evaluate(a), Verdict::Deny(_)));
        // Outside the window the agent may act again.
        let mut a = action("fast-agent", "query");
        a.at = 200;
        assert_eq!(g.evaluate(a), Verdict::Allow);
        // Other agents are unaffected.
        assert_eq!(g.evaluate(action("slow-agent", "query")), Verdict::Allow);
    }

    #[test]
    fn cost_cap_and_forbidden_kinds() {
        let mut g = GovernanceEngine::standard(100);
        let mut big = action("a", "simulation");
        big.cost_hours = 100.0;
        assert!(matches!(g.evaluate(big), Verdict::Deny(_)));
        assert!(matches!(
            g.evaluate(action("omega", "rewrite-goals")),
            Verdict::Deny(_)
        ));
    }

    #[test]
    fn deny_outranks_escalate() {
        let mut g = GovernanceEngine::standard(0); // zero sample budget
        let mut a = action("a", "synthesis");
        a.irreversible = true;
        a.samples = 1;
        // Would escalate for irreversibility, but the budget denies first.
        assert!(matches!(g.evaluate(a), Verdict::Deny(_)));
    }

    #[test]
    fn accountability_assigns_responsibility() {
        let mut g = GovernanceEngine::standard(10);
        g.evaluate(action("hypothesis-agent", "synthesis"));
        g.evaluate(action("hypothesis-agent", "rewrite-goals"));
        let mut irr = action("synthesis-agent", "etch");
        irr.irreversible = true;
        g.evaluate(irr);
        let acct = g.accountability();
        assert_eq!(acct["hypothesis-agent"], (1, 1, 0));
        assert_eq!(acct["synthesis-agent"], (0, 0, 1));
    }

    #[test]
    fn denied_actions_do_not_consume_budget() {
        let mut g = GovernanceEngine::new()
            .with_policy(Policy::SampleBudget { remaining: 5 })
            .with_policy(Policy::Forbid { kind: "bad".into() });
        let mut a = action("a", "bad");
        a.samples = 5;
        assert!(matches!(g.evaluate(a), Verdict::Deny(_)));
        // Budget intact: a 5-sample good action still passes.
        let mut ok = action("a", "good");
        ok.samples = 5;
        assert_eq!(g.evaluate(ok), Verdict::Allow);
    }

    #[test]
    fn total_cost_budget_depletes_and_then_denies() {
        let mut g = GovernanceEngine::new().with_policy(Policy::TotalCostBudget {
            remaining_hours: 10.0,
        });
        let mut a = action("agent", "simulate");
        a.cost_hours = 6.0;
        assert_eq!(g.evaluate(a.clone()), Verdict::Allow);
        // 4.0h remain; another 6.0h request is denied, a 4.0h one passes.
        assert!(matches!(g.evaluate(a.clone()), Verdict::Deny(_)));
        a.cost_hours = 4.0;
        assert_eq!(g.evaluate(a), Verdict::Allow);
    }

    #[test]
    fn goal_gates_compile_into_policies() {
        use evoflow_intent::{compile, Comparator, GoalSpec, ObjectiveSense};
        let goal = GoalSpec::builder("g", "test goal")
            .objective("band_gap_eV", ObjectiveSense::Maximize)
            .constraint("toxicity", Comparator::Le, 0.1, true)
            .budget(5, 100, 24.0)
            .build();
        let compiled = compile(&goal).unwrap();
        let mut g = GovernanceEngine::from_goal_gates(compiled.gates());

        // Sample budget from the goal is enforced.
        let mut a = action("synthesis-agent", "synthesis");
        a.samples = 5;
        assert_eq!(g.evaluate(a.clone()), Verdict::Allow);
        assert!(matches!(g.evaluate(a), Verdict::Deny(_)));

        // Irreversible actions still escalate regardless of the goal
        // (deny outranks escalate, so use a sample-free action here).
        let mut irr = action("synthesis-agent", "etch");
        irr.irreversible = true;
        irr.samples = 0;
        assert!(matches!(g.evaluate(irr), Verdict::Escalate(_)));

        // The metric bound stayed with the compiled goal (result-shaped).
        let mut metrics = std::collections::BTreeMap::new();
        metrics.insert("toxicity".to_string(), 0.5);
        assert_eq!(
            compiled.violated_gates(&metrics, 0, 0, 0.0),
            vec!["g/bound/toxicity".to_string()]
        );
    }
}
