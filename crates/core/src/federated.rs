//! Federated fleet scheduling: campaign swarms placed across facilities.
//!
//! The paper's end-state is not a flat thread pool — it is *federated
//! autonomous science*: swarms of concurrent campaigns placed across
//! heterogeneous facilities (HPC batch queues, data fabrics, streaming
//! instruments), each retaining operational autonomy (§5.1, Figure 3).
//! This module closes that loop by routing a [`FleetConfig`]'s campaigns
//! through a [`Federation`]:
//!
//! 1. **Placement.** A [`PlacementPolicy`] assigns each campaign — in
//!    shard order, at a staggered arrival time — to one facility. Three
//!    policies ship: [`PlacementPolicyKind::RoundRobin`] (capacity-aware
//!    rotation), [`PlacementPolicyKind::LeastWait`] (queue-aware: asks
//!    every facility's [`BatchScheduler`] when the job *would* start and
//!    picks the earliest), and [`PlacementPolicyKind::DataLocality`]
//!    (minimises inter-site movement of the campaign's input data over
//!    the federation's data fabric).
//! 2. **Charging.** The chosen facility's batch scheduler is charged the
//!    job ([`BatchScheduler::submit`] / `advance_to`), accruing simulated
//!    queue wait; the campaign's input data is moved from its home site
//!    over [`Federation::transfer`], accruing fabric bytes.
//! 3. **Outage re-routing.** A seeded
//!    [`FacilityOutage`] — derived from the
//!    dedicated chaos stream, like every other disturbance — drains one
//!    facility mid-run: running jobs complete, and every job still queued
//!    there is re-routed through the same placement policy to the
//!    surviving facilities (with a data-evacuation transfer).
//! 4. **Aggregation.** Everything folds into a [`FederatedReport`]:
//!    per-facility utilization and mean queue wait, fabric traffic,
//!    placement records, and the fleet's existing [`FleetReport`].
//!
//! **Determinism.** Placement is a serial pure function of the
//! [`FederatedConfig`] — it never observes worker threads — and campaign
//! execution reuses the fleet executor's thread-invariant machinery, so a
//! [`FederatedReport`] is **byte-identical at any thread count**. The
//! same holds across a crash: [`run_campaign_fleet_federated_until`]
//! kills the coordinator after N commits and
//! [`resume_campaign_fleet_federated`] reproduces the uninterrupted
//! report exactly (the [`FederatedCheckpoint`] carries a placement
//! signature so a checkpoint can never be resumed against a drifted
//! federation).
//!
//! ```
//! use evoflow_core::{
//!     run_campaign_fleet_federated, Cell, FederatedConfig, FleetConfig, MaterialsSpace,
//!     PlacementPolicyKind,
//! };
//! use evoflow_sim::SimDuration;
//!
//! let space = MaterialsSpace::generate(3, 8, 42);
//! let mut fleet = FleetConfig::new(7);
//! fleet.horizon = SimDuration::from_days(1);
//! fleet.push_cell(Cell::autonomous_science(), 2);
//! fleet.push_cell(Cell::traditional_wms(), 2);
//!
//! let cfg = FederatedConfig::standard(fleet, PlacementPolicyKind::LeastWait);
//! let report = run_campaign_fleet_federated(&space, &cfg).expect("capacity exists");
//! assert_eq!(report.placements.len(), 4);
//! assert_eq!(report.facilities.len(), 5);
//! assert!(report.makespan_hours > 0.0);
//! ```

use crate::campaign::CampaignConfig;
use crate::domain::MaterialsSpace;
use crate::federation::Federation;
use crate::fleet::{
    resume_campaign_fleet, run_campaign_fleet, run_campaign_fleet_recorded,
    run_campaign_fleet_until, FleetCheckpoint, FleetConfig, FleetReport, FleetResumeError,
};
use crate::ledger::{CampaignEvent, FleetLedger};
use evoflow_agents::Pattern;
use evoflow_facility::{presets, BatchScheduler, Facility, FacilityKind, JobId};
use evoflow_sim::{fnv1a, FacilityOutage, RngRegistry, SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The built-in placement policies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlacementPolicyKind {
    /// Rotate over capacity-feasible facilities in site order.
    RoundRobin,
    /// Queue-aware: ask each facility's scheduler when the job would
    /// start ([`BatchScheduler::estimate_start`]) and pick the earliest.
    LeastWait,
    /// Minimise inter-site data movement: place nearest (in transfer
    /// time) to the campaign's data home.
    DataLocality,
}

impl PlacementPolicyKind {
    /// All built-in policies.
    pub fn all() -> [PlacementPolicyKind; 3] {
        [
            PlacementPolicyKind::RoundRobin,
            PlacementPolicyKind::LeastWait,
            PlacementPolicyKind::DataLocality,
        ]
    }

    /// Stable label (used in reports and checkpoint signatures).
    pub fn label(self) -> &'static str {
        match self {
            PlacementPolicyKind::RoundRobin => "round-robin",
            PlacementPolicyKind::LeastWait => "least-wait",
            PlacementPolicyKind::DataLocality => "data-locality",
        }
    }

    /// Instantiate the policy.
    fn build(self) -> Box<dyn PlacementPolicy> {
        match self {
            PlacementPolicyKind::RoundRobin => Box::new(RoundRobin { cursor: 0 }),
            PlacementPolicyKind::LeastWait => Box::new(LeastWait),
            PlacementPolicyKind::DataLocality => Box::new(DataLocality),
        }
    }
}

/// One facility's compute contribution to the federation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SiteSpec {
    /// Facility name (unique in the federation).
    pub name: String,
    /// Facility class (Figure 3).
    pub kind: FacilityKind,
    /// Batch-schedulable nodes the facility contributes.
    pub nodes: u64,
}

impl SiteSpec {
    /// A site with its kind's default node count
    /// ([`FacilityKind::default_nodes`]).
    pub fn new(name: impl Into<String>, kind: FacilityKind) -> Self {
        SiteSpec {
            name: name.into(),
            kind,
            nodes: kind.default_nodes(),
        }
    }

    /// Override the node count (builder-style).
    pub fn with_nodes(mut self, nodes: u64) -> Self {
        self.nodes = nodes;
        self
    }
}

/// Configuration of a federated fleet run: the fleet itself, the
/// federation's sites, the placement policy, and the (optional, seeded)
/// facility outage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FederatedConfig {
    /// The campaigns to run (threads field does not affect any report).
    pub fleet: FleetConfig,
    /// Placement policy.
    pub policy: PlacementPolicyKind,
    /// Facilities in the federation, in site-index order.
    pub sites: Vec<SiteSpec>,
    /// Simulated gap between successive campaign arrivals.
    pub inter_arrival: SimDuration,
    /// Seed for the [`FacilityOutage`] injection; `None` runs outage-free.
    pub outage_seed: Option<u64>,
}

impl FederatedConfig {
    /// A federation over explicit sites with 30-minute arrival spacing
    /// and no outage.
    pub fn new(fleet: FleetConfig, policy: PlacementPolicyKind, sites: Vec<SiteSpec>) -> Self {
        FederatedConfig {
            fleet,
            policy,
            sites,
            inter_arrival: SimDuration::from_mins(30),
            outage_seed: None,
        }
    }

    /// The standard five-facility federation of Figure 3 (which also gets
    /// the Figure 3 fabric, with its 400 Gbps AI-hub links).
    pub fn standard(fleet: FleetConfig, policy: PlacementPolicyKind) -> Self {
        let sites = presets::standard_federation()
            .iter()
            .map(|f| SiteSpec::new(f.name.clone(), f.kind))
            .collect();
        Self::new(fleet, policy, sites)
    }

    /// Enable the seeded facility outage (builder-style).
    pub fn with_outage_seed(mut self, seed: u64) -> Self {
        self.outage_seed = Some(seed);
        self
    }

    /// The derived outage this config will inject, if any. Pure function
    /// of `(outage_seed, sites, campaigns)`.
    pub fn outage(&self) -> Option<FacilityOutage> {
        let seed = self.outage_seed?;
        FacilityOutage::derive(
            &RngRegistry::new(seed),
            self.sites.len(),
            self.fleet.campaigns.len(),
        )
    }

    /// Arrival time of campaign `index` at the federation.
    fn arrival(&self, index: usize) -> SimTime {
        SimTime::ZERO + self.inter_arrival.saturating_mul(index as u64)
    }

    /// A stable signature of everything placement depends on: policy,
    /// sites, arrival spacing, outage seed, master seed, and every
    /// campaign's demand. Two configs with equal signatures place
    /// identically; a [`FederatedCheckpoint`] refuses to resume against a
    /// different signature.
    pub fn placement_signature(&self) -> u64 {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(self.policy.label().as_bytes());
        for s in &self.sites {
            bytes.extend_from_slice(s.name.as_bytes());
            bytes.extend_from_slice(&s.nodes.to_le_bytes());
            bytes.extend_from_slice(format!("{:?}", s.kind).as_bytes());
        }
        bytes.extend_from_slice(&self.inter_arrival.as_nanos().to_le_bytes());
        bytes.extend_from_slice(&self.outage_seed.unwrap_or(u64::MAX).to_le_bytes());
        bytes.extend_from_slice(&u64::from(self.outage_seed.is_some()).to_le_bytes());
        bytes.extend_from_slice(&self.fleet.master_seed.to_le_bytes());
        for (i, c) in self.fleet.campaigns.iter().enumerate() {
            let d = campaign_demand(i, c, self.sites.len());
            bytes.extend_from_slice(&d.nodes.to_le_bytes());
            bytes.extend_from_slice(&d.walltime.as_nanos().to_le_bytes());
            bytes.extend_from_slice(&d.input_gb.to_bits().to_le_bytes());
            bytes.extend_from_slice(&(d.data_home as u64).to_le_bytes());
        }
        fnv1a(&bytes)
    }
}

/// A campaign's resource demand on the federation — a pure function of
/// its config, so placement replays identically on resume.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CampaignDemand {
    /// Nodes the campaign's batch job requests.
    pub nodes: u64,
    /// Requested walltime.
    pub walltime: SimDuration,
    /// Input data to stage to the chosen facility, in gigabytes.
    pub input_gb: f64,
    /// Site index where the campaign's input data lives.
    pub data_home: usize,
}

/// Derive campaign `index`'s demand: wider compositions request more
/// nodes, higher intelligence levels request longer walltimes (their
/// decide steps are costlier), and input data homes rotate over the
/// federation's sites.
pub fn campaign_demand(index: usize, cfg: &CampaignConfig, sites: usize) -> CampaignDemand {
    let nodes = match cfg.cell.composition {
        Pattern::Single => 4,
        Pattern::Pipeline => 8,
        Pattern::Hierarchical => 16,
        Pattern::Mesh => 24,
        Pattern::Swarm { k } => (8 * k as u64).max(8),
    };
    let rank = cfg.cell.intelligence.rank() as u64;
    CampaignDemand {
        nodes,
        walltime: SimDuration::from_hours(1 + rank),
        input_gb: cfg.batch_per_lane as f64 * 2.0 * (rank + 1) as f64,
        data_home: if sites == 0 { 0 } else { index % sites },
    }
}

/// A facility's live placement state, as policies see it.
pub struct Site {
    /// The site's static description.
    pub spec: SiteSpec,
    /// Its batch scheduler (already advanced to the current arrival).
    pub scheduler: BatchScheduler,
    /// Whether the site has been drained by an outage.
    pub down: bool,
    bytes_in: u128,
    job_owner: BTreeMap<JobId, usize>,
    rerouted_away: usize,
}

/// One placement request, as policies see it.
pub struct PlacementRequest<'a> {
    /// Campaign (shard) index being placed.
    pub campaign: usize,
    /// Arrival time at the federation.
    pub arrival: SimTime,
    /// The campaign's demand.
    pub demand: &'a CampaignDemand,
    /// Name of the site holding the campaign's input data.
    pub data_home: &'a str,
}

/// A deterministic placement policy: given the capacity-feasible
/// candidate sites (indices into `sites`, always non-empty), pick one.
///
/// Policies must be pure functions of their inputs and their own state —
/// never of wall-clock time or thread identity — so federated reports
/// stay byte-identical at any parallelism.
pub trait PlacementPolicy {
    /// Stable policy name.
    fn name(&self) -> &'static str;
    /// Choose one of `candidates`.
    fn place(
        &mut self,
        req: &PlacementRequest<'_>,
        candidates: &[usize],
        sites: &[Site],
        federation: &Federation,
    ) -> usize;
}

/// Capacity-aware rotation over candidate sites.
struct RoundRobin {
    cursor: usize,
}

impl PlacementPolicy for RoundRobin {
    fn name(&self) -> &'static str {
        PlacementPolicyKind::RoundRobin.label()
    }

    fn place(
        &mut self,
        _req: &PlacementRequest<'_>,
        candidates: &[usize],
        _sites: &[Site],
        _federation: &Federation,
    ) -> usize {
        let pick = candidates[self.cursor % candidates.len()];
        self.cursor += 1;
        pick
    }
}

/// Queue-aware least-wait: exact start-time estimates from each
/// candidate's scheduler; earliest start wins, site order breaks ties.
struct LeastWait;

impl PlacementPolicy for LeastWait {
    fn name(&self) -> &'static str {
        PlacementPolicyKind::LeastWait.label()
    }

    fn place(
        &mut self,
        req: &PlacementRequest<'_>,
        candidates: &[usize],
        sites: &[Site],
        _federation: &Federation,
    ) -> usize {
        candidates
            .iter()
            .copied()
            .min_by_key(|&i| {
                sites[i]
                    .scheduler
                    .estimate_start(req.demand.nodes, req.demand.walltime, req.arrival)
                    .map_or(u64::MAX, SimTime::as_nanos)
            })
            .expect("candidates is non-empty")
    }
}

/// Data-locality: minimise the fabric transfer time of the campaign's
/// input from its home site; estimated queue start breaks ties (so two
/// equally-near sites still prefer the emptier queue).
struct DataLocality;

impl PlacementPolicy for DataLocality {
    fn name(&self) -> &'static str {
        PlacementPolicyKind::DataLocality.label()
    }

    fn place(
        &mut self,
        req: &PlacementRequest<'_>,
        candidates: &[usize],
        sites: &[Site],
        federation: &Federation,
    ) -> usize {
        candidates
            .iter()
            .copied()
            .min_by_key(|&i| {
                let move_nanos = federation
                    .estimate_transfer(req.data_home, &sites[i].spec.name, req.demand.input_gb)
                    .map_or(u64::MAX, |p| p.duration.as_nanos());
                let start_nanos = sites[i]
                    .scheduler
                    .estimate_start(req.demand.nodes, req.demand.walltime, req.arrival)
                    .map_or(u64::MAX, SimTime::as_nanos);
                (move_nanos, start_nanos)
            })
            .expect("candidates is non-empty")
    }
}

/// One campaign's placement outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlacementRecord {
    /// Campaign (shard) index.
    pub campaign: usize,
    /// Facility the campaign's job ultimately ran at.
    pub facility: String,
    /// Nodes requested.
    pub nodes: u64,
    /// Requested walltime, hours.
    pub walltime_hours: f64,
    /// Arrival at the federation, hours since epoch.
    pub arrival_hours: f64,
    /// When the batch job started, hours since epoch.
    pub start_hours: f64,
    /// Queue wait (start − federation arrival), hours. For re-routed
    /// campaigns this includes the time stranded in the drained site's
    /// queue, so `start_hours == arrival_hours + wait_hours` always.
    pub wait_hours: f64,
    /// Site the input data was staged from.
    pub data_home: String,
    /// Fabric transfer time for the input staging, seconds (includes the
    /// evacuation transfer when the campaign was re-routed).
    pub transfer_secs: f64,
    /// Whether an outage forced a re-route off the original facility.
    pub rerouted: bool,
}

/// Per-facility aggregate of a federated run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FacilityUsage {
    /// Facility name.
    pub name: String,
    /// Nodes the facility contributed.
    pub nodes: u64,
    /// Jobs that ran to completion here.
    pub jobs: usize,
    /// Node-hours of completed work.
    pub node_hours: f64,
    /// `node_hours / (nodes × makespan)` — fraction of the federation's
    /// wall-clock this facility's nodes spent busy (0 when it ran
    /// nothing).
    pub utilization: f64,
    /// Mean queue wait over this facility's completed jobs, hours —
    /// local to this facility's queue (time stranded at a drained site
    /// before re-routing is charged to the federation-level mean, not
    /// here).
    pub mean_wait_hours: f64,
    /// Input bytes staged to this facility over the fabric.
    pub bytes_in: u128,
    /// Whether the facility was drained by the outage.
    pub down: bool,
    /// Queued campaigns the outage re-routed away from this facility.
    pub rerouted_away: usize,
}

/// The aggregate outcome of a federated fleet run. A pure function of
/// `(space, FederatedConfig minus threads)` — byte-identical at any
/// thread count and across a checkpoint/resume.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FederatedReport {
    /// Master seed of the underlying fleet.
    pub master_seed: u64,
    /// Placement policy label.
    pub policy: String,
    /// Per-facility aggregates, in site-index order.
    pub facilities: Vec<FacilityUsage>,
    /// Per-campaign placements, in shard order.
    pub placements: Vec<PlacementRecord>,
    /// The injected outage, if one was configured.
    pub outage: Option<FacilityOutage>,
    /// Fabric transfers performed (staging + evacuations).
    pub transfers: u64,
    /// Fabric bytes moved.
    pub bytes_moved: u128,
    /// Mean queue wait across all placed campaigns, hours — measured
    /// from federation arrival to batch-job start, so re-routed
    /// campaigns' stranded time counts.
    pub mean_wait_hours: f64,
    /// Federation makespan: last arrival to last batch-job completion,
    /// hours since epoch.
    pub makespan_hours: f64,
    /// The fleet's scientific outcome (unchanged by placement: placement
    /// charges time and movement, never rewrites results).
    pub fleet: FleetReport,
    /// The federation-level event stream, in placement order: every
    /// placement, fabric transfer, and outage drain as
    /// [`CampaignEvent`]s — the same vocabulary campaign ledgers use, so
    /// one audit pipeline reads all three layers. Absent from
    /// pre-ledger reports, which decode as empty.
    #[serde(default)]
    pub events: Vec<CampaignEvent>,
}

/// Why a federated run could not place its campaigns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FederatedError {
    /// The federation has no sites at all.
    EmptyFederation,
    /// Two sites share a name — the data fabric dedupes sites by name,
    /// so duplicate names would silently merge two facilities' transfer
    /// accounting.
    DuplicateSite(String),
    /// No live facility can ever satisfy a campaign's node demand —
    /// either from the start (zero-capacity federation) or after an
    /// outage drained the only feasible site.
    NoCapacity {
        /// Campaign that could not be placed.
        campaign: usize,
        /// Nodes it asked for.
        nodes: u64,
    },
}

impl std::fmt::Display for FederatedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FederatedError::EmptyFederation => write!(f, "federation has no sites"),
            FederatedError::DuplicateSite(name) => {
                write!(f, "duplicate site name {name:?} in the federation")
            }
            FederatedError::NoCapacity { campaign, nodes } => write!(
                f,
                "no live facility can host campaign {campaign} ({nodes} nodes requested)"
            ),
        }
    }
}

impl std::error::Error for FederatedError {}

/// Why a federated resume was refused.
#[derive(Debug, Clone, PartialEq)]
pub enum FederatedResumeError {
    /// The checkpoint's placement signature does not match the config —
    /// the federation (sites, policy, arrivals, outage, demands) drifted.
    PlacementMismatch {
        /// Signature stored in the checkpoint.
        checkpoint: u64,
        /// Signature derived from the resuming config.
        config: u64,
    },
    /// The underlying fleet checkpoint refused to resume.
    Fleet(FleetResumeError),
    /// Placement itself failed (the config cannot place its campaigns).
    Placement(FederatedError),
}

impl std::fmt::Display for FederatedResumeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FederatedResumeError::PlacementMismatch { checkpoint, config } => write!(
                f,
                "placement signature mismatch: checkpoint {checkpoint:#x}, config {config:#x}"
            ),
            FederatedResumeError::Fleet(e) => write!(f, "fleet resume refused: {e}"),
            FederatedResumeError::Placement(e) => write!(f, "placement failed: {e}"),
        }
    }
}

impl std::error::Error for FederatedResumeError {}

/// A durable record of a partially executed federated fleet: the fleet
/// checkpoint (which campaigns committed) plus the placement signature
/// binding it to one exact federation.
///
/// Placement is cheap and pure, so it is *recomputed* on resume rather
/// than persisted — the signature guarantees the recomputation matches
/// what the interrupted run saw.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FederatedCheckpoint {
    /// [`FederatedConfig::placement_signature`] of the interrupted run.
    pub placement_signature: u64,
    /// The underlying fleet checkpoint.
    pub fleet: FleetCheckpoint,
}

/// Everything the placement pass produces (before fleet execution).
struct PlacementOutcome {
    records: Vec<PlacementRecord>,
    facilities: Vec<FacilityUsage>,
    outage: Option<FacilityOutage>,
    transfers: u64,
    bytes_moved: u128,
    mean_wait_hours: f64,
    makespan_hours: f64,
    events: Vec<CampaignEvent>,
}

/// Mutable state of the placement pass: live sites, the federation
/// (fabric accounting), per-campaign demands and accumulators.
struct PlacementState {
    sites: Vec<Site>,
    federation: Federation,
    demands: Vec<CampaignDemand>,
    placed_site: Vec<usize>,
    transfer_secs: Vec<f64>,
    rerouted: Vec<bool>,
    events: Vec<CampaignEvent>,
}

impl PlacementState {
    /// Place one campaign: pick among live, capacity-feasible sites,
    /// submit the batch job, stage the input data over the fabric from
    /// `data_from` (the campaign's home site, or the drained facility on
    /// an evacuation re-route). Emits the placement (and any transfer)
    /// into the federation's event stream.
    fn place_one(
        &mut self,
        campaign: usize,
        arrival: SimTime,
        data_from: &str,
        policy: &mut dyn PlacementPolicy,
        evacuation: bool,
    ) -> Result<(), FederatedError> {
        let demand = self.demands[campaign];
        let candidates: Vec<usize> = (0..self.sites.len())
            .filter(|&i| !self.sites[i].down && self.sites[i].spec.nodes >= demand.nodes)
            .collect();
        if candidates.is_empty() {
            return Err(FederatedError::NoCapacity {
                campaign,
                nodes: demand.nodes,
            });
        }
        let req = PlacementRequest {
            campaign,
            arrival,
            demand: &demand,
            data_home: data_from,
        };
        let chosen = policy.place(&req, &candidates, &self.sites, &self.federation);
        debug_assert!(candidates.contains(&chosen), "policy must pick a candidate");
        let site = &mut self.sites[chosen];
        let id = site
            .scheduler
            .submit(demand.nodes, demand.walltime, arrival);
        site.job_owner.insert(id, campaign);
        let dest = site.spec.name.clone();
        self.events.push(CampaignEvent::CampaignPlaced {
            campaign,
            facility: dest.clone().into(),
            nodes: demand.nodes,
            arrival,
            evacuation,
        });
        if dest != data_from {
            let plan = self
                .federation
                .transfer(data_from, &dest, demand.input_gb)
                .expect("federation fabric is connected");
            self.transfer_secs[campaign] += plan.duration.as_secs_f64();
            self.sites[chosen].bytes_in += (demand.input_gb * 1e9) as u128;
            self.events.push(CampaignEvent::DataTransferred {
                campaign,
                from: data_from.to_string().into(),
                to: dest.into(),
                gigabytes: demand.input_gb,
                duration: plan.duration,
                evacuation,
            });
        }
        self.placed_site[campaign] = chosen;
        Ok(())
    }

    /// Drain site `s` at `at` (the outage): running jobs complete, every
    /// queued job is re-routed through the policy to the survivors, with
    /// a data-evacuation transfer off the drained facility.
    fn drain_site(
        &mut self,
        s: usize,
        at: SimTime,
        policy: &mut dyn PlacementPolicy,
    ) -> Result<(), FederatedError> {
        if self.sites[s].down {
            return Ok(());
        }
        self.sites[s].down = true;
        self.sites[s].scheduler.advance_to(at);
        let orphans = self.sites[s].scheduler.drain_queued();
        self.sites[s].rerouted_away = orphans.len();
        let from = self.sites[s].spec.name.clone();
        self.events.push(CampaignEvent::OutageStruck {
            site: from.clone().into(),
            at,
            rerouted: orphans.len(),
        });
        for job in orphans {
            let campaign = *self.sites[s]
                .job_owner
                .get(&job.id)
                .expect("queued job was placed by us");
            self.rerouted[campaign] = true;
            self.place_one(campaign, at, &from, policy, true)?;
        }
        Ok(())
    }
}

/// The serial placement simulation. Pure function of the config; never
/// sees threads, wall-clock, or campaign results.
fn place_fleet(cfg: &FederatedConfig) -> Result<PlacementOutcome, FederatedError> {
    if cfg.sites.is_empty() {
        return Err(FederatedError::EmptyFederation);
    }
    let mut names = std::collections::BTreeSet::new();
    for s in &cfg.sites {
        if !names.insert(s.name.as_str()) {
            return Err(FederatedError::DuplicateSite(s.name.clone()));
        }
    }
    let standard = presets::standard_federation();
    let is_standard = cfg.sites.len() == standard.len()
        && cfg
            .sites
            .iter()
            .zip(&standard)
            .all(|(s, f)| s.name == f.name && s.kind == f.kind);
    let federation = if is_standard {
        Federation::standard()
    } else {
        Federation::assemble(
            cfg.sites
                .iter()
                .map(|s| Facility::new(s.name.clone(), s.kind))
                .collect(),
        )
    };

    let n = cfg.fleet.campaigns.len();
    let mut state = PlacementState {
        sites: cfg
            .sites
            .iter()
            .map(|s| Site {
                spec: s.clone(),
                scheduler: BatchScheduler::new(s.nodes),
                down: false,
                bytes_in: 0,
                job_owner: BTreeMap::new(),
                rerouted_away: 0,
            })
            .collect(),
        federation,
        demands: cfg
            .fleet
            .campaigns
            .iter()
            .enumerate()
            .map(|(i, c)| campaign_demand(i, c, cfg.sites.len()))
            .collect(),
        placed_site: vec![0; n],
        transfer_secs: vec![0.0; n],
        rerouted: vec![false; n],
        events: Vec::new(),
    };
    let mut policy = cfg.policy.build();
    let outage = cfg.outage();

    for i in 0..n {
        let arrival = cfg.arrival(i);
        // The outage strikes while placing campaign `after_placements`:
        // drain the facility and re-route its queued campaigns first, so
        // this and later placements see the reduced federation.
        if let Some(o) = outage {
            if i == o.after_placements as usize && (o.site as usize) < state.sites.len() {
                state.drain_site(o.site as usize, arrival, policy.as_mut())?;
            }
        }
        let home = state.demands[i].data_home.min(cfg.sites.len() - 1);
        let home_name = cfg.sites[home].name.clone();
        state.place_one(i, arrival, &home_name, policy.as_mut(), false)?;
    }

    // Drain every scheduler and fold the finished records.
    let mut makespan = if n == 0 {
        SimTime::ZERO
    } else {
        cfg.arrival(n - 1)
    };
    for site in &mut state.sites {
        let end = site.scheduler.drain();
        if !site.scheduler.finished().is_empty() {
            makespan = makespan.max(end);
        }
    }

    let mut start_hours: Vec<f64> = vec![0.0; n];
    let mut wait_hours: Vec<f64> = vec![0.0; n];
    for site in &state.sites {
        for f in site.scheduler.finished() {
            // A re-routed campaign leaves no finished record on the downed
            // site (its job was drained from the queue), so each campaign
            // resolves to exactly one finished job federation-wide.
            let campaign = site.job_owner[&f.job.id];
            start_hours[campaign] = f.started.as_hours();
            // Wait is measured from federation arrival, not the last
            // submission: a re-routed campaign's time stranded in the
            // drained site's queue is real waiting, so the invariant
            // `start == arrival + wait` holds for every placement.
            wait_hours[campaign] = f.started.saturating_since(cfg.arrival(campaign)).as_hours();
        }
    }

    let makespan_hours = makespan.as_hours();
    let facilities: Vec<FacilityUsage> = state
        .sites
        .iter()
        .map(|site| {
            let finished = site.scheduler.finished();
            // `+ 0.0` normalises the empty sum's IEEE `-0.0` so idle
            // facilities serialize as plain `0.0`.
            let node_hours: f64 = finished
                .iter()
                .map(|f| f.job.nodes as f64 * f.ended.saturating_since(f.started).as_hours())
                .sum::<f64>()
                + 0.0;
            let capacity_hours = site.spec.nodes as f64 * makespan_hours;
            FacilityUsage {
                name: site.spec.name.clone(),
                nodes: site.spec.nodes,
                jobs: finished.len(),
                node_hours,
                utilization: if capacity_hours > 0.0 {
                    node_hours / capacity_hours
                } else {
                    0.0
                },
                mean_wait_hours: site.scheduler.mean_wait_hours(),
                bytes_in: site.bytes_in,
                down: site.down,
                rerouted_away: site.rerouted_away,
            }
        })
        .collect();

    let records: Vec<PlacementRecord> = (0..n)
        .map(|i| PlacementRecord {
            campaign: i,
            facility: state.sites[state.placed_site[i]].spec.name.clone(),
            nodes: state.demands[i].nodes,
            walltime_hours: state.demands[i].walltime.as_hours(),
            arrival_hours: cfg.arrival(i).as_hours(),
            start_hours: start_hours[i],
            wait_hours: wait_hours[i],
            data_home: cfg.sites[state.demands[i].data_home.min(cfg.sites.len() - 1)]
                .name
                .clone(),
            transfer_secs: state.transfer_secs[i],
            rerouted: state.rerouted[i],
        })
        .collect();

    let mean_wait_hours = if n == 0 {
        0.0
    } else {
        wait_hours.iter().sum::<f64>() / n as f64
    };

    Ok(PlacementOutcome {
        records,
        facilities,
        outage,
        transfers: state.federation.fabric().transfers(),
        bytes_moved: state.federation.fabric().bytes_moved(),
        mean_wait_hours,
        makespan_hours,
        events: state.events,
    })
}

fn assemble_report(
    cfg: &FederatedConfig,
    outcome: PlacementOutcome,
    fleet: FleetReport,
) -> FederatedReport {
    FederatedReport {
        master_seed: cfg.fleet.master_seed,
        policy: cfg.policy.label().to_string(),
        facilities: outcome.facilities,
        placements: outcome.records,
        outage: outcome.outage,
        transfers: outcome.transfers,
        bytes_moved: outcome.bytes_moved,
        mean_wait_hours: outcome.mean_wait_hours,
        makespan_hours: outcome.makespan_hours,
        fleet,
        events: outcome.events,
    }
}

/// Run a fleet of campaigns through a federation: place every campaign
/// onto a facility, charge queue waits and data movement, execute the
/// fleet with the thread-invariant executor, and aggregate.
///
/// The report is byte-identical at any thread count.
pub fn run_campaign_fleet_federated(
    space: &MaterialsSpace,
    cfg: &FederatedConfig,
) -> Result<FederatedReport, FederatedError> {
    let outcome = place_fleet(cfg)?;
    let fleet = run_campaign_fleet(space, &cfg.fleet);
    Ok(assemble_report(cfg, outcome, fleet))
}

/// Run a federated fleet with full event recording: the report embeds
/// the federation-level event stream as usual, and every campaign's own
/// ledger comes back merged in shard order — the complete audit picture
/// across all three layers (campaign decisions, fleet aggregation,
/// federation placement).
pub fn run_campaign_fleet_federated_recorded(
    space: &MaterialsSpace,
    cfg: &FederatedConfig,
) -> Result<(FederatedReport, FleetLedger), FederatedError> {
    let outcome = place_fleet(cfg)?;
    let (fleet, ledger) = run_campaign_fleet_recorded(space, &cfg.fleet);
    Ok((assemble_report(cfg, outcome, fleet), ledger))
}

/// Run a federated fleet until `max_completions` campaigns have
/// committed, then die — the federated analogue of
/// [`run_campaign_fleet_until`]. Placement feasibility is validated up
/// front so a checkpoint is only ever written for a placeable federation.
pub fn run_campaign_fleet_federated_until(
    space: &MaterialsSpace,
    cfg: &FederatedConfig,
    max_completions: usize,
) -> Result<FederatedCheckpoint, FederatedError> {
    place_fleet(cfg)?;
    let fleet = run_campaign_fleet_until(space, &cfg.fleet, max_completions);
    Ok(FederatedCheckpoint {
        placement_signature: cfg.placement_signature(),
        fleet,
    })
}

/// Resume an interrupted federated fleet: re-run only the campaigns that
/// never committed, recompute the (pure, signature-validated) placement,
/// and aggregate. Byte-identical to the uninterrupted
/// [`run_campaign_fleet_federated`] report — at any thread count on
/// either side of the crash.
pub fn resume_campaign_fleet_federated(
    space: &MaterialsSpace,
    cfg: &FederatedConfig,
    checkpoint: &FederatedCheckpoint,
) -> Result<FederatedReport, FederatedResumeError> {
    let config_sig = cfg.placement_signature();
    if checkpoint.placement_signature != config_sig {
        return Err(FederatedResumeError::PlacementMismatch {
            checkpoint: checkpoint.placement_signature,
            config: config_sig,
        });
    }
    let outcome = place_fleet(cfg).map_err(FederatedResumeError::Placement)?;
    let fleet = resume_campaign_fleet(space, &cfg.fleet, &checkpoint.fleet)
        .map_err(FederatedResumeError::Fleet)?;
    Ok(assemble_report(cfg, outcome, fleet))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Cell;
    use evoflow_sm::IntelligenceLevel;

    fn space() -> MaterialsSpace {
        MaterialsSpace::generate(3, 8, 20260726)
    }

    fn fleet(threads: usize) -> FleetConfig {
        let mut f = FleetConfig::new(77);
        f.horizon = SimDuration::from_days(1);
        f.threads = threads;
        f.push_cell(Cell::new(IntelligenceLevel::Static, Pattern::Single), 2);
        f.push_cell(
            Cell::new(IntelligenceLevel::Intelligent, Pattern::Swarm { k: 4 }),
            2,
        );
        f.push_cell(Cell::new(IntelligenceLevel::Learning, Pattern::Mesh), 2);
        f
    }

    fn config(policy: PlacementPolicyKind, threads: usize) -> FederatedConfig {
        FederatedConfig::standard(fleet(threads), policy)
    }

    #[test]
    fn federated_report_is_thread_count_invariant() {
        let space = space();
        for policy in PlacementPolicyKind::all() {
            let one = run_campaign_fleet_federated(&space, &config(policy, 1)).unwrap();
            let two = run_campaign_fleet_federated(&space, &config(policy, 2)).unwrap();
            let four = run_campaign_fleet_federated(&space, &config(policy, 4)).unwrap();
            assert_eq!(one, two, "{policy:?}");
            assert_eq!(one, four, "{policy:?}");
        }
    }

    #[test]
    fn every_campaign_is_placed_exactly_once() {
        let space = space();
        let report =
            run_campaign_fleet_federated(&space, &config(PlacementPolicyKind::RoundRobin, 1))
                .unwrap();
        assert_eq!(report.placements.len(), 6);
        for (i, p) in report.placements.iter().enumerate() {
            assert_eq!(p.campaign, i);
            assert!(report.facilities.iter().any(|f| f.name == p.facility));
            assert!(p.start_hours >= p.arrival_hours);
        }
        let placed_jobs: usize = report.facilities.iter().map(|f| f.jobs).sum();
        assert_eq!(placed_jobs, 6);
    }

    #[test]
    fn least_wait_picks_the_emptier_queue() {
        // Two identical sites; all work arrives at once. Least-wait must
        // alternate between them instead of piling onto one.
        let mut f = FleetConfig::new(3);
        f.horizon = SimDuration::from_days(1);
        f.threads = 1;
        f.push_cell(Cell::new(IntelligenceLevel::Static, Pattern::Mesh), 4);
        let sites = vec![
            SiteSpec::new("site-a", FacilityKind::Hpc).with_nodes(24),
            SiteSpec::new("site-b", FacilityKind::Hpc).with_nodes(24),
        ];
        let mut cfg = FederatedConfig::new(f, PlacementPolicyKind::LeastWait, sites);
        cfg.inter_arrival = SimDuration::ZERO;
        let report = run_campaign_fleet_federated(&space(), &cfg).unwrap();
        let a = report
            .placements
            .iter()
            .filter(|p| p.facility == "site-a")
            .count();
        let b = report
            .placements
            .iter()
            .filter(|p| p.facility == "site-b")
            .count();
        assert_eq!((a, b), (2, 2), "least-wait must balance identical sites");
    }

    #[test]
    fn data_locality_stays_home_when_possible() {
        // One site holds the data and has room: data-locality places
        // there; a zero-length transfer is charged nothing.
        let mut f = FleetConfig::new(5);
        f.horizon = SimDuration::from_days(1);
        f.threads = 1;
        f.push_cell(Cell::new(IntelligenceLevel::Static, Pattern::Single), 1);
        let sites = vec![
            SiteSpec::new("near", FacilityKind::Hpc),
            SiteSpec::new("far", FacilityKind::Cloud),
        ];
        let cfg = FederatedConfig::new(f, PlacementPolicyKind::DataLocality, sites);
        let report = run_campaign_fleet_federated(&space(), &cfg).unwrap();
        assert_eq!(report.placements[0].data_home, "near");
        assert_eq!(report.placements[0].facility, "near");
        assert_eq!(report.placements[0].transfer_secs, 0.0);
        assert_eq!(report.transfers, 0);
    }

    #[test]
    fn zero_capacity_federation_is_a_typed_error() {
        let sites = vec![
            SiteSpec::new("husk-a", FacilityKind::Hpc).with_nodes(0),
            SiteSpec::new("husk-b", FacilityKind::Cloud).with_nodes(0),
        ];
        let cfg = FederatedConfig::new(fleet(1), PlacementPolicyKind::RoundRobin, sites);
        assert_eq!(
            run_campaign_fleet_federated(&space(), &cfg).unwrap_err(),
            FederatedError::NoCapacity {
                campaign: 0,
                nodes: 4
            }
        );
        let empty = FederatedConfig::new(fleet(1), PlacementPolicyKind::RoundRobin, Vec::new());
        assert_eq!(
            run_campaign_fleet_federated(&space(), &empty).unwrap_err(),
            FederatedError::EmptyFederation
        );
    }

    #[test]
    fn duplicate_site_names_are_a_typed_error() {
        let sites = vec![
            SiteSpec::new("twin", FacilityKind::Hpc),
            SiteSpec::new("twin", FacilityKind::Cloud),
        ];
        let cfg = FederatedConfig::new(fleet(1), PlacementPolicyKind::RoundRobin, sites);
        assert_eq!(
            run_campaign_fleet_federated(&space(), &cfg).unwrap_err(),
            FederatedError::DuplicateSite("twin".into())
        );
    }

    /// A small, contended federation where batch queues actually form:
    /// two 24-node sites, every campaign demanding all 24 nodes at t=0.
    fn contended_config(policy: PlacementPolicyKind) -> FederatedConfig {
        let mut f = FleetConfig::new(13);
        f.horizon = SimDuration::from_days(1);
        f.threads = 1;
        f.push_cell(Cell::new(IntelligenceLevel::Static, Pattern::Mesh), 8);
        let sites = vec![
            SiteSpec::new("site-a", FacilityKind::Hpc).with_nodes(24),
            SiteSpec::new("site-b", FacilityKind::Hpc).with_nodes(24),
        ];
        let mut cfg = FederatedConfig::new(f, policy, sites);
        cfg.inter_arrival = SimDuration::ZERO;
        cfg
    }

    #[test]
    fn outage_reroutes_unstarted_campaigns() {
        let space = space();
        // Find seeds whose outage actually re-routes queued work, then
        // check the invariants on those runs.
        let mut hit = false;
        for seed in 0..32u64 {
            let cfg = contended_config(PlacementPolicyKind::RoundRobin).with_outage_seed(seed);
            let report = run_campaign_fleet_federated(&space, &cfg).unwrap();
            let outage = report.outage.expect("outage derives for 8 campaigns");
            let downed = &report.facilities[outage.site as usize];
            assert!(downed.down);
            let rerouted: Vec<_> = report.placements.iter().filter(|p| p.rerouted).collect();
            assert_eq!(rerouted.len(), downed.rerouted_away);
            if !rerouted.is_empty() {
                hit = true;
                for p in &rerouted {
                    assert_ne!(
                        p.facility, downed.name,
                        "re-routed campaign may not land on the downed site"
                    );
                    assert!(
                        p.transfer_secs > 0.0,
                        "evacuation must charge a fabric transfer"
                    );
                }
            }
            // No campaign placed at-or-after the outage lands on the
            // downed facility.
            for p in &report.placements[outage.after_placements as usize..] {
                assert_ne!(p.facility, downed.name);
            }
        }
        assert!(hit, "no seed in 0..32 produced a re-route");
    }

    #[test]
    fn outage_run_reports_are_deterministic() {
        let space = space();
        let cfg = config(PlacementPolicyKind::DataLocality, 2).with_outage_seed(11);
        let a = run_campaign_fleet_federated(&space, &cfg).unwrap();
        let b = run_campaign_fleet_federated(&space, &cfg).unwrap();
        assert_eq!(a, b);
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
    }

    #[test]
    fn killed_federated_fleet_resumes_to_identical_report() {
        let space = space();
        let cfg = config(PlacementPolicyKind::LeastWait, 2).with_outage_seed(5);
        let uninterrupted = run_campaign_fleet_federated(&space, &cfg).unwrap();
        for kill_after in [0usize, 1, 3, 6] {
            let ckpt = run_campaign_fleet_federated_until(&space, &cfg, kill_after).unwrap();
            let resumed = resume_campaign_fleet_federated(&space, &cfg, &ckpt).unwrap();
            assert_eq!(resumed, uninterrupted, "kill_after={kill_after}");
        }
    }

    #[test]
    fn checkpoint_refuses_a_drifted_federation() {
        let space = space();
        let cfg = config(PlacementPolicyKind::RoundRobin, 1);
        let ckpt = run_campaign_fleet_federated_until(&space, &cfg, 1).unwrap();

        let other_policy = config(PlacementPolicyKind::LeastWait, 1);
        assert!(matches!(
            resume_campaign_fleet_federated(&space, &other_policy, &ckpt),
            Err(FederatedResumeError::PlacementMismatch { .. })
        ));

        let mut other_sites = config(PlacementPolicyKind::RoundRobin, 1);
        other_sites.sites[0].nodes += 1;
        assert!(matches!(
            resume_campaign_fleet_federated(&space, &other_sites, &ckpt),
            Err(FederatedResumeError::PlacementMismatch { .. })
        ));
    }

    #[test]
    fn demand_is_a_pure_function_of_config() {
        let cfg = CampaignConfig::for_cell(
            Cell::new(IntelligenceLevel::Intelligent, Pattern::Swarm { k: 4 }),
            9,
        );
        let a = campaign_demand(3, &cfg, 5);
        let b = campaign_demand(3, &cfg, 5);
        assert_eq!(a, b);
        assert_eq!(a.nodes, 32);
        assert_eq!(a.walltime, SimDuration::from_hours(5));
        assert_eq!(a.data_home, 3);
        // Different index rotates the data home only.
        let c = campaign_demand(7, &cfg, 5);
        assert_eq!(c.data_home, 2);
        assert_eq!(c.nodes, a.nodes);
    }

    #[test]
    fn placement_signature_tracks_placement_inputs() {
        let base = config(PlacementPolicyKind::RoundRobin, 1);
        assert_eq!(
            base.placement_signature(),
            config(PlacementPolicyKind::RoundRobin, 4).placement_signature(),
            "threads must not affect the signature"
        );
        assert_ne!(
            base.placement_signature(),
            config(PlacementPolicyKind::LeastWait, 1).placement_signature()
        );
        assert_ne!(
            base.placement_signature(),
            base.clone().with_outage_seed(1).placement_signature()
        );
        let mut wider = config(PlacementPolicyKind::RoundRobin, 1);
        wider.inter_arrival = SimDuration::from_hours(2);
        assert_ne!(base.placement_signature(), wider.placement_signature());
    }

    #[test]
    fn fleet_outcome_is_unchanged_by_placement() {
        // Placement charges time and movement; it must never rewrite the
        // scientific results of the fleet itself.
        let space = space();
        let plain = run_campaign_fleet(&space, &fleet(1));
        let federated =
            run_campaign_fleet_federated(&space, &config(PlacementPolicyKind::LeastWait, 1))
                .unwrap();
        assert_eq!(federated.fleet, plain);
    }
}
