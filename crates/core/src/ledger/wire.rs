//! The compact binary ledger wire format (`EVWL`), and the encoding
//! enum that keeps legacy JSON ledgers decodable forever.
//!
//! The ROADMAP names ledger serialization as the bottleneck for
//! million-campaign fleets: a ~420-event campaign stream costs ~50 KB
//! as JSON. This module replaces those bytes — without touching the
//! event vocabulary or the replay semantics — with a length-prefixed
//! binary encoding that is **≥5× smaller** (gated in `bench_ledger`)
//! and **streamable**, so [`replay_ledger_bytes`] folds a ledger of any
//! length in bounded memory: one decoded event at a time, never a
//! materialized `Vec<CampaignEvent>`.
//!
//! ## File layout
//!
//! ```text
//! magic  b"EVWL"            4 bytes
//! version u8 = 1
//! kind    u8                0 campaign · 1 fleet · 2 fleet checkpoint · 3 service checkpoint
//! body                      kind-specific, see below
//! ```
//!
//! A **campaign body** (kind 0, also embedded inside every other kind):
//!
//! ```text
//! header   varint segment_count · varint total_events · crc32(header)
//! segment* varint seg_index · varint event_count
//!          varint snap_experiments · varint snap_hits · varint snap_tokens
//!          varint payload_len · payload · crc32(segment)
//! ```
//!
//! Segments hold at most [`SEGMENT_EVENTS`] records. Each opens with a
//! **snapshot** of the replay counters *before* its first event
//! (experiments run, hits, tokens), so the reader cross-checks
//! cumulative progress at every segment boundary — a tampered or
//! spliced segment is refused at segment granularity
//! ([`WireError::SnapshotMismatch`] / [`WireError::SegmentChecksum`])
//! without decoding past it. Within a segment, each record is:
//!
//! ```text
//! varint body_len · body (tag u8 + fields) · u16 fnv-fold
//! ```
//!
//! The fold is the low 16 bits of an xor-folded FNV-1a64 state that
//! **chains across records** — record *n*'s fold commits to every byte
//! of records `0..=n`, so an edit anywhere poisons all later folds too.
//! The segment CRC32 (IEEE, reflected) independently covers the whole
//! segment span; CRC32 detects every single-bit error outright.
//!
//! Repeated strings (`cell_label`, `planner`, `facility`, `tenant`,
//! fixed-policy `rationale`s) are **interned**: the first occurrence is
//! written literally and assigned the next table id; every repeat costs
//! one varint. Long free-text `rationale`s that are exact single-space
//! word joins are **tokenized** — each word interned individually — so
//! generated prose drawn from a small lexicon costs about a byte per
//! word. Scalars are LEB128 varints, floats are 8-byte LE bit
//! patterns (bit-exact round-trip, replay stays byte-identical), and
//! sim clocks are varint nanoseconds.
//!
//! Container kinds (1–3) put every scalar field — seeds, committed
//! reports, presence flags, embedded-body lengths — in one CRC32-guarded
//! *section*, followed by the embedded campaign bodies (each
//! self-validating). Every byte of every kind is therefore under a
//! checksum: a single flipped bit or a truncated segment anywhere is
//! refused with a typed [`WireError`].
//!
//! ## Migration story
//!
//! [`LedgerEncoding::detect`] sniffs the 4-byte magic: anything else is
//! treated as legacy JSON and decoded through the unchanged serde path,
//! pinned byte-for-byte by the snapshot tests in
//! `tests/integration_serde.rs`. Writers choose per call —
//! `ledger.to_bytes(LedgerEncoding::Binary)` — so archives mix freely.

use super::{CampaignEvent, CampaignLedger, FleetLedger, ReplayError, ReplayFold, ReplayOutcome};
use crate::campaign::CampaignReport;
use crate::fleet::{
    resume_campaign_fleet_recorded, FleetCheckpoint, FleetConfig, FleetLedgerCheckpoint,
    FleetReport, FleetResumeError,
};
use crate::service::{
    resume_service, RejectReason, ServiceCheckpoint, ServiceConfig, ServiceReport,
    ServiceResumeError,
};
use crate::MaterialsSpace;
use serde::{Deserialize, Serialize};
use std::borrow::Cow;
use std::collections::HashMap;

/// File magic for all binary ledger artifacts.
pub const MAGIC: [u8; 4] = *b"EVWL";
/// Current wire version.
pub const VERSION: u8 = 1;
/// Maximum records per segment — the compaction granularity: replay
/// validates counters this often, and corruption is localized to one
/// segment's span.
pub const SEGMENT_EVENTS: usize = 128;

const KIND_CAMPAIGN: u8 = 0;
const KIND_FLEET: u8 = 1;
const KIND_FLEET_CHECKPOINT: u8 = 2;
const KIND_SERVICE_CHECKPOINT: u8 = 3;

/// How a ledger artifact is serialized.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LedgerEncoding {
    /// The legacy human-readable serde/JSON encoding. Never removed:
    /// every ledger ever archived stays decodable.
    Json,
    /// The compact `EVWL` binary encoding defined by this module.
    Binary,
}

impl LedgerEncoding {
    /// Sniff the encoding of serialized ledger bytes. Binary artifacts
    /// always start with the 4-byte [`MAGIC`]; anything else (including
    /// truncated fragments) is treated as legacy JSON.
    pub fn detect(bytes: &[u8]) -> LedgerEncoding {
        if bytes.len() >= 4 && bytes[..4] == MAGIC {
            LedgerEncoding::Binary
        } else {
            LedgerEncoding::Json
        }
    }
}

/// Why serialized ledger bytes were refused before (or while) decoding.
///
/// Every variant is a *refusal*: the bytes are never partially trusted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer does not start with the `EVWL` magic (and was asked
    /// to decode as binary).
    BadMagic,
    /// The version byte is newer than this reader understands.
    UnsupportedVersion(u8),
    /// The artifact is a different kind than the caller asked for
    /// (e.g. a fleet file handed to the campaign decoder).
    WrongKind {
        /// Kind byte the decoder expected.
        expected: u8,
        /// Kind byte found in the file.
        found: u8,
    },
    /// The body header's CRC32 does not match its bytes.
    HeaderChecksum,
    /// A container section's CRC32 does not match its bytes.
    SectionChecksum,
    /// The buffer ended mid-structure.
    UnexpectedEnd {
        /// Byte offset at which input ran out.
        at: usize,
    },
    /// A varint ran past 10 bytes (no valid u64 does).
    VarintOverflow {
        /// Byte offset of the offending varint.
        at: usize,
    },
    /// A segment's declared index disagrees with its position.
    SegmentOutOfOrder {
        /// Segment ordinal expected next.
        segment: u64,
        /// Index the segment declared.
        declared: u64,
    },
    /// A segment declares zero events (the writer never emits one).
    EmptySegment {
        /// Offending segment ordinal.
        segment: u64,
    },
    /// A segment's CRC32 does not match its bytes.
    SegmentChecksum {
        /// Offending segment ordinal.
        segment: u64,
    },
    /// A segment's opening counter snapshot disagrees with the replayed
    /// stream so far — the segment was spliced from another ledger.
    SnapshotMismatch {
        /// Offending segment ordinal.
        segment: u64,
        /// Which counter disagreed.
        field: &'static str,
    },
    /// A record's chained FNV fold does not match the stream.
    RecordChecksum {
        /// Segment holding the record.
        segment: u64,
        /// Record ordinal within the segment.
        record: u64,
    },
    /// A record's declared length disagrees with its decoded fields, or
    /// records overran the segment payload.
    RecordOverrun {
        /// Segment holding the record.
        segment: u64,
        /// Record ordinal within the segment.
        record: u64,
    },
    /// An unknown event tag.
    BadTag {
        /// The tag byte.
        tag: u8,
    },
    /// An interned-string id pointing outside the table built so far.
    BadInternId {
        /// The offending 1-based id.
        id: u64,
    },
    /// A string payload is not valid UTF-8.
    BadUtf8,
    /// An unknown free-text encoding flag (not literal/tokenized).
    BadTextFlag {
        /// The flag byte.
        flag: u8,
    },
    /// An unknown [`RejectReason`] code.
    BadReason {
        /// The code byte.
        code: u8,
    },
    /// The body decoded a different number of events than its header
    /// declared.
    EventCountMismatch {
        /// Count the header declared.
        declared: u64,
        /// Events actually decoded.
        decoded: u64,
    },
    /// Bytes remained after the last declared structure.
    TrailingBytes {
        /// Offset of the first surplus byte.
        at: usize,
    },
    /// Legacy-JSON decode failure (the bytes carried no binary magic).
    Json(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::BadMagic => write!(f, "missing EVWL magic"),
            WireError::UnsupportedVersion(v) => write!(f, "unsupported wire version {v}"),
            WireError::WrongKind { expected, found } => {
                write!(f, "wrong artifact kind: expected {expected}, found {found}")
            }
            WireError::HeaderChecksum => write!(f, "header checksum mismatch"),
            WireError::SectionChecksum => write!(f, "section checksum mismatch"),
            WireError::UnexpectedEnd { at } => write!(f, "input truncated at byte {at}"),
            WireError::VarintOverflow { at } => write!(f, "varint overflow at byte {at}"),
            WireError::SegmentOutOfOrder { segment, declared } => {
                write!(f, "segment {segment} declares index {declared}")
            }
            WireError::EmptySegment { segment } => write!(f, "segment {segment} declares 0 events"),
            WireError::SegmentChecksum { segment } => {
                write!(f, "segment {segment} checksum mismatch")
            }
            WireError::SnapshotMismatch { segment, field } => {
                write!(f, "segment {segment} snapshot disagrees on {field}")
            }
            WireError::RecordChecksum { segment, record } => {
                write!(f, "record {record} of segment {segment} checksum mismatch")
            }
            WireError::RecordOverrun { segment, record } => {
                write!(f, "record {record} of segment {segment} length mismatch")
            }
            WireError::BadTag { tag } => write!(f, "unknown event tag {tag}"),
            WireError::BadInternId { id } => write!(f, "interned string id {id} out of range"),
            WireError::BadUtf8 => write!(f, "string payload is not UTF-8"),
            WireError::BadTextFlag { flag } => {
                write!(f, "unknown free-text encoding flag {flag}")
            }
            WireError::BadReason { code } => write!(f, "unknown reject-reason code {code}"),
            WireError::EventCountMismatch { declared, decoded } => {
                write!(f, "header declared {declared} events, decoded {decoded}")
            }
            WireError::TrailingBytes { at } => write!(f, "trailing bytes at offset {at}"),
            WireError::Json(msg) => write!(f, "legacy JSON decode failed: {msg}"),
        }
    }
}

impl std::error::Error for WireError {}

// ---- primitives -------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE 802.3, reflected). Detects every single-bit error.
fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC32_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv_absorb(mut state: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        state ^= b as u64;
        state = state.wrapping_mul(FNV_PRIME);
    }
    state
}

fn fnv_fold16(state: u64) -> u16 {
    let mut h = state;
    h ^= h >> 32;
    h ^= h >> 16;
    (h & 0xFFFF) as u16
}

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            return;
        }
        out.push(b | 0x80);
    }
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn put_bool(out: &mut Vec<u8>, v: bool) {
    out.push(v as u8);
}

fn put_opt_f64(out: &mut Vec<u8>, v: Option<f64>) {
    match v {
        None => out.push(0),
        Some(x) => {
            out.push(1);
            put_f64(out, x);
        }
    }
}

/// Byte cursor over a slice; every read is bounds-checked into a typed
/// refusal.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::UnexpectedEnd { at: self.buf.len() });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn varint(&mut self) -> Result<u64, WireError> {
        let at = self.pos;
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let b = self.u8()?;
            if shift == 63 && b > 1 {
                return Err(WireError::VarintOverflow { at });
            }
            v |= u64::from(b & 0x7F) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
            if shift > 63 {
                return Err(WireError::VarintOverflow { at });
            }
        }
    }

    fn f64(&mut self) -> Result<f64, WireError> {
        let b = self.take(8)?;
        Ok(f64::from_bits(u64::from_le_bytes(b.try_into().unwrap())))
    }

    fn bool(&mut self) -> Result<bool, WireError> {
        Ok(self.u8()? != 0)
    }

    fn opt_f64(&mut self) -> Result<Option<f64>, WireError> {
        if self.u8()? == 0 {
            Ok(None)
        } else {
            Ok(Some(self.f64()?))
        }
    }

    fn u32_le(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes(b.try_into().unwrap()))
    }
}

// ---- string interning -------------------------------------------------------

/// Encode-side intern table: first occurrence writes `0 · len · bytes`
/// and claims the next 1-based id; repeats write just the id. Ids are
/// assigned in order of first use, so the byte stream is a pure
/// function of the event sequence.
#[derive(Default)]
struct InternWriter {
    ids: HashMap<String, u64>,
    hits: u64,
    misses: u64,
}

impl InternWriter {
    fn put(&mut self, out: &mut Vec<u8>, s: &str) {
        if let Some(&id) = self.ids.get(s) {
            self.hits += 1;
            put_varint(out, id);
        } else {
            self.misses += 1;
            let id = self.ids.len() as u64 + 1;
            self.ids.insert(s.to_string(), id);
            put_varint(out, 0);
            put_varint(out, s.len() as u64);
            out.extend_from_slice(s.as_bytes());
        }
    }

    /// Free-text encoding for fields like generated `rationale`s: long
    /// single-space-joined strings are split and each word interned
    /// (flag 1 · varint word count · one intern ref per word), which
    /// collapses simulated-LLM prose drawn from a small lexicon to about
    /// a byte per word. Anything short, already whole-interned, or not
    /// exactly word-join shaped stays a whole-string intern (flag 0),
    /// so the round trip is lossless either way.
    fn put_text(&mut self, out: &mut Vec<u8>, s: &str) {
        if !self.ids.contains_key(s) && s.len() > 24 && s.contains(' ') {
            let words: Vec<&str> = s.split(' ').collect();
            if words.iter().all(|w| !w.is_empty()) {
                out.push(1);
                put_varint(out, words.len() as u64);
                for w in words {
                    self.put(out, w);
                }
                return;
            }
        }
        out.push(0);
        self.put(out, s);
    }
}

/// Decode-side intern table, rebuilt in stream order.
#[derive(Default)]
struct InternReader {
    table: Vec<String>,
}

impl InternReader {
    fn get(&mut self, cur: &mut Cursor<'_>) -> Result<String, WireError> {
        let id = cur.varint()?;
        if id == 0 {
            let len = cur.varint()? as usize;
            let bytes = cur.take(len)?;
            let s = std::str::from_utf8(bytes).map_err(|_| WireError::BadUtf8)?;
            self.table.push(s.to_string());
            Ok(s.to_string())
        } else {
            self.table
                .get(id as usize - 1)
                .cloned()
                .ok_or(WireError::BadInternId { id })
        }
    }

    /// Decode a [`InternWriter::put_text`] field: flag 0 is a whole-string
    /// intern ref, flag 1 a word count followed by interned words to
    /// rejoin with single spaces.
    fn get_text(&mut self, cur: &mut Cursor<'_>) -> Result<String, WireError> {
        match cur.u8()? {
            0 => self.get(cur),
            1 => {
                let count = cur.varint()? as usize;
                let mut words = Vec::with_capacity(count.min(1024));
                for _ in 0..count {
                    words.push(self.get(cur)?);
                }
                Ok(words.join(" "))
            }
            flag => Err(WireError::BadTextFlag { flag }),
        }
    }
}

// ---- event codec ------------------------------------------------------------

fn reason_code(r: RejectReason) -> u8 {
    match r {
        RejectReason::UnknownTenant => 0,
        RejectReason::QueueFull => 1,
        RejectReason::AdmissionCapExhausted => 2,
    }
}

fn reason_from_code(code: u8) -> Result<RejectReason, WireError> {
    match code {
        0 => Ok(RejectReason::UnknownTenant),
        1 => Ok(RejectReason::QueueFull),
        2 => Ok(RejectReason::AdmissionCapExhausted),
        _ => Err(WireError::BadReason { code }),
    }
}

/// Tags are the declaration order of [`CampaignEvent`]'s variants and
/// are frozen: new variants append, existing tags never renumber.
fn encode_event(out: &mut Vec<u8>, strings: &mut InternWriter, event: &CampaignEvent) {
    match event {
        CampaignEvent::CampaignStarted {
            cell_label,
            seed,
            planner,
            lanes,
            horizon,
            threshold,
            max_experiments,
            records_knowledge,
        } => {
            out.push(0);
            strings.put(out, cell_label);
            put_varint(out, *seed);
            strings.put(out, planner);
            put_varint(out, *lanes as u64);
            put_varint(out, horizon.as_nanos());
            put_f64(out, *threshold);
            put_varint(out, *max_experiments);
            put_bool(out, *records_knowledge);
        }
        CampaignEvent::IterationStarted {
            lane,
            at,
            decision_ready,
        } => {
            out.push(1);
            put_varint(out, *lane as u64);
            put_varint(out, at.as_nanos());
            put_varint(out, decision_ready.as_nanos());
        }
        CampaignEvent::CandidateProposed {
            lane,
            params,
            rationale,
            confidence,
            hallucinated,
        } => {
            out.push(2);
            put_varint(out, *lane as u64);
            put_varint(out, params.len() as u64);
            for p in params {
                put_f64(out, *p);
            }
            strings.put_text(out, rationale);
            put_f64(out, *confidence);
            put_bool(out, *hallucinated);
        }
        CampaignEvent::ExecutionScheduled {
            lane,
            batch,
            duration,
            done_at,
        } => {
            out.push(3);
            put_varint(out, *lane as u64);
            put_varint(out, *batch as u64);
            put_varint(out, duration.as_nanos());
            put_varint(out, done_at.as_nanos());
        }
        CampaignEvent::ResultObserved {
            lane,
            experiment,
            score,
            hit,
            peak,
            tokens_in,
            tokens_out,
        } => {
            out.push(4);
            put_varint(out, *lane as u64);
            put_varint(out, *experiment);
            put_f64(out, *score);
            put_bool(out, *hit);
            put_varint(out, peak.map_or(0, |p| p as u64 + 1));
            put_varint(out, *tokens_in);
            put_varint(out, *tokens_out);
        }
        CampaignEvent::GateDecision {
            lane,
            rejected_total,
        } => {
            out.push(5);
            put_varint(out, *lane as u64);
            put_varint(out, *rejected_total);
        }
        CampaignEvent::OmegaRewrite {
            lane,
            rewrites_total,
        } => {
            out.push(6);
            put_varint(out, *lane as u64);
            put_varint(out, u64::from(*rewrites_total));
        }
        CampaignEvent::IterationEnded {
            lane,
            proposed,
            hits,
            tokens_total,
        } => {
            out.push(7);
            put_varint(out, *lane as u64);
            put_varint(out, *proposed as u64);
            put_varint(out, *hits);
            put_varint(out, *tokens_total);
        }
        CampaignEvent::CampaignFinished {
            experiments,
            total_hits,
            distinct_discoveries,
            best_score,
            time_to_first_hours,
            decision_wait_hours,
            execution_hours,
            rejected_proposals,
            omega_rewrites,
            kg_nodes,
            prov_activities,
            tokens,
        } => {
            out.push(8);
            put_varint(out, *experiments);
            put_varint(out, *total_hits);
            put_varint(out, *distinct_discoveries as u64);
            put_f64(out, *best_score);
            put_opt_f64(out, *time_to_first_hours);
            put_f64(out, *decision_wait_hours);
            put_f64(out, *execution_hours);
            put_varint(out, *rejected_proposals);
            put_varint(out, u64::from(*omega_rewrites));
            put_varint(out, *kg_nodes as u64);
            put_varint(out, *prov_activities as u64);
            put_varint(out, *tokens);
        }
        CampaignEvent::CheckpointTaken { committed, total } => {
            out.push(9);
            put_varint(out, *committed as u64);
            put_varint(out, *total as u64);
        }
        CampaignEvent::CoordinatorKilled { after_commits } => {
            out.push(10);
            put_varint(out, *after_commits as u64);
        }
        CampaignEvent::CampaignPlaced {
            campaign,
            facility,
            nodes,
            arrival,
            evacuation,
        } => {
            out.push(11);
            put_varint(out, *campaign as u64);
            strings.put(out, facility);
            put_varint(out, *nodes);
            put_varint(out, arrival.as_nanos());
            put_bool(out, *evacuation);
        }
        CampaignEvent::DataTransferred {
            campaign,
            from,
            to,
            gigabytes,
            duration,
            evacuation,
        } => {
            out.push(12);
            put_varint(out, *campaign as u64);
            strings.put(out, from);
            strings.put(out, to);
            put_f64(out, *gigabytes);
            put_varint(out, duration.as_nanos());
            put_bool(out, *evacuation);
        }
        CampaignEvent::OutageStruck { site, at, rerouted } => {
            out.push(13);
            strings.put(out, site);
            put_varint(out, at.as_nanos());
            put_varint(out, *rerouted as u64);
        }
        CampaignEvent::SubmissionAdmitted {
            tenant,
            admission_index,
            round,
        } => {
            out.push(14);
            strings.put(out, tenant);
            put_varint(out, *admission_index as u64);
            put_varint(out, *round as u64);
        }
        CampaignEvent::SubmissionRejected {
            tenant,
            submission_index,
            round,
            reason,
        } => {
            out.push(15);
            strings.put(out, tenant);
            put_varint(out, *submission_index as u64);
            put_varint(out, *round as u64);
            out.push(reason_code(*reason));
        }
        CampaignEvent::CampaignDispatched {
            tenant,
            admission_index,
            round,
            slot,
        } => {
            out.push(16);
            strings.put(out, tenant);
            put_varint(out, *admission_index as u64);
            put_varint(out, *round as u64);
            put_varint(out, *slot as u64);
        }
        CampaignEvent::EnsembleMessage {
            lane,
            round,
            performative,
            sender,
            receiver,
            conversation,
            frame_bytes,
        } => {
            out.push(17);
            put_varint(out, *lane as u64);
            put_varint(out, *round);
            strings.put(out, performative);
            strings.put(out, sender);
            strings.put(out, receiver);
            put_varint(out, *conversation);
            put_varint(out, *frame_bytes);
        }
        CampaignEvent::TournamentMatch {
            lane,
            round,
            left,
            right,
            winner,
            margin,
        } => {
            out.push(18);
            put_varint(out, *lane as u64);
            put_varint(out, *round);
            put_varint(out, *left as u64);
            put_varint(out, *right as u64);
            put_varint(out, *winner as u64);
            put_f64(out, *margin);
        }
        CampaignEvent::MetaReview {
            lane,
            round,
            generator_weight,
            evolver_weight,
            critiques,
        } => {
            out.push(19);
            put_varint(out, *lane as u64);
            put_varint(out, *round);
            put_f64(out, *generator_weight);
            put_f64(out, *evolver_weight);
            put_varint(out, *critiques);
        }
    }
}

fn decode_event(
    cur: &mut Cursor<'_>,
    strings: &mut InternReader,
) -> Result<CampaignEvent, WireError> {
    let tag = cur.u8()?;
    let owned = |s: String| -> Cow<'static, str> { Cow::Owned(s) };
    Ok(match tag {
        0 => CampaignEvent::CampaignStarted {
            cell_label: owned(strings.get(cur)?),
            seed: cur.varint()?,
            planner: owned(strings.get(cur)?),
            lanes: cur.varint()? as usize,
            horizon: evoflow_sim::SimDuration::from_nanos(cur.varint()?),
            threshold: cur.f64()?,
            max_experiments: cur.varint()?,
            records_knowledge: cur.bool()?,
        },
        1 => CampaignEvent::IterationStarted {
            lane: cur.varint()? as usize,
            at: evoflow_sim::SimTime::from_nanos(cur.varint()?),
            decision_ready: evoflow_sim::SimTime::from_nanos(cur.varint()?),
        },
        2 => {
            let lane = cur.varint()? as usize;
            let n = cur.varint()? as usize;
            let mut params = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                params.push(cur.f64()?);
            }
            CampaignEvent::CandidateProposed {
                lane,
                params,
                rationale: owned(strings.get_text(cur)?),
                confidence: cur.f64()?,
                hallucinated: cur.bool()?,
            }
        }
        3 => CampaignEvent::ExecutionScheduled {
            lane: cur.varint()? as usize,
            batch: cur.varint()? as usize,
            duration: evoflow_sim::SimDuration::from_nanos(cur.varint()?),
            done_at: evoflow_sim::SimTime::from_nanos(cur.varint()?),
        },
        4 => CampaignEvent::ResultObserved {
            lane: cur.varint()? as usize,
            experiment: cur.varint()?,
            score: cur.f64()?,
            hit: cur.bool()?,
            peak: match cur.varint()? {
                0 => None,
                p => Some(p as usize - 1),
            },
            tokens_in: cur.varint()?,
            tokens_out: cur.varint()?,
        },
        5 => CampaignEvent::GateDecision {
            lane: cur.varint()? as usize,
            rejected_total: cur.varint()?,
        },
        6 => CampaignEvent::OmegaRewrite {
            lane: cur.varint()? as usize,
            rewrites_total: cur.varint()? as u32,
        },
        7 => CampaignEvent::IterationEnded {
            lane: cur.varint()? as usize,
            proposed: cur.varint()? as usize,
            hits: cur.varint()?,
            tokens_total: cur.varint()?,
        },
        8 => CampaignEvent::CampaignFinished {
            experiments: cur.varint()?,
            total_hits: cur.varint()?,
            distinct_discoveries: cur.varint()? as usize,
            best_score: cur.f64()?,
            time_to_first_hours: cur.opt_f64()?,
            decision_wait_hours: cur.f64()?,
            execution_hours: cur.f64()?,
            rejected_proposals: cur.varint()?,
            omega_rewrites: cur.varint()? as u32,
            kg_nodes: cur.varint()? as usize,
            prov_activities: cur.varint()? as usize,
            tokens: cur.varint()?,
        },
        9 => CampaignEvent::CheckpointTaken {
            committed: cur.varint()? as usize,
            total: cur.varint()? as usize,
        },
        10 => CampaignEvent::CoordinatorKilled {
            after_commits: cur.varint()? as usize,
        },
        11 => CampaignEvent::CampaignPlaced {
            campaign: cur.varint()? as usize,
            facility: owned(strings.get(cur)?),
            nodes: cur.varint()?,
            arrival: evoflow_sim::SimTime::from_nanos(cur.varint()?),
            evacuation: cur.bool()?,
        },
        12 => CampaignEvent::DataTransferred {
            campaign: cur.varint()? as usize,
            from: owned(strings.get(cur)?),
            to: owned(strings.get(cur)?),
            gigabytes: cur.f64()?,
            duration: evoflow_sim::SimDuration::from_nanos(cur.varint()?),
            evacuation: cur.bool()?,
        },
        13 => CampaignEvent::OutageStruck {
            site: owned(strings.get(cur)?),
            at: evoflow_sim::SimTime::from_nanos(cur.varint()?),
            rerouted: cur.varint()? as usize,
        },
        14 => CampaignEvent::SubmissionAdmitted {
            tenant: owned(strings.get(cur)?),
            admission_index: cur.varint()? as usize,
            round: cur.varint()? as usize,
        },
        15 => CampaignEvent::SubmissionRejected {
            tenant: owned(strings.get(cur)?),
            submission_index: cur.varint()? as usize,
            round: cur.varint()? as usize,
            reason: reason_from_code(cur.u8()?)?,
        },
        16 => CampaignEvent::CampaignDispatched {
            tenant: owned(strings.get(cur)?),
            admission_index: cur.varint()? as usize,
            round: cur.varint()? as usize,
            slot: cur.varint()? as usize,
        },
        17 => CampaignEvent::EnsembleMessage {
            lane: cur.varint()? as usize,
            round: cur.varint()?,
            performative: owned(strings.get(cur)?),
            sender: owned(strings.get(cur)?),
            receiver: owned(strings.get(cur)?),
            conversation: cur.varint()?,
            frame_bytes: cur.varint()?,
        },
        18 => CampaignEvent::TournamentMatch {
            lane: cur.varint()? as usize,
            round: cur.varint()?,
            left: cur.varint()? as usize,
            right: cur.varint()? as usize,
            winner: cur.varint()? as usize,
            margin: cur.f64()?,
        },
        19 => CampaignEvent::MetaReview {
            lane: cur.varint()? as usize,
            round: cur.varint()?,
            generator_weight: cur.f64()?,
            evolver_weight: cur.f64()?,
            critiques: cur.varint()?,
        },
        tag => return Err(WireError::BadTag { tag }),
    })
}

// ---- body writer ------------------------------------------------------------

/// Incremental encoder for one event stream: batches records into
/// ≤[`SEGMENT_EVENTS`]-event segments, each prefixed with the replay
/// counter snapshot and sealed with a CRC32.
struct BodyWriter {
    segments: Vec<u8>,
    seg: Vec<u8>,
    /// Per-record encode buffer, reused across [`push`](Self::push)
    /// calls — the record framing needs the encoded length before the
    /// bytes, but that must not cost one `Vec` allocation per event.
    scratch: Vec<u8>,
    seg_index: u64,
    seg_events: u64,
    total_events: u64,
    fnv: u64,
    strings: InternWriter,
    experiments: u64,
    hits: u64,
    tokens: u64,
    snap_experiments: u64,
    snap_hits: u64,
    snap_tokens: u64,
}

impl BodyWriter {
    fn new() -> Self {
        BodyWriter {
            segments: Vec::new(),
            seg: Vec::new(),
            scratch: Vec::with_capacity(64),
            seg_index: 0,
            seg_events: 0,
            total_events: 0,
            fnv: FNV_OFFSET,
            strings: InternWriter::default(),
            experiments: 0,
            hits: 0,
            tokens: 0,
            snap_experiments: 0,
            snap_hits: 0,
            snap_tokens: 0,
        }
    }

    fn push(&mut self, event: &CampaignEvent) {
        self.scratch.clear();
        encode_event(&mut self.scratch, &mut self.strings, event);
        put_varint(&mut self.seg, self.scratch.len() as u64);
        self.seg.extend_from_slice(&self.scratch);
        self.fnv = fnv_absorb(self.fnv, &self.scratch);
        self.seg
            .extend_from_slice(&fnv_fold16(self.fnv).to_le_bytes());
        self.seg_events += 1;
        self.total_events += 1;
        match event {
            CampaignEvent::ResultObserved { hit, .. } => {
                self.experiments += 1;
                if *hit {
                    self.hits += 1;
                }
            }
            CampaignEvent::IterationEnded { tokens_total, .. } => self.tokens = *tokens_total,
            _ => {}
        }
        if self.seg_events as usize == SEGMENT_EVENTS {
            self.flush_segment();
        }
    }

    fn flush_segment(&mut self) {
        if self.seg_events == 0 {
            return;
        }
        let start = self.segments.len();
        put_varint(&mut self.segments, self.seg_index);
        put_varint(&mut self.segments, self.seg_events);
        put_varint(&mut self.segments, self.snap_experiments);
        put_varint(&mut self.segments, self.snap_hits);
        put_varint(&mut self.segments, self.snap_tokens);
        put_varint(&mut self.segments, self.seg.len() as u64);
        self.segments.extend_from_slice(&self.seg);
        let crc = crc32(&self.segments[start..]);
        self.segments.extend_from_slice(&crc.to_le_bytes());
        self.seg.clear();
        self.seg_events = 0;
        self.seg_index += 1;
        self.snap_experiments = self.experiments;
        self.snap_hits = self.hits;
        self.snap_tokens = self.tokens;
    }

    /// Seal the body and append it to `out` (byte-identical to
    /// [`finish`](Self::finish) — appending into a caller-reused buffer
    /// is the fast path, so the header CRC covers only the bytes this
    /// call wrote). Returns the encode's allocation-proxy counters.
    fn finish_into(mut self, out: &mut Vec<u8>) -> WireEncodeStats {
        self.flush_segment();
        out.reserve(self.segments.len() + 16);
        let header_start = out.len();
        put_varint(out, self.seg_index);
        put_varint(out, self.total_events);
        let crc = crc32(&out[header_start..]);
        out.extend_from_slice(&crc.to_le_bytes());
        out.extend_from_slice(&self.segments);
        WireEncodeStats {
            events: self.total_events,
            segments: self.seg_index,
            intern_hits: self.strings.hits,
            intern_misses: self.strings.misses,
        }
    }

    fn finish(self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.segments.len() + 16);
        self.finish_into(&mut out);
        out
    }
}

/// Deterministic counters from one binary encode — the wire layer's
/// allocation-proxy telemetry. Every field is a pure function of the
/// event stream (byte-diff-safe in bench artifacts): `intern_hits`
/// counts string encodings that collapsed to a table reference instead
/// of allocating a fresh table entry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireEncodeStats {
    /// Events encoded.
    pub events: u64,
    /// CRC-sealed segments emitted.
    pub segments: u64,
    /// String fields resolved to an existing intern-table id.
    pub intern_hits: u64,
    /// String fields that created a new intern-table entry.
    pub intern_misses: u64,
}

fn encode_body<'a>(events: impl IntoIterator<Item = &'a CampaignEvent>) -> Vec<u8> {
    let mut w = BodyWriter::new();
    for e in events {
        w.push(e);
    }
    w.finish()
}

/// Encode one event stream body, appending to `out` (buffer-reuse fast
/// path; bytes identical to [`encode_body`]). Returns encode counters.
fn encode_body_into<'a>(
    events: impl IntoIterator<Item = &'a CampaignEvent>,
    out: &mut Vec<u8>,
) -> WireEncodeStats {
    let mut w = BodyWriter::new();
    for e in events {
        w.push(e);
    }
    w.finish_into(out)
}

// ---- body reader ------------------------------------------------------------

/// Streaming decoder for one event stream body: yields events one at a
/// time, validating the header CRC up front, every segment CRC before
/// touching its records, every record's chained fold, and every
/// segment's counter snapshot against the stream replayed so far.
/// Memory stays bounded by one record plus the intern table.
struct BodyReader<'a> {
    cur: Cursor<'a>,
    segment_count: u64,
    total_events: u64,
    seg: u64,
    seg_events_left: u64,
    seg_end: usize,
    record: u64,
    events_read: u64,
    fnv: u64,
    strings: InternReader,
    experiments: u64,
    hits: u64,
    tokens: u64,
    done: bool,
}

impl<'a> BodyReader<'a> {
    fn new(buf: &'a [u8]) -> Result<Self, WireError> {
        let mut cur = Cursor::new(buf);
        let segment_count = cur.varint()?;
        let total_events = cur.varint()?;
        let expect = crc32(&buf[..cur.pos]);
        if cur.u32_le()? != expect {
            return Err(WireError::HeaderChecksum);
        }
        Ok(BodyReader {
            cur,
            segment_count,
            total_events,
            seg: 0,
            seg_events_left: 0,
            seg_end: 0,
            record: 0,
            events_read: 0,
            fnv: FNV_OFFSET,
            strings: InternReader::default(),
            experiments: 0,
            hits: 0,
            tokens: 0,
            done: false,
        })
    }

    fn open_segment(&mut self) -> Result<(), WireError> {
        let seg_start = self.cur.pos;
        let declared = self.cur.varint()?;
        if declared != self.seg {
            return Err(WireError::SegmentOutOfOrder {
                segment: self.seg,
                declared,
            });
        }
        let event_count = self.cur.varint()?;
        if event_count == 0 {
            return Err(WireError::EmptySegment { segment: self.seg });
        }
        let snaps = [
            ("experiments", self.cur.varint()?, self.experiments),
            ("hits", self.cur.varint()?, self.hits),
            ("tokens", self.cur.varint()?, self.tokens),
        ];
        for (field, declared, replayed) in snaps {
            if declared != replayed {
                return Err(WireError::SnapshotMismatch {
                    segment: self.seg,
                    field,
                });
            }
        }
        let payload_len = self.cur.varint()? as usize;
        let end_of_input = WireError::UnexpectedEnd {
            at: self.cur.buf.len(),
        };
        let payload_end = self
            .cur
            .pos
            .checked_add(payload_len)
            .filter(|e| e.checked_add(4).is_some_and(|e| e <= self.cur.buf.len()))
            .ok_or(end_of_input)?;
        let expect = crc32(&self.cur.buf[seg_start..payload_end]);
        let stored = u32::from_le_bytes(
            self.cur.buf[payload_end..payload_end + 4]
                .try_into()
                .unwrap(),
        );
        if stored != expect {
            return Err(WireError::SegmentChecksum { segment: self.seg });
        }
        self.seg_end = payload_end;
        self.seg_events_left = event_count;
        self.record = 0;
        Ok(())
    }

    fn next_event(&mut self) -> Result<Option<CampaignEvent>, WireError> {
        if self.done {
            return Ok(None);
        }
        if self.seg_events_left == 0 {
            if self.seg == self.segment_count {
                if self.events_read != self.total_events {
                    return Err(WireError::EventCountMismatch {
                        declared: self.total_events,
                        decoded: self.events_read,
                    });
                }
                if self.cur.remaining() != 0 {
                    return Err(WireError::TrailingBytes { at: self.cur.pos });
                }
                self.done = true;
                return Ok(None);
            }
            self.open_segment()?;
        }
        let body_len = self.cur.varint()? as usize;
        let overrun = WireError::RecordOverrun {
            segment: self.seg,
            record: self.record,
        };
        let body_end = match self.cur.pos.checked_add(body_len) {
            Some(e) if e.checked_add(2).is_some_and(|e| e <= self.seg_end) => e,
            _ => return Err(overrun),
        };
        let body = &self.cur.buf[self.cur.pos..body_end];
        self.fnv = fnv_absorb(self.fnv, body);
        let stored = u16::from_le_bytes(self.cur.buf[body_end..body_end + 2].try_into().unwrap());
        if stored != fnv_fold16(self.fnv) {
            return Err(WireError::RecordChecksum {
                segment: self.seg,
                record: self.record,
            });
        }
        let mut bcur = Cursor::new(body);
        let event = decode_event(&mut bcur, &mut self.strings)?;
        if bcur.remaining() != 0 {
            return Err(overrun);
        }
        self.cur.pos = body_end + 2;
        self.record += 1;
        self.seg_events_left -= 1;
        self.events_read += 1;
        match &event {
            CampaignEvent::ResultObserved { hit, .. } => {
                self.experiments += 1;
                if *hit {
                    self.hits += 1;
                }
            }
            CampaignEvent::IterationEnded { tokens_total, .. } => self.tokens = *tokens_total,
            _ => {}
        }
        if self.seg_events_left == 0 {
            if self.cur.pos != self.seg_end {
                return Err(WireError::TrailingBytes { at: self.cur.pos });
            }
            // Skip the already-verified segment CRC.
            self.cur.pos = self.seg_end + 4;
            self.seg += 1;
        }
        Ok(Some(event))
    }

    fn collect(mut self) -> Result<Vec<CampaignEvent>, WireError> {
        let mut events = Vec::with_capacity(self.total_events.min(1 << 20) as usize);
        while let Some(e) = self.next_event()? {
            events.push(e);
        }
        Ok(events)
    }
}

// ---- envelope + containers --------------------------------------------------

fn envelope(kind: u8, body_capacity: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(6 + body_capacity);
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    out.push(kind);
    out
}

fn check_envelope(bytes: &[u8], kind: u8) -> Result<&[u8], WireError> {
    if bytes.len() < 6 {
        return Err(WireError::UnexpectedEnd { at: bytes.len() });
    }
    if bytes[..4] != MAGIC {
        return Err(WireError::BadMagic);
    }
    if bytes[4] != VERSION {
        return Err(WireError::UnsupportedVersion(bytes[4]));
    }
    if bytes[5] != kind {
        return Err(WireError::WrongKind {
            expected: kind,
            found: bytes[5],
        });
    }
    Ok(&bytes[6..])
}

fn put_report(out: &mut Vec<u8>, strings: &mut InternWriter, r: &CampaignReport) {
    strings.put(out, &r.cell_label);
    put_varint(out, r.experiments);
    put_varint(out, r.distinct_discoveries as u64);
    put_varint(out, r.total_hits);
    put_f64(out, r.sim_days);
    put_f64(out, r.discoveries_per_week);
    put_f64(out, r.samples_per_day);
    put_opt_f64(out, r.time_to_first_hours);
    put_f64(out, r.best_score);
    put_f64(out, r.decision_wait_hours);
    put_f64(out, r.execution_hours);
    put_varint(out, r.rejected_proposals);
    put_varint(out, u64::from(r.omega_rewrites));
    put_varint(out, r.kg_nodes as u64);
    put_varint(out, r.prov_activities as u64);
    put_varint(out, r.tokens);
}

fn get_report(
    cur: &mut Cursor<'_>,
    strings: &mut InternReader,
) -> Result<CampaignReport, WireError> {
    Ok(CampaignReport {
        cell_label: strings.get(cur)?,
        experiments: cur.varint()?,
        distinct_discoveries: cur.varint()? as usize,
        total_hits: cur.varint()?,
        sim_days: cur.f64()?,
        discoveries_per_week: cur.f64()?,
        samples_per_day: cur.f64()?,
        time_to_first_hours: cur.opt_f64()?,
        best_score: cur.f64()?,
        decision_wait_hours: cur.f64()?,
        execution_hours: cur.f64()?,
        rejected_proposals: cur.varint()?,
        omega_rewrites: cur.varint()? as u32,
        kg_nodes: cur.varint()? as usize,
        prov_activities: cur.varint()? as usize,
        tokens: cur.varint()?,
    })
}

/// Shared shape of both checkpoint kinds: per-slot seeds, optional
/// committed reports, optional committed ledgers, plus a trailing
/// fleet-scoped event stream.
struct CheckpointParts {
    master_seed: u64,
    seeds: Vec<u64>,
    completed: Vec<Option<CampaignReport>>,
    ledgers: Vec<Option<CampaignLedger>>,
    events: Vec<CampaignEvent>,
}

/// Encode a container: one CRC32-sealed scalar *section* holding every
/// seed, report, presence flag, and embedded-body length — then the
/// self-validating campaign bodies back to back. Every byte of the file
/// sits under exactly one checksum.
fn encode_checkpoint(kind: u8, parts: &CheckpointParts) -> Vec<u8> {
    let bodies: Vec<Option<Vec<u8>>> = parts
        .ledgers
        .iter()
        .map(|l| l.as_ref().map(|l| encode_body(&l.events)))
        .collect();
    let events_body = encode_body(&parts.events);

    let mut section = Vec::new();
    let mut strings = InternWriter::default();
    put_varint(&mut section, parts.master_seed);
    put_varint(&mut section, parts.seeds.len() as u64);
    for &s in &parts.seeds {
        put_varint(&mut section, s);
    }
    for r in &parts.completed {
        match r {
            None => section.push(0),
            Some(r) => {
                section.push(1);
                put_report(&mut section, &mut strings, r);
            }
        }
    }
    for b in &bodies {
        match b {
            None => put_varint(&mut section, 0),
            Some(b) => put_varint(&mut section, b.len() as u64 + 1),
        }
    }
    put_varint(&mut section, events_body.len() as u64);

    let mut out = envelope(kind, section.len() + events_body.len() + 64);
    put_varint(&mut out, section.len() as u64);
    out.extend_from_slice(&section);
    out.extend_from_slice(&crc32(&section).to_le_bytes());
    for b in bodies.into_iter().flatten() {
        out.extend_from_slice(&b);
    }
    out.extend_from_slice(&events_body);
    out
}

fn decode_checkpoint(bytes: &[u8], kind: u8) -> Result<CheckpointParts, WireError> {
    let body = check_envelope(bytes, kind)?;
    let mut cur = Cursor::new(body);
    let section_len = cur.varint()? as usize;
    let section = cur.take(section_len)?;
    let stored = cur.u32_le()?;
    if stored != crc32(section) {
        return Err(WireError::SectionChecksum);
    }
    let mut scur = Cursor::new(section);
    let mut strings = InternReader::default();
    let master_seed = scur.varint()?;
    let n = scur.varint()? as usize;
    let mut seeds = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        seeds.push(scur.varint()?);
    }
    let mut completed = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        completed.push(match scur.u8()? {
            0 => None,
            _ => Some(get_report(&mut scur, &mut strings)?),
        });
    }
    let mut body_lens: Vec<Option<usize>> = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        body_lens.push(match scur.varint()? {
            0 => None,
            l => Some(l as usize - 1),
        });
    }
    let events_len = scur.varint()? as usize;
    if scur.remaining() != 0 {
        return Err(WireError::TrailingBytes { at: scur.pos });
    }
    let mut ledgers = Vec::with_capacity(n.min(1 << 16));
    for len in body_lens {
        ledgers.push(match len {
            None => None,
            Some(len) => {
                let slice = cur.take(len)?;
                Some(CampaignLedger {
                    events: BodyReader::new(slice)?.collect()?,
                })
            }
        });
    }
    let events_slice = cur.take(events_len)?;
    let events = BodyReader::new(events_slice)?.collect()?;
    if cur.remaining() != 0 {
        return Err(WireError::TrailingBytes { at: cur.pos });
    }
    Ok(CheckpointParts {
        master_seed,
        seeds,
        completed,
        ledgers,
        events,
    })
}

// ---- public codecs ----------------------------------------------------------

fn json_bytes<T: Serialize>(value: &T) -> Vec<u8> {
    serde_json::to_string(value)
        .expect("ledger JSON serialization cannot fail")
        .into_bytes()
}

fn from_json_bytes<T: for<'de> Deserialize<'de>>(bytes: &[u8]) -> Result<T, WireError> {
    let s = std::str::from_utf8(bytes).map_err(|_| WireError::BadUtf8)?;
    serde_json::from_str(s).map_err(|e| WireError::Json(e.to_string()))
}

impl CampaignLedger {
    /// Serialize under the chosen encoding. Binary is the `EVWL` format
    /// documented at [module level](self); JSON is the legacy serde
    /// encoding, byte-for-byte what the repo always produced.
    pub fn to_bytes(&self, encoding: LedgerEncoding) -> Vec<u8> {
        match encoding {
            LedgerEncoding::Json => json_bytes(self),
            LedgerEncoding::Binary => {
                let mut out = Vec::new();
                self.encode_binary_into(&mut out);
                out
            }
        }
    }

    /// The binary-encode fast path: clear `out` and write the `EVWL`
    /// bytes into it, retaining its capacity across calls — encoding N
    /// ledgers through one reused buffer performs no output allocation
    /// after the largest ledger has been seen. Byte-identical to
    /// [`to_bytes`](Self::to_bytes) with [`LedgerEncoding::Binary`].
    /// Returns the encode's deterministic counters.
    pub fn encode_binary_into(&self, out: &mut Vec<u8>) -> WireEncodeStats {
        out.clear();
        out.reserve(6);
        out.extend_from_slice(&MAGIC);
        out.push(VERSION);
        out.push(KIND_CAMPAIGN);
        encode_body_into(&self.events, out)
    }

    /// Decode from either encoding, sniffed via [`LedgerEncoding::detect`].
    pub fn from_bytes(bytes: &[u8]) -> Result<CampaignLedger, WireError> {
        match LedgerEncoding::detect(bytes) {
            LedgerEncoding::Json => from_json_bytes(bytes),
            LedgerEncoding::Binary => {
                let body = check_envelope(bytes, KIND_CAMPAIGN)?;
                Ok(CampaignLedger {
                    events: BodyReader::new(body)?.collect()?,
                })
            }
        }
    }
}

impl FleetLedger {
    /// Serialize under the chosen encoding (binary: kind-1 `EVWL`, one
    /// embedded campaign body per shard).
    pub fn to_bytes(&self, encoding: LedgerEncoding) -> Vec<u8> {
        match encoding {
            LedgerEncoding::Json => json_bytes(self),
            LedgerEncoding::Binary => {
                // One contiguous buffer for every campaign body (plus
                // its length table) instead of a `Vec<Vec<u8>>` — same
                // bytes, one allocation curve.
                let mut bodies = Vec::new();
                let mut lens: Vec<usize> = Vec::with_capacity(self.campaigns.len());
                for c in &self.campaigns {
                    let start = bodies.len();
                    encode_body_into(&c.events, &mut bodies);
                    lens.push(bodies.len() - start);
                }
                let mut section = Vec::new();
                put_varint(&mut section, self.master_seed);
                put_varint(&mut section, lens.len() as u64);
                for &l in &lens {
                    put_varint(&mut section, l as u64);
                }
                let mut out = envelope(KIND_FLEET, section.len() + bodies.len());
                put_varint(&mut out, section.len() as u64);
                out.extend_from_slice(&section);
                out.extend_from_slice(&crc32(&section).to_le_bytes());
                out.extend_from_slice(&bodies);
                out
            }
        }
    }

    /// Decode from either encoding, sniffed via [`LedgerEncoding::detect`].
    pub fn from_bytes(bytes: &[u8]) -> Result<FleetLedger, WireError> {
        match LedgerEncoding::detect(bytes) {
            LedgerEncoding::Json => from_json_bytes(bytes),
            LedgerEncoding::Binary => {
                let (master_seed, slices) = fleet_body_slices(bytes)?;
                let mut campaigns = Vec::with_capacity(slices.len());
                for slice in slices {
                    campaigns.push(CampaignLedger {
                        events: BodyReader::new(slice)?.collect()?,
                    });
                }
                Ok(FleetLedger {
                    master_seed,
                    campaigns,
                })
            }
        }
    }
}

/// Parse a kind-1 file down to its per-campaign body slices without
/// decoding any events.
fn fleet_body_slices(bytes: &[u8]) -> Result<(u64, Vec<&[u8]>), WireError> {
    let body = check_envelope(bytes, KIND_FLEET)?;
    let mut cur = Cursor::new(body);
    let section_len = cur.varint()? as usize;
    let section = cur.take(section_len)?;
    let stored = cur.u32_le()?;
    if stored != crc32(section) {
        return Err(WireError::SectionChecksum);
    }
    let mut scur = Cursor::new(section);
    let master_seed = scur.varint()?;
    let n = scur.varint()? as usize;
    let mut lens = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        lens.push(scur.varint()? as usize);
    }
    if scur.remaining() != 0 {
        return Err(WireError::TrailingBytes { at: scur.pos });
    }
    let mut slices = Vec::with_capacity(n.min(1 << 16));
    for len in lens {
        slices.push(cur.take(len)?);
    }
    if cur.remaining() != 0 {
        return Err(WireError::TrailingBytes { at: cur.pos });
    }
    Ok((master_seed, slices))
}

impl FleetLedgerCheckpoint {
    /// Serialize under the chosen encoding (binary: kind-2 `EVWL`).
    pub fn to_bytes(&self, encoding: LedgerEncoding) -> Vec<u8> {
        match encoding {
            LedgerEncoding::Json => json_bytes(self),
            LedgerEncoding::Binary => encode_checkpoint(
                KIND_FLEET_CHECKPOINT,
                &CheckpointParts {
                    master_seed: self.fleet.master_seed,
                    seeds: self.fleet.shard_seeds.clone(),
                    completed: self.fleet.completed.clone(),
                    ledgers: self.ledgers.clone(),
                    events: self.events.clone(),
                },
            ),
        }
    }

    /// Decode from either encoding, sniffed via [`LedgerEncoding::detect`].
    pub fn from_bytes(bytes: &[u8]) -> Result<FleetLedgerCheckpoint, WireError> {
        match LedgerEncoding::detect(bytes) {
            LedgerEncoding::Json => from_json_bytes(bytes),
            LedgerEncoding::Binary => {
                let parts = decode_checkpoint(bytes, KIND_FLEET_CHECKPOINT)?;
                Ok(FleetLedgerCheckpoint {
                    fleet: FleetCheckpoint {
                        master_seed: parts.master_seed,
                        shard_seeds: parts.seeds,
                        completed: parts.completed,
                    },
                    ledgers: parts.ledgers,
                    events: parts.events,
                })
            }
        }
    }
}

impl ServiceCheckpoint {
    /// Serialize under the chosen encoding (binary: kind-3 `EVWL`).
    pub fn to_bytes(&self, encoding: LedgerEncoding) -> Vec<u8> {
        match encoding {
            LedgerEncoding::Json => json_bytes(self),
            LedgerEncoding::Binary => encode_checkpoint(
                KIND_SERVICE_CHECKPOINT,
                &CheckpointParts {
                    master_seed: self.master_seed,
                    seeds: self.seeds.clone(),
                    completed: self.completed.clone(),
                    ledgers: self.ledgers.clone(),
                    events: self.events.clone(),
                },
            ),
        }
    }

    /// Decode from either encoding, sniffed via [`LedgerEncoding::detect`].
    pub fn from_bytes(bytes: &[u8]) -> Result<ServiceCheckpoint, WireError> {
        match LedgerEncoding::detect(bytes) {
            LedgerEncoding::Json => from_json_bytes(bytes),
            LedgerEncoding::Binary => {
                let parts = decode_checkpoint(bytes, KIND_SERVICE_CHECKPOINT)?;
                Ok(ServiceCheckpoint {
                    master_seed: parts.master_seed,
                    seeds: parts.seeds,
                    completed: parts.completed,
                    ledgers: parts.ledgers,
                    events: parts.events,
                })
            }
        }
    }
}

// ---- streaming replay -------------------------------------------------------

/// Replay serialized campaign-ledger bytes directly.
///
/// For binary artifacts this **streams**: each record is decoded,
/// validated (segment CRC, chained fold, snapshot counters), folded
/// into the replay, and dropped — memory stays bounded however long the
/// ledger, which is the point of segment-based compaction. Legacy JSON
/// bytes take the classic decode-then-[`replay_ledger`](super::replay_ledger)
/// path and produce byte-identical reports.
pub fn replay_ledger_bytes(bytes: &[u8]) -> Result<ReplayOutcome, ReplayError> {
    match LedgerEncoding::detect(bytes) {
        LedgerEncoding::Json => {
            let ledger = CampaignLedger::from_bytes(bytes)?;
            super::replay_ledger(&ledger)
        }
        LedgerEncoding::Binary => {
            let body = check_envelope(bytes, KIND_CAMPAIGN)?;
            let mut reader = BodyReader::new(body)?;
            let mut fold = ReplayFold::new();
            while let Some(event) = reader.next_event()? {
                fold.push(&event)?;
            }
            fold.finish()
        }
    }
}

/// Replay serialized fleet-ledger bytes directly: every campaign body
/// streams through its own fold (never materialized), and the reports
/// aggregate exactly as
/// [`replay_fleet_ledger`](super::replay_fleet_ledger) does.
pub fn replay_fleet_ledger_bytes(bytes: &[u8]) -> Result<FleetReport, ReplayError> {
    match LedgerEncoding::detect(bytes) {
        LedgerEncoding::Json => {
            let ledger = FleetLedger::from_bytes(bytes)?;
            super::replay_fleet_ledger(&ledger)
        }
        LedgerEncoding::Binary => {
            let (master_seed, slices) = fleet_body_slices(bytes).map_err(ReplayError::Corrupt)?;
            let mut reports = Vec::with_capacity(slices.len());
            for slice in slices {
                let mut reader = BodyReader::new(slice).map_err(ReplayError::Corrupt)?;
                let mut fold = ReplayFold::new();
                while let Some(event) = reader.next_event().map_err(ReplayError::Corrupt)? {
                    fold.push(&event)?;
                }
                reports.push(fold.finish()?.report);
            }
            Ok(FleetReport::from_reports(master_seed, reports))
        }
    }
}

// ---- serialized-checkpoint resume -------------------------------------------

/// Resume a recorded fleet from serialized checkpoint bytes (either
/// encoding). Wire-level refusal surfaces as
/// [`FleetResumeError::Corrupt`]; all resume handshakes are unchanged.
pub fn resume_campaign_fleet_recorded_bytes(
    space: &MaterialsSpace,
    cfg: &FleetConfig,
    bytes: &[u8],
) -> Result<(FleetReport, FleetLedger), FleetResumeError> {
    let checkpoint = FleetLedgerCheckpoint::from_bytes(bytes).map_err(FleetResumeError::Corrupt)?;
    resume_campaign_fleet_recorded(space, cfg, &checkpoint)
}

/// Resume an interrupted service session from serialized checkpoint
/// bytes (either encoding). Wire-level refusal surfaces as
/// [`ServiceResumeError::Corrupt`]; all resume handshakes are unchanged.
pub fn resume_service_bytes(
    space: &MaterialsSpace,
    cfg: &ServiceConfig,
    bytes: &[u8],
) -> Result<(ServiceReport, FleetLedger), ServiceResumeError> {
    let checkpoint = ServiceCheckpoint::from_bytes(bytes).map_err(ServiceResumeError::Corrupt)?;
    resume_service(space, cfg, &checkpoint)
}

#[cfg(test)]
mod tests {
    use super::*;
    use evoflow_sim::{SimDuration, SimTime};

    fn sample_events() -> Vec<CampaignEvent> {
        vec![
            CampaignEvent::CampaignStarted {
                cell_label: "wire-test".into(),
                seed: 9,
                planner: "grid".into(),
                lanes: 2,
                horizon: SimDuration::from_days(1),
                threshold: 0.8,
                max_experiments: 64,
                records_knowledge: true,
            },
            CampaignEvent::IterationStarted {
                lane: 0,
                at: SimTime::from_nanos(5),
                decision_ready: SimTime::from_nanos(105),
            },
            CampaignEvent::CandidateProposed {
                lane: 0,
                params: vec![0.25, 0.75],
                rationale: "grid scan".into(),
                confidence: 0.5,
                hallucinated: false,
            },
            CampaignEvent::ResultObserved {
                lane: 0,
                experiment: 1,
                score: 0.91,
                hit: true,
                peak: Some(3),
                tokens_in: 120,
                tokens_out: 40,
            },
            CampaignEvent::SubmissionRejected {
                tenant: "acme".into(),
                submission_index: 4,
                round: 2,
                reason: RejectReason::QueueFull,
            },
            CampaignEvent::EnsembleMessage {
                lane: 0,
                round: 3,
                performative: "propose".into(),
                sender: "generator".into(),
                receiver: "ranker".into(),
                conversation: 12,
                frame_bytes: 187,
            },
            CampaignEvent::TournamentMatch {
                lane: 0,
                round: 3,
                left: 1,
                right: 5,
                winner: 5,
                margin: 0.125,
            },
            CampaignEvent::MetaReview {
                lane: 0,
                round: 3,
                generator_weight: 0.625,
                evolver_weight: 0.375,
                critiques: 24,
            },
            CampaignEvent::IterationEnded {
                lane: 0,
                proposed: 1,
                hits: 1,
                tokens_total: 160,
            },
        ]
    }

    #[test]
    fn crc32_matches_reference_vector() {
        // The classic IEEE 802.3 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn unknown_future_event_tag_is_refused_as_bad_tag() {
        // Forward-compat contract: a stream written by a future build
        // with an event tag this decoder has never heard of must surface
        // as a *typed* `BadTag` refusal — not a checksum error, not a
        // silent skip. Every checksum here is valid, so the tag check is
        // the only thing that can (and must) refuse.
        let mut record = Vec::new();
        record.push(42u8); // a tag three generations from now
        put_varint(&mut record, 7);

        let mut seg = Vec::new();
        put_varint(&mut seg, record.len() as u64);
        seg.extend_from_slice(&record);
        let fnv = fnv_absorb(FNV_OFFSET, &record);
        seg.extend_from_slice(&fnv_fold16(fnv).to_le_bytes());

        let mut segments = Vec::new();
        put_varint(&mut segments, 0); // segment index
        put_varint(&mut segments, 1); // events in segment
        put_varint(&mut segments, 0); // experiments snapshot
        put_varint(&mut segments, 0); // hits snapshot
        put_varint(&mut segments, 0); // tokens snapshot
        put_varint(&mut segments, seg.len() as u64);
        segments.extend_from_slice(&seg);
        let seg_crc = crc32(&segments);
        segments.extend_from_slice(&seg_crc.to_le_bytes());

        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.push(VERSION);
        bytes.push(KIND_CAMPAIGN);
        let header_start = bytes.len();
        put_varint(&mut bytes, 1); // segment count
        put_varint(&mut bytes, 1); // total events
        let header_crc = crc32(&bytes[header_start..]);
        bytes.extend_from_slice(&header_crc.to_le_bytes());
        bytes.extend_from_slice(&segments);

        assert!(matches!(
            CampaignLedger::from_bytes(&bytes),
            Err(WireError::BadTag { tag: 42 })
        ));
        // The error being `BadTag { 42 }` — not a header/segment/record
        // checksum refusal — proves the framing above is valid and the
        // tag check alone did the refusing. Streaming replay surfaces the
        // same typed error.
        assert!(matches!(
            replay_ledger_bytes(&bytes),
            Err(crate::ledger::ReplayError::Corrupt(WireError::BadTag {
                tag: 42
            }))
        ));
    }

    #[test]
    fn varint_round_trips_at_boundaries() {
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u64::MAX - 1, u64::MAX] {
            let mut out = Vec::new();
            put_varint(&mut out, v);
            let mut cur = Cursor::new(&out);
            assert_eq!(cur.varint().unwrap(), v);
            assert_eq!(cur.remaining(), 0);
        }
        let eleven = [0x80u8; 11];
        assert!(matches!(
            Cursor::new(&eleven).varint(),
            Err(WireError::VarintOverflow { .. })
        ));
    }

    #[test]
    fn events_round_trip_through_binary() {
        let ledger = CampaignLedger {
            events: sample_events(),
        };
        let bytes = ledger.to_bytes(LedgerEncoding::Binary);
        assert_eq!(LedgerEncoding::detect(&bytes), LedgerEncoding::Binary);
        assert_eq!(CampaignLedger::from_bytes(&bytes).unwrap(), ledger);
    }

    #[test]
    fn interning_pays_off_for_repeated_strings() {
        let mut events = vec![sample_events()[0].clone()];
        for i in 0..200u64 {
            events.push(CampaignEvent::SubmissionAdmitted {
                tenant: "a-rather-long-tenant-name".into(),
                admission_index: i as usize,
                round: 0,
            });
        }
        let ledger = CampaignLedger { events };
        let bytes = ledger.to_bytes(LedgerEncoding::Binary);
        // 200 repeats of a 25-byte string cost one varint each, not 25+.
        assert!(bytes.len() < 200 * 12, "interning failed: {}", bytes.len());
        assert_eq!(CampaignLedger::from_bytes(&bytes).unwrap(), ledger);
    }

    #[test]
    fn multi_segment_streams_round_trip() {
        let mut events = vec![sample_events()[0].clone()];
        for i in 1..=(SEGMENT_EVENTS as u64 * 3) {
            events.push(CampaignEvent::ResultObserved {
                lane: 0,
                experiment: i,
                score: 0.1 * (i % 7) as f64,
                hit: i % 5 == 0,
                peak: if i % 5 == 0 {
                    Some(i as usize % 3)
                } else {
                    None
                },
                tokens_in: i * 3,
                tokens_out: i,
            });
        }
        let ledger = CampaignLedger { events };
        let bytes = ledger.to_bytes(LedgerEncoding::Binary);
        assert_eq!(CampaignLedger::from_bytes(&bytes).unwrap(), ledger);
    }

    #[test]
    fn empty_ledger_round_trips() {
        let ledger = CampaignLedger::new();
        let bytes = ledger.to_bytes(LedgerEncoding::Binary);
        assert_eq!(CampaignLedger::from_bytes(&bytes).unwrap(), ledger);
    }

    #[test]
    fn json_fallback_decodes_legacy_bytes() {
        let ledger = CampaignLedger {
            events: sample_events(),
        };
        let json = ledger.to_bytes(LedgerEncoding::Json);
        assert_eq!(LedgerEncoding::detect(&json), LedgerEncoding::Json);
        assert_eq!(CampaignLedger::from_bytes(&json).unwrap(), ledger);
    }

    #[test]
    fn every_single_byte_corruption_is_refused() {
        let ledger = CampaignLedger {
            events: sample_events(),
        };
        let bytes = ledger.to_bytes(LedgerEncoding::Binary);
        for i in 0..bytes.len() {
            let mut tampered = bytes.clone();
            tampered[i] ^= 0x01;
            assert!(
                CampaignLedger::from_bytes(&tampered).is_err(),
                "flip at byte {i} was not refused"
            );
        }
    }

    #[test]
    fn every_truncation_is_refused() {
        let ledger = CampaignLedger {
            events: sample_events(),
        };
        let bytes = ledger.to_bytes(LedgerEncoding::Binary);
        for len in 0..bytes.len() {
            assert!(
                CampaignLedger::from_bytes(&bytes[..len]).is_err(),
                "truncation to {len} bytes was not refused"
            );
        }
    }

    #[test]
    fn trailing_bytes_are_refused() {
        let ledger = CampaignLedger {
            events: sample_events(),
        };
        let mut bytes = ledger.to_bytes(LedgerEncoding::Binary);
        bytes.push(0);
        assert!(matches!(
            CampaignLedger::from_bytes(&bytes),
            Err(WireError::TrailingBytes { .. })
        ));
    }

    #[test]
    fn spliced_segment_fails_snapshot_or_checksum() {
        // Two ledgers with different hit patterns; graft a segment from
        // one into the other.
        let mk = |hit_every: u64| {
            let mut events = vec![sample_events()[0].clone()];
            for i in 1..=(SEGMENT_EVENTS as u64 * 2) {
                events.push(CampaignEvent::ResultObserved {
                    lane: 0,
                    experiment: i,
                    score: 0.2,
                    hit: i % hit_every == 0,
                    peak: None,
                    tokens_in: 1,
                    tokens_out: 1,
                });
            }
            CampaignLedger { events }.to_bytes(LedgerEncoding::Binary)
        };
        let a = mk(3);
        let b = mk(4);
        assert_eq!(a.len(), b.len(), "test setup: same shape expected");
        // Swap the back half (second segment onward) of a with b's.
        let mid = a.len() / 2;
        let mut spliced = a[..mid].to_vec();
        spliced.extend_from_slice(&b[mid..]);
        assert!(CampaignLedger::from_bytes(&spliced).is_err());
    }

    #[test]
    fn wrong_kind_is_refused() {
        let fleet = FleetLedger {
            master_seed: 7,
            campaigns: vec![CampaignLedger {
                events: sample_events(),
            }],
        };
        let bytes = fleet.to_bytes(LedgerEncoding::Binary);
        assert!(matches!(
            CampaignLedger::from_bytes(&bytes),
            Err(WireError::WrongKind {
                expected: 0,
                found: 1
            })
        ));
    }

    #[test]
    fn fleet_ledger_round_trips_both_encodings() {
        let fleet = FleetLedger {
            master_seed: 77,
            campaigns: vec![
                CampaignLedger {
                    events: sample_events(),
                },
                CampaignLedger::new(),
            ],
        };
        for enc in [LedgerEncoding::Binary, LedgerEncoding::Json] {
            let bytes = fleet.to_bytes(enc);
            assert_eq!(FleetLedger::from_bytes(&bytes).unwrap(), fleet);
        }
    }
}
