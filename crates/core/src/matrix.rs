//! The 5×5 evolution matrix (§3.4, Table 3): taxonomy, classifier, and
//! trajectory planner.
//!
//! The matrix crosses the intelligence dimension (rows of Table 1) with the
//! composition dimension (rows of Table 2). It is used two ways, exactly as
//! the paper prescribes: *descriptively* — [`classify`] places a running
//! system in a cell from observable properties — and *prescriptively* —
//! [`TrajectoryPlanner`] charts the evolution path from a current cell to a
//! target cell, intelligence-first within the current composition, then
//! widening composition (§3.4's recommended order).

use evoflow_agents::Pattern;
use evoflow_sm::IntelligenceLevel;
use serde::{Deserialize, Serialize};

/// A cell of the evolution matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Cell {
    /// Intelligence level (Table 1 axis).
    pub intelligence: IntelligenceLevel,
    /// Composition pattern (Table 2 axis).
    pub composition: Pattern,
}

impl Cell {
    /// Construct a cell.
    pub fn new(intelligence: IntelligenceLevel, composition: Pattern) -> Self {
        Cell {
            intelligence,
            composition,
        }
    }

    /// The paper's current-practice corner: [Static × Pipeline].
    pub fn traditional_wms() -> Self {
        Cell::new(IntelligenceLevel::Static, Pattern::Pipeline)
    }

    /// The autonomous-science frontier: [Intelligent × Swarm].
    pub fn autonomous_science() -> Self {
        Cell::new(IntelligenceLevel::Intelligent, Pattern::Swarm { k: 8 })
    }

    /// Table 3's representative example for this cell.
    pub fn representative(&self) -> &'static str {
        use IntelligenceLevel as I;
        let col = self.intelligence;
        match (self.composition, col) {
            (Pattern::Single, I::Static) => "Script",
            (Pattern::Single, I::Adaptive) => "Exception Handler",
            (Pattern::Single, I::Learning) => "ML Model",
            (Pattern::Single, I::Optimizing) => "Optimizer",
            (Pattern::Single, I::Intelligent) => "LLM-Agent",
            (Pattern::Pipeline, I::Static) => "DAG",
            (Pattern::Pipeline, I::Adaptive) => "Conditional DAG",
            (Pattern::Pipeline, I::Learning) => "ML Pipeline",
            (Pattern::Pipeline, I::Optimizing) => "AutoML",
            (Pattern::Pipeline, I::Intelligent) => "Agent Chain",
            (Pattern::Hierarchical, I::Static) => "Batch System",
            (Pattern::Hierarchical, I::Adaptive) => "Dynamic Allocation",
            (Pattern::Hierarchical, I::Learning) => "Ensemble",
            (Pattern::Hierarchical, I::Optimizing) => "Hyper Optimization",
            (Pattern::Hierarchical, I::Intelligent) => "Hierarchical Multi-Agent",
            (Pattern::Mesh, I::Static) => "Fixed Grid",
            (Pattern::Mesh, I::Adaptive) => "Load Balancing",
            (Pattern::Mesh, I::Learning) => "Federated",
            (Pattern::Mesh, I::Optimizing) => "Distributed Optimization",
            (Pattern::Mesh, I::Intelligent) => "Agent Society",
            (Pattern::Swarm { .. }, I::Static) => "Parameter Sweep",
            (Pattern::Swarm { .. }, I::Adaptive) => "Adaptive Sampling",
            (Pattern::Swarm { .. }, I::Learning) => "Particle Swarm Opt.",
            (Pattern::Swarm { .. }, I::Optimizing) => "Ant Colony",
            (Pattern::Swarm { .. }, I::Intelligent) => "Emergent AI",
        }
    }

    /// Manhattan distance to another cell in (intelligence, composition)
    /// rank space — the number of single-axis transitions needed.
    pub fn distance(&self, other: &Cell) -> usize {
        self.intelligence.rank().abs_diff(other.intelligence.rank())
            + self.composition.rank().abs_diff(other.composition.rank())
    }
}

impl std::fmt::Display for Cell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let comp = match self.composition {
            Pattern::Single => "Single",
            Pattern::Pipeline => "Pipeline",
            Pattern::Hierarchical => "Hierarchical",
            Pattern::Mesh => "Mesh",
            Pattern::Swarm { .. } => "Swarm",
        };
        write!(f, "[{} × {comp}]", self.intelligence)
    }
}

/// Enumerate all 25 cells in row-major (composition, intelligence) order,
/// as laid out in Table 3.
pub fn all_cells() -> Vec<Cell> {
    let mut out = Vec::with_capacity(25);
    for comp in Pattern::all() {
        for level in IntelligenceLevel::ALL {
            out.push(Cell::new(level, comp));
        }
    }
    out
}

/// Observable properties of a running system, for classification.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SystemDescriptor {
    /// System name.
    pub name: String,
    /// Does the transition logic read runtime observations/feedback?
    pub uses_feedback: bool,
    /// Does behaviour change with accumulated history (training)?
    pub learns_from_history: bool,
    /// Does the system optimize an explicit cost/objective function?
    pub optimizes_cost: bool,
    /// Can the system rewrite its own states/transitions/goals?
    pub self_modifies: bool,
    /// Number of coordinated machines.
    pub machine_count: usize,
    /// Is there a distinguished manager/coordinator machine?
    pub has_manager: bool,
    /// Do machines communicate pairwise (not just along a chain)?
    pub peer_communication: bool,
    /// Is communication restricted to local neighborhoods?
    pub local_neighborhoods_only: bool,
    /// Is dataflow a linear chain?
    pub linear_dataflow: bool,
}

/// Classify a system descriptor into its evolution-matrix cell.
pub fn classify(d: &SystemDescriptor) -> Cell {
    let intelligence = if d.self_modifies {
        IntelligenceLevel::Intelligent
    } else if d.optimizes_cost {
        IntelligenceLevel::Optimizing
    } else if d.learns_from_history {
        IntelligenceLevel::Learning
    } else if d.uses_feedback {
        IntelligenceLevel::Adaptive
    } else {
        IntelligenceLevel::Static
    };

    let composition = if d.machine_count <= 1 {
        Pattern::Single
    } else if d.peer_communication && d.local_neighborhoods_only {
        Pattern::Swarm { k: 4 }
    } else if d.peer_communication {
        Pattern::Mesh
    } else if d.has_manager {
        Pattern::Hierarchical
    } else if d.linear_dataflow {
        Pattern::Pipeline
    } else {
        // Multiple machines with no discernible coordination: a sweep.
        Pattern::Swarm { k: 0 }
    };

    Cell::new(intelligence, composition)
}

/// What a transition along one axis requires — §3.4's "critical
/// transitions" made explicit for roadmapping.
pub fn transition_requirement(from: &Cell, to: &Cell) -> String {
    if to.intelligence.rank() == from.intelligence.rank() + 1
        && to.composition.rank() == from.composition.rank()
    {
        let req = match to.intelligence {
            IntelligenceLevel::Adaptive => "observation/feedback plumbing (sensors, status events)",
            IntelligenceLevel::Learning => {
                "data infrastructure to maintain history H (requires data infrastructure)"
            }
            IntelligenceLevel::Optimizing => {
                "objective specification and evaluation infrastructure for J"
            }
            IntelligenceLevel::Intelligent => {
                "reasoning engines and knowledge bases implementing Ω"
            }
            IntelligenceLevel::Static => unreachable!("no transition to Static"),
        };
        return format!(
            "intelligence {} → {}: {req}",
            from.intelligence, to.intelligence
        );
    }
    if to.composition.rank() == from.composition.rank() + 1
        && to.intelligence.rank() == from.intelligence.rank()
    {
        let req = match to.composition {
            Pattern::Pipeline => "staged dataflow contracts between machines",
            Pattern::Hierarchical => "delegation protocol and a supervising manager",
            Pattern::Mesh => "peer-to-peer messaging and shared state (O(n²) channels)",
            Pattern::Swarm { .. } => {
                "local interaction rules and emergence operator Φ (O(k) channels/member)"
            }
            Pattern::Single => unreachable!("no transition to Single"),
        };
        return format!(
            "composition rank {} → {}: {req}",
            from.composition.rank(),
            to.composition.rank()
        );
    }
    format!("{from} → {to}: not a single-axis step")
}

/// Plans evolution trajectories through the matrix.
#[derive(Debug, Clone, Copy, Default)]
pub struct TrajectoryPlanner;

impl TrajectoryPlanner {
    /// The §3.4 prescribed path: raise intelligence within the current
    /// composition first, then widen composition. Returns every cell along
    /// the way, including the endpoints.
    pub fn plan(&self, from: Cell, to: Cell) -> Vec<Cell> {
        let mut path = vec![from];
        let mut cur = from;
        // Intelligence first.
        while cur.intelligence.rank() < to.intelligence.rank() {
            cur = Cell::new(
                cur.intelligence.next().expect("rank < target implies next"),
                cur.composition,
            );
            path.push(cur);
        }
        // Then composition.
        let order = Pattern::all();
        while cur.composition.rank() < to.composition.rank() {
            cur = Cell::new(cur.intelligence, order[cur.composition.rank() + 1]);
            path.push(cur);
        }
        // Respect the exact target swarm parameterisation.
        if let (Pattern::Swarm { .. }, Pattern::Swarm { .. }) = (cur.composition, to.composition) {
            if cur.composition != to.composition {
                let last = path.len() - 1;
                path[last] = to;
            }
        }
        path
    }

    /// Requirements narrative for each step of a plan.
    pub fn requirements(&self, path: &[Cell]) -> Vec<String> {
        path.windows(2)
            .map(|w| transition_requirement(&w[0], &w[1]))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_has_25_distinct_cells() {
        let cells = all_cells();
        assert_eq!(cells.len(), 25);
        let mut reps: Vec<&str> = cells.iter().map(|c| c.representative()).collect();
        reps.sort_unstable();
        reps.dedup();
        assert_eq!(reps.len(), 25, "representatives must be unique");
    }

    #[test]
    fn corners_match_paper() {
        assert_eq!(Cell::traditional_wms().representative(), "DAG");
        assert_eq!(Cell::autonomous_science().representative(), "Emergent AI");
        assert_eq!(
            Cell::new(IntelligenceLevel::Learning, Pattern::Swarm { k: 4 }).representative(),
            "Particle Swarm Opt."
        );
        assert_eq!(
            Cell::new(IntelligenceLevel::Optimizing, Pattern::Swarm { k: 4 }).representative(),
            "Ant Colony"
        );
    }

    #[test]
    fn classifier_places_known_systems() {
        // A traditional WMS DAG run.
        let wms = SystemDescriptor {
            name: "pegasus-like".into(),
            machine_count: 5,
            linear_dataflow: true,
            ..SystemDescriptor::default()
        };
        assert_eq!(classify(&wms), Cell::traditional_wms());

        // A fault-tolerant conditional DAG.
        let adaptive = SystemDescriptor {
            uses_feedback: true,
            ..wms.clone()
        };
        assert_eq!(
            classify(&adaptive),
            Cell::new(IntelligenceLevel::Adaptive, Pattern::Pipeline)
        );

        // A lone LLM agent that rewrites its own plans.
        let llm = SystemDescriptor {
            name: "autogpt-like".into(),
            uses_feedback: true,
            learns_from_history: true,
            optimizes_cost: true,
            self_modifies: true,
            machine_count: 1,
            ..SystemDescriptor::default()
        };
        assert_eq!(
            classify(&llm),
            Cell::new(IntelligenceLevel::Intelligent, Pattern::Single)
        );

        // PSO: learning machines, local neighborhoods.
        let pso = SystemDescriptor {
            name: "pso".into(),
            uses_feedback: true,
            learns_from_history: true,
            machine_count: 30,
            peer_communication: true,
            local_neighborhoods_only: true,
            ..SystemDescriptor::default()
        };
        let cell = classify(&pso);
        assert_eq!(cell.intelligence, IntelligenceLevel::Learning);
        assert!(matches!(cell.composition, Pattern::Swarm { .. }));

        // A federated-learning mesh.
        let fed = SystemDescriptor {
            name: "fedavg".into(),
            uses_feedback: true,
            learns_from_history: true,
            machine_count: 10,
            peer_communication: true,
            ..SystemDescriptor::default()
        };
        assert_eq!(
            classify(&fed),
            Cell::new(IntelligenceLevel::Learning, Pattern::Mesh)
        );

        // A batch system: manager + static jobs.
        let batch = SystemDescriptor {
            name: "slurm-like".into(),
            machine_count: 100,
            has_manager: true,
            ..SystemDescriptor::default()
        };
        assert_eq!(
            classify(&batch),
            Cell::new(IntelligenceLevel::Static, Pattern::Hierarchical)
        );
    }

    #[test]
    fn trajectory_is_intelligence_first() {
        let p = TrajectoryPlanner;
        let path = p.plan(Cell::traditional_wms(), Cell::autonomous_science());
        // Static→Intelligent = 4 steps, Pipeline→Swarm = 3 steps, + start.
        assert_eq!(path.len(), 8);
        // First four transitions raise intelligence at fixed composition.
        for w in path.windows(2).take(4) {
            assert_eq!(w[0].composition.rank(), w[1].composition.rank());
            assert_eq!(w[0].intelligence.rank() + 1, w[1].intelligence.rank());
        }
        // Remaining transitions widen composition at Intelligent.
        for w in path.windows(2).skip(4) {
            assert_eq!(w[0].intelligence, IntelligenceLevel::Intelligent);
            assert_eq!(w[0].composition.rank() + 1, w[1].composition.rank());
        }
        assert_eq!(*path.last().unwrap(), Cell::autonomous_science());
    }

    #[test]
    fn trajectory_requirements_name_the_critical_infrastructure() {
        let p = TrajectoryPlanner;
        let path = p.plan(Cell::traditional_wms(), Cell::autonomous_science());
        let reqs = p.requirements(&path);
        assert_eq!(reqs.len(), 7);
        assert!(reqs.iter().any(|r| r.contains("data infrastructure")));
        assert!(reqs.iter().any(|r| r.contains("objective specification")));
        assert!(reqs.iter().any(|r| r.contains("reasoning engines")));
        assert!(reqs.iter().any(|r| r.contains("Φ")));
    }

    #[test]
    fn distance_is_manhattan() {
        assert_eq!(
            Cell::traditional_wms().distance(&Cell::autonomous_science()),
            7
        );
        let c = Cell::new(IntelligenceLevel::Learning, Pattern::Mesh);
        assert_eq!(c.distance(&c), 0);
    }

    #[test]
    fn display_formats_cells() {
        assert_eq!(Cell::traditional_wms().to_string(), "[Static × Pipeline]");
        assert_eq!(
            Cell::autonomous_science().to_string(),
            "[Intelligent × Swarm]"
        );
    }
}
