//! **Hot-path phase profiling** — near-zero-overhead scoped counters for
//! the campaign stepping loop and the fleet executor.
//!
//! The recording hot loop has five phases worth telling apart when
//! chasing throughput: **propose** (planner decision), **execute**
//! (simulated measurement), **observe** (feeding outcomes back into the
//! planner), **emit** (event construction + batched observer delivery),
//! and **steal** (fleet task claiming) — with propose further split into
//! **propose.anchor** / **propose.model** / **propose.score** sub-phases
//! (see [`Phase`]). A [`PhaseProfiler`] threads
//! through [`run_campaign_profiled`](crate::run_campaign_profiled) and
//! the fleet executor and aggregates per-phase call counts and wall
//! nanoseconds.
//!
//! Two design rules keep it honest:
//!
//! 1. **Disabled means free.** Every probe is a single branch on
//!    [`PhaseProfiler::is_enabled`] — no clock reads, no counter writes.
//!    `run_campaign_observed` runs with a disabled profiler, so the
//!    production path pays one predictable branch per probe site.
//! 2. **Counts are deterministic, clocks are not.** Phase *counts* are a
//!    pure function of `(space, config)` — byte-identical across reruns
//!    and thread counts — while `nanos` is wall-clock noise. Artifacts
//!    that CI byte-diffs (`BENCH_profile.json`) must serialize
//!    [`PhaseBreakdown::counts_only`]; raw timings belong on stdout.

use serde::{Deserialize, Serialize};
use std::borrow::Cow;
use std::time::Instant;

/// A phase of the recording hot path.
///
/// The `propose` umbrella is additionally split into three sub-phases so
/// profiles attribute *where* decision time goes: `propose.anchor` (the
/// visible-evidence lookup), `propose.model` (the planner's own
/// `propose` call, surrogate math included), and `propose.score` (a
/// counts-only tally of candidates scored against a surrogate — its
/// scoring runs inside `propose.model`'s scope, so it carries no
/// separate wall time). Sub-phase counts do not sum to the umbrella's:
/// the umbrella counts iterations, the sub-phases count their own units.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Planner decision: anchor lookup + `Planner::propose`.
    Propose,
    /// Simulated measurement of proposed candidates.
    Execute,
    /// Feeding outcomes back into the planner (`Planner::observe`).
    Observe,
    /// Event construction and batched delivery to observers.
    Emit,
    /// Fleet executor task claiming (chunked CAS on the shared cursor).
    Steal,
    /// Propose sub-phase: computing the best-visible-evidence anchor
    /// (counted only on iterations whose planner wants one).
    ProposeAnchor,
    /// Propose sub-phase: the planner's `propose` call itself.
    ProposeModel,
    /// Propose sub-phase: candidates scored against a surrogate model
    /// (batched acquisition/prediction passes). Counts-only — the time
    /// is inside [`ProposeModel`](Self::ProposeModel).
    ProposeScore,
}

/// Number of phases (array sizing).
const PHASES: usize = 8;

/// Stable names, indexed by `Phase as usize`.
const PHASE_NAMES: [&str; PHASES] = [
    "propose",
    "execute",
    "observe",
    "emit",
    "steal",
    "propose.anchor",
    "propose.model",
    "propose.score",
];

impl Phase {
    /// Stable lowercase name (JSON keys, tables).
    pub fn name(self) -> &'static str {
        PHASE_NAMES[self as usize]
    }

    /// Every phase, in declaration order.
    pub fn all() -> [Phase; PHASES] {
        [
            Phase::Propose,
            Phase::Execute,
            Phase::Observe,
            Phase::Emit,
            Phase::Steal,
            Phase::ProposeAnchor,
            Phase::ProposeModel,
            Phase::ProposeScore,
        ]
    }
}

/// Aggregate for one phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct PhaseAgg {
    count: u64,
    nanos: u64,
}

/// An opaque scope token from [`PhaseProfiler::begin`]. Holds the start
/// instant when profiling is enabled, nothing otherwise.
#[derive(Debug, Clone, Copy)]
pub struct PhaseToken(Option<Instant>);

/// Scoped phase counters. Construct [`enabled`](PhaseProfiler::enabled)
/// for a profiling run or [`disabled`](PhaseProfiler::disabled) for the
/// production path (every probe reduces to one branch).
#[derive(Debug, Clone)]
pub struct PhaseProfiler {
    on: bool,
    stats: [PhaseAgg; PHASES],
    batches_flushed: u64,
    events_emitted: u64,
}

impl PhaseProfiler {
    /// A profiler that records.
    pub fn enabled() -> Self {
        PhaseProfiler {
            on: true,
            stats: [PhaseAgg::default(); PHASES],
            batches_flushed: 0,
            events_emitted: 0,
        }
    }

    /// A profiler whose every probe is a no-op branch.
    pub fn disabled() -> Self {
        PhaseProfiler {
            on: false,
            stats: [PhaseAgg::default(); PHASES],
            batches_flushed: 0,
            events_emitted: 0,
        }
    }

    /// Whether probes record anything.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.on
    }

    /// Open a scope. Reads the clock only when enabled.
    #[inline]
    pub fn begin(&self) -> PhaseToken {
        PhaseToken(if self.on { Some(Instant::now()) } else { None })
    }

    /// Close a scope opened by [`begin`](Self::begin): one call, elapsed
    /// wall time.
    #[inline]
    pub fn end(&mut self, phase: Phase, token: PhaseToken) {
        self.end_n(phase, token, 1);
    }

    /// Close a scope that covered `n` units of work (e.g. one flush
    /// delivering `n` events).
    #[inline]
    pub fn end_n(&mut self, phase: Phase, token: PhaseToken, n: u64) {
        if let PhaseToken(Some(start)) = token {
            let agg = &mut self.stats[phase as usize];
            agg.count += n;
            agg.nanos += start.elapsed().as_nanos() as u64;
        }
    }

    /// Bump a phase count without timing (cheap tallies).
    #[inline]
    pub fn bump(&mut self, phase: Phase, n: u64) {
        if self.on {
            self.stats[phase as usize].count += n;
        }
    }

    /// Record batch-emission counters (from an
    /// [`EventBatch`](crate::ledger::EventBatch)).
    pub fn add_batches(&mut self, flushes: u64, events: u64) {
        if self.on {
            self.batches_flushed += flushes;
            self.events_emitted += events;
        }
    }

    /// Record executor claim-side totals into the *steal* phase (from
    /// the fleet executor's chunk-claim counters).
    pub fn add_steals(&mut self, claims: u64, nanos: u64) {
        if self.on {
            let agg = &mut self.stats[Phase::Steal as usize];
            agg.count += claims;
            agg.nanos += nanos;
        }
    }

    /// Fold another profiler's totals into this one (fleet aggregation;
    /// fold in shard order so counts stay deterministic).
    pub fn merge(&mut self, other: &PhaseBreakdown) {
        for stat in &other.phases {
            for p in Phase::all() {
                if p.name() == stat.phase {
                    self.stats[p as usize].count += stat.count;
                    self.stats[p as usize].nanos += stat.nanos;
                }
            }
        }
        self.batches_flushed += other.batches_flushed;
        self.events_emitted += other.events_emitted;
    }

    /// Snapshot the totals.
    pub fn breakdown(&self) -> PhaseBreakdown {
        PhaseBreakdown {
            phases: Phase::all()
                .iter()
                .map(|&p| PhaseStat {
                    phase: Cow::Borrowed(p.name()),
                    count: self.stats[p as usize].count,
                    nanos: self.stats[p as usize].nanos,
                })
                .collect(),
            batches_flushed: self.batches_flushed,
            events_emitted: self.events_emitted,
        }
    }
}

impl Default for PhaseProfiler {
    fn default() -> Self {
        PhaseProfiler::disabled()
    }
}

/// One phase's totals in a [`PhaseBreakdown`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseStat {
    /// Stable phase name (see [`Phase::name`]).
    pub phase: Cow<'static, str>,
    /// Units of work (calls, experiments, events — per-phase semantics).
    pub count: u64,
    /// Wall nanoseconds inside the phase. **Not deterministic** — zeroed
    /// by [`PhaseBreakdown::counts_only`] for byte-diffed artifacts.
    pub nanos: u64,
}

/// The per-phase totals of a profiled run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct PhaseBreakdown {
    /// One entry per [`Phase`], in declaration order.
    pub phases: Vec<PhaseStat>,
    /// Event batches flushed to observers.
    pub batches_flushed: u64,
    /// Events delivered through those batches.
    pub events_emitted: u64,
}

impl PhaseBreakdown {
    /// Total wall nanoseconds across phases.
    pub fn total_nanos(&self) -> u64 {
        self.phases.iter().map(|s| s.nanos).sum()
    }

    /// The deterministic projection: same counts, `nanos` zeroed. This
    /// is the only form that may land in a byte-diffed artifact.
    pub fn counts_only(&self) -> PhaseBreakdown {
        PhaseBreakdown {
            phases: self
                .phases
                .iter()
                .map(|s| PhaseStat {
                    phase: s.phase.clone(),
                    count: s.count,
                    nanos: 0,
                })
                .collect(),
            batches_flushed: self.batches_flushed,
            events_emitted: self.events_emitted,
        }
    }

    /// Count for a phase by name, 0 if absent.
    pub fn count_of(&self, phase: Phase) -> u64 {
        self.phases
            .iter()
            .find(|s| s.phase == phase.name())
            .map(|s| s.count)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_profiler_records_nothing() {
        let mut prof = PhaseProfiler::disabled();
        let t = prof.begin();
        prof.end(Phase::Propose, t);
        prof.bump(Phase::Execute, 10);
        prof.add_batches(3, 99);
        let b = prof.breakdown();
        assert_eq!(b.total_nanos(), 0);
        assert_eq!(b.batches_flushed, 0);
        assert_eq!(b.events_emitted, 0);
        assert!(b.phases.iter().all(|s| s.count == 0));
    }

    #[test]
    fn enabled_profiler_counts_scopes_and_bumps() {
        let mut prof = PhaseProfiler::enabled();
        let t = prof.begin();
        prof.end(Phase::Propose, t);
        let t = prof.begin();
        prof.end_n(Phase::Emit, t, 7);
        prof.bump(Phase::Observe, 3);
        prof.add_batches(2, 7);
        let b = prof.breakdown();
        assert_eq!(b.count_of(Phase::Propose), 1);
        assert_eq!(b.count_of(Phase::Emit), 7);
        assert_eq!(b.count_of(Phase::Observe), 3);
        assert_eq!(b.count_of(Phase::Execute), 0);
        assert_eq!(b.batches_flushed, 2);
        assert_eq!(b.events_emitted, 7);
    }

    #[test]
    fn counts_only_zeroes_nanos_and_keeps_counts() {
        let mut prof = PhaseProfiler::enabled();
        let t = prof.begin();
        std::thread::yield_now();
        prof.end_n(Phase::Execute, t, 5);
        let b = prof.breakdown().counts_only();
        assert_eq!(b.count_of(Phase::Execute), 5);
        assert_eq!(b.total_nanos(), 0);
    }

    #[test]
    fn merge_sums_counts_in_any_order() {
        let mut a = PhaseProfiler::enabled();
        a.bump(Phase::Propose, 2);
        a.add_batches(1, 4);
        let mut b = PhaseProfiler::enabled();
        b.bump(Phase::Propose, 3);
        b.bump(Phase::Steal, 1);
        b.add_batches(2, 6);
        let mut merged = PhaseProfiler::enabled();
        merged.merge(&a.breakdown());
        merged.merge(&b.breakdown());
        let m = merged.breakdown();
        assert_eq!(m.count_of(Phase::Propose), 5);
        assert_eq!(m.count_of(Phase::Steal), 1);
        assert_eq!(m.batches_flushed, 3);
        assert_eq!(m.events_emitted, 10);
    }

    #[test]
    fn breakdown_round_trips_through_json() {
        let mut prof = PhaseProfiler::enabled();
        prof.bump(Phase::Emit, 11);
        prof.add_batches(4, 11);
        let b = prof.breakdown().counts_only();
        let json = serde_json::to_string(&b).expect("serializes");
        let back: PhaseBreakdown = serde_json::from_str(&json).expect("deserializes");
        assert_eq!(back, b);
    }
}
