//! The federated deployment of Figure 3: facilities retaining operational
//! autonomy, coordinated through standard protocols.
//!
//! A [`Federation`] owns the cross-facility substrate — service registry,
//! data fabric, per-facility auth authorities — and exposes the three
//! operations the paper's deployment story needs: capability discovery
//! across boundaries, authenticated handshakes between facilities, and
//! data movement over the fabric.

use evoflow_coord::{Authority, Query, ServiceRegistry, Token};
use evoflow_facility::{DataFabric, Facility, TransferPlan};
use evoflow_sim::fnv1a;
use serde::Serialize;
use std::collections::BTreeMap;

/// A federation of autonomous facilities (Fig 3).
pub struct Federation {
    facilities: Vec<Facility>,
    registry: ServiceRegistry,
    fabric: DataFabric,
    authorities: BTreeMap<String, Authority>,
    clock: u64,
}

/// Result of an authenticated cross-facility handshake.
#[derive(Debug, Clone, Serialize)]
pub struct Handshake {
    /// Requesting facility.
    pub from: String,
    /// Serving facility.
    pub to: String,
    /// Capability requested.
    pub capability: String,
    /// Matched service endpoint.
    pub endpoint: String,
    /// Whether the capability token verified at the serving side.
    pub authenticated: bool,
}

/// Federation-level errors.
#[derive(Debug, Clone, PartialEq)]
pub enum FederationError {
    /// No live service offers the capability.
    NoProvider(String),
    /// Unknown facility name.
    UnknownFacility(String),
    /// Authentication failed.
    AuthFailed(String),
}

impl std::fmt::Display for FederationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FederationError::NoProvider(c) => write!(f, "no provider for capability {c:?}"),
            FederationError::UnknownFacility(n) => write!(f, "unknown facility {n:?}"),
            FederationError::AuthFailed(e) => write!(f, "authentication failed: {e}"),
        }
    }
}

impl std::error::Error for FederationError {}

impl Federation {
    /// Assemble a federation from facilities: advertises every facility's
    /// capabilities, wires the standard fabric, and creates one auth
    /// authority per facility (distributed control, §5.1).
    pub fn assemble(facilities: Vec<Facility>) -> Self {
        let mut registry = ServiceRegistry::new(1_000);
        let mut authorities = BTreeMap::new();
        let mut fabric = DataFabric::new();
        let mut prev: Option<usize> = None;
        for f in &facilities {
            for ad in f.advertisements() {
                registry.advertise(ad, 0);
            }
            authorities.insert(
                f.name.clone(),
                Authority::new(f.name.clone(), fnv1a(f.name.as_bytes())),
            );
            let site = fabric.site(f.name.clone());
            // Chain + hub topology: every facility links to the previous one
            // (WAN) so the fabric is connected even for custom federations.
            if let Some(p) = prev {
                fabric.link(
                    p,
                    site,
                    evoflow_facility::Link {
                        gbps: 100.0,
                        latency_ms: 20.0,
                    },
                );
            }
            prev = Some(site);
        }
        Federation {
            facilities,
            registry,
            fabric,
            authorities,
            clock: 0,
        }
    }

    /// The standard five-facility federation with the Figure 3 fabric.
    pub fn standard() -> Self {
        let mut fed = Self::assemble(evoflow_facility::presets::standard_federation());
        fed.fabric = DataFabric::standard();
        fed
    }

    /// Facilities in the federation.
    pub fn facilities(&self) -> &[Facility] {
        &self.facilities
    }

    /// Mutable facility access (sample accounting).
    pub fn facility_mut(&mut self, name: &str) -> Option<&mut Facility> {
        self.facilities.iter_mut().find(|f| f.name == name)
    }

    /// The shared service registry.
    pub fn registry(&self) -> &ServiceRegistry {
        &self.registry
    }

    /// Advance the federation's logical clock (heartbeats fire).
    pub fn tick(&mut self) {
        self.clock += 1;
        let names: Vec<String> = self
            .facilities
            .iter()
            .flat_map(|f| f.advertisements().into_iter().map(|a| a.name))
            .collect();
        for n in names {
            self.registry.heartbeat(&n, self.clock);
        }
    }

    /// Discover live providers of a capability across all facilities.
    pub fn discover(&self, capability: &str) -> Vec<String> {
        self.registry
            .discover(&Query::capability(capability), self.clock)
            .into_iter()
            .map(|d| d.endpoint.clone())
            .collect()
    }

    /// Authenticated cross-facility request: `from` asks for `capability`,
    /// the federation matches a provider, the provider's authority issues a
    /// scoped token, and the serving side verifies it.
    pub fn handshake(
        &mut self,
        from: &str,
        capability: &str,
    ) -> Result<Handshake, FederationError> {
        if !self.facilities.iter().any(|f| f.name == from) {
            return Err(FederationError::UnknownFacility(from.to_string()));
        }
        let hits = self
            .registry
            .discover(&Query::capability(capability), self.clock);
        let hit = hits
            .first()
            .ok_or_else(|| FederationError::NoProvider(capability.to_string()))?;
        let to = hit.facility.clone();
        let endpoint = hit.endpoint.clone();

        let scope = format!("invoke:{capability}");
        let token: Token = {
            let auth = self
                .authorities
                .get_mut(&to)
                .ok_or_else(|| FederationError::UnknownFacility(to.clone()))?;
            auth.issue(from, [scope.clone()], self.clock + 100)
        };
        let auth = self
            .authorities
            .get(&to)
            .ok_or_else(|| FederationError::UnknownFacility(to.clone()))?;
        auth.verify(&token, Some(&scope), self.clock)
            .map_err(|e| FederationError::AuthFailed(e.to_string()))?;

        Ok(Handshake {
            from: from.to_string(),
            to,
            capability: capability.to_string(),
            endpoint,
            authenticated: true,
        })
    }

    /// The federation's data fabric (read-only: transfer accounting).
    pub fn fabric(&self) -> &DataFabric {
        &self.fabric
    }

    /// Estimate a transfer of `gb` gigabytes between facilities without
    /// accounting it — the pure half of [`Federation::transfer`], used by
    /// data-locality placement to compare candidate destinations.
    pub fn estimate_transfer(
        &self,
        from: &str,
        to: &str,
        gb: f64,
    ) -> Result<TransferPlan, FederationError> {
        self.fabric
            .plan(from, to, gb)
            .map_err(|e| FederationError::UnknownFacility(e.to_string()))
    }

    /// Move `gb` gigabytes between facilities over the fabric.
    pub fn transfer(
        &mut self,
        from: &str,
        to: &str,
        gb: f64,
    ) -> Result<TransferPlan, FederationError> {
        self.fabric
            .transfer(from, to, gb)
            .map_err(|e| FederationError::UnknownFacility(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_federation_discovers_capabilities() {
        let fed = Federation::standard();
        assert_eq!(fed.facilities().len(), 5);
        let synth = fed.discover("synthesis/thin-film");
        assert!(!synth.is_empty());
        let dft = fed.discover("simulation/dft");
        assert!(!dft.is_empty());
        assert!(fed.discover("teleportation/instant").is_empty());
    }

    #[test]
    fn handshake_authenticates_cross_facility() {
        let mut fed = Federation::standard();
        let hs = fed
            .handshake("hpc-center", "characterization/xrd")
            .expect("beamline exists");
        assert!(hs.authenticated);
        assert_eq!(hs.to, "lightsource");
        assert_eq!(hs.from, "hpc-center");
    }

    #[test]
    fn handshake_errors() {
        let mut fed = Federation::standard();
        assert_eq!(
            fed.handshake("ghost-lab", "characterization/xrd")
                .unwrap_err(),
            FederationError::UnknownFacility("ghost-lab".into())
        );
        assert_eq!(
            fed.handshake("hpc-center", "alchemy/gold").unwrap_err(),
            FederationError::NoProvider("alchemy/gold".into())
        );
    }

    #[test]
    fn transfers_route_over_fabric() {
        let mut fed = Federation::standard();
        let plan = fed.transfer("hpc-center", "ai-hub", 50.0).unwrap();
        assert!(plan.duration.as_secs_f64() > 0.0);
        assert!(plan.bottleneck_gbps >= 100.0);
    }

    #[test]
    fn custom_federation_fabric_is_connected() {
        let mut fed = Federation::assemble(vec![
            Facility::new("site-a", evoflow_facility::FacilityKind::Edge),
            Facility::new("site-b", evoflow_facility::FacilityKind::Hpc),
            Facility::new("site-c", evoflow_facility::FacilityKind::Cloud),
        ]);
        // Chain topology: a—b—c; a→c routes through b.
        let plan = fed.transfer("site-a", "site-c", 1.0).unwrap();
        assert_eq!(plan.route, vec!["site-a", "site-b", "site-c"]);
    }

    #[test]
    fn heartbeats_keep_services_alive() {
        let mut fed = Federation::standard();
        for _ in 0..50 {
            fed.tick();
        }
        assert!(!fed.discover("synthesis/thin-film").is_empty());
    }
}
