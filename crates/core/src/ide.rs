//! The Science IDE renderer (§5.2): "New categories of user interface
//! tools such as an integrated development environment (IDE) for human-AI
//! scientific collaboration will emerge specifically designed for
//! planning, experiment designing, knowledge browsing, and intervention."
//!
//! This module is the textual core of that IDE: it renders campaign
//! status, the system's position on the evolution plane, the planned
//! trajectory, and the intervention queue as terminal panels — the same
//! views the paper's Figure 4 shows scientists steering campaigns through.

use crate::campaign::CampaignReport;
use crate::matrix::{Cell, TrajectoryPlanner};
use crate::runtime::HumanInterface;
use evoflow_agents::Pattern;
use evoflow_sm::IntelligenceLevel;

/// Render a boxed panel with a title and content lines.
pub fn panel(title: &str, lines: &[String]) -> String {
    let width = lines
        .iter()
        .map(|l| l.chars().count())
        .chain(std::iter::once(title.chars().count() + 2))
        .max()
        .unwrap_or(0)
        .max(20);
    let mut out = String::new();
    out.push_str(&format!(
        "┌─ {title} {}┐\n",
        "─".repeat(width.saturating_sub(title.chars().count() + 1))
    ));
    for l in lines {
        let pad = width.saturating_sub(l.chars().count());
        out.push_str(&format!("│ {l}{} │\n", " ".repeat(pad)));
    }
    out.push_str(&format!("└{}┘\n", "─".repeat(width + 2)));
    out
}

/// Render the evolution plane with a marker at `cell` — the "where are we"
/// view a steering scientist starts from.
pub fn render_plane(cell: Cell) -> String {
    let mut lines = Vec::new();
    lines.push(format!(
        "{:<14}{}",
        "",
        IntelligenceLevel::ALL
            .iter()
            .map(|l| format!("{:<12}", l.to_string()))
            .collect::<String>()
    ));
    for pattern in Pattern::all() {
        let row_label = format!("{pattern:?}");
        let row_label = row_label
            .split(' ')
            .next()
            .unwrap_or(&row_label)
            .to_string();
        let mut row = format!("{row_label:<14}");
        for level in IntelligenceLevel::ALL {
            let here = level == cell.intelligence && pattern.rank() == cell.composition.rank();
            row.push_str(&format!("{:<12}", if here { "  [★]" } else { "  [ ]" }));
        }
        lines.push(row);
    }
    lines.push(format!("★ = {cell} · {}", cell.representative()));
    panel("evolution plane", &lines)
}

/// Render a campaign report as the IDE's status panel.
pub fn render_campaign(report: &CampaignReport) -> String {
    let lines = vec![
        format!("cell            {}", report.cell_label),
        format!(
            "progress        {} experiments over {:.1} days ({:.0}/day)",
            report.experiments, report.sim_days, report.samples_per_day
        ),
        format!(
            "discoveries     {} distinct · {} total hits · best {:.3}",
            report.distinct_discoveries, report.total_hits, report.best_score
        ),
        format!(
            "first discovery {}",
            report
                .time_to_first_hours
                .map(|h| format!("{h:.1} h"))
                .unwrap_or_else(|| "—".into())
        ),
        format!(
            "loop health     wait {:.1} h / exec {:.1} h · {} rejected · {} Ω rewrites",
            report.decision_wait_hours,
            report.execution_hours,
            report.rejected_proposals,
            report.omega_rewrites
        ),
        format!(
            "knowledge       {} KG nodes · {} prov activities · {} tokens",
            report.kg_nodes, report.prov_activities, report.tokens
        ),
    ];
    panel("campaign status", &lines)
}

/// Render the planned path from `from` to `to` with per-step requirements —
/// the IDE's "planning" view.
pub fn render_trajectory(from: Cell, to: Cell) -> String {
    let planner = TrajectoryPlanner;
    let path = planner.plan(from, to);
    let reqs = planner.requirements(&path);
    let mut lines = Vec::new();
    for (i, cell) in path.iter().enumerate() {
        let marker = if i == 0 { "now" } else { "then" };
        lines.push(format!("{marker:>4}  {cell}"));
        if i < reqs.len() {
            lines.push(format!("      ↳ {}", reqs[i]));
        }
    }
    panel("trajectory plan", &lines)
}

/// Render the intervention queue — the IDE's human-on-the-loop view.
pub fn render_interventions(hi: &HumanInterface) -> String {
    let lines = if hi.interventions.is_empty() {
        vec!["no pending interventions — agents within bounds".to_string()]
    } else {
        hi.interventions
            .iter()
            .enumerate()
            .map(|(i, s)| format!("{:>2}. {s}", i + 1))
            .collect()
    };
    panel("interventions", &lines)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plane_marks_the_right_cell() {
        let s = render_plane(Cell::autonomous_science());
        assert!(s.contains('★'));
        assert!(s.contains("[Intelligent × Swarm]"));
        assert!(s.contains("Emergent AI"));
        // Exactly one marker on the grid (plus one in the legend).
        assert_eq!(s.matches("[★]").count(), 1);
    }

    #[test]
    fn campaign_panel_contains_key_metrics() {
        let report = CampaignReport {
            cell_label: "[Intelligent × Swarm]".into(),
            experiments: 100,
            distinct_discoveries: 3,
            total_hits: 12,
            sim_days: 7.0,
            discoveries_per_week: 3.0,
            samples_per_day: 14.3,
            time_to_first_hours: Some(5.5),
            best_score: 0.91,
            decision_wait_hours: 0.5,
            execution_hours: 70.0,
            rejected_proposals: 4,
            omega_rewrites: 2,
            kg_nodes: 300,
            prov_activities: 200,
            tokens: 999,
        };
        let s = render_campaign(&report);
        assert!(s.contains("100 experiments"));
        assert!(s.contains("3 distinct"));
        assert!(s.contains("5.5 h"));
        assert!(s.contains("2 Ω rewrites"));
    }

    #[test]
    fn trajectory_panel_lists_every_step() {
        let s = render_trajectory(Cell::traditional_wms(), Cell::autonomous_science());
        assert!(s.contains("now"));
        assert_eq!(s.matches("then").count(), 7);
        assert!(s.contains("reasoning engines"));
    }

    #[test]
    fn interventions_panel_handles_both_states() {
        let mut hi = HumanInterface::default();
        assert!(render_interventions(&hi).contains("no pending"));
        hi.request_intervention("sample budget at 5%");
        let s = render_interventions(&hi);
        assert!(s.contains("1. sample budget at 5%"));
    }

    #[test]
    fn panels_are_rectangular() {
        let s = panel("t", &["short".into(), "a much longer line here".into()]);
        let widths: Vec<usize> = s.lines().map(|l| l.chars().count()).collect();
        assert!(
            widths.windows(2).all(|w| w[0] == w[1]),
            "ragged panel: {widths:?}"
        );
    }
}
