//! The shared instrument-calibration control task and one reference
//! controller per Table 1 intelligence level.
//!
//! The task models the paper's motivating reality (§2.1): "the noisy and
//! failure-prone real-world execution environment" that forces workflows up
//! the intelligence axis. An instrument parameter drifts; a controller must
//! keep it in band using a noisy sensor. Scenario difficulty tiers exercise
//! exactly the capability each level adds:
//!
//! * `stable`   — process noise only: even Static survives a while.
//! * `noisy`    — heavier noise: Adaptive's feedback pays off.
//! * `biased`   — constant drift: Learning/Optimizing compensate it.
//! * `regime`   — mid-episode sensor-polarity flip + drift reversal: only
//!   Intelligent (Ω rewrite of the controller machine) recovers.

use crate::machine::{History, IntelligenceLevel, Machine, Transition, VerificationSpace};
use evoflow_sim::SimRng;
use serde::{Deserialize, Serialize};

/// Maximum actuator authority per step.
pub const MAX_ACTION: f64 = 2.0;
/// The in-band tolerance |pos| ≤ BAND counts as "in calibration".
pub const BAND: f64 = 1.0;

/// Difficulty configuration for the calibration task.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Scenario {
    /// Sensor (observation) noise standard deviation.
    pub noise_sd: f64,
    /// Process noise standard deviation (random walk of the parameter).
    pub process_sd: f64,
    /// Constant per-step drift bias.
    pub drift_bias: f64,
    /// Probability per step of a disturbance jump.
    pub jump_prob: f64,
    /// Whether sensor polarity and drift sign flip mid-episode.
    pub regime_shift: bool,
    /// Short name used in reports.
    pub name: &'static str,
}

impl Scenario {
    /// Process noise only.
    pub fn stable() -> Self {
        Scenario {
            noise_sd: 0.1,
            process_sd: 0.05,
            drift_bias: 0.0,
            jump_prob: 0.0,
            regime_shift: false,
            name: "stable",
        }
    }

    /// Heavy sensor noise and occasional jumps.
    pub fn noisy() -> Self {
        Scenario {
            noise_sd: 0.4,
            process_sd: 0.1,
            drift_bias: 0.0,
            jump_prob: 0.02,
            regime_shift: false,
            name: "noisy",
        }
    }

    /// Constant drift the controller must learn to cancel. The drift is
    /// strong enough that a proportional controller's steady-state offset
    /// (≈ bias / gain_p) sits at the band edge — the "explosion of
    /// conditions" failure mode that motivates the Learning level (§3.2).
    pub fn biased() -> Self {
        Scenario {
            noise_sd: 0.2,
            process_sd: 0.05,
            drift_bias: 0.75,
            jump_prob: 0.01,
            regime_shift: false,
            name: "biased",
        }
    }

    /// Mid-episode regime shift: sensor gain flips to −1 and drift reverses.
    pub fn regime() -> Self {
        Scenario {
            noise_sd: 0.2,
            process_sd: 0.05,
            drift_bias: 0.25,
            jump_prob: 0.01,
            regime_shift: true,
            name: "regime",
        }
    }

    /// All four tiers in difficulty order.
    pub fn all() -> [Scenario; 4] {
        [
            Scenario::stable(),
            Scenario::noisy(),
            Scenario::biased(),
            Scenario::regime(),
        ]
    }
}

/// Controller-visible state: the actuation to apply plus scratch fields.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct CtrlState {
    /// Actuation command chosen this step (applied by the environment).
    pub action: f64,
    /// Discretized observation at decision time (learning levels).
    pub obs_bin: i32,
    /// Controller-specific scratch value (e.g. drift estimate).
    pub aux: f64,
}

/// Result of one calibration episode.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct EpisodeResult {
    /// Fraction of steps with |pos| ≤ [`BAND`].
    pub in_band_fraction: f64,
    /// Mean |pos| across the episode.
    pub mean_abs_error: f64,
    /// Steps where the controller re-entered the band after an excursion.
    pub recoveries: u32,
    /// Total abstract decision cost spent (Table 1 cost scaling).
    pub cost_units: u64,
    /// Whether |pos| exceeded the hard failure bound (instrument damage).
    pub crashed: bool,
}

/// Hard failure bound: beyond this the episode counts as crashed
/// (the paper's "costly errors destroying samples or equipment", §4.3).
pub const CRASH_BOUND: f64 = 25.0;

/// Run one episode of `horizon` steps with the given controller.
pub fn run_episode<T>(
    controller: &mut Machine<CtrlState, u32, f64, T>,
    scenario: Scenario,
    horizon: u32,
    rng: &mut SimRng,
) -> EpisodeResult
where
    T: Transition<CtrlState, u32, f64>,
{
    let mut pos = 0.0f64;
    let mut gain = 1.0f64;
    let mut bias = scenario.drift_bias;
    let mut in_band_steps = 0u32;
    let mut abs_sum = 0.0f64;
    let mut recoveries = 0u32;
    let mut was_out = false;
    let mut reward = 0.0f64;
    let mut crashed = false;
    let cost_before = controller.cost_units();

    for t in 0..horizon {
        if scenario.regime_shift && t == horizon / 2 {
            gain = -1.0;
            bias = -bias;
        }
        let obs = gain * pos + rng.normal_with(0.0, scenario.noise_sd);
        let state = controller.step(t, &obs, reward);
        let action = state.action.clamp(-MAX_ACTION, MAX_ACTION);

        pos += action;
        pos += bias + rng.normal_with(0.0, scenario.process_sd);
        if scenario.jump_prob > 0.0 && rng.chance(scenario.jump_prob) {
            pos += rng.normal_with(0.0, 3.0);
        }

        reward = -pos.abs();
        abs_sum += pos.abs();
        let in_band = pos.abs() <= BAND;
        if in_band {
            in_band_steps += 1;
            if was_out {
                recoveries += 1;
            }
        }
        was_out = !in_band;
        if pos.abs() > CRASH_BOUND {
            crashed = true;
        }
    }

    EpisodeResult {
        in_band_fraction: in_band_steps as f64 / horizon as f64,
        mean_abs_error: abs_sum / horizon as f64,
        recoveries,
        cost_units: controller.cost_units() - cost_before,
        crashed,
    }
}

fn bin_obs(obs: f64) -> i32 {
    (obs.clamp(-5.0, 5.0)).round() as i32
}

// ---------------------------------------------------------------------------
// Level 1: Static — δ: S×Σ → S
// ---------------------------------------------------------------------------

/// Predetermined actuation schedule; blind to observations.
#[derive(Debug, Clone)]
pub struct StaticController {
    schedule: Vec<f64>,
}

impl StaticController {
    /// The do-nothing schedule traditional static workflows correspond to.
    pub fn zeros() -> Self {
        StaticController {
            schedule: vec![0.0],
        }
    }

    /// An arbitrary fixed schedule (cycled).
    pub fn with_schedule(schedule: Vec<f64>) -> Self {
        assert!(!schedule.is_empty());
        StaticController { schedule }
    }
}

impl Transition<CtrlState, u32, f64> for StaticController {
    fn next(&mut self, _s: &CtrlState, input: &u32, _obs: &f64) -> CtrlState {
        CtrlState {
            action: self.schedule[*input as usize % self.schedule.len()],
            obs_bin: 0,
            aux: 0.0,
        }
    }
    fn level(&self) -> IntelligenceLevel {
        IntelligenceLevel::Static
    }
    fn decision_cost(&self) -> u64 {
        1 // O(1) lookup
    }
    fn verification_space(&self) -> VerificationSpace {
        VerificationSpace::Finite(self.schedule.len() as u64)
    }
}

// ---------------------------------------------------------------------------
// Level 2: Adaptive — δ: S×Σ×O → S
// ---------------------------------------------------------------------------

/// Proportional feedback with a deadband: the "explosion of if-then-else"
/// conditional controller of §3.2.
#[derive(Debug, Clone)]
pub struct AdaptiveController {
    /// Proportional gain applied to the observation.
    pub gain_p: f64,
    /// No actuation while |obs| is below this.
    pub deadband: f64,
}

impl Default for AdaptiveController {
    fn default() -> Self {
        AdaptiveController {
            gain_p: 0.8,
            deadband: 0.3,
        }
    }
}

impl Transition<CtrlState, u32, f64> for AdaptiveController {
    fn next(&mut self, _s: &CtrlState, _input: &u32, obs: &f64) -> CtrlState {
        let action = if obs.abs() <= self.deadband {
            0.0
        } else {
            (-self.gain_p * obs).clamp(-MAX_ACTION, MAX_ACTION)
        };
        CtrlState {
            action,
            obs_bin: bin_obs(*obs),
            aux: 0.0,
        }
    }
    fn level(&self) -> IntelligenceLevel {
        IntelligenceLevel::Adaptive
    }
    fn decision_cost(&self) -> u64 {
        2
    }
    fn verification_space(&self) -> VerificationSpace {
        // observation bins × branch outcomes
        VerificationSpace::Finite(11 * 3)
    }
}

// ---------------------------------------------------------------------------
// Level 3: Learning — δ_{t+1} = L(δ_t, H)
// ---------------------------------------------------------------------------

/// Tabular Q-learning over discretized observations.
///
/// The table persists across episodes, so performance improves with
/// experience — the property Table 1 attributes to learning systems
/// ("requires a data infrastructure to maintain history H").
#[derive(Debug, Clone)]
pub struct LearningController {
    /// Q[obs_bin + 5][action index].
    q: [[f64; 5]; 11],
    /// Exploration rate (decays multiplicatively each learn call).
    pub epsilon: f64,
    /// Learning rate α.
    pub alpha: f64,
    /// Discount γ.
    pub gamma: f64,
    rng: SimRng,
}

/// Candidate actions for the learning controller.
pub const LEARN_ACTIONS: [f64; 5] = [-2.0, -1.0, 0.0, 1.0, 2.0];

impl LearningController {
    /// Fresh table with the given exploration seed.
    pub fn new(seed: u64) -> Self {
        LearningController {
            q: [[0.0; 5]; 11],
            epsilon: 0.25,
            alpha: 0.4,
            gamma: 0.85,
            rng: SimRng::from_seed_u64(seed),
        }
    }

    fn bin_index(bin: i32) -> usize {
        (bin + 5).clamp(0, 10) as usize
    }

    fn best_action(&self, bin: i32) -> usize {
        let row = &self.q[Self::bin_index(bin)];
        let mut best = 0;
        for (i, v) in row.iter().enumerate() {
            if *v > row[best] {
                best = i;
            }
        }
        best
    }
}

impl Transition<CtrlState, u32, f64> for LearningController {
    fn next(&mut self, _s: &CtrlState, _input: &u32, obs: &f64) -> CtrlState {
        let bin = bin_obs(*obs);
        let a_idx = if self.rng.chance(self.epsilon) {
            self.rng.below(5)
        } else {
            self.best_action(bin)
        };
        CtrlState {
            action: LEARN_ACTIONS[a_idx],
            obs_bin: bin,
            aux: a_idx as f64,
        }
    }

    fn learn(&mut self, history: &History<CtrlState, u32>) {
        // Q-update over the last completed (s, a, r, s') tuple: the reward
        // delivered with record k applies to the action chosen at k-1.
        let recs = history.records();
        if recs.len() < 2 {
            return;
        }
        let prev = &recs[recs.len() - 2];
        let cur = &recs[recs.len() - 1];
        let s = Self::bin_index(prev.next.obs_bin);
        let a = (prev.next.aux as usize).min(4);
        let s2 = Self::bin_index(cur.next.obs_bin);
        let r = cur.reward;
        let max_next = self.q[s2].iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        self.q[s][a] += self.alpha * (r + self.gamma * max_next - self.q[s][a]);
        self.epsilon = (self.epsilon * 0.9995).max(0.02);
    }

    fn level(&self) -> IntelligenceLevel {
        IntelligenceLevel::Learning
    }
    fn decision_cost(&self) -> u64 {
        10 // table scan + update
    }
    fn verification_space(&self) -> VerificationSpace {
        // Every realisable greedy policy: actions^bins.
        VerificationSpace::Finite(5u64.pow(11))
    }
}

// ---------------------------------------------------------------------------
// Level 4: Optimizing — δ* = argmin_δ J(δ)
// ---------------------------------------------------------------------------

/// Model-based one-step optimizer: maintains an online drift estimate and
/// picks the action minimising predicted |obs'|, with ε-exploration
/// ("balancing exploration and exploitation", Table 1).
///
/// Its model assumes positive sensor polarity — exactly the fixed assumption
/// the regime-shift scenario breaks, which motivates the Intelligent level.
#[derive(Debug, Clone)]
pub struct OptimizingController {
    drift_est: f64,
    last_obs: Option<f64>,
    last_action: f64,
    /// EWMA factor for the drift estimate.
    pub ewma: f64,
    /// Exploration probability.
    pub explore: f64,
    /// Assumed sensor polarity (the Intelligent wrapper rewrites this).
    pub polarity: f64,
    rng: SimRng,
}

/// Candidate actions evaluated by the optimizer's argmin.
pub const OPT_ACTIONS: [f64; 9] = [-2.0, -1.5, -1.0, -0.5, 0.0, 0.5, 1.0, 1.5, 2.0];

impl OptimizingController {
    /// Fresh optimizer with the given exploration seed.
    pub fn new(seed: u64) -> Self {
        OptimizingController {
            drift_est: 0.0,
            last_obs: None,
            last_action: 0.0,
            ewma: 0.25,
            explore: 0.05,
            polarity: 1.0,
            rng: SimRng::from_seed_u64(seed),
        }
    }

    /// Reset model state (used by the Ω wrapper after a rewrite).
    pub fn reset_model(&mut self) {
        self.drift_est = 0.0;
        self.last_obs = None;
        self.last_action = 0.0;
    }
}

impl Transition<CtrlState, u32, f64> for OptimizingController {
    fn next(&mut self, _s: &CtrlState, _input: &u32, obs: &f64) -> CtrlState {
        // Update drift model from the observed residual.
        if let Some(prev) = self.last_obs {
            let predicted = prev + self.polarity * self.last_action;
            let residual = obs - predicted;
            self.drift_est += self.ewma * (residual - self.drift_est);
        }
        // argmin_a J(a) = |obs + polarity*a + drift_est|
        let mut best = 0.0;
        let mut best_j = f64::INFINITY;
        for &a in &OPT_ACTIONS {
            let j = (obs + self.polarity * a + self.drift_est).abs();
            if j < best_j {
                best_j = j;
                best = a;
            }
        }
        if self.rng.chance(self.explore) {
            best = *self.rng.pick(&OPT_ACTIONS).expect("non-empty");
        }
        self.last_obs = Some(*obs);
        self.last_action = best;
        CtrlState {
            action: best,
            obs_bin: bin_obs(*obs),
            aux: self.drift_est,
        }
    }

    fn level(&self) -> IntelligenceLevel {
        IntelligenceLevel::Optimizing
    }
    fn decision_cost(&self) -> u64 {
        25 // model update + candidate sweep
    }
    fn verification_space(&self) -> VerificationSpace {
        // Sampled model grid × candidate actions: large but finite.
        VerificationSpace::Finite(1_000_000_007)
    }
}

// ---------------------------------------------------------------------------
// Level 5: Intelligent — M' = Ω(M, C, G)
// ---------------------------------------------------------------------------

/// Meta-optimizing wrapper: monitors the causal response of the plant and
/// *rewrites its own machine* (polarity, model reset, gain re-tune) when the
/// observed response contradicts the model — the Ω operator of Table 1
/// applied to the controller itself.
#[derive(Debug, Clone)]
pub struct IntelligentController {
    inner: OptimizingController,
    /// Window of (action, Δobs) pairs for causal response estimation.
    window: Vec<(f64, f64)>,
    window_cap: usize,
    prev_obs: Option<f64>,
    prev_action: f64,
    rewrites: u32,
    cooldown: u32,
}

impl IntelligentController {
    /// Fresh meta-controller.
    pub fn new(seed: u64) -> Self {
        IntelligentController {
            inner: OptimizingController::new(seed),
            window: Vec::new(),
            window_cap: 12,
            prev_obs: None,
            prev_action: 0.0,
            rewrites: 0,
            cooldown: 0,
        }
    }

    /// How many times Ω rewrote the machine.
    pub fn rewrites(&self) -> u32 {
        self.rewrites
    }

    /// Estimated causal response gain cov(a, Δobs)/var(a) over the window.
    fn response_gain(&self) -> Option<f64> {
        if self.window.len() < self.window_cap {
            return None;
        }
        let n = self.window.len() as f64;
        let ma = self.window.iter().map(|(a, _)| a).sum::<f64>() / n;
        let md = self.window.iter().map(|(_, d)| d).sum::<f64>() / n;
        let cov = self
            .window
            .iter()
            .map(|(a, d)| (a - ma) * (d - md))
            .sum::<f64>()
            / n;
        let var = self
            .window
            .iter()
            .map(|(a, _)| (a - ma).powi(2))
            .sum::<f64>()
            / n;
        if var < 1e-6 {
            None
        } else {
            Some(cov / var)
        }
    }
}

impl Transition<CtrlState, u32, f64> for IntelligentController {
    fn next(&mut self, s: &CtrlState, input: &u32, obs: &f64) -> CtrlState {
        // Record causal evidence: what did the last action do to the sensor?
        if let Some(prev) = self.prev_obs {
            if self.prev_action.abs() > 0.25 {
                if self.window.len() == self.window_cap {
                    self.window.remove(0);
                }
                self.window.push((self.prev_action, obs - prev));
            }
        }
        if self.cooldown > 0 {
            self.cooldown -= 1;
        }
        // Ω: if the measured response gain contradicts the assumed polarity,
        // rewrite the machine — flip polarity, reset the model, clear evidence.
        if self.cooldown == 0 {
            if let Some(g) = self.response_gain() {
                if g * self.inner.polarity < -0.2 {
                    self.inner.polarity = -self.inner.polarity;
                    self.inner.reset_model();
                    self.window.clear();
                    self.rewrites += 1;
                    self.cooldown = self.window_cap as u32;
                }
            }
        }
        let out = self.inner.next(s, input, obs);
        self.prev_obs = Some(*obs);
        self.prev_action = out.action;
        out
    }

    fn level(&self) -> IntelligenceLevel {
        IntelligenceLevel::Intelligent
    }
    fn decision_cost(&self) -> u64 {
        100 // causal inference + possible machine rewrite
    }
    fn verification_space(&self) -> VerificationSpace {
        VerificationSpace::Unbounded // Ω can rewrite the machine arbitrarily
    }
}

/// Construct a fresh machine for `level` with deterministic seeding.
pub fn controller_for_level(
    level: IntelligenceLevel,
    seed: u64,
) -> Machine<CtrlState, u32, f64, Box<dyn Transition<CtrlState, u32, f64>>> {
    let t: Box<dyn Transition<CtrlState, u32, f64>> = match level {
        IntelligenceLevel::Static => Box::new(StaticController::zeros()),
        IntelligenceLevel::Adaptive => Box::new(AdaptiveController::default()),
        IntelligenceLevel::Learning => Box::new(LearningController::new(seed)),
        IntelligenceLevel::Optimizing => Box::new(OptimizingController::new(seed)),
        IntelligenceLevel::Intelligent => Box::new(IntelligentController::new(seed)),
    };
    Machine::new(CtrlState::default(), t)
}

impl<S, I, O> Transition<S, I, O> for Box<dyn Transition<S, I, O>> {
    fn next(&mut self, state: &S, input: &I, obs: &O) -> S {
        (**self).next(state, input, obs)
    }
    fn level(&self) -> IntelligenceLevel {
        (**self).level()
    }
    fn learn(&mut self, history: &History<S, I>) {
        (**self).learn(history)
    }
    fn decision_cost(&self) -> u64 {
        (**self).decision_cost()
    }
    fn verification_space(&self) -> VerificationSpace {
        (**self).verification_space()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn episode(level: IntelligenceLevel, scenario: Scenario, seed: u64) -> EpisodeResult {
        let mut m = controller_for_level(level, seed);
        let mut rng = SimRng::from_seed_u64(seed ^ 0xABCD);
        run_episode(&mut m, scenario, 400, &mut rng)
    }

    fn mean_in_band(level: IntelligenceLevel, scenario: Scenario) -> f64 {
        (0..8)
            .map(|s| episode(level, scenario, s).in_band_fraction)
            .sum::<f64>()
            / 8.0
    }

    #[test]
    fn adaptive_beats_static_under_noise() {
        let adaptive = mean_in_band(IntelligenceLevel::Adaptive, Scenario::noisy());
        let stat = mean_in_band(IntelligenceLevel::Static, Scenario::noisy());
        assert!(
            adaptive > stat + 0.1,
            "adaptive {adaptive:.2} vs static {stat:.2}"
        );
    }

    #[test]
    fn optimizing_beats_adaptive_under_bias() {
        let opt = mean_in_band(IntelligenceLevel::Optimizing, Scenario::biased());
        let ada = mean_in_band(IntelligenceLevel::Adaptive, Scenario::biased());
        assert!(opt > ada, "optimizing {opt:.2} vs adaptive {ada:.2}");
    }

    #[test]
    fn intelligent_survives_regime_shift() {
        let intel = mean_in_band(IntelligenceLevel::Intelligent, Scenario::regime());
        let opt = mean_in_band(IntelligenceLevel::Optimizing, Scenario::regime());
        assert!(
            intel > opt + 0.15,
            "intelligent {intel:.2} vs optimizing {opt:.2}"
        );
    }

    #[test]
    fn intelligent_rewrites_machine_on_regime_shift() {
        let mut m = Machine::new(CtrlState::default(), IntelligentController::new(3));
        let mut rng = SimRng::from_seed_u64(99);
        run_episode(&mut m, Scenario::regime(), 400, &mut rng);
        assert!(m.transition.rewrites() >= 1, "Ω never fired");
    }

    #[test]
    fn learning_improves_with_experience() {
        // Same controller across episodes: later episodes should beat the
        // first ones on the biased scenario.
        let mut m = Machine::new(CtrlState::default(), LearningController::new(7));
        let mut rng = SimRng::from_seed_u64(1234);
        let early: f64 = (0..3)
            .map(|_| run_episode(&mut m, Scenario::biased(), 300, &mut rng).in_band_fraction)
            .sum::<f64>()
            / 3.0;
        for _ in 0..20 {
            run_episode(&mut m, Scenario::biased(), 300, &mut rng);
        }
        let late: f64 = (0..3)
            .map(|_| run_episode(&mut m, Scenario::biased(), 300, &mut rng).in_band_fraction)
            .sum::<f64>()
            / 3.0;
        assert!(late > early, "late {late:.3} <= early {early:.3}");
    }

    #[test]
    fn decision_cost_scales_with_level() {
        let costs: Vec<u64> = IntelligenceLevel::ALL
            .iter()
            .map(|l| {
                let m = controller_for_level(*l, 0);
                m.transition.decision_cost()
            })
            .collect();
        for w in costs.windows(2) {
            assert!(w[0] < w[1], "costs not strictly increasing: {costs:?}");
        }
    }

    #[test]
    fn verification_space_grows_then_diverges() {
        let spaces: Vec<VerificationSpace> = IntelligenceLevel::ALL
            .iter()
            .map(|l| controller_for_level(*l, 0).transition.verification_space())
            .collect();
        let sizes: Vec<Option<u64>> = spaces.iter().map(|s| s.size()).collect();
        assert!(sizes[0].unwrap() < sizes[1].unwrap());
        assert!(sizes[1].unwrap() < sizes[2].unwrap());
        assert!(sizes[2].unwrap() < sizes[3].unwrap());
        assert_eq!(sizes[4], None, "Ω must be unbounded/undecidable");
    }

    #[test]
    fn episodes_are_deterministic_given_seeds() {
        let a = episode(IntelligenceLevel::Optimizing, Scenario::noisy(), 5);
        let b = episode(IntelligenceLevel::Optimizing, Scenario::noisy(), 5);
        assert_eq!(a.in_band_fraction, b.in_band_fraction);
        assert_eq!(a.cost_units, b.cost_units);
    }
}
