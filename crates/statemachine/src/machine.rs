//! The generalized transition function of Table 1 and the machine loop that
//! executes it.
//!
//! Table 1's five intelligence levels are progressively richer δ signatures:
//!
//! | Level | Formalism | Mechanism |
//! |---|---|---|
//! | Static | `δ: S×Σ → S` | lookup of predetermined paths |
//! | Adaptive | `δ: S×Σ×O → S` | observation-conditioned branching |
//! | Learning | `δ_{t+1} = L(δ_t, H)` | history-driven updates |
//! | Optimizing | `δ* = argmin_δ J(δ)` | cost-seeking search |
//! | Intelligent | `M' = Ω(M, C, G)` | meta-optimization rewriting the machine |
//!
//! The [`Transition`] trait captures all five with one signature: levels that
//! ignore observations simply don't read `obs`; learning levels mutate
//! themselves in [`Transition::learn`]; intelligent machines are rewritten
//! through [`crate::meta::MetaOperator`].

use serde::{Deserialize, Serialize};
use std::fmt;

/// The intelligence dimension of the evolution framework (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum IntelligenceLevel {
    /// Predetermined execution paths; transition depends only on state+input.
    Static,
    /// Runtime adjustment from observations/feedback signals `O`.
    Adaptive,
    /// Transition function updated from experience history `H`.
    Learning,
    /// Goal-seeking behaviour minimising a cost function `J`.
    Optimizing,
    /// Meta-optimization `Ω` that can redefine states, transitions, goals.
    Intelligent,
}

impl IntelligenceLevel {
    /// All levels in ascending sophistication order.
    pub const ALL: [IntelligenceLevel; 5] = [
        IntelligenceLevel::Static,
        IntelligenceLevel::Adaptive,
        IntelligenceLevel::Learning,
        IntelligenceLevel::Optimizing,
        IntelligenceLevel::Intelligent,
    ];

    /// The δ formalism string used in Table 1.
    pub fn formalism(self) -> &'static str {
        match self {
            IntelligenceLevel::Static => "δ: S×Σ → S",
            IntelligenceLevel::Adaptive => "δ: S×Σ×O → S",
            IntelligenceLevel::Learning => "δ_{t+1} = L(δ_t, H)",
            IntelligenceLevel::Optimizing => "δ* = argmin_δ J(δ)",
            IntelligenceLevel::Intelligent => "M' = Ω(M, C, G)",
        }
    }

    /// Table 1's description column.
    pub fn description(self) -> &'static str {
        match self {
            IntelligenceLevel::Static => {
                "Transition function depends solely on current state and input, \
                 implementing predetermined execution paths"
            }
            IntelligenceLevel::Adaptive => {
                "Extended with observations/feedback signals O enabling runtime \
                 adjustments and conditional branching"
            }
            IntelligenceLevel::Learning => {
                "Incorporates history through learning function L that updates \
                 transitions based on experience H"
            }
            IntelligenceLevel::Optimizing => {
                "Seeks optimal behavior via cost function J, balancing \
                 exploration and exploitation"
            }
            IntelligenceLevel::Intelligent => {
                "Meta-optimization through operator Ω that can redefine states, \
                 transitions, and goals based on context"
            }
        }
    }

    /// Representative existing system named in §3.2.
    pub fn exemplar(self) -> &'static str {
        match self {
            IntelligenceLevel::Static => "Traditional HPC workflows",
            IntelligenceLevel::Adaptive => "Fault-tolerant frameworks with feedback",
            IntelligenceLevel::Learning => "ML-guided parameter selection",
            IntelligenceLevel::Optimizing => "Automated tuning platforms",
            IntelligenceLevel::Intelligent => "Autonomous lab controllers",
        }
    }

    /// Rank in the evolution order (0..=4).
    pub fn rank(self) -> usize {
        match self {
            IntelligenceLevel::Static => 0,
            IntelligenceLevel::Adaptive => 1,
            IntelligenceLevel::Learning => 2,
            IntelligenceLevel::Optimizing => 3,
            IntelligenceLevel::Intelligent => 4,
        }
    }

    /// The next level along the intelligence axis, if any.
    pub fn next(self) -> Option<IntelligenceLevel> {
        Self::ALL.get(self.rank() + 1).copied()
    }
}

impl fmt::Display for IntelligenceLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            IntelligenceLevel::Static => "Static",
            IntelligenceLevel::Adaptive => "Adaptive",
            IntelligenceLevel::Learning => "Learning",
            IntelligenceLevel::Optimizing => "Optimizing",
            IntelligenceLevel::Intelligent => "Intelligent",
        };
        f.write_str(s)
    }
}

/// Size of the space a verifier must enumerate to certify a transition
/// function — Table 1's verification-complexity column made measurable.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum VerificationSpace {
    /// Finitely many behaviours: exhaustive checking terminates.
    Finite(u64),
    /// Behaviour space has no useful bound (meta-optimization Ω):
    /// verification is undecidable in general.
    Unbounded,
}

impl VerificationSpace {
    /// The size when finite.
    pub fn size(self) -> Option<u64> {
        match self {
            VerificationSpace::Finite(n) => Some(n),
            VerificationSpace::Unbounded => None,
        }
    }
}

/// One experience record in the history `H`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Experience<S, I> {
    /// State before the transition.
    pub state: S,
    /// Input consumed.
    pub input: I,
    /// State after the transition.
    pub next: S,
    /// Scalar feedback associated with the transition.
    pub reward: f64,
}

/// The experience history `H` consumed by learning functions `L`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct History<S, I> {
    records: Vec<Experience<S, I>>,
    capacity: usize,
}

impl<S, I> History<S, I> {
    /// A history retaining at most `capacity` most-recent records.
    pub fn with_capacity(capacity: usize) -> Self {
        History {
            records: Vec::new(),
            capacity: capacity.max(1),
        }
    }

    /// Append a record, evicting the oldest beyond capacity.
    pub fn push(&mut self, e: Experience<S, I>) {
        if self.records.len() == self.capacity {
            self.records.remove(0);
        }
        self.records.push(e);
    }

    /// All retained records, oldest first.
    pub fn records(&self) -> &[Experience<S, I>] {
        &self.records
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the history is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Mean reward over the last `n` records (0 when empty).
    pub fn recent_mean_reward(&self, n: usize) -> f64 {
        let tail = &self.records[self.records.len().saturating_sub(n)..];
        if tail.is_empty() {
            0.0
        } else {
            tail.iter().map(|e| e.reward).sum::<f64>() / tail.len() as f64
        }
    }
}

impl<S, I> Default for History<S, I> {
    fn default() -> Self {
        Self::with_capacity(10_000)
    }
}

/// The generalized transition function δ (all five Table 1 signatures).
pub trait Transition<S, I, O> {
    /// Compute the next state. Static implementations ignore `obs`.
    fn next(&mut self, state: &S, input: &I, obs: &O) -> S;

    /// This transition function's intelligence level.
    fn level(&self) -> IntelligenceLevel;

    /// Learning hook `δ_{t+1} = L(δ_t, H)`; default is the identity
    /// (non-learning levels).
    fn learn(&mut self, _history: &History<S, I>) {}

    /// Abstract per-decision cost units (Table 1's O(1) lookup →
    /// unbounded-computation scaling, made measurable).
    fn decision_cost(&self) -> u64 {
        1
    }

    /// The space a verifier must enumerate to certify this function.
    fn verification_space(&self) -> VerificationSpace {
        VerificationSpace::Finite(1)
    }
}

/// A running machine: current state + transition function + history.
///
/// This is the "execution unit of workflows, the state machine loop" that
/// §3.1 identifies as the common denominator between workflows and agents.
#[derive(Debug, Clone)]
pub struct Machine<S, I, O, T> {
    /// Current state.
    pub state: S,
    /// The transition function δ (any Table 1 level).
    pub transition: T,
    /// Experience history H.
    pub history: History<S, I>,
    steps: u64,
    cost_units: u64,
    _marker: std::marker::PhantomData<(I, O)>,
}

impl<S, I, O, T> Machine<S, I, O, T>
where
    S: Clone,
    I: Clone,
    T: Transition<S, I, O>,
{
    /// Create a machine in `initial` state.
    pub fn new(initial: S, transition: T) -> Self {
        Machine {
            state: initial,
            transition,
            history: History::default(),
            steps: 0,
            cost_units: 0,
            _marker: std::marker::PhantomData,
        }
    }

    /// Execute one loop iteration: δ(state, input, obs) with `reward`
    /// recorded into history, then the learning hook.
    pub fn step(&mut self, input: I, obs: &O, reward: f64) -> &S {
        let next = self.transition.next(&self.state, &input, obs);
        self.history.push(Experience {
            state: self.state.clone(),
            input,
            next: next.clone(),
            reward,
        });
        self.transition.learn(&self.history);
        self.state = next;
        self.steps += 1;
        self.cost_units += self.transition.decision_cost();
        &self.state
    }

    /// Number of loop iterations executed.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Accumulated abstract decision cost.
    pub fn cost_units(&self) -> u64 {
        self.cost_units
    }

    /// The machine's intelligence level (that of its δ).
    pub fn level(&self) -> IntelligenceLevel {
        self.transition.level()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Static counter: next = state + input, ignores observation.
    struct Inc;
    impl Transition<i64, i64, ()> for Inc {
        fn next(&mut self, s: &i64, i: &i64, _: &()) -> i64 {
            s + i
        }
        fn level(&self) -> IntelligenceLevel {
            IntelligenceLevel::Static
        }
    }

    #[test]
    fn machine_loop_accumulates() {
        let mut m = Machine::new(0i64, Inc);
        m.step(2, &(), 0.0);
        m.step(3, &(), 1.0);
        assert_eq!(m.state, 5);
        assert_eq!(m.steps(), 2);
        assert_eq!(m.cost_units(), 2);
        assert_eq!(m.history.len(), 2);
        assert_eq!(m.history.recent_mean_reward(10), 0.5);
    }

    #[test]
    fn levels_are_ordered_and_complete() {
        let ranks: Vec<usize> = IntelligenceLevel::ALL.iter().map(|l| l.rank()).collect();
        assert_eq!(ranks, vec![0, 1, 2, 3, 4]);
        assert_eq!(
            IntelligenceLevel::Static.next(),
            Some(IntelligenceLevel::Adaptive)
        );
        assert_eq!(IntelligenceLevel::Intelligent.next(), None);
        for l in IntelligenceLevel::ALL {
            assert!(!l.formalism().is_empty());
            assert!(!l.description().is_empty());
            assert!(!l.exemplar().is_empty());
        }
    }

    #[test]
    fn history_evicts_beyond_capacity() {
        let mut h: History<u8, u8> = History::with_capacity(2);
        for k in 0..4 {
            h.push(Experience {
                state: k,
                input: 0,
                next: k + 1,
                reward: k as f64,
            });
        }
        assert_eq!(h.len(), 2);
        assert_eq!(h.records()[0].state, 2);
        assert_eq!(h.recent_mean_reward(1), 3.0);
    }

    #[test]
    fn verification_space_accessor() {
        assert_eq!(VerificationSpace::Finite(7).size(), Some(7));
        assert_eq!(VerificationSpace::Unbounded.size(), None);
    }
}
