//! The formal finite state machine `M = (S, Σ, δ, s0, F)` of Figure 1-a.
//!
//! Workflow stages are states, events/data are the input alphabet, and the
//! transition function is an explicit table. Deterministic δ gives the
//! reproducibility traditional workflows rely on (§3.1); the richer
//! transition classes of Table 1 are layered on top in [`crate::machine`].

use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Index of a state in a machine's state set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct StateId(pub u32);

/// Index of a symbol in a machine's input alphabet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SymbolId(pub u32);

impl fmt::Display for StateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}
impl fmt::Display for SymbolId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

/// Errors from machine construction or execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsmError {
    /// A transition references a state not in `S`.
    UnknownState(StateId),
    /// A symbol reference is not in `Σ`.
    UnknownSymbol(SymbolId),
    /// No transition is defined for `(state, symbol)`.
    MissingTransition(StateId, SymbolId),
    /// A duplicate label was supplied.
    DuplicateLabel(String),
    /// The machine has no initial state.
    NoInitialState,
}

impl fmt::Display for FsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsmError::UnknownState(s) => write!(f, "unknown state {s}"),
            FsmError::UnknownSymbol(a) => write!(f, "unknown symbol {a}"),
            FsmError::MissingTransition(s, a) => {
                write!(f, "no transition defined for ({s}, {a})")
            }
            FsmError::DuplicateLabel(l) => write!(f, "duplicate label {l:?}"),
            FsmError::NoInitialState => write!(f, "machine has no initial state"),
        }
    }
}

impl std::error::Error for FsmError {}

/// A deterministic finite state machine with labelled states and symbols.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fsm {
    state_labels: Vec<String>,
    symbol_labels: Vec<String>,
    /// Serialized as a triple list: JSON object keys must be strings, so
    /// the `(state, symbol)` tuple key cannot serialize as a map directly.
    #[serde(with = "delta_serde")]
    delta: BTreeMap<(StateId, SymbolId), StateId>,
    initial: StateId,
    finals: BTreeSet<StateId>,
}

/// (state, symbol) → state maps serialize as `[from, on, to]` triples.
mod delta_serde {
    use super::{StateId, SymbolId};
    use serde::{Deserialize, Deserializer, Serialize, Serializer};
    use std::collections::BTreeMap;

    pub fn serialize<S: Serializer>(
        map: &BTreeMap<(StateId, SymbolId), StateId>,
        ser: S,
    ) -> Result<S::Ok, S::Error> {
        let triples: Vec<(StateId, SymbolId, StateId)> =
            map.iter().map(|(&(s, a), &t)| (s, a, t)).collect();
        triples.serialize(ser)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(
        de: D,
    ) -> Result<BTreeMap<(StateId, SymbolId), StateId>, D::Error> {
        let triples: Vec<(StateId, SymbolId, StateId)> = Vec::deserialize(de)?;
        Ok(triples.into_iter().map(|(s, a, t)| ((s, a), t)).collect())
    }
}

impl Fsm {
    /// Start building a machine.
    pub fn builder() -> FsmBuilder {
        FsmBuilder::default()
    }

    /// Number of states |S|.
    pub fn num_states(&self) -> usize {
        self.state_labels.len()
    }

    /// Number of symbols |Σ|.
    pub fn num_symbols(&self) -> usize {
        self.symbol_labels.len()
    }

    /// Number of defined transitions |δ|.
    pub fn num_transitions(&self) -> usize {
        self.delta.len()
    }

    /// The initial state s0.
    pub fn initial(&self) -> StateId {
        self.initial
    }

    /// Whether `s` is a final (accepting) state.
    pub fn is_final(&self, s: StateId) -> bool {
        self.finals.contains(&s)
    }

    /// The final-state set F.
    pub fn finals(&self) -> impl Iterator<Item = StateId> + '_ {
        self.finals.iter().copied()
    }

    /// Label of state `s`.
    pub fn state_label(&self, s: StateId) -> &str {
        &self.state_labels[s.0 as usize]
    }

    /// Label of symbol `a`.
    pub fn symbol_label(&self, a: SymbolId) -> &str {
        &self.symbol_labels[a.0 as usize]
    }

    /// Find a state by label.
    pub fn state_by_label(&self, label: &str) -> Option<StateId> {
        self.state_labels
            .iter()
            .position(|l| l == label)
            .map(|i| StateId(i as u32))
    }

    /// Find a symbol by label.
    pub fn symbol_by_label(&self, label: &str) -> Option<SymbolId> {
        self.symbol_labels
            .iter()
            .position(|l| l == label)
            .map(|i| SymbolId(i as u32))
    }

    /// δ(s, a), or an error when the transition is undefined.
    pub fn step(&self, s: StateId, a: SymbolId) -> Result<StateId, FsmError> {
        self.delta
            .get(&(s, a))
            .copied()
            .ok_or(FsmError::MissingTransition(s, a))
    }

    /// δ(s, a) as an Option (partial machines are normal for workflows).
    pub fn try_step(&self, s: StateId, a: SymbolId) -> Option<StateId> {
        self.delta.get(&(s, a)).copied()
    }

    /// All transitions as `(from, symbol, to)` triples in deterministic order.
    pub fn transitions(&self) -> impl Iterator<Item = (StateId, SymbolId, StateId)> + '_ {
        self.delta.iter().map(|(&(s, a), &t)| (s, a, t))
    }

    /// The symbols enabled in state `s`.
    pub fn enabled(&self, s: StateId) -> Vec<SymbolId> {
        self.delta
            .range((s, SymbolId(0))..=(s, SymbolId(u32::MAX)))
            .map(|(&(_, a), _)| a)
            .collect()
    }

    /// Run the machine over an input word from s0, recording a [`Trace`].
    /// Stops at the first undefined transition (recorded in the trace).
    pub fn run(&self, word: &[SymbolId]) -> Trace {
        let mut trace = Trace {
            steps: vec![],
            start: self.initial,
            end: self.initial,
            accepted: self.is_final(self.initial),
            stuck: false,
        };
        let mut cur = self.initial;
        for &a in word {
            match self.try_step(cur, a) {
                Some(next) => {
                    trace.steps.push((cur, a, next));
                    cur = next;
                }
                None => {
                    trace.stuck = true;
                    break;
                }
            }
        }
        trace.end = cur;
        trace.accepted = !trace.stuck && self.is_final(cur);
        trace
    }

    /// States reachable from s0 (breadth-first, deterministic order).
    pub fn reachable(&self) -> Vec<StateId> {
        let mut seen = BTreeSet::new();
        let mut queue = std::collections::VecDeque::new();
        seen.insert(self.initial);
        queue.push_back(self.initial);
        while let Some(s) = queue.pop_front() {
            for a in self.enabled(s) {
                let t = self.delta[&(s, a)];
                if seen.insert(t) {
                    queue.push_back(t);
                }
            }
        }
        seen.into_iter().collect()
    }

    /// Whether every reachable non-final state has at least one enabled
    /// symbol (no dead ends before acceptance).
    pub fn is_live(&self) -> bool {
        self.reachable()
            .into_iter()
            .all(|s| self.is_final(s) || !self.enabled(s).is_empty())
    }
}

/// One recorded execution of an [`Fsm`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trace {
    /// `(from, symbol, to)` per step taken.
    pub steps: Vec<(StateId, SymbolId, StateId)>,
    /// State the run started in.
    pub start: StateId,
    /// State the run ended in.
    pub end: StateId,
    /// Whether the run ended in a final state (and never got stuck).
    pub accepted: bool,
    /// Whether the run hit an undefined transition.
    pub stuck: bool,
}

impl Trace {
    /// Number of transitions taken.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether no transitions were taken.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }
}

/// Builder for [`Fsm`].
#[derive(Debug, Default)]
pub struct FsmBuilder {
    states: Vec<String>,
    symbols: Vec<String>,
    delta: BTreeMap<(StateId, SymbolId), StateId>,
    initial: Option<StateId>,
    finals: BTreeSet<StateId>,
}

impl FsmBuilder {
    /// Add a state; returns its id. Labels must be unique.
    pub fn state(&mut self, label: impl Into<String>) -> StateId {
        let label = label.into();
        debug_assert!(
            !self.states.contains(&label),
            "duplicate state label {label:?}"
        );
        let id = StateId(self.states.len() as u32);
        self.states.push(label);
        id
    }

    /// Add a symbol; returns its id. Labels must be unique.
    pub fn symbol(&mut self, label: impl Into<String>) -> SymbolId {
        let label = label.into();
        debug_assert!(
            !self.symbols.contains(&label),
            "duplicate symbol label {label:?}"
        );
        let id = SymbolId(self.symbols.len() as u32);
        self.symbols.push(label);
        id
    }

    /// Define δ(from, on) = to.
    pub fn transition(&mut self, from: StateId, on: SymbolId, to: StateId) -> &mut Self {
        self.delta.insert((from, on), to);
        self
    }

    /// Set the initial state s0.
    pub fn initial(&mut self, s: StateId) -> &mut Self {
        self.initial = Some(s);
        self
    }

    /// Mark `s` as final.
    pub fn final_state(&mut self, s: StateId) -> &mut Self {
        self.finals.insert(s);
        self
    }

    /// Validate and build the machine.
    pub fn build(self) -> Result<Fsm, FsmError> {
        let initial = self.initial.ok_or(FsmError::NoInitialState)?;
        let ns = self.states.len() as u32;
        let na = self.symbols.len() as u32;
        let check_state = |s: StateId| {
            if s.0 < ns {
                Ok(())
            } else {
                Err(FsmError::UnknownState(s))
            }
        };
        check_state(initial)?;
        for (&(s, a), &t) in &self.delta {
            check_state(s)?;
            check_state(t)?;
            if a.0 >= na {
                return Err(FsmError::UnknownSymbol(a));
            }
        }
        for &s in &self.finals {
            check_state(s)?;
        }
        Ok(Fsm {
            state_labels: self.states,
            symbol_labels: self.symbols,
            delta: self.delta,
            initial,
            finals: self.finals,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 3-stage pipeline FSM: ingest -> process -> done.
    fn pipeline() -> Fsm {
        let mut b = Fsm::builder();
        let s0 = b.state("ingest");
        let s1 = b.state("process");
        let s2 = b.state("done");
        let ok = b.symbol("ok");
        b.transition(s0, ok, s1);
        b.transition(s1, ok, s2);
        b.initial(s0);
        b.final_state(s2);
        b.build().unwrap()
    }

    #[test]
    fn run_accepts_complete_word() {
        let m = pipeline();
        let ok = m.symbol_by_label("ok").unwrap();
        let t = m.run(&[ok, ok]);
        assert!(t.accepted);
        assert_eq!(t.len(), 2);
        assert_eq!(m.state_label(t.end), "done");
    }

    #[test]
    fn run_rejects_partial_word() {
        let m = pipeline();
        let ok = m.symbol_by_label("ok").unwrap();
        let t = m.run(&[ok]);
        assert!(!t.accepted);
        assert!(!t.stuck);
        assert_eq!(m.state_label(t.end), "process");
    }

    #[test]
    fn run_reports_stuck() {
        let m = pipeline();
        let ok = m.symbol_by_label("ok").unwrap();
        let t = m.run(&[ok, ok, ok]); // "done" has no outgoing transitions
        assert!(t.stuck);
        assert!(!t.accepted);
    }

    #[test]
    fn reachability_and_liveness() {
        let m = pipeline();
        assert_eq!(m.reachable().len(), 3);
        assert!(m.is_live());

        // Add an unreachable trap and a dead end.
        let mut b = Fsm::builder();
        let s0 = b.state("a");
        let s1 = b.state("dead-end");
        let _s2 = b.state("unreachable");
        let x = b.symbol("x");
        b.transition(s0, x, s1);
        b.initial(s0);
        let m = b.build().unwrap();
        assert_eq!(m.reachable().len(), 2);
        assert!(!m.is_live()); // s1 is non-final with no exits
    }

    #[test]
    fn builder_validates_references() {
        let mut b = Fsm::builder();
        let s0 = b.state("a");
        let x = b.symbol("x");
        b.transition(s0, x, StateId(99));
        b.initial(s0);
        assert_eq!(b.build().unwrap_err(), FsmError::UnknownState(StateId(99)));

        let b2 = Fsm::builder();
        assert_eq!(b2.build().unwrap_err(), FsmError::NoInitialState);
    }

    #[test]
    fn enabled_symbols_sorted() {
        let mut b = Fsm::builder();
        let s0 = b.state("s");
        let a0 = b.symbol("p");
        let a1 = b.symbol("q");
        b.transition(s0, a1, s0);
        b.transition(s0, a0, s0);
        b.initial(s0);
        let m = b.build().unwrap();
        assert_eq!(m.enabled(s0), vec![a0, a1]);
        assert_eq!(m.num_transitions(), 2);
    }

    #[test]
    fn step_errors_on_missing() {
        let m = pipeline();
        let done = m.state_by_label("done").unwrap();
        let ok = m.symbol_by_label("ok").unwrap();
        assert!(matches!(
            m.step(done, ok),
            Err(FsmError::MissingTransition(_, _))
        ));
    }
}
