//! DAG workflows and their compilation to state machines (Figure 1-b).
//!
//! The paper's observation: a DAG workflow *is* a state machine whose states
//! are execution frontiers (sets of completed tasks) and whose alphabet is
//! task-completion events. For sequential DAGs the construction is linear;
//! for parallel DAGs the frontier construction exhibits the state-space
//! growth that the verification-cost experiment (`claim_verification`)
//! measures.

use crate::fsm::{Fsm, FsmError, StateId};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Index of a task node in a DAG.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TaskId(pub u32);

/// Errors from DAG construction and analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DagError {
    /// The graph contains a cycle (so it is not a DAG).
    CycleDetected,
    /// An edge references an unknown task.
    UnknownTask(TaskId),
    /// Frontier construction exceeded the state budget.
    StateBudgetExceeded {
        /// Budget that was exceeded.
        budget: usize,
    },
}

impl std::fmt::Display for DagError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DagError::CycleDetected => write!(f, "graph contains a cycle"),
            DagError::UnknownTask(t) => write!(f, "unknown task t{}", t.0),
            DagError::StateBudgetExceeded { budget } => {
                write!(f, "frontier construction exceeded {budget} states")
            }
        }
    }
}

impl std::error::Error for DagError {}

/// A directed acyclic workflow graph with labelled tasks.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Dag {
    labels: Vec<String>,
    /// Edges as predecessor lists: `preds[t]` must all complete before `t`.
    preds: Vec<BTreeSet<TaskId>>,
    succs: Vec<BTreeSet<TaskId>>,
}

impl Dag {
    /// Create an empty DAG.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a task; returns its id.
    pub fn task(&mut self, label: impl Into<String>) -> TaskId {
        let id = TaskId(self.labels.len() as u32);
        self.labels.push(label.into());
        self.preds.push(BTreeSet::new());
        self.succs.push(BTreeSet::new());
        id
    }

    /// Add a dependency edge `from -> to` (to waits for from).
    pub fn edge(&mut self, from: TaskId, to: TaskId) -> Result<(), DagError> {
        let n = self.labels.len() as u32;
        if from.0 >= n {
            return Err(DagError::UnknownTask(from));
        }
        if to.0 >= n {
            return Err(DagError::UnknownTask(to));
        }
        self.preds[to.0 as usize].insert(from);
        self.succs[from.0 as usize].insert(to);
        Ok(())
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the DAG has no tasks.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Label of task `t`.
    pub fn label(&self, t: TaskId) -> &str {
        &self.labels[t.0 as usize]
    }

    /// Direct predecessors of `t`.
    pub fn preds(&self, t: TaskId) -> impl Iterator<Item = TaskId> + '_ {
        self.preds[t.0 as usize].iter().copied()
    }

    /// Direct successors of `t`.
    pub fn succs(&self, t: TaskId) -> impl Iterator<Item = TaskId> + '_ {
        self.succs[t.0 as usize].iter().copied()
    }

    /// Kahn's algorithm: a topological order, or `CycleDetected`.
    pub fn topo_order(&self) -> Result<Vec<TaskId>, DagError> {
        let n = self.labels.len();
        let mut indeg: Vec<usize> = (0..n).map(|i| self.preds[i].len()).collect();
        let mut queue: VecDeque<TaskId> = (0..n)
            .filter(|&i| indeg[i] == 0)
            .map(|i| TaskId(i as u32))
            .collect();
        let mut order = Vec::with_capacity(n);
        while let Some(t) = queue.pop_front() {
            order.push(t);
            for s in &self.succs[t.0 as usize] {
                indeg[s.0 as usize] -= 1;
                if indeg[s.0 as usize] == 0 {
                    queue.push_back(*s);
                }
            }
        }
        if order.len() == n {
            Ok(order)
        } else {
            Err(DagError::CycleDetected)
        }
    }

    /// Whether the graph is acyclic.
    pub fn validate(&self) -> Result<(), DagError> {
        self.topo_order().map(|_| ())
    }

    /// Tasks whose predecessors are all in `done` and that are not in `done`.
    pub fn ready(&self, done: &BTreeSet<TaskId>) -> Vec<TaskId> {
        (0..self.labels.len() as u32)
            .map(TaskId)
            .filter(|t| {
                !done.contains(t) && self.preds[t.0 as usize].iter().all(|p| done.contains(p))
            })
            .collect()
    }

    /// Length of the longest path (critical path) in tasks.
    pub fn critical_path_len(&self) -> Result<usize, DagError> {
        let order = self.topo_order()?;
        let mut depth = vec![1usize; self.labels.len()];
        for t in order {
            for s in &self.succs[t.0 as usize] {
                depth[s.0 as usize] = depth[s.0 as usize].max(depth[t.0 as usize] + 1);
            }
        }
        Ok(depth.into_iter().max().unwrap_or(0))
    }

    /// Compile to the frontier FSM of Figure 1-b.
    ///
    /// States are reachable completed-task sets; the alphabet is
    /// "task t completed"; the single final state is the full set. The
    /// construction is exponential in DAG width — intentionally observable
    /// via `budget`, because that growth *is* the verification-cost claim of
    /// Table 1.
    pub fn to_fsm(&self, budget: usize) -> Result<Fsm, DagError> {
        self.validate()?;
        let mut b = Fsm::builder();
        let mut symbols = Vec::with_capacity(self.len());
        for (i, l) in self.labels.iter().enumerate() {
            symbols.push(b.symbol(format!("done:{l}#{i}")));
        }

        let mut ids: BTreeMap<BTreeSet<TaskId>, StateId> = BTreeMap::new();
        let empty: BTreeSet<TaskId> = BTreeSet::new();
        let s0 = b.state(frontier_label(self, &empty));
        ids.insert(empty.clone(), s0);
        let mut queue = VecDeque::new();
        queue.push_back(empty);

        let mut transitions = Vec::new();
        while let Some(done) = queue.pop_front() {
            let from = ids[&done];
            for t in self.ready(&done) {
                let mut next = done.clone();
                next.insert(t);
                let to = match ids.get(&next) {
                    Some(&id) => id,
                    None => {
                        if ids.len() >= budget {
                            return Err(DagError::StateBudgetExceeded { budget });
                        }
                        let id = b.state(frontier_label(self, &next));
                        ids.insert(next.clone(), id);
                        queue.push_back(next.clone());
                        id
                    }
                };
                transitions.push((from, symbols[t.0 as usize], to));
            }
        }
        for (f, a, t) in transitions {
            b.transition(f, a, t);
        }
        b.initial(s0);
        let all: BTreeSet<TaskId> = (0..self.labels.len() as u32).map(TaskId).collect();
        if let Some(&fin) = ids.get(&all) {
            b.final_state(fin);
        }
        b.build().map_err(|e: FsmError| {
            unreachable!("frontier construction produced invalid machine: {e}")
        })
    }

    /// Compile to the *sequential* FSM induced by one topological order — the
    /// linear-size machine a traditional single-threaded executor realises.
    pub fn to_sequential_fsm(&self) -> Result<Fsm, DagError> {
        let order = self.topo_order()?;
        let mut b = Fsm::builder();
        let mut prev = b.state("start");
        b.initial(prev);
        for (k, t) in order.iter().enumerate() {
            let sym = b.symbol(format!("done:{}#{k}", self.label(*t)));
            let next = b.state(format!("after:{}", self.label(*t)));
            b.transition(prev, sym, next);
            prev = next;
        }
        b.final_state(prev);
        b.build()
            .map_err(|e| unreachable!("sequential construction invalid: {e}"))
    }
}

fn frontier_label(dag: &Dag, done: &BTreeSet<TaskId>) -> String {
    if done.is_empty() {
        return "{}".to_string();
    }
    let names: Vec<&str> = done.iter().map(|t| dag.label(*t)).collect();
    format!("{{{}}}", names.join(","))
}

/// Convenience constructors for common workflow shapes, used across tests
/// and benchmarks.
pub mod shapes {
    use super::*;

    /// `n`-task chain: t0 -> t1 -> ... -> t(n-1).
    pub fn chain(n: usize) -> Dag {
        let mut d = Dag::new();
        let ts: Vec<TaskId> = (0..n).map(|i| d.task(format!("t{i}"))).collect();
        for w in ts.windows(2) {
            d.edge(w[0], w[1]).expect("valid ids");
        }
        d
    }

    /// Fork-join: one source, `width` parallel tasks, one sink.
    pub fn fork_join(width: usize) -> Dag {
        let mut d = Dag::new();
        let src = d.task("fork");
        let sink_tasks: Vec<TaskId> = (0..width).map(|i| d.task(format!("par{i}"))).collect();
        let sink = d.task("join");
        for t in &sink_tasks {
            d.edge(src, *t).expect("valid ids");
            d.edge(*t, sink).expect("valid ids");
        }
        d
    }

    /// Diamond: a -> {b, c} -> d.
    pub fn diamond() -> Dag {
        fork_join(2)
    }

    /// A layered DAG with `layers` layers of `width` tasks, fully connected
    /// between consecutive layers (a typical multi-stage science pipeline).
    pub fn layered(layers: usize, width: usize) -> Dag {
        let mut d = Dag::new();
        let mut prev: Vec<TaskId> = Vec::new();
        for l in 0..layers {
            let cur: Vec<TaskId> = (0..width).map(|i| d.task(format!("l{l}w{i}"))).collect();
            for p in &prev {
                for c in &cur {
                    d.edge(*p, *c).expect("valid ids");
                }
            }
            prev = cur;
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::shapes::*;
    use super::*;

    #[test]
    fn topo_order_respects_edges() {
        let d = diamond();
        let order = d.topo_order().unwrap();
        let pos = |t: TaskId| order.iter().position(|x| *x == t).unwrap();
        assert_eq!(pos(TaskId(0)), 0); // fork first
        assert_eq!(pos(TaskId(3)), 3); // join last
    }

    #[test]
    fn cycle_is_detected() {
        let mut d = Dag::new();
        let a = d.task("a");
        let b = d.task("b");
        d.edge(a, b).unwrap();
        d.edge(b, a).unwrap();
        assert_eq!(d.topo_order().unwrap_err(), DagError::CycleDetected);
        assert!(d.validate().is_err());
    }

    #[test]
    fn unknown_task_edge_rejected() {
        let mut d = Dag::new();
        let a = d.task("a");
        assert_eq!(
            d.edge(a, TaskId(9)).unwrap_err(),
            DagError::UnknownTask(TaskId(9))
        );
    }

    #[test]
    fn ready_set_tracks_frontier() {
        let d = diamond();
        let mut done = BTreeSet::new();
        assert_eq!(d.ready(&done), vec![TaskId(0)]);
        done.insert(TaskId(0));
        assert_eq!(d.ready(&done), vec![TaskId(1), TaskId(2)]);
        done.insert(TaskId(1));
        done.insert(TaskId(2));
        assert_eq!(d.ready(&done), vec![TaskId(3)]);
    }

    #[test]
    fn chain_fsm_is_linear() {
        let d = chain(5);
        let m = d.to_fsm(1_000).unwrap();
        assert_eq!(m.num_states(), 6); // n+1 frontiers
        assert_eq!(m.num_transitions(), 5);
        assert!(m.is_live());
    }

    #[test]
    fn fork_join_fsm_grows_exponentially() {
        // width-w fork-join has 2^w + 2 frontier states:
        // {}, then {fork} ∪ (each subset of parallel tasks) = 2^w, then +join.
        let d = fork_join(3);
        let m = d.to_fsm(1_000).unwrap();
        assert_eq!(m.num_states(), 1 + (1 << 3) + 1);
        let d = fork_join(6);
        let m = d.to_fsm(1_000).unwrap();
        assert_eq!(m.num_states(), 1 + (1 << 6) + 1);
    }

    #[test]
    fn budget_stops_state_explosion() {
        let d = fork_join(16);
        match d.to_fsm(500) {
            Err(DagError::StateBudgetExceeded { budget }) => assert_eq!(budget, 500),
            other => panic!("expected budget exceeded, got {other:?}"),
        }
    }

    #[test]
    fn frontier_fsm_accepts_any_topo_order() {
        let d = diamond();
        let m = d.to_fsm(100).unwrap();
        // Both interleavings of the parallel stage must be accepted.
        let w = |names: [&str; 4]| -> Vec<_> {
            names
                .iter()
                .map(|n| {
                    let idx = (0..d.len())
                        .position(|i| d.label(TaskId(i as u32)) == *n)
                        .unwrap();
                    m.symbol_by_label(&format!("done:{n}#{idx}")).unwrap()
                })
                .collect()
        };
        assert!(m.run(&w(["fork", "par0", "par1", "join"])).accepted);
        assert!(m.run(&w(["fork", "par1", "par0", "join"])).accepted);
        // Out-of-order completion is rejected (gets stuck).
        assert!(m.run(&w(["par0", "fork", "par1", "join"])).stuck);
    }

    #[test]
    fn sequential_fsm_is_linear_even_for_wide_dags() {
        let d = fork_join(10);
        let m = d.to_sequential_fsm().unwrap();
        assert_eq!(m.num_states(), d.len() + 1);
        assert!(m.is_live());
    }

    #[test]
    fn critical_path() {
        assert_eq!(chain(7).critical_path_len().unwrap(), 7);
        assert_eq!(fork_join(9).critical_path_len().unwrap(), 3);
        assert_eq!(layered(4, 3).critical_path_len().unwrap(), 4);
    }
}
