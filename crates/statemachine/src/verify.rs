//! Verification-cost probes.
//!
//! Table 1 claims verification complexity "increases from tractable for
//! static δ to undecidable for meta-optimization Ω". This module makes that
//! measurable: exhaustive state-space exploration with an explicit budget.
//! Static machines verify in time linear in |δ|; frontier machines compiled
//! from wide DAGs blow up exponentially; Ω-bearing machines report
//! [`crate::machine::VerificationSpace::Unbounded`] and any enumeration
//! attempt exhausts its budget — the decidability cliff, observed.

use crate::fsm::{Fsm, StateId};
use crate::machine::VerificationSpace;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Result of a bounded verification attempt.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VerificationReport {
    /// States visited during exploration.
    pub states_explored: usize,
    /// Transitions traversed.
    pub transitions_checked: usize,
    /// Whether exploration covered the whole reachable space.
    pub complete: bool,
    /// Whether every reachable state can still reach a final state.
    pub all_states_can_finish: bool,
    /// Reachable states with no outgoing transition that are not final.
    pub deadlocks: Vec<StateId>,
    /// Whether at least one final state is reachable.
    pub goal_reachable: bool,
}

/// Exhaustively explore `m` up to `state_budget` states.
///
/// Checks the three properties a workflow engine cares about: goal
/// reachability, absence of deadlocks, and co-reachability of finals.
pub fn verify_fsm(m: &Fsm, state_budget: usize) -> VerificationReport {
    // Forward exploration.
    let mut seen: BTreeSet<StateId> = BTreeSet::new();
    let mut stack = vec![m.initial()];
    seen.insert(m.initial());
    let mut transitions_checked = 0usize;
    let mut complete = true;
    while let Some(s) = stack.pop() {
        for a in m.enabled(s) {
            transitions_checked += 1;
            let t = m.try_step(s, a).expect("enabled implies defined");
            if !seen.contains(&t) {
                if seen.len() >= state_budget {
                    complete = false;
                    continue;
                }
                seen.insert(t);
                stack.push(t);
            }
        }
    }

    let goal_reachable = seen.iter().any(|&s| m.is_final(s));
    let deadlocks: Vec<StateId> = seen
        .iter()
        .copied()
        .filter(|&s| !m.is_final(s) && m.enabled(s).is_empty())
        .collect();

    // Backward co-reachability: which explored states can reach a final?
    let mut can_finish: BTreeSet<StateId> =
        seen.iter().copied().filter(|&s| m.is_final(s)).collect();
    let mut changed = true;
    while changed {
        changed = false;
        for &s in &seen {
            if can_finish.contains(&s) {
                continue;
            }
            let reaches = m.enabled(s).into_iter().any(|a| {
                m.try_step(s, a)
                    .map(|t| can_finish.contains(&t))
                    .unwrap_or(false)
            });
            if reaches {
                can_finish.insert(s);
                changed = true;
            }
        }
    }
    let all_states_can_finish = complete && seen.iter().all(|s| can_finish.contains(s));

    VerificationReport {
        states_explored: seen.len(),
        transitions_checked,
        complete,
        all_states_can_finish,
        deadlocks,
        goal_reachable,
    }
}

/// Attempt to verify a behaviour space of the given size within `budget`
/// enumeration units. Returns `(units_spent, verified)`.
///
/// This is the level-agnostic probe the `claim_verification` experiment
/// sweeps: finite spaces verify iff they fit the budget; unbounded spaces
/// always exhaust it (the undecidability proxy).
pub fn verify_behaviour_space(space: VerificationSpace, budget: u64) -> (u64, bool) {
    match space {
        VerificationSpace::Finite(n) => {
            if n <= budget {
                (n, true)
            } else {
                (budget, false)
            }
        }
        VerificationSpace::Unbounded => (budget, false),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::shapes;

    #[test]
    fn verifies_linear_chain_completely() {
        let m = shapes::chain(10).to_fsm(1_000).unwrap();
        let r = verify_fsm(&m, 1_000);
        assert!(r.complete);
        assert!(r.goal_reachable);
        assert!(r.all_states_can_finish);
        assert!(r.deadlocks.is_empty());
        assert_eq!(r.states_explored, 11);
    }

    #[test]
    fn detects_deadlock() {
        let mut b = Fsm::builder();
        let s0 = b.state("start");
        let s1 = b.state("trap");
        let s2 = b.state("goal");
        let go = b.symbol("go");
        let bad = b.symbol("bad");
        b.transition(s0, go, s2);
        b.transition(s0, bad, s1);
        b.initial(s0);
        b.final_state(s2);
        let m = b.build().unwrap();
        let r = verify_fsm(&m, 100);
        assert!(r.goal_reachable);
        assert_eq!(r.deadlocks, vec![s1]);
        assert!(!r.all_states_can_finish);
    }

    #[test]
    fn budget_truncates_exploration() {
        let m = shapes::fork_join(8).to_fsm(10_000).unwrap(); // 259 states
        let r = verify_fsm(&m, 50);
        assert!(!r.complete);
        assert!(r.states_explored <= 50);
    }

    #[test]
    fn exponential_growth_is_visible() {
        let cost = |w: usize| {
            let m = shapes::fork_join(w).to_fsm(100_000).unwrap();
            verify_fsm(&m, 100_000).states_explored
        };
        let (c4, c8) = (cost(4), cost(8));
        assert!(c8 > c4 * 10, "c4={c4} c8={c8}");
    }

    #[test]
    fn behaviour_space_probe() {
        assert_eq!(
            verify_behaviour_space(VerificationSpace::Finite(10), 100),
            (10, true)
        );
        assert_eq!(
            verify_behaviour_space(VerificationSpace::Finite(1000), 100),
            (100, false)
        );
        assert_eq!(
            verify_behaviour_space(VerificationSpace::Unbounded, 100),
            (100, false)
        );
    }
}
