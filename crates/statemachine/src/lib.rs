//! # evoflow-sm — the state-machine foundation of the evolution framework
//!
//! §3.1 of the paper identifies the finite state machine
//! `M = (S, Σ, δ, s0, F)` as the common denominator between traditional
//! workflows and AI agents. This crate is that foundation:
//!
//! * [`fsm`] — the formal machine with labelled states/symbols, runs,
//!   traces, and reachability (Figure 1-a).
//! * [`dag`] — DAG workflows and their compilation to frontier machines
//!   (Figure 1-b), including the exponential construction whose growth the
//!   verification experiment measures.
//! * [`machine`] — the generalized transition function: all five Table 1
//!   intelligence levels behind one [`machine::Transition`] trait, plus the
//!   executing [`machine::Machine`] loop with experience history `H`.
//! * [`control`] — the shared noisy instrument-calibration task and one
//!   reference controller per intelligence level (the Table 1 experiment).
//! * [`meta`] — the Ω operator: guarded structural self-modification
//!   `M' = Ω(M, C, G)`.
//! * [`verify`] — bounded exhaustive verification, making Table 1's
//!   "tractable → undecidable" column measurable.

pub mod control;
pub mod dag;
pub mod fsm;
pub mod machine;
pub mod meta;
pub mod verify;

pub use control::{
    controller_for_level, run_episode, AdaptiveController, CtrlState, EpisodeResult,
    IntelligentController, LearningController, OptimizingController, Scenario, StaticController,
};
pub use dag::{Dag, DagError, TaskId};
pub use fsm::{Fsm, FsmBuilder, FsmError, StateId, SymbolId, Trace};
pub use machine::{Experience, History, IntelligenceLevel, Machine, Transition, VerificationSpace};
pub use meta::{
    apply_guarded, apply_rewrite, Context, Goals, Guardrails, MetaOperator, RecoveryOmega, Rewrite,
    RewriteRejection,
};
pub use verify::{verify_behaviour_space, verify_fsm, VerificationReport};
