//! The meta-optimization operator Ω: `M' = Ω(M, C, G)` (Table 1, row 5).
//!
//! Ω takes a machine, a context, and (mutable) goals, and may *redefine the
//! machine itself*: add/remove states and transitions, change finals, change
//! goals. Because uncontrolled self-modification is exactly the risk §4.1
//! warns about (irreversible experiments, precious samples), every rewrite
//! passes through [`Guardrails`] before being accepted.

use crate::fsm::{Fsm, FsmError};
use serde::{Deserialize, Serialize};

/// Context `C` given to Ω: what the machine has recently experienced.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Context {
    /// Recent mean reward of the running machine.
    pub recent_reward: f64,
    /// Number of failures observed in the recent window.
    pub recent_failures: u32,
    /// Free-form context tags (e.g. "regime-shift-suspected").
    pub tags: Vec<String>,
}

/// Goals `G` given to Ω — mutable, per the paper ("mutable goals G").
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Goals {
    /// Target label of the state the machine should reach.
    pub target_state: String,
    /// Minimum acceptable mean reward.
    pub reward_floor: f64,
    /// Remaining rewrite budget (guardrail).
    pub rewrite_budget: u32,
}

impl Default for Goals {
    fn default() -> Self {
        Goals {
            target_state: "done".to_string(),
            reward_floor: -1.0,
            rewrite_budget: 16,
        }
    }
}

/// A single structural edit Ω proposes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Rewrite {
    /// Add a new state with the given label.
    AddState {
        /// Label of the state to add.
        label: String,
    },
    /// Add a transition `from --symbol--> to` (labels).
    AddTransition {
        /// Source state label.
        from: String,
        /// Symbol label (created if absent).
        symbol: String,
        /// Destination state label.
        to: String,
    },
    /// Remove the transition on `symbol` out of `from`.
    RemoveTransition {
        /// Source state label.
        from: String,
        /// Symbol label.
        symbol: String,
    },
    /// Mark a state final (a new acceptable goal).
    MarkFinal {
        /// State label.
        label: String,
    },
}

/// Why a proposed rewrite was rejected.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RewriteRejection {
    /// The rewrite budget is exhausted.
    BudgetExhausted,
    /// The rewrite references an unknown state label.
    UnknownLabel(String),
    /// The rewritten machine would lose goal reachability.
    GoalUnreachable,
    /// The rewritten machine failed structural validation.
    Invalid(String),
}

impl std::fmt::Display for RewriteRejection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RewriteRejection::BudgetExhausted => write!(f, "rewrite budget exhausted"),
            RewriteRejection::UnknownLabel(l) => write!(f, "unknown label {l:?}"),
            RewriteRejection::GoalUnreachable => {
                write!(f, "rewrite would make the goal unreachable")
            }
            RewriteRejection::Invalid(e) => write!(f, "invalid machine after rewrite: {e}"),
        }
    }
}

/// Validation gates every Ω rewrite must pass (§4.1 safety argument).
#[derive(Debug, Clone)]
pub struct Guardrails {
    /// Maximum allowed |S| after a rewrite.
    pub max_states: usize,
    /// Require that at least one final state stays reachable.
    pub require_goal_reachable: bool,
}

impl Default for Guardrails {
    fn default() -> Self {
        Guardrails {
            max_states: 10_000,
            require_goal_reachable: true,
        }
    }
}

/// The meta-optimization operator: proposes rewrites given `(M, C, G)`.
pub trait MetaOperator {
    /// Inspect the machine, context, and goals; return proposed rewrites
    /// (empty = no change).
    fn propose(&mut self, m: &Fsm, ctx: &Context, goals: &Goals) -> Vec<Rewrite>;
}

/// Apply one rewrite to a machine, rebuilding it from scratch.
/// Symbols/states named by label are created when missing (for Add*).
pub fn apply_rewrite(m: &Fsm, rw: &Rewrite) -> Result<Fsm, RewriteRejection> {
    // Collect the current structure by label.
    let states: Vec<String> = (0..m.num_states())
        .map(|i| m.state_label(crate::fsm::StateId(i as u32)).to_string())
        .collect();
    let symbols: Vec<String> = (0..m.num_symbols())
        .map(|i| m.symbol_label(crate::fsm::SymbolId(i as u32)).to_string())
        .collect();
    let mut transitions: Vec<(String, String, String)> = m
        .transitions()
        .map(|(s, a, t)| {
            (
                m.state_label(s).to_string(),
                m.symbol_label(a).to_string(),
                m.state_label(t).to_string(),
            )
        })
        .collect();
    let mut finals: Vec<String> = m.finals().map(|s| m.state_label(s).to_string()).collect();
    let initial = m.state_label(m.initial()).to_string();

    let mut new_states = states.clone();
    let mut new_symbols = symbols.clone();
    match rw {
        Rewrite::AddState { label } => {
            if !new_states.contains(label) {
                new_states.push(label.clone());
            }
        }
        Rewrite::AddTransition { from, symbol, to } => {
            if !new_states.contains(from) {
                return Err(RewriteRejection::UnknownLabel(from.clone()));
            }
            if !new_states.contains(to) {
                return Err(RewriteRejection::UnknownLabel(to.clone()));
            }
            if !new_symbols.contains(symbol) {
                new_symbols.push(symbol.clone());
            }
            transitions.retain(|(f, s, _)| !(f == from && s == symbol));
            transitions.push((from.clone(), symbol.clone(), to.clone()));
        }
        Rewrite::RemoveTransition { from, symbol } => {
            let before = transitions.len();
            transitions.retain(|(f, s, _)| !(f == from && s == symbol));
            if transitions.len() == before {
                return Err(RewriteRejection::UnknownLabel(format!("{from}/{symbol}")));
            }
        }
        Rewrite::MarkFinal { label } => {
            if !new_states.contains(label) {
                return Err(RewriteRejection::UnknownLabel(label.clone()));
            }
            if !finals.contains(label) {
                finals.push(label.clone());
            }
        }
    }

    // Rebuild.
    let mut b = Fsm::builder();
    let mut sid = std::collections::BTreeMap::new();
    for s in &new_states {
        sid.insert(s.clone(), b.state(s.clone()));
    }
    let mut aid = std::collections::BTreeMap::new();
    for a in &new_symbols {
        aid.insert(a.clone(), b.symbol(a.clone()));
    }
    for (f, s, t) in &transitions {
        b.transition(sid[f], aid[s], sid[t]);
    }
    b.initial(sid[&initial]);
    for fl in &finals {
        b.final_state(sid[fl]);
    }
    b.build()
        .map_err(|e: FsmError| RewriteRejection::Invalid(e.to_string()))
}

/// Apply a batch of rewrites under guardrails, debiting the goal's budget.
/// Returns the new machine and the number of rewrites actually applied.
pub fn apply_guarded(
    m: &Fsm,
    rewrites: &[Rewrite],
    goals: &mut Goals,
    guard: &Guardrails,
) -> Result<(Fsm, u32), RewriteRejection> {
    let mut cur = m.clone();
    let mut applied = 0u32;
    for rw in rewrites {
        if goals.rewrite_budget == 0 {
            return Err(RewriteRejection::BudgetExhausted);
        }
        let candidate = apply_rewrite(&cur, rw)?;
        if candidate.num_states() > guard.max_states {
            return Err(RewriteRejection::Invalid(format!(
                "state count {} exceeds guardrail {}",
                candidate.num_states(),
                guard.max_states
            )));
        }
        if guard.require_goal_reachable {
            let report = crate::verify::verify_fsm(&candidate, guard.max_states);
            if !report.goal_reachable {
                return Err(RewriteRejection::GoalUnreachable);
            }
        }
        goals.rewrite_budget -= 1;
        applied += 1;
        cur = candidate;
    }
    Ok((cur, applied))
}

/// A simple reference Ω: when recent reward is below the floor, insert a
/// recovery state that routes failures back to the initial state
/// (self-healing), and when failures accumulate, adds a direct
/// remediation path to the goal.
#[derive(Debug, Default)]
pub struct RecoveryOmega;

impl MetaOperator for RecoveryOmega {
    fn propose(&mut self, m: &Fsm, ctx: &Context, goals: &Goals) -> Vec<Rewrite> {
        let mut out = Vec::new();
        if ctx.recent_reward < goals.reward_floor && m.state_by_label("recovery").is_none() {
            let initial = m.state_label(m.initial()).to_string();
            out.push(Rewrite::AddState {
                label: "recovery".to_string(),
            });
            out.push(Rewrite::AddTransition {
                from: initial.clone(),
                symbol: "fault".to_string(),
                to: "recovery".to_string(),
            });
            out.push(Rewrite::AddTransition {
                from: "recovery".to_string(),
                symbol: "recovered".to_string(),
                to: initial,
            });
        }
        if ctx.recent_failures > 3 {
            if let Some(goal) = m.finals().next() {
                out.push(Rewrite::AddTransition {
                    from: "recovery".to_string(),
                    symbol: "escalate".to_string(),
                    to: m.state_label(goal).to_string(),
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_state() -> Fsm {
        let mut b = Fsm::builder();
        let s0 = b.state("work");
        let s1 = b.state("done");
        let ok = b.symbol("ok");
        b.transition(s0, ok, s1);
        b.initial(s0);
        b.final_state(s1);
        b.build().unwrap()
    }

    #[test]
    fn add_state_and_transition() {
        let m = two_state();
        let m2 = apply_rewrite(
            &m,
            &Rewrite::AddState {
                label: "retry".into(),
            },
        )
        .unwrap();
        assert_eq!(m2.num_states(), 3);
        let m3 = apply_rewrite(
            &m2,
            &Rewrite::AddTransition {
                from: "work".into(),
                symbol: "fail".into(),
                to: "retry".into(),
            },
        )
        .unwrap();
        assert_eq!(m3.num_transitions(), 2);
    }

    #[test]
    fn unknown_labels_rejected() {
        let m = two_state();
        let err = apply_rewrite(
            &m,
            &Rewrite::AddTransition {
                from: "nope".into(),
                symbol: "x".into(),
                to: "done".into(),
            },
        )
        .unwrap_err();
        assert_eq!(err, RewriteRejection::UnknownLabel("nope".into()));
    }

    #[test]
    fn guardrail_blocks_goal_unreachable() {
        let m = two_state();
        let mut goals = Goals::default();
        let guard = Guardrails::default();
        // Removing the only path to the final state must be rejected.
        let err = apply_guarded(
            &m,
            &[Rewrite::RemoveTransition {
                from: "work".into(),
                symbol: "ok".into(),
            }],
            &mut goals,
            &guard,
        )
        .unwrap_err();
        assert_eq!(err, RewriteRejection::GoalUnreachable);
        // Budget was not spent on the rejected rewrite? It is debited only on
        // success, so it should be unchanged minus zero.
        assert_eq!(goals.rewrite_budget, 16);
    }

    #[test]
    fn budget_exhaustion_blocks_rewrites() {
        let m = two_state();
        let mut goals = Goals {
            rewrite_budget: 1,
            ..Goals::default()
        };
        let guard = Guardrails::default();
        let rewrites = vec![
            Rewrite::AddState { label: "a".into() },
            Rewrite::AddState { label: "b".into() },
        ];
        let err = apply_guarded(&m, &rewrites, &mut goals, &guard).unwrap_err();
        assert_eq!(err, RewriteRejection::BudgetExhausted);
    }

    #[test]
    fn recovery_omega_self_heals() {
        let m = two_state();
        let mut op = RecoveryOmega;
        let ctx = Context {
            recent_reward: -5.0,
            recent_failures: 0,
            tags: vec![],
        };
        let mut goals = Goals::default();
        let proposals = op.propose(&m, &ctx, &goals);
        assert_eq!(proposals.len(), 3);
        let (m2, applied) =
            apply_guarded(&m, &proposals, &mut goals, &Guardrails::default()).unwrap();
        assert_eq!(applied, 3);
        assert!(m2.state_by_label("recovery").is_some());
        assert!(m2.is_live());
        // Healthy context proposes nothing.
        let calm = Context {
            recent_reward: 0.0,
            ..Context::default()
        };
        assert!(op.propose(&m2, &calm, &goals).is_empty());
    }

    #[test]
    fn state_count_guardrail() {
        let m = two_state();
        let mut goals = Goals::default();
        let guard = Guardrails {
            max_states: 2,
            require_goal_reachable: false,
        };
        let err = apply_guarded(
            &m,
            &[Rewrite::AddState {
                label: "extra".into(),
            }],
            &mut goals,
            &guard,
        )
        .unwrap_err();
        assert!(matches!(err, RewriteRejection::Invalid(_)));
    }
}
